// Differential-oracle sweeps: every dynamic-query algorithm (snapshot,
// PDQ, SPDQ, NPDQ, moving kNN) against the brute-force NaiveOracle of
// tests/oracle.h, frame by frame, over seeded random workloads — 8 seeds x
// {uniform, skewed} data. PDQ and NPDQ additionally sweep with motions
// inserted mid-session: PDQ delivery stays *exactly* equal to the oracle
// (the paper's update management), NPDQ is checked against sound
// completeness bounds (stamped subtrees may legally re-deliver).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "common/random.h"
#include "oracle.h"
#include "query/knn.h"
#include "query/npdq.h"
#include "query/pdq.h"
#include "rtree/node_cache.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::KeysOf;
using ::dqmo::testing::NaiveOracle;
using ::dqmo::testing::NpdqOracle;
using ::dqmo::testing::PdqOracle;
using ::dqmo::testing::RandomQueryBox;
using ::dqmo::testing::RandomSegment;
using ::dqmo::testing::RandomSegments;

struct OracleCase {
  uint64_t seed;
  bool skewed;
};

/// Clustered (gaussian-around-centers) segments: the skewed counterpart of
/// RandomSegments, stressing unbalanced tree regions.
std::vector<MotionSegment> SkewedSegments(Rng* rng, int n, double size,
                                          double horizon) {
  constexpr int kClusters = 6;
  std::vector<Vec> centers;
  for (int c = 0; c < kClusters; ++c) {
    centers.push_back(Vec(rng->Uniform(0.15 * size, 0.85 * size),
                          rng->Uniform(0.15 * size, 0.85 * size)));
  }
  std::vector<MotionSegment> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Vec& c = centers[rng->UniformU64(kClusters)];
    auto clamp = [size](double v) { return std::clamp(v, 0.0, size); };
    const Vec a(clamp(c[0] + rng->Normal(0.0, 0.05 * size)),
                clamp(c[1] + rng->Normal(0.0, 0.05 * size)));
    const Vec b(clamp(a[0] + rng->Normal(0.0, 0.02 * size)),
                clamp(a[1] + rng->Normal(0.0, 0.02 * size)));
    const double t0 = rng->Uniform(0.0, horizon);
    const double t1 = std::min(horizon, t0 + rng->Uniform(0.01, 2.0));
    MotionSegment m(static_cast<ObjectId>(i),
                    StSegment(a, b, Interval(t0, t1)));
    m.seg = QuantizeStored(m.seg);
    out.push_back(m);
  }
  return out;
}

class OracleSweep : public ::testing::TestWithParam<OracleCase> {
 protected:
  void SetUp() override {
    const OracleCase c = GetParam();
    auto tree = RTree::Create(&file_, RTree::Options());
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = std::move(tree).value();
    // Every sweep runs through the decoded-node cache: the insert-heavy
    // sweeps double as invalidation tests (a stale decode would break the
    // exact-equality assertions), and the CI TSan stage runs these same
    // sweeps with the cache's sharded locking under contention.
    node_cache_ = std::make_unique<DecodedNodeCache>(256);
    tree_->AttachNodeCache(node_cache_.get());
    rng_ = Rng(c.seed * 7919 + 17);
    data_ = c.skewed ? SkewedSegments(&rng_, kObjects, 100, 100)
                     : RandomSegments(&rng_, kObjects, 2, 100, 100);
    for (const auto& m : data_) ASSERT_TRUE(tree_->Insert(m).ok());
    oracle_ = NaiveOracle(data_);
  }

  /// Random-walk query trajectory: `legs` piecewise-linear segments over
  /// [t0, t1], window `side`, center stepping uniformly inside the space.
  QueryTrajectory WalkTrajectory(double t0, double t1, int legs,
                                 double side) {
    std::vector<KeySnapshot> keys;
    Vec pos(rng_.Uniform(20, 80), rng_.Uniform(20, 80));
    keys.emplace_back(t0, Box::Centered(pos, side));
    const double dt = (t1 - t0) / legs;
    for (int j = 1; j <= legs; ++j) {
      pos = Vec(std::clamp(pos[0] + rng_.Uniform(-6, 6), 5.0, 95.0),
                std::clamp(pos[1] + rng_.Uniform(-6, 6), 5.0, 95.0));
      keys.emplace_back(t0 + j * dt, Box::Centered(pos, side));
    }
    return QueryTrajectory::Make(std::move(keys)).value();
  }

  /// One fresh motion to insert mid-session (distinct id space).
  MotionSegment FreshMotion() {
    return RandomSegment(&rng_, static_cast<ObjectId>(100000 + inserted_++),
                         2, 100, 100);
  }

  /// Runs a PDQ frame-by-frame against a PdqOracle over `trajectory`,
  /// inserting `inserts_per_step` fresh motions into both tree and oracle
  /// every 4th frame when requested. Expects exact per-frame equality.
  void RunPdqSweep(QueryTrajectory trajectory, int frames,
                   int inserts_per_step) {
    PredictiveDynamicQuery::Options opt;
    opt.track_updates = inserts_per_step > 0;
    auto pdq = PredictiveDynamicQuery::Make(tree_.get(), trajectory, opt);
    ASSERT_TRUE(pdq.ok()) << pdq.status().ToString();
    PdqOracle ref(&oracle_, trajectory);

    const Interval span = trajectory.TimeSpan();
    const double dt = span.length() / frames;
    double prev = span.lo;
    for (int i = 1; i <= frames; ++i) {
      if (inserts_per_step > 0 && i % 4 == 0) {
        for (int j = 0; j < inserts_per_step; ++j) {
          const MotionSegment m = FreshMotion();
          ASSERT_TRUE(tree_->Insert(m).ok());
          oracle_.Insert(m);
        }
      }
      const double t = span.lo + i * dt;
      auto frame = (*pdq)->Frame(prev, t);
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      std::set<MotionSegment::Key> got;
      for (const auto& r : *frame) {
        EXPECT_TRUE(got.insert(r.motion.key()).second)
            << "duplicate delivery within a frame";
      }
      EXPECT_EQ(got, ref.Frame(prev, t)) << "frame " << i;
      prev = t;
    }
  }

  static constexpr int kObjects = 400;

  PageFile file_;
  std::unique_ptr<RTree> tree_;
  std::unique_ptr<DecodedNodeCache> node_cache_;
  std::vector<MotionSegment> data_;
  NaiveOracle oracle_;
  Rng rng_{0};
  int inserted_ = 0;
};

TEST_P(OracleSweep, SnapshotMatchesOracle) {
  QueryStats stats;
  for (int i = 0; i < 20; ++i) {
    const StBox q = ::dqmo::testing::RandomQueryBox(&rng_, 2, 100, 100);
    auto got = tree_->RangeSearch(q, &stats);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(KeysOf(*got), KeysOf(oracle_.Snapshot(q))) << "query " << i;
  }
}

TEST_P(OracleSweep, PdqMatchesOracleFrameByFrame) {
  RunPdqSweep(WalkTrajectory(10, 30, 8, 10.0), /*frames=*/40,
              /*inserts_per_step=*/0);
}

TEST_P(OracleSweep, PdqWithConcurrentInsertsMatchesOracle) {
  RunPdqSweep(WalkTrajectory(10, 30, 8, 10.0), /*frames=*/40,
              /*inserts_per_step=*/3);
}

TEST_P(OracleSweep, SpdqInflatedTrajectoryMatchesOracle) {
  // The SPDQ is a PDQ over the deviation-inflated trajectory (Sect. 4);
  // the oracle runs over the same inflated windows, so equality is exact.
  RunPdqSweep(WalkTrajectory(12, 28, 6, 8.0).Inflate(1.5), /*frames=*/32,
              /*inserts_per_step=*/0);
}

TEST_P(OracleSweep, NpdqMatchesOracleFrameByFrame) {
  NonPredictiveDynamicQuery npdq(tree_.get());
  NpdqOracle ref(&oracle_);
  Vec pos(rng_.Uniform(15, 85), rng_.Uniform(15, 85));
  double prev_t = 5.0;
  for (int i = 1; i <= 60; ++i) {
    const double t = 5.0 + i * 0.25;
    pos = Vec(std::clamp(pos[0] + rng_.Uniform(-1.5, 1.5), 5.0, 95.0),
              std::clamp(pos[1] + rng_.Uniform(-1.5, 1.5), 5.0, 95.0));
    const StBox q(Box::Centered(pos, 8.0), Interval(prev_t, t));
    auto got = npdq.Execute(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(KeysOf(*got), ref.Frame(q)) << "frame " << i;
    prev_t = t;
  }
}

TEST_P(OracleSweep, NpdqWithInsertsIsSoundAndComplete) {
  // With motions inserted between snapshots, exact equality no longer
  // holds: an insertion stamps its root-to-leaf path, and NPDQ re-delivers
  // from freshly stamped subtrees rather than risk a miss. The guarantees
  // that DO hold, and are asserted here:
  //   soundness     — everything delivered BB-matches the current query;
  //   completeness  — every BB-match of q_i not retrieved by q_{i-1}
  //                   (i.e. not present-and-matching at frame i-1) is
  //                   delivered.
  NonPredictiveDynamicQuery npdq(tree_.get());
  Vec pos(rng_.Uniform(15, 85), rng_.Uniform(15, 85));
  double prev_t = 5.0;
  std::optional<StBox> prev_q;
  size_t prev_present = oracle_.data().size();
  for (int i = 1; i <= 40; ++i) {
    if (i % 5 == 0) {
      for (int j = 0; j < 2; ++j) {
        const MotionSegment m = FreshMotion();
        ASSERT_TRUE(tree_->Insert(m).ok());
        oracle_.Insert(m);
      }
    }
    const double t = 5.0 + i * 0.25;
    pos = Vec(std::clamp(pos[0] + rng_.Uniform(-1.5, 1.5), 5.0, 95.0),
              std::clamp(pos[1] + rng_.Uniform(-1.5, 1.5), 5.0, 95.0));
    const StBox q(Box::Centered(pos, 8.0), Interval(prev_t, t));
    auto got = npdq.Execute(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const std::set<MotionSegment::Key> delivered = KeysOf(*got);

    const auto& all = oracle_.data();
    for (size_t d = 0; d < all.size(); ++d) {
      const bool matches = NpdqOracle::Matches(all[d], q);
      const bool had_before =
          prev_q.has_value() && d < prev_present &&
          NpdqOracle::Matches(all[d], *prev_q);
      if (matches && !had_before) {
        EXPECT_TRUE(delivered.count(all[d].key()) > 0)
            << "frame " << i << ": missed oid " << all[d].oid;
      }
      if (!matches) {
        EXPECT_TRUE(delivered.count(all[d].key()) == 0)
            << "frame " << i << ": spurious oid " << all[d].oid;
      }
    }
    prev_q = q;
    prev_present = all.size();
    prev_t = t;
  }
}

TEST_P(OracleSweep, MovingKnnMatchesOracle) {
  // The fence cache of MovingKnnQuery is sound under the paper's motion
  // model: objects alive throughout, consecutive segments joined. The
  // fixture's one-shot random segments violate that (objects pop in and
  // out of existence, invisible to a cached candidate set), so this sweep
  // builds its own continuous-trajectory workload.
  PageFile file;
  auto tree_or = RTree::Create(&file, RTree::Options());
  ASSERT_TRUE(tree_or.ok());
  std::unique_ptr<RTree> tree = std::move(tree_or).value();
  DecodedNodeCache knn_cache(256);
  tree->AttachNodeCache(&knn_cache);
  NaiveOracle oracle;
  constexpr double kHorizon = 30.0;
  const bool skewed = GetParam().skewed;
  for (int o = 0; o < 200; ++o) {
    Vec pos = skewed ? Vec(std::clamp(50 + rng_.Normal(0, 12), 0.0, 100.0),
                           std::clamp(50 + rng_.Normal(0, 12), 0.0, 100.0))
                     : Vec(rng_.Uniform(0, 100), rng_.Uniform(0, 100));
    double t = 0.0;
    while (t < kHorizon) {
      // Long legs: the fence cache survives only while every cached
      // candidate segment stays alive, so short segments would force a
      // full search nearly every frame.
      const double dt = rng_.Uniform(6.0, 10.0);
      const double t1 = std::min(kHorizon, t + dt);
      // Velocity-based step: a leg truncated at the horizon must not keep
      // its full displacement over a sliver of time — one absurdly fast
      // segment would inflate the tree's max_speed and neuter the fence.
      const Vec vel(rng_.Uniform(-0.15, 0.15), rng_.Uniform(-0.15, 0.15));
      const Vec next(std::clamp(pos[0] + vel[0] * (t1 - t), 0.0, 100.0),
                     std::clamp(pos[1] + vel[1] * (t1 - t), 0.0, 100.0));
      MotionSegment m(static_cast<ObjectId>(o),
                      StSegment(pos, next, Interval(t, t1)));
      // Quantize via the oracle so both sides hold identical floats; the
      // shared endpoint quantizes identically in both adjacent segments,
      // preserving exact continuity.
      oracle.Insert(m);
      ASSERT_TRUE(tree->Insert(m).ok());
      pos = next;
      t = t1;
    }
  }

  constexpr int kK = 5;
  MovingKnnQuery knn(tree.get(), kK);
  Vec pos(rng_.Uniform(15, 85), rng_.Uniform(15, 85));
  for (int i = 0; i < 50; ++i) {
    const double t = 5.0 + i * 0.2;
    pos = Vec(std::clamp(pos[0] + rng_.Uniform(-0.1, 0.1), 5.0, 95.0),
              std::clamp(pos[1] + rng_.Uniform(-0.1, 0.1), 5.0, 95.0));
    auto got = knn.At(t, pos);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const std::vector<Neighbor> want = oracle.Knn(pos, t, kK);
    ASSERT_EQ(got->size(), want.size()) << "instant " << i;
    for (size_t r = 0; r < want.size(); ++r) {
      // Identical stored geometry + identical DistanceAt arithmetic:
      // distances must agree bit-for-bit, rank by rank.
      EXPECT_EQ((*got)[r].distance, want[r].distance)
          << "instant " << i << " rank " << r;
      // Keys only where the rank's distance is unique (ties may be
      // ordered differently by the index).
      const bool tie_below = r > 0 && want[r].distance == want[r - 1].distance;
      const bool tie_above = r + 1 < want.size() &&
                             want[r].distance == want[r + 1].distance;
      if (!tie_below && !tie_above) {
        EXPECT_EQ((*got)[r].motion.key(), want[r].motion.key())
            << "instant " << i << " rank " << r;
      }
    }
  }
  // The sweep must have exercised the fence cache, not just full searches.
  EXPECT_GT(knn.cache_answers(), 0u);
}

std::vector<OracleCase> AllCases() {
  std::vector<OracleCase> cases;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    cases.push_back({seed, false});
    cases.push_back({seed, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OracleSweep, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<OracleCase>& info) {
      return std::string(info.param.skewed ? "skewed" : "uniform") +
             "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace dqmo
