// Overload resilience: QueryBudget semantics in every engine, the bounded
// priority thread pool, admission control, the overload governor, and the
// scheduler integration (query/budget.h, server/overload.h).
//
// The satellite no-permanent-loss sweeps live here too: a session driven
// through faults, budget squeezes, and concurrent writers must — once the
// fault window closes — still have delivered every object visible in its
// final frame (the ResetHistory-on-degraded-snapshot contract).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "query/budget.h"
#include "query/knn.h"
#include "query/npdq.h"
#include "query/pdq.h"
#include "query/session.h"
#include "rtree/rtree.h"
#include "server/executor.h"
#include "server/overload.h"
#include "storage/fault.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::KeysOf;
using ::dqmo::testing::RandomSegments;

struct Fixture {
  PageFile file;
  std::unique_ptr<RTree> tree;
  std::vector<MotionSegment> data;
};

void BuildFixture(Fixture* fx, uint64_t seed, int n = 3000) {
  auto tree = RTree::Create(&fx->file, RTree::Options());
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  fx->tree = std::move(tree).value();
  Rng rng(seed);
  fx->data = RandomSegments(&rng, n, 2, 100, 100, /*max_duration=*/5.0);
  for (const auto& m : fx->data) ASSERT_TRUE(fx->tree->Insert(m).ok());
  ASSERT_TRUE(fx->file.Publish().ok());
}

bool IsSubset(const std::set<MotionSegment::Key>& a,
              const std::set<MotionSegment::Key>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

StBox CenteredQuery(double x, double y, double side, double t0, double t1) {
  return StBox(Box::Centered(Vec(x, y), side), Interval(t0, t1));
}

// ---------------------------------------------------------------------------
// QueryBudget unit semantics.

TEST(QueryBudgetTest, UnarmedBudgetAlwaysGrantsAndChargesNothing) {
  QueryBudget budget;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(budget.TryChargeNode());
  EXPECT_FALSE(budget.armed());
  EXPECT_FALSE(budget.stopped());
  EXPECT_EQ(budget.nodes_charged(), 0u);
  EXPECT_TRUE(budget.StopStatus().ok());
}

TEST(QueryBudgetTest, NodeBudgetLatchesAfterExactlyNCharges) {
  QueryBudget budget;
  budget.ArmFrame({/*frame_deadline_ns=*/0, /*node_budget=*/5});
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(budget.TryChargeNode()) << i;
  EXPECT_FALSE(budget.TryChargeNode());
  EXPECT_EQ(budget.stop(), BudgetStop::kNodes);
  // Latched: further charges refuse without advancing the count.
  EXPECT_FALSE(budget.TryChargeNode());
  EXPECT_EQ(budget.nodes_charged(), 6u);
  EXPECT_TRUE(budget.StopStatus().IsResourceExhausted());
  // Re-arming opens the next frame.
  budget.ArmFrame({0, 5});
  EXPECT_FALSE(budget.stopped());
  EXPECT_TRUE(budget.TryChargeNode());
}

TEST(QueryBudgetTest, DeadlineLatchesViaInjectedClock) {
  uint64_t now = 1000;
  QueryBudget budget([&now] { return now; });
  budget.ArmFrame({/*frame_deadline_ns=*/500, /*node_budget=*/0});
  EXPECT_TRUE(budget.TryChargeNode());
  now = 1499;  // One ns short of the absolute deadline (1000 + 500).
  EXPECT_TRUE(budget.TryChargeNode());
  now = 1500;
  EXPECT_FALSE(budget.TryChargeNode());
  EXPECT_EQ(budget.stop(), BudgetStop::kDeadline);
  EXPECT_TRUE(budget.StopStatus().IsResourceExhausted());
}

TEST(QueryBudgetTest, CancellationIsStickyAcrossArmFrames) {
  QueryBudget budget;
  budget.ArmFrame({0, 1000});
  EXPECT_TRUE(budget.TryChargeNode());
  budget.RequestCancel();
  EXPECT_FALSE(budget.TryChargeNode());
  EXPECT_EQ(budget.stop(), BudgetStop::kCancelled);
  // Re-arming a frame does NOT clear a pending cancellation...
  budget.ArmFrame({0, 1000});
  EXPECT_FALSE(budget.TryChargeNode());
  EXPECT_EQ(budget.stop(), BudgetStop::kCancelled);
  // ...and it even fires on an unarmed budget (the session kill switch).
  QueryBudget unarmed;
  unarmed.RequestCancel();
  EXPECT_FALSE(unarmed.TryChargeNode());
  // Only Disarm returns the budget to the clean state.
  budget.Disarm();
  EXPECT_FALSE(budget.cancel_requested());
  EXPECT_TRUE(budget.TryChargeNode());
}

// ---------------------------------------------------------------------------
// Budgeted traversals: each engine delivers a flagged partial subset.

TEST(BudgetedQueryTest, NpdqNodeBudgetYieldsPartialSubsetThenFullAfterRearm) {
  Fixture fx;
  BuildFixture(&fx, 11);
  const StBox q = CenteredQuery(50, 50, 40, 10, 20);

  NpdqOptions clean_options;
  NonPredictiveDynamicQuery clean(fx.tree.get(), clean_options);
  auto clean_out = clean.Execute(q);
  ASSERT_TRUE(clean_out.ok());
  const auto clean_keys = KeysOf(*clean_out);
  ASSERT_GT(clean_keys.size(), 0u);

  QueryBudget budget;
  NpdqOptions options;
  options.budget = &budget;
  NonPredictiveDynamicQuery npdq(fx.tree.get(), options);
  budget.ArmFrame({0, /*node_budget=*/3});
  auto degraded = npdq.Execute(q);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(IsSubset(KeysOf(*degraded), clean_keys));
  EXPECT_LT(KeysOf(*degraded).size(), clean_keys.size());
  EXPECT_EQ(npdq.integrity(), ResultIntegrity::kPartial);
  EXPECT_GT(npdq.skip_report().pages_skipped(), 0u);
  EXPECT_TRUE(npdq.skip_report().last_cause().IsResourceExhausted());

  // Budget relieved + history forgotten: the next snapshot recovers
  // everything the squeezed one missed.
  budget.Disarm();
  npdq.ResetHistory();
  auto recovered = npdq.Execute(q);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(KeysOf(*recovered), clean_keys);
  EXPECT_EQ(npdq.integrity(), ResultIntegrity::kComplete);
}

TEST(BudgetedQueryTest, NpdqBudgetDegradesBothHotPaths) {
  Fixture fx;
  BuildFixture(&fx, 12);
  const StBox q = CenteredQuery(50, 50, 40, 10, 20);
  for (const HotPath path : {HotPath::kSoa, HotPath::kLegacyAos}) {
    QueryBudget budget;
    NpdqOptions options;
    options.budget = &budget;
    options.hot_path = path;
    NonPredictiveDynamicQuery npdq(fx.tree.get(), options);
    budget.ArmFrame({0, 4});
    auto out = npdq.Execute(q);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(npdq.integrity(), ResultIntegrity::kPartial);
    EXPECT_GT(npdq.skip_report().pages_skipped(), 0u);
    // The budget saw exactly its cap (+1 refused charge), on either path.
    EXPECT_EQ(budget.nodes_charged(), 5u);
  }
}

TEST(BudgetedQueryTest, PdqBudgetRequeuesAndDeliversAcrossLaterFrames) {
  Fixture fx;
  BuildFixture(&fx, 13);
  auto make_trajectory = [] {
    std::vector<KeySnapshot> keys;
    keys.emplace_back(0.0, Box::Centered(Vec(30, 30), 30.0));
    keys.emplace_back(100.0, Box::Centered(Vec(70, 70), 30.0));
    return QueryTrajectory::Make(std::move(keys));
  };
  auto clean_trajectory = make_trajectory();
  ASSERT_TRUE(clean_trajectory.ok());
  auto clean_pdq =
      PredictiveDynamicQuery::Make(fx.tree.get(), *clean_trajectory);
  ASSERT_TRUE(clean_pdq.ok());
  std::set<MotionSegment::Key> clean_keys;
  for (double t = 0.0; t < 100.0; t += 5.0) {
    auto frame = (*clean_pdq)->Frame(t, t + 5.0);
    ASSERT_TRUE(frame.ok());
    for (const PdqResult& r : *frame) clean_keys.insert(r.motion.key());
  }
  ASSERT_GT(clean_keys.size(), 0u);

  // Budgeted run: two node pops per frame — low enough that busy frames
  // stop, high enough that quiet frames finish and drain their due object
  // events. A stopped frame requeues the unexplored node, so later
  // (re-armed) frames keep making progress on the carried-over frontier.
  auto trajectory = make_trajectory();
  ASSERT_TRUE(trajectory.ok());
  QueryBudget budget;
  PredictiveDynamicQuery::Options options;
  options.budget = &budget;
  auto pdq = PredictiveDynamicQuery::Make(fx.tree.get(), *trajectory, options);
  ASSERT_TRUE(pdq.ok());
  std::set<MotionSegment::Key> degraded_keys;
  uint64_t degraded_frames = 0;
  for (double t = 0.0; t < 100.0; t += 5.0) {
    budget.ArmFrame({0, /*node_budget=*/2});
    auto frame = (*pdq)->Frame(t, t + 5.0);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    for (const PdqResult& r : *frame) degraded_keys.insert(r.motion.key());
    if (budget.stopped()) ++degraded_frames;
  }
  EXPECT_TRUE(IsSubset(degraded_keys, clean_keys));
  EXPECT_GT(degraded_frames, 0u);
  EXPECT_GT((*pdq)->skip_report().pages_skipped(), 0u);
  EXPECT_TRUE((*pdq)->skip_report().last_cause().IsResourceExhausted());
  // Progress across frames: stopped frames still leave a frontier the next
  // frame resumes, so deliveries accumulate despite per-frame stops.
  EXPECT_GT(degraded_keys.size(), 0u);
}

TEST(BudgetedQueryTest, PdqGenerousBudgetIsBitIdenticalToUnbudgeted) {
  Fixture fx;
  BuildFixture(&fx, 14);
  auto make_trajectory = [] {
    std::vector<KeySnapshot> keys;
    keys.emplace_back(0.0, Box::Centered(Vec(40, 40), 25.0));
    keys.emplace_back(100.0, Box::Centered(Vec(60, 60), 25.0));
    return QueryTrajectory::Make(std::move(keys));
  };
  auto run = [&fx, &make_trajectory](QueryBudget* budget) {
    auto trajectory = make_trajectory();
    EXPECT_TRUE(trajectory.ok());
    PredictiveDynamicQuery::Options options;
    options.budget = budget;
    auto pdq =
        PredictiveDynamicQuery::Make(fx.tree.get(), *trajectory, options);
    EXPECT_TRUE(pdq.ok());
    std::vector<MotionSegment::Key> delivered;
    for (double t = 0.0; t < 100.0; t += 5.0) {
      if (budget != nullptr) budget->ArmFrame({0, 1u << 30});
      auto frame = (*pdq)->Frame(t, t + 5.0);
      EXPECT_TRUE(frame.ok());
      for (const PdqResult& r : *frame) delivered.push_back(r.motion.key());
    }
    EXPECT_EQ((*pdq)->skip_report().pages_skipped(), 0u);
    return delivered;
  };
  QueryBudget budget;
  // Same keys in the same order: a never-exhausted budget is invisible.
  EXPECT_EQ(run(nullptr), run(&budget));
}

TEST(BudgetedQueryTest, KnnBudgetKeepsDistancesCorrectAndSkipsTheFence) {
  Fixture fx;
  BuildFixture(&fx, 15);
  QueryBudget budget;
  KnnOptions options;
  options.budget = &budget;
  SkipReport report;
  options.skip_report = &report;
  QueryStats stats;
  budget.ArmFrame({0, /*node_budget=*/2});
  const Vec point(50.0, 50.0);
  auto result = KnnAt(*fx.tree, point, 10.0, 10, &stats, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(report.pages_skipped(), 0u);
  EXPECT_TRUE(report.last_cause().IsResourceExhausted());
  double prev = -1.0;
  for (const Neighbor& n : *result) {
    EXPECT_DOUBLE_EQ(n.distance, n.motion.seg.DistanceAt(10.0, point));
    EXPECT_GE(n.distance, prev);
    prev = n.distance;
  }

  // MovingKnn: a budget-stopped search is degraded, so it must not install
  // a fence cache — every frame re-searches.
  QueryBudget moving_budget;
  MovingKnnQuery::Options moving_options;
  moving_options.budget = &moving_budget;
  MovingKnnQuery query(fx.tree.get(), 5, moving_options);
  for (int i = 0; i < 3; ++i) {
    moving_budget.ArmFrame({0, 1});
    auto r = query.At(1.0 + i, point);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(query.integrity(), ResultIntegrity::kPartial);
  }
  EXPECT_EQ(query.full_searches(), 3u);
  EXPECT_EQ(query.cache_answers(), 0u);
}

// ---------------------------------------------------------------------------
// ThreadPool: priorities and bounds.

TEST(ThreadPoolTest, HigherPriorityClassesDrainFirst) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<int> order;
  {
    ThreadPool pool(ThreadPool::Options{/*num_threads=*/1, /*max_queue=*/0});
    // Block the single worker so the queued tasks pile up, then enqueue one
    // task per class in "wrong" order.
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    });
    auto record = [&order, &mu](int tag) {
      return [&order, &mu, tag] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(tag);
      };
    };
    pool.Submit(record(2), SessionPriority::kBatch);
    pool.Submit(record(1), SessionPriority::kNormal);
    pool.Submit(record(0), SessionPriority::kInteractive);
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    pool.Wait();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ThreadPoolTest, TrySubmitRefusesWhenBoundedQueueIsFull) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(ThreadPool::Options{/*num_threads=*/1, /*max_queue=*/2});
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    });
    // The blocker occupies a queue slot until the worker picks it up.
    while (pool.queue_depth() != 0) std::this_thread::yield();
    // Worker busy: two tasks fill the queue, the third is refused.
    EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
    EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
    EXPECT_EQ(pool.queue_depth(), 2u);
    EXPECT_FALSE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    pool.Wait();
  }
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, BoundedSubmitBackpressuresInsteadOfGrowing) {
  // A bounded pool accepts a burst far deeper than its queue: Submit blocks
  // the producer until space frees, and every task still runs exactly once.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(ThreadPool::Options{/*num_threads=*/2, /*max_queue=*/4});
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
      EXPECT_LE(pool.queue_depth(), 4u);
    }
    pool.Wait();
  }
  EXPECT_EQ(ran.load(), 100);
}

// ---------------------------------------------------------------------------
// Admission control.

TEST(AdmissionControllerTest, PriorityHeadroomShedsBatchFirst) {
  AdmissionOptions options;
  options.max_queue_depth = 10;
  AdmissionController admission(options);
  // Depth 5: batch is past its 1/2 headroom, normal (4/5) and interactive
  // still fit.
  EXPECT_EQ(admission.TryAdmit(1, SessionPriority::kBatch, 5),
            AdmissionOutcome::kRejectedQueueFull);
  EXPECT_EQ(admission.TryAdmit(1, SessionPriority::kNormal, 5),
            AdmissionOutcome::kAdmitted);
  EXPECT_EQ(admission.TryAdmit(1, SessionPriority::kInteractive, 5),
            AdmissionOutcome::kAdmitted);
  // Depth 8: normal is out too; interactive holds until the queue is full.
  EXPECT_EQ(admission.TryAdmit(1, SessionPriority::kNormal, 8),
            AdmissionOutcome::kRejectedQueueFull);
  EXPECT_EQ(admission.TryAdmit(1, SessionPriority::kInteractive, 8),
            AdmissionOutcome::kAdmitted);
  EXPECT_EQ(admission.TryAdmit(1, SessionPriority::kInteractive, 10),
            AdmissionOutcome::kRejectedQueueFull);
  EXPECT_EQ(admission.admitted(), 3u);
  EXPECT_EQ(admission.rejected(), 3u);
}

TEST(AdmissionControllerTest, PerClientQuotaReleasesOnSessionDone) {
  AdmissionOptions options;
  options.per_client_quota = 2;
  AdmissionController admission(options);
  EXPECT_EQ(admission.TryAdmit(7, SessionPriority::kNormal, 0),
            AdmissionOutcome::kAdmitted);
  EXPECT_EQ(admission.TryAdmit(7, SessionPriority::kNormal, 0),
            AdmissionOutcome::kAdmitted);
  EXPECT_EQ(admission.TryAdmit(7, SessionPriority::kNormal, 0),
            AdmissionOutcome::kRejectedQuota);
  // A different client has its own quota.
  EXPECT_EQ(admission.TryAdmit(8, SessionPriority::kNormal, 0),
            AdmissionOutcome::kAdmitted);
  // Finishing one of client 7's sessions frees a slot.
  admission.OnSessionDone(7);
  EXPECT_EQ(admission.TryAdmit(7, SessionPriority::kNormal, 0),
            AdmissionOutcome::kAdmitted);
  EXPECT_TRUE(AdmissionStatus(AdmissionOutcome::kRejectedQuota)
                  .IsResourceExhausted());
  EXPECT_TRUE(AdmissionStatus(AdmissionOutcome::kAdmitted).ok());
}

// ---------------------------------------------------------------------------
// Overload governor.

TEST(OverloadGovernorTest, EscalatesOnSlowWindowsAndRecoversWithHysteresis) {
  OverloadGovernor::Options options;
  options.window = 8;
  options.recovery_windows = 2;
  options.overload_latency_ns = 1'000'000;  // 1 ms.
  OverloadGovernor governor(options);
  EXPECT_EQ(governor.level(), 0);

  // One window of all-slow frames: level 1.
  for (int i = 0; i < 8; ++i) governor.OnFrame(5'000'000);
  EXPECT_EQ(governor.level(), 1);
  // Two more slow windows: level 3 (the cap).
  for (int i = 0; i < 16; ++i) governor.OnFrame(5'000'000);
  EXPECT_EQ(governor.level(), 3);
  for (int i = 0; i < 8; ++i) governor.OnFrame(5'000'000);
  EXPECT_EQ(governor.level(), 3);

  // Healthy windows: one is not enough (hysteresis), the second steps down.
  for (int i = 0; i < 8; ++i) governor.OnFrame(1000);
  EXPECT_EQ(governor.level(), 3);
  for (int i = 0; i < 8; ++i) governor.OnFrame(1000);
  EXPECT_EQ(governor.level(), 2);
  // Recovery continues one level per recovery_windows-long healthy streak.
  for (int i = 0; i < 32; ++i) governor.OnFrame(1000);
  EXPECT_EQ(governor.level(), 0);
}

TEST(OverloadGovernorTest, QueueDepthAloneTriggersEscalation) {
  OverloadGovernor::Options options;
  options.window = 4;
  options.queue_high_watermark = 10;
  OverloadGovernor governor(options);
  size_t depth = 50;
  governor.AttachQueueProbe([&depth] { return depth; });
  for (int i = 0; i < 4; ++i) governor.OnFrame(0);  // Fast frames...
  EXPECT_EQ(governor.level(), 1);  // ...but the queue is deep: escalate.
  depth = 0;
  for (int i = 0; i < 16; ++i) governor.OnFrame(0);
  EXPECT_EQ(governor.level(), 0);
}

TEST(OverloadGovernorTest, DirectivesScaleLimitsAndShedByPriority) {
  OverloadGovernor::Options options;
  options.window = 1;
  options.recovery_windows = 1000;  // Stay put once escalated.
  options.overload_latency_ns = 1;
  OverloadGovernor governor(options);

  // Level 0: transparent.
  auto d = governor.FrameDirective(SessionPriority::kNormal, 1000, 100);
  EXPECT_FALSE(d.shed_frame);
  EXPECT_EQ(d.frame_deadline_ns, 1000u);
  EXPECT_EQ(d.node_budget, 100u);
  EXPECT_DOUBLE_EQ(d.horizon_scale, 1.0);

  governor.OnFrame(10);  // -> level 1.
  d = governor.FrameDirective(SessionPriority::kNormal, 1000, 100);
  EXPECT_FALSE(d.shed_frame);
  EXPECT_EQ(d.frame_deadline_ns, 500u);
  EXPECT_EQ(d.node_budget, 50u);
  EXPECT_DOUBLE_EQ(d.horizon_scale, 0.5);
  // A session that declared no deadline gets the governor's default, scaled.
  d = governor.FrameDirective(SessionPriority::kNormal, 0, 0);
  EXPECT_EQ(d.frame_deadline_ns, options.default_frame_deadline_ns / 2);
  EXPECT_EQ(d.node_budget, 0u);  // Node cap only arrives at level 2.

  governor.OnFrame(10);  // -> level 2: batch shed, others quartered.
  EXPECT_TRUE(
      governor.FrameDirective(SessionPriority::kBatch, 1000, 0).shed_frame);
  d = governor.FrameDirective(SessionPriority::kNormal, 1000, 0);
  EXPECT_FALSE(d.shed_frame);
  EXPECT_EQ(d.frame_deadline_ns, 250u);
  EXPECT_EQ(d.node_budget, options.node_budget_cap);

  governor.OnFrame(10);  // -> level 3: normal shed too, interactive served.
  EXPECT_TRUE(
      governor.FrameDirective(SessionPriority::kNormal, 1000, 0).shed_frame);
  d = governor.FrameDirective(SessionPriority::kInteractive, 1000, 800);
  EXPECT_FALSE(d.shed_frame);
  EXPECT_EQ(d.frame_deadline_ns, 125u);
  EXPECT_EQ(d.node_budget, 100u);
}

// ---------------------------------------------------------------------------
// Scheduler integration.

std::vector<SessionSpec> MakeSpecs(int n, int frames = 30) {
  std::vector<SessionSpec> specs;
  for (int i = 0; i < n; ++i) {
    SessionSpec spec;
    spec.kind = static_cast<SessionKind>(i % 3);
    spec.seed = 100 + static_cast<uint64_t>(i);
    spec.frames = frames;
    spec.client_id = static_cast<uint64_t>(i % 2);
    specs.push_back(spec);
  }
  return specs;
}

TEST(SchedulerOverloadTest, QuotaRejectionsAreReportedNotPoisoned) {
  Fixture fx;
  BuildFixture(&fx, 21, 1500);
  AdmissionOptions admission_options;
  admission_options.per_client_quota = 1;
  AdmissionController admission(admission_options);
  SessionScheduler::Options options;
  options.num_threads = 1;  // Serial: in-flight quota is 1 at a time...
  options.admission = &admission;
  SessionScheduler scheduler(fx.tree.get(), options);
  // ...so with OnSessionDone wired through, every spec is admitted in turn.
  ExecutorReport report = scheduler.Run(MakeSpecs(6));
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.sessions_rejected, 0u);

  // Without the release (fresh controller, quota saturated up front by
  // never-finishing sessions), rejections surface per session and leave
  // the aggregate status OK.
  AdmissionController saturated(admission_options);
  ASSERT_EQ(saturated.TryAdmit(0, SessionPriority::kNormal, 0),
            AdmissionOutcome::kAdmitted);
  ASSERT_EQ(saturated.TryAdmit(1, SessionPriority::kNormal, 0),
            AdmissionOutcome::kAdmitted);
  options.admission = &saturated;
  SessionScheduler rejecting(fx.tree.get(), options);
  report = rejecting.Run(MakeSpecs(4));
  EXPECT_EQ(report.sessions_rejected, 4u);
  EXPECT_TRUE(report.status.ok());
  for (const SessionResult& s : report.sessions) {
    EXPECT_EQ(s.outcome, SessionResult::Outcome::kRejected);
    EXPECT_TRUE(s.status.IsResourceExhausted()) << s.status.ToString();
    EXPECT_EQ(s.frames_completed, 0u);
  }
}

TEST(SchedulerOverloadTest, NodeBudgetDegradesFramesButSessionsComplete) {
  Fixture fx;
  BuildFixture(&fx, 22, 2000);
  std::vector<SessionSpec> specs = MakeSpecs(3);
  ExecutorReport clean = SessionScheduler(fx.tree.get(), {}).Run(specs);
  ASSERT_TRUE(clean.status.ok());

  // One node pop per frame: every frame visits at least the root plus one
  // child, so every evaluated frame finishes degraded.
  for (SessionSpec& spec : specs) spec.frame_node_budget = 1;
  ExecutorReport squeezed = SessionScheduler(fx.tree.get(), {}).Run(specs);
  EXPECT_TRUE(squeezed.status.ok()) << squeezed.status.ToString();
  EXPECT_GT(squeezed.total_frames_degraded, 0u);
  for (size_t i = 0; i < specs.size(); ++i) {
    const SessionResult& s = squeezed.sessions[i];
    EXPECT_EQ(s.outcome, SessionResult::Outcome::kCompleted);
    EXPECT_EQ(s.frames_completed, clean.sessions[i].frames_completed);
    EXPECT_LE(s.objects_delivered, clean.sessions[i].objects_delivered);
  }
}

TEST(SchedulerOverloadTest, GenerousBudgetKeepsChecksumsBitIdentical) {
  Fixture fx;
  BuildFixture(&fx, 23, 2000);
  std::vector<SessionSpec> specs = MakeSpecs(3);
  ExecutorReport clean = SessionScheduler(fx.tree.get(), {}).Run(specs);
  for (SessionSpec& spec : specs) spec.frame_node_budget = 1u << 30;
  ExecutorReport budgeted = SessionScheduler(fx.tree.get(), {}).Run(specs);
  ASSERT_TRUE(clean.status.ok());
  ASSERT_TRUE(budgeted.status.ok());
  EXPECT_EQ(budgeted.total_frames_degraded, 0u);
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(budgeted.sessions[i].checksum, clean.sessions[i].checksum)
        << "spec " << i;
  }
}

TEST(SchedulerOverloadTest, PreCancelledSessionsEndImmediately) {
  Fixture fx;
  BuildFixture(&fx, 24, 1000);
  QueryBudget budget;
  budget.RequestCancel();
  std::vector<SessionSpec> specs = MakeSpecs(3);
  for (SessionSpec& spec : specs) spec.budget = &budget;
  ExecutorReport report = SessionScheduler(fx.tree.get(), {}).Run(specs);
  EXPECT_TRUE(report.status.ok());
  EXPECT_EQ(report.sessions_cancelled, 3u);
  for (const SessionResult& s : report.sessions) {
    EXPECT_EQ(s.outcome, SessionResult::Outcome::kCancelled);
    EXPECT_EQ(s.frames_completed, 0u);
  }
}

TEST(SchedulerOverloadTest, ConcurrentCancellationHammer) {
  // Cooperative cancellation raced against a threaded run (the TSan stage
  // hammers this): every session must end either completed or cancelled,
  // and the run must terminate promptly either way.
  Fixture fx;
  BuildFixture(&fx, 25, 2000);
  std::vector<SessionSpec> specs = MakeSpecs(8, /*frames=*/200);
  std::vector<std::unique_ptr<QueryBudget>> budgets;
  for (SessionSpec& spec : specs) {
    budgets.push_back(std::make_unique<QueryBudget>());
    spec.budget = budgets.back().get();
  }
  SessionScheduler::Options options;
  options.num_threads = 4;
  SessionScheduler scheduler(fx.tree.get(), options);
  std::thread canceller([&budgets] {
    for (auto& b : budgets) {
      b->RequestCancel();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  ExecutorReport report = scheduler.Run(specs);
  canceller.join();
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  uint64_t cancelled = 0;
  for (const SessionResult& s : report.sessions) {
    EXPECT_NE(s.outcome, SessionResult::Outcome::kRejected);
    if (s.outcome == SessionResult::Outcome::kCancelled) ++cancelled;
  }
  EXPECT_EQ(report.sessions_cancelled, cancelled);
}

TEST(SchedulerOverloadTest, EscalatedGovernorShedsLowPriorityFrames) {
  Fixture fx;
  BuildFixture(&fx, 26, 1500);
  // Every frame is an evaluation window and every frame counts as slow, so
  // the governor pins itself at the deepest level; the huge recovery
  // requirement keeps it there for the whole run.
  OverloadGovernor::Options esc;
  esc.window = 1;
  esc.overload_latency_ns = 1;
  esc.recovery_windows = 1 << 20;
  OverloadGovernor hot(esc);
  for (int i = 0; i < 3; ++i) hot.OnFrame(10);
  ASSERT_EQ(hot.level(), 3);

  std::vector<SessionSpec> specs = MakeSpecs(4, /*frames=*/40);
  specs[0].priority = SessionPriority::kInteractive;
  specs[1].priority = SessionPriority::kNormal;
  specs[2].priority = SessionPriority::kBatch;
  specs[3].priority = SessionPriority::kBatch;
  SessionScheduler::Options options;
  options.governor = &hot;
  SessionScheduler scheduler(fx.tree.get(), options);
  ExecutorReport report = scheduler.Run(specs);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  // Interactive is served (possibly degraded); normal and batch are shed.
  EXPECT_GT(report.sessions[0].frames_completed, 0u);
  for (size_t i = 1; i < specs.size(); ++i) {
    EXPECT_EQ(report.sessions[i].frames_shed,
              static_cast<uint64_t>(specs[i].frames))
        << "spec " << i;
    EXPECT_EQ(report.sessions[i].objects_delivered, 0u);
  }
  EXPECT_GT(report.total_frames_shed, 0u);
}

// ---------------------------------------------------------------------------
// Satellite: no permanent loss once faults clear (session + writer sweep).

MotionSegment PathSegment(uint64_t j, double t) {
  // A static object parked on the observer's path (10 + 0.8t diagonal),
  // alive for a long window around its insertion time.
  const double x = 10.0 + 0.8 * t;
  MotionSegment m(static_cast<ObjectId>(1000000 + j),
                  StSegment(Vec(x, x), Vec(x, x),
                            Interval(std::max(0.0, t - 5.0), 100.0)));
  m.seg = QuantizeStored(m.seg);
  return m;
}

void NoLossSweep(bool constant_velocity, uint64_t seed, uint64_t stop_after) {
  Fixture fx;
  BuildFixture(&fx, seed);
  TreeGate gate(&fx.file);

  // Faults: seeded transient stream whose window closes after read
  // #stop_after. The caller picks stop_after well under the reads the first
  // 60 frames issue, so the second half of the run is provably clean.
  FaultInjector::Options fault_options;
  fault_options.seed = seed * 7 + 1;
  fault_options.transient_fault_rate = 0.25;
  fault_options.stop_after = stop_after;
  FaultInjector injector(fault_options);
  FaultyPageReader faulty(&fx.file, &injector);

  QueryBudget budget;
  DynamicQuerySession::Options options;
  options.window = 16.0;
  options.deviation_bound = 2.0;
  options.prediction_horizon = 20.0;
  // Constant velocity: the session stabilizes predictive and every
  // degraded predictive frame exercises the PDQ->NPDQ hand-off. Otherwise:
  // the session stays non-predictive, isolating the NPDQ
  // ResetHistory-on-degraded contract across the fault-clear boundary.
  options.stable_frames_to_predict = constant_velocity ? 2 : (1 << 20);
  options.reader = &faulty;
  options.npdq.reader = &faulty;
  options.fault_policy = FaultPolicy::kSkipSubtree;
  options.budget = &budget;
  DynamicQuerySession session(fx.tree.get(), options);

  // Writer: inserts objects onto the observer's future path while the
  // session runs (first 60 frames), under the exclusive gate.
  std::atomic<bool> writer_stop{false};
  std::thread writer([&fx, &gate, &writer_stop] {
    // Capped at 100 inserts so the parked objects stay inside the data
    // horizon (t <= 55 < 100) whatever the frame loop's real-time pace.
    for (uint64_t j = 0; j < 100 && !writer_stop.load(); ++j) {
      {
        auto guard = gate.LockExclusive();
        ASSERT_TRUE(
            fx.tree->Insert(PathSegment(j, 5.0 + 0.5 * static_cast<double>(j)))
                .ok());
      }
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  auto position_at = [constant_velocity](double t) {
    const double base = 10.0 + 0.8 * t;
    // The wobble keeps a non-constant-velocity observer unpredictable.
    const double wobble = constant_velocity ? 0.0 : 3.0 * std::sin(t);
    return Vec(base + wobble, base - wobble);
  };

  std::set<MotionSegment::Key> delivered;
  uint64_t degraded_frames = 0;
  double last_t = 0.0;
  Vec last_pos(2);
  auto run_frames = [&](int from, int to) {
    for (int i = from; i <= to; ++i) {
      const double t = 0.6 * i;
      const Vec pos = position_at(t);
      const Vec vel(0.8, 0.8);
      // Budget squeeze on a band of early frames: budget-degraded frames
      // must heal exactly like fault-degraded ones.
      if (i >= 20 && i < 30) {
        budget.ArmFrame({0, /*node_budget=*/5});
      } else {
        budget.Disarm();
      }
      auto lock = gate.LockShared();
      auto frame = session.OnFrame(t, pos, vel);
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      for (const MotionSegment& m : frame->fresh) delivered.insert(m.key());
      if (frame->integrity == ResultIntegrity::kPartial) ++degraded_frames;
      last_t = t;
      last_pos = pos;
    }
  };

  run_frames(1, 60);
  writer_stop.store(true);
  writer.join();
  {  // One empty exclusive section publishes the writer's last batch.
    auto guard = gate.LockExclusive();
  }
  const uint64_t reads_at_recovery = injector.reads_seen();
  run_frames(61, 120);

  // Preconditions: the run really did degrade, and the fault window really
  // did close before the recovery half of the run began — every read in
  // frames 61..120 passed clean.
  ASSERT_GT(degraded_frames, 0u);
  ASSERT_GT(injector.faults_injected(), 0u);
  ASSERT_GE(reads_at_recovery, fault_options.stop_after);
  ASSERT_GT(injector.reads_seen(), reads_at_recovery);

  // Oracle: a fresh NPDQ snapshot on the final tree retrieves everything
  // visible in the final frame's query box. Every one of those objects
  // must have been delivered at some frame — nothing a degraded snapshot
  // masked may stay lost once the faults cleared. Exact leaf semantics:
  // the default bounding-box test would also count fast movers whose rect
  // overlaps the box but whose trajectory never enters the window — objects
  // no entry-event (PDQ) service is required to deliver.
  NpdqOptions oracle_options;
  oracle_options.leaf_semantics = LeafSemantics::kExact;
  oracle_options.spatial_pruning = SpatialPruning::kNodeContained;
  NonPredictiveDynamicQuery oracle(fx.tree.get(), oracle_options);
  const StBox final_box(Box::Centered(last_pos, options.window),
                        Interval(last_t - 0.6, last_t));
  auto visible = oracle.Execute(final_box);
  ASSERT_TRUE(visible.ok());
  ASSERT_GT(visible->size(), 0u);
  std::vector<MotionSegment::Key> missing;
  for (const MotionSegment& m : *visible) {
    if (delivered.count(m.key()) == 0) missing.push_back(m.key());
  }
  EXPECT_TRUE(missing.empty())
      << missing.size() << " of " << visible->size()
      << " visible objects were never delivered";
}

TEST(NoPermanentLossTest, HandoffSessionRecoversEverythingOnceFaultsClear) {
  NoLossSweep(/*constant_velocity=*/true, 31, /*stop_after=*/30);
  NoLossSweep(/*constant_velocity=*/true, 32, /*stop_after=*/30);
}

TEST(NoPermanentLossTest, NpdqSessionRecoversEverythingOnceFaultsClear) {
  NoLossSweep(/*constant_velocity=*/false, 33, /*stop_after=*/150);
  NoLossSweep(/*constant_velocity=*/false, 34, /*stop_after=*/150);
}

}  // namespace
}  // namespace dqmo
