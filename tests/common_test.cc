// Tests for the common substrate: Status, Result, Rng, string utilities,
// environment helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "common/env.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace dqmo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 10; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    DQMO_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnExtractsValue) {
  auto producer = []() -> Result<int> { return 5; };
  auto consumer = [&]() -> Result<int> {
    DQMO_ASSIGN_OR_RETURN(int v, producer());
    return v + 1;
  };
  ASSERT_TRUE(consumer().ok());
  EXPECT_EQ(consumer().value(), 6);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto producer = []() -> Result<int> { return Status::IOError("disk"); };
  auto consumer = [&]() -> Result<int> {
    DQMO_ASSIGN_OR_RETURN(int v, producer());
    return v + 1;
  };
  EXPECT_TRUE(consumer().status().IsIOError());
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.0, 5.5);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.5);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(2, 5));
  EXPECT_EQ(seen, (std::set<int>{2, 3, 4, 5}));
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(10);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.Fork();
  // The fork must differ from the parent's continued stream.
  EXPECT_NE(child.NextU64(), a.NextU64());
}

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("a=%d b=%s", 3, "xy"), "a=3 b=xy");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"a"}, ","), "a");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
  EXPECT_EQ(FormatDouble(-3.1400001, 2), "-3.14");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(EnvTest, FallbacksWhenUnset) {
  ::unsetenv("DQMO_TEST_VAR");
  EXPECT_EQ(GetEnvString("DQMO_TEST_VAR", "dflt"), "dflt");
  EXPECT_EQ(GetEnvInt("DQMO_TEST_VAR", 17), 17);
  EXPECT_EQ(GetEnvBool("DQMO_TEST_VAR", true), true);
}

TEST(EnvTest, ParsesValues) {
  ::setenv("DQMO_TEST_VAR", "42", 1);
  EXPECT_EQ(GetEnvInt("DQMO_TEST_VAR", 0), 42);
  EXPECT_EQ(GetEnvString("DQMO_TEST_VAR", ""), "42");
  ::setenv("DQMO_TEST_VAR", "true", 1);
  EXPECT_TRUE(GetEnvBool("DQMO_TEST_VAR", false));
  ::setenv("DQMO_TEST_VAR", "0", 1);
  EXPECT_FALSE(GetEnvBool("DQMO_TEST_VAR", true));
  ::setenv("DQMO_TEST_VAR", "garbage", 1);
  EXPECT_EQ(GetEnvInt("DQMO_TEST_VAR", 5), 5);
  ::unsetenv("DQMO_TEST_VAR");
}

}  // namespace
}  // namespace dqmo
