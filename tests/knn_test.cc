// Tests for the kNN extension (future-work item (i)): snapshot best-first
// kNN against brute force, and the moving-query-point incremental variant.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "query/knn.h"
#include "test_util.h"
#include "workload/data_generator.h"

namespace dqmo {
namespace {

using ::dqmo::testing::RandomPoint;
using ::dqmo::testing::RandomSegments;

struct KnnFixture {
  PageFile file;
  std::unique_ptr<RTree> tree;
  std::vector<MotionSegment> data;
};

void BuildFixture(KnnFixture* fx, uint64_t seed, int n = 4000) {
  auto tree = RTree::Create(&fx->file, RTree::Options());
  ASSERT_TRUE(tree.ok());
  fx->tree = std::move(tree).value();
  Rng rng(seed);
  fx->data = RandomSegments(&rng, n, 2, 100, 100, /*max_duration=*/5.0);
  for (const auto& m : fx->data) ASSERT_TRUE(fx->tree->Insert(m).ok());
}

std::vector<Neighbor> BruteForceKnn(const std::vector<MotionSegment>& data,
                                    const Vec& point, double t, int k) {
  std::vector<Neighbor> all;
  for (const auto& m : data) {
    if (!m.seg.time.Contains(t)) continue;
    all.push_back(Neighbor{m, m.seg.DistanceAt(t, point)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  });
  if (static_cast<int>(all.size()) > k) {
    all.resize(static_cast<size_t>(k));
  }
  return all;
}

TEST(KnnTest, RejectsBadArguments) {
  KnnFixture fx;
  BuildFixture(&fx, 1, 200);
  QueryStats stats;
  EXPECT_TRUE(KnnAt(*fx.tree, Vec(1.0, 1.0), 5.0, 0, &stats)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(KnnAt(*fx.tree, Vec(1.0, 1.0, 1.0), 5.0, 3, &stats)
                  .status()
                  .IsInvalidArgument());
}

class KnnEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(KnnEquivalence, MatchesBruteForce) {
  const int k = GetParam();
  KnnFixture fx;
  BuildFixture(&fx, static_cast<uint64_t>(k) * 13);
  Rng rng(static_cast<uint64_t>(k) + 100);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec point = RandomPoint(&rng, 2, 100);
    const double t = rng.Uniform(0.0, 100.0);
    QueryStats stats;
    auto result = KnnAt(*fx.tree, point, t, k, &stats);
    ASSERT_TRUE(result.ok());
    const auto expected = BruteForceKnn(fx.data, point, t, k);
    ASSERT_EQ(result->size(), expected.size());
    for (size_t i = 0; i < result->size(); ++i) {
      // Distances must agree exactly (ties may reorder equal-distance
      // neighbors, so compare the distance sequence).
      EXPECT_DOUBLE_EQ((*result)[i].distance, expected[i].distance);
    }
    // Result is sorted ascending.
    for (size_t i = 1; i < result->size(); ++i) {
      EXPECT_LE((*result)[i - 1].distance, (*result)[i].distance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnEquivalence, ::testing::Values(1, 5, 20));

TEST(KnnTest, FewerThanKAliveReturnsAll) {
  KnnFixture fx;
  BuildFixture(&fx, 7, 30);
  QueryStats stats;
  const double t = 50.0;
  auto result = KnnAt(*fx.tree, Vec(50, 50), t, 1000, &stats);
  ASSERT_TRUE(result.ok());
  size_t alive = 0;
  for (const auto& m : fx.data) {
    if (m.seg.time.Contains(t)) ++alive;
  }
  EXPECT_EQ(result->size(), alive);
}

TEST(KnnTest, PruneBoundLimitsResults) {
  KnnFixture fx;
  BuildFixture(&fx, 8);
  QueryStats stats;
  const Vec point(50, 50);
  const double t = 42.0;
  auto bounded = KnnAt(*fx.tree, point, t, 100, &stats, nullptr, 5.0);
  ASSERT_TRUE(bounded.ok());
  for (const auto& n : *bounded) EXPECT_LE(n.distance, 5.0);
}

// Fixture over *continuous* trajectories (all objects alive over the whole
// horizon, consecutive segments joining) — the documented soundness domain
// of the moving-kNN fence.
struct ContinuousKnnFixture {
  PageFile file;
  std::unique_ptr<RTree> tree;
  std::vector<MotionSegment> data;
};

void BuildContinuousFixture(ContinuousKnnFixture* fx, uint64_t seed,
                            int objects = 300) {
  auto tree = RTree::Create(&fx->file, RTree::Options());
  ASSERT_TRUE(tree.ok());
  fx->tree = std::move(tree).value();
  DataGeneratorOptions options;
  options.num_objects = objects;
  options.horizon = 50.0;
  options.seed = seed;
  auto data = GenerateMotionData(options);
  ASSERT_TRUE(data.ok());
  fx->data = std::move(*data);
  for (auto& m : fx->data) {
    m.seg = QuantizeStored(m.seg);  // Match the stored form exactly.
    ASSERT_TRUE(fx->tree->Insert(m).ok());
  }
}

// Float32 quantization can open tiny gaps between consecutive segments of
// one object; give the fence that much slack.
constexpr double kQuantizationMargin = 1e-3;

TEST(MovingKnnTest, MatchesSnapshotKnnAtEachStep) {
  ContinuousKnnFixture fx;
  BuildContinuousFixture(&fx, 9);
  MovingKnnQuery::Options options;
  options.discontinuity_margin = kQuantizationMargin;
  MovingKnnQuery moving(fx.tree.get(), 10, options);
  Rng rng(91);
  Vec point(20, 20);
  // Fine steps: cached candidates survive between instants often enough to
  // exercise the cache path (segment turnover invalidates it otherwise).
  for (double t = 10.0; t < 14.0; t += 0.05) {
    point[0] += rng.Uniform(0.0, 0.1);
    point[1] += rng.Uniform(0.0, 0.1);
    auto incremental = moving.At(t, point);
    ASSERT_TRUE(incremental.ok());
    const auto expected = BruteForceKnn(fx.data, point, t, 10);
    ASSERT_EQ(incremental->size(), expected.size()) << "t=" << t;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_DOUBLE_EQ((*incremental)[i].distance, expected[i].distance)
          << "t=" << t << " i=" << i;
    }
  }
  // The cache must actually have been exercised for this check to mean
  // anything.
  EXPECT_GT(moving.cache_answers(), 0u);
  EXPECT_GT(moving.full_searches(), 0u);
}

TEST(MovingKnnTest, RejectsTimeGoingBackwards) {
  KnnFixture fx;
  BuildFixture(&fx, 10, 500);
  MovingKnnQuery moving(fx.tree.get(), 3);
  ASSERT_TRUE(moving.At(5.0, Vec(10, 10)).ok());
  EXPECT_TRUE(moving.At(4.0, Vec(10, 10)).status().IsInvalidArgument());
}

TEST(MovingKnnTest, FenceAnswersFromCacheForSmoothMotion) {
  ContinuousKnnFixture fx;
  BuildContinuousFixture(&fx, 11, 800);
  const int k = 5;
  MovingKnnQuery::Options options;
  options.discontinuity_margin = kQuantizationMargin;
  MovingKnnQuery moving(fx.tree.get(), k, options);
  // Slow query (0.04 u/t in a space where objects move ~1 u/t): most steps
  // must be answered from the cache, with zero disk accesses.
  for (double t = 10.0; t <= 20.0; t += 0.01) {
    ASSERT_TRUE(moving.At(t, Vec(30.0 + 4 * (t - 10.0) * 0.01, 50.0)).ok());
  }
  EXPECT_GT(moving.cache_answers(), moving.full_searches());
  const uint64_t incremental_reads = moving.stats().node_reads;
  // Fresh searches at the same instants cost far more I/O.
  QueryStats fresh;
  for (double t = 10.0; t <= 20.0; t += 0.01) {
    ASSERT_TRUE(KnnAt(*fx.tree, Vec(30.0 + 4 * (t - 10.0) * 0.01, 50.0), t,
                      k, &fresh)
                    .ok());
  }
  EXPECT_LT(incremental_reads, fresh.node_reads / 4);
}

TEST(MovingKnnTest, InsertionInvalidatesCache) {
  ContinuousKnnFixture fx;
  BuildContinuousFixture(&fx, 12, 200);
  MovingKnnQuery::Options options;
  options.discontinuity_margin = kQuantizationMargin;
  MovingKnnQuery moving(fx.tree.get(), 5, options);
  ASSERT_TRUE(moving.At(10.0, Vec(50, 50)).ok());
  ASSERT_TRUE(moving.At(10.01, Vec(50, 50)).ok());
  const uint64_t cache_hits_before = moving.cache_answers();
  EXPECT_GT(cache_hits_before, 0u);
  // Insert a brand-new object right at the query point: the stamp guard
  // must force a full search that finds it.
  MotionSegment intruder(
      999999, StSegment(Vec(50, 50), Vec(50, 50), Interval(10.0, 12.0)));
  ASSERT_TRUE(fx.tree->Insert(intruder).ok());
  auto result = moving.At(10.02, Vec(50, 50));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(moving.cache_answers(), cache_hits_before);  // No stale answer.
  ASSERT_FALSE(result->empty());
  EXPECT_EQ(result->front().motion.oid, 999999u);
  EXPECT_NEAR(result->front().distance, 0.0, 1e-9);
}

}  // namespace
}  // namespace dqmo
