// Flight-recorder tests (common/recorder.h): ring semantics, blackbox
// write/read round-trips (including corruption rejection), the anomaly
// auto-dump path, and — the acceptance program — a seeded breaker-trip
// chaos run whose auto-written blackbox provably contains the trip's
// cause event. The multi-writer hammer runs under TSan via tools/ci.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/recorder.h"
#include "server/health.h"
#include "server/router.h"
#include "server/scrubber.h"
#include "server/shard.h"
#include "storage/fault.h"
#include "workload/data_generator.h"

namespace dqmo {
namespace {

std::string ScratchDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Clears buffered events on entry and detaches the blackbox dir on exit
/// so tests cannot observe each other's events or trigger surprise dumps.
class RecorderGuard {
 public:
  RecorderGuard() {
    FlightRecorder::Global().SetBlackboxDir("");
    FlightRecorder::Global().ClearForTest();
  }
  ~RecorderGuard() {
    FlightRecorder::Global().SetBlackboxDir("");
    FlightRecorder::Global().ClearForTest();
  }
};

/// Sum of buffered events of `kind` across all thread sections.
uint64_t CountKind(const std::vector<BlackboxDump::ThreadSection>& sections,
                   FlightEventKind kind) {
  uint64_t n = 0;
  for (const auto& section : sections) {
    for (const FlightEvent& ev : section.events) {
      if (ev.kind == kind) ++n;
    }
  }
  return n;
}

TEST(FlightRecorderTest, RecordsAndSnapshotsInOrder) {
  RecorderGuard guard;
  for (uint64_t i = 0; i < 10; ++i) {
    FlightRecorder::Record(FlightEventKind::kMark, static_cast<int>(i), i);
  }
  const auto sections = FlightRecorder::Global().Snapshot();
  uint64_t marks = 0;
  for (const auto& section : sections) {
    uint64_t prev_ts = 0;
    uint64_t prev_detail = 0;
    for (const FlightEvent& ev : section.events) {
      if (ev.kind != FlightEventKind::kMark) continue;
      EXPECT_GE(ev.ts_ns, prev_ts) << "events not oldest-first";
      if (marks > 0) {
        EXPECT_GT(ev.detail, prev_detail);
      }
      prev_ts = ev.ts_ns;
      prev_detail = ev.detail;
      EXPECT_EQ(ev.shard, static_cast<int16_t>(ev.detail));
      ++marks;
    }
  }
  EXPECT_EQ(marks, 10u);
}

TEST(FlightRecorderTest, RingWrapKeepsNewestEvents) {
  RecorderGuard guard;
  const size_t cap = FlightRecorder::Global().ring_capacity();
  ASSERT_GT(cap, 0u);
  const uint64_t total = static_cast<uint64_t>(cap) + 100;
  for (uint64_t i = 0; i < total; ++i) {
    FlightRecorder::Record(FlightEventKind::kMark, -1, i);
  }
  const auto sections = FlightRecorder::Global().Snapshot();
  // Find this thread's section: the one holding the newest mark.
  bool found = false;
  for (const auto& section : sections) {
    if (section.events.empty()) continue;
    if (section.events.back().detail != total - 1) continue;
    found = true;
    EXPECT_GE(section.recorded, total);
    EXPECT_LE(section.events.size(), cap);
    // The buffered window is exactly the newest `cap` events, in order.
    const uint64_t oldest = total - section.events.size();
    for (size_t i = 0; i < section.events.size(); ++i) {
      EXPECT_EQ(section.events[i].detail, oldest + i);
    }
  }
  EXPECT_TRUE(found) << "no section held the newest event";
}

TEST(FlightRecorderTest, DisabledRecorderDropsEvents) {
  RecorderGuard guard;
  SetRecorderEnabled(false);
  FlightRecorder::Record(FlightEventKind::kMark, -1, 1);
  SetRecorderEnabled(true);
  EXPECT_EQ(CountKind(FlightRecorder::Global().Snapshot(),
                      FlightEventKind::kMark),
            0u);
}

TEST(FlightRecorderTest, BlackboxRoundTripPreservesEverything) {
  RecorderGuard guard;
  FlightRecorder::Record(FlightEventKind::kBreakerOpen, 3, 1);
  FlightRecorder::Record(FlightEventKind::kWalSync, -1, 17);
  FlightRecorder::Record(FlightEventKind::kGovernorLevel, -1, 2);
  const std::string dir = ScratchDir("dqmo_recorder_rt");
  const std::string path = dir + "/box.dqbb";
  ASSERT_TRUE(
      FlightRecorder::Global().WriteBlackbox(path, "unit round-trip").ok());

  BlackboxDump dump;
  ASSERT_TRUE(FlightRecorder::ReadBlackbox(path, &dump).ok());
  EXPECT_EQ(dump.version, 1u);
  EXPECT_EQ(dump.reason, "unit round-trip");
  EXPECT_GT(dump.snapshot_ns, 0u);
  EXPECT_GT(dump.wall_unix_us, 0u);
  std::vector<BlackboxDump::ThreadSection> sections = dump.threads;
  EXPECT_EQ(CountKind(sections, FlightEventKind::kBreakerOpen), 1u);
  EXPECT_EQ(CountKind(sections, FlightEventKind::kWalSync), 1u);
  EXPECT_EQ(CountKind(sections, FlightEventKind::kGovernorLevel), 1u);
  for (const auto& section : sections) {
    for (const FlightEvent& ev : section.events) {
      if (ev.kind == FlightEventKind::kBreakerOpen) {
        EXPECT_EQ(ev.shard, 3);
        EXPECT_EQ(ev.detail, 1u);
      }
      if (ev.kind == FlightEventKind::kWalSync) {
        EXPECT_EQ(ev.detail, 17u);
      }
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(FlightRecorderTest, CorruptBlackboxIsRejected) {
  RecorderGuard guard;
  FlightRecorder::Record(FlightEventKind::kMark, -1, 1);
  const std::string dir = ScratchDir("dqmo_recorder_bad");
  const std::string path = dir + "/box.dqbb";
  ASSERT_TRUE(FlightRecorder::Global().WriteBlackbox(path, "victim").ok());

  // Flip one byte in the event payload region; the CRC trailer must
  // catch it.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  BlackboxDump dump;
  EXPECT_FALSE(FlightRecorder::ReadBlackbox(path, &dump).ok());

  BlackboxDump missing;
  EXPECT_FALSE(
      FlightRecorder::ReadBlackbox(dir + "/nope.dqbb", &missing).ok());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(FlightRecorderTest, AutoDumpRequiresDirAndRateLimits) {
  RecorderGuard guard;
  // No directory configured: the anomaly hook is a no-op.
  EXPECT_FALSE(FlightRecorder::Global().MaybeAutoDump("no dir"));

  const std::string dir = ScratchDir("dqmo_recorder_auto");
  FlightRecorder::Global().SetBlackboxDir(dir);
  FlightRecorder::Record(FlightEventKind::kMark, -1, 7);
  const bool first = FlightRecorder::Global().MaybeAutoDump("first anomaly");
  // A second trigger within the same second must be swallowed.
  const bool second = FlightRecorder::Global().MaybeAutoDump("flap");
  FlightRecorder::Global().SetBlackboxDir("");
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);

  size_t dumps = 0;
  std::string dump_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++dumps;
    dump_path = entry.path().string();
  }
  ASSERT_EQ(dumps, 1u);
  BlackboxDump dump;
  ASSERT_TRUE(FlightRecorder::ReadBlackbox(dump_path, &dump).ok());
  EXPECT_EQ(dump.reason, "first anomaly");
  EXPECT_GE(CountKind(dump.threads, FlightEventKind::kMark), 1u);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Acceptance program: a seeded chaos run that trips one shard's breaker
// auto-writes a blackbox whose decoded event stream contains the trip's
// cause — the kBreakerOpen event for that shard, preceded by the
// quarantine marker the breaker records alongside it.

TEST(FlightRecorderChaosTest, BreakerTripAutoDumpContainsCauseEvent) {
  RecorderGuard guard;
  DataGeneratorOptions dopt;
  dopt.num_objects = 200;
  dopt.horizon = 12.0;
  dopt.seed = 21;
  dopt.shape = WorkloadShape::kUniform;
  auto data = GenerateMotionData(dopt);
  ASSERT_TRUE(data.ok());

  ShardedEngineOptions eopt;
  eopt.num_shards = 4;
  eopt.cache_nodes = 0;  // Every node visit reaches the breaker-gated pool.
  eopt.failure_domains = true;
  eopt.breaker.consecutive_failures = 2;
  eopt.breaker.cooldown_frames = 0;
  auto engine = ShardedEngine::Create(eopt);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->InsertBatch(*data).ok());

  const std::string dir = ScratchDir("dqmo_recorder_chaos");
  FlightRecorder::Global().SetBlackboxDir(dir);

  const int sick = 2;
  SessionSpec spec;
  spec.kind = SessionKind::kNpdq;  // Re-reads the tree every frame.
  spec.seed = 121;
  spec.frames = 12;
  spec.t0 = 1.0;
  spec.region_hi = 94.0;
  ShardRouter::Options ropt;
  ropt.spatial_prune = false;
  ropt.frame_hook = [&](int frame) {
    if (frame == 4) {
      FaultInjector::Options f;
      f.fail_every_kth = 1;  // Every read fails: the shard is dead.
      (*engine)->ArmShardFault(sick, f);
    }
  };
  const ShardedSessionResult res = ShardRouter(engine->get(), ropt).RunOne(spec);
  FlightRecorder::Global().SetBlackboxDir("");
  ASSERT_TRUE(res.result.status.ok()) << res.result.status.ToString();
  ASSERT_GE((*engine)->breaker(sick)->open_events(), 1u);

  // The trip auto-dumped exactly once (rate limit absorbs re-trips).
  std::vector<std::string> dumps;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    dumps.push_back(entry.path().string());
  }
  ASSERT_GE(dumps.size(), 1u);
  std::sort(dumps.begin(), dumps.end());

  BlackboxDump dump;
  ASSERT_TRUE(FlightRecorder::ReadBlackbox(dumps.front(), &dump).ok());
  EXPECT_NE(dump.reason.find("breaker open"), std::string::npos)
      << dump.reason;
  bool cause_seen = false;
  for (const auto& section : dump.threads) {
    for (const FlightEvent& ev : section.events) {
      if (ev.kind == FlightEventKind::kBreakerOpen && ev.shard == sick) {
        cause_seen = true;
      }
      // No other shard's breaker may have tripped in this program.
      if (ev.kind == FlightEventKind::kBreakerOpen) {
        EXPECT_EQ(ev.shard, sick);
      }
    }
  }
  EXPECT_TRUE(cause_seen)
      << "blackbox dump does not contain the kBreakerOpen cause event";
  EXPECT_GE(CountKind(dump.threads, FlightEventKind::kQuarantine), 1u);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Multi-writer hammer (run under TSan by tools/ci.sh): every thread owns
// its ring, so concurrent recording plus snapshotting plus a blackbox
// write must be race-free. Totals are exact per thread (recording never
// drops while enabled); buffered windows are bounded by the ring.

TEST(FlightRecorderConcurrencyTest, WritersSnapshotsAndDumpsRaceCleanly) {
  RecorderGuard guard;
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([t] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        FlightRecorder::Record(FlightEventKind::kMark, t, i);
      }
    });
  }
  threads.emplace_back([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto sections = FlightRecorder::Global().Snapshot();
      for (const auto& section : sections) {
        // A mid-write slot may be half-stamped; the structure must hold.
        EXPECT_LE(section.events.size(),
                  FlightRecorder::Global().ring_capacity());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int t = 0; t < kWriters; ++t) threads[static_cast<size_t>(t)].join();
  stop.store(true);
  threads.back().join();

  const std::string dir = ScratchDir("dqmo_recorder_hammer");
  const std::string path = dir + "/box.dqbb";
  ASSERT_TRUE(FlightRecorder::Global().WriteBlackbox(path, "hammer").ok());
  BlackboxDump dump;
  ASSERT_TRUE(FlightRecorder::ReadBlackbox(path, &dump).ok());
  uint64_t recorded = 0;
  for (const auto& section : dump.threads) recorded += section.recorded;
  EXPECT_GE(recorded, static_cast<uint64_t>(kWriters) * kPerWriter);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace dqmo
