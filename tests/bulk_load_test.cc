// Tests for STR bulk loading: structural validity and query equivalence
// with an insertion-built tree.
#include <gtest/gtest.h>

#include "common/random.h"
#include "rtree/bulk_load.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::BruteForceRange;
using ::dqmo::testing::KeysOf;
using ::dqmo::testing::RandomSegments;

TEST(BulkLoadTest, EmptyInputYieldsEmptyTree) {
  PageFile file;
  BulkLoadOptions options;
  auto tree = BulkLoad(&file, {}, options);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->num_segments(), 0u);
  EXPECT_EQ((*tree)->height(), 1);
}

TEST(BulkLoadTest, SingleLeafWhenSmall) {
  PageFile file;
  Rng rng(1);
  BulkLoadOptions options;
  auto tree = BulkLoad(&file, RandomSegments(&rng, 20, 2, 100, 100), options);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->num_segments(), 20u);
  EXPECT_EQ((*tree)->height(), 1);
  EXPECT_TRUE((*tree)->CheckInvariants(/*check_min_fill=*/false).ok());
}

TEST(BulkLoadTest, RejectsBadPackFraction) {
  PageFile file;
  BulkLoadOptions options;
  options.pack_fraction = 0.0;
  EXPECT_TRUE(BulkLoad(&file, {}, options).status().IsInvalidArgument());
  options.pack_fraction = 1.5;
  EXPECT_TRUE(BulkLoad(&file, {}, options).status().IsInvalidArgument());
}

TEST(BulkLoadTest, RejectsDimsMismatch) {
  PageFile file;
  BulkLoadOptions options;  // dims = 2.
  std::vector<MotionSegment> segs;
  segs.emplace_back(1, StSegment(Vec(0.0, 0.0, 0.0), Vec(1.0, 1.0, 1.0),
                                 Interval(0.0, 1.0)));
  EXPECT_TRUE(BulkLoad(&file, segs, options).status().IsInvalidArgument());
}

class BulkLoadEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BulkLoadEquivalence, MatchesBruteForceAndInsertionBuild) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 7919);
  const auto data = RandomSegments(&rng, n, 2, 100, 100);

  PageFile bulk_file;
  BulkLoadOptions options;
  auto bulk_tree = BulkLoad(&bulk_file, data, options);
  ASSERT_TRUE(bulk_tree.ok()) << bulk_tree.status().ToString();
  EXPECT_EQ((*bulk_tree)->num_segments(), static_cast<uint64_t>(n));
  ASSERT_TRUE(
      (*bulk_tree)->CheckInvariants(/*check_min_fill=*/false).ok());

  PageFile insert_file;
  auto insert_tree = RTree::Create(&insert_file, options.tree);
  ASSERT_TRUE(insert_tree.ok());
  for (const auto& m : data) ASSERT_TRUE((*insert_tree)->Insert(m).ok());

  for (int q = 0; q < 40; ++q) {
    const StBox query = dqmo::testing::RandomQueryBox(&rng, 2, 100, 100);
    QueryStats s1;
    QueryStats s2;
    auto from_bulk = (*bulk_tree)->RangeSearch(query, &s1);
    auto from_insert = (*insert_tree)->RangeSearch(query, &s2);
    ASSERT_TRUE(from_bulk.ok());
    ASSERT_TRUE(from_insert.ok());
    const auto expected = KeysOf(BruteForceRange(data, query));
    EXPECT_EQ(KeysOf(*from_bulk), expected);
    EXPECT_EQ(KeysOf(*from_insert), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadEquivalence,
                         ::testing::Values(100, 1000, 5000, 20000));

TEST(BulkLoadTest, PackedTreeIsShallowerOrEqual) {
  Rng rng(9);
  const auto data = RandomSegments(&rng, 20000, 2, 100, 100);
  PageFile bulk_file;
  BulkLoadOptions options;
  options.pack_fraction = 1.0;  // Fully packed.
  auto bulk_tree = BulkLoad(&bulk_file, data, options);
  ASSERT_TRUE(bulk_tree.ok());
  PageFile insert_file;
  auto insert_tree = RTree::Create(&insert_file, options.tree);
  ASSERT_TRUE(insert_tree.ok());
  for (const auto& m : data) ASSERT_TRUE((*insert_tree)->Insert(m).ok());
  EXPECT_LE((*bulk_tree)->height(), (*insert_tree)->height());
  EXPECT_LT((*bulk_tree)->num_nodes(), (*insert_tree)->num_nodes());
}

}  // namespace
}  // namespace dqmo
