// Tests for the quadratic split and the same-path "forced entry" rule that
// PDQ update management depends on (Sect. 4.1).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "rtree/split.h"
#include "test_util.h"

namespace dqmo {
namespace {

std::vector<StBox> RandomBoxes(Rng* rng, int n) {
  std::vector<StBox> boxes;
  boxes.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    boxes.push_back(dqmo::testing::RandomQueryBox(rng, 2, 100, 100));
  }
  return boxes;
}

TEST(SplitMeasureTest, MonotoneUnderCover) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const StBox a = dqmo::testing::RandomQueryBox(&rng, 2, 100, 100);
    const StBox b = dqmo::testing::RandomQueryBox(&rng, 2, 100, 100);
    EXPECT_GE(SplitMeasure(a.Cover(b)) + 1e-12, SplitMeasure(a));
    EXPECT_GE(Enlargement(a, b), -1e-12);
    EXPECT_NEAR(Enlargement(a, a), 0.0, 1e-9);
  }
}

TEST(SplitMeasureTest, EmptyBoxHasZeroMeasure) {
  EXPECT_EQ(SplitMeasure(StBox()), 0.0);
}

TEST(SplitMeasureTest, DegenerateBoxesStillOrder) {
  // Point boxes: tiny but positive measures so ordering works.
  const StBox p(Box::Point(Vec(1.0, 1.0)), Interval::Point(0.0));
  const StBox q(Box(Interval(0.0, 10.0), Interval(0.0, 10.0)),
                Interval(0.0, 10.0));
  EXPECT_GT(SplitMeasure(p), 0.0);
  EXPECT_LT(SplitMeasure(p), SplitMeasure(q));
}

TEST(QuadraticSplitTest, PartitionIsCompleteAndDisjoint) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = rng.UniformInt(4, 60);
    const int min_fill = rng.UniformInt(1, n / 2);
    const std::vector<StBox> boxes = RandomBoxes(&rng, n);
    const SplitPlan plan = QuadraticSplit(boxes, min_fill);
    std::set<int> all;
    for (int i : plan.keep) all.insert(i);
    for (int i : plan.move) all.insert(i);
    EXPECT_EQ(static_cast<int>(all.size()), n);
    EXPECT_EQ(static_cast<int>(plan.keep.size() + plan.move.size()), n);
    EXPECT_GE(static_cast<int>(plan.keep.size()), min_fill);
    EXPECT_GE(static_cast<int>(plan.move.size()), min_fill);
  }
}

TEST(QuadraticSplitTest, ForcedEntryAlwaysMoves) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = rng.UniformInt(4, 60);
    const int min_fill = rng.UniformInt(1, n / 2);
    const int forced = rng.UniformInt(0, n - 1);
    const std::vector<StBox> boxes = RandomBoxes(&rng, n);
    const SplitPlan plan = QuadraticSplit(boxes, min_fill, forced);
    EXPECT_TRUE(std::find(plan.move.begin(), plan.move.end(), forced) !=
                plan.move.end())
        << "forced index " << forced << " not in move group";
  }
}

TEST(QuadraticSplitTest, TwoEntriesSplitOneEach) {
  std::vector<StBox> boxes = {
      StBox(Box(Interval(0, 1), Interval(0, 1)), Interval(0, 1)),
      StBox(Box(Interval(5, 6), Interval(5, 6)), Interval(5, 6))};
  const SplitPlan plan = QuadraticSplit(boxes, 1);
  EXPECT_EQ(plan.keep.size(), 1u);
  EXPECT_EQ(plan.move.size(), 1u);
}

TEST(QuadraticSplitTest, SeparatesTwoObviousClusters) {
  // Two tight clusters far apart: the split should never mix them.
  std::vector<StBox> boxes;
  for (int i = 0; i < 10; ++i) {
    const double base = i * 0.01;
    boxes.push_back(StBox(
        Box(Interval(base, base + 1), Interval(base, base + 1)),
        Interval(0.0, 1.0)));
  }
  for (int i = 0; i < 10; ++i) {
    const double base = 90.0 + i * 0.01;
    boxes.push_back(StBox(
        Box(Interval(base, base + 1), Interval(base, base + 1)),
        Interval(0.0, 1.0)));
  }
  const SplitPlan plan = QuadraticSplit(boxes, 5);
  auto cluster_of = [](int idx) { return idx < 10 ? 0 : 1; };
  for (size_t i = 1; i < plan.keep.size(); ++i) {
    EXPECT_EQ(cluster_of(plan.keep[i]), cluster_of(plan.keep[0]));
  }
  for (size_t i = 1; i < plan.move.size(); ++i) {
    EXPECT_EQ(cluster_of(plan.move[i]), cluster_of(plan.move[0]));
  }
}

TEST(QuadraticSplitTest, MinFillHonoredUnderForcing) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 * rng.UniformInt(2, 20);
    const int min_fill = n / 2;  // Tightest legal min fill.
    const int forced = rng.UniformInt(0, n - 1);
    const std::vector<StBox> boxes = RandomBoxes(&rng, n);
    const SplitPlan plan = QuadraticSplit(boxes, min_fill, forced);
    EXPECT_EQ(static_cast<int>(plan.keep.size()), min_fill);
    EXPECT_EQ(static_cast<int>(plan.move.size()), min_fill);
  }
}

TEST(QuadraticSplitTest, OutputsSorted) {
  Rng rng(5);
  const std::vector<StBox> boxes = RandomBoxes(&rng, 30);
  const SplitPlan plan = QuadraticSplit(boxes, 10, 3);
  EXPECT_TRUE(std::is_sorted(plan.keep.begin(), plan.keep.end()));
  EXPECT_TRUE(std::is_sorted(plan.move.begin(), plan.move.end()));
}

TEST(RstarSplitTest, PartitionIsCompleteAndDisjoint) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = rng.UniformInt(4, 80);
    const int min_fill = rng.UniformInt(1, n / 2);
    const std::vector<StBox> boxes = RandomBoxes(&rng, n);
    const SplitPlan plan = RstarSplit(boxes, min_fill);
    std::set<int> all;
    for (int i : plan.keep) all.insert(i);
    for (int i : plan.move) all.insert(i);
    EXPECT_EQ(static_cast<int>(all.size()), n);
    EXPECT_GE(static_cast<int>(plan.keep.size()), min_fill);
    EXPECT_GE(static_cast<int>(plan.move.size()), min_fill);
  }
}

TEST(RstarSplitTest, ForcedEntryAlwaysMoves) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = rng.UniformInt(4, 60);
    const int min_fill = rng.UniformInt(1, n / 2);
    const int forced = rng.UniformInt(0, n - 1);
    const std::vector<StBox> boxes = RandomBoxes(&rng, n);
    const SplitPlan plan = RstarSplit(boxes, min_fill, forced);
    EXPECT_TRUE(std::find(plan.move.begin(), plan.move.end(), forced) !=
                plan.move.end());
  }
}

TEST(RstarSplitTest, SeparatesTwoObviousClusters) {
  std::vector<StBox> boxes;
  for (int i = 0; i < 10; ++i) {
    const double base = i * 0.01;
    boxes.push_back(StBox(
        Box(Interval(base, base + 1), Interval(base, base + 1)),
        Interval(0.0, 1.0)));
  }
  for (int i = 0; i < 10; ++i) {
    const double base = 90.0 + i * 0.01;
    boxes.push_back(StBox(
        Box(Interval(base, base + 1), Interval(base, base + 1)),
        Interval(0.0, 1.0)));
  }
  const SplitPlan plan = RstarSplit(boxes, 5);
  auto cluster_of = [](int idx) { return idx < 10 ? 0 : 1; };
  for (size_t i = 1; i < plan.keep.size(); ++i) {
    EXPECT_EQ(cluster_of(plan.keep[i]), cluster_of(plan.keep[0]));
  }
  for (size_t i = 1; i < plan.move.size(); ++i) {
    EXPECT_EQ(cluster_of(plan.move[i]), cluster_of(plan.move[0]));
  }
}

TEST(RstarSplitTest, LowerOverlapOnMotionShapedBoxes) {
  // R*'s objective is overlap minimization. On workload-shaped inputs
  // (small motion-segment bounding boxes scattered in space — what real
  // node splits see) it must beat the quadratic algorithm on average.
  // Note this does NOT hold for adversarially large random rectangles,
  // where no sort axis separates anything; the bench abl_split_policy
  // measures the end-to-end effect.
  Rng rng(8);
  double quad_overlap = 0.0;
  double rstar_overlap = 0.0;
  auto group_overlap = [&](const std::vector<StBox>& boxes,
                           const SplitPlan& plan) {
    StBox a;
    StBox b;
    for (int i : plan.keep) a = a.Cover(boxes[static_cast<size_t>(i)]);
    for (int i : plan.move) b = b.Cover(boxes[static_cast<size_t>(i)]);
    const StBox inter = a.Intersect(b);
    return inter.empty() ? 0.0 : SplitMeasure(inter);
  };
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<StBox> boxes;
    for (int i = 0; i < 40; ++i) {
      boxes.push_back(QuantizeOutward(
          dqmo::testing::RandomSegment(&rng, static_cast<ObjectId>(i), 2,
                                       100, 100)
              .Bounds()));
    }
    quad_overlap += group_overlap(boxes, QuadraticSplit(boxes, 16));
    rstar_overlap += group_overlap(boxes, RstarSplit(boxes, 16));
  }
  EXPECT_LT(rstar_overlap, quad_overlap);
}

TEST(SplitEntriesTest, DispatchesOnPolicy) {
  Rng rng(9);
  const std::vector<StBox> boxes = RandomBoxes(&rng, 20);
  const SplitPlan q = SplitEntries(SplitPolicy::kQuadratic, boxes, 8, 2);
  const SplitPlan r = SplitEntries(SplitPolicy::kRstar, boxes, 8, 2);
  EXPECT_EQ(q.keep.size() + q.move.size(), 20u);
  EXPECT_EQ(r.keep.size() + r.move.size(), 20u);
}

}  // namespace
}  // namespace dqmo
