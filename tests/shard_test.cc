// Cross-shard differential tests for the sharded engine (server/shard.h)
// and its query router (server/router.h).
//
// The load-bearing claim of the sharding tentpole is *exactness*: an
// N-shard engine answers every query family byte-identically to the
// single-tree engine — same delivered objects, same FNV-1a checksums —
// under every workload shape, with and without the NPDQ fan-out prune,
// with concurrent inserts through the router, and (degraded, but never
// silently wrong) with storage faults injected into exactly one shard.
// The sweeps here compare three independent implementations pairwise:
// the brute-force oracles (tests/oracle.h), the single-tree executor, and
// the sharded router.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "oracle.h"
#include "server/executor.h"
#include "server/health.h"
#include "server/router.h"
#include "server/scrubber.h"
#include "server/shard.h"
#include "storage/fault.h"
#include "test_util.h"
#include "workload/data_generator.h"

namespace dqmo {
namespace {

using ::dqmo::testing::NaiveOracle;
using ::dqmo::testing::RandomQueryBox;
using ::dqmo::testing::ShardedOracle;

constexpr int kSweepSeeds = 8;
const int kShardCounts[] = {1, 3, 16};
const WorkloadShape kShapes[] = {WorkloadShape::kUniform,
                                 WorkloadShape::kSkewed,
                                 WorkloadShape::kClusteredFastMovers};

std::vector<MotionSegment> ShapedData(WorkloadShape shape, uint64_t seed,
                                      int objects = 150,
                                      double horizon = 12.0) {
  DataGeneratorOptions opt;
  opt.num_objects = objects;
  opt.horizon = horizon;
  opt.seed = seed;
  opt.shape = shape;
  auto data = GenerateMotionData(opt);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return data.ok() ? std::move(data).value() : std::vector<MotionSegment>{};
}

std::unique_ptr<ShardedEngine> BuildEngine(
    int shards, const std::vector<MotionSegment>& data,
    size_t cache_nodes = 512) {
  ShardedEngineOptions opt;
  opt.num_shards = shards;
  opt.cache_nodes = cache_nodes;
  auto engine = ShardedEngine::Create(opt);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  if (!engine.ok()) return nullptr;
  EXPECT_TRUE((*engine)->InsertBatch(data).ok());
  return std::move(engine).value();
}

struct FlatFixture {
  PageFile file;
  std::unique_ptr<RTree> tree;
};

void BuildFlat(FlatFixture* fx, const std::vector<MotionSegment>& data) {
  auto tree = RTree::Create(&fx->file, RTree::Options());
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  fx->tree = std::move(tree).value();
  for (const MotionSegment& m : data) {
    ASSERT_TRUE(fx->tree->Insert(m).ok());
  }
  ASSERT_TRUE(fx->file.Publish().ok());
}

/// The sweep's session specs: kSession exercises the PDQ/SPDQ handoff
/// machinery, kNpdq the snapshot deltas, kKnn the fence-cached search.
std::vector<SessionSpec> SweepSpecs(int seeds, int frames = 30,
                                    bool include_knn = true,
                                    double region_hi = 94.0) {
  const SessionKind kinds[] = {SessionKind::kSession, SessionKind::kNpdq,
                               SessionKind::kKnn};
  std::vector<SessionSpec> specs;
  for (int s = 0; s < seeds; ++s) {
    for (SessionKind kind : kinds) {
      if (kind == SessionKind::kKnn && !include_knn) continue;
      SessionSpec spec;
      spec.kind = kind;
      spec.seed = 100 + static_cast<uint64_t>(s);
      spec.frames = frames;
      spec.t0 = 1.0 + 0.25 * s;
      spec.region_hi = region_hi;
      specs.push_back(spec);
    }
  }
  return specs;
}

ExecutorReport FlatSerialRun(RTree* tree,
                             const std::vector<SessionSpec>& specs) {
  SessionScheduler::Options opt;  // Serial, reads the tree's file.
  return SessionScheduler(tree, opt).Run(specs);
}

void ExpectSameResults(const ExecutorReport& got, const ExecutorReport& want,
                       const std::string& label) {
  ASSERT_TRUE(got.status.ok()) << label << ": " << got.status.ToString();
  ASSERT_TRUE(want.status.ok()) << label << ": " << want.status.ToString();
  ASSERT_EQ(got.sessions.size(), want.sessions.size()) << label;
  for (size_t i = 0; i < got.sessions.size(); ++i) {
    EXPECT_EQ(got.sessions[i].checksum, want.sessions[i].checksum)
        << label << " session " << i;
    EXPECT_EQ(got.sessions[i].objects_delivered,
              want.sessions[i].objects_delivered)
        << label << " session " << i;
    EXPECT_EQ(got.sessions[i].frames_completed,
              want.sessions[i].frames_completed)
        << label << " session " << i;
  }
}

// ---------------------------------------------------------------------------
// ShardMap: the pure routing function.

TEST(ShardMapTest, RoutesEverySegmentInRangeAndPurely) {
  Rng rng(7);
  const std::vector<MotionSegment> data =
      ::dqmo::testing::RandomSegments(&rng, 500, 2, 100, 100);
  for (int n : {1, 2, 3, 5, 16, 64}) {
    for (bool split : {false, true}) {
      ShardMap map(n, 100.0, split, 1.5);
      ASSERT_EQ(map.num_shards(), n);
      EXPECT_EQ(map.fast_shards() + map.slow_shards(), n);
      for (const MotionSegment& m : data) {
        const int s = map.ShardOf(m);
        ASSERT_GE(s, 0);
        ASSERT_LT(s, n);
        EXPECT_EQ(map.ShardOf(m), s);  // Pure: same answer every time.
      }
      EXPECT_FALSE(map.Describe().empty());
    }
  }
}

TEST(ShardMapTest, SpeedSplitSeparatesFastAndSlowClasses) {
  ShardMap map(16, 100.0, /*speed_split=*/true, /*threshold=*/1.5);
  ASSERT_GT(map.fast_shards(), 0);
  ASSERT_GT(map.slow_shards(), 0);
  // Speed 4 over one time unit: fast class (ids after the slow run).
  MotionSegment fast(1, StSegment(Vec(50, 50), Vec(54, 50), Interval(0, 1)));
  EXPECT_GE(map.ShardOf(fast), map.slow_shards());
  // Speed ~0.4: slow class.
  MotionSegment slow(2, StSegment(Vec(50, 50), Vec(50.4, 50),
                                  Interval(0, 1)));
  EXPECT_LT(map.ShardOf(slow), map.slow_shards());
  // Positions far outside the space clamp into boundary cells, not out of
  // range.
  MotionSegment wild(3, StSegment(Vec(-900, 900), Vec(-900, 900),
                                  Interval(0, 1)));
  const int s = map.ShardOf(wild);
  EXPECT_GE(s, 0);
  EXPECT_LT(s, 16);
}

// ---------------------------------------------------------------------------
// ShardedOracle: partition invariants, independent of the engine.

TEST(ShardedOracleTest, PartitionExactAndMergedAnswersMatchFlatOracle) {
  for (WorkloadShape shape : kShapes) {
    const std::vector<MotionSegment> data = ShapedData(shape, 11, 120, 10.0);
    for (int n : kShardCounts) {
      ShardedOracle oracle(ShardMap(n, 100.0, true, 1.5));
      for (const MotionSegment& m : data) oracle.Insert(m);
      ASSERT_TRUE(oracle.PartitionExact())
          << "shape " << static_cast<int>(shape) << " shards " << n;

      Rng rng(23);
      for (int q = 0; q < 25; ++q) {
        const StBox box = RandomQueryBox(&rng, 2, 100, 10.0);
        std::set<MotionSegment::Key> flat_keys;
        for (const MotionSegment& m : oracle.flat().Snapshot(box)) {
          flat_keys.insert(m.key());
        }
        EXPECT_EQ(oracle.MergedSnapshot(box), flat_keys);
      }
      for (int q = 0; q < 25; ++q) {
        const Vec p = ::dqmo::testing::RandomPoint(&rng, 2, 100);
        const double t = rng.Uniform(0.0, 10.0);
        const auto merged = oracle.MergedKnn(p, t, 8);
        const auto flat = oracle.flat().Knn(p, t, 8);
        ASSERT_EQ(merged.size(), flat.size());
        for (size_t i = 0; i < merged.size(); ++i) {
          EXPECT_EQ(merged[i].distance, flat[i].distance);
          EXPECT_EQ(merged[i].motion.key(), flat[i].motion.key());
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// K-way merge properties.

MotionSegment Tagged(ObjectId oid, double t_lo, double marker) {
  // The marker rides in the geometry (not the key), so a test can tell
  // which duplicate survived the merge.
  return MotionSegment(
      oid, StSegment(Vec(marker, 0), Vec(marker, 1), Interval(t_lo, t_lo + 1)));
}

TEST(MergeStreamsTest, EmptyStreamsAndPassthrough) {
  std::vector<std::vector<MotionSegment>> empty(4);
  EXPECT_TRUE(MergeStreamsByEntryTime(&empty).empty());

  std::vector<std::vector<MotionSegment>> one(3);
  one[1] = {Tagged(1, 0.0, 1), Tagged(2, 0.5, 2), Tagged(3, 0.5, 3)};
  const auto merged = MergeStreamsByEntryTime(&one);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].oid, 1u);
  EXPECT_EQ(merged[1].oid, 2u);
  EXPECT_EQ(merged[2].oid, 3u);
}

TEST(MergeStreamsTest, DuplicateKeysKeepFirstStreamOccurrence) {
  // The same key in streams 2 and 0: the survivor must be stream 0's copy
  // (tie-stability by stream index), observable through the marker.
  std::vector<std::vector<MotionSegment>> streams(3);
  streams[2] = {Tagged(7, 1.0, /*marker=*/222)};
  streams[0] = {Tagged(7, 1.0, /*marker=*/0)};
  const auto merged = MergeStreamsByEntryTime(&streams);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].seg.p0[0], 0.0);
}

TEST(MergeStreamsTest, AdversarialTieFuzzMatchesReferenceMerge) {
  // Heavily tied keys (3 distinct entry times x 10 oids) scattered over a
  // random number of streams, including within-stream duplicates. The
  // merge must equal an independently computed reference: stable-sort all
  // (stream, pos) entries by (time.lo, key, stream, pos), then keep the
  // first occurrence of each key.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const int num_streams = 1 + static_cast<int>(rng.UniformU64(6));
    std::vector<std::vector<MotionSegment>> streams(
        static_cast<size_t>(num_streams));
    std::vector<std::vector<MotionSegment>> copy(streams.size());
    for (size_t s = 0; s < streams.size(); ++s) {
      const int count = static_cast<int>(rng.UniformU64(30));
      for (int i = 0; i < count; ++i) {
        const ObjectId oid = static_cast<ObjectId>(rng.UniformU64(10));
        const double t_lo = 0.5 * static_cast<double>(rng.UniformU64(3));
        streams[s].push_back(
            Tagged(oid, t_lo, static_cast<double>(s) * 1000 + i));
      }
      std::stable_sort(streams[s].begin(), streams[s].end(),
                       [](const MotionSegment& a, const MotionSegment& b) {
                         if (a.seg.time.lo != b.seg.time.lo) {
                           return a.seg.time.lo < b.seg.time.lo;
                         }
                         return a.key() < b.key();
                       });
      copy[s] = streams[s];
    }

    struct Ref {
      MotionSegment m;
      size_t stream;
      size_t pos;
    };
    std::vector<Ref> all;
    for (size_t s = 0; s < copy.size(); ++s) {
      for (size_t i = 0; i < copy[s].size(); ++i) {
        all.push_back(Ref{copy[s][i], s, i});
      }
    }
    std::stable_sort(all.begin(), all.end(), [](const Ref& a, const Ref& b) {
      if (a.m.seg.time.lo != b.m.seg.time.lo) {
        return a.m.seg.time.lo < b.m.seg.time.lo;
      }
      if (a.m.key() < b.m.key()) return true;
      if (b.m.key() < a.m.key()) return false;
      if (a.stream != b.stream) return a.stream < b.stream;
      return a.pos < b.pos;
    });
    std::vector<MotionSegment> expected;
    std::set<MotionSegment::Key> seen;
    for (const Ref& r : all) {
      if (seen.insert(r.m.key()).second) expected.push_back(r.m);
    }

    const auto merged = MergeStreamsByEntryTime(&streams);
    ASSERT_EQ(merged.size(), expected.size()) << "seed " << seed;
    for (size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].key(), expected[i].key()) << "seed " << seed;
      // The marker identifies the exact surviving duplicate.
      EXPECT_EQ(merged[i].seg.p0[0], expected[i].seg.p0[0])
          << "seed " << seed << " index " << i;
    }
  }
}

TEST(MergeNeighborsTest, SortsByDistanceThenKeyAndTruncates) {
  auto nb = [](ObjectId oid, double dist) {
    return Neighbor{
        MotionSegment(oid, StSegment(Vec(0, 0), Vec(1, 1), Interval(0, 1))),
        dist};
  };
  std::vector<std::vector<Neighbor>> streams = {
      {nb(5, 1.0), nb(1, 3.0)},
      {},
      {nb(2, 1.0), nb(9, 0.5), nb(3, 3.0)},
  };
  const auto merged = MergeNeighborsByDistance(streams, 4);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].motion.oid, 9u);  // 0.5
  EXPECT_EQ(merged[1].motion.oid, 2u);  // 1.0, key tie-break: oid 2 < 5
  EXPECT_EQ(merged[2].motion.oid, 5u);  // 1.0
  EXPECT_EQ(merged[3].motion.oid, 1u);  // 3.0, truncates oid 3 away

  EXPECT_TRUE(MergeNeighborsByDistance({}, 8).empty());
}

// ---------------------------------------------------------------------------
// The differential sweep: every workload shape x shard count x query
// family, N-shard router vs single-tree engine, byte-identical checksums.

TEST(ShardDifferentialTest, AllShapesAndShardCountsMatchSingleTree) {
  for (WorkloadShape shape : kShapes) {
    const std::vector<MotionSegment> data = ShapedData(shape, 42);
    FlatFixture flat;
    BuildFlat(&flat, data);
    const std::vector<SessionSpec> specs = SweepSpecs(kSweepSeeds);
    const ExecutorReport want = FlatSerialRun(flat.tree.get(), specs);
    ASSERT_TRUE(want.status.ok()) << want.status.ToString();

    for (int n : kShardCounts) {
      std::unique_ptr<ShardedEngine> engine = BuildEngine(n, data);
      ASSERT_NE(engine, nullptr);
      EXPECT_EQ(engine->num_segments(), data.size());
      ShardRouter router(engine.get());
      const ExecutorReport got = router.Run(specs);
      ExpectSameResults(got, want,
                        "shape " + std::to_string(static_cast<int>(shape)) +
                            " shards " + std::to_string(n));
      EXPECT_GT(got.total_objects, 0u);
    }
  }
}

TEST(ShardDifferentialTest, SpatialPruneOnAndOffAreByteIdentical) {
  const std::vector<MotionSegment> data =
      ShapedData(WorkloadShape::kSkewed, 5);
  std::unique_ptr<ShardedEngine> engine = BuildEngine(16, data);
  ASSERT_NE(engine, nullptr);
  const std::vector<SessionSpec> specs = SweepSpecs(4);

  ShardRouter::Options on;
  on.spatial_prune = true;
  ShardRouter::Options off;
  off.spatial_prune = false;
  const ExecutorReport got_on = ShardRouter(engine.get(), on).Run(specs);
  const ExecutorReport got_off = ShardRouter(engine.get(), off).Run(specs);
  ExpectSameResults(got_on, got_off, "prune on vs off");

  // The prune must actually fire for a skewed workload on 16 shards: a
  // confined observer's snapshot misses most grid cells.
  SessionSpec npdq;
  npdq.kind = SessionKind::kNpdq;
  npdq.seed = 3;
  npdq.frames = 30;
  const ShardedSessionResult one = ShardRouter(engine.get(), on).RunOne(npdq);
  ASSERT_TRUE(one.result.status.ok());
  EXPECT_GT(one.shard_frames_pruned, 0u);
  ASSERT_EQ(one.shard_stats.size(), 16u);
  QueryStats sum;
  for (const QueryStats& s : one.shard_stats) sum += s;
  EXPECT_EQ(sum.objects_returned.load(),
            one.result.stats.objects_returned.load());
}

TEST(ShardDifferentialTest, BulkLoadMatchesInsertPath) {
  const std::vector<MotionSegment> data =
      ShapedData(WorkloadShape::kUniform, 9);
  std::unique_ptr<ShardedEngine> inserted = BuildEngine(3, data);
  ASSERT_NE(inserted, nullptr);

  ShardedEngineOptions opt;
  opt.num_shards = 3;
  auto bulk = ShardedEngine::Create(opt);
  ASSERT_TRUE(bulk.ok()) << bulk.status().ToString();
  ASSERT_TRUE((*bulk)->BulkLoad(data).ok());
  EXPECT_EQ((*bulk)->num_segments(), data.size());

  const std::vector<SessionSpec> specs = SweepSpecs(3);
  const ExecutorReport a = ShardRouter(inserted.get()).Run(specs);
  const ExecutorReport b = ShardRouter(bulk->get()).Run(specs);
  ExpectSameResults(a, b, "insert vs bulk-load");
}

// ---------------------------------------------------------------------------
// Concurrent inserts through the router.

TEST(ShardConcurrencyTest, ConcurrentInsertsThroughRouterMatchSerialReplay) {
  // 8 reader sessions confined to [6, 70]^2 run through the router with 8
  // threads while a writer inserts motions confined to [90, 100]^2 through
  // the engine's routing facade. Disjoint regions: every interleaving must
  // deliver the same results as a serial replay on the fully updated
  // engine — and as the single-tree engine over the same final data.
  for (int n : {1, 4}) {
    const std::vector<MotionSegment> data =
        ShapedData(WorkloadShape::kUniform, 21);
    std::unique_ptr<ShardedEngine> engine = BuildEngine(n, data);
    ASSERT_NE(engine, nullptr);
    const std::vector<SessionSpec> specs =
        SweepSpecs(4, 30, /*include_knn=*/false, /*region_hi=*/70.0);

    std::atomic<bool> writer_failed{false};
    std::vector<MotionSegment> extra;
    Rng rng(4242);
    for (int i = 0; i < 64; ++i) {
      StSegment seg(Vec(rng.Uniform(90, 100), rng.Uniform(90, 100)),
                    Vec(rng.Uniform(90, 100), rng.Uniform(90, 100)),
                    Interval(rng.Uniform(0, 9), rng.Uniform(9, 12)));
      extra.emplace_back(static_cast<ObjectId>(200000 + i), seg);
    }
    std::thread writer([&engine, &extra, &writer_failed] {
      for (const MotionSegment& m : extra) {
        if (!engine->Insert(m).ok()) writer_failed.store(true);
        std::this_thread::yield();
      }
    });

    ShardRouter::Options copt;
    copt.num_threads = 8;
    const ExecutorReport concurrent =
        ShardRouter(engine.get(), copt).Run(specs);
    writer.join();
    ASSERT_FALSE(writer_failed.load());
    EXPECT_EQ(engine->num_segments(), data.size() + extra.size());

    const ExecutorReport serial = ShardRouter(engine.get()).Run(specs);
    ExpectSameResults(concurrent, serial,
                      "concurrent vs serial, shards " + std::to_string(n));

    // Third implementation: the single-tree engine over the final data.
    FlatFixture flat;
    std::vector<MotionSegment> all = data;
    all.insert(all.end(), extra.begin(), extra.end());
    BuildFlat(&flat, all);
    const ExecutorReport want = FlatSerialRun(flat.tree.get(), specs);
    ExpectSameResults(concurrent, want,
                      "concurrent vs flat, shards " + std::to_string(n));
    EXPECT_GT(concurrent.total_objects, 0u);
  }
}

TEST(ShardConcurrencyTest, RouterHammerEightReadersPerShardWriters) {
  // TSan fodder: 8 sharded reader sessions against 4 writer threads that
  // route inserts through the engine concurrently. Every reader frame
  // locks all shard gates shared (ascending); every insert takes one
  // shard's gate exclusive — no deadlock, no race, and the results match
  // a serial replay afterwards.
  const std::vector<MotionSegment> data =
      ShapedData(WorkloadShape::kClusteredFastMovers, 31);
  std::unique_ptr<ShardedEngine> engine = BuildEngine(8, data);
  ASSERT_NE(engine, nullptr);
  const std::vector<SessionSpec> specs =
      SweepSpecs(4, 25, /*include_knn=*/false, /*region_hi=*/70.0);

  std::atomic<bool> writer_failed{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&engine, &writer_failed, w] {
      Rng rng(9000 + static_cast<uint64_t>(w));
      for (int i = 0; i < 32; ++i) {
        // Mixed speeds so both shard classes take writes.
        const double speed = (i % 4 == 0) ? 5.0 : 0.5;
        const Vec p0(rng.Uniform(90, 100), rng.Uniform(90, 100));
        const Vec p1(std::min(100.0, p0[0] + speed), p0[1]);
        StSegment seg(p0, p1, Interval(rng.Uniform(0, 9),
                                       rng.Uniform(9, 12)));
        MotionSegment m(
            static_cast<ObjectId>(300000 + 1000 * w + i), seg);
        if (!engine->Insert(m).ok()) writer_failed.store(true);
        std::this_thread::yield();
      }
    });
  }

  ShardRouter::Options copt;
  copt.num_threads = 8;
  const ExecutorReport concurrent =
      ShardRouter(engine.get(), copt).Run(specs);
  for (std::thread& w : writers) w.join();
  ASSERT_FALSE(writer_failed.load());

  const ExecutorReport serial = ShardRouter(engine.get()).Run(specs);
  ExpectSameResults(concurrent, serial, "hammer");
}

// ---------------------------------------------------------------------------
// Fault containment: a fault in one shard degrades, never lies.

TEST(ShardFaultTest, FaultyShardDegradesToPartialWithSkipInItsSlot) {
  // Every page of shard 0's file fails permanently. The router must (a)
  // finish every session OK, (b) flag the affected frames kPartial with
  // the skips recorded in exactly shard 0's SkipReport slot, and (c)
  // deliver byte-identically to an engine that never held shard 0's
  // segments at all — degraded, but never silently wrong.
  const std::vector<MotionSegment> data =
      ShapedData(WorkloadShape::kUniform, 13);
  // No decoded-node cache: every node visit must reach the (faulty) pool.
  std::unique_ptr<ShardedEngine> engine = BuildEngine(4, data, 0);
  ASSERT_NE(engine, nullptr);
  const int faulty_shard = 0;

  FaultInjector::Options fopt;
  FaultInjector injector(fopt);
  ShardedEngine::Shard& bad = engine->shard(faulty_shard);
  for (PageId p = 0; p < bad.file->num_pages(); ++p) {
    injector.AddPermanentFault(p);
  }
  FaultyPageReader faulty(bad.file, &injector);
  bad.pool->set_source(&faulty);

  // Reference: the same engine shape with shard 0's segments dropped.
  std::vector<MotionSegment> filtered;
  for (const MotionSegment& m : data) {
    if (engine->map().ShardOf(m) != faulty_shard) filtered.push_back(m);
  }
  ASSERT_LT(filtered.size(), data.size());  // Shard 0 held something.
  std::unique_ptr<ShardedEngine> reference = BuildEngine(4, filtered, 0);
  ASSERT_NE(reference, nullptr);

  // Force evaluation of every shard every frame (no root-bounds prune) and
  // arm a never-stopping budget so traversals skip unreadable subtrees
  // instead of failing fast.
  ShardRouter::Options ropt;
  ropt.spatial_prune = false;
  ShardRouter faulty_router(engine.get(), ropt);
  ShardRouter reference_router(reference.get(), ropt);

  for (SessionKind kind :
       {SessionKind::kNpdq, SessionKind::kSession, SessionKind::kKnn}) {
    SessionSpec spec;
    spec.kind = kind;
    spec.seed = 77;
    spec.frames = 25;
    spec.frame_node_budget = 1000000000;  // Active but never stops.
    const ShardedSessionResult got = faulty_router.RunOne(spec);
    const ShardedSessionResult want = reference_router.RunOne(spec);

    ASSERT_TRUE(got.result.status.ok())
        << "kind " << static_cast<int>(kind) << ": "
        << got.result.status.ToString();
    EXPECT_EQ(got.result.checksum, want.result.checksum)
        << "kind " << static_cast<int>(kind);
    EXPECT_EQ(got.result.objects_delivered, want.result.objects_delivered);
    EXPECT_EQ(got.result.frames_completed, want.result.frames_completed);

    // Degradation is visible and attributed to the right shard.
    EXPECT_GT(got.frames_partial, 0u) << "kind " << static_cast<int>(kind);
    ASSERT_EQ(got.shard_skips.size(), 4u);
    EXPECT_GT(got.shard_skips[faulty_shard].pages_skipped(), 0u);
    for (int s = 1; s < 4; ++s) {
      EXPECT_EQ(got.shard_skips[s].pages_skipped(), 0u) << "shard " << s;
    }
    // The reference engine never skips anything.
    EXPECT_EQ(want.frames_partial, 0u);
  }
  bad.pool->set_source(bad.file);  // Restore before teardown.
}

TEST(ShardFaultTest, SlowReaderInOneShardKeepsResultsByteIdentical) {
  // Every other read of one shard is "slow" (served through a counting
  // sleeper — no wall-clock dependence). Latency in one shard must not
  // change any delivered byte.
  const std::vector<MotionSegment> data =
      ShapedData(WorkloadShape::kUniform, 17);
  const std::vector<SessionSpec> specs = SweepSpecs(3);

  std::unique_ptr<ShardedEngine> clean_engine = BuildEngine(4, data, 0);
  ASSERT_NE(clean_engine, nullptr);
  const ExecutorReport clean = ShardRouter(clean_engine.get()).Run(specs);

  // A second, identically built engine whose shard-1 pool is cold, so its
  // reads actually reach the wrapped (slow) source.
  std::unique_ptr<ShardedEngine> engine = BuildEngine(4, data, 0);
  ASSERT_NE(engine, nullptr);
  FaultInjector::Options fopt;
  fopt.slow_every_kth = 2;
  fopt.slow_read_delay_us = 500;
  FaultInjector injector(fopt);
  std::atomic<uint64_t> sleeps{0};
  ShardedEngine::Shard& slow = engine->shard(1);
  FaultyPageReader slow_reader(slow.file, &injector,
                               [&sleeps](uint64_t) { sleeps.fetch_add(1); });
  slow.pool->set_source(&slow_reader);

  const ExecutorReport delayed = ShardRouter(engine.get()).Run(specs);
  slow.pool->set_source(slow.file);
  ExpectSameResults(delayed, clean, "slow shard");
  EXPECT_GT(sleeps.load(), 0u);
}

// ---------------------------------------------------------------------------
// Aggregation + durable layout.

TEST(ShardedEngineTest, TotalIoStatsAggregatesWithoutDoubleCounting) {
  const std::vector<MotionSegment> data =
      ShapedData(WorkloadShape::kUniform, 3);
  std::unique_ptr<ShardedEngine> engine = BuildEngine(4, data);
  ASSERT_NE(engine, nullptr);
  const ExecutorReport report =
      ShardRouter(engine.get()).Run(SweepSpecs(2));
  ASSERT_TRUE(report.status.ok());

  const IoStats total = engine->TotalIoStats();
  uint64_t reads = 0, hits = 0;
  for (int s = 0; s < engine->num_shards(); ++s) {
    reads += engine->shard(s).file->stats().physical_reads.load();
    hits += engine->shard(s).file->stats().cache_hits.load();
  }
  EXPECT_EQ(total.physical_reads.load(), reads);
  EXPECT_EQ(total.cache_hits.load(), hits);
  EXPECT_GT(reads + hits, 0u);
  // Pool-level accounting: every miss is one physical read on some shard.
  EXPECT_EQ(report.pool_misses, report.total_stats.node_reads.load());
}

TEST(ShardedEngineTest, DurableShardsRecoverAcrossReopen) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/dqmo_sharded_durable";
  std::filesystem::remove_all(dir);
  const std::vector<MotionSegment> data =
      ShapedData(WorkloadShape::kUniform, 29, 80, 8.0);
  const std::vector<SessionSpec> specs = SweepSpecs(2, 20);

  ShardedEngineOptions opt;
  opt.num_shards = 3;
  opt.durable_dir = dir;
  ExecutorReport before;
  {
    auto engine = ShardedEngine::Create(opt);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    // First half lands in the checkpoint image, second half stays in each
    // shard's WAL tail — reopen has to replay both layers.
    const size_t half = data.size() / 2;
    ASSERT_TRUE((*engine)
                    ->InsertBatch({data.begin(), data.begin() + half})
                    .ok());
    ASSERT_TRUE((*engine)->Checkpoint().ok());
    ASSERT_TRUE(
        (*engine)->InsertBatch({data.begin() + half, data.end()}).ok());
    before = ShardRouter(engine->get()).Run(specs);
    ASSERT_TRUE(before.status.ok());
    // The layout on disk is the one dqmo_tool accepts.
    for (int s = 0; s < 3; ++s) {
      char name[32];
      std::snprintf(name, sizeof(name), "shard-%04d", s);
      EXPECT_TRUE(std::filesystem::exists(dir + "/" + std::string(name) +
                                          ".pgf"));
      EXPECT_TRUE(std::filesystem::exists(dir + "/" + std::string(name) +
                                          ".wal"));
    }
  }
  {
    // Reopen: every shard recovers its checkpoint + WAL tail; queries are
    // byte-identical to the pre-crash engine.
    auto engine = ShardedEngine::Create(opt);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ((*engine)->num_segments(), data.size());
    const ExecutorReport after = ShardRouter(engine->get()).Run(specs);
    ExpectSameResults(after, before, "durable reopen");
  }
  std::filesystem::remove_all(dir);
}

TEST(ShardedEngineTest, DurableShardsOnDiskBackendsByteIdenticalAndRecover) {
  // The disk wiring end-to-end: a durable sharded engine on
  // io_backend=kPread/kUring gives every shard its own DiskPageFile (live
  // file rebuilt from the checkpoint image) plus a Prefetcher the router's
  // sessions hint — and the whole stack must answer byte-identically to
  // the kMemory durable engine, survive a reopen with a WAL tail, and
  // keep the speculation ledger closed.
  const std::vector<MotionSegment> data =
      ShapedData(WorkloadShape::kUniform, 31, 100, 8.0);
  const std::vector<SessionSpec> specs = SweepSpecs(2, 20);

  ShardedEngineOptions base;
  base.num_shards = 3;

  // Memory-backend yardstick.
  const std::string mem_dir =
      std::string(::testing::TempDir()) + "/dqmo_sharded_disk_mem";
  std::filesystem::remove_all(mem_dir);
  ExecutorReport want;
  {
    ShardedEngineOptions mopt = base;
    mopt.durable_dir = mem_dir;
    auto engine = ShardedEngine::Create(mopt);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE((*engine)->InsertBatch(data).ok());
    ASSERT_TRUE((*engine)->Checkpoint().ok());
    want = ShardRouter(engine->get()).Run(specs);
    ASSERT_TRUE(want.status.ok());
  }
  std::filesystem::remove_all(mem_dir);

  for (IoBackend backend : {IoBackend::kPread, IoBackend::kUring}) {
    const std::string label =
        backend == IoBackend::kPread ? "pread" : "uring";
    const std::string dir = std::string(::testing::TempDir()) +
                            "/dqmo_sharded_disk_" + label;
    std::filesystem::remove_all(dir);
    ShardedEngineOptions dopt = base;
    dopt.durable_dir = dir;
    dopt.io_backend = backend;
    dopt.prefetch_depth = 8;

    ExecutorReport before;
    {
      auto engine = ShardedEngine::Create(dopt);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      // First half checkpointed into each shard's image, second half left
      // in the WAL tail so the reopen replays both layers through the
      // disk store.
      const size_t half = data.size() / 2;
      ASSERT_TRUE((*engine)
                      ->InsertBatch({data.begin(), data.begin() + half})
                      .ok());
      ASSERT_TRUE((*engine)->Checkpoint().ok());
      ASSERT_TRUE(
          (*engine)->InsertBatch({data.begin() + half, data.end()}).ok());
      for (int s = 0; s < 3; ++s) {
        ASSERT_NE((*engine)->shard(s).durable->disk_file(), nullptr)
            << label;
        ASSERT_NE((*engine)->shard(s).prefetcher, nullptr) << label;
      }
      before = ShardRouter(engine->get()).Run(specs);
      ExpectSameResults(before, want, label + " vs memory backend");
      // Speculation ran and its ledger closes: after Quiesce, every issue
      // is a hit, a wasted landing, or a failure.
      uint64_t issued = 0, hits = 0, wasted = 0, failed = 0;
      for (int s = 0; s < 3; ++s) {
        Prefetcher* pf = (*engine)->shard(s).prefetcher.get();
        pf->Quiesce();
        const IoStats& io = (*engine)->shard(s).file->stats();
        issued += io.prefetch_issued.load();
        hits += io.prefetch_hits.load();
        wasted += io.prefetch_wasted.load();
        failed += pf->failed();
      }
      EXPECT_GT(issued, 0u) << label;
      EXPECT_EQ(issued, hits + wasted + failed) << label;
    }
    {
      auto engine = ShardedEngine::Create(dopt);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      EXPECT_EQ((*engine)->num_segments(), data.size()) << label;
      const ExecutorReport after = ShardRouter(engine->get()).Run(specs);
      ExpectSameResults(after, before, label + " durable reopen");
    }
    std::filesystem::remove_all(dir);
  }
}

// ---------------------------------------------------------------------------
// Failure domains: a predictive session hit mid-stream by its shard's
// circuit breaker.

TEST(ShardFaultTest, PdqSessionQuarantinedMidStreamResumesByteIdentical) {
  // A predictive (kSession) stream reads the tree only at prediction
  // renewals, so a shard that dies mid-run stays invisible until the next
  // renewal — at which point the frame must come back kPartial with the
  // skips attributed to exactly that shard, the session must hand off to
  // NPDQ, and the healthy shards must keep delivering byte-identically to
  // an untouched twin the whole way. After scrub + probation the engine
  // must serve fresh sweeps byte-identically again.
  constexpr int kFrames = 36;
  constexpr int kArmFrame = 10;
  constexpr int kHealFrame = 28;
  const std::vector<MotionSegment> data =
      ShapedData(WorkloadShape::kUniform, 23, 220);

  ShardedEngineOptions eopt;
  eopt.num_shards = 4;
  eopt.cache_nodes = 0;  // Every node visit reaches the gated pool.
  eopt.failure_domains = true;
  eopt.breaker.consecutive_failures = 1;
  eopt.breaker.cooldown_frames = 0;  // Promotion only through the scrubber.
  eopt.breaker.probe_rate = 1.0;
  eopt.breaker.probe_successes_to_close = 2;
  auto chaos = ShardedEngine::Create(eopt);
  auto twin = ShardedEngine::Create(eopt);
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();
  ASSERT_TRUE((*chaos)->InsertBatch(data).ok());
  ASSERT_TRUE((*twin)->InsertBatch(data).ok());
  const int sick = (*chaos)->map().ShardOf(data[0]);

  SessionSpec spec;
  spec.kind = SessionKind::kSession;
  spec.seed = 104;
  spec.frames = kFrames;
  // Stretch the frame step so a prediction renewal (default horizon 5.0)
  // lands inside the quarantine window instead of past the end of the run.
  spec.frame_dt = 0.4;
  spec.t0 = 1.0;

  ShardRouter::Options twin_opt;
  twin_opt.spatial_prune = false;
  twin_opt.record_frames = true;
  ShardRouter::Options ropt = twin_opt;
  ropt.frame_hook = [&](int frame) {
    if (frame == kArmFrame) {
      FaultInjector::Options f;
      f.fail_every_kth = 1;  // Shard-wide death: every read fails.
      (*chaos)->ArmShardFault(sick, f);
    } else if (frame == kHealFrame) {
      (*chaos)->ClearShardFault(sick);
      const ShardScrubber::PassReport rep =
          ShardScrubber(chaos->get(), ScrubOptions()).ScrubPass();
      EXPECT_EQ(rep.shards_scrubbed, 1) << rep.ToString();
      EXPECT_EQ(rep.shards_promoted, 1) << rep.ToString();
    }
  };

  const ShardedSessionResult got = ShardRouter(chaos->get(), ropt).RunOne(spec);
  const ShardedSessionResult want =
      ShardRouter(twin->get(), twin_opt).RunOne(spec);
  ASSERT_TRUE(got.result.status.ok()) << got.result.status.ToString();
  ASSERT_TRUE(want.result.status.ok()) << want.result.status.ToString();
  EXPECT_EQ(want.frames_partial, 0u);

  // The fault stayed dormant while the PDQ served from its prediction
  // buffer: the first partial frame is the renewal, strictly after the arm
  // frame and before the heal.
  ASSERT_GT(got.frames_partial, 0u);
  int first_partial = 0;
  for (const ShardedSessionResult::FrameRecord& rec : got.frames) {
    if (rec.partial) {
      first_partial = rec.frame;
      break;
    }
  }
  EXPECT_GT(first_partial, kArmFrame);
  EXPECT_LT(first_partial, kHealFrame);
  EXPECT_GT(got.frames_quarantined, 0u);

  // Attribution: skips land in the sick slot and nowhere else.
  ASSERT_EQ(got.shard_skips.size(), 4u);
  EXPECT_GT(got.shard_skips[sick].pages_skipped(), 0u);
  for (int s = 0; s < 4; ++s) {
    if (s != sick) {
      EXPECT_EQ(got.shard_skips[s].pages_skipped(), 0u) << "shard " << s;
    }
  }

  // Healthy shards delivered byte-identically to the twin on every frame,
  // fault window included, and were never blocked.
  ASSERT_EQ(got.frames.size(), want.frames.size());
  for (size_t f = 0; f < got.frames.size(); ++f) {
    for (int s = 0; s < 4; ++s) {
      if (s == sick) continue;
      EXPECT_EQ(got.frames[f].shard_checksums[s],
                want.frames[f].shard_checksums[s])
          << "frame " << got.frames[f].frame << " shard " << s;
      EXPECT_EQ(got.frames[f].shard_blocked[s], 0)
          << "frame " << got.frames[f].frame << " shard " << s;
    }
  }

  // Reinstated through half-open probation, and fresh sweeps across all
  // session kinds are byte-identical again.
  EXPECT_EQ((*chaos)->breaker(sick)->state(), BreakerState::kClosed);
  EXPECT_GE((*chaos)->breaker(sick)->open_events(), 1u);
  EXPECT_GT((*chaos)->breaker(sick)->probe_frames(), 0u);
  const std::vector<SessionSpec> sweep = SweepSpecs(2, 12);
  ExpectSameResults(ShardRouter(chaos->get()).Run(sweep),
                    ShardRouter(twin->get()).Run(sweep),
                    "post-reinstatement sweep");
}

}  // namespace
}  // namespace dqmo
