// Tests for the CRC32C implementation backing page checksums.
#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace dqmo {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC32C check value (iSCSI / RFC 3720 App. B.4).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  // Empty input.
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  // 32 zero bytes (RFC 3720 test pattern).
  uint8_t zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  // 32 0xFF bytes.
  uint8_t ffs[32];
  std::memset(ffs, 0xFF, sizeof(ffs));
  EXPECT_EQ(Crc32c(ffs, sizeof(ffs)), 0x62A8AB43u);
  // Ascending 0x00..0x1F.
  uint8_t ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Crc32c(ascending, sizeof(ascending)), 0x46DD794Eu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  std::vector<uint8_t> data(4096);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>((i * 131) ^ (i >> 3));
  }
  const uint32_t whole = Crc32c(data.data(), data.size());
  // Split at assorted boundaries, including ones that defeat 8-byte
  // alignment in slice-by-8.
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                       size_t{9}, size_t{100}, size_t{4095}, data.size()}) {
    SCOPED_TRACE(split);
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole);
  }
  // Byte-at-a-time equals one-shot.
  uint32_t crc = 0;
  for (const uint8_t byte : data) crc = Crc32cExtend(crc, &byte, 1);
  EXPECT_EQ(crc, whole);
}

TEST(Crc32cTest, SingleBitFlipsAlwaysChangeTheCrc) {
  std::vector<uint8_t> data(512);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7 + 13);
  }
  const uint32_t clean = Crc32c(data.data(), data.size());
  // CRC32C detects all single-bit errors; exhaustively flip every bit.
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<uint8_t>(1u << bit);
      ASSERT_NE(Crc32c(data.data(), data.size()), clean)
          << "undetected flip at byte " << i << " bit " << bit;
      data[i] ^= static_cast<uint8_t>(1u << bit);
    }
  }
  EXPECT_EQ(Crc32c(data.data(), data.size()), clean);
}

}  // namespace
}  // namespace dqmo
