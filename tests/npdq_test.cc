// Tests for Non-Predictive Dynamic Queries (Sect. 4.2): the discardability
// lemma under double temporal axes, frame-by-frame correctness against
// brute force, both sound (leaf-semantics, pruning) pairings, and
// timestamp-based update management.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "query/npdq.h"
#include "test_util.h"
#include "workload/query_generator.h"

namespace dqmo {
namespace {

using ::dqmo::testing::BruteForceRange;
using ::dqmo::testing::BruteForceRangeBb;
using ::dqmo::testing::KeysOf;
using ::dqmo::testing::RandomSegments;

struct NpdqFixture {
  PageFile file;
  std::unique_ptr<RTree> tree;
  std::vector<MotionSegment> data;
};

void BuildFixture(NpdqFixture* fx, uint64_t seed, int n = 4000) {
  auto tree = RTree::Create(&fx->file, RTree::Options());
  ASSERT_TRUE(tree.ok());
  fx->tree = std::move(tree).value();
  Rng rng(seed);
  fx->data = RandomSegments(&rng, n, 2, 100, 100);
  for (const auto& m : fx->data) ASSERT_TRUE(fx->tree->Insert(m).ok());
}

StBox MakeQuery(double x0, double x1, double y0, double y1, double t0,
                double t1) {
  return StBox(Box(Interval(x0, x1), Interval(y0, y1)), Interval(t0, t1));
}

// ---- Discardable() unit tests (Lemma 1, double temporal axes) ----

ChildEntry MakeEntry(StBox bounds, Interval start_times,
                     Interval end_times) {
  ChildEntry e;
  e.bounds = std::move(bounds);
  e.start_times = start_times;
  e.end_times = end_times;
  e.child = 1;
  return e;
}

TEST(DiscardableTest, FullyCoveredOldSubtreeIsDiscardable) {
  // P = [0,1] on space [0,10]^2; Q = [1,2] on the same space. A subtree
  // whose motions all started before P ended and end after P began, and
  // whose spatial extent lies within P's window, was fully retrieved by P.
  const StBox p = MakeQuery(0, 10, 0, 10, 0.0, 1.0);
  const StBox q = MakeQuery(0, 10, 0, 10, 1.0, 2.0);
  const ChildEntry r =
      MakeEntry(MakeQuery(2, 8, 2, 8, 0.2, 5.0),
                /*start_times=*/Interval(0.2, 0.9),
                /*end_times=*/Interval(1.5, 5.0));
  EXPECT_TRUE(Discardable(p, q, r, SpatialPruning::kIntersectionContained));
  EXPECT_TRUE(Discardable(p, q, r, SpatialPruning::kNodeContained));
}

TEST(DiscardableTest, LateStarterBlocksDiscard) {
  // One motion in the subtree starts after P ended: P cannot have seen it.
  const StBox p = MakeQuery(0, 10, 0, 10, 0.0, 1.0);
  const StBox q = MakeQuery(0, 10, 0, 10, 1.0, 2.0);
  const ChildEntry r =
      MakeEntry(MakeQuery(2, 8, 2, 8, 0.2, 5.0), Interval(0.2, 1.4),
                Interval(1.5, 5.0));
  EXPECT_FALSE(Discardable(p, q, r, SpatialPruning::kIntersectionContained));
}

TEST(DiscardableTest, LateStarterBeyondQIsIrrelevant) {
  // Starts after Q's end too — not Q-relevant, so it cannot block.
  const StBox p = MakeQuery(0, 10, 0, 10, 0.0, 1.0);
  const StBox q = MakeQuery(0, 10, 0, 10, 1.0, 2.0);
  const ChildEntry r =
      MakeEntry(MakeQuery(2, 8, 2, 8, 0.2, 9.0), Interval(0.2, 7.0),
                Interval(1.5, 9.0));
  // i_ts = [0.2, min(7, 2)] = [0.2, 2] -> max start 2 > P.hi 1: not
  // discardable (starters in (1, 2] are Q-relevant and unseen by P).
  EXPECT_FALSE(Discardable(p, q, r, SpatialPruning::kIntersectionContained));
  // But if all starters after P.hi also start after Q.hi, they are
  // irrelevant:
  const ChildEntry r2 =
      MakeEntry(MakeQuery(2, 8, 2, 8, 0.2, 9.0), Interval(0.9, 7.0),
                Interval(2.5, 9.0));
  // i_ts = [0.9, 2]; still > 1 -> not discardable. Construct the truly
  // irrelevant case: starts are either <= 1 or > 2 is not representable by
  // one interval, so the conservative answer (visit) is correct.
  EXPECT_FALSE(
      Discardable(p, q, r2, SpatialPruning::kIntersectionContained));
}

TEST(DiscardableTest, SubtreeWithNoQRelevantMotionIsDiscardable) {
  const StBox p = MakeQuery(0, 10, 0, 10, 0.0, 1.0);
  const StBox q = MakeQuery(0, 10, 0, 10, 1.0, 2.0);
  // Every motion ends before Q begins.
  const ChildEntry r =
      MakeEntry(MakeQuery(2, 8, 2, 8, 0.0, 0.9), Interval(0.0, 0.5),
                Interval(0.3, 0.9));
  EXPECT_TRUE(Discardable(p, q, r, SpatialPruning::kIntersectionContained));
}

TEST(DiscardableTest, SpatialEscapeBlocksDiscard) {
  // The subtree sticks out of P's window inside Q's range.
  const StBox p = MakeQuery(0, 5, 0, 10, 0.0, 1.0);
  const StBox q = MakeQuery(0, 10, 0, 10, 1.0, 2.0);
  const ChildEntry r =
      MakeEntry(MakeQuery(4, 8, 2, 8, 0.2, 5.0), Interval(0.2, 0.9),
                Interval(1.5, 5.0));
  EXPECT_FALSE(Discardable(p, q, r, SpatialPruning::kIntersectionContained));
}

TEST(DiscardableTest, IntersectionContainedPrunesMoreThanNodeContained) {
  // Subtree extends beyond Q (and P) spatially, but its Q-overlap lies in
  // P: Lemma 1 discards, the stricter rule does not.
  const StBox p = MakeQuery(0, 6, 0, 10, 0.0, 1.0);
  const StBox q = MakeQuery(0, 5, 0, 10, 1.0, 2.0);
  const ChildEntry r =
      MakeEntry(MakeQuery(4, 9, 2, 8, 0.2, 5.0), Interval(0.2, 0.9),
                Interval(1.5, 5.0));
  EXPECT_TRUE(Discardable(p, q, r, SpatialPruning::kIntersectionContained));
  EXPECT_FALSE(Discardable(p, q, r, SpatialPruning::kNodeContained));
}

TEST(DiscardableTest, OverlappingQueryTimesStillPrune) {
  // P and Q overlap temporally ([2,3] vs [2.5,3.5]); old starters that end
  // within the shared range were all retrieved by P.
  const StBox p = MakeQuery(0, 10, 0, 10, 2.0, 3.0);
  const StBox q = MakeQuery(0, 10, 0, 10, 2.5, 3.5);
  const ChildEntry old_enders =
      MakeEntry(MakeQuery(2, 8, 2, 8, 0.0, 3.0), Interval(0.0, 1.9),
                Interval(1.0, 3.0));
  // i_te = [max(1.0, 2.5), 3.0] = [2.5, 3]: all Q-relevant enders end after
  // P.lo 2.0; starts all <= 1.9 <= P.hi 3 -> discardable (spatial holds).
  EXPECT_TRUE(Discardable(p, q, old_enders,
                          SpatialPruning::kIntersectionContained));
}

// ---- End-to-end NPDQ behaviour ----

TEST(NpdqTest, FirstQueryBehavesAsSnapshot) {
  NpdqFixture fx;
  BuildFixture(&fx, 11);
  NonPredictiveDynamicQuery npdq(fx.tree.get());
  const StBox q = MakeQuery(20, 35, 20, 35, 10.0, 10.5);
  auto result = npdq.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(KeysOf(*result), KeysOf(BruteForceRangeBb(fx.data, q)));
}

TEST(NpdqTest, ExecuteValidatesArguments) {
  NpdqFixture fx;
  BuildFixture(&fx, 12, 500);
  NonPredictiveDynamicQuery npdq(fx.tree.get());
  StBox wrong_dims(Box(Interval(0, 1), Interval(0, 1), Interval(0, 1)),
                   Interval(0, 1));
  EXPECT_TRUE(npdq.Execute(wrong_dims).status().IsInvalidArgument());
  StBox empty(Box(Interval(1, 0), Interval(0, 1)), Interval(0, 1));
  EXPECT_TRUE(npdq.Execute(empty).status().IsInvalidArgument());
  ASSERT_TRUE(npdq.Execute(MakeQuery(0, 10, 0, 10, 5.0, 5.5)).ok());
  EXPECT_TRUE(npdq.Execute(MakeQuery(0, 10, 0, 10, 3.0, 3.5))
                  .status()
                  .IsInvalidArgument());  // Time moved backwards.
}

// Frame-by-frame correctness for the paper's configuration
// (kBoundingBox + Lemma 1): frame i returns exactly
// BB-hits(Q_i) \ BB-hits(Q_{i-1}).
class NpdqCorrectness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NpdqCorrectness, PaperConfigurationMatchesBruteForce) {
  NpdqFixture fx;
  BuildFixture(&fx, GetParam());
  Rng rng(GetParam() + 7);
  QueryWorkloadOptions qopt;
  qopt.overlap = 0.85;
  qopt.num_snapshots = 25;
  for (int trial = 0; trial < 4; ++trial) {
    auto workload = GenerateDynamicQuery(qopt, &rng);
    ASSERT_TRUE(workload.ok());
    NonPredictiveDynamicQuery npdq(fx.tree.get());
    std::set<MotionSegment::Key> prev_hits;
    for (int i = 0; i < workload->num_frames(); ++i) {
      const StBox q = workload->Frame(i);
      auto result = npdq.Execute(q);
      ASSERT_TRUE(result.ok());
      const auto hits = KeysOf(BruteForceRangeBb(fx.data, q));
      std::set<MotionSegment::Key> expected;
      for (const auto& k : hits) {
        if (!prev_hits.contains(k)) expected.insert(k);
      }
      EXPECT_EQ(KeysOf(*result), expected) << "frame " << i;
      prev_hits = hits;
    }
  }
}

TEST_P(NpdqCorrectness, ExactSemanticsWithNodeContainedPruning) {
  NpdqFixture fx;
  BuildFixture(&fx, GetParam() + 1000);
  Rng rng(GetParam() + 8);
  QueryWorkloadOptions qopt;
  qopt.overlap = 0.85;
  qopt.num_snapshots = 25;
  NpdqOptions options;
  options.leaf_semantics = LeafSemantics::kExact;
  options.spatial_pruning = SpatialPruning::kNodeContained;
  for (int trial = 0; trial < 4; ++trial) {
    auto workload = GenerateDynamicQuery(qopt, &rng);
    ASSERT_TRUE(workload.ok());
    NonPredictiveDynamicQuery npdq(fx.tree.get(), options);
    std::set<MotionSegment::Key> prev_hits;
    for (int i = 0; i < workload->num_frames(); ++i) {
      const StBox q = workload->Frame(i);
      auto result = npdq.Execute(q);
      ASSERT_TRUE(result.ok());
      const auto hits = KeysOf(BruteForceRange(fx.data, q));
      std::set<MotionSegment::Key> expected;
      for (const auto& k : hits) {
        if (!prev_hits.contains(k)) expected.insert(k);
      }
      EXPECT_EQ(KeysOf(*result), expected) << "frame " << i;
      prev_hits = hits;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NpdqCorrectness,
                         ::testing::Values(21, 22, 23));

TEST(NpdqTest, DiscardabilityReducesIoAtHighOverlap) {
  // Discardability prunes a subtree only when every Q-relevant motion below
  // it already started before the previous snapshot ended. Build a workload
  // where that structure exists: long-lived motions that all started in the
  // past, queried while still alive by a slowly moving window.
  PageFile file;
  auto tree_or = RTree::Create(&file, RTree::Options());
  ASSERT_TRUE(tree_or.ok());
  auto tree = std::move(tree_or).value();
  Rng rng(32);
  for (int i = 0; i < 20000; ++i) {
    const double ts = rng.Uniform(0.0, 50.0);
    const double te = ts + rng.Uniform(30.0, 50.0);
    const Vec p0 = dqmo::testing::RandomPoint(&rng, 2, 100);
    Vec p1 = p0;
    p1[0] = std::min(100.0, p0[0] + rng.Uniform(0.0, 2.0));
    MotionSegment m(static_cast<ObjectId>(i),
                    StSegment(p0, p1, Interval(ts, te)));
    ASSERT_TRUE(tree->Insert(m).ok());
  }

  // With discardability.
  NonPredictiveDynamicQuery with(tree.get());
  // Without (always evaluate from scratch).
  NpdqOptions no_prev;
  no_prev.use_previous = false;
  NonPredictiveDynamicQuery without(tree.get(), no_prev);

  for (int i = 0; i < 20; ++i) {
    const double t = 60.0 + i * 0.1;
    const double x = 40.0 + i * 0.2;  // Slow drift: high overlap.
    const StBox q = MakeQuery(x, x + 20.0, 40.0, 60.0, t, t + 0.1);
    auto a = with.Execute(q);
    auto b = without.Execute(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // The baseline returns full snapshots; the incremental result is a
    // subset of it by construction.
    EXPECT_LE(a->size(), b->size());
  }
  EXPECT_LT(with.stats().node_reads, without.stats().node_reads);
  EXPECT_GT(with.stats().nodes_discarded, 0u);
}

TEST(NpdqTest, ResetHistoryActsAsFreshQuery) {
  NpdqFixture fx;
  BuildFixture(&fx, 41);
  NonPredictiveDynamicQuery npdq(fx.tree.get());
  const StBox q1 = MakeQuery(20, 35, 20, 35, 10.0, 10.5);
  const StBox q2 = MakeQuery(21, 36, 20, 35, 10.5, 11.0);
  ASSERT_TRUE(npdq.Execute(q1).ok());
  auto incremental = npdq.Execute(q2);
  ASSERT_TRUE(incremental.ok());
  npdq.ResetHistory();
  // After reset, repeating q2 must return the *full* snapshot result.
  auto full = npdq.Execute(q2);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(KeysOf(*full), KeysOf(BruteForceRangeBb(fx.data, q2)));
  EXPECT_GE(full->size(), incremental->size());
}

// ---- Update management (Sect. 4.2) ----

TEST(NpdqTest, InsertsBetweenFramesAreNotLost) {
  NpdqFixture fx;
  BuildFixture(&fx, 51, 3000);
  NonPredictiveDynamicQuery npdq(fx.tree.get());
  Rng rng(52);

  std::set<MotionSegment::Key> delivered;
  std::vector<MotionSegment> inserted;
  std::vector<MotionSegment> all_data = fx.data;
  double t = 10.0;
  const double dt = 0.5;
  std::set<MotionSegment::Key> prev_hits;
  for (int i = 0; i < 12; ++i, t += dt) {
    const StBox q = MakeQuery(30.0 + i * 0.4, 44.0 + i * 0.4, 30, 44, t,
                              t + dt);
    if (i > 0) {
      // Insert objects inside the *current* query window (and, spatially,
      // inside the previous one) after the previous frame ran: the
      // timestamp mechanism must prevent them from being discarded.
      for (int j = 0; j < 8; ++j) {
        const Vec where(rng.Uniform(31.0 + i * 0.4, 43.0 + i * 0.4),
                        rng.Uniform(31, 43));
        MotionSegment m(
            static_cast<ObjectId>(500000 + i * 100 + j),
            StSegment(where, where, Interval(t + 0.1, t + 0.4)));
        m.seg = QuantizeStored(m.seg);
        inserted.push_back(m);
        all_data.push_back(m);
        ASSERT_TRUE(fx.tree->Insert(m).ok());
      }
    }
    auto result = npdq.Execute(q);
    ASSERT_TRUE(result.ok());
    for (const auto& m : *result) delivered.insert(m.key());
    // Completeness invariant: everything Q hits is delivered now or was
    // hit by the previous query (and delivered earlier or known).
    const auto hits = KeysOf(BruteForceRangeBb(all_data, q));
    for (const auto& k : hits) {
      EXPECT_TRUE(delivered.contains(k) || prev_hits.contains(k))
          << "object satisfying Q neither delivered nor in previous result";
    }
    prev_hits = hits;
  }
  // Every inserted object lay inside its frame's query window: delivered.
  for (const auto& m : inserted) {
    EXPECT_TRUE(delivered.contains(m.key()))
        << "concurrently inserted object lost (oid " << m.oid << ")";
  }
}

TEST(NpdqTest, HeavyInsertsKeepFramesComplete) {
  // Many inserts force splits near the query path; frames must stay
  // complete (supersets never checked — exact expected sets).
  NpdqFixture fx;
  BuildFixture(&fx, 61, 2000);
  NonPredictiveDynamicQuery npdq(fx.tree.get());
  Rng rng(62);
  std::vector<MotionSegment> all_data = fx.data;
  std::set<MotionSegment::Key> delivered;
  std::set<MotionSegment::Key> prev_hits;
  double t = 20.0;
  for (int i = 0; i < 10; ++i, t += 0.5) {
    for (int j = 0; j < 100; ++j) {
      MotionSegment m = dqmo::testing::RandomSegment(
          &rng, static_cast<ObjectId>(600000 + i * 1000 + j), 2, 100, 100);
      all_data.push_back(m);
      ASSERT_TRUE(fx.tree->Insert(m).ok());
    }
    const StBox q = MakeQuery(40.0 + i, 60.0 + i, 40, 60, t, t + 0.5);
    auto result = npdq.Execute(q);
    ASSERT_TRUE(result.ok());
    for (const auto& m : *result) delivered.insert(m.key());
    const auto hits = KeysOf(BruteForceRangeBb(all_data, q));
    for (const auto& k : hits) {
      EXPECT_TRUE(delivered.contains(k) || prev_hits.contains(k));
    }
    prev_hits = hits;
  }
}

}  // namespace
}  // namespace dqmo
