// Crash-recovery tests: fork-based kill tests that murder a child process
// at every registered crash point of the durability protocol and assert
// that recovery yields an index whose query answers exactly match the
// brute-force oracles on the surviving prefix of inserts — and that no
// insert acknowledged after a WAL sync is ever lost.
//
// The child workload inserts a deterministic segment sequence with
// per-insert WAL sync (acknowledging each durable insert by appending one
// fsynced byte to an ack file) and checkpoints every few inserts, so every
// crash point — WAL sync paths and checkpoint protocol steps alike — is
// exercised several times per run via skip counts.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "oracle.h"
#include "query/knn.h"
#include "server/durability.h"
#include "storage/fault.h"
#include "storage/wal.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::KeysOf;
using ::dqmo::testing::NaiveOracle;
using ::dqmo::testing::RandomQueryBox;
using ::dqmo::testing::RandomSegments;

constexpr int kNumInserts = 30;
constexpr int kCheckpointEvery = 7;

/// The deterministic insert sequence both child and parent derive
/// independently (already stored-form quantized).
std::vector<MotionSegment> TestData() {
  Rng rng(7777);
  return RandomSegments(&rng, kNumInserts, /*dims=*/2, /*size=*/100.0,
                        /*horizon=*/20.0);
}

struct Paths {
  std::string pgf;
  std::string wal;
  std::string ack;
};

Paths FreshPaths(const char* tag) {
  const std::string base = std::string(::testing::TempDir()) + "/rec_" + tag;
  Paths p{base + ".pgf", base + ".wal", base + ".ack"};
  std::remove(p.pgf.c_str());
  std::remove((p.pgf + ".tmp").c_str());
  std::remove(p.wal.c_str());
  std::remove((p.wal + ".tmp").c_str());
  std::remove(p.ack.c_str());
  return p;
}

/// Bytes in the ack file = inserts the (dead) child was told were durable.
size_t AckedCount(const std::string& ack_path) {
  struct stat st;
  if (::stat(ack_path.c_str(), &st) != 0) return 0;
  return static_cast<size_t>(st.st_size);
}

/// Child body: never returns. Exit codes: 0 = workload completed,
/// CrashPoints::kExitCode = killed at the armed point, anything else = a
/// real failure the parent must flag.
[[noreturn]] void RunChildWorkload(const Paths& paths, const char* point,
                                   uint64_t skip) {
  if (point != nullptr) CrashPoints::Arm(point, skip);
  const int fd = ::open(paths.ack.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0) ::_exit(3);
  const std::vector<MotionSegment> data = TestData();
  auto opened = DurableIndex::Open(paths.pgf, paths.wal,
                                   DurableIndex::Options());
  if (!opened.ok()) ::_exit(4);
  DurableIndex* index = opened->get();
  for (int i = 0; i < kNumInserts; ++i) {
    if (!index->Insert(data[static_cast<size_t>(i)]).ok()) ::_exit(5);
    // The insert is durable: record the acknowledgment crash-safely.
    const char byte = 1;
    if (::write(fd, &byte, 1) != 1 || ::fsync(fd) != 0) ::_exit(6);
    if ((i + 1) % kCheckpointEvery == 0) {
      if (!index->Checkpoint().ok()) ::_exit(7);
    }
  }
  ::_exit(0);
}

/// Forks the workload and returns the child's exit code.
int ForkWorkload(const Paths& paths, const char* point, uint64_t skip) {
  const pid_t pid = ::fork();
  if (pid == 0) RunChildWorkload(paths, point, skip);
  EXPECT_GT(pid, 0);
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child died abnormally (signal "
                                 << WTERMSIG(status) << ")";
  return WEXITSTATUS(status);
}

/// The post-crash contract: recovery succeeds, yields a *prefix* of the
/// insert sequence at least as long as the acknowledged count, and every
/// query answer matches the brute-force oracle over that prefix exactly.
void ValidateRecovery(const Paths& paths,
                      const std::vector<MotionSegment>& data) {
  const size_t acked = AckedCount(paths.ack);
  auto opened = DurableIndex::Open(paths.pgf, paths.wal,
                                   DurableIndex::Options());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  RTree* tree = (*opened)->tree();
  ASSERT_TRUE(tree->CheckInvariants().ok());

  const uint64_t recovered = tree->num_segments();
  EXPECT_GE(recovered, acked) << "acknowledged insert lost: "
                              << (*opened)->report().ToString();
  ASSERT_LE(recovered, data.size());

  // Prefix property: the recovered tree holds exactly the first
  // `recovered` inserts — never a later insert without every earlier one.
  NaiveOracle oracle;
  for (uint64_t i = 0; i < recovered; ++i) {
    oracle.Insert(data[static_cast<size_t>(i)]);
  }
  const StBox world(Box(Interval(-1e6, 1e6), Interval(-1e6, 1e6)),
                    Interval(-1e6, 1e6));
  QueryStats stats;
  auto all = tree->RangeSearch(world, &stats);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(KeysOf(*all),
            KeysOf({data.begin(),
                    data.begin() + static_cast<long>(recovered)}));

  // Query answers byte-identical to the oracles on the surviving prefix.
  Rng rng(123);
  for (int q = 0; q < 8; ++q) {
    const StBox box = RandomQueryBox(&rng, 2, 100.0, 20.0);
    auto got = tree->RangeSearch(box, &stats);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(KeysOf(*got), KeysOf(oracle.Snapshot(box))) << "query " << q;
  }
  for (const double t : {2.0, 10.0, 18.0}) {
    auto got = KnnAt(*tree, Vec(50.0, 50.0), t, 5, &stats);
    ASSERT_TRUE(got.ok());
    const std::vector<Neighbor> want = oracle.Knn(Vec(50.0, 50.0), t, 5);
    ASSERT_EQ(got->size(), want.size()) << "t=" << t;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ((*got)[i].distance, want[i].distance)
          << "t=" << t << " rank " << i;
    }
  }
}

TEST(CrashRecovery, KillAtEveryCrashPointRecoversToOracle) {
  const std::vector<MotionSegment> data = TestData();
  for (const std::string& point : CrashPoints::All()) {
    bool crashed_at_least_once = false;
    // Skip counts walk the same point through successive hits (first WAL
    // sync, a later one mid-run, one inside a checkpoint, ...).
    for (uint64_t skip : {0u, 1u, 2u, 9u, 20u}) {
      SCOPED_TRACE(point + " skip=" + std::to_string(skip));
      const Paths paths = FreshPaths("matrix");
      const int code = ForkWorkload(paths, point.c_str(), skip);
      if (code == 0) break;  // Point not reached that often: done walking.
      ASSERT_EQ(code, CrashPoints::kExitCode);
      crashed_at_least_once = true;
      ValidateRecovery(paths, data);
    }
    EXPECT_TRUE(crashed_at_least_once)
        << point << " never fired — the matrix is not testing it";
  }
}

TEST(CrashRecovery, CrashBeforeRenameLeavesOldImageIntact) {
  // The atomic-SaveTo regression, crash-for-real edition: kill inside the
  // SECOND checkpoint after the temp image is written but before the
  // rename. The first checkpoint's image must still load, and recovery
  // must reach every acknowledged insert via the WAL tail.
  const std::vector<MotionSegment> data = TestData();
  const Paths paths = FreshPaths("rename");
  const int code =
      ForkWorkload(paths, crash_points::kSaveBeforeRename, /*skip=*/1);
  ASSERT_EQ(code, CrashPoints::kExitCode);
  // Both checkpoints happened after insert 7 and 14: all 14 acked.
  EXPECT_EQ(AckedCount(paths.ack), 14u);
  // The installed image is the FIRST checkpoint's (applied lsn covers the
  // first 7 inserts); it must load on its own.
  PageFile old_image;
  ASSERT_TRUE(old_image.LoadFrom(paths.pgf).ok());
  ValidateRecovery(paths, data);
}

TEST(CrashRecovery, CompletedWorkloadReopensExactly) {
  // No crash at all: the full run persists, a reopen replays the tail
  // after the last checkpoint and lands on all 30 inserts.
  const std::vector<MotionSegment> data = TestData();
  const Paths paths = FreshPaths("clean");
  ASSERT_EQ(ForkWorkload(paths, nullptr, 0), 0);
  EXPECT_EQ(AckedCount(paths.ack), static_cast<size_t>(kNumInserts));
  ValidateRecovery(paths, data);
  auto reopened = DurableIndex::Open(paths.pgf, paths.wal,
                                     DurableIndex::Options());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->tree()->num_segments(),
            static_cast<uint64_t>(kNumInserts));
  // 30 inserts, checkpoints at 7/14/21/28: the tail holds inserts 29, 30.
  EXPECT_EQ((*reopened)->report().replayed, 2u);
}

TEST(CrashRecovery, WalTruncatedAtEveryOffsetRecoversPrefix) {
  // Recovery-level torn-tail sweep: build a WAL of inserts (no checkpoint,
  // so the log carries everything), then cut it at EVERY byte offset and
  // recover. Each cut must recover exactly the records wholly before it.
  const int n = 12;
  Rng rng(4242);
  const std::vector<MotionSegment> data =
      RandomSegments(&rng, n, 2, 100.0, 20.0);
  const Paths paths = FreshPaths("cutsweep");
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(paths.wal).ok());
    for (const MotionSegment& m : data) {
      ASSERT_TRUE(w.AppendInsert(m).ok());
    }
    ASSERT_TRUE(w.Sync().ok());
  }
  std::FILE* f = std::fopen(paths.wal.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> master(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  ASSERT_EQ(std::fread(master.data(), 1, master.size(), f), master.size());
  std::fclose(f);
  const size_t record_bytes = (master.size() - 16) / n;

  const Paths cut = FreshPaths("cutsweep_case");
  for (size_t len = 0; len <= master.size(); ++len) {
    SCOPED_TRACE(len);
    std::FILE* out = std::fopen(cut.wal.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    if (len > 0) {
      ASSERT_EQ(std::fwrite(master.data(), 1, len, out), len);
    }
    std::fclose(out);
    std::remove(cut.pgf.c_str());
    auto opened = DurableIndex::Open(cut.pgf, cut.wal,
                                     DurableIndex::Options());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    const size_t expect =
        len <= 16 ? 0 : std::min<size_t>(n, (len - 16) / record_bytes);
    EXPECT_EQ((*opened)->tree()->num_segments(), expect);
  }
}

TEST(CrashRecovery, MidLogCorruptionFailsWithTypedStatus) {
  // A damaged non-tail record must fail recovery loudly — a wrong answer
  // (silently dropping an acknowledged insert) is the one forbidden
  // outcome.
  Rng rng(5555);
  const std::vector<MotionSegment> data =
      RandomSegments(&rng, 6, 2, 100.0, 20.0);
  const Paths paths = FreshPaths("midlog");
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(paths.wal).ok());
    for (const MotionSegment& m : data) ASSERT_TRUE(w.AppendInsert(m).ok());
    ASSERT_TRUE(w.Sync().ok());
  }
  std::FILE* f = std::fopen(paths.wal.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 16 + 40, SEEK_SET), 0);  // First record's payload.
  uint8_t byte = 0;
  ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
  byte ^= 0x20;
  ASSERT_EQ(std::fseek(f, 16 + 40, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  std::fclose(f);
  auto opened = DurableIndex::Open(paths.pgf, paths.wal,
                                   DurableIndex::Options());
  EXPECT_TRUE(opened.status().IsCorruption())
      << opened.status().ToString();
}

TEST(CrashRecovery, CheckpointCycleSurvivesReopenWithGroupCommit) {
  // Group-commit mode: inserts only buffer; Sync() is the acknowledgment
  // barrier. A reopen after (sync, checkpoint, sync) sees everything the
  // last Sync covered.
  Rng rng(9999);
  const std::vector<MotionSegment> data =
      RandomSegments(&rng, 20, 2, 100.0, 20.0);
  const Paths paths = FreshPaths("cycle");
  DurableIndex::Options options;
  options.sync_each_insert = false;
  {
    auto opened = DurableIndex::Open(paths.pgf, paths.wal, options);
    ASSERT_TRUE(opened.ok());
    DurableIndex* index = opened->get();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(index->Insert(data[static_cast<size_t>(i)]).ok());
    }
    ASSERT_TRUE(index->Sync().ok());
    ASSERT_TRUE(index->Checkpoint().ok());
    for (int i = 10; i < 20; ++i) {
      ASSERT_TRUE(index->Insert(data[static_cast<size_t>(i)]).ok());
    }
    ASSERT_TRUE(index->Sync().ok());
    // No checkpoint for the second half: it lives only in the WAL.
  }
  auto reopened = DurableIndex::Open(paths.pgf, paths.wal, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->report().checkpoint_loaded);
  EXPECT_EQ((*reopened)->report().replayed, 10u);
  EXPECT_EQ((*reopened)->tree()->num_segments(), 20u);
  EXPECT_TRUE((*reopened)->tree()->CheckInvariants().ok());
  QueryStats stats;
  EXPECT_EQ(KeysOf((*reopened)
                       ->tree()
                       ->RangeSearch(StBox(Box(Interval(-1e6, 1e6),
                                               Interval(-1e6, 1e6)),
                                           Interval(-1e6, 1e6)),
                                     &stats)
                       .value()),
            KeysOf(data));
}

}  // namespace
}  // namespace dqmo
