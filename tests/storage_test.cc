// Tests for the paged storage engine: PageFile accounting/persistence and
// the LRU BufferPool.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace dqmo {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void FillPage(uint8_t* buf, uint8_t value) {
  std::memset(buf, value, kPageSize);
}

TEST(PageFileTest, AllocateGrowsSequentialIds) {
  PageFile f;
  EXPECT_EQ(f.num_pages(), 0u);
  EXPECT_EQ(f.Allocate(), 0u);
  EXPECT_EQ(f.Allocate(), 1u);
  EXPECT_EQ(f.Allocate(), 2u);
  EXPECT_EQ(f.num_pages(), 3u);
}

TEST(PageFileTest, NewPagesAreZeroed) {
  PageFile f;
  const PageId id = f.Allocate();
  auto read = f.Read(id);
  ASSERT_TRUE(read.ok());
  for (size_t i = 0; i < kPageSize; ++i) EXPECT_EQ(read->data[i], 0);
}

TEST(PageFileTest, WriteThenReadRoundTrips) {
  PageFile f;
  const PageId id = f.Allocate();
  uint8_t buf[kPageSize];
  FillPage(buf, 0xAB);
  ASSERT_TRUE(f.Write(id, buf).ok());
  auto read = f.Read(id);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::memcmp(read->data, buf, kPageSize), 0);
  EXPECT_TRUE(read->physical);
}

TEST(PageFileTest, OutOfRangeRejected) {
  PageFile f;
  f.Allocate();
  EXPECT_TRUE(f.Read(5).status().IsOutOfRange());
  uint8_t buf[kPageSize] = {};
  EXPECT_TRUE(f.Write(5, buf).IsOutOfRange());
  EXPECT_TRUE(f.WritableView(5).status().IsOutOfRange());
}

TEST(PageFileTest, StatsCountPhysicalOps) {
  PageFile f;
  const PageId id = f.Allocate();
  uint8_t buf[kPageSize] = {};
  ASSERT_TRUE(f.Write(id, buf).ok());
  ASSERT_TRUE(f.Read(id).ok());
  ASSERT_TRUE(f.Read(id).ok());
  EXPECT_EQ(f.stats().physical_writes, 1u);
  EXPECT_EQ(f.stats().physical_reads, 2u);
  f.ResetStats();
  EXPECT_EQ(f.stats().physical_reads, 0u);
}

TEST(PageFileTest, WritableViewEditsInPlace) {
  PageFile f;
  const PageId id = f.Allocate();
  {
    auto view = f.WritableView(id);
    ASSERT_TRUE(view.ok());
    view->Write<uint32_t>(0, 0xDEADBEEF);
    view->Write<double>(8, 2.5);
  }
  auto read = f.Read(id);
  ASSERT_TRUE(read.ok());
  PageView v(const_cast<uint8_t*>(read->data), kPageSize);
  EXPECT_EQ(v.Read<uint32_t>(0), 0xDEADBEEFu);
  EXPECT_EQ(v.Read<double>(8), 2.5);
}

TEST(PageFileTest, SaveAndLoadRoundTrips) {
  const std::string path = TempPath("pf_roundtrip.pgf");
  PageFile f;
  for (int i = 0; i < 5; ++i) {
    const PageId id = f.Allocate();
    uint8_t buf[kPageSize];
    FillPage(buf, static_cast<uint8_t>(0x10 + i));
    ASSERT_TRUE(f.Write(id, buf).ok());
  }
  ASSERT_TRUE(f.SaveTo(path).ok());

  PageFile g;
  ASSERT_TRUE(g.LoadFrom(path).ok());
  EXPECT_EQ(g.num_pages(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto read = g.Read(static_cast<PageId>(i));
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->data[17], 0x10 + i);
  }
  std::remove(path.c_str());
}

TEST(PageFileTest, LoadRejectsMissingFile) {
  PageFile f;
  EXPECT_TRUE(f.LoadFrom(TempPath("does_not_exist.pgf")).IsIOError());
}

TEST(PageFileTest, LoadRejectsGarbageFile) {
  const std::string path = TempPath("pf_garbage.pgf");
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  ASSERT_NE(fp, nullptr);
  const char junk[] = "this is not a page file at all, sorry about that";
  std::fwrite(junk, 1, sizeof(junk), fp);
  std::fclose(fp);
  PageFile f;
  EXPECT_TRUE(f.LoadFrom(path).IsCorruption());
  std::remove(path.c_str());
}

TEST(PageFileTest, SaveEmptyFileWorks) {
  const std::string path = TempPath("pf_empty.pgf");
  PageFile f;
  ASSERT_TRUE(f.SaveTo(path).ok());
  PageFile g;
  ASSERT_TRUE(g.LoadFrom(path).ok());
  EXPECT_EQ(g.num_pages(), 0u);
  std::remove(path.c_str());
}

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 10; ++i) {
      const PageId id = file_.Allocate();
      uint8_t buf[kPageSize];
      FillPage(buf, static_cast<uint8_t>(i));
      ASSERT_TRUE(file_.Write(id, buf).ok());
    }
    file_.ResetStats();
  }

  PageFile file_;
};

TEST_F(BufferPoolTest, MissThenHit) {
  BufferPool pool(&file_, 4);
  auto r1 = pool.Read(3);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->physical);
  EXPECT_EQ(r1->data[0], 3);
  auto r2 = pool.Read(3);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->physical);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(file_.stats().physical_reads, 1u);
  EXPECT_EQ(file_.stats().cache_hits, 1u);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(&file_, 2);
  ASSERT_TRUE(pool.Read(0).ok());  // Cache: {0}
  ASSERT_TRUE(pool.Read(1).ok());  // Cache: {1, 0}
  ASSERT_TRUE(pool.Read(0).ok());  // Hit; order {0, 1}
  ASSERT_TRUE(pool.Read(2).ok());  // Evicts 1. Cache {2, 0}
  EXPECT_FALSE(pool.Read(0)->physical);  // Still cached.
  EXPECT_TRUE(pool.Read(1)->physical);   // Was evicted.
}

TEST_F(BufferPoolTest, CapacityRespected) {
  BufferPool pool(&file_, 3);
  for (PageId id = 0; id < 10; ++id) ASSERT_TRUE(pool.Read(id).ok());
  EXPECT_EQ(pool.cached_pages(), 3u);
}

TEST_F(BufferPoolTest, ClearDropsEverything) {
  BufferPool pool(&file_, 4);
  ASSERT_TRUE(pool.Read(0).ok());
  ASSERT_TRUE(pool.Read(1).ok());
  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 0u);
  EXPECT_TRUE(pool.Read(0)->physical);
}

TEST_F(BufferPoolTest, InvalidateDropsOnePage) {
  BufferPool pool(&file_, 4);
  ASSERT_TRUE(pool.Read(0).ok());
  ASSERT_TRUE(pool.Read(1).ok());
  pool.Invalidate(0);
  EXPECT_TRUE(pool.Read(0)->physical);   // Re-fetched.
  EXPECT_FALSE(pool.Read(1)->physical);  // Still cached.
}

TEST_F(BufferPoolTest, ServesFreshDataAfterInvalidation) {
  BufferPool pool(&file_, 4);
  ASSERT_TRUE(pool.Read(5).ok());
  uint8_t buf[kPageSize];
  FillPage(buf, 0x99);
  ASSERT_TRUE(file_.Write(5, buf).ok());
  // Without invalidation the pool would serve stale bytes.
  EXPECT_EQ(pool.Read(5)->data[0], 5);
  pool.Invalidate(5);
  EXPECT_EQ(pool.Read(5)->data[0], 0x99);
}

}  // namespace
}  // namespace dqmo
