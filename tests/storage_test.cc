// Tests for the paged storage engine: PageFile accounting/persistence and
// the LRU BufferPool.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace dqmo {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void FillPage(uint8_t* buf, uint8_t value) {
  std::memset(buf, value, kPageSize);
}

TEST(PageFileTest, AllocateGrowsSequentialIds) {
  PageFile f;
  EXPECT_EQ(f.num_pages(), 0u);
  EXPECT_EQ(f.Allocate(), 0u);
  EXPECT_EQ(f.Allocate(), 1u);
  EXPECT_EQ(f.Allocate(), 2u);
  EXPECT_EQ(f.num_pages(), 3u);
}

TEST(PageFileTest, NewPagesHaveZeroPayloadAndSealedTrailer) {
  PageFile f;
  const PageId id = f.Allocate();
  auto read = f.Read(id);
  ASSERT_TRUE(read.ok());
  for (size_t i = 0; i < kPagePayloadSize; ++i) EXPECT_EQ(read->data[i], 0);
  // Page format v2: the trailer holds the payload's CRC32C, not zeros.
  EXPECT_EQ(StoredPageChecksum(read->data), ComputePageChecksum(read->data));
}

TEST(PageFileTest, WriteThenReadRoundTripsPayload) {
  PageFile f;
  const PageId id = f.Allocate();
  uint8_t buf[kPageSize];
  FillPage(buf, 0xAB);
  ASSERT_TRUE(f.Write(id, buf).ok());
  auto read = f.Read(id);
  ASSERT_TRUE(read.ok());
  // The payload round-trips; the trailer is overwritten by the seal.
  EXPECT_EQ(std::memcmp(read->data, buf, kPagePayloadSize), 0);
  EXPECT_TRUE(PageChecksumOk(read->data));
  EXPECT_TRUE(read->physical);
}

TEST(PageFileTest, OutOfRangeRejected) {
  PageFile f;
  f.Allocate();
  EXPECT_TRUE(f.Read(5).status().IsOutOfRange());
  uint8_t buf[kPageSize] = {};
  EXPECT_TRUE(f.Write(5, buf).IsOutOfRange());
  EXPECT_TRUE(f.WritableView(5).status().IsOutOfRange());
}

TEST(PageFileTest, StatsCountPhysicalOps) {
  PageFile f;
  const PageId id = f.Allocate();
  uint8_t buf[kPageSize] = {};
  ASSERT_TRUE(f.Write(id, buf).ok());
  ASSERT_TRUE(f.Read(id).ok());
  ASSERT_TRUE(f.Read(id).ok());
  EXPECT_EQ(f.stats().physical_writes, 1u);
  EXPECT_EQ(f.stats().physical_reads, 2u);
  f.ResetStats();
  EXPECT_EQ(f.stats().physical_reads, 0u);
}

TEST(PageFileTest, WritableViewEditsInPlace) {
  PageFile f;
  const PageId id = f.Allocate();
  {
    auto view = f.WritableView(id);
    ASSERT_TRUE(view.ok());
    view->Write<uint32_t>(0, 0xDEADBEEF);
    view->Write<double>(8, 2.5);
  }
  auto read = f.Read(id);
  ASSERT_TRUE(read.ok());
  PageView v(const_cast<uint8_t*>(read->data), kPageSize);
  EXPECT_EQ(v.Read<uint32_t>(0), 0xDEADBEEFu);
  EXPECT_EQ(v.Read<double>(8), 2.5);
}

TEST(PageFileTest, SaveAndLoadRoundTrips) {
  const std::string path = TempPath("pf_roundtrip.pgf");
  PageFile f;
  for (int i = 0; i < 5; ++i) {
    const PageId id = f.Allocate();
    uint8_t buf[kPageSize];
    FillPage(buf, static_cast<uint8_t>(0x10 + i));
    ASSERT_TRUE(f.Write(id, buf).ok());
  }
  ASSERT_TRUE(f.SaveTo(path).ok());

  PageFile g;
  ASSERT_TRUE(g.LoadFrom(path).ok());
  EXPECT_EQ(g.num_pages(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto read = g.Read(static_cast<PageId>(i));
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->data[17], 0x10 + i);
  }
  std::remove(path.c_str());
}

TEST(PageFileTest, LoadRejectsMissingFile) {
  PageFile f;
  EXPECT_TRUE(f.LoadFrom(TempPath("does_not_exist.pgf")).IsIOError());
}

TEST(PageFileTest, LoadRejectsGarbageFile) {
  const std::string path = TempPath("pf_garbage.pgf");
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  ASSERT_NE(fp, nullptr);
  const char junk[] = "this is not a page file at all, sorry about that";
  std::fwrite(junk, 1, sizeof(junk), fp);
  std::fclose(fp);
  PageFile f;
  EXPECT_TRUE(f.LoadFrom(path).IsCorruption());
  std::remove(path.c_str());
}

TEST(PageFileTest, SaveEmptyFileWorks) {
  const std::string path = TempPath("pf_empty.pgf");
  PageFile f;
  ASSERT_TRUE(f.SaveTo(path).ok());
  PageFile g;
  ASSERT_TRUE(g.LoadFrom(path).ok());
  EXPECT_EQ(g.num_pages(), 0u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Page format v2 integrity: checksums, verification, legacy files, and
// LoadFrom hardening against damaged images.

TEST(PageChecksumTest, WritableViewPagesAreResealedLazily) {
  PageFile f;
  const PageId id = f.Allocate();
  {
    auto view = f.WritableView(id);
    ASSERT_TRUE(view.ok());
    view->Write<uint64_t>(0, 0x1122334455667788ULL);
  }
  // The next read re-seals before verifying; no false corruption.
  auto read = f.Read(id);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(PageChecksumOk(read->data));
  EXPECT_TRUE(f.VerifyPage(id).ok());
}

TEST(PageChecksumTest, ReadDetectsCorruptedPayload) {
  PageFile f;
  const PageId id = f.Allocate();
  uint8_t buf[kPageSize];
  FillPage(buf, 0x5A);
  ASSERT_TRUE(f.Write(id, buf).ok());
  const std::string path = TempPath("pf_corrupt_payload.pgf");
  ASSERT_TRUE(f.SaveTo(path).ok());

  // Corrupt the saved image directly: flip a payload byte of page 0.
  std::FILE* fp = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(fp, nullptr);
  ASSERT_EQ(std::fseek(fp, 24 + 100, SEEK_SET), 0);
  const uint8_t evil = 0x5A ^ 0x01;
  ASSERT_EQ(std::fwrite(&evil, 1, 1, fp), 1u);
  std::fclose(fp);

  PageFile g;
  const Status load = g.LoadFrom(path);
  EXPECT_TRUE(load.IsCorruption()) << load.ToString();
  EXPECT_NE(load.message().find("page 0"), std::string::npos)
      << load.message();

  // Forensic load skips verification; Read then catches it.
  PageFile h;
  PageFile::LoadOptions no_verify;
  no_verify.verify_checksums = false;
  ASSERT_TRUE(h.LoadFrom(path, no_verify).ok());
  EXPECT_TRUE(h.Read(id).status().IsCorruption());
  EXPECT_EQ(h.stats().checksum_failures, 1u);

  // With verification disabled the damaged bytes are readable.
  h.set_verify_on_read(false);
  EXPECT_TRUE(h.Read(id).ok());

  std::vector<PageId> bad;
  EXPECT_EQ(h.VerifyAllPages(&bad), 1u);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], id);
  std::remove(path.c_str());
}

TEST(PageChecksumTest, LegacyV1FileLoadsReadOnly) {
  // Hand-craft a version-1 image: same magic, version 1, pages whose
  // trailer bytes are zeroed slack (exactly what v1 SerializeTo produced).
  const std::string path = TempPath("pf_legacy_v1.pgf");
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  ASSERT_NE(fp, nullptr);
  struct {
    uint64_t magic = 0x4451'4d4f'5047'4631ULL;
    uint32_t version = 1;
    uint32_t reserved = 0;
    uint64_t num_pages = 2;
  } header;
  ASSERT_EQ(std::fwrite(&header, sizeof(header), 1, fp), 1u);
  uint8_t page[kPageSize];
  for (uint8_t i = 0; i < 2; ++i) {
    std::memset(page, 0, kPageSize);
    std::memset(page, 0x30 + i, kPagePayloadSize);  // Trailer stays zero.
    ASSERT_EQ(std::fwrite(page, kPageSize, 1, fp), 1u);
  }
  std::fclose(fp);

  PageFile f;
  ASSERT_TRUE(f.LoadFrom(path).ok());
  EXPECT_TRUE(f.legacy_read_only());
  EXPECT_EQ(f.num_pages(), 2u);
  // Reads verify (pages were sealed in memory on load) and serve the data.
  auto read = f.Read(0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->data[7], 0x30);
  EXPECT_TRUE(f.VerifyPage(1).ok());
  // Mutation is refused: the in-memory seal cannot be persisted as v1.
  uint8_t buf[kPageSize] = {};
  EXPECT_TRUE(f.Write(0, buf).IsFailedPrecondition());
  EXPECT_TRUE(f.WritableView(0).status().IsFailedPrecondition());
  // Allocate still appends (the upgrade path: grow, then SaveTo writes v2).
  EXPECT_EQ(f.Allocate(), 2u);
  std::remove(path.c_str());
}

TEST(PageFileLoadFuzz, TruncationIsAlwaysDetected) {
  const std::string path = TempPath("pf_truncate.pgf");
  PageFile f;
  for (int i = 0; i < 3; ++i) {
    const PageId id = f.Allocate();
    uint8_t buf[kPageSize];
    FillPage(buf, static_cast<uint8_t>(0x40 + i));
    ASSERT_TRUE(f.Write(id, buf).ok());
  }
  ASSERT_TRUE(f.SaveTo(path).ok());

  const long full = 24 + 3 * static_cast<long>(kPageSize);
  for (long cut : {0L, 10L, 23L, 24L, 24L + 1, 24L + 4095L,
                   24L + static_cast<long>(kPageSize),
                   full - 1L}) {
    SCOPED_TRACE(cut);
    const std::string cut_path = TempPath("pf_truncate_cut.pgf");
    // Copy the first `cut` bytes.
    std::FILE* in = std::fopen(path.c_str(), "rb");
    std::FILE* out = std::fopen(cut_path.c_str(), "wb");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(out, nullptr);
    std::vector<uint8_t> bytes(static_cast<size_t>(cut));
    if (cut > 0) {
      ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), in), bytes.size());
      ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out),
                bytes.size());
    }
    std::fclose(in);
    std::fclose(out);
    PageFile g;
    const Status s = g.LoadFrom(cut_path);
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
    std::remove(cut_path.c_str());
  }

  // Trailing garbage is also rejected.
  std::FILE* fp = std::fopen(path.c_str(), "ab");
  ASSERT_NE(fp, nullptr);
  const char extra[] = "extra";
  ASSERT_EQ(std::fwrite(extra, 1, sizeof(extra), fp), sizeof(extra));
  std::fclose(fp);
  PageFile g;
  const Status s = g.LoadFrom(path);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.message().find("trailing"), std::string::npos) << s.message();
  std::remove(path.c_str());
}

TEST(PageFileLoadFuzz, ZeroLengthFileRejectedWithTypedError) {
  // A zero-byte file is what a crash between open and the first header
  // write leaves behind. It must be a typed error, never a crash.
  const std::string path = TempPath("pf_zero.pgf");
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  ASSERT_NE(fp, nullptr);
  std::fclose(fp);
  PageFile f;
  const Status s = f.LoadFrom(path);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  std::remove(path.c_str());
}

TEST(PageFileLoadFuzz, HeaderClaimingMorePagesThanFileHoldsRejected) {
  // A truncated checkpoint: plausible header, fewer page bytes than it
  // declares. The size check must catch it before any page is trusted.
  const std::string path = TempPath("pf_short_pages.pgf");
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  ASSERT_NE(fp, nullptr);
  struct {
    uint64_t magic = 0x4451'4d4f'5047'4631ULL;
    uint32_t version = 2;
    uint32_t reserved = 0;
    uint64_t num_pages = 5;
  } header;
  ASSERT_EQ(std::fwrite(&header, sizeof(header), 1, fp), 1u);
  std::vector<uint8_t> two_pages(2 * kPageSize, 0x7E);
  ASSERT_EQ(std::fwrite(two_pages.data(), 1, two_pages.size(), fp),
            two_pages.size());
  std::fclose(fp);
  PageFile f;
  const Status s = f.LoadFrom(path);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.message().find("truncated"), std::string::npos) << s.message();
  std::remove(path.c_str());
}

TEST(PageFileSaveAtomicity, FailedSaveLeavesPreviousFileLoadable) {
  // SaveTo must never touch `path` until the replacement image is complete:
  // inject a mid-save failure by planting a directory where SaveTo puts its
  // temp file, and verify the old image still loads bit-for-bit.
  const std::string path = TempPath("pf_atomic.pgf");
  PageFile old_file;
  const PageId id = old_file.Allocate();
  uint8_t buf[kPageSize];
  FillPage(buf, 0x77);
  ASSERT_TRUE(old_file.Write(id, buf).ok());
  ASSERT_TRUE(old_file.SaveTo(path).ok());

  const std::string tmp = path + ".tmp";
  ASSERT_EQ(std::remove(tmp.c_str()), -1);  // SaveTo cleaned up after itself.
  ASSERT_EQ(::mkdir(tmp.c_str(), 0700), 0);
  PageFile replacement;
  const PageId rid = replacement.Allocate();
  FillPage(buf, 0x99);
  ASSERT_TRUE(replacement.Write(rid, buf).ok());
  const Status s = replacement.SaveTo(path);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  ASSERT_EQ(::rmdir(tmp.c_str()), 0);

  PageFile g;
  ASSERT_TRUE(g.LoadFrom(path).ok());
  auto read = g.Read(0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->data[10], 0x77);  // The old bytes, untouched.
  std::remove(path.c_str());
}

TEST(PageFileLoadFuzz, AbsurdHeaderPageCountRejected) {
  const std::string path = TempPath("pf_absurd.pgf");
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  ASSERT_NE(fp, nullptr);
  struct {
    uint64_t magic = 0x4451'4d4f'5047'4631ULL;
    uint32_t version = 2;
    uint32_t reserved = 0;
    uint64_t num_pages = 1ULL << 40;  // 4 PiB of pages: nonsense.
  } header;
  ASSERT_EQ(std::fwrite(&header, sizeof(header), 1, fp), 1u);
  std::fclose(fp);
  PageFile f;
  const Status s = f.LoadFrom(path);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.message().find("absurd"), std::string::npos) << s.message();
  std::remove(path.c_str());
}

TEST(PageFileLoadFuzz, BitFlipsAreDetectedOrProvablyHarmless) {
  const std::string path = TempPath("pf_bitflip.pgf");
  PageFile f;
  for (int i = 0; i < 3; ++i) {
    const PageId id = f.Allocate();
    uint8_t buf[kPageSize];
    FillPage(buf, static_cast<uint8_t>(0x60 + i));
    ASSERT_TRUE(f.Write(id, buf).ok());
  }
  ASSERT_TRUE(f.SaveTo(path).ok());

  // Flip one bit at assorted offsets: header fields, payload bytes of
  // several pages, and checksum trailers. Every flip must either fail the
  // load with a typed error or leave all delivered page bytes identical
  // (flips in dead header space are undetectable but harmless).
  const size_t offsets[] = {
      0,                          // Magic.
      8,                          // Version.
      12,                         // Reserved (harmless).
      16,                         // num_pages (size check catches it).
      24,                         // Page 0 payload.
      24 + 2048,                  // Page 0 payload middle.
      24 + kPageChecksumOffset,   // Page 0 stored checksum.
      24 + kPageSize + 1,         // Page 1 payload.
      24 + 2 * kPageSize + 4091,  // Page 2 payload last byte.
      24 + 2 * kPageSize + kPageChecksumOffset + 3,  // Page 2 checksum.
  };
  for (const size_t offset : offsets) {
    SCOPED_TRACE(offset);
    std::FILE* fp = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    ASSERT_EQ(std::fseek(fp, static_cast<long>(offset), SEEK_SET), 0);
    uint8_t byte;
    ASSERT_EQ(std::fread(&byte, 1, 1, fp), 1u);
    byte ^= 0x10;
    ASSERT_EQ(std::fseek(fp, static_cast<long>(offset), SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&byte, 1, 1, fp), 1u);
    std::fclose(fp);

    PageFile g;
    const Status s = g.LoadFrom(path);
    if (s.ok()) {
      ASSERT_EQ(g.num_pages(), f.num_pages());
      for (PageId id = 0; id < 3; ++id) {
        auto original = f.Read(id);
        auto reloaded = g.Read(id);
        ASSERT_TRUE(original.ok());
        ASSERT_TRUE(reloaded.ok());
        EXPECT_EQ(
            std::memcmp(original->data, reloaded->data, kPageSize), 0);
      }
    } else {
      EXPECT_TRUE(s.IsCorruption() || s.IsNotSupported()) << s.ToString();
    }

    // Restore the byte for the next iteration.
    fp = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    byte ^= 0x10;
    ASSERT_EQ(std::fseek(fp, static_cast<long>(offset), SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&byte, 1, 1, fp), 1u);
    std::fclose(fp);
  }
  std::remove(path.c_str());
}

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 10; ++i) {
      const PageId id = file_.Allocate();
      uint8_t buf[kPageSize];
      FillPage(buf, static_cast<uint8_t>(i));
      ASSERT_TRUE(file_.Write(id, buf).ok());
    }
    file_.ResetStats();
  }

  PageFile file_;
};

TEST_F(BufferPoolTest, MissThenHit) {
  BufferPool pool(&file_, 4);
  auto r1 = pool.Read(3);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->physical);
  EXPECT_EQ(r1->data[0], 3);
  auto r2 = pool.Read(3);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->physical);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(file_.stats().physical_reads, 1u);
  EXPECT_EQ(file_.stats().cache_hits, 1u);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(&file_, 2);
  ASSERT_TRUE(pool.Read(0).ok());  // Cache: {0}
  ASSERT_TRUE(pool.Read(1).ok());  // Cache: {1, 0}
  ASSERT_TRUE(pool.Read(0).ok());  // Hit; order {0, 1}
  ASSERT_TRUE(pool.Read(2).ok());  // Evicts 1. Cache {2, 0}
  EXPECT_FALSE(pool.Read(0)->physical);  // Still cached.
  EXPECT_TRUE(pool.Read(1)->physical);   // Was evicted.
}

TEST_F(BufferPoolTest, CapacityRespected) {
  BufferPool pool(&file_, 3);
  for (PageId id = 0; id < 10; ++id) ASSERT_TRUE(pool.Read(id).ok());
  EXPECT_EQ(pool.cached_pages(), 3u);
}

TEST_F(BufferPoolTest, ClearDropsEverything) {
  BufferPool pool(&file_, 4);
  ASSERT_TRUE(pool.Read(0).ok());
  ASSERT_TRUE(pool.Read(1).ok());
  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 0u);
  EXPECT_TRUE(pool.Read(0)->physical);
}

TEST_F(BufferPoolTest, InvalidateDropsOnePage) {
  BufferPool pool(&file_, 4);
  ASSERT_TRUE(pool.Read(0).ok());
  ASSERT_TRUE(pool.Read(1).ok());
  pool.Invalidate(0);
  EXPECT_TRUE(pool.Read(0)->physical);   // Re-fetched.
  EXPECT_FALSE(pool.Read(1)->physical);  // Still cached.
}

TEST_F(BufferPoolTest, ServesFreshDataAfterInvalidation) {
  BufferPool pool(&file_, 4);
  ASSERT_TRUE(pool.Read(5).ok());
  uint8_t buf[kPageSize];
  FillPage(buf, 0x99);
  ASSERT_TRUE(file_.Write(5, buf).ok());
  // Without invalidation the pool would serve stale bytes.
  EXPECT_EQ(pool.Read(5)->data[0], 5);
  pool.Invalidate(5);
  EXPECT_EQ(pool.Read(5)->data[0], 0x99);
}

}  // namespace
}  // namespace dqmo
