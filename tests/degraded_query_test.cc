// Degraded-result semantics under injected storage faults: every query
// path (RangeSearch, PDQ, NPDQ, kNN, the session controller) either fails
// fast with the typed error or completes over the readable subtree with the
// documented subset/integrity contract (rtree/fault_policy.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "common/random.h"
#include "query/knn.h"
#include "query/npdq.h"
#include "query/pdq.h"
#include "query/session.h"
#include "rtree/rtree.h"
#include "storage/fault.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::KeysOf;
using ::dqmo::testing::RandomSegments;

struct Fixture {
  PageFile file;
  std::unique_ptr<RTree> tree;
  std::vector<MotionSegment> data;
};

void BuildFixture(Fixture* fx, uint64_t seed, int n = 3000) {
  auto tree = RTree::Create(&fx->file, RTree::Options());
  ASSERT_TRUE(tree.ok());
  fx->tree = std::move(tree).value();
  Rng rng(seed);
  fx->data = RandomSegments(&rng, n, 2, 100, 100, /*max_duration=*/5.0);
  for (const auto& m : fx->data) ASSERT_TRUE(fx->tree->Insert(m).ok());
}

bool IsSubset(const std::set<MotionSegment::Key>& a,
              const std::set<MotionSegment::Key>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

StBox CenteredQuery(double x, double y, double side, double t0, double t1) {
  return StBox(Box::Centered(Vec(x, y), side), Interval(t0, t1));
}

/// Faults every traversal must survive: a seeded transient stream absorbed
/// by zero retries, i.e. each injected fault becomes a skip.
FaultInjector::Options TransientFaults(uint64_t seed, double rate) {
  FaultInjector::Options options;
  options.seed = seed;
  options.transient_fault_rate = rate;
  return options;
}

class DegradedQueryTest : public ::testing::TestWithParam<uint64_t> {};

// --------------------------------------------------------------------------
// Snapshot (RangeSearch).

TEST_P(DegradedQueryTest, RangeSearchSkipSubtreeIsSubsetAndFlagged) {
  Fixture fx;
  BuildFixture(&fx, GetParam());
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 10; ++trial) {
    const StBox q =
        testing::RandomQueryBox(&rng, 2, 100, 100, /*max_side=*/40.0);
    QueryStats clean_stats;
    auto clean = fx.tree->RangeSearch(q, &clean_stats);
    ASSERT_TRUE(clean.ok());

    FaultInjector injector(TransientFaults(GetParam() + trial, 0.05));
    FaultyPageReader faulty(&fx.file, &injector);
    RTree::SearchOptions opts;
    opts.reader = &faulty;
    opts.fault_policy = FaultPolicy::kSkipSubtree;
    SkipReport report;
    opts.skip_report = &report;
    QueryStats stats;
    auto degraded = fx.tree->RangeSearch(q, &stats, opts);
    ASSERT_TRUE(degraded.ok());

    // Subset of the fault-free answer; kPartial exactly when skips happened.
    EXPECT_TRUE(IsSubset(KeysOf(*degraded), KeysOf(*clean)));
    EXPECT_EQ(report.integrity() == ResultIntegrity::kPartial,
              report.pages_skipped() > 0);
    EXPECT_EQ(stats.pages_skipped, report.pages_skipped());
    if (report.pages_skipped() == 0) {
      EXPECT_EQ(KeysOf(*degraded), KeysOf(*clean));
    }
  }
}

TEST_P(DegradedQueryTest, RangeSearchFailFastSurfacesTypedError) {
  Fixture fx;
  BuildFixture(&fx, GetParam(), 500);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(fx.tree->root());
  FaultyPageReader faulty(&fx.file, &injector);
  RTree::SearchOptions opts;
  opts.reader = &faulty;  // fault_policy defaults to kFailFast.
  QueryStats stats;
  const Status s = fx.tree->RangeSearch(CenteredQuery(50, 50, 40, 0, 100),
                                        &stats, opts)
                       .status();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(stats.pages_skipped, 0u);
}

TEST_P(DegradedQueryTest, RangeSearchDeadRootSkipsToEmptyPartialResult) {
  Fixture fx;
  BuildFixture(&fx, GetParam(), 500);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(fx.tree->root());
  FaultyPageReader faulty(&fx.file, &injector);
  RTree::SearchOptions opts;
  opts.reader = &faulty;
  opts.fault_policy = FaultPolicy::kSkipSubtree;
  SkipReport report;
  opts.skip_report = &report;
  QueryStats stats;
  auto result =
      fx.tree->RangeSearch(CenteredQuery(50, 50, 40, 0, 100), &stats, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(report.pages_skipped(), 1u);
  EXPECT_EQ(report.integrity(), ResultIntegrity::kPartial);
  EXPECT_TRUE(report.last_cause().IsIOError());
}

// --------------------------------------------------------------------------
// PDQ.

TEST_P(DegradedQueryTest, PdqSkipSubtreeDeliversSubset) {
  Fixture fx;
  BuildFixture(&fx, GetParam());
  std::vector<KeySnapshot> keys;
  keys.emplace_back(0.0, Box::Centered(Vec(20, 20), 25.0));
  keys.emplace_back(100.0, Box::Centered(Vec(80, 80), 25.0));
  auto trajectory = QueryTrajectory::Make(std::move(keys));
  ASSERT_TRUE(trajectory.ok());

  // Fault-free run.
  auto clean_pdq = PredictiveDynamicQuery::Make(fx.tree.get(), *trajectory);
  ASSERT_TRUE(clean_pdq.ok());
  std::set<MotionSegment::Key> clean_keys;
  for (double t = 0.0; t < 100.0; t += 5.0) {
    auto frame = (*clean_pdq)->Frame(t, t + 5.0);
    ASSERT_TRUE(frame.ok());
    for (const PdqResult& r : *frame) clean_keys.insert(r.motion.key());
  }

  // Degraded run over the same trajectory.
  FaultInjector injector(TransientFaults(GetParam() + 5, 0.05));
  FaultyPageReader faulty(&fx.file, &injector);
  PredictiveDynamicQuery::Options options;
  options.reader = &faulty;
  options.fault_policy = FaultPolicy::kSkipSubtree;
  auto pdq =
      PredictiveDynamicQuery::Make(fx.tree.get(), *trajectory, options);
  ASSERT_TRUE(pdq.ok());
  std::set<MotionSegment::Key> degraded_keys;
  for (double t = 0.0; t < 100.0; t += 5.0) {
    auto frame = (*pdq)->Frame(t, t + 5.0);
    ASSERT_TRUE(frame.ok());
    for (const PdqResult& r : *frame) degraded_keys.insert(r.motion.key());
  }
  EXPECT_TRUE(IsSubset(degraded_keys, clean_keys));
  EXPECT_EQ((*pdq)->integrity() == ResultIntegrity::kPartial,
            (*pdq)->skip_report().pages_skipped() > 0);
  if ((*pdq)->skip_report().pages_skipped() == 0) {
    EXPECT_EQ(degraded_keys, clean_keys);
  }
}

TEST_P(DegradedQueryTest, PdqFailFastSurfacesTypedError) {
  Fixture fx;
  BuildFixture(&fx, GetParam(), 500);
  std::vector<KeySnapshot> keys;
  keys.emplace_back(0.0, Box::Centered(Vec(50, 50), 30.0));
  keys.emplace_back(100.0, Box::Centered(Vec(50, 50), 30.0));
  auto trajectory = QueryTrajectory::Make(std::move(keys));
  ASSERT_TRUE(trajectory.ok());
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(fx.tree->root());
  FaultyPageReader faulty(&fx.file, &injector);
  PredictiveDynamicQuery::Options options;
  options.reader = &faulty;
  auto pdq =
      PredictiveDynamicQuery::Make(fx.tree.get(), *trajectory, options);
  ASSERT_TRUE(pdq.ok());
  const Status s = (*pdq)->Frame(0.0, 10.0).status();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

// --------------------------------------------------------------------------
// NPDQ.

TEST_P(DegradedQueryTest, NpdqSkipSubtreeDeliversSubsetPerSequence) {
  Fixture fx;
  BuildFixture(&fx, GetParam());

  // The same drifting snapshot sequence, fault-free and degraded.
  auto run = [&fx](PageReader* reader, FaultPolicy policy,
                   uint64_t* skipped) {
    NpdqOptions options;
    options.reader = reader;
    options.fault_policy = policy;
    NonPredictiveDynamicQuery npdq(fx.tree.get(), options);
    std::set<MotionSegment::Key> delivered;
    *skipped = 0;
    for (int i = 0; i < 20; ++i) {
      const double t = 5.0 * i;
      auto out = npdq.Execute(
          CenteredQuery(20.0 + 3.0 * i, 20.0 + 3.0 * i, 25.0, t, t + 5.0));
      EXPECT_TRUE(out.ok());
      if (!out.ok()) break;
      for (const auto& m : *out) delivered.insert(m.key());
      *skipped += npdq.skip_report().pages_skipped();
      EXPECT_EQ(npdq.integrity() == ResultIntegrity::kPartial,
                npdq.skip_report().pages_skipped() > 0);
    }
    return delivered;
  };

  uint64_t clean_skipped = 0;
  const auto clean =
      run(nullptr, FaultPolicy::kFailFast, &clean_skipped);
  ASSERT_EQ(clean_skipped, 0u);

  FaultInjector injector(TransientFaults(GetParam() + 11, 0.05));
  FaultyPageReader faulty(&fx.file, &injector);
  uint64_t skipped = 0;
  const auto degraded =
      run(&faulty, FaultPolicy::kSkipSubtree, &skipped);
  EXPECT_TRUE(IsSubset(degraded, clean));
  if (skipped == 0) {
    EXPECT_EQ(degraded, clean);
  }
}

TEST_P(DegradedQueryTest, NpdqFailFastSurfacesTypedError) {
  Fixture fx;
  BuildFixture(&fx, GetParam(), 500);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(fx.tree->root());
  FaultyPageReader faulty(&fx.file, &injector);
  NpdqOptions options;
  options.reader = &faulty;
  NonPredictiveDynamicQuery npdq(fx.tree.get(), options);
  const Status s =
      npdq.Execute(CenteredQuery(50, 50, 30, 0, 10)).status();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

// --------------------------------------------------------------------------
// kNN.

TEST_P(DegradedQueryTest, KnnSkipSubtreeKeepsDistancesCorrectAndSorted) {
  Fixture fx;
  BuildFixture(&fx, GetParam());
  Rng rng(GetParam() * 17 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec point = testing::RandomPoint(&rng, 2, 100);
    const double t = rng.Uniform(0.0, 100.0);

    FaultInjector injector(TransientFaults(GetParam() + trial + 23, 0.05));
    FaultyPageReader faulty(&fx.file, &injector);
    KnnOptions options;
    options.reader = &faulty;
    options.fault_policy = FaultPolicy::kSkipSubtree;
    SkipReport report;
    options.skip_report = &report;
    QueryStats stats;
    auto result = KnnAt(*fx.tree, point, t, 10, &stats, options);
    ASSERT_TRUE(result.ok());

    // Every returned distance is genuinely that object's distance at t,
    // and the list is sorted — degraded or not.
    double prev = -1.0;
    for (const Neighbor& n : *result) {
      EXPECT_DOUBLE_EQ(n.distance, n.motion.seg.DistanceAt(t, point));
      EXPECT_TRUE(n.motion.seg.time.Contains(t));
      EXPECT_GE(n.distance, prev);
      prev = n.distance;
    }
    EXPECT_EQ(stats.pages_skipped, report.pages_skipped());
  }
}

TEST_P(DegradedQueryTest, KnnFailFastSurfacesTypedError) {
  Fixture fx;
  BuildFixture(&fx, GetParam(), 500);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(fx.tree->root());
  FaultyPageReader faulty(&fx.file, &injector);
  KnnOptions options;
  options.reader = &faulty;
  QueryStats stats;
  const Status s =
      KnnAt(*fx.tree, Vec(50.0, 50.0), 5.0, 5, &stats, options).status();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

TEST_P(DegradedQueryTest, MovingKnnDoesNotCacheDegradedFences) {
  Fixture fx;
  BuildFixture(&fx, GetParam());
  // Every read fails: each full search skips the root, yielding an empty
  // partial answer — and must NOT install a fence cache, so the next frame
  // searches again instead of serving from a fence built on nothing.
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(fx.tree->root());
  FaultyPageReader faulty(&fx.file, &injector);
  MovingKnnQuery::Options options;
  options.reader = &faulty;
  options.fault_policy = FaultPolicy::kSkipSubtree;
  MovingKnnQuery query(fx.tree.get(), 5, options);
  for (int i = 0; i < 3; ++i) {
    auto result = query.At(1.0 + i, Vec(50.0, 50.0));
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->empty());
    EXPECT_EQ(query.integrity(), ResultIntegrity::kPartial);
  }
  EXPECT_EQ(query.full_searches(), 3u);
  EXPECT_EQ(query.cache_answers(), 0u);
}

// --------------------------------------------------------------------------
// Session controller.

TEST_P(DegradedQueryTest, SessionFallsBackToNpdqOnDegradedPredictiveFrame) {
  Fixture fx;
  BuildFixture(&fx, GetParam());

  FaultInjector injector(TransientFaults(GetParam() + 77, 0.02));
  FaultyPageReader faulty(&fx.file, &injector);
  DynamicQuerySession::Options options;
  options.window = 16.0;
  options.deviation_bound = 2.0;
  options.prediction_horizon = 20.0;
  options.stable_frames_to_predict = 2;
  options.reader = &faulty;
  options.npdq.reader = &faulty;
  options.fault_policy = FaultPolicy::kSkipSubtree;
  DynamicQuerySession session(fx.tree.get(), options);

  // A perfectly constant-velocity observer: without faults the session
  // settles predictive; every degradation bounces it to NPDQ, then it
  // re-stabilizes.
  const Vec velocity(0.8, 0.8);
  uint64_t partial_frames = 0;
  bool saw_degraded_predictive_handoff = false;
  for (int i = 1; i <= 60; ++i) {
    const double t = 1.5 * i;
    const Vec position(10.0 + 0.8 * t, 10.0 + 0.8 * t);
    auto frame = session.OnFrame(t, position, velocity);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    if (frame->integrity == ResultIntegrity::kPartial) {
      ++partial_frames;
      if (frame->mode == DynamicQuerySession::Mode::kPredictive) {
        // A degraded predictive frame must trigger the NPDQ fallback.
        EXPECT_TRUE(frame->handoff);
        EXPECT_EQ(session.mode(),
                  DynamicQuerySession::Mode::kNonPredictive);
        saw_degraded_predictive_handoff = true;
      }
    }
  }
  const auto& stats = session.session_stats();
  EXPECT_EQ(stats.degraded_frames, partial_frames);
  EXPECT_EQ(partial_frames > 0,
            session.skip_report().pages_skipped() > 0);
  // With a 2% fault rate over 60 frames of real traversal the run is
  // deterministic per seed; every seed in the suite does degrade.
  EXPECT_GT(partial_frames, 0u);
  EXPECT_EQ(saw_degraded_predictive_handoff, stats.degraded_fallbacks > 0);
  EXPECT_LE(stats.degraded_fallbacks, stats.handoffs_to_npdq);
}

TEST_P(DegradedQueryTest, SessionFailFastSurfacesTypedError) {
  Fixture fx;
  BuildFixture(&fx, GetParam(), 500);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(fx.tree->root());
  FaultyPageReader faulty(&fx.file, &injector);
  DynamicQuerySession::Options options;
  options.reader = &faulty;
  options.npdq.reader = &faulty;
  DynamicQuerySession session(fx.tree.get(), options);
  const Status s =
      session.OnFrame(1.0, Vec(50.0, 50.0), Vec(1.0, 0.0)).status();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

// Retry absorption end-to-end: transient faults behind a RetryingPageReader
// never reach the traversal, so the degraded machinery reports kComplete
// and results match the fault-free answer exactly.
TEST_P(DegradedQueryTest, RetryingReaderMakesTransientFaultsInvisible) {
  Fixture fx;
  BuildFixture(&fx, GetParam());
  Rng rng(GetParam() * 13 + 1);
  FaultInjector injector(TransientFaults(GetParam() + 41, 0.05));
  FaultyPageReader faulty(&fx.file, &injector);
  RetryingPageReader::RetryPolicy policy;
  policy.max_attempts = 8;  // (1 - 0.05^8): failure odds are negligible.
  RetryingPageReader retrying(&faulty, policy, fx.file.mutable_stats());

  for (int trial = 0; trial < 5; ++trial) {
    const StBox q = testing::RandomQueryBox(&rng, 2, 100, 100, 40.0);
    QueryStats clean_stats;
    auto clean = fx.tree->RangeSearch(q, &clean_stats);
    ASSERT_TRUE(clean.ok());
    RTree::SearchOptions opts;
    opts.reader = &retrying;
    opts.fault_policy = FaultPolicy::kSkipSubtree;
    SkipReport report;
    opts.skip_report = &report;
    QueryStats stats;
    auto result = fx.tree->RangeSearch(q, &stats, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(KeysOf(*result), KeysOf(*clean));
    EXPECT_EQ(report.pages_skipped(), 0u);
    EXPECT_EQ(report.integrity(), ResultIntegrity::kComplete);
  }
  // Every injected fault must have been paid for with a retry (some seeds
  // inject none across these five queries — then no retries either).
  EXPECT_EQ(fx.file.stats().retries > 0, injector.faults_injected() > 0);
}

INSTANTIATE_TEST_SUITE_P(FaultSeeds, DegradedQueryTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace dqmo
