// Tests for TimeSet (disjoint interval unions used by PDQ).
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "geom/timeset.h"

namespace dqmo {
namespace {

TEST(TimeSetTest, EmptyByDefault) {
  TimeSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Start(), kInf);
  EXPECT_EQ(s.End(), -kInf);
  EXPECT_EQ(s.TotalLength(), 0.0);
}

TEST(TimeSetTest, AddIgnoresEmptyInterval) {
  TimeSet s;
  s.Add(Interval::Empty());
  EXPECT_TRUE(s.empty());
}

TEST(TimeSetTest, DisjointAddsStaySeparate) {
  TimeSet s;
  s.Add(Interval(5.0, 6.0));
  s.Add(Interval(1.0, 2.0));
  ASSERT_EQ(s.intervals().size(), 2u);
  EXPECT_EQ(s.intervals()[0], Interval(1.0, 2.0));
  EXPECT_EQ(s.intervals()[1], Interval(5.0, 6.0));
  EXPECT_EQ(s.Start(), 1.0);
  EXPECT_EQ(s.End(), 6.0);
  EXPECT_EQ(s.TotalLength(), 2.0);
}

TEST(TimeSetTest, OverlappingAddsMerge) {
  TimeSet s;
  s.Add(Interval(1.0, 3.0));
  s.Add(Interval(2.0, 5.0));
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], Interval(1.0, 5.0));
}

TEST(TimeSetTest, TouchingAddsMerge) {
  TimeSet s;
  s.Add(Interval(1.0, 2.0));
  s.Add(Interval(2.0, 3.0));
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], Interval(1.0, 3.0));
}

TEST(TimeSetTest, BridgingAddMergesMultiple) {
  TimeSet s;
  s.Add(Interval(1.0, 2.0));
  s.Add(Interval(3.0, 4.0));
  s.Add(Interval(5.0, 6.0));
  s.Add(Interval(1.5, 5.5));  // Bridges all three.
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], Interval(1.0, 6.0));
}

TEST(TimeSetTest, ContainsChecksMembership) {
  TimeSet s;
  s.Add(Interval(1.0, 2.0));
  s.Add(Interval(4.0, 5.0));
  EXPECT_TRUE(s.Contains(1.5));
  EXPECT_TRUE(s.Contains(4.0));
  EXPECT_FALSE(s.Contains(3.0));
  EXPECT_FALSE(s.Contains(0.0));
  EXPECT_FALSE(s.Contains(6.0));
}

TEST(TimeSetTest, OverlapsAndFirstOverlap) {
  TimeSet s;
  s.Add(Interval(1.0, 2.0));
  s.Add(Interval(4.0, 5.0));
  EXPECT_TRUE(s.Overlaps(Interval(1.5, 3.0)));
  EXPECT_TRUE(s.Overlaps(Interval(3.0, 4.0)));
  EXPECT_FALSE(s.Overlaps(Interval(2.5, 3.5)));
  EXPECT_EQ(s.FirstOverlap(Interval(0.0, 10.0)), Interval(1.0, 2.0));
  EXPECT_EQ(s.FirstOverlap(Interval(3.0, 10.0)), Interval(4.0, 5.0));
  EXPECT_TRUE(s.FirstOverlap(Interval(2.5, 3.5)).empty());
}

TEST(TimeSetTest, IntersectClipsMembers) {
  TimeSet s;
  s.Add(Interval(1.0, 3.0));
  s.Add(Interval(5.0, 7.0));
  const TimeSet clipped = s.Intersect(Interval(2.0, 6.0));
  ASSERT_EQ(clipped.intervals().size(), 2u);
  EXPECT_EQ(clipped.intervals()[0], Interval(2.0, 3.0));
  EXPECT_EQ(clipped.intervals()[1], Interval(5.0, 6.0));
}

TEST(TimeSetTest, FirstInstantAtOrAfter) {
  TimeSet s;
  s.Add(Interval(1.0, 2.0));
  s.Add(Interval(4.0, 5.0));
  EXPECT_EQ(s.FirstInstantAtOrAfter(0.0), 1.0);
  EXPECT_EQ(s.FirstInstantAtOrAfter(1.5), 1.5);
  EXPECT_EQ(s.FirstInstantAtOrAfter(2.0), 2.0);
  EXPECT_EQ(s.FirstInstantAtOrAfter(3.0), 4.0);
  EXPECT_EQ(s.FirstInstantAtOrAfter(5.0), 5.0);
  EXPECT_EQ(s.FirstInstantAtOrAfter(5.01), kInf);
}

TEST(TimeSetTest, AddAllMergesSets) {
  TimeSet a;
  a.Add(Interval(1.0, 2.0));
  TimeSet b;
  b.Add(Interval(1.5, 3.0));
  b.Add(Interval(5.0, 6.0));
  a.AddAll(b);
  ASSERT_EQ(a.intervals().size(), 2u);
  EXPECT_EQ(a.intervals()[0], Interval(1.0, 3.0));
  EXPECT_EQ(a.intervals()[1], Interval(5.0, 6.0));
}

// Property test: TimeSet behaves like a set of reals built naively.
class TimeSetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TimeSetProperty, MatchesNaiveMembership) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    TimeSet s;
    std::vector<Interval> raw;
    const int n = rng.UniformInt(1, 15);
    for (int i = 0; i < n; ++i) {
      const double lo = rng.Uniform(0.0, 20.0);
      const Interval iv(lo, lo + rng.Uniform(0.0, 3.0));
      raw.push_back(iv);
      s.Add(iv);
    }
    // Invariant: sorted, disjoint, non-touching members.
    for (size_t i = 1; i < s.intervals().size(); ++i) {
      EXPECT_GT(s.intervals()[i].lo, s.intervals()[i - 1].hi);
    }
    // Membership matches the naive union.
    for (int k = 0; k < 200; ++k) {
      const double t = rng.Uniform(-1.0, 24.0);
      bool naive = false;
      for (const Interval& iv : raw) naive |= iv.Contains(t);
      EXPECT_EQ(s.Contains(t), naive) << "t=" << t;
    }
    // FirstInstantAtOrAfter is consistent with membership.
    for (int k = 0; k < 50; ++k) {
      const double t = rng.Uniform(-1.0, 24.0);
      const double first = s.FirstInstantAtOrAfter(t);
      if (first != kInf) {
        EXPECT_GE(first, t);
        EXPECT_TRUE(s.Contains(first));
        // No member point in [t, first).
        if (first > t) {
          const double probe = 0.5 * (t + first);
          EXPECT_FALSE(s.Contains(probe) && probe < first - 1e-12);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeSetProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace dqmo
