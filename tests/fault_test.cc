// Failure-injection tests: storage errors must surface as Status through
// every query path — never as crashes, hangs, or silently truncated
// results.
#include <gtest/gtest.h>

#include <cstring>

#include "common/random.h"
#include "query/join.h"
#include "query/knn.h"
#include "query/npdq.h"
#include "query/pdq.h"
#include "rtree/rtree.h"
#include "storage/fault.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::RandomSegments;

/// PageReader that fails every read after the first `budget` calls.
class FlakyReader : public PageReader {
 public:
  FlakyReader(PageFile* file, int budget) : file_(file), budget_(budget) {}

  Result<ReadResult> Read(PageId id) override {
    if (budget_-- <= 0) {
      return Status::IOError("injected read failure");
    }
    return file_->Read(id);
  }

 private:
  PageFile* file_;
  int budget_;
};

/// PageReader that XORs `mask` into payload byte `offset` of one page on
/// every delivery (at-rest corruption: the stored page is untouched, but
/// all reads see the damage).
class CorruptingReader : public PageReader {
 public:
  CorruptingReader(PageFile* file, PageId victim, size_t offset,
                   uint8_t mask)
      : file_(file), victim_(victim), offset_(offset), mask_(mask) {}

  Result<ReadResult> Read(PageId id) override {
    DQMO_ASSIGN_OR_RETURN(ReadResult r, file_->Read(id));
    if (id == victim_) {
      std::memcpy(garbled_, r.data, kPageSize);
      garbled_[offset_] ^= mask_;
      return ReadResult{garbled_, r.physical};
    }
    return r;
  }

 private:
  PageFile* file_;
  PageId victim_;
  size_t offset_;
  uint8_t mask_;
  uint8_t garbled_[kPageSize];
};

class FaultFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto tree = RTree::Create(&file_, RTree::Options());
    ASSERT_TRUE(tree.ok());
    tree_ = std::move(tree).value();
    Rng rng(99);
    data_ = RandomSegments(&rng, 2000, 2, 100, 100);
    for (const auto& m : data_) ASSERT_TRUE(tree_->Insert(m).ok());
  }

  StBox BigQuery() const {
    return StBox(Box(Interval(10, 60), Interval(10, 60)),
                 Interval(10, 60));
  }

  PageFile file_;
  std::unique_ptr<RTree> tree_;
  std::vector<MotionSegment> data_;
};

TEST_F(FaultFixture, RangeSearchPropagatesReadFailure) {
  FlakyReader reader(&file_, 3);
  QueryStats stats;
  auto result = tree_->RangeSearch(BigQuery(), &stats, &reader);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(FaultFixture, RangeSearchSurvivesWithEnoughBudget) {
  FlakyReader reader(&file_, 1 << 20);
  QueryStats stats;
  EXPECT_TRUE(tree_->RangeSearch(BigQuery(), &stats, &reader).ok());
}

TEST_F(FaultFixture, PdqPropagatesReadFailure) {
  std::vector<KeySnapshot> keys;
  keys.emplace_back(10.0, Box::Centered(Vec(30, 30), 20.0));
  keys.emplace_back(40.0, Box::Centered(Vec(70, 70), 20.0));
  FlakyReader reader(&file_, 2);
  PredictiveDynamicQuery::Options options;
  options.reader = &reader;
  auto pdq = PredictiveDynamicQuery::Make(
      tree_.get(), QueryTrajectory::Make(std::move(keys)).value(), options);
  ASSERT_TRUE(pdq.ok());
  auto frame = (*pdq)->Frame(10.0, 40.0);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsIOError());
}

TEST_F(FaultFixture, NpdqPropagatesReadFailure) {
  FlakyReader reader(&file_, 2);
  NpdqOptions options;
  options.reader = &reader;
  NonPredictiveDynamicQuery npdq(tree_.get(), options);
  auto result = npdq.Execute(BigQuery());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(FaultFixture, KnnPropagatesReadFailure) {
  // Budget of one read (the root) and a large k: the search must descend
  // and hit the injected failure.
  FlakyReader reader(&file_, 1);
  QueryStats stats;
  auto result = KnnAt(*tree_, Vec(50, 50), 30.0, 50, &stats, &reader);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(FaultFixture, JoinPropagatesReadFailure) {
  FlakyReader reader(&file_, 4);
  DistanceJoinOptions options;
  options.delta = 1.0;
  options.left_reader = &reader;
  options.right_reader = &reader;
  QueryStats stats;
  auto result = SelfDistanceJoin(*tree_, options, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(FaultFixture, CorruptPageSurfacesAsCorruption) {
  // Smash the root's header dims byte: every search must fail with
  // Corruption (deserializer sanity check or checksum), not crash.
  CorruptingReader reader(&file_, tree_->root(), /*offset=*/4,
                          /*mask=*/0x77);
  QueryStats stats;
  auto result = tree_->RangeSearch(BigQuery(), &stats, &reader);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST_F(FaultFixture, ChecksumLayerCatchesSubtleEntryCorruption) {
  // Flip one bit deep inside the root's entry array — geometry the node
  // deserializer cannot sanity-check (the damaged box still parses). The
  // retrying reader's checksum verification must catch it: the corruption
  // persists across every retry, so the read exhausts the policy and
  // surfaces as Corruption naming the page.
  CorruptingReader corrupting(&file_, tree_->root(), /*offset=*/512,
                              /*mask=*/0x04);
  RetryingPageReader reader(&corrupting, RetryingPageReader::RetryPolicy{},
                            file_.mutable_stats());
  QueryStats stats;
  auto result = tree_->RangeSearch(BigQuery(), &stats, &reader);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption()) << result.status().ToString();
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos)
      << result.status().message();
  EXPECT_GT(file_.stats().checksum_failures, 0u);
  EXPECT_GT(file_.stats().retries, 0u);
}

TEST_F(FaultFixture, LoadNodeRejectsUnknownPage) {
  QueryStats stats;
  auto result = tree_->LoadNode(static_cast<PageId>(1 << 30), &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfRange());
}

TEST_F(FaultFixture, QueryAfterFailureStillWorks) {
  // A failed query must not poison the processor's reusable state.
  FlakyReader reader(&file_, 2);
  NpdqOptions options;
  options.reader = &reader;
  NonPredictiveDynamicQuery npdq(tree_.get(), options);
  ASSERT_FALSE(npdq.Execute(BigQuery()).ok());
  // Same processor, healthy reader path: use a fresh processor reading the
  // file directly.
  NonPredictiveDynamicQuery healthy(tree_.get());
  auto result = healthy.Execute(BigQuery());
  EXPECT_TRUE(result.ok());
}

}  // namespace
}  // namespace dqmo
