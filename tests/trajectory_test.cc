// Tests for QueryTrajectory: key-snapshot validation (Eq. (2)), window
// interpolation, frame queries, overlap TimeSets and SPDQ inflation.
#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/trajectory.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::RandomPoint;

QueryTrajectory SimpleTrajectory() {
  // Window of side 2 moving along x: center 0 at t=0, 10 at t=10,
  // then back to 5 at t=15.
  std::vector<KeySnapshot> keys;
  keys.emplace_back(0.0, Box::Centered(Vec(0.0, 0.0), 2.0));
  keys.emplace_back(10.0, Box::Centered(Vec(10.0, 0.0), 2.0));
  keys.emplace_back(15.0, Box::Centered(Vec(5.0, 0.0), 2.0));
  auto result = QueryTrajectory::Make(std::move(keys));
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(TrajectoryTest, MakeRejectsTooFewKeys) {
  std::vector<KeySnapshot> keys;
  keys.emplace_back(0.0, Box::Centered(Vec(0.0, 0.0), 2.0));
  EXPECT_TRUE(QueryTrajectory::Make(keys).status().IsInvalidArgument());
}

TEST(TrajectoryTest, MakeRejectsNonIncreasingTimes) {
  std::vector<KeySnapshot> keys;
  keys.emplace_back(0.0, Box::Centered(Vec(0.0, 0.0), 2.0));
  keys.emplace_back(0.0, Box::Centered(Vec(1.0, 0.0), 2.0));
  EXPECT_TRUE(QueryTrajectory::Make(keys).status().IsInvalidArgument());
}

TEST(TrajectoryTest, MakeRejectsEmptyWindow) {
  std::vector<KeySnapshot> keys;
  keys.emplace_back(0.0, Box(2));  // Empty box.
  keys.emplace_back(1.0, Box::Centered(Vec(0.0, 0.0), 2.0));
  EXPECT_TRUE(QueryTrajectory::Make(keys).status().IsInvalidArgument());
}

TEST(TrajectoryTest, MakeRejectsMixedDims) {
  std::vector<KeySnapshot> keys;
  keys.emplace_back(0.0, Box::Centered(Vec(0.0, 0.0), 2.0));
  keys.emplace_back(1.0, Box::Centered(Vec(0.0, 0.0, 0.0), 2.0));
  EXPECT_TRUE(QueryTrajectory::Make(keys).status().IsInvalidArgument());
}

TEST(TrajectoryTest, BasicAccessors) {
  const QueryTrajectory q = SimpleTrajectory();
  EXPECT_EQ(q.dims(), 2);
  EXPECT_EQ(q.num_segments(), 2);
  EXPECT_EQ(q.TimeSpan(), Interval(0.0, 15.0));
}

TEST(TrajectoryTest, WindowAtInterpolatesAcrossSegments) {
  const QueryTrajectory q = SimpleTrajectory();
  EXPECT_EQ(q.WindowAt(5.0).Center(), Vec(5.0, 0.0));
  EXPECT_EQ(q.WindowAt(10.0).Center(), Vec(10.0, 0.0));
  EXPECT_EQ(q.WindowAt(12.5).Center(), Vec(7.5, 0.0));
  EXPECT_EQ(q.WindowAt(15.0).Center(), Vec(5.0, 0.0));
}

TEST(TrajectoryTest, FrameQueryCoversWindowPath) {
  const QueryTrajectory q = SimpleTrajectory();
  const StBox f = q.FrameQuery(2.0, 3.0);
  EXPECT_EQ(f.time, Interval(2.0, 3.0));
  // Window centers 2..3, side 2 -> x extent [1, 4].
  EXPECT_EQ(f.spatial.extent(0), Interval(1.0, 4.0));
}

TEST(TrajectoryTest, FrameQuerySpanningKeyIncludesTurnPoint) {
  const QueryTrajectory q = SimpleTrajectory();
  // Frame [9, 11] spans the turn at t=10 where the center peaks at 10.
  const StBox f = q.FrameQuery(9.0, 11.0);
  EXPECT_EQ(f.spatial.extent(0).hi, 11.0);  // Peak center 10 + half side 1.
  EXPECT_DOUBLE_EQ(f.spatial.extent(0).lo, 8.0);
}

TEST(TrajectoryTest, OverlapTimesBoxAcrossTurn) {
  const QueryTrajectory q = SimpleTrajectory();
  // Box at x in [8.5, 9.5]: window (half-width 1) covers it while center
  // in [7.5, 10] going out (t in [7.5, 10]) and center in [10, 7.5] coming
  // back (t in [10, 12.5]) -> one merged interval [7.5, 12.5].
  const StBox r(Box(Interval(8.5, 9.5), Interval(-1.0, 1.0)),
                Interval(0.0, 15.0));
  const TimeSet times = q.OverlapTimes(r);
  ASSERT_EQ(times.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(times.intervals()[0].lo, 7.5);
  EXPECT_DOUBLE_EQ(times.intervals()[0].hi, 12.5);
}

TEST(TrajectoryTest, OverlapTimesCanBeDisjoint) {
  // Trajectory passes the box, leaves, and returns.
  std::vector<KeySnapshot> keys;
  keys.emplace_back(0.0, Box::Centered(Vec(0.0, 0.0), 2.0));
  keys.emplace_back(5.0, Box::Centered(Vec(10.0, 0.0), 2.0));
  keys.emplace_back(10.0, Box::Centered(Vec(0.0, 0.0), 2.0));
  QueryTrajectory q = QueryTrajectory::Make(std::move(keys)).value();
  const StBox r(Box(Interval(3.9, 4.1), Interval(-1.0, 1.0)),
                Interval(0.0, 10.0));
  const TimeSet times = q.OverlapTimes(r);
  ASSERT_EQ(times.intervals().size(), 2u);
  EXPECT_LT(times.intervals()[0].hi, times.intervals()[1].lo);
}

TEST(TrajectoryTest, OverlapTimesMotionMatchesSampling) {
  Rng rng(55);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<KeySnapshot> keys;
    double t = 0.0;
    for (int k = 0; k < 4; ++k) {
      keys.emplace_back(
          t, Box::Centered(RandomPoint(&rng, 2, 10), rng.Uniform(1.0, 4.0)));
      t += rng.Uniform(1.0, 5.0);
    }
    QueryTrajectory q = QueryTrajectory::Make(std::move(keys)).value();
    const StSegment m(RandomPoint(&rng, 2, 10), RandomPoint(&rng, 2, 10),
                      Interval(rng.Uniform(0, 3), rng.Uniform(4, 12)));
    const TimeSet times = q.OverlapTimes(m);
    const Interval span = q.TimeSpan().Intersect(m.time);
    if (span.empty()) {
      EXPECT_TRUE(times.empty());
      continue;
    }
    for (int k = 0; k <= 80; ++k) {
      const double tt = span.lo + span.length() * k / 80.0;
      const bool inside = q.WindowAt(tt).Contains(m.PositionAt(tt));
      if (inside) {
        EXPECT_TRUE(times.Contains(tt)) << "t=" << tt;
      }
      // Points strictly interior to the complement must be outside.
      if (!times.Contains(tt)) {
        const double next = times.FirstInstantAtOrAfter(tt);
        if (next > tt + 1e-9) {
          EXPECT_FALSE(inside) << "t=" << tt;
        }
      }
    }
  }
}

TEST(TrajectoryTest, InflateGrowsEveryWindow) {
  const QueryTrajectory q = SimpleTrajectory();
  const QueryTrajectory big = q.Inflate(0.5);
  for (double t : {0.0, 5.0, 14.0}) {
    const Box w = q.WindowAt(t);
    const Box v = big.WindowAt(t);
    EXPECT_TRUE(v.Contains(w));
    EXPECT_DOUBLE_EQ(v.extent(0).length(), w.extent(0).length() + 1.0);
  }
}

TEST(TrajectoryTest, InflatedTrajectoryOverlapsSuperset) {
  Rng rng(66);
  const QueryTrajectory q = SimpleTrajectory();
  const QueryTrajectory big = q.Inflate(1.0);
  for (int i = 0; i < 200; ++i) {
    const StBox r = dqmo::testing::RandomQueryBox(&rng, 2, 12, 15, 4, 6);
    const TimeSet small_times = q.OverlapTimes(r);
    const TimeSet big_times = big.OverlapTimes(r);
    // Everything visible in the tight trajectory is visible in the
    // inflated one (SPDQ conservativeness).
    for (const Interval& iv : small_times.intervals()) {
      EXPECT_TRUE(big_times.Contains(iv.lo));
      EXPECT_TRUE(big_times.Contains(iv.hi));
    }
  }
}

}  // namespace
}  // namespace dqmo
