// Tests for the Sect. 5 workload generators: data properties (bounds,
// contiguity, scale) and query trajectories (overlap targeting, bouncing).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "workload/data_generator.h"
#include "workload/query_generator.h"

namespace dqmo {
namespace {

TEST(DataGeneratorTest, ValidatesOptions) {
  DataGeneratorOptions bad;
  bad.dims = 0;
  EXPECT_TRUE(GenerateMotionData(bad).status().IsInvalidArgument());
  bad = DataGeneratorOptions();
  bad.num_objects = 0;
  EXPECT_TRUE(GenerateMotionData(bad).status().IsInvalidArgument());
  bad = DataGeneratorOptions();
  bad.horizon = -1;
  EXPECT_TRUE(GenerateMotionData(bad).status().IsInvalidArgument());
}

TEST(DataGeneratorTest, DeterministicInSeed) {
  DataGeneratorOptions options;
  options.num_objects = 20;
  options.horizon = 10.0;
  auto a = GenerateMotionData(options);
  auto b = GenerateMotionData(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].oid, (*b)[i].oid);
    EXPECT_EQ((*a)[i].seg.p0, (*b)[i].seg.p0);
    EXPECT_EQ((*a)[i].seg.time, (*b)[i].seg.time);
  }
  options.seed = 43;
  auto c = GenerateMotionData(options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->front().seg.p0, c->front().seg.p0);
}

TEST(DataGeneratorTest, SegmentsStayInSpaceAndHorizon) {
  DataGeneratorOptions options;
  options.num_objects = 50;
  options.horizon = 20.0;
  auto data = GenerateMotionData(options);
  ASSERT_TRUE(data.ok());
  for (const auto& m : *data) {
    for (int d = 0; d < 2; ++d) {
      EXPECT_GE(m.seg.p0[d], 0.0);
      EXPECT_LE(m.seg.p0[d], options.space_size);
      EXPECT_GE(m.seg.p1[d], 0.0);
      EXPECT_LE(m.seg.p1[d], options.space_size);
    }
    EXPECT_GE(m.seg.time.lo, 0.0);
    EXPECT_LE(m.seg.time.hi, options.horizon + 1e-6);
    EXPECT_GT(m.seg.time.length(), 0.0);
  }
}

TEST(DataGeneratorTest, PerObjectSegmentsTileTimeContiguously) {
  DataGeneratorOptions options;
  options.num_objects = 30;
  options.horizon = 15.0;
  options.sort_by_start_time = false;
  auto data = GenerateMotionData(options);
  ASSERT_TRUE(data.ok());
  std::map<ObjectId, double> last_end;
  std::map<ObjectId, Vec> last_pos;
  for (const auto& m : *data) {
    auto it = last_end.find(m.oid);
    if (it != last_end.end()) {
      // Consecutive updates abut in time and space (float32 quantization
      // happens at insert time, not generation time).
      EXPECT_DOUBLE_EQ(m.seg.time.lo, it->second);
      EXPECT_EQ(m.seg.p0, last_pos[m.oid]);
    } else {
      EXPECT_DOUBLE_EQ(m.seg.time.lo, 0.0);
    }
    last_end[m.oid] = m.seg.time.hi;
    last_pos[m.oid] = m.seg.p1;
  }
  for (const auto& [oid, end] : last_end) {
    EXPECT_DOUBLE_EQ(end, options.horizon) << "object " << oid;
  }
}

TEST(DataGeneratorTest, ScaleMatchesPaperSetup) {
  // Paper: 5000 objects, ~1 update per time unit, 100 time units
  // -> ~500k segments (they report 502,504).
  DataGeneratorOptions options;  // Defaults are the paper's setup.
  auto data = GenerateMotionData(options);
  ASSERT_TRUE(data.ok());
  EXPECT_GT(data->size(), 450000u);
  EXPECT_LT(data->size(), 560000u);
}

TEST(DataGeneratorTest, SortedByStartTimeWhenRequested) {
  DataGeneratorOptions options;
  options.num_objects = 40;
  options.horizon = 10.0;
  auto data = GenerateMotionData(options);
  ASSERT_TRUE(data.ok());
  for (size_t i = 1; i < data->size(); ++i) {
    EXPECT_LE((*data)[i - 1].seg.time.lo, (*data)[i].seg.time.lo);
  }
}

TEST(DataGeneratorTest, ShapeValidation) {
  DataGeneratorOptions bad;
  bad.shape = WorkloadShape::kSkewed;
  bad.hotspots = 0;
  EXPECT_TRUE(GenerateMotionData(bad).status().IsInvalidArgument());
  bad = DataGeneratorOptions();
  bad.shape = WorkloadShape::kClusteredFastMovers;
  bad.fast_fraction = 1.5;
  EXPECT_TRUE(GenerateMotionData(bad).status().IsInvalidArgument());
}

TEST(DataGeneratorTest, UniformShapeIsByteIdenticalToDefault) {
  // kUniform must reproduce the pre-shape generator bit for bit — the
  // shape stream is forked off a separate rng precisely so the default
  // workload (and every committed benchmark built on it) is unchanged.
  DataGeneratorOptions options;
  options.num_objects = 30;
  options.horizon = 8.0;
  auto plain = GenerateMotionData(options);
  options.shape = WorkloadShape::kUniform;
  options.hotspots = 3;            // Ignored under kUniform.
  options.fast_fraction = 0.9;     // Ignored under kUniform.
  auto shaped = GenerateMotionData(options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(shaped.ok());
  ASSERT_EQ(plain->size(), shaped->size());
  for (size_t i = 0; i < plain->size(); ++i) {
    EXPECT_EQ((*plain)[i].oid, (*shaped)[i].oid);
    EXPECT_EQ((*plain)[i].seg.p0, (*shaped)[i].seg.p0);
    EXPECT_EQ((*plain)[i].seg.p1, (*shaped)[i].seg.p1);
    EXPECT_EQ((*plain)[i].seg.time, (*shaped)[i].seg.time);
  }
}

TEST(DataGeneratorTest, SkewedShapeConcentratesStartPositions) {
  DataGeneratorOptions options;
  options.num_objects = 200;
  options.horizon = 2.0;
  options.shape = WorkloadShape::kSkewed;
  options.hotspots = 2;
  options.hotspot_stddev_frac = 0.02;
  auto data = GenerateMotionData(options);
  ASSERT_TRUE(data.ok());
  // With 2 tight hotspots the first segments' start positions cover far
  // less of the space than uniform would: measure the mean pairwise-cell
  // occupancy of a 10x10 grid over first-segment starts.
  std::map<ObjectId, Vec> first_start;
  for (const auto& m : *data) {
    if (first_start.find(m.oid) == first_start.end() ||
        m.seg.time.lo == 0.0) {
      if (m.seg.time.lo == 0.0) first_start[m.oid] = m.seg.p0;
    }
  }
  std::map<int, int> cells;
  for (const auto& [oid, pos] : first_start) {
    const int cx = std::min(9, static_cast<int>(pos[0] / 10.0));
    const int cy = std::min(9, static_cast<int>(pos[1] / 10.0));
    cells[cx * 10 + cy]++;
  }
  // Uniform occupancy over 100 cells would touch ~86 of them with 200
  // objects; 2 tight blobs touch a small handful.
  EXPECT_LT(cells.size(), 30u);
  for (const auto& m : *data) {
    for (int d = 0; d < 2; ++d) {
      EXPECT_GE(m.seg.p0[d], 0.0);
      EXPECT_LE(m.seg.p0[d], options.space_size);
    }
  }
}

TEST(DataGeneratorTest, ClusteredFastMoversAreFasterAndClustered) {
  DataGeneratorOptions options;
  options.num_objects = 100;
  options.horizon = 4.0;
  options.shape = WorkloadShape::kClusteredFastMovers;
  options.fast_fraction = 0.2;
  options.fast_speed_multiplier = 4.0;
  options.sort_by_start_time = false;  // Keep per-object order for split.
  auto data = GenerateMotionData(options);
  ASSERT_TRUE(data.ok());
  double fast_speed_sum = 0.0, slow_speed_sum = 0.0;
  uint64_t fast_n = 0, slow_n = 0;
  for (const auto& m : *data) {
    const double speed = m.seg.Speed();
    if (m.oid < 20) {
      fast_speed_sum += speed;
      ++fast_n;
      if (m.seg.time.lo == 0.0) {
        // Fast movers start inside the cluster box.
        for (int d = 0; d < 2; ++d) {
          EXPECT_GE(m.seg.p0[d], 0.10 * options.space_size);
          EXPECT_LE(m.seg.p0[d], 0.25 * options.space_size);
        }
      }
    } else {
      slow_speed_sum += speed;
      ++slow_n;
    }
  }
  ASSERT_GT(fast_n, 0u);
  ASSERT_GT(slow_n, 0u);
  // Mean fast speed ~4x mean slow speed; require a comfortable 2x.
  EXPECT_GT(fast_speed_sum / fast_n, 2.0 * slow_speed_sum / slow_n);
}

TEST(QueryGeneratorTest, ValidatesOptions) {
  Rng rng(1);
  QueryWorkloadOptions bad;
  bad.overlap = 1.0;
  EXPECT_TRUE(GenerateDynamicQuery(bad, &rng).status().IsInvalidArgument());
  bad = QueryWorkloadOptions();
  bad.window = 200.0;
  EXPECT_TRUE(GenerateDynamicQuery(bad, &rng).status().IsInvalidArgument());
  bad = QueryWorkloadOptions();
  bad.num_snapshots = 0;
  EXPECT_TRUE(GenerateDynamicQuery(bad, &rng).status().IsInvalidArgument());
}

TEST(QueryGeneratorTest, SpeedForOverlapFormula) {
  QueryWorkloadOptions options;
  options.window = 8.0;
  options.snapshot_interval = 0.1;
  options.overlap = 0.0;
  EXPECT_DOUBLE_EQ(SpeedForOverlap(options), 80.0);
  options.overlap = 0.9;
  EXPECT_NEAR(SpeedForOverlap(options), 8.0, 1e-9);
  options.overlap = 0.9999;
  EXPECT_NEAR(SpeedForOverlap(options), 0.008, 1e-9);
}

class QueryGeneratorOverlap : public ::testing::TestWithParam<double> {};

TEST_P(QueryGeneratorOverlap, ConsecutiveWindowsHitTargetOverlap) {
  const double target = GetParam();
  Rng rng(77);
  QueryWorkloadOptions options;
  options.overlap = target;
  for (int trial = 0; trial < 20; ++trial) {
    auto workload = GenerateDynamicQuery(options, &rng);
    ASSERT_TRUE(workload.ok());
    // Overlap fraction between consecutive *instantaneous* windows. A
    // bounce inside a frame reduces displacement, so overlap may only ever
    // exceed the target, never fall short.
    for (size_t i = 0; i + 1 < workload->frame_times.size(); ++i) {
      const Box w0 =
          workload->trajectory.WindowAt(workload->frame_times[i]);
      const Box w1 =
          workload->trajectory.WindowAt(workload->frame_times[i + 1]);
      const double inter = w0.Intersect(w1).empty()
                               ? 0.0
                               : w0.Intersect(w1).Volume();
      const double frac = inter / w0.Volume();
      EXPECT_GE(frac, target - 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Overlaps, QueryGeneratorOverlap,
                         ::testing::Values(0.0, 0.25, 0.5, 0.8, 0.9,
                                           0.9999));

TEST(QueryGeneratorTest, WindowsStayInsideSpace) {
  Rng rng(88);
  QueryWorkloadOptions options;
  options.overlap = 0.0;  // Fastest: most bounces.
  options.window = 20.0;
  for (int trial = 0; trial < 20; ++trial) {
    auto workload = GenerateDynamicQuery(options, &rng);
    ASSERT_TRUE(workload.ok());
    for (const KeySnapshot& k : workload->trajectory.keys()) {
      for (int d = 0; d < 2; ++d) {
        EXPECT_GE(k.window.extent(d).lo, -1e-9);
        EXPECT_LE(k.window.extent(d).hi, options.space_size + 1e-9);
      }
    }
  }
}

TEST(QueryGeneratorTest, FrameScheduleMatchesOptions) {
  Rng rng(99);
  QueryWorkloadOptions options;
  options.num_snapshots = 50;
  options.snapshot_interval = 0.1;
  auto workload = GenerateDynamicQuery(options, &rng);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->num_frames(), 51);  // First + 50 subsequent.
  EXPECT_EQ(workload->frame_times.size(), 52u);
  for (size_t i = 1; i < workload->frame_times.size(); ++i) {
    EXPECT_NEAR(
        workload->frame_times[i] - workload->frame_times[i - 1], 0.1, 1e-9);
  }
  // Trajectory spans the frames.
  EXPECT_DOUBLE_EQ(workload->trajectory.TimeSpan().lo,
                   workload->frame_times.front());
  EXPECT_NEAR(workload->trajectory.TimeSpan().hi,
              workload->frame_times.back(), 1e-9);
}

TEST(QueryGeneratorTest, FrameQueriesHaveWindowSizedSpatialExtent) {
  Rng rng(111);
  QueryWorkloadOptions options;
  options.overlap = 0.9;
  options.window = 8.0;
  auto workload = GenerateDynamicQuery(options, &rng);
  ASSERT_TRUE(workload.ok());
  const double speed = SpeedForOverlap(options);
  for (int i = 0; i < workload->num_frames(); ++i) {
    const StBox q = workload->Frame(i);
    for (int d = 0; d < 2; ++d) {
      EXPECT_GE(q.spatial.extent(d).length(), options.window - 1e-9);
      // At most window + per-frame displacement.
      EXPECT_LE(q.spatial.extent(d).length(),
                options.window + speed * options.snapshot_interval + 1e-9);
    }
  }
}

}  // namespace
}  // namespace dqmo
