// Tests for the NSI R-tree: construction, invariants, exact range search
// against brute force, persistence, accounting, and the update-management
// hooks (same-path splits, LCA reporting, timestamps).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::BruteForceRange;
using ::dqmo::testing::BruteForceRangeBb;
using ::dqmo::testing::KeysOf;
using ::dqmo::testing::RandomSegments;

std::unique_ptr<RTree> MakeTree(PageFile* file, int dims = 2) {
  RTree::Options options;
  options.dims = dims;
  auto tree = RTree::Create(file, options);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

TEST(RTreeCreateTest, FreshTreeIsEmpty) {
  PageFile file;
  auto tree = MakeTree(&file);
  EXPECT_EQ(tree->num_segments(), 0u);
  EXPECT_EQ(tree->height(), 1);
  EXPECT_EQ(tree->num_nodes(), 1u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
  QueryStats stats;
  auto result = tree->RangeSearch(
      StBox(Box(Interval(0, 100), Interval(0, 100)), Interval(0, 100)),
      &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(stats.node_reads, 1u);  // Root leaf still read once.
}

TEST(RTreeCreateTest, RejectsNonEmptyFile) {
  PageFile file;
  file.Allocate();
  EXPECT_TRUE(
      RTree::Create(&file, RTree::Options()).status().IsFailedPrecondition());
}

TEST(RTreeCreateTest, RejectsBadOptions) {
  PageFile file;
  RTree::Options options;
  options.dims = 7;
  EXPECT_TRUE(RTree::Create(&file, options).status().IsInvalidArgument());
  options.dims = 2;
  options.fill_factor = 0.9;  // > 0.5 cannot be a split minimum.
  EXPECT_TRUE(RTree::Create(&file, options).status().IsInvalidArgument());
}

TEST(RTreeInsertTest, RejectsDimsMismatch) {
  PageFile file;
  auto tree = MakeTree(&file, 2);
  MotionSegment m(1, StSegment(Vec(0.0, 0.0, 0.0), Vec(1.0, 1.0, 1.0),
                               Interval(0.0, 1.0)));
  EXPECT_TRUE(tree->Insert(m).IsInvalidArgument());
}

TEST(RTreeInsertTest, RejectsEmptyValidTime) {
  PageFile file;
  auto tree = MakeTree(&file);
  MotionSegment m(1, StSegment(Vec(0.0, 0.0), Vec(1.0, 1.0),
                               Interval(2.0, 1.0)));
  EXPECT_TRUE(tree->Insert(m).IsInvalidArgument());
}

TEST(RTreeInsertTest, GrowsAndKeepsInvariants) {
  PageFile file;
  auto tree = MakeTree(&file);
  Rng rng(21);
  const auto data = RandomSegments(&rng, 2000, 2, 100, 100);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data[i]).ok());
    if ((i + 1) % 500 == 0) {
      ASSERT_TRUE(tree->CheckInvariants().ok()) << "after " << i + 1;
    }
  }
  EXPECT_EQ(tree->num_segments(), 2000u);
  EXPECT_GE(tree->height(), 2);
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

class RTreeSearchTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    tree_ = MakeTree(&file_);
    Rng rng(GetParam());
    data_ = RandomSegments(&rng, 3000, 2, 100, 100);
    for (const auto& m : data_) ASSERT_TRUE(tree_->Insert(m).ok());
    rng_ = Rng(GetParam() + 1);
  }

  PageFile file_;
  std::unique_ptr<RTree> tree_;
  std::vector<MotionSegment> data_;
  Rng rng_{0};
};

TEST_P(RTreeSearchTest, RangeSearchMatchesBruteForce) {
  for (int q = 0; q < 60; ++q) {
    const StBox query = dqmo::testing::RandomQueryBox(&rng_, 2, 100, 100);
    QueryStats stats;
    auto result = tree_->RangeSearch(query, &stats);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(KeysOf(*result), KeysOf(BruteForceRange(data_, query)));
    EXPECT_EQ(stats.objects_returned, result->size());
    EXPECT_GT(stats.node_reads, 0u);
  }
}

TEST_P(RTreeSearchTest, BbOnlySearchIsSupersetAndMatchesBbBruteForce) {
  for (int q = 0; q < 40; ++q) {
    const StBox query = dqmo::testing::RandomQueryBox(&rng_, 2, 100, 100);
    QueryStats stats;
    auto exact = tree_->RangeSearch(query, &stats);
    auto bb = tree_->RangeSearchBbOnly(query, &stats);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(bb.ok());
    const auto exact_keys = KeysOf(*exact);
    const auto bb_keys = KeysOf(*bb);
    EXPECT_TRUE(std::includes(bb_keys.begin(), bb_keys.end(),
                              exact_keys.begin(), exact_keys.end()));
    EXPECT_EQ(bb_keys, KeysOf(BruteForceRangeBb(data_, query)));
  }
}

TEST_P(RTreeSearchTest, EmptyQueryReturnsNothing) {
  QueryStats stats;
  auto result = tree_->RangeSearch(StBox(), &stats);
  // Empty box has wrong dims (0-size spatial): construct a real empty one.
  StBox q(Box(Interval(5.0, 4.0), Interval(0.0, 100.0)),
          Interval(0.0, 100.0));
  auto r2 = tree_->RangeSearch(q, &stats);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
  (void)result;
}

TEST_P(RTreeSearchTest, LeafReadsBoundedByTotalReads) {
  const StBox query = dqmo::testing::RandomQueryBox(&rng_, 2, 100, 100);
  QueryStats stats;
  ASSERT_TRUE(tree_->RangeSearch(query, &stats).ok());
  EXPECT_LE(stats.leaf_reads, stats.node_reads);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeSearchTest,
                         ::testing::Values(31, 32, 33));

TEST(RTreePersistenceTest, FlushSaveLoadOpenRoundTrip) {
  const std::string path =
      std::string(::testing::TempDir()) + "/rtree_roundtrip.pgf";
  Rng rng(41);
  const auto data = RandomSegments(&rng, 1500, 2, 100, 100);
  StBox query = dqmo::testing::RandomQueryBox(&rng, 2, 100, 100, 40, 20);

  std::set<MotionSegment::Key> expected;
  {
    PageFile file;
    auto tree = MakeTree(&file);
    for (const auto& m : data) ASSERT_TRUE(tree->Insert(m).ok());
    QueryStats stats;
    expected = KeysOf(tree->RangeSearch(query, &stats).value());
    ASSERT_TRUE(tree->Flush().ok());
    ASSERT_TRUE(file.SaveTo(path).ok());
  }
  {
    PageFile file;
    ASSERT_TRUE(file.LoadFrom(path).ok());
    auto tree = RTree::Open(&file);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    EXPECT_EQ((*tree)->num_segments(), 1500u);
    EXPECT_TRUE((*tree)->CheckInvariants().ok());
    QueryStats stats;
    EXPECT_EQ(KeysOf((*tree)->RangeSearch(query, &stats).value()), expected);
  }
  std::remove(path.c_str());
}

TEST(RTreePersistenceTest, OpenRejectsEmptyOrGarbage) {
  PageFile empty;
  EXPECT_TRUE(RTree::Open(&empty).status().IsFailedPrecondition());
  PageFile garbage;
  garbage.Allocate();
  EXPECT_TRUE(RTree::Open(&garbage).status().IsCorruption());
}

TEST(RTreeStatsTest, SearchThroughBufferPoolOnlyChargesMisses) {
  PageFile file;
  auto tree = MakeTree(&file);
  Rng rng(51);
  for (const auto& m : RandomSegments(&rng, 2000, 2, 100, 100)) {
    ASSERT_TRUE(tree->Insert(m).ok());
  }
  const StBox query(Box(Interval(10, 40), Interval(10, 40)),
                    Interval(10, 40));
  QueryStats cold;
  BufferPool pool(&file, 10000);  // Large enough to never evict.
  ASSERT_TRUE(tree->RangeSearch(query, &cold, &pool).ok());
  QueryStats warm;
  ASSERT_TRUE(tree->RangeSearch(query, &warm, &pool).ok());
  EXPECT_GT(cold.node_reads, 0u);
  EXPECT_EQ(warm.node_reads, 0u);  // All hits: no disk accesses charged.
  EXPECT_EQ(warm.distance_computations, cold.distance_computations);
}

// Update-listener recorder for the notification tests.
class RecordingListener : public UpdateListener {
 public:
  void OnObjectInserted(const MotionSegment& m) override {
    objects.push_back(m);
  }
  void OnSubtreeCreated(const ChildEntry& subtree, int level) override {
    subtrees.emplace_back(subtree, level);
  }
  void OnRootSplit(PageId new_root) override {
    root_splits.push_back(new_root);
  }

  std::vector<MotionSegment> objects;
  std::vector<std::pair<ChildEntry, int>> subtrees;
  std::vector<PageId> root_splits;
};

TEST(RTreeUpdateTest, ExactlyOneNotificationPerInsert) {
  PageFile file;
  auto tree = MakeTree(&file);
  RecordingListener listener;
  tree->AddListener(&listener);
  Rng rng(61);
  const int n = 1500;
  for (const auto& m : RandomSegments(&rng, n, 2, 100, 100)) {
    ASSERT_TRUE(tree->Insert(m).ok());
  }
  EXPECT_EQ(listener.objects.size() + listener.subtrees.size() +
                listener.root_splits.size(),
            static_cast<size_t>(n));
  EXPECT_GT(listener.subtrees.size(), 0u);    // Some splits happened.
  EXPECT_GE(listener.root_splits.size(), 1u);  // Tree grew at least once.
  tree->RemoveListener(&listener);
  ASSERT_TRUE(tree
                  ->Insert(MotionSegment(
                      9999, StSegment(Vec(1, 1), Vec(2, 2),
                                      Interval(0.0, 1.0))))
                  .ok());
  EXPECT_EQ(listener.objects.size() + listener.subtrees.size() +
                listener.root_splits.size(),
            static_cast<size_t>(n));  // No longer notified.
}

TEST(RTreeUpdateTest, SubtreeReportCoversInsertedSegment) {
  // Whenever a split is reported, the reported subtree entry's geometry
  // must cover the motion segment that caused it (the same-path property
  // that lets one LCA entry stand for all new nodes).
  PageFile file;
  auto tree = MakeTree(&file);
  RecordingListener listener;
  tree->AddListener(&listener);
  Rng rng(62);
  const auto data = RandomSegments(&rng, 3000, 2, 100, 100);
  for (const auto& m : data) {
    const size_t subtrees_before = listener.subtrees.size();
    ASSERT_TRUE(tree->Insert(m).ok());
    if (listener.subtrees.size() > subtrees_before) {
      const auto& [entry, level] = listener.subtrees.back();
      EXPECT_TRUE(entry.bounds.Contains(QuantizeOutward(m.Bounds())))
          << "reported LCA subtree does not cover the inserted segment";
      EXPECT_GE(level, 0);
      EXPECT_LT(level, tree->height());
      // The reported subtree must actually contain the segment: search it.
      QueryStats stats;
      auto node = tree->LoadNode(entry.child, &stats);
      ASSERT_TRUE(node.ok());
      EXPECT_EQ(node->level, level);
    }
  }
  tree->RemoveListener(&listener);
}

TEST(RTreeUpdateTest, StampsAdvanceOnInsertPath) {
  PageFile file;
  auto tree = MakeTree(&file);
  Rng rng(63);
  for (const auto& m : RandomSegments(&rng, 500, 2, 100, 100)) {
    ASSERT_TRUE(tree->Insert(m).ok());
  }
  const UpdateStamp before = tree->stamp();
  MotionSegment m(7777,
                  StSegment(Vec(50, 50), Vec(51, 51), Interval(10, 11)));
  ASSERT_TRUE(tree->Insert(m).ok());
  EXPECT_EQ(tree->stamp(), before + 1);
  // The root must carry the new stamp (insertion path is stamped).
  QueryStats stats;
  auto root = tree->LoadNode(tree->root(), &stats);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->stamp, tree->stamp());
}

TEST(RTreeUpdateTest, InsertedSegmentsImmediatelyQueryable) {
  PageFile file;
  auto tree = MakeTree(&file);
  Rng rng(64);
  std::vector<MotionSegment> data;
  for (int i = 0; i < 2000; ++i) {
    data.push_back(dqmo::testing::RandomSegment(
        &rng, static_cast<ObjectId>(i), 2, 100, 100));
    ASSERT_TRUE(tree->Insert(data.back()).ok());
    if (i % 500 == 499) {
      const StBox q = dqmo::testing::RandomQueryBox(&rng, 2, 100, 100);
      QueryStats stats;
      auto result = tree->RangeSearch(q, &stats);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(KeysOf(*result), KeysOf(BruteForceRange(data, q)));
    }
  }
}

TEST(RTreeThreeDimsTest, SearchMatchesBruteForceIn3d) {
  PageFile file;
  auto tree = MakeTree(&file, 3);
  Rng rng(65);
  const auto data = RandomSegments(&rng, 1200, 3, 50, 50);
  for (const auto& m : data) ASSERT_TRUE(tree->Insert(m).ok());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  for (int q = 0; q < 30; ++q) {
    const StBox query = dqmo::testing::RandomQueryBox(&rng, 3, 50, 50);
    QueryStats stats;
    auto result = tree->RangeSearch(query, &stats);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(KeysOf(*result), KeysOf(BruteForceRange(data, query)));
  }
}

}  // namespace
}  // namespace dqmo

namespace dqmo {
namespace {

TEST(RTreeRstarTest, RstarBuiltTreeMatchesBruteForce) {
  PageFile file;
  RTree::Options options;
  options.split_policy = SplitPolicy::kRstar;
  auto tree = RTree::Create(&file, options);
  ASSERT_TRUE(tree.ok());
  Rng rng(2222);
  const auto data = dqmo::testing::RandomSegments(&rng, 3000, 2, 100, 100);
  for (const auto& m : data) ASSERT_TRUE((*tree)->Insert(m).ok());
  ASSERT_TRUE((*tree)->CheckInvariants().ok());
  for (int q = 0; q < 40; ++q) {
    const StBox query = dqmo::testing::RandomQueryBox(&rng, 2, 100, 100);
    QueryStats stats;
    auto result = (*tree)->RangeSearch(query, &stats);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(dqmo::testing::KeysOf(*result),
              dqmo::testing::KeysOf(
                  dqmo::testing::BruteForceRange(data, query)));
  }
}

TEST(RTreeRstarTest, SplitPolicyPersistsAcrossReopen) {
  const std::string path =
      std::string(::testing::TempDir()) + "/rstar_persist.pgf";
  {
    PageFile file;
    RTree::Options options;
    options.split_policy = SplitPolicy::kRstar;
    auto tree = RTree::Create(&file, options);
    ASSERT_TRUE(tree.ok());
    MotionSegment m(1, StSegment(Vec(1, 1), Vec(2, 2), Interval(0, 1)));
    ASSERT_TRUE((*tree)->Insert(m).ok());
    ASSERT_TRUE((*tree)->Flush().ok());
    ASSERT_TRUE(file.SaveTo(path).ok());
  }
  {
    PageFile file;
    ASSERT_TRUE(file.LoadFrom(path).ok());
    auto tree = RTree::Open(&file);
    ASSERT_TRUE(tree.ok());
    // Grow enough to force splits under the restored policy.
    Rng rng(3333);
    for (const auto& m :
         dqmo::testing::RandomSegments(&rng, 1000, 2, 100, 100)) {
      ASSERT_TRUE((*tree)->Insert(m).ok());
    }
    EXPECT_TRUE((*tree)->CheckInvariants().ok());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dqmo
