// Causal-tracing tests (common/trace.h) against the sharded engine.
//
// The tentpole claim: when a frame on an N-shard disk-backed engine is
// slow, the tracer captures ONE merged span tree for that client frame —
// per-shard subtrees from the frame thread plus worker-thread spans
// (prefetch completions, hedged-read probes) attributed causally via the
// frame's remote sink — and arming the tracer never changes query
// results. The tests here prove shard/worker attribution on a 16-shard
// pread engine, byte-identical checksums armed vs unarmed, that shed
// frames never leave a half-captured tree, that sticky cancellation on an
// armed frame cannot deadlock the frame teardown, and (under TSan via
// tools/ci.sh) that remote attribution races cleanly with frame close.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "server/executor.h"
#include "server/overload.h"
#include "server/router.h"
#include "server/shard.h"
#include "workload/data_generator.h"

namespace dqmo {
namespace {

std::vector<MotionSegment> ShapedData(uint64_t seed, int objects = 300,
                                      double horizon = 12.0) {
  DataGeneratorOptions opt;
  opt.num_objects = objects;
  opt.horizon = horizon;
  opt.seed = seed;
  opt.shape = WorkloadShape::kUniform;
  auto data = GenerateMotionData(opt);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return data.ok() ? std::move(data).value() : std::vector<MotionSegment>{};
}

/// Restores the tracer's configuration and clears its captures on exit so
/// tests cannot leak arming into each other (gtest runs them in one
/// process).
class TracerGuard {
 public:
  TracerGuard() : saved_(Tracer::Global().options()) {}
  ~TracerGuard() {
    Tracer::Global().Configure(saved_);
    Tracer::Global().ClearSlowFrames();
    Tracer::Global().ResetSlowestFrame();
  }
  TracerGuard(const TracerGuard&) = delete;
  TracerGuard& operator=(const TracerGuard&) = delete;

 private:
  Tracer::Options saved_;
};

std::string ScratchDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// A durable pread engine whose read path exercises every worker-thread
/// span source: no decoded-node cache (every node visit reaches the
/// pool), a pool too small to absorb the working set (misses flow down
/// the chain), speculative prefetch, and hedging forced on every miss
/// (threshold floor 0 with a zero latency factor) so the hedge worker's
/// primary probes — and their remote spans — fire deterministically.
ShardedEngineOptions DiskEngineOptions(const std::string& dir,
                                       int shards = 16) {
  ShardedEngineOptions opt;
  opt.num_shards = shards;
  opt.cache_nodes = 0;
  opt.pool_pages = 64;
  opt.durable_dir = dir;
  opt.io_backend = IoBackend::kPread;
  opt.prefetch_depth = 8;
  opt.failure_domains = true;
  opt.hedge.enabled = true;
  opt.hedge.latency_factor = 0.0;
  opt.hedge.min_latency_us = 0;
  return opt;
}

std::unique_ptr<ShardedEngine> MakeEngine(
    const ShardedEngineOptions& opt, const std::vector<MotionSegment>& data) {
  auto engine = ShardedEngine::Create(opt);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  if (!engine.ok()) return nullptr;
  EXPECT_TRUE((*engine)->InsertBatch(data).ok());
  return std::move(engine).value();
}

SessionSpec RoutedSpec(SessionKind kind, uint64_t seed, int frames = 16) {
  SessionSpec spec;
  spec.kind = kind;
  spec.seed = 100 + seed;
  spec.frames = frames;
  spec.t0 = 1.0;
  spec.region_hi = 94.0;
  return spec;
}

/// Frame-thread spans must form a preorder tree: depths start at 0 and
/// never jump by more than one (a child is exactly one deeper than its
/// parent). A violated sequence means a frame closed with dangling spans.
void ExpectWellFormedTree(const FrameTrace& trace, const std::string& label) {
  uint16_t prev_depth = 0;
  bool first = true;
  for (const SpanRecord& span : trace.spans) {
    if (span.origin != SpanOrigin::kFrameThread) continue;
    if (first) {
      EXPECT_EQ(span.depth, 0u) << label << ": first span not a root";
      first = false;
    } else {
      EXPECT_LE(span.depth, prev_depth + 1)
          << label << ": depth jumps over a level";
    }
    EXPECT_LE(span.start_ns + span.duration_ns,
              trace.duration_ns + trace.duration_ns / 4 + 1000000)
        << label << ": span extends far past its frame";
    prev_depth = span.depth;
  }
}

TEST(TracerBasicsTest, UnarmedFrameIsInert) {
  TracerGuard guard;
  Tracer::Options off;  // No sampling, no deadline, no slowest-tracking.
  Tracer::Global().Configure(off);
  EXPECT_FALSE(Tracer::FrameArmed());
  {
    Tracer::FrameScope frame(1, 1);
    EXPECT_FALSE(Tracer::FrameArmed());
    EXPECT_EQ(Tracer::ActiveFrame(), nullptr);
    EXPECT_EQ(Tracer::CurrentContext().trace_id, 0u);
    Tracer::SpanScope span(SpanKind::kNodeFetch, 7);  // Must be a no-op.
  }
  EXPECT_FALSE(Tracer::FrameArmed());
  EXPECT_EQ(Tracer::Global().SlowestFrame().duration_ns, 0u);
}

TEST(TracerBasicsTest, ArmedFrameMintsContextAndCapturesTree) {
  TracerGuard guard;
  Tracer::Options opt;
  opt.track_slowest = true;
  Tracer::Global().Configure(opt);
  Tracer::Global().ResetSlowestFrame();
  {
    Tracer::FrameScope frame(42, 7);
    ASSERT_TRUE(Tracer::FrameArmed());
    const TraceContext ctx = Tracer::CurrentContext();
    EXPECT_NE(ctx.trace_id, 0u);
    EXPECT_EQ(ctx.frame_seq, 7u);
    EXPECT_EQ(ctx.shard_id, -1);
    {
      Tracer::ShardScope shard(3);
      EXPECT_EQ(Tracer::CurrentContext().shard_id, 3);
      Tracer::SpanScope inner(SpanKind::kNodeFetch, 11);
    }
    EXPECT_EQ(Tracer::CurrentContext().shard_id, -1);
  }
  EXPECT_FALSE(Tracer::FrameArmed());
  const FrameTrace slowest = Tracer::Global().SlowestFrame();
  ASSERT_GT(slowest.duration_ns, 0u);
  EXPECT_EQ(slowest.session_id, 42u);
  EXPECT_EQ(slowest.frame_index, 7u);
  ASSERT_EQ(slowest.spans.size(), 2u);
  EXPECT_EQ(slowest.spans[0].kind, SpanKind::kShardEval);
  EXPECT_EQ(slowest.spans[0].shard, 3);
  EXPECT_EQ(slowest.spans[1].kind, SpanKind::kNodeFetch);
  EXPECT_EQ(slowest.spans[1].shard, 3);
  EXPECT_EQ(slowest.spans[1].depth, 1u);
  const std::string rendered = slowest.ToString();
  EXPECT_NE(rendered.find("[shard 3]"), std::string::npos) << rendered;
}

TEST(TracerBasicsTest, LateWorkerSpanCountsAsOrphan) {
  TracerGuard guard;
  Tracer::Options opt;
  opt.track_slowest = true;
  Tracer::Global().Configure(opt);
  Counter* orphans = MetricsRegistry::Global().GetCounter(
      "dqmo_trace_orphan_spans_total");
  Tracer::FrameHandle handle;
  {
    Tracer::FrameScope frame(1, 1);
    handle = Tracer::ActiveFrame();
    ASSERT_NE(handle, nullptr);
    // In-flight attribution lands while the frame is open.
    const uint64_t before = orphans->value();
    Tracer::RecordRemote(handle, SpanKind::kPrefetchRead,
                         SpanOrigin::kPrefetchWorker, 2, NowNs(), 10, 1);
    EXPECT_EQ(orphans->value(), before);
  }
  // The frame closed: the same handle now attributes nowhere, and the
  // span must be counted, not silently dropped.
  const uint64_t before = orphans->value();
  Tracer::RecordRemote(handle, SpanKind::kPrefetchRead,
                       SpanOrigin::kPrefetchWorker, 2, NowNs(), 10, 1);
  EXPECT_EQ(orphans->value(), before + 1);
  // As must a span whose submit-time capture found no armed frame.
  Tracer::RecordRemote(nullptr, SpanKind::kHedgeProbe,
                       SpanOrigin::kHedgeWorker, 0, NowNs(), 10, 1);
  EXPECT_EQ(orphans->value(), before + 2);
  const FrameTrace slowest = Tracer::Global().SlowestFrame();
  EXPECT_EQ(slowest.remote_spans, 1u);
}

// ---------------------------------------------------------------------------
// The acceptance sweep: a 16-shard pread engine under deadline arming
// produces merged trees with full shard attribution and worker-thread
// spans, and the armed run's results are byte-identical to an unarmed
// twin's.

TEST(TracerShardedTest, MergedTreeAttributesAllShardsAndWorkers) {
  const std::vector<MotionSegment> data = ShapedData(7, 400);
  const std::string dir_armed = ScratchDir("dqmo_trace_armed");
  const std::string dir_plain = ScratchDir("dqmo_trace_plain");
  std::unique_ptr<ShardedEngine> armed_engine =
      MakeEngine(DiskEngineOptions(dir_armed), data);
  std::unique_ptr<ShardedEngine> plain_engine =
      MakeEngine(DiskEngineOptions(dir_plain), data);
  ASSERT_NE(armed_engine, nullptr);
  ASSERT_NE(plain_engine, nullptr);

  ShardRouter::Options ropt;
  ropt.spatial_prune = false;  // Every shard evaluated every frame.
  const SessionSpec spec = RoutedSpec(SessionKind::kSession, 7);

  ShardedSessionResult with_trace;
  uint64_t captured = 0;
  std::vector<FrameTrace> frames;
  {
    TracerGuard guard;
    Tracer::Options topt;
    topt.slow_frame_ns = 1;  // Every completed frame overruns: all captured.
    topt.track_slowest = true;
    topt.slow_log_capacity = 64;
    Tracer::Global().Configure(topt);
    Tracer::Global().ClearSlowFrames();
    Tracer::Global().ResetSlowestFrame();
    with_trace = ShardRouter(armed_engine.get(), ropt).RunOne(spec);
    EXPECT_FALSE(Tracer::FrameArmed());
    captured = Tracer::Global().slow_frames_captured();
    frames = Tracer::Global().SlowFrames();
  }
  ASSERT_TRUE(with_trace.result.status.ok())
      << with_trace.result.status.ToString();
  EXPECT_EQ(captured, with_trace.result.frames_completed);
  ASSERT_EQ(frames.size(), static_cast<size_t>(spec.frames));

  bool merged_cross_shard_tree = false;
  bool any_prefetch_worker = false;
  bool any_hedge_worker = false;
  for (const FrameTrace& trace : frames) {
    ExpectWellFormedTree(trace, "frame " + std::to_string(trace.frame_index));
    EXPECT_NE(trace.trace_id, 0u);
    std::set<int> shards;
    uint64_t workers = 0;
    for (const SpanRecord& span : trace.spans) {
      if (span.kind == SpanKind::kShardEval &&
          span.origin == SpanOrigin::kFrameThread) {
        shards.insert(span.shard);
      }
      if (span.origin == SpanOrigin::kPrefetchWorker &&
          (span.kind == SpanKind::kPrefetchRead ||
           span.kind == SpanKind::kPrefetchWaste)) {
        any_prefetch_worker = true;
        EXPECT_GE(span.shard, 0) << "prefetch span without shard attribution";
      }
      if (span.kind == SpanKind::kHedgeProbe &&
          span.origin == SpanOrigin::kHedgeWorker) {
        any_hedge_worker = true;
        EXPECT_GE(span.shard, 0) << "hedge span without shard attribution";
      }
      if (span.origin != SpanOrigin::kFrameThread) ++workers;
    }
    EXPECT_EQ(trace.remote_spans, workers);
    // One merged tree for the client frame: all 16 shards' subtrees plus
    // at least one worker-thread span in the same capture.
    if (shards.size() == 16 && workers > 0) merged_cross_shard_tree = true;
  }
  EXPECT_TRUE(merged_cross_shard_tree)
      << "no captured frame merged all 16 shard subtrees with worker spans";
  EXPECT_TRUE(any_prefetch_worker) << "no prefetch-worker span captured";
  EXPECT_TRUE(any_hedge_worker) << "no hedged-read span captured";

  // The rendering carries the attribution a human debugs with.
  const FrameTrace slowest = [&] {
    FrameTrace best;
    for (const FrameTrace& t : frames) {
      if (t.duration_ns > best.duration_ns && t.remote_spans > 0) best = t;
    }
    return best;
  }();
  if (slowest.duration_ns > 0) {
    const std::string rendered = slowest.ToString();
    EXPECT_NE(rendered.find("[shard "), std::string::npos) << rendered;
    EXPECT_NE(rendered.find('~'), std::string::npos) << rendered;
  }

  // Byte-identical results: the unarmed twin answers exactly the same.
  const ShardedSessionResult without_trace =
      ShardRouter(plain_engine.get(), ropt).RunOne(spec);
  ASSERT_TRUE(without_trace.result.status.ok());
  EXPECT_EQ(with_trace.result.checksum, without_trace.result.checksum);
  EXPECT_EQ(with_trace.result.objects_delivered,
            without_trace.result.objects_delivered);

  armed_engine.reset();
  plain_engine.reset();
  std::error_code ec;
  std::filesystem::remove_all(dir_armed, ec);
  std::filesystem::remove_all(dir_plain, ec);
}

// ---------------------------------------------------------------------------
// Shed frames never leave a half-captured tree: a frame the governor
// sheds is skipped before its FrameScope opens, so the capture count is
// exactly the completed-frame count and no captured tree is empty.

TEST(TracerShedTest, ShedFramesLeaveNoHalfCapturedTree) {
  PageFile file;
  auto tree = RTree::Create(&file, RTree::Options());
  ASSERT_TRUE(tree.ok());
  const std::vector<MotionSegment> data = ShapedData(3, 200);
  for (const MotionSegment& m : data) ASSERT_TRUE((*tree)->Insert(m).ok());
  ASSERT_TRUE(file.Publish().ok());

  // Pin the governor at its deepest level for the whole run: batch and
  // normal frames shed, interactive served.
  OverloadGovernor::Options esc;
  esc.window = 1;
  esc.overload_latency_ns = 1;
  esc.recovery_windows = 1 << 20;
  OverloadGovernor hot(esc);
  for (int i = 0; i < 3; ++i) hot.OnFrame(10);
  ASSERT_EQ(hot.level(), 3);

  TracerGuard guard;
  Tracer::Options topt;
  topt.slow_frame_ns = 1;  // Every completed frame is captured.
  Tracer::Global().Configure(topt);
  Tracer::Global().ClearSlowFrames();

  std::vector<SessionSpec> specs;
  specs.push_back(RoutedSpec(SessionKind::kSession, 1, 12));
  specs[0].priority = SessionPriority::kInteractive;
  specs.push_back(RoutedSpec(SessionKind::kNpdq, 2, 12));
  specs[1].priority = SessionPriority::kBatch;  // Every frame shed.
  SessionScheduler::Options sopt;
  sopt.governor = &hot;
  ExecutorReport report = SessionScheduler(tree->get(), sopt).Run(specs);
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_FALSE(Tracer::FrameArmed());

  // The batch session shed all 12 frames; none may appear in the log.
  EXPECT_EQ(report.sessions[1].frames_shed, 12u);
  EXPECT_GT(report.sessions[0].frames_completed, 0u);
  EXPECT_EQ(Tracer::Global().slow_frames_captured(),
            report.sessions[0].frames_completed +
                report.sessions[1].frames_completed);
  for (const FrameTrace& trace : Tracer::Global().SlowFrames()) {
    EXPECT_GT(trace.duration_ns, 0u);
    EXPECT_NE(trace.trace_id, 0u);
    ExpectWellFormedTree(trace, "shed-run frame");
  }
}

// ---------------------------------------------------------------------------
// Sticky cancellation on an armed frame: the cancel lands mid-run, the
// session winds down through FrameScope teardown (sink sealing takes the
// sink mutex) without deadlock, and the engine stays usable.

TEST(TracerCancelTest, StickyCancellationOnArmedFrameNoDeadlock) {
  const std::vector<MotionSegment> data = ShapedData(5, 250);
  const std::string dir = ScratchDir("dqmo_trace_cancel");
  std::unique_ptr<ShardedEngine> engine =
      MakeEngine(DiskEngineOptions(dir, /*shards=*/4), data);
  ASSERT_NE(engine, nullptr);

  TracerGuard guard;
  Tracer::Options topt;
  topt.track_slowest = true;
  topt.slow_frame_ns = 1;
  Tracer::Global().Configure(topt);
  Tracer::Global().ClearSlowFrames();

  QueryBudget budget;
  SessionSpec spec = RoutedSpec(SessionKind::kSession, 5, 40);
  spec.budget = &budget;
  ShardRouter::Options ropt;
  ropt.spatial_prune = false;
  ropt.frame_hook = [&budget](int frame) {
    if (frame == 4) budget.RequestCancel();  // Mid-run, frames armed.
  };
  const ShardedSessionResult res = ShardRouter(engine.get(), ropt).RunOne(spec);
  ASSERT_TRUE(res.result.status.ok()) << res.result.status.ToString();
  EXPECT_EQ(res.result.outcome, SessionResult::Outcome::kCancelled);
  EXPECT_LT(res.result.frames_completed, 40u);
  EXPECT_FALSE(Tracer::FrameArmed());
  for (const FrameTrace& trace : Tracer::Global().SlowFrames()) {
    ExpectWellFormedTree(trace, "cancelled-run frame");
  }

  // The engine survived teardown mid-capture: a fresh unbudgeted run works.
  SessionSpec again = RoutedSpec(SessionKind::kKnn, 6, 4);
  const ShardedSessionResult ok = ShardRouter(engine.get(), ropt).RunOne(again);
  EXPECT_TRUE(ok.result.status.ok()) << ok.result.status.ToString();

  engine.reset();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Concurrency hammer (run under TSan by tools/ci.sh): concurrent armed
// sessions on one disk engine — hedge workers and prefetch completions
// attribute spans to racing frames while another thread cancels budgets.
// Late completions after a frame closes must count as orphans, never
// tear a sink.

TEST(TraceConcurrencyTest, RemoteAttributionRacesFrameClose) {
  const std::vector<MotionSegment> data = ShapedData(11, 250);
  const std::string dir = ScratchDir("dqmo_trace_hammer");
  std::unique_ptr<ShardedEngine> engine =
      MakeEngine(DiskEngineOptions(dir, /*shards=*/4), data);
  ASSERT_NE(engine, nullptr);

  TracerGuard guard;
  Tracer::Options topt;
  topt.sample_every = 2;
  topt.slow_frame_ns = 1;
  topt.track_slowest = true;
  Tracer::Global().Configure(topt);
  Tracer::Global().ClearSlowFrames();

  constexpr int kThreads = 3;
  constexpr int kRuns = 2;
  std::atomic<bool> failed{false};
  std::vector<QueryBudget> budgets(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRuns; ++r) {
        SessionSpec spec = RoutedSpec(
            t % 2 == 0 ? SessionKind::kSession : SessionKind::kKnn,
            static_cast<uint64_t>(10 * t + r), /*frames=*/8);
        if (r == kRuns - 1) spec.budget = &budgets[static_cast<size_t>(t)];
        ShardRouter::Options ropt;
        ropt.spatial_prune = false;
        const ShardedSessionResult res =
            ShardRouter(engine.get(), ropt).RunOne(spec);
        if (!res.result.status.ok()) failed.store(true);
        if (Tracer::FrameArmed()) failed.store(true);  // Leaked arming.
      }
    });
  }
  threads.emplace_back([&] {
    // Cancel storms against whichever budgeted runs are in flight.
    for (int i = 0; i < 50; ++i) {
      budgets[static_cast<size_t>(i % kThreads)].RequestCancel();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::thread& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  for (const FrameTrace& trace : Tracer::Global().SlowFrames()) {
    ExpectWellFormedTree(trace, "hammer frame");
  }

  engine.reset();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace dqmo
