// Chaos harness for the shard failure-domain layer (server/health.h,
// server/scrubber.h): scripted fault programs run differentially against a
// clean twin engine, with three invariants that must hold through every
// program:
//
//   1. No acked-write loss: every Insert that returned OK is queryable
//      after recovery, even when it was parked for a quarantined shard and
//      the process crashed mid-repair.
//   2. Monotone recovery: once the chaos clears, the breaker promotes
//      (open -> half-open -> closed) and stays closed; a fresh
//      differential sweep is byte-identical to the twin.
//   3. Healthy-shard isolation: quarantining shard X never changes a byte
//      of shard Y's per-frame answers (FrameRecord::shard_checksums,
//      compared frame by frame against the twin).
//
// Programs: shard death (every read fails), at-rest corruption bursts
// (repaired online from checkpoint + WAL), slow-I/O storms (hedged, never
// quarantined), and crash-restart mid-repair (fork-based, one child per
// scrub crash point). Every schedule is seed-deterministic.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "oracle.h"
#include "server/health.h"
#include "server/router.h"
#include "server/scrubber.h"
#include "server/shard.h"
#include "storage/fault.h"
#include "test_util.h"
#include "workload/data_generator.h"

namespace dqmo {
namespace {

using ::dqmo::testing::ShardedOracle;

constexpr int kChaosSeeds = 8;
constexpr int kShards = 6;
constexpr int kFrames = 30;
constexpr int kFaultFrame = 8;
constexpr int kHealFrame = 18;
constexpr int kExtrasPerFrame = 2;

std::vector<MotionSegment> ShapedData(WorkloadShape shape, uint64_t seed,
                                      int objects = 220,
                                      double horizon = 12.0) {
  DataGeneratorOptions opt;
  opt.num_objects = objects;
  opt.horizon = horizon;
  opt.seed = seed;
  opt.shape = shape;
  auto data = GenerateMotionData(opt);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return data.ok() ? std::move(data).value() : std::vector<MotionSegment>{};
}

/// Engine options every chaos program shares: failure domains on, no
/// decoded-node cache (every node visit must reach the breaker-gated
/// pool), and a breaker tuned for short deterministic programs — trips on
/// 2 consecutive exhausted reads, promotes only via the scrubber
/// (cooldown 0), probes every half-open frame, closes after 2 healthy
/// probes.
ShardedEngineOptions ChaosOptions(const std::string& durable_dir = "") {
  ShardedEngineOptions opt;
  opt.num_shards = kShards;
  opt.cache_nodes = 0;
  opt.failure_domains = true;
  opt.durable_dir = durable_dir;
  opt.breaker.consecutive_failures = 2;
  opt.breaker.cooldown_frames = 0;
  opt.breaker.probe_rate = 1.0;
  opt.breaker.probe_successes_to_close = 2;
  return opt;
}

std::unique_ptr<ShardedEngine> MakeEngine(
    const ShardedEngineOptions& opt, const std::vector<MotionSegment>& data) {
  auto engine = ShardedEngine::Create(opt);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  if (!engine.ok()) return nullptr;
  EXPECT_TRUE((*engine)->InsertBatch(data).ok());
  return std::move(engine).value();
}

/// Exactly `count` extra segments for per-frame insert schedules, with
/// oids offset so they can never collide with a ShapedData base set.
std::vector<MotionSegment> ExtraStream(WorkloadShape shape, uint64_t seed,
                                       int count) {
  std::vector<MotionSegment> raw = ShapedData(shape, seed, count, 12.0);
  EXPECT_GE(raw.size(), static_cast<size_t>(count));
  std::vector<MotionSegment> extras;
  extras.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count && i < static_cast<int>(raw.size()); ++i) {
    extras.emplace_back(raw[static_cast<size_t>(i)].oid + 100000,
                        raw[static_cast<size_t>(i)].seg);
  }
  return extras;
}

SessionSpec ChaosSpec(SessionKind kind, uint64_t seed, int frames = kFrames) {
  SessionSpec spec;
  spec.kind = kind;
  spec.seed = 100 + seed;
  spec.frames = frames;
  spec.t0 = 1.0 + 0.05 * static_cast<double>(seed);
  spec.region_hi = 94.0;
  return spec;
}

/// Runs `spec` against `engine` with per-frame inserts from `extras`
/// (kExtrasPerFrame per frame — both engines of a differential pair get
/// the identical schedule) plus an optional chaos-event callback that
/// fires after the frame's inserts.
ShardedSessionResult RunWithSchedule(
    ShardedEngine* engine, const SessionSpec& spec,
    const std::vector<MotionSegment>& extras,
    std::function<void(int frame)> events = nullptr) {
  ShardRouter::Options ropt;
  ropt.spatial_prune = false;  // Every shard evaluated every frame.
  ropt.record_frames = true;
  ropt.frame_hook = [&extras, engine, events](int frame) {
    // Router frames are 1-based.
    for (int j = 0; j < kExtrasPerFrame; ++j) {
      const size_t idx = static_cast<size_t>(frame - 1) * kExtrasPerFrame +
                         static_cast<size_t>(j);
      if (idx < extras.size()) {
        EXPECT_TRUE(engine->Insert(extras[idx]).ok())
            << "insert at frame " << frame;
      }
    }
    if (events) events(frame);
  };
  return ShardRouter(engine, ropt).RunOne(spec);
}

/// Invariant 3: every healthy shard's pre-merge frame answer is
/// byte-identical to the twin's, on every frame, chaos or not.
void ExpectHealthyShardsIdentical(const ShardedSessionResult& got,
                                  const ShardedSessionResult& want, int sick,
                                  const std::string& label) {
  ASSERT_EQ(got.frames.size(), want.frames.size()) << label;
  for (size_t f = 0; f < got.frames.size(); ++f) {
    ASSERT_EQ(got.frames[f].shard_checksums.size(),
              want.frames[f].shard_checksums.size());
    for (size_t s = 0; s < got.frames[f].shard_checksums.size(); ++s) {
      if (static_cast<int>(s) == sick) continue;
      EXPECT_EQ(got.frames[f].shard_checksums[s],
                want.frames[f].shard_checksums[s])
          << label << " frame " << f << " healthy shard " << s;
      EXPECT_EQ(got.frames[f].shard_blocked[s], 0) << label << " frame " << f;
    }
  }
}

/// Skips attributed to exactly the sick slot; everything else clean.
void ExpectSkipsOnlyIn(const ShardedSessionResult& got, int sick,
                       const std::string& label) {
  ASSERT_EQ(got.shard_skips.size(), static_cast<size_t>(kShards)) << label;
  EXPECT_GT(got.shard_skips[static_cast<size_t>(sick)].pages_skipped(), 0u)
      << label;
  for (int s = 0; s < kShards; ++s) {
    if (s == sick) continue;
    EXPECT_EQ(got.shard_skips[static_cast<size_t>(s)].pages_skipped(), 0u)
        << label << " shard " << s;
  }
}

/// Invariant 2's second half: after the program ends, a *fresh*
/// differential sweep over both engines must be byte-identical — the
/// chaos engine's trees (including drained parked writes) converged to
/// the twin's exactly.
void ExpectConvergedToTwin(ShardedEngine* chaos, ShardedEngine* twin,
                           uint64_t seed, const std::string& label) {
  ASSERT_EQ(chaos->num_segments(), twin->num_segments()) << label;
  ShardRouter::Options ropt;
  ropt.spatial_prune = false;
  for (SessionKind kind :
       {SessionKind::kSession, SessionKind::kNpdq, SessionKind::kKnn}) {
    const SessionSpec spec = ChaosSpec(kind, seed + 50, 12);
    const ShardedSessionResult got = ShardRouter(chaos, ropt).RunOne(spec);
    const ShardedSessionResult want = ShardRouter(twin, ropt).RunOne(spec);
    ASSERT_TRUE(got.result.status.ok()) << label;
    EXPECT_EQ(got.result.checksum, want.result.checksum)
        << label << " post-recovery kind " << static_cast<int>(kind);
    EXPECT_EQ(got.result.objects_delivered, want.result.objects_delivered)
        << label;
    EXPECT_EQ(got.frames_partial, 0u) << label;
  }
}

// ---------------------------------------------------------------------------
// Program 1: shard death. Every read of the sick shard fails from
// kFaultFrame; at kHealFrame the fault clears and a scrub pass promotes.

TEST(ChaosShardDeathTest, QuarantineServesPartialThenRecoversByteIdentical) {
  for (uint64_t seed = 0; seed < kChaosSeeds; ++seed) {
    const std::vector<MotionSegment> data =
        ShapedData(WorkloadShape::kUniform, seed + 1);
    const std::vector<MotionSegment> extras = ExtraStream(
        WorkloadShape::kSkewed, seed + 1000, kFrames * kExtrasPerFrame);
    ASSERT_EQ(extras.size(), static_cast<size_t>(kFrames * kExtrasPerFrame));

    // kNpdq and kKnn re-read the tree every frame, so the quarantine is
    // exercised mid-stream; the predictive kSession executes its window up
    // front and is covered by the mid-stream test in tests/shard_test.cc.
    const SessionKind kind =
        seed % 2 == 0 ? SessionKind::kNpdq : SessionKind::kKnn;
    std::unique_ptr<ShardedEngine> engine = MakeEngine(ChaosOptions(), data);
    std::unique_ptr<ShardedEngine> twin = MakeEngine(ChaosOptions(), data);
    ASSERT_NE(engine, nullptr);
    ASSERT_NE(twin, nullptr);
    // An extra inserted mid-quarantine picks the sick shard, so the redo
    // queue provably sees traffic.
    const int sick = engine->map().ShardOf(
        extras[static_cast<size_t>((kFaultFrame + 3) * kExtrasPerFrame)]);
    ShardScrubber scrubber(engine.get(), ScrubOptions());

    const ShardedSessionResult want =
        RunWithSchedule(twin.get(), ChaosSpec(kind, seed), extras);
    const ShardedSessionResult got = RunWithSchedule(
        engine.get(), ChaosSpec(kind, seed), extras, [&](int frame) {
          if (frame == kFaultFrame) {
            FaultInjector::Options f;
            f.fail_every_kth = 1;  // Every read fails: the shard is dead.
            engine->ArmShardFault(sick, f);
          }
          if (frame == kHealFrame) {
            engine->ClearShardFault(sick);
            const auto rep = scrubber.ScrubPass();
            EXPECT_EQ(rep.shards_scrubbed, 1);
            EXPECT_EQ(rep.shards_promoted, 1);
          }
        });

    const std::string label = "death seed " + std::to_string(seed) +
                              " kind " + std::to_string(static_cast<int>(kind));
    ASSERT_TRUE(got.result.status.ok()) << label;
    ASSERT_TRUE(want.result.status.ok()) << label;

    // Degradation was visible, attributed, and bounded to the program.
    EXPECT_GT(got.frames_partial, 0u) << label;
    EXPECT_GE(got.frames_quarantined, 5u) << label;
    ExpectSkipsOnlyIn(got, sick, label);
    EXPECT_EQ(want.frames_partial, 0u) << label;
    ExpectHealthyShardsIdentical(got, want, sick, label);

    // The breaker tripped, the scrub promoted it, probes closed it.
    CircuitBreaker* b = engine->breaker(sick);
    EXPECT_GE(b->open_events(), 1u) << label;
    EXPECT_EQ(b->state(), BreakerState::kClosed) << label;
    EXPECT_GT(b->probe_frames(), 0u) << label;

    // Writes parked while dark were drained, not dropped.
    EXPECT_GT(engine->shard(sick).redo->total_parked(), 0u) << label;
    EXPECT_EQ(engine->shard(sick).redo->depth(), 0u) << label;

    // kNpdq resyncs via the router's ResetHistory at reinstatement: the
    // first post-heal frame re-delivers, everything after matches the
    // twin frame-for-frame. kKnn is stateless: equal from the heal frame
    // (the drain ran before its locks). kSession resyncs through the
    // PDQ->NPDQ handoff machinery within a bounded window.
    // frames[] position f holds 1-based frame f + 1; the heal event fires
    // at frame kHealFrame = position kHealFrame - 1.
    const size_t resync = static_cast<size_t>(kHealFrame) -
                          (kind == SessionKind::kKnn ? 1u : 0u);
    for (size_t f = resync; f < got.frames.size(); ++f) {
      EXPECT_EQ(got.frames[f].merged_checksum, want.frames[f].merged_checksum)
          << label << " post-resync frame " << f;
    }

    // Recovery converged: a fresh sweep is byte-identical to the twin.
    ExpectConvergedToTwin(engine.get(), twin.get(), seed, label);

    // Oracle cross-check: partitioning stayed exact and lossless.
    ShardedOracle oracle(engine->map());
    for (const MotionSegment& m : data) oracle.Insert(m);
    for (const MotionSegment& m : extras) oracle.Insert(m);
    EXPECT_TRUE(oracle.PartitionExact()) << label;
    EXPECT_EQ(engine->num_segments(), data.size() + extras.size()) << label;
  }
}

// ---------------------------------------------------------------------------
// Program 2: at-rest corruption burst on a durable shard, repaired online
// (checkpoint image + WAL redo) by the scrubber.

TEST(ChaosCorruptionBurstTest, ScrubRebuildsDamagedPagesAndReinstates) {
  for (uint64_t seed = 0; seed < kChaosSeeds; ++seed) {
    const std::string dir = std::string(::testing::TempDir()) +
                            "/dqmo_chaos_corrupt_" + std::to_string(seed);
    const std::string twin_dir = dir + "_twin";
    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(twin_dir);

    const std::vector<MotionSegment> data =
        ShapedData(WorkloadShape::kUniform, seed + 31);
    const std::vector<MotionSegment> extras = ExtraStream(
        WorkloadShape::kUniform, seed + 2000, kFrames * kExtrasPerFrame);

    // Half the data lands in the checkpoint image, half in the WAL tail,
    // so the online repair exercises both recovery layers.
    auto build = [&](const std::string& d) -> std::unique_ptr<ShardedEngine> {
      ShardedEngineOptions eopt = ChaosOptions(d);
      // Trip on the first exhausted read: the insert path reads the tree
      // to place a segment, so quarantine must engage within the very
      // frame the at-rest damage lands, before the next insert.
      eopt.breaker.consecutive_failures = 1;
      auto engine = ShardedEngine::Create(eopt);
      EXPECT_TRUE(engine.ok()) << engine.status().ToString();
      if (!engine.ok()) return nullptr;
      const size_t half = data.size() / 2;
      EXPECT_TRUE(
          (*engine)->InsertBatch({data.begin(), data.begin() + half}).ok());
      EXPECT_TRUE((*engine)->Checkpoint().ok());
      EXPECT_TRUE(
          (*engine)->InsertBatch({data.begin() + half, data.end()}).ok());
      return std::move(engine).value();
    };
    std::unique_ptr<ShardedEngine> engine = build(dir);
    std::unique_ptr<ShardedEngine> twin = build(twin_dir);
    ASSERT_NE(engine, nullptr);
    ASSERT_NE(twin, nullptr);

    const int sick = engine->map().ShardOf(data[0]);
    ASSERT_GT(engine->shard(sick).file->num_pages(), 0u);
    ShardScrubber scrubber(engine.get(), ScrubOptions());
    ShardScrubber::PassReport heal_report;

    const SessionKind kind =
        seed % 2 == 0 ? SessionKind::kNpdq : SessionKind::kKnn;
    const ShardedSessionResult want =
        RunWithSchedule(twin.get(), ChaosSpec(kind, seed), extras);
    const ShardedSessionResult got = RunWithSchedule(
        engine.get(), ChaosSpec(kind, seed), extras, [&](int frame) {
          if (frame == kFaultFrame) {
            // Damage the shard at rest: live pages flip bits, the pool is
            // dropped so the damage is what the next read sees. The
            // checkpoint image (written before the burst) stays clean —
            // that is what repair rebuilds from.
            ShardedEngine::Shard& s = engine->shard(sick);
            auto guard = s.gate->LockExclusive();
            s.hedged->Quiesce();
            const size_t n = std::min<size_t>(s.file->num_pages(), 4);
            for (PageId p = 0; p < n; ++p) {
              EXPECT_TRUE(s.file->CorruptPageForTest(p, 64, 0x5A).ok());
            }
            s.pool->Clear();
          }
          if (frame == kHealFrame) heal_report = scrubber.ScrubPass();
        });

    const std::string label = "corrupt seed " + std::to_string(seed);
    ASSERT_TRUE(got.result.status.ok()) << label;
    EXPECT_GT(got.frames_partial, 0u) << label;
    EXPECT_GE(got.frames_quarantined, 5u) << label;
    ExpectSkipsOnlyIn(got, sick, label);
    ExpectHealthyShardsIdentical(got, want, sick, label);

    // The scrub found the damage and rebuilt it from checkpoint + WAL.
    EXPECT_GT(heal_report.pages_bad, 0u) << label;
    EXPECT_EQ(heal_report.pages_rebuilt, heal_report.pages_bad) << label;
    EXPECT_EQ(heal_report.shards_promoted, 1) << label;
    EXPECT_EQ(heal_report.shards_unrepairable, 0) << label;
    EXPECT_EQ(engine->breaker(sick)->state(), BreakerState::kClosed) << label;
    EXPECT_EQ(engine->shard(sick).redo->depth(), 0u) << label;

    // Zero residual damage, byte-identical recovery.
    std::vector<PageId> bad;
    EXPECT_EQ(engine->shard(sick).file->VerifyAllPages(&bad), 0u) << label;
    ExpectConvergedToTwin(engine.get(), twin.get(), seed, label);

    engine.reset();
    twin.reset();
    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(twin_dir);
  }
}

// ---------------------------------------------------------------------------
// Program 3: slow-I/O storm. The shard is slow but alive: hedged reads
// keep latency bounded, the breaker must NOT open, and every delivered
// byte matches the twin on every frame.

TEST(ChaosSlowStormTest, HedgedReadsAbsorbLatencyWithoutQuarantine) {
  for (uint64_t seed = 0; seed < kChaosSeeds; ++seed) {
    const std::vector<MotionSegment> data =
        ShapedData(WorkloadShape::kUniform, seed + 61);
    const std::vector<MotionSegment> extras =
        ExtraStream(WorkloadShape::kUniform, seed + 3000, 20);

    ShardedEngineOptions opt = ChaosOptions();
    // A tiny pool keeps reads flowing through the (slow) chain instead of
    // being absorbed by cache hits after the first frame.
    opt.pool_pages = 4;
    opt.hedge.enabled = true;
    opt.hedge.latency_factor = 0.5;
    opt.hedge.min_latency_us = 50;
    std::unique_ptr<ShardedEngine> engine = MakeEngine(opt, data);
    std::unique_ptr<ShardedEngine> twin = MakeEngine(opt, data);
    ASSERT_NE(engine, nullptr);
    ASSERT_NE(twin, nullptr);

    // The storm hits every shard: whichever shards the observer actually
    // reads this seed, their reads crawl.
    const SessionSpec spec = ChaosSpec(SessionKind::kNpdq, seed, 14);
    const ShardedSessionResult want = RunWithSchedule(twin.get(), spec, extras);
    const ShardedSessionResult got =
        RunWithSchedule(engine.get(), spec, extras, [&](int frame) {
          if (frame == 3) {
            for (int i = 0; i < kShards; ++i) {
              FaultInjector::Options f;
              f.slow_read_rate = 0.7;
              f.slow_read_delay_us = 800;
              f.seed = seed + 7 + static_cast<uint64_t>(i);
              engine->ArmShardFault(i, f);
            }
          }
          if (frame == 10) {
            for (int i = 0; i < kShards; ++i) engine->ClearShardFault(i);
          }
        });

    const std::string label = "slow seed " + std::to_string(seed);
    ASSERT_TRUE(got.result.status.ok()) << label;

    // Slow is not broken: no quarantine, no partial frames, and the
    // stream is byte-identical to the twin on *every* frame.
    for (int i = 0; i < kShards; ++i) {
      EXPECT_EQ(engine->breaker(i)->open_events(), 0u)
          << label << " shard " << i;
    }
    EXPECT_EQ(got.frames_partial, 0u) << label;
    EXPECT_EQ(got.frames_quarantined, 0u) << label;
    EXPECT_EQ(got.result.checksum, want.result.checksum) << label;
    ASSERT_EQ(got.frames.size(), want.frames.size()) << label;
    for (size_t f = 0; f < got.frames.size(); ++f) {
      EXPECT_EQ(got.frames[f].merged_checksum, want.frames[f].merged_checksum)
          << label << " frame " << f;
    }
    // The storm actually engaged the hedging machinery somewhere.
    uint64_t hedges = 0;
    for (int i = 0; i < kShards; ++i) hedges += engine->shard(i).hedged->hedges();
    EXPECT_GT(hedges, 0u) << label;
  }
}

// ---------------------------------------------------------------------------
// Program 4: crash-restart mid-repair. A forked child quarantines a
// corrupted durable shard, parks acked writes, then dies at each scrub
// crash point; the parent re-opens the directory and must find every
// acknowledged write.

constexpr int kCrashFrames = 10;
constexpr int kCrashObjects = 120;

std::vector<MotionSegment> CrashExtras(uint64_t seed) {
  return ExtraStream(WorkloadShape::kUniform, seed + 4000,
                     kCrashFrames * kExtrasPerFrame);
}

ShardedEngineOptions CrashOptions(const std::string& dir) {
  ShardedEngineOptions opt = ChaosOptions(dir);
  opt.breaker.consecutive_failures = 1;  // Open on the first dead read.
  return opt;
}

/// Builds the full expected insert sequence into `dir` (no chaos): the
/// parent's reference for what the crashed child acknowledged.
std::unique_ptr<ShardedEngine> BuildCrashTwin(const std::string& dir,
                                              uint64_t seed) {
  auto engine = ShardedEngine::Create(CrashOptions(dir));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  if (!engine.ok()) return nullptr;
  const std::vector<MotionSegment> data =
      ShapedData(WorkloadShape::kUniform, seed + 71, kCrashObjects);
  const size_t half = data.size() / 2;
  EXPECT_TRUE((*engine)->InsertBatch({data.begin(), data.begin() + half}).ok());
  EXPECT_TRUE((*engine)->Checkpoint().ok());
  EXPECT_TRUE((*engine)->InsertBatch({data.begin() + half, data.end()}).ok());
  for (const MotionSegment& m : CrashExtras(seed)) {
    EXPECT_TRUE((*engine)->Insert(m).ok());
  }
  return std::move(engine).value();
}

/// Child body. Exit codes: CrashPoints::kExitCode = died at the armed
/// crash point (the expected outcome), 0 = scrub completed without
/// crashing (a test bug), anything else = a precondition failed.
[[noreturn]] void RunCrashChild(const std::string& dir, uint64_t seed,
                                const char* point) {
  auto opened = ShardedEngine::Create(CrashOptions(dir));
  if (!opened.ok()) ::_exit(3);
  ShardedEngine* engine = opened->get();
  const std::vector<MotionSegment> data =
      ShapedData(WorkloadShape::kUniform, seed + 71, kCrashObjects);
  const size_t half = data.size() / 2;
  if (!engine->InsertBatch({data.begin(), data.begin() + half}).ok())
    ::_exit(4);
  if (!engine->Checkpoint().ok()) ::_exit(4);
  if (!engine->InsertBatch({data.begin() + half, data.end()}).ok()) ::_exit(4);

  const std::vector<MotionSegment> extras = CrashExtras(seed);
  // The sick shard must receive a post-quarantine insert (frame 5's first
  // extra — corruption lands at frame 3 and the breaker trips the same
  // frame), so the crash interleaves with a non-empty redo queue.
  const int sick =
      engine->map().ShardOf(extras[static_cast<size_t>(4 * kExtrasPerFrame)]);
  if (engine->shard(sick).file->num_pages() == 0) ::_exit(5);

  ShardRouter::Options ropt;
  ropt.spatial_prune = false;
  ropt.frame_hook = [&](int frame) {
    for (int j = 0; j < kExtrasPerFrame; ++j) {
      const size_t idx =
          static_cast<size_t>((frame - 1) * kExtrasPerFrame + j);
      // Every one of these returning OK is an acknowledgment the parent
      // will hold us to, parked or not.
      if (!engine->Insert(extras[idx]).ok()) ::_exit(6);
    }
    if (frame == 3) {
      {
        ShardedEngine::Shard& s = engine->shard(sick);
        auto guard = s.gate->LockExclusive();
        s.hedged->Quiesce();
        const size_t n = std::min<size_t>(s.file->num_pages(), 3);
        for (PageId p = 0; p < n; ++p) {
          if (!s.file->CorruptPageForTest(p, 64, 0x5A).ok()) ::_exit(7);
        }
        s.pool->Clear();
      }
      // Quarantine immediately: with some seeds no query read touches the
      // damaged shard before the next insert would, and an insert that
      // trips over at-rest damage fails instead of parking. Organic
      // tripping is programs 1-2's business; this program pins what a
      // crash during the subsequent repair does to acked writes.
      engine->breaker(sick)->ForceOpen("at-rest corruption burst");
    }
  };
  ShardRouter(engine, ropt)
      .RunOne(ChaosSpec(SessionKind::kNpdq, seed, kCrashFrames));
  if (engine->breaker(sick)->state() != BreakerState::kOpen) ::_exit(8);
  if (engine->shard(sick).redo->depth() == 0) ::_exit(9);

  CrashPoints::Arm(point);
  ShardScrubber(engine, ScrubOptions()).ScrubPass();
  ::_exit(0);  // The armed point was never reached.
}

TEST(ChaosCrashMidRepairTest, AckedWritesSurviveEveryScrubCrashPoint) {
  const char* points[] = {crash_points::kScrubBeforeRepair,
                          crash_points::kScrubBeforeDrain,
                          crash_points::kScrubAfterDrain};
  for (uint64_t seed = 0; seed < kChaosSeeds; ++seed) {
    const char* point = points[seed % 3];
    const std::string dir = std::string(::testing::TempDir()) +
                            "/dqmo_chaos_crash_" + std::to_string(seed);
    const std::string twin_dir = dir + "_twin";
    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(twin_dir);

    const pid_t pid = ::fork();
    if (pid == 0) RunCrashChild(dir, seed, point);
    ASSERT_GT(pid, 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status))
        << "child died abnormally (signal " << WTERMSIG(status) << ")";
    ASSERT_EQ(WEXITSTATUS(status), CrashPoints::kExitCode)
        << "seed " << seed << " point " << point;

    // Recovery: re-open the directory the child died on. Every shard's
    // WAL (including the records parked writes appended) replays; the
    // result must be byte-identical to an engine that saw the same insert
    // sequence with no chaos at all.
    auto reopened = ShardedEngine::Create(CrashOptions(dir));
    ASSERT_TRUE(reopened.ok())
        << "seed " << seed << ": " << reopened.status().ToString();
    std::unique_ptr<ShardedEngine> twin = BuildCrashTwin(twin_dir, seed);
    ASSERT_NE(twin, nullptr);
    const std::string label =
        std::string("crash seed ") + std::to_string(seed) + " point " + point;
    ExpectConvergedToTwin(reopened->get(), twin.get(), seed, label);

    reopened->reset();
    twin.reset();
    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(twin_dir);
  }
}

// ---------------------------------------------------------------------------
// Acked writes while quarantined: park -> drain -> queryable, and a
// checkpoint must skip (not orphan) a quarantined shard's parked tail.

TEST(ChaosRedoQueueTest, QuarantinedInsertParksAndDrainsOnReinstatement) {
  const std::vector<MotionSegment> data =
      ShapedData(WorkloadShape::kUniform, 5);
  std::unique_ptr<ShardedEngine> engine = MakeEngine(ChaosOptions(), data);
  ASSERT_NE(engine, nullptr);
  const uint64_t before = engine->num_segments();

  const MotionSegment extra(
      9001, StSegment(Vec(40, 40), Vec(41, 41), Interval(2.0, 3.0)));
  const int sick = engine->map().ShardOf(extra);
  engine->breaker(sick)->ForceOpen("test");

  // The insert acknowledges (OK) but parks: the tree is untouched.
  ASSERT_TRUE(engine->Insert(extra).ok());
  EXPECT_EQ(engine->shard(sick).redo->depth(), 1u);
  EXPECT_EQ(engine->num_segments(), before);

  ASSERT_TRUE(engine->DrainRedo(sick).ok());
  EXPECT_EQ(engine->shard(sick).redo->depth(), 0u);
  EXPECT_EQ(engine->num_segments(), before + 1);
}

TEST(ChaosRedoQueueTest, CheckpointSkipsQuarantinedShardWithParkedWrites) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/dqmo_chaos_ckpt";
  std::filesystem::remove_all(dir);
  const std::vector<MotionSegment> data =
      ShapedData(WorkloadShape::kUniform, 9, 80, 8.0);
  {
    auto engine = ShardedEngine::Create(ChaosOptions(dir));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE((*engine)->InsertBatch(data).ok());

    const MotionSegment extra(
        9002, StSegment(Vec(30, 30), Vec(31, 31), Interval(2.0, 3.0)));
    const int sick = (*engine)->map().ShardOf(extra);
    (*engine)->breaker(sick)->ForceOpen("test");
    ASSERT_TRUE((*engine)->Insert(extra).ok());

    // Checkpointing around the quarantined shard must not orphan the
    // parked record by resetting its WAL.
    ASSERT_TRUE((*engine)->Checkpoint().ok());
    EXPECT_EQ((*engine)->shard(sick).redo->depth(), 1u);
  }
  {
    // Reopen: the parked record was in the WAL, so recovery finds it.
    auto engine = ShardedEngine::Create(ChaosOptions(dir));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ((*engine)->num_segments(), data.size() + 1);
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Concurrency hammer (the TSan target in tools/ci.sh): router frames,
// inserts, fault arm/clear, and the background scrubber all racing on one
// engine. No budget and no hedging — the one documented unsafe pairing is
// concurrent budgeted sessions with hedging on.

TEST(ChaosHammerTest, FramesInsertsFaultsAndScrubberRaceSafely) {
  const std::vector<MotionSegment> data =
      ShapedData(WorkloadShape::kUniform, 41, 160, 12.0);
  std::unique_ptr<ShardedEngine> engine = MakeEngine(ChaosOptions(), data);
  ASSERT_NE(engine, nullptr);
  const std::vector<MotionSegment> extras =
      ShapedData(WorkloadShape::kSkewed, 42, 200, 12.0);

  ScrubOptions sopt;
  sopt.interval_ms = 1;
  ShardScrubber scrubber(engine.get(), sopt);
  scrubber.Start();

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  // Query threads: sharded sessions, back to back.
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&, t] {
      ShardRouter::Options ropt;
      ropt.spatial_prune = false;
      uint64_t round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const SessionKind kind =
            round % 2 == 0 ? SessionKind::kNpdq : SessionKind::kKnn;
        const ShardedSessionResult r =
            ShardRouter(engine.get(), ropt)
                .RunOne(ChaosSpec(kind, static_cast<uint64_t>(t) + round, 8));
        if (!r.result.status.ok()) failed.store(true);
        ++round;
      }
    });
  }
  // Writer thread.
  workers.emplace_back([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!engine->Insert(extras[i % extras.size()]).ok()) failed.store(true);
      ++i;
    }
  });
  // Chaos thread: trip shard 1, let the scrubber find and promote it.
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      FaultInjector::Options f;
      f.fail_every_kth = 1;
      engine->ArmShardFault(1, f);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      engine->ClearShardFault(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (std::thread& w : workers) w.join();
  scrubber.Stop();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(scrubber.passes(), 0u);

  // Settle: clear the fault, drain, and require a clean full recovery.
  engine->ClearShardFault(1);
  ShardScrubber settle(engine.get(), ScrubOptions());
  for (int i = 0;
       i < 3 && engine->breaker(1)->state() != BreakerState::kClosed; ++i) {
    settle.ScrubPass();
    ShardRouter::Options ropt;
    ropt.spatial_prune = false;
    ShardRouter(engine.get(), ropt).RunOne(ChaosSpec(SessionKind::kKnn, 99, 4));
  }
  EXPECT_EQ(engine->breaker(1)->state(), BreakerState::kClosed);
  EXPECT_EQ(engine->shard(1).redo->depth(), 0u);
}

}  // namespace
}  // namespace dqmo
