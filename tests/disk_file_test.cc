// DiskPageFile contract tests: the disk-resident PageStore must honour the
// accounting the in-memory PageFile established (every Read is one charged
// physical access — even a dirty-frame hit), bound its dirty working set,
// interoperate byte-for-byte with PageFile checkpoint images, and reject
// corrupt images at open. Plus the Prefetcher charging contract (hits
// counted exactly once; cancel/quiesce charge wasted; failed speculation
// falls through without poisoning anything) and the streaming WAL scan's
// equivalence with the materializing one.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "storage/async_io.h"
#include "storage/disk_file.h"
#include "storage/fault.h"
#include "storage/image_format.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/prefetch.h"
#include "storage/wal.h"
#include "test_util.h"

namespace dqmo {
namespace {

struct TempDir {
  std::filesystem::path dir;
  explicit TempDir(const std::string& tag) {
    dir = std::filesystem::temp_directory_path() /
          ("dqmo_disk_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }
  ~TempDir() { std::filesystem::remove_all(dir); }
  std::string path(const std::string& name) const {
    return (dir / name).string();
  }
};

/// Deterministic page payload: byte j of page i is (i * 131 + j) & 0xff.
void FillPage(uint64_t id, uint8_t* page) {
  for (size_t j = 0; j < kPageSize; ++j) {
    page[j] = static_cast<uint8_t>((id * 131 + j) & 0xff);
  }
}

bool PayloadMatches(uint64_t id, const uint8_t* page) {
  for (size_t j = 0; j < kPagePayloadSize; ++j) {
    if (page[j] != static_cast<uint8_t>((id * 131 + j) & 0xff)) return false;
  }
  return true;
}

std::unique_ptr<DiskPageFile> MakeDiskFile(const std::string& path, int pages,
                                           size_t dirty_budget = 256) {
  DiskPageFile::Options options;
  options.dirty_frame_budget = dirty_budget;
  auto file = DiskPageFile::Create(path, options);
  EXPECT_TRUE(file.ok()) << file.status().ToString();
  if (!file.ok()) return nullptr;
  std::vector<uint8_t> buf(kPageSize);
  for (int i = 0; i < pages; ++i) {
    const PageId id = (*file)->Allocate();
    FillPage(id, buf.data());
    EXPECT_TRUE((*file)->Write(id, buf.data()).ok());
  }
  EXPECT_TRUE((*file)->Publish().ok());
  (*file)->ResetStats();
  return std::move(file).value();
}

TEST(DiskPageFileTest, WriteReadRoundtripChargesEveryRead) {
  TempDir tmp("roundtrip");
  auto file = MakeDiskFile(tmp.path("f.pgf"), 8);
  ASSERT_NE(file, nullptr);

  for (PageId id = 0; id < 8; ++id) {
    auto r = file->Read(id);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->physical);
    EXPECT_TRUE(PayloadMatches(id, r->data)) << "page " << id;
  }
  // Re-reads are never cached by the store itself: the second pass charges
  // eight more physical reads (caching is the BufferPool's job).
  for (PageId id = 0; id < 8; ++id) ASSERT_TRUE(file->Read(id).ok());
  EXPECT_EQ(file->stats().physical_reads, 16u);

  // A dirty-frame hit is still one charged physical read: the paper's
  // metric counts accesses to the store, not to the medium.
  auto view = file->WritableView(3);
  ASSERT_TRUE(view.ok());
  const IoStats before = file->stats();
  ASSERT_TRUE(file->HasDirtyFrame(3));
  auto r = file->Read(3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(file->stats().physical_reads,
            before.physical_reads.load() + 1);
}

TEST(DiskPageFileTest, DirtyFrameBudgetBoundsResidency) {
  TempDir tmp("evict");
  auto file = MakeDiskFile(tmp.path("f.pgf"), 0, /*dirty_budget=*/4);
  ASSERT_NE(file, nullptr);

  std::vector<uint8_t> buf(kPageSize);
  for (int i = 0; i < 12; ++i) {
    const PageId id = file->Allocate();
    auto view = file->WritableView(id);
    ASSERT_TRUE(view.ok());
    FillPage(id, view->data());
    EXPECT_LE(file->resident_dirty_frames(), 4u) << "after page " << id;
  }
  // Evicted-and-rewritten pages read back intact (they were flushed, not
  // dropped), and sealing the rest leaves nothing resident beyond budget.
  file->SealAllDirty();
  ASSERT_TRUE(file->Publish().ok());
  for (PageId id = 0; id < 12; ++id) {
    auto r = file->Read(id);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(PayloadMatches(id, r->data)) << "page " << id;
  }
}

TEST(DiskPageFileTest, ImageInteropWithPageFile) {
  TempDir tmp("interop");
  // Memory -> image -> disk: the disk store must serve the exact bytes the
  // in-memory store checkpointed.
  PageFile mem;
  std::vector<uint8_t> buf(kPageSize);
  for (int i = 0; i < 6; ++i) {
    const PageId id = mem.Allocate();
    FillPage(id, buf.data());
    ASSERT_TRUE(mem.Write(id, buf.data()).ok());
  }
  ASSERT_TRUE(mem.Publish().ok());
  const std::string image = tmp.path("ckpt.pgf");
  ASSERT_TRUE(mem.SaveTo(image).ok());

  DiskPageFile::Options options;
  auto disk = DiskPageFile::CreateFromImage(tmp.path("live.pgf"), image,
                                            options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ASSERT_EQ((*disk)->num_pages(), mem.num_pages());
  for (PageId id = 0; id < 6; ++id) {
    auto dm = mem.Read(id);
    auto dd = (*disk)->Read(id);
    ASSERT_TRUE(dm.ok());
    ASSERT_TRUE(dd.ok());
    EXPECT_EQ(std::memcmp(dm->data, dd->data, kPageSize), 0) << "page " << id;
  }

  // Disk -> image -> memory: the round trip back is just as exact.
  const std::string image2 = tmp.path("ckpt2.pgf");
  ASSERT_TRUE((*disk)->SaveTo(image2).ok());
  PageFile mem2;
  ASSERT_TRUE(mem2.LoadFrom(image2).ok());
  ASSERT_EQ(mem2.num_pages(), mem.num_pages());
  for (PageId id = 0; id < 6; ++id) {
    auto a = mem.Read(id);
    auto b = mem2.Read(id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(std::memcmp(a->data, b->data, kPageSize), 0) << "page " << id;
  }
}

TEST(DiskPageFileTest, CorruptImageRejectedAtOpen) {
  TempDir tmp("corrupt_open");
  PageFile mem;
  std::vector<uint8_t> buf(kPageSize);
  for (int i = 0; i < 4; ++i) {
    const PageId id = mem.Allocate();
    FillPage(id, buf.data());
    ASSERT_TRUE(mem.Write(id, buf.data()).ok());
  }
  ASSERT_TRUE(mem.Publish().ok());
  const std::string image = tmp.path("ckpt.pgf");
  ASSERT_TRUE(mem.SaveTo(image).ok());

  // Flip one payload byte of page 2 in the image file itself.
  std::FILE* f = std::fopen(image.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f,
                       static_cast<long>(PgfDataOffset(kPgfVersion) +
                                         2 * kPageSize + 77),
                       SEEK_SET),
            0);
  const uint8_t bad = 0xa5;
  ASSERT_EQ(std::fwrite(&bad, 1, 1, f), 1u);
  std::fclose(f);

  auto disk = DiskPageFile::CreateFromImage(tmp.path("live.pgf"), image,
                                            DiskPageFile::Options{});
  EXPECT_FALSE(disk.ok());
  EXPECT_TRUE(disk.status().IsCorruption()) << disk.status().ToString();
}

TEST(DiskPageFileTest, VerifyAndScrubSurface) {
  TempDir tmp("scrub");
  auto file = MakeDiskFile(tmp.path("f.pgf"), 5);
  ASSERT_NE(file, nullptr);

  std::vector<PageId> bad;
  EXPECT_EQ(file->VerifyAllPages(&bad), 0u);
  ASSERT_TRUE(file->CorruptPageForTest(1, 200, 0x40).ok());
  EXPECT_FALSE(file->VerifyPage(1).ok());
  bad.clear();
  EXPECT_EQ(file->VerifyAllPages(&bad), 1u);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], 1u);
}

TEST(DiskPageFileTest, ReloadFromImageRestores) {
  TempDir tmp("reload");
  PageFile mem;
  std::vector<uint8_t> buf(kPageSize);
  for (int i = 0; i < 4; ++i) {
    const PageId id = mem.Allocate();
    FillPage(id, buf.data());
    ASSERT_TRUE(mem.Write(id, buf.data()).ok());
  }
  ASSERT_TRUE(mem.Publish().ok());
  const std::string image = tmp.path("ckpt.pgf");
  ASSERT_TRUE(mem.SaveTo(image).ok());

  auto disk = DiskPageFile::CreateFromImage(tmp.path("live.pgf"), image,
                                            DiskPageFile::Options{});
  ASSERT_TRUE(disk.ok());

  // Scribble over page 0, then reload: the checkpoint's bytes win.
  auto view = (*disk)->WritableView(0);
  ASSERT_TRUE(view.ok());
  std::memset(view->data(), 0xee, kPagePayloadSize);
  (*disk)->SealAllDirty();
  ASSERT_TRUE((*disk)->ReloadFromImage(image).ok());
  ASSERT_EQ((*disk)->num_pages(), 4u);
  auto r = (*disk)->Read(0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(PayloadMatches(0, r->data));
}

TEST(AsyncReadQueueTest, SubmitReapRoundtrip) {
  TempDir tmp("queue");
  auto file = MakeDiskFile(tmp.path("f.pgf"), 6);
  ASSERT_NE(file, nullptr);

  auto queue = file->MakeReadQueue(4);
  ASSERT_NE(queue, nullptr);
  std::vector<AlignedPageBuf> bufs(4);
  for (uint64_t i = 0; i < 4; ++i) {
    AsyncRead read;
    read.tag = 100 + i;
    read.offset = file->PageOffset(i);
    read.buf = bufs[i].data();
    read.len = kPageSize;
    ASSERT_TRUE(queue->Submit(read).ok());
  }
  std::vector<AsyncCompletion> done;
  while (done.size() < 4) {
    ASSERT_GT(queue->Reap(&done, /*block=*/true), 0u);
  }
  EXPECT_EQ(queue->inflight(), 0u);
  for (const AsyncCompletion& c : done) {
    ASSERT_GE(c.tag, 100u);
    const uint64_t id = c.tag - 100;
    ASSERT_LT(id, 4u);
    EXPECT_EQ(c.result, static_cast<int32_t>(kPageSize)) << "tag " << c.tag;
    EXPECT_TRUE(PayloadMatches(id, bufs[id].data())) << "page " << id;
  }
}

TEST(AsyncReadQueueTest, UringSelectionDegradesSafely) {
  TempDir tmp("uring");
  auto file = MakeDiskFile(tmp.path("f.pgf"), 2);
  ASSERT_NE(file, nullptr);

  // Whatever the kernel allows, asking for uring must yield a working
  // queue — io_uring when the probe passes, the thread pool otherwise.
  auto queue = CreateAsyncReadQueue(IoBackend::kUring, file->fd(), 2);
  ASSERT_NE(queue, nullptr);
  if (!UringAvailable()) {
    EXPECT_STREQ(queue->name(),
                 CreateAsyncReadQueue(IoBackend::kPread, file->fd(), 2)
                     ->name());
  }
  AlignedPageBuf buf;
  AsyncRead read;
  read.tag = 7;
  read.offset = file->PageOffset(1);
  read.buf = buf.data();
  read.len = kPageSize;
  ASSERT_TRUE(queue->Submit(read).ok());
  std::vector<AsyncCompletion> done;
  while (done.empty()) queue->Reap(&done, /*block=*/true);
  EXPECT_EQ(done[0].tag, 7u);
  EXPECT_EQ(done[0].result, static_cast<int32_t>(kPageSize));
  EXPECT_TRUE(PayloadMatches(1, buf.data()));
}

struct PrefetcherFixture {
  TempDir tmp;
  std::unique_ptr<DiskPageFile> file;
  std::unique_ptr<Prefetcher> prefetcher;

  explicit PrefetcherFixture(const std::string& tag, int pages = 16,
                             FaultInjector* injector = nullptr,
                             std::function<void(uint64_t)> sleeper = nullptr)
      : tmp(tag) {
    file = MakeDiskFile(tmp.path("f.pgf"), pages);
    if (file == nullptr) return;
    Prefetcher::Options options;
    options.depth = 8;
    options.injector = injector;
    options.sleeper = sleeper ? std::move(sleeper) : [](uint64_t) {};
    prefetcher = std::make_unique<Prefetcher>(file.get(), options);
  }
};

TEST(PrefetcherTest, HitChargedExactlyOnce) {
  PrefetcherFixture fx("hit");
  ASSERT_NE(fx.prefetcher, nullptr);

  const std::vector<PageId> hints = {3, 4};
  fx.prefetcher->Hint(hints);
  EXPECT_EQ(fx.file->stats().prefetch_issued, 2u);

  auto r = fx.prefetcher->Read(3);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->physical);
  EXPECT_TRUE(PayloadMatches(3, r->data));
  // The hit replaced the sync read 1:1 — one physical read, one hit.
  EXPECT_EQ(fx.file->stats().prefetch_hits, 1u);
  EXPECT_EQ(fx.file->stats().physical_reads, 1u);

  // Quiesce discards the unconsumed speculation as wasted (its disk read
  // really happened), closing the accounting identity.
  fx.prefetcher->Quiesce();
  EXPECT_EQ(fx.file->stats().prefetch_wasted, 1u);
  EXPECT_EQ(fx.file->stats().physical_reads, 2u);
  EXPECT_EQ(fx.file->stats().prefetch_issued.load(),
            fx.file->stats().prefetch_hits.load() +
                fx.file->stats().prefetch_wasted.load() +
                fx.prefetcher->failed());
}

TEST(PrefetcherTest, CancelPendingChargesWasted) {
  PrefetcherFixture fx("cancel");
  ASSERT_NE(fx.prefetcher, nullptr);

  const std::vector<PageId> hints = {0, 1, 2, 5};
  fx.prefetcher->Hint(hints);
  fx.prefetcher->CancelPending();
  fx.prefetcher->Quiesce();
  EXPECT_EQ(fx.prefetcher->tracked(), 0u);
  EXPECT_EQ(fx.file->stats().prefetch_hits, 0u);
  EXPECT_EQ(fx.file->stats().prefetch_issued.load(),
            fx.file->stats().prefetch_wasted.load() +
                fx.prefetcher->failed());
}

TEST(PrefetcherTest, FailedSpeculationFallsThroughToSync) {
  FaultInjector::Options fopt;
  fopt.seed = 3;
  fopt.fail_every_kth = 1;  // Every speculative read fails.
  FaultInjector injector(fopt);
  PrefetcherFixture fx("fail", 16, &injector);
  ASSERT_NE(fx.prefetcher, nullptr);

  const std::vector<PageId> hints = {6};
  fx.prefetcher->Hint(hints);
  auto r = fx.prefetcher->Read(6);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(PayloadMatches(6, r->data));  // The frame was never poisoned.
  EXPECT_EQ(fx.prefetcher->failed(), 1u);
  EXPECT_EQ(fx.file->stats().prefetch_hits, 0u);
  // The failed speculation charged nothing; the sync fallthrough charged
  // its one read.
  EXPECT_EQ(fx.file->stats().physical_reads, 1u);
  // And the page stays readable afterwards — no sticky failure state.
  auto again = fx.prefetcher->Read(6);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(PayloadMatches(6, again->data));
}

TEST(PrefetcherTest, ChargeFnBoundsSpeculation) {
  PrefetcherFixture fx("charge");
  ASSERT_NE(fx.prefetcher, nullptr);

  int allowance = 2;
  const std::vector<PageId> hints = {0, 1, 2, 3, 4, 5};
  fx.prefetcher->Hint(hints, [&allowance]() { return allowance-- > 0; });
  EXPECT_EQ(fx.file->stats().prefetch_issued, 2u);
  EXPECT_LE(fx.prefetcher->tracked(), 2u);
  fx.prefetcher->Quiesce();
}

TEST(PrefetcherTest, DirtyFramedPagesAreSkipped) {
  PrefetcherFixture fx("dirty");
  ASSERT_NE(fx.prefetcher, nullptr);

  auto view = fx.file->WritableView(2);
  ASSERT_TRUE(view.ok());
  view->data()[0] ^= 0xff;
  ASSERT_TRUE(fx.file->HasDirtyFrame(2));

  const std::vector<PageId> hints = {2};
  fx.prefetcher->Hint(hints);
  // The on-disk bytes are stale, so no speculation was issued; the read
  // falls through to the store and serves the fresh frame.
  EXPECT_EQ(fx.file->stats().prefetch_issued, 0u);
  EXPECT_EQ(fx.prefetcher->tracked(), 0u);
  auto r = fx.prefetcher->Read(2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data[0],
            static_cast<uint8_t>(((2 * 131 + 0) & 0xff) ^ 0xff));
}

TEST(PrefetcherTest, SlowCompletionServedThroughSleeper) {
  FaultInjector::Options fopt;
  fopt.seed = 9;
  fopt.slow_every_kth = 1;
  fopt.slow_read_delay_us = 500;
  FaultInjector injector(fopt);
  std::vector<uint64_t> delays;
  PrefetcherFixture fx("slow", 16, &injector,
                       [&delays](uint64_t us) { delays.push_back(us); });
  ASSERT_NE(fx.prefetcher, nullptr);

  const std::vector<PageId> hints = {7};
  fx.prefetcher->Hint(hints);
  auto r = fx.prefetcher->Read(7);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(PayloadMatches(7, r->data));
  ASSERT_EQ(delays.size(), 1u);  // Delay served at consumption, injected.
  EXPECT_EQ(delays[0], 500u);
}

MotionSegment TestSegment(uint64_t i) {
  Rng rng(1000 + i);
  return dqmo::testing::RandomSegment(&rng, static_cast<ObjectId>(i), 2, 100,
                                      100);
}

void WriteWal(const std::string& path, int inserts, bool checkpoint) {
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path, nullptr).ok());
  for (int i = 0; i < inserts; ++i) {
    ASSERT_TRUE(writer.AppendInsert(TestSegment(i)).ok());
  }
  if (checkpoint) {
    ASSERT_TRUE(writer.AppendCheckpoint(2, 42).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());
  writer.Close();
}

void ExpectStreamMatchesScan(const std::string& path) {
  auto scan = ScanWal(path);
  auto stream = ScanWalStreaming(path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ(stream->records, scan->records.size());
  EXPECT_EQ(stream->last_lsn, scan->last_lsn);
  EXPECT_EQ(stream->good_bytes, scan->good_bytes);
  EXPECT_EQ(stream->torn_bytes, scan->torn_bytes);
  EXPECT_EQ(stream->torn_tail, scan->torn_tail);
  uint64_t inserts = 0, checkpoints = 0;
  for (const WalRecord& r : scan->records) {
    if (r.type == WalRecordType::kInsert) ++inserts;
    if (r.type == WalRecordType::kCheckpoint) ++checkpoints;
  }
  EXPECT_EQ(stream->inserts, inserts);
  EXPECT_EQ(stream->checkpoints, checkpoints);
  if (!scan->records.empty()) {
    EXPECT_EQ(stream->first_lsn, scan->records.front().lsn);
  }
}

TEST(WalStreamingTest, MatchesMaterializingScan) {
  TempDir tmp("wal_match");
  const std::string path = tmp.path("log.wal");
  WriteWal(path, 5, /*checkpoint=*/true);
  ExpectStreamMatchesScan(path);

  auto stream = ScanWalStreaming(path);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->records, 6u);
  EXPECT_EQ(stream->inserts, 5u);
  EXPECT_EQ(stream->checkpoints, 1u);
  EXPECT_EQ(stream->first_lsn, 1u);
  EXPECT_EQ(stream->last_lsn, 6u);
  EXPECT_EQ(stream->last_ckpt_lsn, 2u);
  EXPECT_EQ(stream->last_ckpt_segments, 42u);
  EXPECT_FALSE(stream->torn_tail);
}

TEST(WalStreamingTest, EmptyAndAbsentLogs) {
  TempDir tmp("wal_empty");
  // Absent: both scans report an empty log.
  ExpectStreamMatchesScan(tmp.path("missing.wal"));
  // Present but record-free (header only).
  const std::string path = tmp.path("empty.wal");
  WriteWal(path, 0, /*checkpoint=*/false);
  ExpectStreamMatchesScan(path);
  auto stream = ScanWalStreaming(path);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->records, 0u);
  EXPECT_EQ(stream->first_lsn, 0u);
}

TEST(WalStreamingTest, TornTailToleratedIdentically) {
  TempDir tmp("wal_torn");
  const std::string path = tmp.path("log.wal");
  WriteWal(path, 4, /*checkpoint=*/false);

  // A torn write: a few garbage bytes where a record header should be.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const uint8_t garbage[9] = {0xde, 0xad, 0xbe, 0xef, 0x01,
                              0x02, 0x03, 0x04, 0x05};
  ASSERT_EQ(std::fwrite(garbage, 1, sizeof(garbage), f), sizeof(garbage));
  std::fclose(f);

  ExpectStreamMatchesScan(path);
  auto stream = ScanWalStreaming(path);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->records, 4u);
  EXPECT_TRUE(stream->torn_tail);
  EXPECT_EQ(stream->torn_bytes, sizeof(garbage));
}

TEST(WalStreamingTest, MidLogCorruptionRejectedIdentically) {
  TempDir tmp("wal_hole");
  const std::string path = tmp.path("log.wal");
  WriteWal(path, 4, /*checkpoint=*/false);

  // Damage the first record's payload: a well-formed record follows, so
  // this is a hole, not a torn tail — both scans must refuse to replay
  // past it.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 16 + 17 + 3, SEEK_SET), 0);
  uint8_t byte = 0;
  ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
  byte ^= 0x10;
  ASSERT_EQ(std::fseek(f, 16 + 17 + 3, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  std::fclose(f);

  auto scan = ScanWal(path);
  auto stream = ScanWalStreaming(path);
  EXPECT_FALSE(scan.ok());
  EXPECT_FALSE(stream.ok());
  EXPECT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();
  EXPECT_TRUE(stream.status().IsCorruption()) << stream.status().ToString();
}

}  // namespace
}  // namespace dqmo
