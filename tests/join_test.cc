// Tests for spatio-temporal distance joins (future-work item (ii)):
// the WithinDistanceTime kernel against sampling, and tree joins against
// brute-force nested loops.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "query/join.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::RandomPoint;
using ::dqmo::testing::RandomSegments;

using PairKey = std::pair<MotionSegment::Key, MotionSegment::Key>;

PairKey KeyOf(const JoinPair& p) {
  return {p.left.key(), p.right.key()};
}

// ---- WithinDistanceTime kernel ----

TEST(WithinDistanceTimeTest, ParallelMoversConstantGap) {
  // Two objects moving identically, 3 apart: within delta=4 always,
  // within delta=2 never.
  const StSegment a(Vec(0, 0), Vec(10, 0), Interval(0, 10));
  const StSegment b(Vec(0, 3), Vec(10, 3), Interval(0, 10));
  EXPECT_EQ(WithinDistanceTime(a, b, 4.0, Interval::All()),
            Interval(0, 10));
  EXPECT_TRUE(WithinDistanceTime(a, b, 2.0, Interval::All()).empty());
}

TEST(WithinDistanceTimeTest, HeadOnPass) {
  // a moves right, b moves left along the same line; they cross at t=5,
  // x=5. Relative speed 2: within distance 2 during [4, 6].
  const StSegment a(Vec(0, 0), Vec(10, 0), Interval(0, 10));
  const StSegment b(Vec(10, 0), Vec(0, 0), Interval(0, 10));
  EXPECT_EQ(WithinDistanceTime(a, b, 2.0, Interval::All()),
            Interval(4.0, 6.0));
}

TEST(WithinDistanceTimeTest, WindowClipsAnswer) {
  const StSegment a(Vec(0, 0), Vec(10, 0), Interval(0, 10));
  const StSegment b(Vec(10, 0), Vec(0, 0), Interval(0, 10));
  EXPECT_EQ(WithinDistanceTime(a, b, 2.0, Interval(5.5, 20.0)),
            Interval(5.5, 6.0));
  EXPECT_TRUE(
      WithinDistanceTime(a, b, 2.0, Interval(7.0, 20.0)).empty());
}

TEST(WithinDistanceTimeTest, DisjointValidTimes) {
  const StSegment a(Vec(0, 0), Vec(1, 0), Interval(0, 1));
  const StSegment b(Vec(0, 0), Vec(1, 0), Interval(2, 3));
  EXPECT_TRUE(WithinDistanceTime(a, b, 100.0, Interval::All()).empty());
}

TEST(WithinDistanceTimeTest, ZeroDeltaTouchRequiresExactMeeting) {
  const StSegment a(Vec(0, 0), Vec(10, 0), Interval(0, 10));
  const StSegment b(Vec(10, 0), Vec(0, 0), Interval(0, 10));
  const Interval touch = WithinDistanceTime(a, b, 0.0, Interval::All());
  ASSERT_FALSE(touch.empty());
  EXPECT_NEAR(touch.lo, 5.0, 1e-9);
  EXPECT_NEAR(touch.hi, 5.0, 1e-9);
}

class WithinDistanceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WithinDistanceProperty, MatchesSampling) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 400; ++iter) {
    const StSegment a(RandomPoint(&rng, 2, 20), RandomPoint(&rng, 2, 20),
                      Interval(rng.Uniform(0, 5), rng.Uniform(5, 10)));
    const StSegment b(RandomPoint(&rng, 2, 20), RandomPoint(&rng, 2, 20),
                      Interval(rng.Uniform(0, 5), rng.Uniform(5, 10)));
    const double delta = rng.Uniform(0.5, 8.0);
    const Interval close = WithinDistanceTime(a, b, delta, Interval::All());
    const Interval domain = a.time.Intersect(b.time);
    for (int k = 0; k <= 40; ++k) {
      // Clamp: lo + length can overshoot hi by an ulp at k = 40.
      const double t =
          std::min(domain.hi, domain.lo + domain.length() * k / 40.0);
      const double dist =
          a.PositionAt(t).DistanceTo(b.PositionAt(t));
      // Near-tangency is numerically ill-conditioned (slow crossings of
      // the delta threshold); assert only outside a small boundary band.
      if (dist <= delta - 1e-6) {
        EXPECT_TRUE(close.Contains(t)) << "t=" << t << " dist=" << dist;
      }
      if (dist >= delta + 1e-6) {
        EXPECT_FALSE(close.Contains(t)) << "t=" << t << " dist=" << dist;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WithinDistanceProperty,
                         ::testing::Values(3, 5, 7));

// ---- Tree joins ----

struct JoinFixture {
  PageFile file;
  std::unique_ptr<RTree> tree;
  std::vector<MotionSegment> data;
};

void BuildFixture(JoinFixture* fx, uint64_t seed, int n) {
  auto tree = RTree::Create(&fx->file, RTree::Options());
  ASSERT_TRUE(tree.ok());
  fx->tree = std::move(tree).value();
  Rng rng(seed);
  fx->data = RandomSegments(&rng, n, 2, 60, 30, /*max_duration=*/3.0);
  for (const auto& m : fx->data) ASSERT_TRUE(fx->tree->Insert(m).ok());
}

std::set<PairKey> BruteForceJoin(const std::vector<MotionSegment>& left,
                                 const std::vector<MotionSegment>& right,
                                 double delta, const Interval& window,
                                 bool self) {
  std::set<PairKey> out;
  for (const auto& a : left) {
    for (const auto& b : right) {
      if (self) {
        if (a.oid == b.oid) continue;
        if (!(a.key() < b.key())) continue;
      }
      if (!WithinDistanceTime(a.seg, b.seg, delta, window).empty()) {
        out.insert({a.key(), b.key()});
      }
    }
  }
  return out;
}

TEST(DistanceJoinTest, RejectsBadArguments) {
  JoinFixture fx;
  BuildFixture(&fx, 1, 50);
  QueryStats stats;
  DistanceJoinOptions options;
  options.delta = -1.0;
  EXPECT_TRUE(DistanceJoin(*fx.tree, *fx.tree, options, &stats)
                  .status()
                  .IsInvalidArgument());
}

TEST(DistanceJoinTest, SelfJoinMatchesBruteForce) {
  JoinFixture fx;
  BuildFixture(&fx, 2, 400);
  for (double delta : {0.5, 2.0}) {
    DistanceJoinOptions options;
    options.delta = delta;
    options.time_window = Interval(5.0, 15.0);
    QueryStats stats;
    auto pairs = SelfDistanceJoin(*fx.tree, options, &stats);
    ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
    std::set<PairKey> got;
    for (const auto& p : *pairs) {
      // Reported order is canonical and close_time is non-empty & valid.
      EXPECT_TRUE(p.left.key() < p.right.key());
      EXPECT_FALSE(p.close_time.empty());
      const double mid = p.close_time.mid();
      EXPECT_LE(p.left.seg.PositionAt(mid).DistanceTo(
                    p.right.seg.PositionAt(mid)),
                delta + 1e-6);
      got.insert(KeyOf(p));
    }
    EXPECT_EQ(got, BruteForceJoin(fx.data, fx.data, delta,
                                  options.time_window, /*self=*/true));
    EXPECT_EQ(got.size(), pairs->size());  // No duplicates.
  }
}

TEST(DistanceJoinTest, TwoTreeJoinMatchesBruteForce) {
  JoinFixture friendly;
  JoinFixture hostile;
  BuildFixture(&friendly, 3, 300);
  BuildFixture(&hostile, 4, 250);
  DistanceJoinOptions options;
  options.delta = 1.5;
  options.time_window = Interval(0.0, 30.0);
  QueryStats stats;
  auto pairs = DistanceJoin(*friendly.tree, *hostile.tree, options, &stats);
  ASSERT_TRUE(pairs.ok());
  std::set<PairKey> got;
  for (const auto& p : *pairs) got.insert(KeyOf(p));
  EXPECT_EQ(got, BruteForceJoin(friendly.data, hostile.data, options.delta,
                                options.time_window, /*self=*/false));
}

TEST(DistanceJoinTest, NodesReadAtMostOncePerTree) {
  JoinFixture fx;
  BuildFixture(&fx, 5, 2000);
  DistanceJoinOptions options;
  options.delta = 2.0;
  QueryStats stats;
  auto pairs = SelfDistanceJoin(*fx.tree, options, &stats);
  ASSERT_TRUE(pairs.ok());
  EXPECT_LE(stats.node_reads, fx.tree->num_nodes());
}

TEST(DistanceJoinTest, EmptyWindowYieldsNothingCheaply) {
  JoinFixture fx;
  BuildFixture(&fx, 6, 500);
  DistanceJoinOptions options;
  options.delta = 5.0;
  options.time_window = Interval(100.0, 200.0);  // Beyond all motions.
  QueryStats stats;
  auto pairs = SelfDistanceJoin(*fx.tree, options, &stats);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
  EXPECT_LE(stats.node_reads, 2u);  // Roots only.
}

TEST(DistanceJoinTest, MismatchedDimsRejected) {
  PageFile f2;
  PageFile f3;
  RTree::Options o2;
  RTree::Options o3;
  o3.dims = 3;
  auto t2 = RTree::Create(&f2, o2);
  auto t3 = RTree::Create(&f3, o3);
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(t3.ok());
  QueryStats stats;
  EXPECT_TRUE(DistanceJoin(**t2, **t3, DistanceJoinOptions(), &stats)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace dqmo
