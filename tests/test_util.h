// Shared helpers for the DQMO test suite: random geometry generators and
// brute-force reference implementations that the indexed/incremental
// algorithms are checked against.
#ifndef DQMO_TESTS_TEST_UTIL_H_
#define DQMO_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"
#include "geom/box.h"
#include "geom/segment.h"
#include "geom/trajectory.h"
#include "motion/motion_segment.h"
#include "rtree/layout.h"

namespace dqmo::testing {

/// Uniform random point in [0, size]^dims.
inline Vec RandomPoint(Rng* rng, int dims, double size) {
  Vec p(dims);
  for (int i = 0; i < dims; ++i) p[i] = rng->Uniform(0.0, size);
  return p;
}

/// Random motion segment within [0, size]^dims and time in [0, horizon],
/// pre-quantized to the stored (float32) form so that expectations match
/// what the index returns bit-for-bit.
inline MotionSegment RandomSegment(Rng* rng, ObjectId oid, int dims,
                                   double size, double horizon,
                                   double max_duration = 2.0) {
  const double t0 = rng->Uniform(0.0, horizon);
  const double dt = rng->Uniform(0.01, max_duration);
  StSegment seg(RandomPoint(rng, dims, size), RandomPoint(rng, dims, size),
                Interval(t0, std::min(horizon, t0 + dt)));
  MotionSegment m(oid, seg);
  m.seg = QuantizeStored(m.seg);
  return m;
}

/// A batch of random segments with object ids 0..n-1.
inline std::vector<MotionSegment> RandomSegments(Rng* rng, int n, int dims,
                                                 double size, double horizon,
                                                 double max_duration = 2.0) {
  std::vector<MotionSegment> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(RandomSegment(rng, static_cast<ObjectId>(i), dims, size,
                                horizon, max_duration));
  }
  return out;
}

/// Random space-time query box.
inline StBox RandomQueryBox(Rng* rng, int dims, double size, double horizon,
                            double max_side = 30.0, double max_dt = 5.0) {
  Box spatial(dims);
  for (int i = 0; i < dims; ++i) {
    const double lo = rng->Uniform(0.0, size);
    spatial.extent(i) = Interval(lo, lo + rng->Uniform(0.1, max_side));
  }
  const double t0 = rng->Uniform(0.0, horizon);
  return StBox(spatial, Interval(t0, t0 + rng->Uniform(0.0, max_dt)));
}

/// Brute-force exact range query (reference for RTree::RangeSearch).
inline std::vector<MotionSegment> BruteForceRange(
    const std::vector<MotionSegment>& data, const StBox& q) {
  std::vector<MotionSegment> out;
  for (const MotionSegment& m : data) {
    if (m.seg.Intersects(q)) out.push_back(m);
  }
  return out;
}

/// Brute-force bounding-box range query.
inline std::vector<MotionSegment> BruteForceRangeBb(
    const std::vector<MotionSegment>& data, const StBox& q) {
  std::vector<MotionSegment> out;
  for (const MotionSegment& m : data) {
    if (QuantizeOutward(m.Bounds()).Overlaps(q)) out.push_back(m);
  }
  return out;
}

/// Canonical key set of a result list (for set comparisons).
inline std::set<MotionSegment::Key> KeysOf(
    const std::vector<MotionSegment>& segments) {
  std::set<MotionSegment::Key> keys;
  for (const MotionSegment& m : segments) keys.insert(m.key());
  return keys;
}

}  // namespace dqmo::testing

#endif  // DQMO_TESTS_TEST_UTIL_H_
