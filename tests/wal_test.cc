// Tests for the write-ahead log: framing round-trips, group commit, the
// torn-tail contract (truncate-at-EOF damage, reject mid-log holes), and
// LSN sequencing across reopen and reset.
#include "storage/wal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "geom/segment.h"
#include "motion/motion_segment.h"
#include "storage/io_stats.h"

namespace dqmo {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

MotionSegment Seg(ObjectId oid, double x, double t) {
  return MotionSegment(
      oid, StSegment(Vec(x, x + 1.0), Vec(x + 2.0, x + 3.0),
                     Interval(t, t + 1.0)));
}

void ExpectSegEq(const MotionSegment& a, const MotionSegment& b) {
  EXPECT_EQ(a.oid, b.oid);
  EXPECT_EQ(a.seg.dims(), b.seg.dims());
  EXPECT_EQ(a.seg.time.lo, b.seg.time.lo);
  EXPECT_EQ(a.seg.time.hi, b.seg.time.hi);
  for (int d = 0; d < a.seg.dims(); ++d) {
    EXPECT_EQ(a.seg.p0[d], b.seg.p0[d]);
    EXPECT_EQ(a.seg.p1[d], b.seg.p1[d]);
  }
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  if (!bytes.empty()) {
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

TEST(WalTest, MissingFileScansEmpty) {
  auto scan = ScanWal(TempPath("wal_never_created.wal"));
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->last_lsn, 0u);
  EXPECT_FALSE(scan->torn_tail);
}

TEST(WalTest, RoundTripsRecordsBitForBit) {
  const std::string path = TempPath("wal_roundtrip.wal");
  std::remove(path.c_str());
  std::vector<MotionSegment> segs;
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    for (int i = 0; i < 7; ++i) {
      segs.push_back(Seg(static_cast<ObjectId>(100 + i), 0.5 * i, 1.0 + i));
      auto lsn = w.AppendInsert(segs.back());
      ASSERT_TRUE(lsn.ok());
      EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
    }
    auto marker = w.AppendCheckpoint(7, 7);
    ASSERT_TRUE(marker.ok());
    EXPECT_EQ(*marker, 8u);
    ASSERT_TRUE(w.Sync().ok());
    EXPECT_EQ(w.synced_lsn(), 8u);
    EXPECT_EQ(w.pending_records(), 0u);
  }
  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 8u);
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_EQ(scan->last_lsn, 8u);
  for (int i = 0; i < 7; ++i) {
    const WalRecord& rec = scan->records[static_cast<size_t>(i)];
    EXPECT_EQ(rec.lsn, static_cast<uint64_t>(i + 1));
    ASSERT_EQ(rec.type, WalRecordType::kInsert);
    ExpectSegEq(rec.motion, segs[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(scan->records[7].type, WalRecordType::kCheckpoint);
  EXPECT_EQ(scan->records[7].checkpoint_lsn, 7u);
  EXPECT_EQ(scan->records[7].checkpoint_segments, 7u);
  std::remove(path.c_str());
}

TEST(WalTest, GroupCommitBuffersUntilSync) {
  const std::string path = TempPath("wal_group.wal");
  std::remove(path.c_str());
  WalWriter w;
  IoStats stats;
  ASSERT_TRUE(w.Open(path, &stats).ok());
  ASSERT_TRUE(w.AppendInsert(Seg(1, 0.0, 1.0)).ok());
  ASSERT_TRUE(w.AppendInsert(Seg(2, 1.0, 2.0)).ok());
  EXPECT_EQ(w.pending_records(), 2u);
  EXPECT_EQ(w.synced_lsn(), 0u);
  {
    // Nothing on disk yet: the batch lives in memory until Sync.
    auto scan = ScanWal(path);
    ASSERT_TRUE(scan.ok());
    EXPECT_TRUE(scan->records.empty());
  }
  ASSERT_TRUE(w.Sync().ok());
  EXPECT_EQ(w.synced_lsn(), 2u);
  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 2u);
  // WAL I/O is accounted separately from page I/O.
  EXPECT_EQ(stats.wal_appends, 2u);
  EXPECT_EQ(stats.wal_syncs, 1u);
  EXPECT_EQ(stats.physical_reads, 0u);
  EXPECT_EQ(stats.physical_writes, 0u);
  // An empty Sync is a no-op, not another sync.
  ASSERT_TRUE(w.Sync().ok());
  EXPECT_EQ(stats.wal_syncs, 1u);
  std::remove(path.c_str());
}

TEST(WalTest, ReopenContinuesLsnSequence) {
  const std::string path = TempPath("wal_reopen.wal");
  std::remove(path.c_str());
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    ASSERT_TRUE(w.AppendInsert(Seg(1, 0.0, 1.0)).ok());
    ASSERT_TRUE(w.AppendInsert(Seg(2, 1.0, 2.0)).ok());
    ASSERT_TRUE(w.Sync().ok());
  }
  WalWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  EXPECT_EQ(w.next_lsn(), 3u);
  EXPECT_EQ(w.synced_lsn(), 2u);
  auto lsn = w.AppendInsert(Seg(3, 2.0, 3.0));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  ASSERT_TRUE(w.Sync().ok());
  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->last_lsn, 3u);
  std::remove(path.c_str());
}

TEST(WalTest, MinNextLsnFloorsFreshAndReopenedLogs) {
  const std::string path = TempPath("wal_floor.wal");
  std::remove(path.c_str());
  WalWriter w;
  WalWriter::Options options;
  options.min_next_lsn = 41;
  ASSERT_TRUE(w.Open(path, nullptr, options).ok());
  EXPECT_EQ(w.next_lsn(), 41u);
  auto lsn = w.AppendInsert(Seg(1, 0.0, 1.0));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 41u);
  ASSERT_TRUE(w.Sync().ok());
  // The scanned log's own sequence wins when it is ahead of the floor.
  WalWriter w2;
  options.min_next_lsn = 5;
  ASSERT_TRUE(w2.Open(path, nullptr, options).ok());
  EXPECT_EQ(w2.next_lsn(), 42u);
  std::remove(path.c_str());
}

TEST(WalTest, ResetEmptiesLogAndKeepsLsnSequence) {
  const std::string path = TempPath("wal_reset.wal");
  std::remove(path.c_str());
  WalWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  ASSERT_TRUE(w.AppendInsert(Seg(1, 0.0, 1.0)).ok());
  ASSERT_TRUE(w.AppendInsert(Seg(2, 1.0, 2.0)).ok());
  ASSERT_TRUE(w.Sync().ok());
  ASSERT_TRUE(w.Reset().ok());
  {
    auto scan = ScanWal(path);
    ASSERT_TRUE(scan.ok());
    EXPECT_TRUE(scan->records.empty());
  }
  auto lsn = w.AppendInsert(Seg(3, 2.0, 3.0));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);  // Sequence continued, never reused.
  ASSERT_TRUE(w.Sync().ok());
  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].lsn, 3u);
  std::remove(path.c_str());
}

TEST(WalTornTail, EveryTruncationOffsetRecoversCleanly) {
  // The acceptance bar: a WAL whose tail is cut at EVERY possible byte
  // offset scans without error, delivering exactly the records that lie
  // wholly before the cut — and a writer reopening it truncates the tear
  // and appends cleanly after.
  const std::string path = TempPath("wal_torn_master.wal");
  std::remove(path.c_str());
  std::vector<size_t> record_ends;  // Byte offset after each record.
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          w.AppendInsert(Seg(static_cast<ObjectId>(i + 1), 0.5 * i, 1.0 + i))
              .ok());
      ASSERT_TRUE(w.Sync().ok());
      record_ends.push_back(ReadAll(path).size());
    }
  }
  const std::vector<uint8_t> master = ReadAll(path);
  const std::string cut_path = TempPath("wal_torn_cut.wal");
  for (size_t cut = 0; cut < master.size(); ++cut) {
    SCOPED_TRACE(cut);
    WriteAll(cut_path,
             std::vector<uint8_t>(master.begin(),
                                  master.begin() + static_cast<long>(cut)));
    auto scan = ScanWal(cut_path);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    size_t expect_records = 0;
    for (const size_t end : record_ends) {
      if (end <= cut) ++expect_records;
    }
    EXPECT_EQ(scan->records.size(), expect_records);
    EXPECT_EQ(scan->last_lsn, expect_records);
    // Torn iff the cut is not at a record (or header) boundary.
    const bool at_boundary =
        cut == 0 || cut == 16 ||
        std::find(record_ends.begin(), record_ends.end(), cut) !=
            record_ends.end();
    EXPECT_EQ(scan->torn_tail, !at_boundary);

    // A writer opening the torn log truncates the tear and appends after
    // the surviving prefix.
    WalWriter w;
    ASSERT_TRUE(w.Open(cut_path).ok());
    EXPECT_EQ(w.next_lsn(), expect_records + 1);
    ASSERT_TRUE(
        w.AppendInsert(Seg(999, 50.0, 50.0)).ok());
    ASSERT_TRUE(w.Sync().ok());
    w.Close();
    auto rescan = ScanWal(cut_path);
    ASSERT_TRUE(rescan.ok()) << rescan.status().ToString();
    ASSERT_EQ(rescan->records.size(), expect_records + 1);
    EXPECT_FALSE(rescan->torn_tail);
    EXPECT_EQ(rescan->records.back().motion.oid, 999u);
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST(WalCorruption, MidLogDamageFailsWithTypedStatus) {
  // Damage to any record that is FOLLOWED by a well-formed record is a
  // hole, not a tear: replaying past it would drop acknowledged inserts,
  // so the scan must refuse with Corruption.
  const std::string path = TempPath("wal_midlog.wal");
  std::remove(path.c_str());
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          w.AppendInsert(Seg(static_cast<ObjectId>(i + 1), 0.5 * i, 1.0 + i))
              .ok());
    }
    ASSERT_TRUE(w.Sync().ok());
  }
  const std::vector<uint8_t> master = ReadAll(path);
  // Every record is 17 + 56 = 73 bytes here (2-d insert); damage a byte of
  // the first and of the middle record: payloads, CRC field, length field.
  for (const size_t offset : {16u + 4u, 16u + 30u, 16u + 0u,
                              16u + 73u + 30u, 16u + 73u + 8u}) {
    SCOPED_TRACE(offset);
    std::vector<uint8_t> damaged = master;
    ASSERT_LT(offset, damaged.size());
    damaged[offset] ^= 0x01;
    WriteAll(path, damaged);
    auto scan = ScanWal(path);
    EXPECT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();
    // A writer must refuse such a log too — never truncate a hole away.
    WalWriter w;
    EXPECT_TRUE(w.Open(path).IsCorruption());
  }
  // The FINAL record's at-rest damage is indistinguishable from a torn
  // write and is (documented to be) truncated.
  std::vector<uint8_t> damaged = master;
  damaged[16 + 2 * 73 + 30] ^= 0x01;
  WriteAll(path, damaged);
  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->records.size(), 2u);
  EXPECT_TRUE(scan->torn_tail);
  std::remove(path.c_str());
}

TEST(WalCorruption, ForeignAndUnsupportedHeadersRejected) {
  const std::string path = TempPath("wal_header.wal");
  // Zero-length: empty scan, not an error (crash before header write).
  WriteAll(path, {});
  {
    auto scan = ScanWal(path);
    ASSERT_TRUE(scan.ok());
    EXPECT_TRUE(scan->records.empty());
    EXPECT_FALSE(scan->torn_tail);
  }
  // Partial header: torn creation, still scans empty.
  WriteAll(path, {0x44, 0x51, 0x4d});
  {
    auto scan = ScanWal(path);
    ASSERT_TRUE(scan.ok());
    EXPECT_TRUE(scan->records.empty());
    EXPECT_TRUE(scan->torn_tail);
    EXPECT_EQ(scan->torn_bytes, 3u);
  }
  // A writer opening either starts a fresh log.
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    EXPECT_EQ(w.next_lsn(), 1u);
  }
  // Foreign magic: typed Corruption.
  std::vector<uint8_t> foreign(32, 0xAA);
  WriteAll(path, foreign);
  EXPECT_TRUE(ScanWal(path).status().IsCorruption());
  // Right magic, future version: typed NotSupported.
  std::vector<uint8_t> future;
  const uint64_t magic = 0x4451'4d4f'5741'4c31ULL;
  future.resize(16, 0);
  std::memcpy(future.data(), &magic, 8);
  future[8] = 99;
  WriteAll(path, future);
  EXPECT_TRUE(ScanWal(path).status().IsNotSupported());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dqmo
