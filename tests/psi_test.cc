// Tests for Parametric Space Indexing: parameter round trips, query
// correctness vs brute force over the stored form, and the NSI-vs-PSI
// locality comparison the paper cites.
#include <gtest/gtest.h>

#include "common/random.h"
#include "psi/psi.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::KeysOf;
using ::dqmo::testing::RandomSegments;

TEST(PsiTest, CreateValidatesDims) {
  PageFile file;
  PsiIndex::Options options;
  options.dims = 0;
  EXPECT_TRUE(PsiIndex::Create(&file, options).status().IsInvalidArgument());
  options.dims = 4;  // 2*4 exceeds the dimensional cap.
  EXPECT_TRUE(PsiIndex::Create(&file, options).status().IsInvalidArgument());
}

TEST(PsiTest, ParametricRoundTripIsExactWithoutQuantization) {
  PageFile file;
  auto index = PsiIndex::Create(&file, PsiIndex::Options());
  ASSERT_TRUE(index.ok());
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const MotionSegment m =
        dqmo::testing::RandomSegment(&rng, static_cast<ObjectId>(i), 2, 100,
                                     100);
    const MotionSegment pm = (*index)->ToParametric(m);
    EXPECT_EQ(pm.seg.dims(), 4);
    EXPECT_EQ(pm.seg.p0, pm.seg.p1);  // A parametric *point*.
    const MotionSegment back = (*index)->FromParametric(pm);
    EXPECT_EQ(back.oid, m.oid);
    EXPECT_EQ(back.seg.time, m.seg.time);
    for (int d = 0; d < 2; ++d) {
      EXPECT_NEAR(back.seg.p0[d], m.seg.p0[d], 1e-9);
      EXPECT_NEAR(back.seg.p1[d], m.seg.p1[d], 1e-9);
    }
  }
}

TEST(PsiTest, VelocityParameterMatchesSegmentVelocity) {
  PageFile file;
  auto index = PsiIndex::Create(&file, PsiIndex::Options());
  ASSERT_TRUE(index.ok());
  const MotionSegment m = MotionSegment::FromUpdate(
      1, Vec(10, 20), Vec(1.5, -0.5), Interval(4.0, 6.0));
  const MotionSegment pm = (*index)->ToParametric(m);
  EXPECT_DOUBLE_EQ(pm.seg.p0[2], 1.5);
  EXPECT_DOUBLE_EQ(pm.seg.p0[3], -0.5);
  // a = p0 - v * t_l (reference time 0).
  EXPECT_DOUBLE_EQ(pm.seg.p0[0], 10.0 - 1.5 * 4.0);
  EXPECT_DOUBLE_EQ(pm.seg.p0[1], 20.0 + 0.5 * 4.0);
}

class PsiSearch : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    auto index = PsiIndex::Create(&file_, PsiIndex::Options());
    ASSERT_TRUE(index.ok());
    index_ = std::move(index).value();
    Rng rng(GetParam());
    const auto raw = RandomSegments(&rng, 3000, 2, 100, 100);
    for (const auto& m : raw) {
      ASSERT_TRUE(index_->Insert(m).ok());
      // The stored-and-reconstructed form is what queries see.
      MotionSegment pm = index_->ToParametric(m);
      pm.seg = QuantizeStored(pm.seg);
      stored_.push_back(index_->FromParametric(pm));
    }
    rng_ = Rng(GetParam() + 1);
  }

  PageFile file_;
  std::unique_ptr<PsiIndex> index_;
  std::vector<MotionSegment> stored_;
  Rng rng_{0};
};

TEST_P(PsiSearch, RangeSearchMatchesBruteForce) {
  for (int q = 0; q < 50; ++q) {
    const StBox query = dqmo::testing::RandomQueryBox(&rng_, 2, 100, 100);
    QueryStats stats;
    auto result = index_->RangeSearch(query, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(KeysOf(*result),
              KeysOf(dqmo::testing::BruteForceRange(stored_, query)));
    EXPECT_GT(stats.node_reads, 0u);
  }
}

TEST_P(PsiSearch, ResultsCarryNativeGeometry) {
  const StBox query(Box(Interval(20, 60), Interval(20, 60)),
                    Interval(20, 60));
  QueryStats stats;
  auto result = index_->RangeSearch(query, &stats);
  ASSERT_TRUE(result.ok());
  for (const MotionSegment& m : *result) {
    EXPECT_EQ(m.seg.dims(), 2);
    EXPECT_TRUE(m.seg.Intersects(query));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsiSearch, ::testing::Values(81, 82));

TEST(PsiTest, NsiOutperformsPsiOnLocalizedQueries) {
  // The paper's Sect. 2 comparison: fast movers scatter in parametric
  // space even when they are spatially collocated at query time, so PSI
  // visits more nodes for localized spatio-temporal windows.
  Rng rng(91);
  const auto data = RandomSegments(&rng, 20000, 2, 100, 100);

  PageFile nsi_file;
  auto nsi = RTree::Create(&nsi_file, RTree::Options());
  ASSERT_TRUE(nsi.ok());
  PageFile psi_file;
  auto psi = PsiIndex::Create(&psi_file, PsiIndex::Options());
  ASSERT_TRUE(psi.ok());
  for (const auto& m : data) {
    ASSERT_TRUE((*nsi)->Insert(m).ok());
    ASSERT_TRUE((*psi)->Insert(m).ok());
  }

  QueryStats nsi_stats;
  QueryStats psi_stats;
  for (int q = 0; q < 60; ++q) {
    const double x = rng.Uniform(0, 90);
    const double y = rng.Uniform(0, 90);
    const double t = rng.Uniform(0, 95);
    const StBox query(Box(Interval(x, x + 10), Interval(y, y + 10)),
                      Interval(t, t + 2.0));
    auto a = (*nsi)->RangeSearch(query, &nsi_stats);
    auto b = (*psi)->RangeSearch(query, &psi_stats);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Same answers (modulo the independent quantization of the two
    // representations, which the generous margins here avoid; compare
    // sizes rather than exact keys to stay robust at box boundaries).
    EXPECT_NEAR(static_cast<double>(a->size()),
                static_cast<double>(b->size()),
                2.0 + 0.01 * static_cast<double>(a->size()));
  }
  EXPECT_LT(nsi_stats.node_reads, psi_stats.node_reads);
}

}  // namespace
}  // namespace dqmo
