// Edge-case tests for unbounded (infinite) intervals and boxes — the
// open-ended snapshot queries of Sect. 4.2 rely on these behaving exactly
// like their finite counterparts.
#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/box.h"
#include "geom/interval.h"
#include "query/npdq.h"
#include "test_util.h"

namespace dqmo {
namespace {

TEST(InfinityIntervalTest, AllContainsEverythingFinite) {
  const Interval all = Interval::All();
  EXPECT_TRUE(all.Contains(0.0));
  EXPECT_TRUE(all.Contains(1e308));
  EXPECT_TRUE(all.Contains(-1e308));
  EXPECT_TRUE(all.Contains(Interval(-1e100, 1e100)));
  EXPECT_FALSE(all.empty());
}

TEST(InfinityIntervalTest, OpenEndedIntersectionsBehave) {
  const Interval future(5.0, kInf);
  EXPECT_EQ(future.Intersect(Interval(0.0, 10.0)), Interval(5.0, 10.0));
  EXPECT_EQ(future.Intersect(Interval(7.0, kInf)), Interval(7.0, kInf));
  EXPECT_TRUE(future.Intersect(Interval(0.0, 4.0)).empty());
  EXPECT_TRUE(future.Overlaps(Interval(4.0, 5.0)));  // Shared boundary.
}

TEST(InfinityIntervalTest, ContainmentWithOpenEnds) {
  const Interval future(5.0, kInf);
  EXPECT_TRUE(future.Contains(Interval(6.0, 1e30)));
  EXPECT_TRUE(future.Contains(Interval(5.0, kInf)));
  EXPECT_FALSE(future.Contains(Interval(4.0, 6.0)));
  EXPECT_TRUE(Interval::All().Contains(future));
  EXPECT_FALSE(future.Contains(Interval::All()));
}

TEST(InfinityIntervalTest, CoverWithOpenEnds) {
  const Interval past(-kInf, 3.0);
  const Interval future(5.0, kInf);
  EXPECT_EQ(past.Cover(future), Interval::All());
}

TEST(InfinityIntervalTest, LengthOfUnboundedIsInf) {
  EXPECT_EQ(Interval(0.0, kInf).length(), kInf);
  EXPECT_EQ(Interval::All().length(), kInf);
}

TEST(InfinityBoxTest, OpenEndedStBoxOverlap) {
  // The open-ended snapshot of the NPDQ experiments.
  const StBox open(Box(Interval(10, 20), Interval(10, 20)),
                   Interval(50.0, kInf));
  const StBox past_motion(Box(Interval(12, 14), Interval(12, 14)),
                          Interval(10.0, 20.0));
  const StBox live_motion(Box(Interval(12, 14), Interval(12, 14)),
                          Interval(49.0, 51.0));
  EXPECT_FALSE(open.Overlaps(past_motion));
  EXPECT_TRUE(open.Overlaps(live_motion));
}

TEST(InfinityQueryTest, OpenEndedRangeSearchMatchesBruteForce) {
  PageFile file;
  auto tree = RTree::Create(&file, RTree::Options());
  ASSERT_TRUE(tree.ok());
  Rng rng(77);
  const auto data =
      dqmo::testing::RandomSegments(&rng, 2000, 2, 100, 100);
  for (const auto& m : data) ASSERT_TRUE((*tree)->Insert(m).ok());
  for (int q = 0; q < 30; ++q) {
    const double x = rng.Uniform(0, 80);
    const double y = rng.Uniform(0, 80);
    const double t = rng.Uniform(0, 100);
    const StBox query(Box(Interval(x, x + 15), Interval(y, y + 15)),
                      Interval(t, kInf));
    QueryStats stats;
    auto result = (*tree)->RangeSearch(query, &stats);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(dqmo::testing::KeysOf(*result),
              dqmo::testing::KeysOf(
                  dqmo::testing::BruteForceRange(data, query)));
  }
}

TEST(InfinityQueryTest, DiscardableHandlesOpenEndedQueries) {
  // Both temporal conditions of Lemma 1 are vacuous for consecutive
  // open-ended snapshots; pruning reduces to spatial containment.
  const StBox p(Box(Interval(0, 10), Interval(0, 10)),
                Interval(5.0, kInf));
  const StBox q(Box(Interval(1, 11), Interval(0, 10)),
                Interval(5.5, kInf));
  ChildEntry covered;
  covered.bounds = StBox(Box(Interval(2, 9), Interval(2, 9)),
                         Interval(0.0, 100.0));
  covered.start_times = Interval(0.0, 99.0);
  covered.end_times = Interval(1.0, 100.0);
  EXPECT_TRUE(
      Discardable(p, q, covered, SpatialPruning::kIntersectionContained));
  ChildEntry escaping = covered;
  escaping.bounds.spatial.extent(0) = Interval(2.0, 10.5);  // Pokes out.
  EXPECT_FALSE(
      Discardable(p, q, escaping, SpatialPruning::kIntersectionContained));
}

}  // namespace
}  // namespace dqmo
