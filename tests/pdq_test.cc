// Tests for Predictive Dynamic Queries (Sect. 4.1): frame-by-frame
// equivalence with naive snapshot evaluation, exactly-once delivery,
// visibility times, I/O optimality, and update management.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "query/pdq.h"
#include "test_util.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"

namespace dqmo {
namespace {

using ::dqmo::testing::KeysOf;
using ::dqmo::testing::RandomSegments;

struct PdqFixtureData {
  PageFile file;
  std::unique_ptr<RTree> tree;
  std::vector<MotionSegment> data;
};

void BuildFixture(PdqFixtureData* fx, uint64_t seed, int n = 4000) {
  auto tree = RTree::Create(&fx->file, RTree::Options());
  ASSERT_TRUE(tree.ok());
  fx->tree = std::move(tree).value();
  Rng rng(seed);
  fx->data = RandomSegments(&rng, n, 2, 100, 100);
  for (const auto& m : fx->data) ASSERT_TRUE(fx->tree->Insert(m).ok());
}

QueryTrajectory LineTrajectory(Vec from, Vec to, double t0, double t1,
                               double side) {
  std::vector<KeySnapshot> keys;
  keys.emplace_back(t0, Box::Centered(from, side));
  keys.emplace_back(t1, Box::Centered(to, side));
  return QueryTrajectory::Make(std::move(keys)).value();
}

TEST(PdqTest, MakeRejectsBadArguments) {
  PdqFixtureData fx;
  BuildFixture(&fx, 1, 100);
  EXPECT_TRUE(PredictiveDynamicQuery::Make(
                  nullptr, LineTrajectory(Vec(0, 0), Vec(1, 1), 0, 1, 2))
                  .status()
                  .IsInvalidArgument());
  // 3-d trajectory against the 2-d tree.
  std::vector<KeySnapshot> keys;
  keys.emplace_back(0.0, Box::Centered(Vec(0, 0, 0), 2.0));
  keys.emplace_back(1.0, Box::Centered(Vec(1, 1, 1), 2.0));
  EXPECT_TRUE(PredictiveDynamicQuery::Make(
                  fx.tree.get(),
                  QueryTrajectory::Make(std::move(keys)).value())
                  .status()
                  .IsInvalidArgument());
}

TEST(PdqTest, FramesRejectNonMonotoneTime) {
  PdqFixtureData fx;
  BuildFixture(&fx, 2, 200);
  auto pdq = PredictiveDynamicQuery::Make(
      fx.tree.get(), LineTrajectory(Vec(10, 10), Vec(20, 10), 0, 10, 8));
  ASSERT_TRUE(pdq.ok());
  ASSERT_TRUE((*pdq)->Frame(5.0, 6.0).ok());
  EXPECT_TRUE((*pdq)->GetNext(4.0, 5.0).status().IsInvalidArgument());
  EXPECT_TRUE((*pdq)->GetNext(7.0, 6.0).status().IsInvalidArgument());
}

// Core correctness: PDQ delivers, per frame, exactly the objects whose
// exact trajectory enters the moving window during that frame and that were
// not visible in an earlier frame — checked against brute force over the
// data with trapezoid (moving-window) semantics. Note the naive snapshot
// *rectangle* of Definition 3 over-approximates the moving window within a
// frame (it covers the window's whole swept extent for the frame's whole
// duration), so the naive baseline may admit extra objects; PDQ is exact.
class PdqEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PdqEquivalence, MatchesBruteForceMovingWindowSemantics) {
  PdqFixtureData fx;
  BuildFixture(&fx, GetParam());
  Rng rng(GetParam() + 99);

  QueryWorkloadOptions qopt;
  qopt.overlap = 0.8;
  qopt.num_snapshots = 30;
  for (int trial = 0; trial < 5; ++trial) {
    auto workload = GenerateDynamicQuery(qopt, &rng);
    ASSERT_TRUE(workload.ok());
    auto pdq =
        PredictiveDynamicQuery::Make(fx.tree.get(), workload->trajectory);
    ASSERT_TRUE(pdq.ok());

    // Brute-force visibility times of every object under the moving window.
    std::vector<std::pair<MotionSegment::Key, TimeSet>> visibility;
    for (const auto& m : fx.data) {
      TimeSet times = workload->trajectory.OverlapTimes(m.seg);
      if (!times.empty()) visibility.emplace_back(m.key(), std::move(times));
    }

    std::set<MotionSegment::Key> seen;
    std::set<MotionSegment::Key> pdq_all;
    std::set<MotionSegment::Key> ever_visible;
    for (int i = 0; i < workload->num_frames(); ++i) {
      const double t0 = workload->frame_times[static_cast<size_t>(i)];
      const double t1 = workload->frame_times[static_cast<size_t>(i) + 1];
      auto frame = (*pdq)->Frame(t0, t1);
      ASSERT_TRUE(frame.ok());

      std::set<MotionSegment::Key> fresh;
      for (const auto& item : *frame) {
        EXPECT_TRUE(pdq_all.insert(item.motion.key()).second)
            << "object returned twice by PDQ";
        fresh.insert(item.motion.key());
      }
      std::set<MotionSegment::Key> expected_fresh;
      for (const auto& [key, times] : visibility) {
        if (!times.Overlaps(Interval(t0, t1))) continue;
        ever_visible.insert(key);
        if (!seen.contains(key)) expected_fresh.insert(key);
      }
      EXPECT_EQ(fresh, expected_fresh) << "frame " << i;
      for (const auto& key : expected_fresh) seen.insert(key);
    }
    EXPECT_EQ(pdq_all, ever_visible);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdqEquivalence,
                         ::testing::Values(71, 72, 73));

TEST(PdqTest, VisibleTimesMatchTrajectoryOverlap) {
  PdqFixtureData fx;
  BuildFixture(&fx, 81);
  Rng rng(82);
  QueryWorkloadOptions qopt;
  qopt.overlap = 0.9;
  qopt.num_snapshots = 20;
  auto workload = GenerateDynamicQuery(qopt, &rng);
  ASSERT_TRUE(workload.ok());
  auto pdq =
      PredictiveDynamicQuery::Make(fx.tree.get(), workload->trajectory);
  ASSERT_TRUE(pdq.ok());
  auto results = (*pdq)->Frame(workload->frame_times.front(),
                               workload->frame_times.back());
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
  for (const auto& item : *results) {
    const TimeSet expected =
        workload->trajectory.OverlapTimes(item.motion.seg);
    EXPECT_EQ(item.visible_times, expected);
  }
}

TEST(PdqTest, EachNodeReadAtMostOnceWithoutUpdates) {
  // The paper's headline property: total PDQ I/O over all frames is
  // bounded by the number of distinct nodes, independent of frame count.
  PdqFixtureData fx;
  BuildFixture(&fx, 91);
  Rng rng(92);
  QueryWorkloadOptions qopt;
  qopt.overlap = 0.99;
  qopt.num_snapshots = 40;
  auto workload = GenerateDynamicQuery(qopt, &rng);
  ASSERT_TRUE(workload.ok());
  auto pdq =
      PredictiveDynamicQuery::Make(fx.tree.get(), workload->trajectory);
  ASSERT_TRUE(pdq.ok());
  for (int i = 0; i < workload->num_frames(); ++i) {
    ASSERT_TRUE((*pdq)
                    ->Frame(workload->frame_times[static_cast<size_t>(i)],
                            workload->frame_times[static_cast<size_t>(i) + 1])
                    .ok());
  }
  EXPECT_LE((*pdq)->stats().node_reads, fx.tree->num_nodes());
}

TEST(PdqTest, FinerFramesDoNotIncreaseIo) {
  // Doubling the frame rate must not change PDQ disk accesses (the naive
  // method's cost would double).
  PdqFixtureData fx;
  BuildFixture(&fx, 93);
  const QueryTrajectory traj =
      LineTrajectory(Vec(20, 50), Vec(60, 50), 10.0, 15.0, 8.0);

  uint64_t reads_coarse = 0;
  uint64_t reads_fine = 0;
  {
    auto pdq = PredictiveDynamicQuery::Make(fx.tree.get(), traj);
    ASSERT_TRUE(pdq.ok());
    for (double t = 10.0; t < 15.0; t += 0.5) {
      ASSERT_TRUE((*pdq)->Frame(t, t + 0.5).ok());
    }
    reads_coarse = (*pdq)->stats().node_reads;
  }
  {
    auto pdq = PredictiveDynamicQuery::Make(fx.tree.get(), traj);
    ASSERT_TRUE(pdq.ok());
    for (double t = 10.0; t < 15.0; t += 0.05) {
      ASSERT_TRUE((*pdq)->Frame(t, t + 0.05).ok());
    }
    reads_fine = (*pdq)->stats().node_reads;
  }
  EXPECT_EQ(reads_fine, reads_coarse);
}

TEST(PdqTest, SpdqInflatedTrajectoryCoversDeviatedObserver) {
  // SPDQ: the observer deviates from the predicted path by <= delta; the
  // inflated-window PDQ must retrieve everything the deviated observer
  // sees.
  PdqFixtureData fx;
  BuildFixture(&fx, 95);
  const double delta = 1.5;
  const QueryTrajectory predicted =
      LineTrajectory(Vec(20, 50), Vec(60, 50), 10.0, 15.0, 8.0);
  // Actual path drifts diagonally by up to delta.
  const QueryTrajectory actual =
      LineTrajectory(Vec(20, 50 + delta * 0.7), Vec(60, 50 - delta * 0.7),
                     10.0, 15.0, 8.0);
  auto spdq =
      PredictiveDynamicQuery::Make(fx.tree.get(), predicted.Inflate(delta));
  ASSERT_TRUE(spdq.ok());
  std::set<MotionSegment::Key> spdq_keys;
  for (double t = 10.0; t < 15.0; t += 0.25) {
    auto frame = (*spdq)->Frame(t, t + 0.25);
    ASSERT_TRUE(frame.ok());
    for (const auto& item : *frame) spdq_keys.insert(item.motion.key());
  }
  // Ground truth: everything the deviated observer actually sees (brute
  // force, moving-window semantics).
  std::set<MotionSegment::Key> actual_keys;
  for (const auto& m : fx.data) {
    if (!actual.OverlapTimes(m.seg).empty()) actual_keys.insert(m.key());
  }
  EXPECT_TRUE(std::includes(spdq_keys.begin(), spdq_keys.end(),
                            actual_keys.begin(), actual_keys.end()));
}

// ---- Update management (Sect. 4.1) ----

TEST(PdqTest, ConcurrentInsertsAreDelivered) {
  // Insert motions that will enter the query window *ahead* of the
  // observer while the PDQ is running; the query must return them.
  PdqFixtureData fx;
  BuildFixture(&fx, 96, 3000);
  const QueryTrajectory traj =
      LineTrajectory(Vec(10, 50), Vec(70, 50), 10.0, 20.0, 8.0);
  PredictiveDynamicQuery::Options options;
  options.track_updates = true;
  auto pdq = PredictiveDynamicQuery::Make(fx.tree.get(), traj, options);
  ASSERT_TRUE(pdq.ok());

  std::set<MotionSegment::Key> delivered;
  std::vector<MotionSegment> late_inserts;
  Rng rng(961);
  double t = 10.0;
  int batch = 0;
  for (; t < 20.0; t += 0.5) {
    auto frame = (*pdq)->Frame(t, t + 0.5);
    ASSERT_TRUE(frame.ok());
    for (const auto& item : *frame) delivered.insert(item.motion.key());
    if (t < 17.0) {
      // Stationary objects placed on the observer's *future* path.
      for (int j = 0; j < 5; ++j) {
        const double future_t = t + 1.5 + rng.Uniform(0.0, 1.0);
        const Vec where = traj.WindowAt(std::min(19.9, future_t)).Center();
        MotionSegment m(static_cast<ObjectId>(100000 + batch * 10 + j),
                        StSegment(where, where,
                                  Interval(future_t, future_t + 0.8)));
        m.seg = QuantizeStored(m.seg);
        late_inserts.push_back(m);
        ASSERT_TRUE(fx.tree->Insert(m).ok());
      }
      ++batch;
    }
  }
  for (const auto& m : late_inserts) {
    // Every late insert lies inside the future window, so it must have
    // been delivered (unless its visibility ended before insertion, which
    // the construction avoids).
    EXPECT_TRUE(delivered.contains(m.key()))
        << "late-inserted object " << m.oid << " missed by PDQ";
  }
}

TEST(PdqTest, ConcurrentInsertsNeverDuplicated) {
  PdqFixtureData fx;
  BuildFixture(&fx, 97, 3000);
  const QueryTrajectory traj =
      LineTrajectory(Vec(10, 50), Vec(70, 50), 10.0, 20.0, 8.0);
  PredictiveDynamicQuery::Options options;
  options.track_updates = true;
  auto pdq = PredictiveDynamicQuery::Make(fx.tree.get(), traj, options);
  ASSERT_TRUE(pdq.ok());
  Rng rng(971);
  std::multiset<MotionSegment::Key> all;
  for (double t = 10.0; t < 20.0; t += 0.5) {
    // Dense inserts along the whole trajectory to force many splits.
    for (int j = 0; j < 40; ++j) {
      const double at = rng.Uniform(10.0, 20.0);
      const Vec where = traj.WindowAt(at).Center();
      MotionSegment m(
          static_cast<ObjectId>(200000 + static_cast<int>(t * 100) * 100 + j),
          StSegment(where, where, Interval(at, at + 0.5)));
      ASSERT_TRUE(fx.tree->Insert(m).ok());
    }
    auto frame = (*pdq)->Frame(t, t + 0.5);
    ASSERT_TRUE(frame.ok());
    for (const auto& item : *frame) all.insert(item.motion.key());
  }
  for (const auto& key : all) {
    EXPECT_EQ(all.count(key), 1u) << "duplicate delivery";
  }
}

TEST(PdqTest, RebuildPolicyStillCompleteAndUnique) {
  PdqFixtureData fx;
  BuildFixture(&fx, 98, 3000);
  const QueryTrajectory traj =
      LineTrajectory(Vec(10, 50), Vec(70, 50), 10.0, 20.0, 8.0);

  PredictiveDynamicQuery::Options options;
  options.track_updates = true;
  options.update_policy = PredictiveDynamicQuery::UpdatePolicy::kRebuild;
  auto pdq = PredictiveDynamicQuery::Make(fx.tree.get(), traj, options);
  ASSERT_TRUE(pdq.ok());

  Rng rng(981);
  std::multiset<MotionSegment::Key> all;
  std::vector<MotionSegment> late;
  for (double t = 10.0; t < 20.0; t += 1.0) {
    if (t < 17.0) {
      for (int j = 0; j < 30; ++j) {
        const double at = t + 1.5 + rng.Uniform(0.0, 1.0);
        const Vec where = traj.WindowAt(std::min(19.9, at)).Center();
        MotionSegment m(static_cast<ObjectId>(
                            300000 + static_cast<int>(t) * 100 + j),
                        StSegment(where, where, Interval(at, at + 0.8)));
        m.seg = QuantizeStored(m.seg);
        late.push_back(m);
        ASSERT_TRUE(fx.tree->Insert(m).ok());
      }
    }
    auto frame = (*pdq)->Frame(t, t + 1.0);
    ASSERT_TRUE(frame.ok());
    for (const auto& item : *frame) all.insert(item.motion.key());
  }
  for (const auto& key : all) EXPECT_EQ(all.count(key), 1u);
  for (const auto& m : late) EXPECT_TRUE(all.contains(m.key()));
}

TEST(PdqTest, StatsAccumulateAndReset) {
  PdqFixtureData fx;
  BuildFixture(&fx, 99, 1000);
  auto pdq = PredictiveDynamicQuery::Make(
      fx.tree.get(), LineTrajectory(Vec(30, 30), Vec(60, 60), 0.0, 10.0, 10));
  ASSERT_TRUE(pdq.ok());
  ASSERT_TRUE((*pdq)->Frame(0.0, 10.0).ok());
  EXPECT_GT((*pdq)->stats().node_reads, 0u);
  EXPECT_GT((*pdq)->stats().queue_pushes, 0u);
  (*pdq)->ResetStats();
  EXPECT_EQ((*pdq)->stats().node_reads, 0u);
}

}  // namespace
}  // namespace dqmo
