// End-to-end integration tests: a scaled-down version of the paper's
// Sect. 5 experiment, exercising data generation, index build, all three
// query methods, the client cache and the experiment harness together.
#include <gtest/gtest.h>

#include <set>

#include "client/result_cache.h"
#include "harness/experiment.h"
#include "query/npdq.h"
#include "query/pdq.h"
#include "test_util.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"

namespace dqmo {
namespace {

using ::dqmo::testing::KeysOf;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Scaled-down paper setup: 400 objects over 40 time units (~16k
    // segments), shared by all tests in this suite.
    IndexConfig config;
    config.data.num_objects = 400;
    config.data.horizon = 40.0;
    config.data.seed = 1234;
    config.tree.dims = 2;
    config.cache_dir = "";  // No disk cache in tests.
    auto bench = Workbench::Prepare(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench->release();
    auto data = GenerateMotionData(config.data);
    ASSERT_TRUE(data.ok());
    data_ = new std::vector<MotionSegment>(std::move(*data));
    for (auto& m : *data_) m.seg = QuantizeStored(m.seg);
  }

  static void TearDownTestSuite() {
    delete bench_;
    delete data_;
    bench_ = nullptr;
    data_ = nullptr;
  }

  static Workbench* bench_;
  static std::vector<MotionSegment>* data_;
};

Workbench* IntegrationTest::bench_ = nullptr;
std::vector<MotionSegment>* IntegrationTest::data_ = nullptr;

TEST_F(IntegrationTest, IndexMatchesGeneratedData) {
  EXPECT_EQ(bench_->tree()->num_segments(), data_->size());
  EXPECT_TRUE(bench_->tree()->CheckInvariants().ok());
  EXPECT_GE(bench_->tree()->height(), 2);
}

TEST_F(IntegrationTest, AllMethodsAgreeOnADynamicQuery) {
  Rng rng(555);
  QueryWorkloadOptions qopt;
  qopt.horizon = 40.0;
  qopt.overlap = 0.9;
  qopt.num_snapshots = 30;
  auto workload = GenerateDynamicQuery(qopt, &rng);
  ASSERT_TRUE(workload.ok());

  // PDQ (exact moving-window semantics).
  auto pdq =
      PredictiveDynamicQuery::Make(bench_->tree(), workload->trajectory);
  ASSERT_TRUE(pdq.ok());
  std::set<MotionSegment::Key> pdq_keys;
  for (int i = 0; i < workload->num_frames(); ++i) {
    auto frame =
        (*pdq)->Frame(workload->frame_times[static_cast<size_t>(i)],
                      workload->frame_times[static_cast<size_t>(i) + 1]);
    ASSERT_TRUE(frame.ok());
    for (const auto& item : *frame) pdq_keys.insert(item.motion.key());
  }

  // NPDQ with exact leaf semantics + sound pruning.
  NpdqOptions nopt;
  nopt.leaf_semantics = LeafSemantics::kExact;
  nopt.spatial_pruning = SpatialPruning::kNodeContained;
  NonPredictiveDynamicQuery npdq(bench_->tree(), nopt);
  std::set<MotionSegment::Key> npdq_keys;
  for (int i = 0; i < workload->num_frames(); ++i) {
    auto result = npdq.Execute(workload->Frame(i));
    ASSERT_TRUE(result.ok());
    for (const auto& m : *result) npdq_keys.insert(m.key());
  }

  // Naive rectangles per frame (exact leaf test).
  std::set<MotionSegment::Key> naive_keys;
  for (int i = 0; i < workload->num_frames(); ++i) {
    QueryStats stats;
    auto result = bench_->tree()->RangeSearch(workload->Frame(i), &stats);
    ASSERT_TRUE(result.ok());
    for (const auto& m : *result) naive_keys.insert(m.key());
  }

  // NPDQ and naive share rectangle semantics: identical unions.
  EXPECT_EQ(npdq_keys, naive_keys);
  // PDQ (tight trapezoid region) is a subset of the rectangle union, and
  // must equal the brute-force moving-window answer.
  EXPECT_TRUE(std::includes(naive_keys.begin(), naive_keys.end(),
                            pdq_keys.begin(), pdq_keys.end()));
  std::set<MotionSegment::Key> expected_pdq;
  for (const auto& m : *data_) {
    if (!workload->trajectory.OverlapTimes(m.seg).empty()) {
      expected_pdq.insert(m.key());
    }
  }
  EXPECT_EQ(pdq_keys, expected_pdq);
}

TEST_F(IntegrationTest, ClientCacheReconstructsVisibleSetPerFrame) {
  // The full client loop the paper describes: PDQ results go into the
  // disappearance-time cache; at every frame, the cache's visible set must
  // equal the brute-force set of objects in the window at that instant.
  Rng rng(556);
  QueryWorkloadOptions qopt;
  qopt.horizon = 40.0;
  qopt.overlap = 0.95;
  qopt.num_snapshots = 25;
  auto workload = GenerateDynamicQuery(qopt, &rng);
  ASSERT_TRUE(workload.ok());
  auto pdq =
      PredictiveDynamicQuery::Make(bench_->tree(), workload->trajectory);
  ASSERT_TRUE(pdq.ok());

  ResultCache cache;
  for (int i = 0; i < workload->num_frames(); ++i) {
    const double t0 = workload->frame_times[static_cast<size_t>(i)];
    const double t1 = workload->frame_times[static_cast<size_t>(i) + 1];
    auto frame = (*pdq)->Frame(t0, t1);
    ASSERT_TRUE(frame.ok());
    cache.AdvanceTo(t0);
    for (const auto& item : *frame) {
      cache.Insert(item.motion, item.visible_times);
    }
    // Render instant: middle of the frame.
    const double t = 0.5 * (t0 + t1);
    std::set<MotionSegment::Key> expected;
    const Box window = workload->trajectory.WindowAt(t);
    for (const auto& m : *data_) {
      if (m.seg.time.Contains(t) && window.Contains(m.seg.PositionAt(t))) {
        expected.insert(m.key());
      }
    }
    EXPECT_EQ(KeysOf(cache.VisibleAt(t)), expected) << "frame " << i;
  }
  EXPECT_GT(cache.total_insertions(), 0u);
}

TEST_F(IntegrationTest, HarnessSweepShapesMatchPaperClaims) {
  // Reduced Fig. 6/10 shape check: subsequent-query costs of PDQ and NPDQ
  // fall with overlap and beat naive at high overlap; naive is flat.
  SweepOptions sopt;
  sopt.query.horizon = 40.0;
  sopt.query.num_snapshots = 20;
  sopt.num_trajectories = 8;

  sopt.query.overlap = 0.0;
  auto pdq_low = RunPdqPoint(bench_, sopt);
  ASSERT_TRUE(pdq_low.ok()) << pdq_low.status().ToString();
  sopt.query.overlap = 0.9999;
  auto pdq_high = RunPdqPoint(bench_, sopt);
  ASSERT_TRUE(pdq_high.ok());

  // Naive subsequent cost is roughly overlap-independent (same window).
  EXPECT_GT(pdq_low->naive_subsequent.io_total, 0.0);
  EXPECT_GT(pdq_high->naive_subsequent.io_total, 0.0);
  // PDQ subsequent cost beats naive, dramatically at high overlap.
  EXPECT_LT(pdq_high->dq_subsequent.io_total,
            0.25 * pdq_high->naive_subsequent.io_total);
  EXPECT_LT(pdq_low->dq_subsequent.io_total,
            pdq_low->naive_subsequent.io_total);
  // Higher overlap -> cheaper PDQ subsequent queries.
  EXPECT_LT(pdq_high->dq_subsequent.io_total,
            pdq_low->dq_subsequent.io_total + 1e-9);

  sopt.query.overlap = 0.9999;
  auto npdq_high = RunNpdqPoint(bench_, sopt);
  ASSERT_TRUE(npdq_high.ok());
  EXPECT_LT(npdq_high->dq_subsequent.io_total,
            npdq_high->naive_subsequent.io_total);
  // PDQ beats NPDQ at equal overlap (Sect. 5's concluding comparison).
  EXPECT_LE(pdq_high->dq_subsequent.io_total,
            npdq_high->dq_subsequent.io_total + 1e-9);
}

TEST_F(IntegrationTest, CpuTracksIo) {
  SweepOptions sopt;
  sopt.query.horizon = 40.0;
  sopt.query.num_snapshots = 15;
  sopt.num_trajectories = 5;
  sopt.query.overlap = 0.9;
  auto row = RunPdqPoint(bench_, sopt);
  ASSERT_TRUE(row.ok());
  // Distance computations accompany every node load (children examined).
  EXPECT_GT(row->naive_subsequent.cpu, row->naive_subsequent.io_total);
  EXPECT_GT(row->dq_first.cpu, 0.0);
}

TEST_F(IntegrationTest, WorkbenchCachePersistsAndReloads) {
  const std::string dir = std::string(::testing::TempDir()) + "/dqmo_wb";
  IndexConfig config;
  config.data.num_objects = 50;
  config.data.horizon = 10.0;
  config.cache_dir = dir;
  auto first = Workbench::Prepare(config);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const auto segments = (*first)->tree()->num_segments();
  // Second prepare must load the cached file and agree.
  auto second = Workbench::Prepare(config);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->tree()->num_segments(), segments);
  EXPECT_NE((*second)->Describe().find("cached"), std::string::npos);
}

}  // namespace
}  // namespace dqmo
