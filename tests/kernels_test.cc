// Property tests for the zero-copy query hot path: SoA node decoding
// (rtree/node_soa.h), the decoded-node cache (rtree/node_cache.h), and the
// batch-prune kernels (query/kernels.h).
//
// The hot path's contract is *bit-identity* with the legacy per-entry AoS
// code, not approximate agreement: every kernel decision and every distance
// must equal the value the pre-optimization loop would have computed, down
// to the last ULP, on both the scalar and the AVX2 dispatch tier. These
// tests enforce that property-style over seeded uniform and skewed random
// nodes, then at the whole-query level (PDQ/NPDQ/kNN over both hot paths,
// including identical QueryStats), and finally through the decoded-node
// cache under interleaved inserts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/random.h"
#include "geom/trajectory.h"
#include "query/kernels.h"
#include "query/knn.h"
#include "query/npdq.h"
#include "query/pdq.h"
#include "rtree/node.h"
#include "rtree/node_cache.h"
#include "rtree/node_soa.h"
#include "rtree/rtree.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::KeysOf;
using ::dqmo::testing::RandomQueryBox;
using ::dqmo::testing::RandomSegment;
using ::dqmo::testing::RandomSegments;

// ---------------------------------------------------------------------------
// Node builders: random AoS nodes serialized to a page, then decoded through
// both paths. Comparing the two decodes (instead of the pre-serialization
// node) makes the tests independent of float32 outward rounding.

/// Clustered positions (mirrors oracle_test's SkewedSegments): exercises
/// columns with many near-equal values and degenerate extents.
MotionSegment SkewedSegment(Rng* rng, ObjectId oid) {
  const Vec c(rng->Uniform(20, 40), rng->Uniform(60, 80));
  auto clamp = [](double v) { return std::clamp(v, 0.0, 100.0); };
  const Vec a(clamp(c[0] + rng->Normal(0.0, 2.0)),
              clamp(c[1] + rng->Normal(0.0, 2.0)));
  const Vec b(clamp(a[0] + rng->Normal(0.0, 0.5)),
              clamp(a[1] + rng->Normal(0.0, 0.5)));
  const double t0 = rng->Uniform(0.0, 100.0);
  MotionSegment m(oid, StSegment(a, b, Interval(t0, t0 + rng->Uniform(0.01, 2.0))));
  m.seg = QuantizeStored(m.seg);
  return m;
}

Node MakeLeaf(Rng* rng, int count, bool skewed) {
  Node node;
  node.self = 7;
  node.level = 0;
  node.dims = 2;
  node.stamp = 42;
  for (int i = 0; i < count; ++i) {
    node.segments.push_back(
        skewed ? SkewedSegment(rng, static_cast<ObjectId>(i))
               : RandomSegment(rng, static_cast<ObjectId>(i), 2, 100, 100));
  }
  return node;
}

Node MakeInternal(Rng* rng, int count, bool skewed) {
  Node node;
  node.self = 9;
  node.level = 2;
  node.dims = 2;
  node.stamp = 43;
  for (int i = 0; i < count; ++i) {
    // Cover 1..3 segments so the start/end-time extents are non-degenerate
    // for most entries (the double-temporal-axes columns matter for NPDQ).
    const int span = 1 + static_cast<int>(rng->UniformU64(3));
    ChildEntry e;
    for (int j = 0; j < span; ++j) {
      const MotionSegment m =
          skewed ? SkewedSegment(rng, 0)
                 : RandomSegment(rng, 0, 2, 100, 100);
      const ChildEntry part = ChildEntry::ForBox(QuantizeOutward(m.Bounds()),
                                                 static_cast<PageId>(i + 10));
      if (j == 0) {
        e = part;
      } else {
        e.CoverWith(part);
      }
    }
    node.children.push_back(e);
  }
  return node;
}

/// Serializes `node` and decodes it through both paths.
struct Decoded {
  Node aos;
  SoaNode soa;
};

Decoded RoundTrip(const Node& node) {
  uint8_t page[kPageSize];
  Status s = node.SerializeTo(PageView(page, kPageSize));
  EXPECT_TRUE(s.ok()) << s.ToString();
  Decoded d;
  auto aos = Node::DeserializeFrom(page, node.self);
  EXPECT_TRUE(aos.ok()) << aos.status().ToString();
  d.aos = std::move(aos).value();
  Status ds = d.soa.DecodeFrom(page, node.self);
  EXPECT_TRUE(ds.ok()) << ds.ToString();
  return d;
}

QueryTrajectory WalkTrajectory(Rng* rng, double t0, double t1, int legs,
                               double side) {
  std::vector<KeySnapshot> keys;
  Vec pos(rng->Uniform(20, 80), rng->Uniform(20, 80));
  keys.emplace_back(t0, Box::Centered(pos, side));
  const double dt = (t1 - t0) / legs;
  for (int j = 1; j <= legs; ++j) {
    pos = Vec(std::clamp(pos[0] + rng->Uniform(-8, 8), 5.0, 95.0),
              std::clamp(pos[1] + rng->Uniform(-8, 8), 5.0, 95.0));
    keys.emplace_back(t0 + j * dt, Box::Centered(pos, side));
  }
  return QueryTrajectory::Make(std::move(keys)).value();
}

/// Pins the kernel dispatch level for one scope.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) { ForceSimdLevel(level); }
  ~ScopedSimdLevel() { ForceSimdLevel(std::nullopt); }
};

bool CpuHasAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// SoA decode == AoS decode, field for field.

TEST(SoaDecodeTest, LeafMatchesAosDecode) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (bool skewed : {false, true}) {
      Rng rng(seed * 131 + (skewed ? 7 : 0));
      for (int count : {0, 1, 3, 4, 5, LeafCapacity(2)}) {
        const Decoded d = RoundTrip(MakeLeaf(&rng, count, skewed));
        ASSERT_EQ(d.soa.count, d.aos.count());
        EXPECT_TRUE(d.soa.is_leaf());
        EXPECT_EQ(d.soa.self, d.aos.self);
        EXPECT_EQ(d.soa.stamp, d.aos.stamp);
        EXPECT_EQ(d.soa.level, d.aos.level);
        EXPECT_EQ(d.soa.dims, d.aos.dims);
        for (int k = 0; k < d.soa.count; ++k) {
          const MotionSegment& a = d.aos.segments[static_cast<size_t>(k)];
          const MotionSegment b = d.soa.SegmentAt(k);
          EXPECT_EQ(a.oid, b.oid);
          EXPECT_EQ(a.seg.time, b.seg.time);
          EXPECT_EQ(a.seg.p0, b.seg.p0);
          EXPECT_EQ(a.seg.p1, b.seg.p1);
          const size_t i = static_cast<size_t>(k);
          EXPECT_EQ(d.soa.t_lo[i], a.seg.time.lo);
          EXPECT_EQ(d.soa.t_hi[i], a.seg.time.hi);
        }
      }
    }
  }
}

TEST(SoaDecodeTest, InternalMatchesAosDecode) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (bool skewed : {false, true}) {
      Rng rng(seed * 137 + (skewed ? 3 : 0));
      for (int count : {0, 1, 4, 7, InternalCapacity(2)}) {
        const Decoded d = RoundTrip(MakeInternal(&rng, count, skewed));
        ASSERT_EQ(d.soa.count, d.aos.count());
        EXPECT_FALSE(d.soa.is_leaf());
        for (int k = 0; k < d.soa.count; ++k) {
          const ChildEntry& a = d.aos.children[static_cast<size_t>(k)];
          const ChildEntry b = d.soa.ChildEntryAt(k);
          EXPECT_EQ(a.child, b.child);
          EXPECT_EQ(a.start_times, b.start_times);
          EXPECT_EQ(a.end_times, b.end_times);
          EXPECT_EQ(a.bounds.time, b.bounds.time);
          for (int i = 0; i < d.soa.dims; ++i) {
            EXPECT_EQ(a.bounds.spatial.extent(i), b.bounds.spatial.extent(i));
          }
          // The combined-interval invariant survives the SoA decode.
          EXPECT_EQ(b.bounds.time.lo, b.start_times.lo);
          EXPECT_EQ(b.bounds.time.hi, b.end_times.hi);
          const StBox eb = d.soa.EntryBoundsAt(k);
          EXPECT_EQ(eb.time, a.bounds.time);
          for (int i = 0; i < d.soa.dims; ++i) {
            EXPECT_EQ(eb.spatial.extent(i), a.bounds.spatial.extent(i));
          }
        }
      }
    }
  }
}

/// Column reuse: decoding a smaller node into a previously-used SoaNode must
/// not leak stale entries.
TEST(SoaDecodeTest, DecodeReusesColumnsWithoutStaleEntries) {
  Rng rng(99);
  SoaNode soa;
  uint8_t page[kPageSize];
  const Node big = MakeLeaf(&rng, 64, false);
  ASSERT_TRUE(big.SerializeTo(PageView(page, kPageSize)).ok());
  ASSERT_TRUE(soa.DecodeFrom(page, big.self).ok());
  const Node small = MakeLeaf(&rng, 3, false);
  ASSERT_TRUE(small.SerializeTo(PageView(page, kPageSize)).ok());
  ASSERT_TRUE(soa.DecodeFrom(page, small.self).ok());
  ASSERT_EQ(soa.count, 3);
  const Decoded d = RoundTrip(small);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(soa.SegmentAt(k).key(), d.aos.segments[static_cast<size_t>(k)].key());
  }
}

// ---------------------------------------------------------------------------
// Kernel equivalence, scalar tier: each batch kernel against the legacy
// per-entry computation it replaces.

TEST(KernelEquivalenceTest, PdqBoxBatchMatchesTrajectoryOverlapTimes) {
  ScopedSimdLevel force(SimdLevel::kScalar);
  std::vector<TimeSet> batch;  // Reused across nodes: exercises Clear().
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (bool skewed : {false, true}) {
      Rng rng(seed * 211 + (skewed ? 5 : 0));
      const QueryTrajectory traj = WalkTrajectory(&rng, 10, 60, 6, 12.0);
      const TrajectoryCoeffs coeffs = TrajectoryCoeffs::Build(traj);
      for (int count : {1, 4, 5, InternalCapacity(2)}) {
        const Decoded d = RoundTrip(MakeInternal(&rng, count, skewed));
        PdqOverlapBoxBatch(coeffs, d.soa, &batch);
        ASSERT_GE(batch.size(), static_cast<size_t>(count));
        for (int k = 0; k < count; ++k) {
          const TimeSet expected =
              traj.OverlapTimes(d.aos.children[static_cast<size_t>(k)].bounds);
          EXPECT_EQ(batch[static_cast<size_t>(k)], expected)
              << "seed " << seed << " entry " << k;
        }
      }
    }
  }
}

TEST(KernelEquivalenceTest, PdqSegmentsBatchMatchesTrajectoryOverlapTimes) {
  std::vector<TimeSet> batch;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (bool skewed : {false, true}) {
      Rng rng(seed * 223 + (skewed ? 11 : 0));
      const QueryTrajectory traj = WalkTrajectory(&rng, 0, 100, 6, 14.0);
      const TrajectoryCoeffs coeffs = TrajectoryCoeffs::Build(traj);
      for (int count : {1, 3, LeafCapacity(2)}) {
        const Decoded d = RoundTrip(MakeLeaf(&rng, count, skewed));
        PdqOverlapSegmentsBatch(coeffs, d.soa, &batch);
        ASSERT_GE(batch.size(), static_cast<size_t>(count));
        for (int k = 0; k < count; ++k) {
          const TimeSet expected =
              traj.OverlapTimes(d.aos.segments[static_cast<size_t>(k)].seg);
          EXPECT_EQ(batch[static_cast<size_t>(k)], expected)
              << "seed " << seed << " entry " << k;
        }
      }
    }
  }
}

TEST(KernelEquivalenceTest, NpdqClassifyBatchMatchesDiscardable) {
  std::vector<uint8_t> cls;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (bool skewed : {false, true}) {
      Rng rng(seed * 227 + (skewed ? 13 : 0));
      const Decoded d = RoundTrip(MakeInternal(&rng, InternalCapacity(2), skewed));
      for (int rep = 0; rep < 10; ++rep) {
        // Overlapping consecutive snapshots, as NPDQ produces them.
        const StBox p = RandomQueryBox(&rng, 2, 100, 100);
        StBox q = p;
        q.time = Interval(p.time.lo + 0.1, p.time.hi + 0.3);
        for (int i = 0; i < 2; ++i) {
          q.spatial.extent(i).lo += rng.Uniform(-3, 3);
          q.spatial.extent(i).hi += rng.Uniform(-3, 3);
          if (q.spatial.extent(i).empty()) {
            q.spatial.extent(i) = p.spatial.extent(i);
          }
        }
        for (SpatialPruning pruning : {SpatialPruning::kIntersectionContained,
                                       SpatialPruning::kNodeContained}) {
          const bool lemma1 =
              pruning == SpatialPruning::kIntersectionContained;
          for (const StBox* prev : {&p, static_cast<const StBox*>(nullptr)}) {
            NpdqClassifyBatch(prev, q, lemma1, d.soa, &cls);
            ASSERT_EQ(cls.size(), static_cast<size_t>(d.soa.count));
            for (int k = 0; k < d.soa.count; ++k) {
              const ChildEntry& e = d.aos.children[static_cast<size_t>(k)];
              uint8_t expected = kNpdqVisit;
              if (!e.bounds.Overlaps(q)) {
                expected = kNpdqSkip;
              } else if (prev != nullptr && Discardable(*prev, q, e, pruning)) {
                expected = kNpdqDiscard;
              }
              EXPECT_EQ(cls[static_cast<size_t>(k)], expected)
                  << "seed " << seed << " entry " << k << " lemma1 " << lemma1
                  << " prev " << (prev != nullptr);
            }
          }
        }
      }
    }
  }
}

TEST(KernelEquivalenceTest, NpdqLeafMatchBatchMatchesLegacyLeafTest) {
  // The legacy leaf predicate — including its QuantizeOutward step, which
  // the kernel elides as the identity on float-widened columns — on both
  // semantics, with and without a usable previous snapshot, on every
  // dispatch tier the CPU offers.
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (CpuHasAvx2()) levels.push_back(SimdLevel::kAvx2);
  std::vector<uint8_t> match;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (bool skewed : {false, true}) {
      Rng rng(seed * 239 + (skewed ? 23 : 0));
      for (int count : {1, 3, 4, 5, 8, LeafCapacity(2)}) {
        const Decoded d = RoundTrip(MakeLeaf(&rng, count, skewed));
        for (int rep = 0; rep < 6; ++rep) {
          const StBox p = RandomQueryBox(&rng, 2, 100, 100);
          StBox q = p;
          q.time = Interval(p.time.lo + 0.1, p.time.hi + 0.3);
          for (int i = 0; i < 2; ++i) {
            q.spatial.extent(i).lo += rng.Uniform(-3, 3);
            q.spatial.extent(i).hi += rng.Uniform(-3, 3);
            if (q.spatial.extent(i).empty()) {
              q.spatial.extent(i) = p.spatial.extent(i);
            }
          }
          for (bool exact : {false, true}) {
            for (const StBox* prev :
                 {&p, static_cast<const StBox*>(nullptr)}) {
              for (SimdLevel level : levels) {
                ScopedSimdLevel force(level);
                NpdqLeafMatchBatch(prev, q, exact, d.soa, &match);
                ASSERT_EQ(match.size(), static_cast<size_t>(count));
                for (int k = 0; k < count; ++k) {
                  const MotionSegment& m =
                      d.aos.segments[static_cast<size_t>(k)];
                  const bool in_q =
                      exact ? m.seg.Intersects(q)
                            : QuantizeOutward(m.Bounds()).Overlaps(q);
                  const bool in_p =
                      prev != nullptr &&
                      (exact ? m.seg.Intersects(*prev)
                             : QuantizeOutward(m.Bounds()).Overlaps(*prev));
                  EXPECT_EQ(match[static_cast<size_t>(k)] != 0,
                            in_q && !in_p)
                      << "seed " << seed << " entry " << k << " exact "
                      << exact << " prev " << (prev != nullptr) << " level "
                      << SimdLevelName(level);
                }
              }
            }
          }
        }
      }
    }
  }
}

TEST(KernelEquivalenceTest, KnnBatchesMatchLegacyDistances) {
  ScopedSimdLevel force(SimdLevel::kScalar);
  std::vector<double> dist;
  std::vector<uint8_t> alive;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (bool skewed : {false, true}) {
      Rng rng(seed * 229 + (skewed ? 17 : 0));
      const Decoded leaf = RoundTrip(MakeLeaf(&rng, LeafCapacity(2), skewed));
      const Decoded inner =
          RoundTrip(MakeInternal(&rng, InternalCapacity(2), skewed));
      for (int rep = 0; rep < 8; ++rep) {
        const Vec point(rng.Uniform(0, 100), rng.Uniform(0, 100));
        // Half the probes sit exactly on a stored time bound (the Contains
        // boundary the alive mask must reproduce).
        const double t =
            (rep % 2 == 0)
                ? rng.Uniform(0, 100)
                : leaf.soa.t_lo[rng.UniformU64(
                      static_cast<uint64_t>(leaf.soa.count))];
        KnnLeafDistanceBatch(leaf.soa, t, point, &dist, &alive);
        ASSERT_EQ(dist.size(), static_cast<size_t>(leaf.soa.count));
        for (int k = 0; k < leaf.soa.count; ++k) {
          const StSegment& s = leaf.aos.segments[static_cast<size_t>(k)].seg;
          EXPECT_EQ(alive[static_cast<size_t>(k)] != 0, s.time.Contains(t));
          if (alive[static_cast<size_t>(k)] != 0) {
            EXPECT_EQ(dist[static_cast<size_t>(k)], s.DistanceAt(t, point))
                << "seed " << seed << " leaf entry " << k;
          }
        }
        KnnEntryDistanceBatch(inner.soa, t, point, &dist, &alive);
        ASSERT_EQ(dist.size(), static_cast<size_t>(inner.soa.count));
        for (int k = 0; k < inner.soa.count; ++k) {
          const StBox& b = inner.aos.children[static_cast<size_t>(k)].bounds;
          EXPECT_EQ(alive[static_cast<size_t>(k)] != 0, b.time.Contains(t));
          if (alive[static_cast<size_t>(k)] != 0) {
            EXPECT_EQ(dist[static_cast<size_t>(k)],
                      b.spatial.MinDistance(point))
                << "seed " << seed << " entry " << k;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2 tier: bit-identical to the scalar tier on every dispatching kernel.

TEST(SimdDispatchTest, ForcedLevelsRoundTrip) {
  ForceSimdLevel(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  ForceSimdLevel(std::nullopt);
  const SimdLevel detected = ActiveSimdLevel();
  if (!CpuHasAvx2()) {
    EXPECT_EQ(detected, SimdLevel::kScalar);
  }
  EXPECT_STRNE(SimdLevelName(detected), "");
}

TEST(SimdDispatchTest, Avx2MatchesScalarBitExactly) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "CPU lacks AVX2";
  std::vector<TimeSet> box_scalar, box_avx2;
  std::vector<double> dist_scalar, dist_avx2;
  std::vector<uint8_t> alive_scalar, alive_avx2;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (bool skewed : {false, true}) {
      Rng rng(seed * 233 + (skewed ? 19 : 0));
      const QueryTrajectory traj = WalkTrajectory(&rng, 10, 60, 6, 12.0);
      const TrajectoryCoeffs coeffs = TrajectoryCoeffs::Build(traj);
      // Counts around the 4-lane width exercise every tail length.
      for (int count : {1, 3, 4, 5, 8, 11, InternalCapacity(2)}) {
        const Decoded inner = RoundTrip(MakeInternal(&rng, count, skewed));
        const Decoded leaf = RoundTrip(MakeLeaf(&rng, count, skewed));
        const Vec point(rng.Uniform(0, 100), rng.Uniform(0, 100));
        const double t = rng.Uniform(0, 100);
        {
          ScopedSimdLevel force(SimdLevel::kScalar);
          PdqOverlapBoxBatch(coeffs, inner.soa, &box_scalar);
          KnnEntryDistanceBatch(inner.soa, t, point, &dist_scalar,
                                &alive_scalar);
        }
        std::vector<double> entry_dist_scalar = dist_scalar;
        std::vector<uint8_t> entry_alive_scalar = alive_scalar;
        {
          ScopedSimdLevel force(SimdLevel::kAvx2);
          PdqOverlapBoxBatch(coeffs, inner.soa, &box_avx2);
          KnnEntryDistanceBatch(inner.soa, t, point, &dist_avx2, &alive_avx2);
        }
        for (int k = 0; k < count; ++k) {
          const size_t i = static_cast<size_t>(k);
          EXPECT_EQ(box_scalar[i], box_avx2[i]) << "box entry " << k;
          EXPECT_EQ(entry_alive_scalar[i], alive_avx2[i]);
          if (entry_alive_scalar[i] != 0) {
            // Bit-exact, not approximately equal.
            EXPECT_EQ(entry_dist_scalar[i], dist_avx2[i]);
          }
        }
        {
          ScopedSimdLevel force(SimdLevel::kScalar);
          KnnLeafDistanceBatch(leaf.soa, t, point, &dist_scalar,
                               &alive_scalar);
        }
        {
          ScopedSimdLevel force(SimdLevel::kAvx2);
          KnnLeafDistanceBatch(leaf.soa, t, point, &dist_avx2, &alive_avx2);
        }
        for (int k = 0; k < count; ++k) {
          const size_t i = static_cast<size_t>(k);
          EXPECT_EQ(alive_scalar[i], alive_avx2[i]);
          if (alive_scalar[i] != 0) {
            EXPECT_EQ(dist_scalar[i], dist_avx2[i]);
          }
        }
      }
    }
  }
}

/// Signed zeros and boundary instants: the cases where vminpd/vmaxpd would
/// diverge from std::min/std::max. The AVX2 kernels must not use them.
TEST(SimdDispatchTest, Avx2MatchesScalarOnSignedZerosAndBoundaries) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "CPU lacks AVX2";
  Node node;
  node.self = 3;
  node.level = 0;
  node.dims = 2;
  for (int i = 0; i < 6; ++i) {
    const double z = (i % 2 == 0) ? 0.0 : -0.0;
    StSegment s(Vec(z, -0.0), Vec(0.0, z), Interval(1.0, 1.0 + i));
    node.segments.push_back(
        MotionSegment(static_cast<ObjectId>(i), QuantizeStored(s)));
  }
  const Decoded d = RoundTrip(node);
  std::vector<double> ds, da;
  std::vector<uint8_t> as, aa;
  for (double t : {1.0, 2.0, 6.0, 0.5}) {
    for (const Vec& point : {Vec(0.0, 0.0), Vec(-0.0, -0.0), Vec(1.0, -1.0)}) {
      {
        ScopedSimdLevel force(SimdLevel::kScalar);
        KnnLeafDistanceBatch(d.soa, t, point, &ds, &as);
      }
      {
        ScopedSimdLevel force(SimdLevel::kAvx2);
        KnnLeafDistanceBatch(d.soa, t, point, &da, &aa);
      }
      ASSERT_EQ(as, aa);
      for (size_t k = 0; k < ds.size(); ++k) {
        if (as[k] != 0) {
          EXPECT_EQ(ds[k], da[k]) << "t " << t << " entry " << k;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DecodedNodeCache unit behavior.

std::shared_ptr<const SoaNode> MakeCachedNode(PageId id) {
  auto node = std::make_shared<SoaNode>();
  node->self = id;
  node->level = 0;
  return node;
}

TEST(DecodedNodeCacheTest, LookupInsertCountsHitsAndMisses) {
  DecodedNodeCache cache(4, 1);
  EXPECT_EQ(cache.Lookup(5), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  auto node = MakeCachedNode(5);
  cache.Insert(5, node);
  EXPECT_EQ(cache.Lookup(5).get(), node.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.cached_nodes(), 1u);
}

TEST(DecodedNodeCacheTest, EvictsLeastRecentlyUsed) {
  DecodedNodeCache cache(2, 1);  // One shard: deterministic LRU order.
  cache.Insert(1, MakeCachedNode(1));
  cache.Insert(2, MakeCachedNode(2));
  ASSERT_NE(cache.Lookup(1), nullptr);  // 1 becomes most recent.
  cache.Insert(3, MakeCachedNode(3));   // Evicts 2.
  EXPECT_EQ(cache.Lookup(2), nullptr);
  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(3), nullptr);
  EXPECT_EQ(cache.cached_nodes(), 2u);
}

TEST(DecodedNodeCacheTest, InvalidateAndClearDropEntries) {
  DecodedNodeCache cache(8, 2);
  for (PageId id = 1; id <= 6; ++id) cache.Insert(id, MakeCachedNode(id));
  cache.Invalidate(3);
  EXPECT_EQ(cache.Lookup(3), nullptr);
  EXPECT_NE(cache.Lookup(4), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.cached_nodes(), 0u);
  EXPECT_EQ(cache.Lookup(1), nullptr);
}

TEST(DecodedNodeCacheTest, HeldPointerSurvivesEviction) {
  DecodedNodeCache cache(1, 1);
  auto pinned = MakeCachedNode(11);
  cache.Insert(11, pinned);
  std::shared_ptr<const SoaNode> held = cache.Lookup(11);
  cache.Insert(12, MakeCachedNode(12));  // Evicts 11.
  EXPECT_EQ(cache.Lookup(11), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->self, 11u);  // Refcount pinning: still readable.
}

// ---------------------------------------------------------------------------
// Whole-query equivalence: legacy AoS vs SoA hot path, including QueryStats.

class HotPathEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto tree = RTree::Create(&file_, RTree::Options());
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = std::move(tree).value();
    Rng rng(4242);
    data_ = RandomSegments(&rng, 500, 2, 100, 100);
    for (const auto& m : data_) ASSERT_TRUE(tree_->Insert(m).ok());
  }

  static void ExpectStatsEqual(const QueryStats& a, const QueryStats& b) {
    EXPECT_EQ(a.node_reads.load(), b.node_reads.load());
    EXPECT_EQ(a.leaf_reads.load(), b.leaf_reads.load());
    EXPECT_EQ(a.distance_computations.load(), b.distance_computations.load());
    EXPECT_EQ(a.objects_returned.load(), b.objects_returned.load());
    EXPECT_EQ(a.nodes_discarded.load(), b.nodes_discarded.load());
    EXPECT_EQ(a.queue_pushes.load(), b.queue_pushes.load());
    EXPECT_EQ(a.queue_pops.load(), b.queue_pops.load());
    EXPECT_EQ(a.duplicates_skipped.load(), b.duplicates_skipped.load());
  }

  PageFile file_;
  std::unique_ptr<RTree> tree_;
  std::vector<MotionSegment> data_;
};

TEST_F(HotPathEquivalenceTest, PdqPathsDeliverIdenticalFramesAndStats) {
  Rng rng(7);
  const QueryTrajectory traj = WalkTrajectory(&rng, 10, 50, 8, 10.0);
  PredictiveDynamicQuery::Options soa_opt, aos_opt;
  soa_opt.hot_path = HotPath::kSoa;
  aos_opt.hot_path = HotPath::kLegacyAos;
  auto soa = PredictiveDynamicQuery::Make(tree_.get(), traj, soa_opt);
  auto aos = PredictiveDynamicQuery::Make(tree_.get(), traj, aos_opt);
  ASSERT_TRUE(soa.ok() && aos.ok());
  double prev = 10;
  for (int i = 1; i <= 40; ++i) {
    const double t = 10 + i * 1.0;
    auto fs = (*soa)->Frame(prev, t);
    auto fa = (*aos)->Frame(prev, t);
    ASSERT_TRUE(fs.ok() && fa.ok());
    ASSERT_EQ(fs->size(), fa->size()) << "frame " << i;
    for (size_t j = 0; j < fs->size(); ++j) {
      EXPECT_EQ((*fs)[j].motion.key(), (*fa)[j].motion.key());
      EXPECT_EQ((*fs)[j].visible_times, (*fa)[j].visible_times);
    }
    prev = t;
  }
  ExpectStatsEqual((*soa)->stats(), (*aos)->stats());
}

TEST_F(HotPathEquivalenceTest, NpdqPathsDeliverIdenticalSequencesAndStats) {
  for (SpatialPruning pruning : {SpatialPruning::kIntersectionContained,
                                 SpatialPruning::kNodeContained}) {
    for (LeafSemantics leaf : {LeafSemantics::kBoundingBox,
                               LeafSemantics::kExact}) {
      NpdqOptions so, ao;
      so.hot_path = HotPath::kSoa;
      ao.hot_path = HotPath::kLegacyAos;
      so.spatial_pruning = ao.spatial_pruning = pruning;
      so.leaf_semantics = ao.leaf_semantics = leaf;
      NonPredictiveDynamicQuery soa(tree_.get(), so);
      NonPredictiveDynamicQuery aos(tree_.get(), ao);
      Rng rng(11);
      Vec pos(50, 50);
      for (int i = 1; i <= 30; ++i) {
        pos = Vec(std::clamp(pos[0] + rng.Uniform(-5, 5), 10.0, 90.0),
                  std::clamp(pos[1] + rng.Uniform(-5, 5), 10.0, 90.0));
        const StBox q(Box::Centered(pos, 12.0),
                      Interval(10 + i * 0.8, 10 + (i + 1) * 0.8));
        auto rs = soa.Execute(q);
        auto ra = aos.Execute(q);
        ASSERT_TRUE(rs.ok() && ra.ok());
        EXPECT_EQ(KeysOf(*rs), KeysOf(*ra)) << "snapshot " << i;
      }
      ExpectStatsEqual(soa.stats(), aos.stats());
    }
  }
}

TEST_F(HotPathEquivalenceTest, KnnPathsDeliverIdenticalNeighborsAndStats) {
  Rng rng(13);
  QueryStats soa_stats, aos_stats;
  KnnOptions so, ao;
  so.hot_path = HotPath::kSoa;
  ao.hot_path = HotPath::kLegacyAos;
  for (int i = 0; i < 25; ++i) {
    const Vec point(rng.Uniform(0, 100), rng.Uniform(0, 100));
    const double t = rng.Uniform(0, 100);
    const int k = 1 + static_cast<int>(rng.UniformU64(12));
    auto ns = KnnAt(*tree_, point, t, k, &soa_stats, so);
    auto na = KnnAt(*tree_, point, t, k, &aos_stats, ao);
    ASSERT_TRUE(ns.ok() && na.ok());
    ASSERT_EQ(ns->size(), na->size()) << "probe " << i;
    for (size_t j = 0; j < ns->size(); ++j) {
      EXPECT_EQ((*ns)[j].motion.key(), (*na)[j].motion.key());
      // Bit-identical distances, not approximately equal.
      EXPECT_EQ((*ns)[j].distance, (*na)[j].distance);
    }
  }
  ExpectStatsEqual(soa_stats, aos_stats);
}

// ---------------------------------------------------------------------------
// Decoded-node cache end-to-end: queries through the cache stay exact while
// inserts invalidate entries between rounds.

TEST(NodeCacheIntegrationTest, CachedQueriesStayExactUnderInserts) {
  PageFile file;
  auto tree_or = RTree::Create(&file, RTree::Options());
  ASSERT_TRUE(tree_or.ok());
  std::unique_ptr<RTree> tree = std::move(tree_or).value();
  DecodedNodeCache cache(256);
  tree->AttachNodeCache(&cache);

  Rng rng(31337);
  std::vector<MotionSegment> data = RandomSegments(&rng, 400, 2, 100, 100);
  for (const auto& m : data) ASSERT_TRUE(tree->Insert(m).ok());

  int next_oid = 100000;
  for (int round = 0; round < 12; ++round) {
    // A fresh NPDQ instance per round: every query is an independent
    // snapshot, answered through whatever the cache currently holds.
    NonPredictiveDynamicQuery npdq(tree.get());
    const StBox q = RandomQueryBox(&rng, 2, 100, 100);
    auto got = npdq.Execute(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(KeysOf(*got), KeysOf(dqmo::testing::BruteForceRangeBb(data, q)))
        << "round " << round;
    // Mutate: the inserts dirty pages, which must drop their cached
    // decodes (RTree::StoreNode invalidation) before the next round reads.
    for (int j = 0; j < 5; ++j) {
      const MotionSegment m =
          RandomSegment(&rng, static_cast<ObjectId>(next_oid++), 2, 100, 100);
      ASSERT_TRUE(tree->Insert(m).ok());
      data.push_back(m);
    }
  }
  // The cache actually served the traversals (and was populated at all).
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
  EXPECT_GT(cache.cached_nodes(), 0u);
}

/// With a cache attached, repeated traversals hit instead of re-reading
/// pages; QueryStats counts those as decoded_hits, not node_reads.
TEST(NodeCacheIntegrationTest, RepeatQueriesHitTheCache) {
  PageFile file;
  auto tree_or = RTree::Create(&file, RTree::Options());
  ASSERT_TRUE(tree_or.ok());
  std::unique_ptr<RTree> tree = std::move(tree_or).value();
  Rng rng(555);
  for (const auto& m : RandomSegments(&rng, 300, 2, 100, 100)) {
    ASSERT_TRUE(tree->Insert(m).ok());
  }
  DecodedNodeCache cache(512);
  tree->AttachNodeCache(&cache);

  const StBox q = RandomQueryBox(&rng, 2, 100, 100);
  NonPredictiveDynamicQuery cold(tree.get());
  ASSERT_TRUE(cold.Execute(q).ok());
  const uint64_t cold_reads = cold.stats().node_reads.load();
  EXPECT_EQ(cold.stats().decoded_hits.load(), 0u);

  NonPredictiveDynamicQuery warm(tree.get());
  ASSERT_TRUE(warm.Execute(q).ok());
  EXPECT_EQ(warm.stats().node_reads.load(), 0u);
  EXPECT_EQ(warm.stats().decoded_hits.load(), cold_reads);
}

}  // namespace
}  // namespace dqmo
