// IoStats unit tests: the golden ToString rendering, snapshot equality /
// difference algebra, and the SnapshotConsistent quiescence certificate.
#include "storage/io_stats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace dqmo {
namespace {

IoStats MakeStats(uint64_t reads, uint64_t writes, uint64_t hits,
                  uint64_t crc_fail, uint64_t retries, uint64_t wal_app,
                  uint64_t wal_sync, uint64_t pf_issued = 0,
                  uint64_t pf_hit = 0, uint64_t pf_wasted = 0) {
  IoStats s;
  s.physical_reads = reads;
  s.physical_writes = writes;
  s.cache_hits = hits;
  s.checksum_failures = crc_fail;
  s.retries = retries;
  s.wal_appends = wal_app;
  s.wal_syncs = wal_sync;
  s.prefetch_issued = pf_issued;
  s.prefetch_hits = pf_hit;
  s.prefetch_wasted = pf_wasted;
  return s;
}

TEST(IoStatsTest, ToStringGolden) {
  EXPECT_EQ(IoStats{}.ToString(),
            "io{reads=0, writes=0, hits=0, crc_fail=0, retries=0, "
            "wal_app=0, wal_sync=0, pf_issued=0, pf_hit=0, pf_wasted=0}");
  EXPECT_EQ(MakeStats(12, 34, 56, 1, 2, 78, 9, 8, 6, 2).ToString(),
            "io{reads=12, writes=34, hits=56, crc_fail=1, retries=2, "
            "wal_app=78, wal_sync=9, pf_issued=8, pf_hit=6, pf_wasted=2}");
}

TEST(IoStatsTest, EqualityComparesEveryCounter) {
  const IoStats a = MakeStats(1, 2, 3, 4, 5, 6, 7, 8, 9, 10);
  EXPECT_EQ(a, MakeStats(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));
  // Each field participates: perturbing any one breaks equality.
  EXPECT_FALSE(a == MakeStats(0, 2, 3, 4, 5, 6, 7, 8, 9, 10));
  EXPECT_FALSE(a == MakeStats(1, 0, 3, 4, 5, 6, 7, 8, 9, 10));
  EXPECT_FALSE(a == MakeStats(1, 2, 0, 4, 5, 6, 7, 8, 9, 10));
  EXPECT_FALSE(a == MakeStats(1, 2, 3, 0, 5, 6, 7, 8, 9, 10));
  EXPECT_FALSE(a == MakeStats(1, 2, 3, 4, 0, 6, 7, 8, 9, 10));
  EXPECT_FALSE(a == MakeStats(1, 2, 3, 4, 5, 0, 7, 8, 9, 10));
  EXPECT_FALSE(a == MakeStats(1, 2, 3, 4, 5, 6, 0, 8, 9, 10));
  EXPECT_FALSE(a == MakeStats(1, 2, 3, 4, 5, 6, 7, 0, 9, 10));
  EXPECT_FALSE(a == MakeStats(1, 2, 3, 4, 5, 6, 7, 8, 0, 10));
  EXPECT_FALSE(a == MakeStats(1, 2, 3, 4, 5, 6, 7, 8, 9, 0));
}

TEST(IoStatsTest, DifferenceIsFieldwise) {
  const IoStats after = MakeStats(10, 20, 30, 4, 5, 60, 7, 80, 9, 10);
  const IoStats before = MakeStats(1, 2, 3, 4, 5, 6, 7, 8, 9, 10);
  const IoStats d = after - before;
  EXPECT_EQ(d, MakeStats(9, 18, 27, 0, 0, 54, 0, 72, 0, 0));
}

TEST(IoStatsTest, AccumulationIsFieldwiseAndGolden) {
  // operator+= is how the sharded engine folds disjoint per-shard
  // accounts into the global one; every counter must participate, exactly
  // once.
  IoStats sum;
  sum += MakeStats(1, 2, 3, 4, 5, 6, 7, 8, 9, 10);
  sum += MakeStats(10, 20, 30, 40, 50, 60, 70, 80, 90, 100);
  EXPECT_EQ(sum, MakeStats(11, 22, 33, 44, 55, 66, 77, 88, 99, 110));
  EXPECT_EQ(sum.ToString(),
            "io{reads=11, writes=22, hits=33, crc_fail=44, retries=55, "
            "wal_app=66, wal_sync=77, pf_issued=88, pf_hit=99, "
            "pf_wasted=110}");
  // Adding zero is the identity; accumulation is associative with
  // operator- (the per-run delta idiom).
  sum += IoStats{};
  EXPECT_EQ(sum, MakeStats(11, 22, 33, 44, 55, 66, 77, 88, 99, 110));
  const IoStats delta = sum - MakeStats(1, 2, 3, 4, 5, 6, 7, 8, 9, 10);
  EXPECT_EQ(delta, MakeStats(10, 20, 30, 40, 50, 60, 70, 80, 90, 100));
}

TEST(IoStatsTest, CopyAndResetRoundTrip) {
  IoStats a = MakeStats(1, 2, 3, 4, 5, 6, 7);
  IoStats b = a;  // Copy snapshots every counter.
  EXPECT_EQ(a, b);
  a.Reset();
  EXPECT_EQ(a, IoStats{});
  EXPECT_EQ(b, MakeStats(1, 2, 3, 4, 5, 6, 7));
}

TEST(IoStatsTest, SnapshotConsistentOnQuiescentStats) {
  const IoStats live = MakeStats(5, 6, 7, 0, 1, 2, 3);
  IoStats snapshot;
  EXPECT_TRUE(IoStats::SnapshotConsistent(live, &snapshot));
  EXPECT_EQ(snapshot, live);
}

// Under continuous mutation the helper must stay safe (no torn reads per
// counter, no crash) and leave *some* snapshot behind; whether it
// certifies consistency depends on whether an increment landed between
// its paired reads, so only the snapshot's bounds are asserted.
TEST(IoStatsTest, SnapshotUnderMutationStaysBounded) {
  IoStats live;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      live.physical_reads.fetch_add(1, std::memory_order_relaxed);
      live.cache_hits.fetch_add(1, std::memory_order_relaxed);
    }
  });
  IoStats snapshot;
  for (int i = 0; i < 100; ++i) {
    IoStats::SnapshotConsistent(live, &snapshot, 2);
  }
  stop = true;
  writer.join();
  const uint64_t final_reads = live.physical_reads;
  EXPECT_LE(snapshot.physical_reads, final_reads);
}

// After the writer stops, consistency must be certifiable again — the
// checkable form of the header's "take snapshots while quiescent" rule.
TEST(IoStatsTest, SnapshotConsistentAfterWriterStops) {
  IoStats live;
  std::thread writer([&] {
    for (int i = 0; i < 10000; ++i) {
      live.physical_reads.fetch_add(1, std::memory_order_relaxed);
      live.wal_appends.fetch_add(1, std::memory_order_relaxed);
    }
  });
  writer.join();
  IoStats snapshot;
  EXPECT_TRUE(IoStats::SnapshotConsistent(live, &snapshot));
  EXPECT_EQ(snapshot.physical_reads, 10000u);
  EXPECT_EQ(snapshot.wal_appends, 10000u);
}

}  // namespace
}  // namespace dqmo
