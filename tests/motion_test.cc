// Tests for the motion model: MotionSegment records and the dead-reckoning
// update policy of Sect. 3.1 (bounded representation error).
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "motion/motion_segment.h"
#include "motion/tracker.h"

namespace dqmo {
namespace {

TEST(MotionSegmentTest, FromUpdateAppliesLocationFunction) {
  // Eq. (1): x(t) = x(t_l) + v * (t - t_l).
  const MotionSegment m = MotionSegment::FromUpdate(
      7, Vec(1.0, 2.0), Vec(0.5, -1.0), Interval(10.0, 14.0));
  EXPECT_EQ(m.oid, 7u);
  EXPECT_EQ(m.PositionAt(10.0), Vec(1.0, 2.0));
  EXPECT_EQ(m.PositionAt(14.0), Vec(3.0, -2.0));
  EXPECT_EQ(m.PositionAt(12.0), Vec(2.0, 0.0));
}

TEST(MotionSegmentTest, KeyIdentifiesOidAndStart) {
  const MotionSegment a = MotionSegment::FromUpdate(
      1, Vec(0.0, 0.0), Vec(1.0, 0.0), Interval(0.0, 1.0));
  const MotionSegment b = MotionSegment::FromUpdate(
      1, Vec(5.0, 0.0), Vec(1.0, 0.0), Interval(1.0, 2.0));
  const MotionSegment c = MotionSegment::FromUpdate(
      2, Vec(0.0, 0.0), Vec(1.0, 0.0), Interval(0.0, 1.0));
  EXPECT_EQ(a.key(), a.key());
  EXPECT_FALSE(a.key() == b.key());
  EXPECT_FALSE(a.key() == c.key());
  EXPECT_TRUE(a.key() < b.key());
  EXPECT_TRUE(a.key() < c.key());
}

TEST(MotionSegmentTest, SortByKeyOrdersDeterministically) {
  std::vector<MotionSegment> v;
  v.push_back(MotionSegment::FromUpdate(2, Vec(0, 0), Vec(1, 0),
                                        Interval(0.0, 1.0)));
  v.push_back(MotionSegment::FromUpdate(1, Vec(0, 0), Vec(1, 0),
                                        Interval(5.0, 6.0)));
  v.push_back(MotionSegment::FromUpdate(1, Vec(0, 0), Vec(1, 0),
                                        Interval(0.0, 1.0)));
  SortByKey(&v);
  EXPECT_EQ(v[0].oid, 1u);
  EXPECT_EQ(v[0].seg.time.lo, 0.0);
  EXPECT_EQ(v[1].oid, 1u);
  EXPECT_EQ(v[1].seg.time.lo, 5.0);
  EXPECT_EQ(v[2].oid, 2u);
}

TEST(MotionKeyHashTest, EqualKeysHashEqual) {
  const MotionSegment::Key a{3, 1.25};
  const MotionSegment::Key b{3, 1.25};
  EXPECT_EQ(MotionKeyHash()(a), MotionKeyHash()(b));
}

TEST(TrackerTest, NoUpdateWhilePredictionHolds) {
  // Object moves exactly as reported: no updates should ever fire.
  DeadReckoningTracker tracker(1, 0.5, 0.0, Vec(0.0, 0.0), Vec(1.0, 0.0));
  for (int i = 1; i <= 10; ++i) {
    const double t = 0.1 * i;
    auto update = tracker.Observe(t, Vec(t, 0.0), Vec(1.0, 0.0));
    EXPECT_FALSE(update.has_value()) << "t=" << t;
  }
  EXPECT_EQ(tracker.updates_emitted(), 0);
  // Finish closes the trailing open segment.
  auto tail = tracker.Finish();
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->seg.time, Interval(0.0, 1.0));
}

TEST(TrackerTest, UpdateFiresWhenErrorExceedsThreshold) {
  DeadReckoningTracker tracker(1, 0.5, 0.0, Vec(0.0, 0.0), Vec(1.0, 0.0));
  // True object stands still; prediction runs away at speed 1.
  auto u1 = tracker.Observe(0.4, Vec(0.0, 0.0), Vec(0.0, 0.0));
  EXPECT_FALSE(u1.has_value());  // Error 0.4 <= 0.5.
  auto u2 = tracker.Observe(0.6, Vec(0.0, 0.0), Vec(0.0, 0.0));
  ASSERT_TRUE(u2.has_value());  // Error 0.6 > 0.5.
  EXPECT_EQ(u2->seg.time, Interval(0.0, 0.6));
  // The closed segment reflects the *reported* (dead-reckoned) motion.
  EXPECT_EQ(u2->seg.p0, Vec(0.0, 0.0));
  EXPECT_EQ(u2->seg.p1, Vec(0.6, 0.0));
  EXPECT_EQ(tracker.updates_emitted(), 1);
}

TEST(TrackerTest, PredictedAtExtrapolatesLastReport) {
  DeadReckoningTracker tracker(1, 1.0, 2.0, Vec(1.0, 1.0), Vec(2.0, 0.0));
  EXPECT_EQ(tracker.PredictedAt(3.0), Vec(3.0, 1.0));
}

TEST(TrackerTest, ErrorBoundedByThresholdProperty) {
  // Sect. 3.1's claim: with threshold-triggered updates, the database's
  // dead-reckoned position never drifts from the truth by more than the
  // threshold at observation granularity.
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const double threshold = rng.Uniform(0.2, 1.0);
    Vec pos(0.0, 0.0);
    Vec vel(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
    DeadReckoningTracker tracker(9, threshold, 0.0, pos, vel);
    std::vector<MotionSegment> closed;
    const double dt = 0.05;
    for (int step = 1; step <= 400; ++step) {
      const double t = step * dt;
      // Smooth random velocity drift.
      vel[0] += rng.Uniform(-0.1, 0.1);
      vel[1] += rng.Uniform(-0.1, 0.1);
      pos = pos + vel * dt;
      // Before the tracker reacts, check the drift of the open segment.
      const double drift = tracker.PredictedAt(t).DistanceTo(pos);
      auto update = tracker.Observe(t, pos, vel);
      if (update.has_value()) {
        closed.push_back(*update);
      } else {
        EXPECT_LE(drift, threshold + 1e-9);
      }
    }
    // Closed segments tile time contiguously from 0.
    double expected_start = 0.0;
    for (const MotionSegment& m : closed) {
      EXPECT_DOUBLE_EQ(m.seg.time.lo, expected_start);
      expected_start = m.seg.time.hi;
    }
  }
}

TEST(TrackerTest, FinishReturnsNulloptWithoutElapsedTime) {
  DeadReckoningTracker tracker(1, 0.5, 0.0, Vec(0.0, 0.0), Vec(1.0, 0.0));
  EXPECT_FALSE(tracker.Finish().has_value());
}

}  // namespace
}  // namespace dqmo
