// Tests for the on-page node layout: capacities matching the experimental
// setup, serialization round-trips, and outward-rounded float32 bounds.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "rtree/node.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::RandomSegment;

TEST(LayoutTest, CapacitiesMatchDesign) {
  // Leaf fanout 127 matches the paper's Sect. 5 setup; internal fanout 113
  // reflects the double-temporal-axes entry (see layout.h).
  EXPECT_EQ(LeafCapacity(2), 127);
  EXPECT_EQ(InternalCapacity(2), 113);
  // Entries must tile within the page.
  for (int d = 1; d <= 3; ++d) {
    EXPECT_LE(kNodeHeaderSize +
                  static_cast<size_t>(InternalCapacity(d)) *
                      InternalEntrySize(d),
              kPageSize);
    EXPECT_LE(kNodeHeaderSize +
                  static_cast<size_t>(LeafCapacity(d)) * LeafEntrySize(d),
              kPageSize);
    EXPECT_GE(InternalCapacity(d), 2);
    EXPECT_GE(LeafCapacity(d), 2);
  }
}

TEST(LayoutTest, FloatBoundsRoundOutward) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-1000.0, 1000.0);
    EXPECT_LE(static_cast<double>(FloatLowerBound(v)), v);
    EXPECT_GE(static_cast<double>(FloatUpperBound(v)), v);
  }
}

TEST(LayoutTest, QuantizeOutwardContainsOriginal) {
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const StBox b = dqmo::testing::RandomQueryBox(&rng, 2, 100, 100);
    const StBox q = QuantizeOutward(b);
    EXPECT_TRUE(q.Contains(b));
  }
}

TEST(LayoutTest, QuantizeStoredActuallyRounds) {
  // Regression test for a GCC 12.2 -O2 wrong-code issue: dead-store
  // elimination dropped the double->float->double rounding stores inside
  // QuantizeStored, making it the identity function (see layout.cc's
  // ForceFloatRounding). The reference values below are computed through
  // volatile floats, which the compiler cannot elide.
  Rng rng(55);
  for (int i = 0; i < 1000; ++i) {
    const StSegment raw(Vec(rng.Uniform(0, 100), rng.Uniform(0, 100)),
                        Vec(rng.Uniform(0, 100), rng.Uniform(0, 100)),
                        Interval(rng.Uniform(0, 50), rng.Uniform(50, 100)));
    const StSegment q = QuantizeStored(raw);
    auto expect_rounded = [](double stored, double original) {
      volatile float f = static_cast<float>(original);
      EXPECT_EQ(stored, static_cast<double>(f));
    };
    expect_rounded(q.time.lo, raw.time.lo);
    expect_rounded(q.time.hi, raw.time.hi);
    for (int d = 0; d < 2; ++d) {
      expect_rounded(q.p0[d], raw.p0[d]);
      expect_rounded(q.p1[d], raw.p1[d]);
    }
  }
}

TEST(LayoutTest, QuantizeStoredIsIdempotent) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const MotionSegment m = RandomSegment(&rng, 1, 2, 100, 100);
    const StSegment once = QuantizeStored(m.seg);
    const StSegment twice = QuantizeStored(once);
    EXPECT_EQ(once.p0, twice.p0);
    EXPECT_EQ(once.p1, twice.p1);
    EXPECT_EQ(once.time, twice.time);
  }
}

TEST(NodeTest, EmptyLeafRoundTrip) {
  Node node;
  node.self = 4;
  node.level = 0;
  node.dims = 2;
  node.stamp = 99;
  uint8_t page[kPageSize];
  ASSERT_TRUE(node.SerializeTo(PageView(page, kPageSize)).ok());
  auto back = Node::DeserializeFrom(page, 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->self, 4u);
  EXPECT_EQ(back->level, 0);
  EXPECT_EQ(back->dims, 2);
  EXPECT_EQ(back->stamp, 99u);
  EXPECT_EQ(back->count(), 0);
}

TEST(NodeTest, LeafRoundTripPreservesSegments) {
  Rng rng(8);
  Node node;
  node.self = 1;
  node.level = 0;
  node.dims = 2;
  node.stamp = 5;
  for (int i = 0; i < LeafCapacity(2); ++i) {
    node.segments.push_back(
        RandomSegment(&rng, static_cast<ObjectId>(i), 2, 100, 100));
  }
  uint8_t page[kPageSize];
  ASSERT_TRUE(node.SerializeTo(PageView(page, kPageSize)).ok());
  auto back = Node::DeserializeFrom(page, 1);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->count(), LeafCapacity(2));
  for (int i = 0; i < back->count(); ++i) {
    const MotionSegment& a = node.segments[static_cast<size_t>(i)];
    const MotionSegment& b = back->segments[static_cast<size_t>(i)];
    EXPECT_EQ(a.oid, b.oid);
    // Values were pre-quantized, so the round trip is bit-exact.
    EXPECT_EQ(a.seg.p0, b.seg.p0);
    EXPECT_EQ(a.seg.p1, b.seg.p1);
    EXPECT_EQ(a.seg.time, b.seg.time);
  }
}

TEST(NodeTest, InternalRoundTripPreservesEntries) {
  Rng rng(9);
  Node node;
  node.self = 2;
  node.level = 3;
  node.dims = 2;
  node.stamp = 7;
  for (int i = 0; i < InternalCapacity(2); ++i) {
    const MotionSegment m =
        RandomSegment(&rng, static_cast<ObjectId>(i), 2, 100, 100);
    ChildEntry e = ChildEntry::ForBox(QuantizeOutward(m.Bounds()),
                                      static_cast<PageId>(i + 10));
    node.children.push_back(e);
  }
  uint8_t page[kPageSize];
  ASSERT_TRUE(node.SerializeTo(PageView(page, kPageSize)).ok());
  auto back = Node::DeserializeFrom(page, 2);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->count(), InternalCapacity(2));
  for (int i = 0; i < back->count(); ++i) {
    const ChildEntry& a = node.children[static_cast<size_t>(i)];
    const ChildEntry& b = back->children[static_cast<size_t>(i)];
    EXPECT_EQ(a.child, b.child);
    // Bounds survive conservatively (outward float32 rounding).
    EXPECT_TRUE(b.bounds.Contains(a.bounds));
    EXPECT_TRUE(b.start_times.Contains(a.start_times));
    EXPECT_TRUE(b.end_times.Contains(a.end_times));
    // Combined interval consistency.
    EXPECT_EQ(b.bounds.time.lo, b.start_times.lo);
    EXPECT_EQ(b.bounds.time.hi, b.end_times.hi);
  }
}

TEST(NodeTest, OverfullNodeRejected) {
  Node node;
  node.self = 1;
  node.level = 0;
  node.dims = 2;
  Rng rng(10);
  for (int i = 0; i <= LeafCapacity(2); ++i) {
    node.segments.push_back(RandomSegment(&rng, 0, 2, 10, 10));
  }
  uint8_t page[kPageSize];
  EXPECT_TRUE(node.SerializeTo(PageView(page, kPageSize)).IsInternal());
}

TEST(NodeTest, DeserializeRejectsBadDims) {
  uint8_t page[kPageSize] = {};
  NodeHeader header{};
  header.level = 0;
  header.count = 0;
  header.dims = 9;  // Invalid.
  PageView(page, kPageSize).Write(0, header);
  EXPECT_TRUE(Node::DeserializeFrom(page, 0).status().IsCorruption());
}

TEST(NodeTest, DeserializeRejectsOverflowCount) {
  uint8_t page[kPageSize] = {};
  NodeHeader header{};
  header.level = 0;
  header.count = 60000;
  header.dims = 2;
  PageView(page, kPageSize).Write(0, header);
  EXPECT_TRUE(Node::DeserializeFrom(page, 0).status().IsCorruption());
}

TEST(NodeTest, ComputeEntryCoversAllSegments) {
  Rng rng(11);
  Node node;
  node.self = 3;
  node.level = 0;
  node.dims = 2;
  for (int i = 0; i < 50; ++i) {
    node.segments.push_back(
        RandomSegment(&rng, static_cast<ObjectId>(i), 2, 100, 100));
  }
  const ChildEntry entry = node.ComputeEntry();
  EXPECT_EQ(entry.child, 3u);
  for (const MotionSegment& m : node.segments) {
    EXPECT_TRUE(entry.bounds.Contains(QuantizeOutward(m.Bounds())));
    EXPECT_TRUE(entry.start_times.Contains(m.seg.time.lo));
    EXPECT_TRUE(entry.end_times.Contains(m.seg.time.hi));
  }
}

TEST(NodeTest, ThreeDimensionalRoundTrip) {
  Rng rng(12);
  Node node;
  node.self = 1;
  node.level = 0;
  node.dims = 3;
  for (int i = 0; i < 20; ++i) {
    node.segments.push_back(
        RandomSegment(&rng, static_cast<ObjectId>(i), 3, 50, 50));
  }
  uint8_t page[kPageSize];
  ASSERT_TRUE(node.SerializeTo(PageView(page, kPageSize)).ok());
  auto back = Node::DeserializeFrom(page, 1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->dims, 3);
  ASSERT_EQ(back->count(), 20);
  EXPECT_EQ(back->segments[7].seg.p0, node.segments[7].seg.p0);
}

}  // namespace
}  // namespace dqmo
