// Tests for TrajectorySegment: the moving-window trapezoid of Fig. 3 and
// its overlap-time computations (Eq. (3)), validated against sampling.
#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/trapezoid.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::RandomPoint;

TrajectorySegment MovingWindow(Vec c0, Vec c1, double side, double t0,
                               double t1) {
  return TrajectorySegment(Box::Centered(c0, side), Box::Centered(c1, side),
                           Interval(t0, t1));
}

TEST(TrapezoidTest, WindowInterpolatesLinearly) {
  const TrajectorySegment s =
      MovingWindow(Vec(0.0, 0.0), Vec(10.0, 0.0), 2.0, 0.0, 10.0);
  EXPECT_EQ(s.WindowAt(0.0).Center(), Vec(0.0, 0.0));
  EXPECT_EQ(s.WindowAt(10.0).Center(), Vec(10.0, 0.0));
  EXPECT_EQ(s.WindowAt(5.0).Center(), Vec(5.0, 0.0));
  EXPECT_EQ(s.WindowAt(5.0).extent(0).length(), 2.0);
}

TEST(TrapezoidTest, WindowCanGrowAndShrink) {
  // Same center, window side goes 2 -> 6 (e.g. the observer gains altitude).
  const TrajectorySegment s(Box::Centered(Vec(0.0, 0.0), 2.0),
                            Box::Centered(Vec(0.0, 0.0), 6.0),
                            Interval(0.0, 4.0));
  EXPECT_DOUBLE_EQ(s.WindowAt(2.0).extent(0).length(), 4.0);
}

TEST(TrapezoidTest, StaticWindowOverlapIsPlainBoxTest) {
  const TrajectorySegment s =
      MovingWindow(Vec(5.0, 5.0), Vec(5.0, 5.0), 2.0, 0.0, 10.0);
  const StBox inside(Box(Interval(4.5, 5.5), Interval(4.5, 5.5)),
                     Interval(2.0, 3.0));
  EXPECT_EQ(s.OverlapTime(inside), Interval(2.0, 3.0));
  const StBox outside(Box(Interval(8.0, 9.0), Interval(8.0, 9.0)),
                      Interval(2.0, 3.0));
  EXPECT_TRUE(s.OverlapTime(outside).empty());
}

TEST(TrapezoidTest, MovingWindowEntersAndLeavesBox) {
  // Window of side 2 moving along x from center 0 to 10 over [0, 10];
  // static box at x in [4, 6]: window's leading edge reaches 4 when center
  // is at 3 (t = 3); trailing edge leaves 6 when center passes 7 (t = 7).
  const TrajectorySegment s =
      MovingWindow(Vec(0.0, 0.0), Vec(10.0, 0.0), 2.0, 0.0, 10.0);
  const StBox r(Box(Interval(4.0, 6.0), Interval(-1.0, 1.0)),
                Interval(0.0, 10.0));
  EXPECT_EQ(s.OverlapTime(r), Interval(3.0, 7.0));
}

TEST(TrapezoidTest, OverlapClippedBySegmentAndBoxTimes) {
  const TrajectorySegment s =
      MovingWindow(Vec(0.0, 0.0), Vec(10.0, 0.0), 2.0, 0.0, 10.0);
  const StBox r(Box(Interval(4.0, 6.0), Interval(-1.0, 1.0)),
                Interval(5.0, 6.5));
  EXPECT_EQ(s.OverlapTime(r), Interval(5.0, 6.5));
}

TEST(TrapezoidTest, MotionOvertakenByWindow) {
  // Object moving at speed 0.5 along x; window (side 2) moving at speed 1
  // starts behind and overtakes it.
  const StSegment m(Vec(5.0, 0.0), Vec(10.0, 0.0), Interval(0.0, 10.0));
  const TrajectorySegment s =
      MovingWindow(Vec(0.0, 0.0), Vec(10.0, 0.0), 2.0, 0.0, 10.0);
  // Window covers x in [t-1, t+1]; object at 5 + 0.5 t. Inside while
  // t - 1 <= 5 + 0.5t <= t + 1  ->  t >= 8 (lower) and always (upper).
  EXPECT_EQ(s.OverlapTime(m), Interval(8.0, 10.0));
}

TEST(TrapezoidTest, MotionCrossingWindowPath) {
  // Object crosses the window's path perpendicularly.
  const StSegment m(Vec(5.0, -5.0), Vec(5.0, 5.0), Interval(0.0, 10.0));
  const TrajectorySegment s =
      MovingWindow(Vec(0.0, 0.0), Vec(10.0, 0.0), 2.0, 0.0, 10.0);
  // x: window covers 5 while t in [4, 6]. y: object at -5 + t, inside
  // [-1, 1] while t in [4, 6]. Overlap: [4, 6].
  EXPECT_EQ(s.OverlapTime(m), Interval(4.0, 6.0));
}

TEST(TrapezoidTest, DegenerateInstantSegment) {
  const TrajectorySegment s(Box::Centered(Vec(0.0, 0.0), 2.0),
                            Box::Centered(Vec(0.0, 0.0), 2.0),
                            Interval(3.0, 3.0));
  const StBox hit(Box(Interval(-0.5, 0.5), Interval(-0.5, 0.5)),
                  Interval(0.0, 10.0));
  EXPECT_EQ(s.OverlapTime(hit), Interval::Point(3.0));
}

// Property: box overlap times match dense sampling of WindowAt.
class TrapezoidBoxProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrapezoidBoxProperty, BoxOverlapMatchesSampling) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const TrajectorySegment s(
        Box::Centered(RandomPoint(&rng, 2, 10), rng.Uniform(0.5, 4.0)),
        Box::Centered(RandomPoint(&rng, 2, 10), rng.Uniform(0.5, 4.0)),
        Interval(0.0, 10.0));
    const StBox r = dqmo::testing::RandomQueryBox(&rng, 2, 10, 10, 6, 10);
    const Interval overlap = s.OverlapTime(r);
    for (int k = 0; k <= 60; ++k) {
      const double t = 10.0 * k / 60.0;
      const bool inside =
          r.time.Contains(t) && s.WindowAt(t).Overlaps(r.spatial);
      if (inside) {
        EXPECT_TRUE(overlap.Contains(t)) << "t=" << t;
      }
      if (!overlap.empty() &&
          (t < overlap.lo - 1e-9 || t > overlap.hi + 1e-9)) {
        EXPECT_FALSE(inside) << "t=" << t;
      }
      if (overlap.empty()) {
        EXPECT_FALSE(inside) << "t=" << t;
      }
    }
  }
}

// Property: motion overlap times match dense sampling of positions.
TEST_P(TrapezoidBoxProperty, MotionOverlapMatchesSampling) {
  Rng rng(GetParam() + 1000);
  for (int iter = 0; iter < 200; ++iter) {
    const TrajectorySegment s(
        Box::Centered(RandomPoint(&rng, 2, 10), rng.Uniform(0.5, 4.0)),
        Box::Centered(RandomPoint(&rng, 2, 10), rng.Uniform(0.5, 4.0)),
        Interval(2.0, 8.0));
    const StSegment m(RandomPoint(&rng, 2, 10), RandomPoint(&rng, 2, 10),
                      Interval(rng.Uniform(0, 4), rng.Uniform(6, 10)));
    const Interval overlap = s.OverlapTime(m);
    const Interval span = s.time.Intersect(m.time);
    for (int k = 0; k <= 60; ++k) {
      const double t = span.lo + (span.hi - span.lo) * k / 60.0;
      const bool inside = s.WindowAt(t).Contains(m.PositionAt(t));
      if (inside) {
        EXPECT_TRUE(overlap.Contains(t)) << "t=" << t;
      }
      if (!overlap.empty() &&
          (t < overlap.lo - 1e-9 || t > overlap.hi + 1e-9)) {
        EXPECT_FALSE(inside) << "t=" << t;
      }
      if (overlap.empty()) {
        EXPECT_FALSE(inside) << "t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrapezoidBoxProperty,
                         ::testing::Values(7, 17, 27));

}  // namespace
}  // namespace dqmo
