// Determinism regression: two serial runs of the same seeded session
// workload must be byte-identical — same per-session checksums, same
// delivered-object counts, same QueryStats, and the same IoStats on the
// backing file. Guards against nondeterminism creeping into the engine
// (iteration-order dependence, uninitialized state, hidden time/randomness).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "server/executor.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::RandomSegments;

std::vector<SessionSpec> Workload() {
  std::vector<SessionSpec> specs;
  for (int i = 0; i < 6; ++i) {
    SessionSpec spec;
    spec.kind = static_cast<SessionKind>(i % 3);
    spec.seed = 31 + static_cast<uint64_t>(i);
    spec.frames = 30;
    spec.t0 = 3.0 + 0.7 * i;
    specs.push_back(spec);
  }
  return specs;
}

TEST(DeterminismTest, SerialRunsAreByteIdentical) {
  PageFile file;
  auto tree_or = RTree::Create(&file, RTree::Options());
  ASSERT_TRUE(tree_or.ok());
  std::unique_ptr<RTree> tree = std::move(tree_or).value();
  Rng rng(2026);
  for (const auto& m : RandomSegments(&rng, 600, 2, 100, 100)) {
    ASSERT_TRUE(tree->Insert(m).ok());
  }
  ASSERT_TRUE(file.Publish().ok());

  const std::vector<SessionSpec> specs = Workload();
  auto run = [&](IoStats* io) {
    file.ResetStats();
    BufferPool pool(&file, 96, /*num_shards=*/4);
    SessionScheduler::Options opt;
    opt.num_threads = 1;  // Serial mode: IoStats must replay exactly too.
    opt.reader = &pool;
    opt.pool = &pool;
    ExecutorReport report = SessionScheduler(tree.get(), opt).Run(specs);
    *io = file.stats();
    return report;
  };

  IoStats io1, io2;
  const ExecutorReport r1 = run(&io1);
  const ExecutorReport r2 = run(&io2);

  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  ASSERT_TRUE(r2.status.ok()) << r2.status.ToString();
  ASSERT_EQ(r1.sessions.size(), r2.sessions.size());
  for (size_t i = 0; i < r1.sessions.size(); ++i) {
    EXPECT_EQ(r1.sessions[i].checksum, r2.sessions[i].checksum)
        << "session " << i;
    EXPECT_EQ(r1.sessions[i].objects_delivered,
              r2.sessions[i].objects_delivered)
        << "session " << i;
    EXPECT_EQ(r1.sessions[i].frames_completed,
              r2.sessions[i].frames_completed)
        << "session " << i;
    EXPECT_EQ(r1.sessions[i].stats.node_reads, r2.sessions[i].stats.node_reads)
        << "session " << i;
    EXPECT_EQ(r1.sessions[i].stats.objects_returned,
              r2.sessions[i].stats.objects_returned)
        << "session " << i;
  }
  EXPECT_EQ(r1.total_objects, r2.total_objects);
  EXPECT_EQ(r1.pool_hits, r2.pool_hits);
  EXPECT_EQ(r1.pool_misses, r2.pool_misses);
  EXPECT_TRUE(io1 == io2) << io1.ToString() << " vs " << io2.ToString();
  EXPECT_GT(r1.total_objects, 0u);
}

TEST(DeterminismTest, ChecksumSensitiveToWorkload) {
  // Sanity: the checksum is not a constant — different seeds must yield
  // different results for at least one session kind.
  PageFile file;
  auto tree_or = RTree::Create(&file, RTree::Options());
  ASSERT_TRUE(tree_or.ok());
  std::unique_ptr<RTree> tree = std::move(tree_or).value();
  Rng rng(77);
  for (const auto& m : RandomSegments(&rng, 400, 2, 100, 100)) {
    ASSERT_TRUE(tree->Insert(m).ok());
  }
  ASSERT_TRUE(file.Publish().ok());

  SessionSpec a;
  a.seed = 1;
  SessionSpec b = a;
  b.seed = 2;
  const SessionResult ra = RunSession(tree.get(), a, nullptr, nullptr);
  const SessionResult rb = RunSession(tree.get(), b, nullptr, nullptr);
  ASSERT_TRUE(ra.status.ok());
  ASSERT_TRUE(rb.status.ok());
  EXPECT_NE(ra.checksum, rb.checksum);
}

}  // namespace
}  // namespace dqmo
