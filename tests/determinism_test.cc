// Determinism regression: two serial runs of the same seeded session
// workload must be byte-identical — same per-session checksums, same
// delivered-object counts, same QueryStats, and the same IoStats on the
// backing file. Guards against nondeterminism creeping into the engine
// (iteration-order dependence, uninitialized state, hidden time/randomness).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "rtree/node_cache.h"
#include "server/executor.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::RandomSegments;

std::vector<SessionSpec> Workload() {
  std::vector<SessionSpec> specs;
  for (int i = 0; i < 6; ++i) {
    SessionSpec spec;
    spec.kind = static_cast<SessionKind>(i % 3);
    spec.seed = 31 + static_cast<uint64_t>(i);
    spec.frames = 30;
    spec.t0 = 3.0 + 0.7 * i;
    specs.push_back(spec);
  }
  return specs;
}

TEST(DeterminismTest, SerialRunsAreByteIdentical) {
  PageFile file;
  auto tree_or = RTree::Create(&file, RTree::Options());
  ASSERT_TRUE(tree_or.ok());
  std::unique_ptr<RTree> tree = std::move(tree_or).value();
  Rng rng(2026);
  for (const auto& m : RandomSegments(&rng, 600, 2, 100, 100)) {
    ASSERT_TRUE(tree->Insert(m).ok());
  }
  ASSERT_TRUE(file.Publish().ok());

  const std::vector<SessionSpec> specs = Workload();
  auto run = [&](IoStats* io) {
    file.ResetStats();
    BufferPool pool(&file, 96, /*num_shards=*/4);
    SessionScheduler::Options opt;
    opt.num_threads = 1;  // Serial mode: IoStats must replay exactly too.
    opt.reader = &pool;
    opt.pool = &pool;
    ExecutorReport report = SessionScheduler(tree.get(), opt).Run(specs);
    *io = file.stats();
    return report;
  };

  IoStats io1, io2;
  const ExecutorReport r1 = run(&io1);
  const ExecutorReport r2 = run(&io2);

  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  ASSERT_TRUE(r2.status.ok()) << r2.status.ToString();
  ASSERT_EQ(r1.sessions.size(), r2.sessions.size());
  for (size_t i = 0; i < r1.sessions.size(); ++i) {
    EXPECT_EQ(r1.sessions[i].checksum, r2.sessions[i].checksum)
        << "session " << i;
    EXPECT_EQ(r1.sessions[i].objects_delivered,
              r2.sessions[i].objects_delivered)
        << "session " << i;
    EXPECT_EQ(r1.sessions[i].frames_completed,
              r2.sessions[i].frames_completed)
        << "session " << i;
    EXPECT_EQ(r1.sessions[i].stats.node_reads, r2.sessions[i].stats.node_reads)
        << "session " << i;
    EXPECT_EQ(r1.sessions[i].stats.objects_returned,
              r2.sessions[i].stats.objects_returned)
        << "session " << i;
  }
  EXPECT_EQ(r1.total_objects, r2.total_objects);
  EXPECT_EQ(r1.pool_hits, r2.pool_hits);
  EXPECT_EQ(r1.pool_misses, r2.pool_misses);
  EXPECT_TRUE(io1 == io2) << io1.ToString() << " vs " << io2.ToString();
  EXPECT_GT(r1.total_objects, 0u);
}

TEST(DeterminismTest, LegacyAndSoaPathsAreByteIdentical) {
  // The zero-copy hot path (SoA decode + batch kernels + relaxed atomic
  // counters) must be invisible to results AND to every exact counter:
  // checksums, delivered objects, node reads, distance computations. No
  // decoded-node cache here — with one attached, node_reads legitimately
  // shrink (hits are counted as decoded_hits instead).
  PageFile file;
  auto tree_or = RTree::Create(&file, RTree::Options());
  ASSERT_TRUE(tree_or.ok());
  std::unique_ptr<RTree> tree = std::move(tree_or).value();
  Rng rng(2027);
  for (const auto& m : RandomSegments(&rng, 600, 2, 100, 100)) {
    ASSERT_TRUE(tree->Insert(m).ok());
  }
  ASSERT_TRUE(file.Publish().ok());

  auto run = [&](HotPath hot_path) {
    std::vector<SessionSpec> specs = Workload();
    for (SessionSpec& spec : specs) spec.hot_path = hot_path;
    SessionScheduler::Options opt;
    opt.num_threads = 1;
    return SessionScheduler(tree.get(), opt).Run(specs);
  };

  const ExecutorReport soa = run(HotPath::kSoa);
  const ExecutorReport aos = run(HotPath::kLegacyAos);
  ASSERT_TRUE(soa.status.ok()) << soa.status.ToString();
  ASSERT_TRUE(aos.status.ok()) << aos.status.ToString();
  ASSERT_EQ(soa.sessions.size(), aos.sessions.size());
  for (size_t i = 0; i < soa.sessions.size(); ++i) {
    EXPECT_EQ(soa.sessions[i].checksum, aos.sessions[i].checksum)
        << "session " << i;
    EXPECT_EQ(soa.sessions[i].objects_delivered,
              aos.sessions[i].objects_delivered)
        << "session " << i;
    const QueryStats& s = soa.sessions[i].stats;
    const QueryStats& a = aos.sessions[i].stats;
    EXPECT_EQ(s.node_reads, a.node_reads) << "session " << i;
    EXPECT_EQ(s.leaf_reads, a.leaf_reads) << "session " << i;
    EXPECT_EQ(s.distance_computations, a.distance_computations)
        << "session " << i;
    EXPECT_EQ(s.objects_returned, a.objects_returned) << "session " << i;
    EXPECT_EQ(s.nodes_discarded, a.nodes_discarded) << "session " << i;
    EXPECT_EQ(s.queue_pushes, a.queue_pushes) << "session " << i;
    EXPECT_EQ(s.queue_pops, a.queue_pops) << "session " << i;
    EXPECT_EQ(s.duplicates_skipped, a.duplicates_skipped) << "session " << i;
  }
  EXPECT_EQ(soa.total_objects, aos.total_objects);
  EXPECT_GT(soa.total_objects, 0u);
  // The SoA run never touched the cacheless decoded-hit counter.
  EXPECT_EQ(soa.total_stats.decoded_hits, 0u);
}

TEST(DeterminismTest, DecodedNodeCacheIsTransparent) {
  // Rerunning the workload with a decoded-node cache attached must change
  // only the cost split (decoded_hits replacing repeat node_reads), never
  // the results.
  PageFile file;
  auto tree_or = RTree::Create(&file, RTree::Options());
  ASSERT_TRUE(tree_or.ok());
  std::unique_ptr<RTree> tree = std::move(tree_or).value();
  Rng rng(2028);
  for (const auto& m : RandomSegments(&rng, 600, 2, 100, 100)) {
    ASSERT_TRUE(tree->Insert(m).ok());
  }
  ASSERT_TRUE(file.Publish().ok());

  const std::vector<SessionSpec> specs = Workload();
  SessionScheduler::Options opt;
  opt.num_threads = 1;
  const ExecutorReport uncached = SessionScheduler(tree.get(), opt).Run(specs);

  DecodedNodeCache cache(512);
  tree->AttachNodeCache(&cache);
  const ExecutorReport cached = SessionScheduler(tree.get(), opt).Run(specs);
  tree->AttachNodeCache(nullptr);

  ASSERT_TRUE(uncached.status.ok());
  ASSERT_TRUE(cached.status.ok());
  ASSERT_EQ(uncached.sessions.size(), cached.sessions.size());
  for (size_t i = 0; i < uncached.sessions.size(); ++i) {
    EXPECT_EQ(uncached.sessions[i].checksum, cached.sessions[i].checksum)
        << "session " << i;
    EXPECT_EQ(uncached.sessions[i].objects_delivered,
              cached.sessions[i].objects_delivered)
        << "session " << i;
    EXPECT_EQ(uncached.sessions[i].stats.objects_returned,
              cached.sessions[i].stats.objects_returned)
        << "session " << i;
    EXPECT_EQ(uncached.sessions[i].stats.distance_computations,
              cached.sessions[i].stats.distance_computations)
        << "session " << i;
  }
  EXPECT_GT(cached.total_stats.decoded_hits.load(), 0u);
  EXPECT_LT(cached.total_stats.node_reads.load(),
            uncached.total_stats.node_reads.load());
  // Physical reads + cache hits account for exactly the visits the
  // uncached run paid for with reads.
  EXPECT_EQ(cached.total_stats.node_reads.load() +
                cached.total_stats.decoded_hits.load(),
            uncached.total_stats.node_reads.load());
}

TEST(DeterminismTest, ChecksumSensitiveToWorkload) {
  // Sanity: the checksum is not a constant — different seeds must yield
  // different results for at least one session kind.
  PageFile file;
  auto tree_or = RTree::Create(&file, RTree::Options());
  ASSERT_TRUE(tree_or.ok());
  std::unique_ptr<RTree> tree = std::move(tree_or).value();
  Rng rng(77);
  for (const auto& m : RandomSegments(&rng, 400, 2, 100, 100)) {
    ASSERT_TRUE(tree->Insert(m).ok());
  }
  ASSERT_TRUE(file.Publish().ok());

  SessionSpec a;
  a.seed = 1;
  SessionSpec b = a;
  b.seed = 2;
  const SessionResult ra = RunSession(tree.get(), a, nullptr, nullptr);
  const SessionResult rb = RunSession(tree.get(), b, nullptr, nullptr);
  ASSERT_TRUE(ra.status.ok());
  ASSERT_TRUE(rb.status.ok());
  EXPECT_NE(ra.checksum, rb.checksum);
}

}  // namespace
}  // namespace dqmo
