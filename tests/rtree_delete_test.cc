// Tests for R-tree deletion: condense-and-reinsert, root collapse, page
// recycling, and query correctness after interleaved inserts and removes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "rtree/rtree.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::BruteForceRange;
using ::dqmo::testing::KeysOf;
using ::dqmo::testing::RandomSegments;

std::unique_ptr<RTree> MakeTree(PageFile* file) {
  auto tree = RTree::Create(file, RTree::Options());
  EXPECT_TRUE(tree.ok());
  return std::move(tree).value();
}

TEST(RTreeDeleteTest, RemoveFromEmptyTreeIsNotFound) {
  PageFile file;
  auto tree = MakeTree(&file);
  MotionSegment m(1, StSegment(Vec(1, 1), Vec(2, 2), Interval(0, 1)));
  EXPECT_TRUE(tree->Remove(m).IsNotFound());
}

TEST(RTreeDeleteTest, InsertThenRemoveRoundTrip) {
  PageFile file;
  auto tree = MakeTree(&file);
  MotionSegment m(7, StSegment(Vec(1, 1), Vec(2, 2), Interval(0, 1)));
  ASSERT_TRUE(tree->Insert(m).ok());
  EXPECT_EQ(tree->num_segments(), 1u);
  ASSERT_TRUE(tree->Remove(m).ok());
  EXPECT_EQ(tree->num_segments(), 0u);
  EXPECT_TRUE(tree->Remove(m).IsNotFound());  // Second remove fails.
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(RTreeDeleteTest, RemoveRejectsDimsMismatch) {
  PageFile file;
  auto tree = MakeTree(&file);
  MotionSegment m(1, StSegment(Vec(1, 1, 1), Vec(2, 2, 2), Interval(0, 1)));
  EXPECT_TRUE(tree->Remove(m).IsInvalidArgument());
}

TEST(RTreeDeleteTest, RemoveAcceptsUnquantizedOriginal) {
  // The caller may pass the original (double-precision) update; removal
  // must quantize identically to insertion.
  PageFile file;
  auto tree = MakeTree(&file);
  MotionSegment m(3, StSegment(Vec(10.123456789, 20.987654321),
                               Vec(11.111111111, 21.222222222),
                               Interval(0.333333333, 1.666666666)));
  ASSERT_TRUE(tree->Insert(m).ok());
  EXPECT_TRUE(tree->Remove(m).ok());
  EXPECT_EQ(tree->num_segments(), 0u);
}

class RTreeDeleteRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RTreeDeleteRandomized, DeleteHalfMatchesBruteForce) {
  PageFile file;
  auto tree = MakeTree(&file);
  Rng rng(GetParam());
  std::vector<MotionSegment> alive = RandomSegments(&rng, 3000, 2, 100, 100);
  for (const auto& m : alive) ASSERT_TRUE(tree->Insert(m).ok());

  // Remove a random half, checking invariants periodically.
  for (int round = 0; round < 1500; ++round) {
    const size_t victim = rng.UniformU64(alive.size());
    ASSERT_TRUE(tree->Remove(alive[victim]).ok()) << "round " << round;
    alive.erase(alive.begin() + static_cast<ptrdiff_t>(victim));
    if (round % 300 == 299) {
      ASSERT_TRUE(tree->CheckInvariants().ok()) << "round " << round;
    }
  }
  EXPECT_EQ(tree->num_segments(), alive.size());
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (int q = 0; q < 40; ++q) {
    const StBox query = dqmo::testing::RandomQueryBox(&rng, 2, 100, 100);
    QueryStats stats;
    auto result = tree->RangeSearch(query, &stats);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(KeysOf(*result), KeysOf(BruteForceRange(alive, query)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeDeleteRandomized,
                         ::testing::Values(11, 12, 13));

TEST(RTreeDeleteTest, DeleteEverythingCollapsesTree) {
  PageFile file;
  auto tree = MakeTree(&file);
  Rng rng(21);
  const auto data = RandomSegments(&rng, 2000, 2, 100, 100);
  for (const auto& m : data) ASSERT_TRUE(tree->Insert(m).ok());
  ASSERT_GE(tree->height(), 2);
  for (const auto& m : data) {
    ASSERT_TRUE(tree->Remove(m).ok());
  }
  EXPECT_EQ(tree->num_segments(), 0u);
  EXPECT_EQ(tree->height(), 1);
  EXPECT_EQ(tree->num_nodes(), 1u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
  // And the tree remains fully usable.
  for (const auto& m : data) ASSERT_TRUE(tree->Insert(m).ok());
  EXPECT_EQ(tree->num_segments(), data.size());
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(RTreeDeleteTest, PagesAreRecycled) {
  PageFile file;
  auto tree = MakeTree(&file);
  Rng rng(22);
  const auto data = RandomSegments(&rng, 2000, 2, 100, 100);
  for (const auto& m : data) ASSERT_TRUE(tree->Insert(m).ok());
  const size_t pages_after_build = file.num_pages();
  // Churn: delete and reinsert everything a few times; the file must not
  // grow materially (freed pages get reused).
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (const auto& m : data) ASSERT_TRUE(tree->Remove(m).ok());
    for (const auto& m : data) ASSERT_TRUE(tree->Insert(m).ok());
  }
  EXPECT_LE(file.num_pages(), pages_after_build + 8);
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(RTreeDeleteTest, StampAdvancesOnRemove) {
  PageFile file;
  auto tree = MakeTree(&file);
  MotionSegment m(5, StSegment(Vec(1, 1), Vec(2, 2), Interval(0, 1)));
  ASSERT_TRUE(tree->Insert(m).ok());
  const UpdateStamp before = tree->stamp();
  ASSERT_TRUE(tree->Remove(m).ok());
  EXPECT_GT(tree->stamp(), before);
}

TEST(RTreeDeleteTest, PersistenceAfterDeletions) {
  const std::string path =
      std::string(::testing::TempDir()) + "/rtree_delete_persist.pgf";
  Rng rng(23);
  auto data = RandomSegments(&rng, 1500, 2, 100, 100);
  std::set<MotionSegment::Key> expected;
  {
    PageFile file;
    auto tree = MakeTree(&file);
    for (const auto& m : data) ASSERT_TRUE(tree->Insert(m).ok());
    for (size_t i = 0; i < data.size(); i += 2) {
      ASSERT_TRUE(tree->Remove(data[i]).ok());
    }
    std::vector<MotionSegment> alive;
    for (size_t i = 1; i < data.size(); i += 2) alive.push_back(data[i]);
    QueryStats stats;
    const StBox everything(
        Box(Interval(-1, 101), Interval(-1, 101)), Interval(-1, 101));
    expected = KeysOf(tree->RangeSearch(everything, &stats).value());
    EXPECT_EQ(expected, KeysOf(alive));
    ASSERT_TRUE(tree->Flush().ok());
    ASSERT_TRUE(file.SaveTo(path).ok());
  }
  {
    PageFile file;
    ASSERT_TRUE(file.LoadFrom(path).ok());
    auto tree = RTree::Open(&file);
    ASSERT_TRUE(tree.ok());
    QueryStats stats;
    const StBox everything(
        Box(Interval(-1, 101), Interval(-1, 101)), Interval(-1, 101));
    EXPECT_EQ(KeysOf((*tree)->RangeSearch(everything, &stats).value()),
              expected);
    EXPECT_TRUE((*tree)->CheckInvariants().ok());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dqmo
