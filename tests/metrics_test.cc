// Tests for the metrics/tracing layer: log-bucket placement (property
// test), snapshot merge algebra, multi-thread hammering (the TSan stage
// runs this binary), registry exposition formats, the enabled/disabled
// gating contract, and the slow-frame span-tree capture.
#include "common/metrics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "rtree/stats.h"
#include "server/health.h"
#include "server/scrubber.h"
#include "server/shard.h"
#include "workload/data_generator.h"

namespace dqmo {
namespace {

// Every test forces metrics on (the binary may run under DQMO_METRICS=off)
// and starts from zeroed values. Compile-time-disabled builds skip: the
// record paths are folded out, so there is nothing to test.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(true);
    if (!MetricsEnabled()) GTEST_SKIP() << "metrics compiled out";
    MetricsRegistry::Global().ResetAllForTest();
  }
};

// ---------------------------------------------------------------------------
// Bucket placement.

TEST_F(MetricsTest, BucketIndexKnownValues) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(10), 512u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);
}

// Property: every value lands in a bucket whose [lower, upper] range
// contains it, across the whole 64-bit range (uniform bit widths, so high
// buckets are exercised as hard as low ones).
TEST_F(MetricsTest, BucketIndexProperty) {
  std::mt19937_64 rng(20260806);
  for (int i = 0; i < 20000; ++i) {
    const int width = static_cast<int>(rng() % 65);  // 0..64 significant bits.
    const uint64_t v =
        width == 0 ? 0 : (rng() >> (64 - width)) | (uint64_t{1} << (width - 1));
    const int b = Histogram::BucketIndex(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, Histogram::kNumBuckets);
    ASSERT_LE(Histogram::BucketLowerBound(b), v)
        << "v=" << v << " bucket=" << b;
    ASSERT_GE(Histogram::BucketUpperBound(b), v)
        << "v=" << v << " bucket=" << b;
    // Buckets tile the domain: the next bucket starts right after this one.
    if (b < 64) {
      ASSERT_EQ(Histogram::BucketLowerBound(b + 1),
                Histogram::BucketUpperBound(b) + 1);
    }
  }
}

// ---------------------------------------------------------------------------
// Recording and quantiles.

TEST_F(MetricsTest, RecordAndSnapshot) {
  Histogram h;
  for (uint64_t v : {0ull, 1ull, 5ull, 1000ull}) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 1006u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.buckets[0], 1u);  // 0
  EXPECT_EQ(snap.buckets[1], 1u);  // 1
  EXPECT_EQ(snap.buckets[3], 1u);  // 5 in [4, 7]
  EXPECT_EQ(snap.buckets[10], 1u);  // 1000 in [512, 1023]
  EXPECT_DOUBLE_EQ(snap.mean(), 1006.0 / 4.0);
}

TEST_F(MetricsTest, PercentileUpperBoundAndClamp) {
  Histogram h;
  for (int i = 0; i < 9; ++i) h.Record(1);
  h.Record(1000);
  const HistogramSnapshot snap = h.Snapshot();
  // p50 is in the bucket of 1 (exact upper bound 1); p95+ falls into the
  // bucket of 1000, whose upper bound (1023) clamps to the observed max.
  EXPECT_EQ(snap.Percentile(50), 1u);
  EXPECT_EQ(snap.Percentile(95), 1000u);
  EXPECT_EQ(snap.Percentile(99), 1000u);
  EXPECT_EQ(snap.Percentile(100), 1000u);
  EXPECT_EQ(HistogramSnapshot{}.Percentile(99), 0u);  // Empty: no samples.
}

// ---------------------------------------------------------------------------
// Merge algebra: commutative and associative, so per-thread / per-shard
// snapshots can be combined in any order.

HistogramSnapshot RandomSnapshot(uint64_t seed, int samples) {
  std::mt19937_64 rng(seed);
  Histogram h;
  for (int i = 0; i < samples; ++i) h.Record(rng() >> (rng() % 64));
  return h.Snapshot();
}

void ExpectEqualSnapshots(const HistogramSnapshot& a,
                          const HistogramSnapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
    ASSERT_EQ(a.buckets[i], b.buckets[i]) << "bucket " << i;
  }
}

TEST_F(MetricsTest, MergeCommutative) {
  const HistogramSnapshot a = RandomSnapshot(1, 500);
  const HistogramSnapshot b = RandomSnapshot(2, 300);
  HistogramSnapshot ab = a;
  ab.Merge(b);
  HistogramSnapshot ba = b;
  ba.Merge(a);
  ExpectEqualSnapshots(ab, ba);
  EXPECT_EQ(ab.count, a.count + b.count);
  EXPECT_EQ(ab.sum, a.sum + b.sum);
}

TEST_F(MetricsTest, MergeAssociative) {
  const HistogramSnapshot a = RandomSnapshot(3, 400);
  const HistogramSnapshot b = RandomSnapshot(4, 200);
  const HistogramSnapshot c = RandomSnapshot(5, 100);
  HistogramSnapshot ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);
  HistogramSnapshot bc = b;
  bc.Merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.Merge(bc);
  ExpectEqualSnapshots(ab_c, a_bc);
}

// ---------------------------------------------------------------------------
// Concurrency: the histogram's lock-free recording must neither race (TSan
// runs this binary in ci.sh) nor lose counts.

TEST_F(MetricsTest, ConcurrentHistogramHammer) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  Histogram h;
  Counter c;
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      expected_sum += static_cast<uint64_t>(t * kPerThread + i) % 4096;
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &c, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * kPerThread + i) % 4096);
        c.Add();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_EQ(snap.max, 4095u);
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Registry and exposition.

TEST_F(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c1 = reg.GetCounter("dqmo_test_stable_total", "help once");
  Counter* c2 = reg.GetCounter("dqmo_test_stable_total");
  EXPECT_EQ(c1, c2);
  Histogram* h1 = reg.GetHistogram("dqmo_test_stable_ns");
  Histogram* h2 = reg.GetHistogram("dqmo_test_stable_ns");
  EXPECT_EQ(h1, h2);
}

TEST_F(MetricsTest, PrometheusTextFormat) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("dqmo_test_events_total", "Test events")->Add(3);
  Histogram* h = reg.GetHistogram("dqmo_test_wait_ns", "Test waits");
  h->Record(1);
  h->Record(1);
  h->Record(700);
  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# HELP dqmo_test_events_total Test events"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dqmo_test_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("dqmo_test_events_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dqmo_test_wait_ns histogram"),
            std::string::npos);
  // Cumulative le-series: the bucket of 1 holds 2 samples, and by the
  // bucket of 700 ([512, 1023]) all 3 are covered.
  EXPECT_NE(text.find("dqmo_test_wait_ns_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("dqmo_test_wait_ns_bucket{le=\"1023\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("dqmo_test_wait_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("dqmo_test_wait_ns_sum 702"), std::string::npos);
  EXPECT_NE(text.find("dqmo_test_wait_ns_count 3"), std::string::npos);
}

TEST_F(MetricsTest, JsonTextFormat) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("dqmo_test_json_total")->Add(7);
  reg.GetGauge("dqmo_test_json_depth")->Set(-2);
  reg.GetHistogram("dqmo_test_json_ns")->Record(42);
  const std::string json = reg.JsonText();
  EXPECT_NE(json.find("\"dqmo_test_json_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"dqmo_test_json_depth\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"dqmo_test_json_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST_F(MetricsTest, RowsSortedByName) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("dqmo_test_zz_total")->Add(1);
  reg.GetCounter("dqmo_test_aa_total")->Add(1);
  const std::vector<MetricsRegistry::Row> rows = reg.Rows();
  ASSERT_GE(rows.size(), 2u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].name, rows[i].name);
  }
}

// ---------------------------------------------------------------------------
// Gating: with metrics off, record paths are inert and the timing helpers
// never touch the clock (TickNs() == 0 and RecordSince(0) is a no-op).

TEST_F(MetricsTest, DisabledRecordingIsInert) {
  Counter c;
  Gauge g;
  Histogram h;
  SetMetricsEnabled(false);
  EXPECT_EQ(TickNs(), 0u);
  c.Add(5);
  g.Set(9);
  h.Record(123);
  h.RecordSince(0);
  { ScopedLatencyTimer timer(&h); }
  SetMetricsEnabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
}

// ---------------------------------------------------------------------------
// Tracer: slow-frame capture reproduces the span tree.

class TracerTest : public MetricsTest {
 protected:
  void SetUp() override {
    MetricsTest::SetUp();
    if (IsSkipped()) return;
    saved_ = Tracer::Global().options();
    Tracer::Global().ClearSlowFrames();
  }
  void TearDown() override {
    if (!IsSkipped()) {
      Tracer::Global().Configure(saved_);
      Tracer::Global().ClearSlowFrames();
    }
    MetricsTest::TearDown();
  }
  Tracer::Options saved_;
};

TEST_F(TracerTest, SlowFrameCapturesSpanTree) {
  Tracer::Options options;
  options.slow_frame_ns = 1000;  // 1us: the sleeping frame must overrun it.
  Tracer::Global().Configure(options);
  {
    Tracer::FrameScope frame(/*session_id=*/7, /*frame_index=*/42);
    ASSERT_TRUE(Tracer::FrameArmed());
    Tracer::SpanScope fetch(SpanKind::kNodeFetch, /*detail=*/19);
    {
      Tracer::SpanScope decode(SpanKind::kSoaDecode);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_FALSE(Tracer::FrameArmed());
  ASSERT_EQ(Tracer::Global().slow_frames_captured(), 1u);
  const std::vector<FrameTrace> frames = Tracer::Global().SlowFrames();
  ASSERT_EQ(frames.size(), 1u);
  const FrameTrace& trace = frames[0];
  EXPECT_EQ(trace.session_id, 7u);
  EXPECT_EQ(trace.frame_index, 42u);
  EXPECT_EQ(trace.deadline_ns, 1000u);
  EXPECT_GT(trace.duration_ns, 1000u);
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[0].kind, SpanKind::kNodeFetch);
  EXPECT_EQ(trace.spans[0].depth, 0);
  EXPECT_EQ(trace.spans[0].detail, 19u);
  EXPECT_EQ(trace.spans[1].kind, SpanKind::kSoaDecode);
  EXPECT_EQ(trace.spans[1].depth, 1);
  // Both spans cover the 2ms sleep; the child cannot outlast the parent.
  EXPECT_GE(trace.spans[1].duration_ns, 2000000u);
  EXPECT_GE(trace.spans[0].duration_ns, trace.spans[1].duration_ns);
  const std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find("session=7"), std::string::npos);
  EXPECT_NE(rendered.find("index=42"), std::string::npos);
  EXPECT_NE(rendered.find("node_fetch"), std::string::npos);
  EXPECT_NE(rendered.find("soa_decode"), std::string::npos);
  // The child renders one indent level deeper than its parent.
  EXPECT_NE(rendered.find("\n  node_fetch"), std::string::npos);
  EXPECT_NE(rendered.find("\n    soa_decode"), std::string::npos);
}

TEST_F(TracerTest, FastFrameIsNotLogged) {
  Tracer::Options options;
  options.slow_frame_ns = uint64_t{60} * 1000 * 1000 * 1000;  // 60s.
  Tracer::Global().Configure(options);
  {
    Tracer::FrameScope frame(1, 1);
    Tracer::SpanScope span(SpanKind::kKernelPrune);
  }
  EXPECT_EQ(Tracer::Global().slow_frames_captured(), 0u);
}

TEST_F(TracerTest, SlowLogRingEvictsOldest) {
  Tracer::Options options;
  options.slow_frame_ns = 1;
  options.slow_log_capacity = 4;
  Tracer::Global().Configure(options);
  for (uint64_t i = 0; i < 10; ++i) {
    Tracer::FrameScope frame(/*session_id=*/1, /*frame_index=*/i);
  }
  EXPECT_EQ(Tracer::Global().slow_frames_captured(), 10u);
  const std::vector<FrameTrace> frames = Tracer::Global().SlowFrames();
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames.front().frame_index, 6u);  // Oldest surviving.
  EXPECT_EQ(frames.back().frame_index, 9u);
}

TEST_F(TracerTest, SampledFrameFeedsSpanHistograms) {
  Tracer::Options options;
  options.sample_every = 1;  // Every frame.
  Tracer::Global().Configure(options);
  Histogram* spans = MetricsRegistry::Global().GetHistogram(
      "dqmo_span_kernel_prune_ns");
  Histogram* frames =
      MetricsRegistry::Global().GetHistogram("dqmo_query_frame_ns");
  const uint64_t spans_before = spans->count();
  const uint64_t frames_before = frames->count();
  {
    Tracer::FrameScope frame(3, 0);
    ASSERT_TRUE(Tracer::FrameArmed());
    Tracer::SpanScope span(SpanKind::kKernelPrune, 64);
  }
  EXPECT_EQ(spans->count(), spans_before + 1);
  EXPECT_EQ(frames->count(), frames_before + 1);
}

TEST_F(TracerTest, UnarmedFrameRecordsNoSpans) {
  Tracer::Global().Configure(Tracer::Options{});  // Both features off.
  {
    Tracer::FrameScope frame(2, 0);
    EXPECT_FALSE(Tracer::FrameArmed());
    Tracer::SpanScope span(SpanKind::kHeapOp);
  }
  EXPECT_EQ(Tracer::Global().slow_frames_captured(), 0u);
}

// ---------------------------------------------------------------------------
// Node accounting (the PR4 exact-accounting invariant's one assertion
// point). The registry-backed counters start from zero here, so the sum
// rule holds trivially; the arithmetic helpers are what need coverage —
// the end-to-end check runs in `dqmo_tool stats` over a live workload.

TEST_F(MetricsTest, NodeAccountingArithmetic) {
  const NodeAccounting a{/*loads=*/10, /*decoded_hits=*/6,
                         /*physical_reads=*/3, /*pooled_reads=*/1};
  EXPECT_TRUE(a.Consistent());
  NodeAccounting leak = a;
  leak.loads = 11;  // One load never charged to a source.
  EXPECT_FALSE(leak.Consistent());
  const NodeAccounting b{4, 2, 1, 1};
  const NodeAccounting d = a - b;
  EXPECT_EQ(d.loads, 6u);
  EXPECT_EQ(d.decoded_hits, 4u);
  EXPECT_EQ(d.physical_reads, 2u);
  EXPECT_EQ(d.pooled_reads, 0u);
  EXPECT_TRUE(d.Consistent());
  EXPECT_NE(a.ToString().find("loads=10"), std::string::npos);
}

TEST_F(MetricsTest, ReadNodeAccountingMatchesRegistry) {
  MetricsRegistry::Global()
      .GetCounter("dqmo_rtree_node_loads_total")
      ->Add(5);
  MetricsRegistry::Global()
      .GetCounter("dqmo_rtree_decoded_hits_total")
      ->Add(3);
  MetricsRegistry::Global()
      .GetCounter("dqmo_rtree_reads_physical_total")
      ->Add(1);
  MetricsRegistry::Global()
      .GetCounter("dqmo_rtree_reads_pooled_total")
      ->Add(1);
  const NodeAccounting a = CheckNodeAccounting();  // Must not abort.
  EXPECT_EQ(a.loads, 5u);
  EXPECT_EQ(a.decoded_hits, 3u);
  EXPECT_EQ(a.physical_reads, 1u);
  EXPECT_EQ(a.pooled_reads, 1u);
}

// ---------------------------------------------------------------------------
// Failure-domain metric families (server/health.h). Golden exposition:
// every family the ops surface documents must exist under its exact name
// with the right type, and the breaker / redo-queue lifecycles must move
// the right series.

void ExpectContains(const std::string& text, const std::string& needle) {
  EXPECT_NE(text.find(needle), std::string::npos) << "missing: " << needle;
}

TEST_F(MetricsTest, HealthMetricFamiliesExposedWithTypes) {
  HealthMetrics::Get();  // Registers every family on first touch.
  const std::string text = MetricsRegistry::Global().PrometheusText();
  ExpectContains(text, "# TYPE dqmo_breaker_state gauge");
  ExpectContains(text, "# TYPE dqmo_breaker_transitions_total counter");
  ExpectContains(text, "# TYPE dqmo_quarantine_events_total counter");
  ExpectContains(text, "# TYPE dqmo_quarantined_frames_total counter");
  ExpectContains(text, "# TYPE dqmo_hedged_reads_total counter");
  ExpectContains(text, "# TYPE dqmo_hedged_reads_won_total counter");
  ExpectContains(text, "# TYPE dqmo_hedged_reads_lost_total counter");
  ExpectContains(text, "# TYPE dqmo_scrub_pages_total counter");
  ExpectContains(text, "# TYPE dqmo_scrub_pages_rebuilt_total counter");
  ExpectContains(text, "# TYPE dqmo_redo_queue_depth gauge");
  ExpectContains(text, "# TYPE dqmo_redo_parked_total counter");
  ExpectContains(text, "# TYPE dqmo_redo_drained_total counter");
  ExpectContains(text,
                 "# HELP dqmo_breaker_state Shards currently quarantined "
                 "or probing (not closed)");
}

TEST_F(MetricsTest, BreakerLifecycleMovesHealthSeries) {
  BreakerOptions opt;
  opt.consecutive_failures = 4;
  opt.probe_rate = 1.0;
  opt.probe_successes_to_close = 2;
  CircuitBreaker breaker(/*shard=*/0, opt);
  for (int i = 0; i < 4; ++i) breaker.OnReadOutcome(false, 1000);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  std::string text = MetricsRegistry::Global().PrometheusText();
  ExpectContains(text, "dqmo_breaker_state 1\n");
  ExpectContains(text, "dqmo_breaker_transitions_total 1\n");
  ExpectContains(text, "dqmo_quarantine_events_total 1\n");

  breaker.OnRepairComplete();  // open -> half-open: still not closed.
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.OnFrameStart();  // probe_rate 1.0: every frame probes.
  breaker.OnProbeOutcome(true);
  breaker.OnFrameStart();
  breaker.OnProbeOutcome(true);
  ASSERT_EQ(breaker.state(), BreakerState::kClosed);
  text = MetricsRegistry::Global().PrometheusText();
  ExpectContains(text, "dqmo_breaker_state 0\n");
  ExpectContains(text, "dqmo_breaker_transitions_total 3\n");
  ExpectContains(text, "dqmo_quarantine_events_total 1\n");  // Unchanged.
}

TEST_F(MetricsTest, RedoQueueAndScrubSeriesTrackEngineLifecycle) {
  DataGeneratorOptions gen;
  gen.num_objects = 40;
  gen.horizon = 6.0;
  gen.seed = 11;
  auto data = GenerateMotionData(gen);
  ASSERT_TRUE(data.ok());

  ShardedEngineOptions eopt;
  eopt.num_shards = 2;
  eopt.cache_nodes = 0;
  eopt.failure_domains = true;
  auto engine = ShardedEngine::Create(eopt);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->InsertBatch(*data).ok());

  const MotionSegment extra(
      9005, StSegment(Vec(40, 40), Vec(41, 41), Interval(2.0, 3.0)));
  const int sick = (*engine)->map().ShardOf(extra);
  (*engine)->breaker(sick)->ForceOpen("test");
  ASSERT_TRUE((*engine)->Insert(extra).ok());
  std::string text = MetricsRegistry::Global().PrometheusText();
  ExpectContains(text, "dqmo_redo_queue_depth 1\n");
  ExpectContains(text, "dqmo_redo_parked_total 1\n");
  ExpectContains(text, "dqmo_redo_drained_total 0\n");

  // Scrub: scans the quarantined shard (clean pages in memory), drains the
  // parked write, and promotes to half-open.
  const ShardScrubber::PassReport rep =
      ShardScrubber(engine->get(), ScrubOptions()).ScrubPass();
  EXPECT_EQ(rep.shards_promoted, 1) << rep.ToString();
  text = MetricsRegistry::Global().PrometheusText();
  ExpectContains(text, "dqmo_redo_queue_depth 0\n");
  ExpectContains(text, "dqmo_redo_drained_total 1\n");
  const uint64_t scanned = HealthMetrics::Get().scrub_pages->value();
  EXPECT_GE(scanned, (*engine)->shard(sick).file->num_pages());
}

}  // namespace
}  // namespace dqmo
