// Tests for the deterministic fault injector and the retrying reader
// (storage/fault.h).
#include "storage/fault.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "storage/page.h"
#include "storage/page_file.h"

namespace dqmo {
namespace {

/// A page file with `n` pages whose payloads are filled with their id.
PageFile MakeFile(int n) {
  PageFile f;
  uint8_t buf[kPageSize];
  for (int i = 0; i < n; ++i) {
    const PageId id = f.Allocate();
    std::memset(buf, static_cast<int>(0x10 + i), kPageSize);
    EXPECT_TRUE(f.Write(id, buf).ok());
  }
  return f;
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultInjector::Options options;
  options.seed = 1234;
  options.transient_fault_rate = 0.25;
  FaultInjector a(options);
  FaultInjector b(options);
  for (int i = 0; i < 2000; ++i) {
    const PageId page = static_cast<PageId>(i % 7);
    EXPECT_EQ(static_cast<int>(a.NextRead(page).kind),
              static_cast<int>(b.NextRead(page).kind))
        << "diverged at read " << i;
  }
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  EXPECT_GT(a.faults_injected(), 0u);   // 0.25 over 2000 reads: certain.
  EXPECT_LT(a.faults_injected(), 1000u);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector::Options options;
  options.transient_fault_rate = 0.5;
  options.seed = 1;
  FaultInjector a(options);
  options.seed = 2;
  FaultInjector b(options);
  int diffs = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.NextRead(0).kind != b.NextRead(0).kind) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultInjectorTest, ScheduleIsIndependentOfPageIds) {
  // The Bernoulli stream advances once per read regardless of which page is
  // read, so two query plans touching different pages see the same fault
  // positions — what makes degraded-run replays meaningful.
  FaultInjector::Options options;
  options.seed = 99;
  options.transient_fault_rate = 0.3;
  FaultInjector a(options);
  FaultInjector b(options);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(static_cast<int>(a.NextRead(0).kind),
              static_cast<int>(b.NextRead(static_cast<PageId>(i)).kind))
        << "read " << i;
  }
}

TEST(FaultInjectorTest, FailAfterIsPermanent) {
  FaultInjector::Options options;
  options.fail_after = 5;
  FaultInjector injector(options);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(injector.NextRead(0).kind,
              FaultInjector::Decision::Kind::kPass);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(injector.NextRead(0).kind,
              FaultInjector::Decision::Kind::kPermanentFail);
  }
}

TEST(FaultInjectorTest, FailEveryKthIsTransient) {
  FaultInjector::Options options;
  options.fail_every_kth = 3;
  FaultInjector injector(options);
  for (int i = 1; i <= 12; ++i) {
    const auto kind = injector.NextRead(0).kind;
    if (i % 3 == 0) {
      EXPECT_EQ(kind, FaultInjector::Decision::Kind::kTransientFail) << i;
    } else {
      EXPECT_EQ(kind, FaultInjector::Decision::Kind::kPass) << i;
    }
  }
}

TEST(FaultInjectorTest, DeadPagesAlwaysFail) {
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(3);
  EXPECT_EQ(injector.NextRead(2).kind, FaultInjector::Decision::Kind::kPass);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(injector.NextRead(3).kind,
              FaultInjector::Decision::Kind::kPermanentFail);
  }
}

TEST(FaultyPageReaderTest, TransientBitFlipDamagesOnlyOneDelivery) {
  PageFile file = MakeFile(2);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddBitFlip(/*page=*/1, /*offset=*/40, /*mask=*/0x08,
                      /*transient=*/true);
  FaultyPageReader faulty(&file, &injector);

  auto first = faulty.Read(1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->data[40], 0x11 ^ 0x08);
  EXPECT_FALSE(PageChecksumOk(first->data));  // The flip is detectable.

  // The base page was never touched; the next delivery is clean.
  auto second = faulty.Read(1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->data[40], 0x11);
  EXPECT_TRUE(PageChecksumOk(second->data));
}

TEST(FaultyPageReaderTest, PersistentBitFlipDamagesEveryDelivery) {
  PageFile file = MakeFile(1);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddBitFlip(0, 7, 0x80, /*transient=*/false);
  FaultyPageReader faulty(&file, &injector);
  for (int i = 0; i < 3; ++i) {
    auto read = faulty.Read(0);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->data[7], 0x10 ^ 0x80);
  }
  // The stored page itself stays pristine.
  auto direct = file.Read(0);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->data[7], 0x10);
}

TEST(RetryingPageReaderTest, AbsorbsTransientFaults) {
  PageFile file = MakeFile(1);
  FaultInjector::Options options;
  options.fail_every_kth = 2;  // Reads 2, 4, 6, ... fail transiently.
  FaultInjector injector(options);
  FaultyPageReader faulty(&file, &injector);
  RetryingPageReader::RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingPageReader retrying(&faulty, policy, file.mutable_stats());

  // Read 1 passes outright; read 2 fails and its retry (read 3) passes; and
  // so on — every logical read succeeds, some after one retry.
  for (int i = 0; i < 10; ++i) {
    auto read = retrying.Read(0);
    ASSERT_TRUE(read.ok()) << "logical read " << i;
    EXPECT_EQ(read->data[0], 0x10);
  }
  EXPECT_GT(file.stats().retries, 0u);
  EXPECT_EQ(retrying.exhausted_reads(), 0u);
}

TEST(RetryingPageReaderTest, RetriesChecksumMismatchAndRecovers) {
  PageFile file = MakeFile(1);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddBitFlip(0, 123, 0x01, /*transient=*/true);
  FaultyPageReader faulty(&file, &injector);
  RetryingPageReader retrying(&faulty, RetryingPageReader::RetryPolicy{},
                              file.mutable_stats());

  // First attempt delivers a corrupt copy; the verifier catches it and the
  // retry (transient flip now spent) delivers clean bytes.
  auto read = retrying.Read(0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->data[123], 0x10);
  EXPECT_TRUE(PageChecksumOk(read->data));
  EXPECT_EQ(file.stats().checksum_failures, 1u);
  EXPECT_EQ(file.stats().retries, 1u);
}

TEST(RetryingPageReaderTest, PermanentFaultExhaustsRetries) {
  PageFile file = MakeFile(2);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(1);
  FaultyPageReader faulty(&file, &injector);
  RetryingPageReader::RetryPolicy policy;
  policy.max_attempts = 4;
  RetryingPageReader retrying(&faulty, policy, file.mutable_stats());

  const Status s = retrying.Read(1).status();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(file.stats().retries, 3u);  // 4 attempts = 3 retries.
  EXPECT_EQ(retrying.exhausted_reads(), 1u);

  // Persistent at-rest corruption likewise survives every retry and comes
  // back as Corruption.
  injector.AddBitFlip(0, 50, 0xFF, /*transient=*/false);
  const Status c = retrying.Read(0).status();
  EXPECT_TRUE(c.IsCorruption()) << c.ToString();
  EXPECT_EQ(retrying.exhausted_reads(), 2u);
}

TEST(RetryingPageReaderTest, NonRetryableErrorsPassThroughImmediately) {
  PageFile file = MakeFile(1);
  RetryingPageReader retrying(&file, RetryingPageReader::RetryPolicy{},
                              file.mutable_stats());
  const Status s = retrying.Read(42).status();
  EXPECT_TRUE(s.IsOutOfRange()) << s.ToString();
  EXPECT_EQ(file.stats().retries, 0u);
  EXPECT_EQ(retrying.exhausted_reads(), 0u);
}

TEST(RetryingPageReaderTest, DeadlineStopsRetriesViaInjectedClock) {
  PageFile file = MakeFile(1);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(0);
  FaultyPageReader faulty(&file, &injector);
  RetryingPageReader::RetryPolicy policy;
  policy.max_attempts = 100;
  policy.per_read_deadline = 1.0;
  double now = 0.0;
  // Each clock inspection advances fake time by 0.4s: the deadline expires
  // after a few attempts, far short of max_attempts.
  RetryingPageReader retrying(&faulty, policy, file.mutable_stats(),
                              [&now] { return now += 0.4; });
  const Status s = retrying.Read(0).status();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.message().find("deadline"), std::string::npos) << s.message();
  EXPECT_LT(file.stats().retries, 10u);
  EXPECT_EQ(retrying.exhausted_reads(), 1u);
}

TEST(RetryingPageReaderTest, EndToEndStackIsDeterministic) {
  // Same seed, same logical read sequence => identical outcomes through the
  // whole PageFile -> FaultyPageReader -> RetryingPageReader stack.
  std::vector<int> outcomes[2];
  uint64_t retries[2];
  for (int run = 0; run < 2; ++run) {
    PageFile file = MakeFile(4);
    FaultInjector::Options options;
    options.seed = 7;
    options.transient_fault_rate = 0.2;
    FaultInjector injector(options);
    FaultyPageReader faulty(&file, &injector);
    RetryingPageReader retrying(&faulty, RetryingPageReader::RetryPolicy{},
                                file.mutable_stats());
    for (int i = 0; i < 200; ++i) {
      outcomes[run].push_back(
          retrying.Read(static_cast<PageId>(i % 4)).ok() ? 1 : 0);
    }
    retries[run] = file.stats().retries;
  }
  EXPECT_EQ(outcomes[0], outcomes[1]);
  EXPECT_EQ(retries[0], retries[1]);
  EXPECT_GT(retries[0], 0u);
}

}  // namespace
}  // namespace dqmo
