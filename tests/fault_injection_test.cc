// Tests for the deterministic fault injector and the retrying reader
// (storage/fault.h).
#include "storage/fault.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "storage/page.h"
#include "storage/page_file.h"

namespace dqmo {
namespace {

/// A page file with `n` pages whose payloads are filled with their id.
PageFile MakeFile(int n) {
  PageFile f;
  uint8_t buf[kPageSize];
  for (int i = 0; i < n; ++i) {
    const PageId id = f.Allocate();
    std::memset(buf, static_cast<int>(0x10 + i), kPageSize);
    EXPECT_TRUE(f.Write(id, buf).ok());
  }
  return f;
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultInjector::Options options;
  options.seed = 1234;
  options.transient_fault_rate = 0.25;
  FaultInjector a(options);
  FaultInjector b(options);
  for (int i = 0; i < 2000; ++i) {
    const PageId page = static_cast<PageId>(i % 7);
    EXPECT_EQ(static_cast<int>(a.NextRead(page).kind),
              static_cast<int>(b.NextRead(page).kind))
        << "diverged at read " << i;
  }
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  EXPECT_GT(a.faults_injected(), 0u);   // 0.25 over 2000 reads: certain.
  EXPECT_LT(a.faults_injected(), 1000u);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector::Options options;
  options.transient_fault_rate = 0.5;
  options.seed = 1;
  FaultInjector a(options);
  options.seed = 2;
  FaultInjector b(options);
  int diffs = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.NextRead(0).kind != b.NextRead(0).kind) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultInjectorTest, ScheduleIsIndependentOfPageIds) {
  // The Bernoulli stream advances once per read regardless of which page is
  // read, so two query plans touching different pages see the same fault
  // positions — what makes degraded-run replays meaningful.
  FaultInjector::Options options;
  options.seed = 99;
  options.transient_fault_rate = 0.3;
  FaultInjector a(options);
  FaultInjector b(options);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(static_cast<int>(a.NextRead(0).kind),
              static_cast<int>(b.NextRead(static_cast<PageId>(i)).kind))
        << "read " << i;
  }
}

TEST(FaultInjectorTest, FailAfterIsPermanent) {
  FaultInjector::Options options;
  options.fail_after = 5;
  FaultInjector injector(options);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(injector.NextRead(0).kind,
              FaultInjector::Decision::Kind::kPass);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(injector.NextRead(0).kind,
              FaultInjector::Decision::Kind::kPermanentFail);
  }
}

TEST(FaultInjectorTest, FailEveryKthIsTransient) {
  FaultInjector::Options options;
  options.fail_every_kth = 3;
  FaultInjector injector(options);
  for (int i = 1; i <= 12; ++i) {
    const auto kind = injector.NextRead(0).kind;
    if (i % 3 == 0) {
      EXPECT_EQ(kind, FaultInjector::Decision::Kind::kTransientFail) << i;
    } else {
      EXPECT_EQ(kind, FaultInjector::Decision::Kind::kPass) << i;
    }
  }
}

TEST(FaultInjectorTest, DeadPagesAlwaysFail) {
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(3);
  EXPECT_EQ(injector.NextRead(2).kind, FaultInjector::Decision::Kind::kPass);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(injector.NextRead(3).kind,
              FaultInjector::Decision::Kind::kPermanentFail);
  }
}

TEST(FaultyPageReaderTest, TransientBitFlipDamagesOnlyOneDelivery) {
  PageFile file = MakeFile(2);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddBitFlip(/*page=*/1, /*offset=*/40, /*mask=*/0x08,
                      /*transient=*/true);
  FaultyPageReader faulty(&file, &injector);

  auto first = faulty.Read(1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->data[40], 0x11 ^ 0x08);
  EXPECT_FALSE(PageChecksumOk(first->data));  // The flip is detectable.

  // The base page was never touched; the next delivery is clean.
  auto second = faulty.Read(1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->data[40], 0x11);
  EXPECT_TRUE(PageChecksumOk(second->data));
}

TEST(FaultyPageReaderTest, PersistentBitFlipDamagesEveryDelivery) {
  PageFile file = MakeFile(1);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddBitFlip(0, 7, 0x80, /*transient=*/false);
  FaultyPageReader faulty(&file, &injector);
  for (int i = 0; i < 3; ++i) {
    auto read = faulty.Read(0);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->data[7], 0x10 ^ 0x80);
  }
  // The stored page itself stays pristine.
  auto direct = file.Read(0);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->data[7], 0x10);
}

TEST(RetryingPageReaderTest, AbsorbsTransientFaults) {
  PageFile file = MakeFile(1);
  FaultInjector::Options options;
  options.fail_every_kth = 2;  // Reads 2, 4, 6, ... fail transiently.
  FaultInjector injector(options);
  FaultyPageReader faulty(&file, &injector);
  RetryingPageReader::RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingPageReader retrying(&faulty, policy, file.mutable_stats());

  // Read 1 passes outright; read 2 fails and its retry (read 3) passes; and
  // so on — every logical read succeeds, some after one retry.
  for (int i = 0; i < 10; ++i) {
    auto read = retrying.Read(0);
    ASSERT_TRUE(read.ok()) << "logical read " << i;
    EXPECT_EQ(read->data[0], 0x10);
  }
  EXPECT_GT(file.stats().retries, 0u);
  EXPECT_EQ(retrying.exhausted_reads(), 0u);
}

TEST(RetryingPageReaderTest, RetriesChecksumMismatchAndRecovers) {
  PageFile file = MakeFile(1);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddBitFlip(0, 123, 0x01, /*transient=*/true);
  FaultyPageReader faulty(&file, &injector);
  RetryingPageReader retrying(&faulty, RetryingPageReader::RetryPolicy{},
                              file.mutable_stats());

  // First attempt delivers a corrupt copy; the verifier catches it and the
  // retry (transient flip now spent) delivers clean bytes.
  auto read = retrying.Read(0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->data[123], 0x10);
  EXPECT_TRUE(PageChecksumOk(read->data));
  EXPECT_EQ(file.stats().checksum_failures, 1u);
  EXPECT_EQ(file.stats().retries, 1u);
}

TEST(RetryingPageReaderTest, PermanentFaultExhaustsRetries) {
  PageFile file = MakeFile(2);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(1);
  FaultyPageReader faulty(&file, &injector);
  RetryingPageReader::RetryPolicy policy;
  policy.max_attempts = 4;
  RetryingPageReader retrying(&faulty, policy, file.mutable_stats());

  const Status s = retrying.Read(1).status();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(file.stats().retries, 3u);  // 4 attempts = 3 retries.
  EXPECT_EQ(retrying.exhausted_reads(), 1u);

  // Persistent at-rest corruption likewise survives every retry and comes
  // back as Corruption.
  injector.AddBitFlip(0, 50, 0xFF, /*transient=*/false);
  const Status c = retrying.Read(0).status();
  EXPECT_TRUE(c.IsCorruption()) << c.ToString();
  EXPECT_EQ(retrying.exhausted_reads(), 2u);
}

TEST(RetryingPageReaderTest, NonRetryableErrorsPassThroughImmediately) {
  PageFile file = MakeFile(1);
  RetryingPageReader retrying(&file, RetryingPageReader::RetryPolicy{},
                              file.mutable_stats());
  const Status s = retrying.Read(42).status();
  EXPECT_TRUE(s.IsOutOfRange()) << s.ToString();
  EXPECT_EQ(file.stats().retries, 0u);
  EXPECT_EQ(retrying.exhausted_reads(), 0u);
}

TEST(RetryingPageReaderTest, DeadlineStopsRetriesViaInjectedClock) {
  PageFile file = MakeFile(1);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(0);
  FaultyPageReader faulty(&file, &injector);
  RetryingPageReader::RetryPolicy policy;
  policy.max_attempts = 100;
  policy.per_read_deadline = 1.0;
  double now = 0.0;
  // Each clock inspection advances fake time by 0.4s: the deadline expires
  // after a few attempts, far short of max_attempts.
  RetryingPageReader retrying(&faulty, policy, file.mutable_stats(),
                              [&now] { return now += 0.4; });
  const Status s = retrying.Read(0).status();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.message().find("deadline"), std::string::npos) << s.message();
  EXPECT_LT(file.stats().retries, 10u);
  EXPECT_EQ(retrying.exhausted_reads(), 1u);
}

TEST(RetryingPageReaderTest, EndToEndStackIsDeterministic) {
  // Same seed, same logical read sequence => identical outcomes through the
  // whole PageFile -> FaultyPageReader -> RetryingPageReader stack.
  std::vector<int> outcomes[2];
  uint64_t retries[2];
  for (int run = 0; run < 2; ++run) {
    PageFile file = MakeFile(4);
    FaultInjector::Options options;
    options.seed = 7;
    options.transient_fault_rate = 0.2;
    FaultInjector injector(options);
    FaultyPageReader faulty(&file, &injector);
    RetryingPageReader retrying(&faulty, RetryingPageReader::RetryPolicy{},
                                file.mutable_stats());
    for (int i = 0; i < 200; ++i) {
      outcomes[run].push_back(
          retrying.Read(static_cast<PageId>(i % 4)).ok() ? 1 : 0);
    }
    retries[run] = file.stats().retries;
  }
  EXPECT_EQ(outcomes[0], outcomes[1]);
  EXPECT_EQ(retries[0], retries[1]);
  EXPECT_GT(retries[0], 0u);
}

// ---------------------------------------------------------------------------
// Latency faults (slow reads).

TEST(FaultInjectorTest, SlowReadScheduleIsDeterministic) {
  FaultInjector::Options options;
  options.seed = 321;
  options.slow_read_rate = 0.2;
  options.slow_read_delay_us = 750;
  FaultInjector a(options);
  FaultInjector b(options);
  for (int i = 0; i < 2000; ++i) {
    const auto da = a.NextRead(static_cast<PageId>(i % 5));
    const auto db = b.NextRead(static_cast<PageId>(i % 5));
    EXPECT_EQ(static_cast<int>(da.kind), static_cast<int>(db.kind))
        << "diverged at read " << i;
    if (da.kind == FaultInjector::Decision::Kind::kSlow) {
      EXPECT_EQ(da.delay_us, 750u);
    }
  }
  EXPECT_EQ(a.slow_reads(), b.slow_reads());
  EXPECT_GT(a.slow_reads(), 0u);  // 0.2 over 2000 reads: certain.
}

TEST(FaultInjectorTest, SlowEveryKthDelaysExactlyEveryKth) {
  FaultInjector::Options options;
  options.slow_every_kth = 4;
  options.slow_read_delay_us = 500;
  FaultInjector injector(options);
  for (int i = 1; i <= 40; ++i) {
    const auto d = injector.NextRead(0);
    if (i % 4 == 0) {
      EXPECT_EQ(d.kind, FaultInjector::Decision::Kind::kSlow) << i;
      EXPECT_EQ(d.delay_us, 500u);
    } else {
      EXPECT_EQ(d.kind, FaultInjector::Decision::Kind::kPass) << i;
    }
  }
  EXPECT_EQ(injector.slow_reads(), 10u);
  EXPECT_EQ(injector.faults_injected(), 10u);
}

TEST(FaultInjectorTest, SlowEveryKthDoesNotPerturbFaultStream) {
  // Adding the (draw-free) slow_every_kth option must leave the seeded
  // transient-fault positions bit-identical — the determinism contract for
  // replaying old schedules under new option sets.
  FaultInjector::Options base;
  base.seed = 99;
  base.transient_fault_rate = 0.25;
  FaultInjector::Options with_slow = base;
  with_slow.slow_every_kth = 8;
  FaultInjector a(base);
  FaultInjector b(with_slow);
  for (int i = 1; i <= 2000; ++i) {
    const auto da = a.NextRead(0);
    const auto db = b.NextRead(0);
    const bool fault_a = da.kind == FaultInjector::Decision::Kind::kTransientFail;
    const bool fault_b = db.kind == FaultInjector::Decision::Kind::kTransientFail;
    EXPECT_EQ(fault_a, fault_b) << "fault stream diverged at read " << i;
  }
  EXPECT_GT(b.slow_reads(), 0u);
}

TEST(FaultInjectorTest, StopAfterClosesTheFaultWindow) {
  FaultInjector::Options options;
  options.fail_every_kth = 2;
  options.stop_after = 10;
  FaultInjector injector(options);
  injector.AddPermanentFault(3);
  uint64_t faults_in_window = 0;
  for (int i = 1; i <= 10; ++i) {
    if (injector.NextRead(3).kind != FaultInjector::Decision::Kind::kPass) {
      ++faults_in_window;
    }
  }
  EXPECT_EQ(faults_in_window, 10u);  // Dead page: every read in the window.
  // Past stop_after even the dead page reads clean: the outage is over.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(injector.NextRead(3).kind,
              FaultInjector::Decision::Kind::kPass);
  }
  EXPECT_EQ(injector.faults_injected(), 10u);
}

TEST(FaultyPageReaderTest, SlowReadsDeliverIntactPagesThroughTheSleeper) {
  PageFile file = MakeFile(2);
  FaultInjector::Options options;
  options.slow_every_kth = 2;
  options.slow_read_delay_us = 1234;
  FaultInjector injector(options);
  std::vector<uint64_t> slept;
  FaultyPageReader faulty(&file, &injector,
                          [&slept](uint64_t us) { slept.push_back(us); });
  for (int i = 0; i < 6; ++i) {
    auto r = faulty.Read(static_cast<PageId>(i % 2));
    ASSERT_TRUE(r.ok());
    auto direct = file.Read(static_cast<PageId>(i % 2));
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(std::memcmp(r->data, direct->data, kPageSize), 0);
  }
  EXPECT_EQ(slept, (std::vector<uint64_t>{1234, 1234, 1234}));
}

// ---------------------------------------------------------------------------
// Retry backoff.

TEST(RetryingPageReaderTest, DecorrelatedJitterBackoffIsSeededAndBounded) {
  auto run = [](uint64_t seed) {
    PageFile file = MakeFile(1);
    FaultInjector injector(FaultInjector::Options{});
    injector.AddPermanentFault(0);
    FaultyPageReader faulty(&file, &injector);
    RetryingPageReader::RetryPolicy policy;
    policy.max_attempts = 6;
    policy.backoff_base = 0.001;
    policy.backoff_max = 0.020;
    policy.backoff_seed = seed;
    std::vector<double> slept;
    RetryingPageReader retrying(
        &faulty, policy, file.mutable_stats(), /*clock=*/nullptr,
        [&slept](double seconds) { slept.push_back(seconds); });
    EXPECT_FALSE(retrying.Read(0).ok());
    return slept;
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  // One delay between each pair of attempts; deterministic per seed.
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (const double d : a) {
    EXPECT_GE(d, 0.001);
    EXPECT_LE(d, 0.020);
  }
}

TEST(RetryingPageReaderTest, BackoffNeverSleepsPastTheDeadline) {
  // Fake clock + fake sleeper: the reader must give up with the deadline
  // message the moment a planned sleep would overrun per_read_deadline —
  // it never starts that sleep.
  PageFile file = MakeFile(1);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(0);
  FaultyPageReader faulty(&file, &injector);
  RetryingPageReader::RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.per_read_deadline = 0.050;
  policy.backoff_base = 0.015;
  policy.backoff_max = 0.015;  // Every delay is exactly 15 ms.
  double now = 0.0;
  double slept_total = 0.0;
  RetryingPageReader retrying(
      &faulty, policy, file.mutable_stats(), [&now] { return now; },
      [&now, &slept_total](double seconds) {
        now += seconds;
        slept_total += seconds;
      });
  const Status s = retrying.Read(0).status();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.message().find("deadline"), std::string::npos) << s.message();
  // 3 sleeps of 15 ms fit in 50 ms; the 4th would overrun and is refused.
  EXPECT_DOUBLE_EQ(slept_total, 0.045);
  EXPECT_LE(now, policy.per_read_deadline);
}

TEST(RetryingPageReaderTest, ZeroBackoffBaseNeverSleeps) {
  PageFile file = MakeFile(1);
  FaultInjector injector(FaultInjector::Options{});
  injector.AddPermanentFault(0);
  FaultyPageReader faulty(&file, &injector);
  RetryingPageReader::RetryPolicy policy;  // backoff_base defaults to 0.
  policy.max_attempts = 5;
  RetryingPageReader retrying(&faulty, policy, file.mutable_stats(),
                              /*clock=*/nullptr, [](double) {
                                FAIL() << "legacy policy must not sleep";
                              });
  EXPECT_FALSE(retrying.Read(0).ok());
}

}  // namespace
}  // namespace dqmo
