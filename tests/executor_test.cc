// Concurrency tests for the multi-session query engine (server/executor.h)
// and the thread-safe storage layer underneath it. Differential design:
// every concurrent run is compared against a serial replay of the same
// seeded session specs — the sessions are deterministic, so any divergence
// is a concurrency bug. Run under ThreadSanitizer by tools/ci.sh (tsan
// stage) to catch the races that happen not to corrupt results.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "server/executor.h"
#include "storage/buffer_pool.h"
#include "storage/wal.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::RandomSegments;

struct Fixture {
  PageFile file;
  std::unique_ptr<RTree> tree;
  std::vector<MotionSegment> data;
};

void BuildFixture(Fixture* fx, uint64_t seed, int n) {
  auto tree = RTree::Create(&fx->file, RTree::Options());
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  fx->tree = std::move(tree).value();
  Rng rng(seed);
  fx->data = RandomSegments(&rng, n, 2, 100, 100);
  for (const auto& m : fx->data) ASSERT_TRUE(fx->tree->Insert(m).ok());
  // Steady state for concurrent readers: all pages sealed + pre-verified.
  ASSERT_TRUE(fx->file.Publish().ok());
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 200);
    // Reuse after Wait: the pool must accept further work.
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // Destructor waits for the second batch.
  EXPECT_EQ(count.load(), 250);
}

TEST(CounterTest, IoStatsExactUnderFourThreadHammer) {
  IoStats stats;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&stats] {
      for (uint64_t j = 0; j < kPerThread; ++j) {
        stats.physical_reads.fetch_add(1, std::memory_order_relaxed);
        if (j % 2 == 0) {
          stats.cache_hits.fetch_add(1, std::memory_order_relaxed);
        }
        if (j % 5 == 0) {
          stats.retries.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(stats.physical_reads.load(), kThreads * kPerThread);
  EXPECT_EQ(stats.cache_hits.load(), kThreads * kPerThread / 2);
  EXPECT_EQ(stats.retries.load(), kThreads * kPerThread / 5);
}

TEST(CounterTest, BufferPoolCountersExactUnderFourThreadHammer) {
  // Sharded pool hammered from 4 threads: hits + misses must equal the
  // exact number of reads issued, and every miss must be a physical read
  // on the file (no lost or double-counted accesses).
  Fixture fx;
  BuildFixture(&fx, 99, 600);
  fx.file.ResetStats();
  BufferPool pool(&fx.file, /*capacity_pages=*/32, /*num_shards=*/8);

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  const auto num_pages = static_cast<uint64_t>(fx.file.num_pages());
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&pool, num_pages, i] {
      Rng rng(1000 + static_cast<uint64_t>(i));
      for (uint64_t j = 0; j < kPerThread; ++j) {
        const PageId id = static_cast<PageId>(rng.UniformU64(num_pages));
        ASSERT_TRUE(pool.Read(id).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.hits() + pool.misses(), kThreads * kPerThread);
  EXPECT_EQ(fx.file.stats().physical_reads.load(), pool.misses());
  EXPECT_EQ(fx.file.stats().cache_hits.load(), pool.hits());
  EXPECT_LE(pool.cached_pages(), pool.capacity());
}

/// Specs for a batch of read-only sessions. `include_knn` is off for the
/// concurrent-writer test: kNN has no spatial confinement, so its results
/// are only interleaving-independent on a static tree.
std::vector<SessionSpec> ReaderSpecs(int n, bool include_knn,
                                     double region_hi) {
  std::vector<SessionSpec> specs;
  for (int i = 0; i < n; ++i) {
    SessionSpec spec;
    switch (i % (include_knn ? 3 : 2)) {
      case 0:
        spec.kind = SessionKind::kSession;
        break;
      case 1:
        spec.kind = SessionKind::kNpdq;
        break;
      default:
        spec.kind = SessionKind::kKnn;
        break;
    }
    spec.seed = 100 + static_cast<uint64_t>(i);
    spec.frames = 40;
    spec.t0 = 2.0 + 0.5 * i;
    spec.region_hi = region_hi;
    specs.push_back(spec);
  }
  return specs;
}

void ExpectSameResults(const ExecutorReport& got,
                       const ExecutorReport& want) {
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  ASSERT_TRUE(want.status.ok()) << want.status.ToString();
  ASSERT_EQ(got.sessions.size(), want.sessions.size());
  for (size_t i = 0; i < got.sessions.size(); ++i) {
    EXPECT_EQ(got.sessions[i].checksum, want.sessions[i].checksum)
        << "session " << i;
    EXPECT_EQ(got.sessions[i].objects_delivered,
              want.sessions[i].objects_delivered)
        << "session " << i;
    EXPECT_EQ(got.sessions[i].frames_completed,
              want.sessions[i].frames_completed)
        << "session " << i;
  }
}

TEST(ExecutorTest, ConcurrentSessionsMatchSerialReplay) {
  Fixture fx;
  BuildFixture(&fx, 7, 800);
  const std::vector<SessionSpec> specs =
      ReaderSpecs(8, /*include_knn=*/true, /*region_hi=*/94.0);

  BufferPool shared_pool(&fx.file, 128, /*num_shards=*/8);
  SessionScheduler::Options copt;
  copt.num_threads = 8;
  copt.reader = &shared_pool;
  copt.pool = &shared_pool;
  const ExecutorReport concurrent =
      SessionScheduler(fx.tree.get(), copt).Run(specs);
  // Every pool miss is one physical node read charged to some session;
  // every hit is charged to nobody. Exact-accounting cross-check.
  EXPECT_EQ(concurrent.pool_misses, concurrent.total_stats.node_reads);

  BufferPool serial_pool(&fx.file, 128, /*num_shards=*/8);
  SessionScheduler::Options sopt;
  sopt.num_threads = 1;
  sopt.reader = &serial_pool;
  const ExecutorReport serial =
      SessionScheduler(fx.tree.get(), sopt).Run(specs);

  ExpectSameResults(concurrent, serial);
  EXPECT_GT(concurrent.total_objects, 0u);
}

TEST(ExecutorTest, EightReadersOneWriterMatchSerialReplay) {
  // 8 reader sessions confined to [6, 70]^2 run concurrently with one
  // updater inserting motions confined to [90, 100]^2. The regions are
  // disjoint (reader windows reach at most 74), so every interleaving
  // must deliver the same results — compared against a serial replay on
  // the fully-updated tree.
  Fixture fx;
  BuildFixture(&fx, 11, 800);
  const std::vector<SessionSpec> specs =
      ReaderSpecs(8, /*include_knn=*/false, /*region_hi=*/70.0);

  BufferPool shared_pool(&fx.file, 128, /*num_shards=*/8);
  TreeGate gate(&fx.file, &shared_pool);

  std::atomic<bool> writer_failed{false};
  std::thread writer([&fx, &gate, &writer_failed] {
    Rng rng(4242);
    for (int i = 0; i < 64; ++i) {
      StSegment seg(Vec(rng.Uniform(90, 100), rng.Uniform(90, 100)),
                    Vec(rng.Uniform(90, 100), rng.Uniform(90, 100)),
                    Interval(rng.Uniform(0, 90), rng.Uniform(90, 100)));
      MotionSegment m(static_cast<ObjectId>(200000 + i), seg);
      {
        auto guard = gate.LockExclusive();
        if (!fx.tree->Insert(m).ok()) writer_failed.store(true);
      }
      std::this_thread::yield();
    }
  });

  SessionScheduler::Options copt;
  copt.num_threads = 8;
  copt.reader = &shared_pool;
  copt.gate = &gate;
  copt.pool = &shared_pool;
  const ExecutorReport concurrent =
      SessionScheduler(fx.tree.get(), copt).Run(specs);
  writer.join();
  EXPECT_FALSE(writer_failed.load());

  // Serial replay on the now-fully-updated tree: the inserted motions are
  // spatially invisible to every reader, so results must match exactly.
  BufferPool serial_pool(&fx.file, 128, /*num_shards=*/8);
  SessionScheduler::Options sopt;
  sopt.num_threads = 1;
  sopt.reader = &serial_pool;
  const ExecutorReport serial =
      SessionScheduler(fx.tree.get(), sopt).Run(specs);

  ExpectSameResults(concurrent, serial);
  EXPECT_GT(concurrent.total_objects, 0u);
}

TEST(ExecutorTest, DurableWritesUnderGateMatchSerialReplayAndSurviveInWal) {
  // Same readers-vs-writer interleaving as above, but the tree has a WAL
  // attached and the gate syncs it on every write-guard release. Readers
  // must still match the serial replay (the WAL work happens while the
  // writer holds the gate exclusively), every insert must be on disk in
  // LSN order when the writer finishes, and no sync failure may be parked
  // on the gate.
  Fixture fx;
  BuildFixture(&fx, 17, 800);
  const std::vector<SessionSpec> specs =
      ReaderSpecs(8, /*include_knn=*/false, /*region_hi=*/70.0);

  const std::string wal_path =
      std::string(::testing::TempDir()) + "/executor_durable.wal";
  std::remove(wal_path.c_str());
  WalWriter wal;
  ASSERT_TRUE(wal.Open(wal_path, fx.file.mutable_stats()).ok());
  fx.tree->AttachWal(&wal);

  BufferPool shared_pool(&fx.file, 128, /*num_shards=*/8);
  TreeGate gate(&fx.file, &shared_pool, &wal);

  constexpr int kInserts = 64;
  std::atomic<bool> writer_failed{false};
  std::thread writer([&fx, &gate, &writer_failed] {
    Rng rng(1717);
    for (int i = 0; i < kInserts; ++i) {
      StSegment seg(Vec(rng.Uniform(90, 100), rng.Uniform(90, 100)),
                    Vec(rng.Uniform(90, 100), rng.Uniform(90, 100)),
                    Interval(rng.Uniform(0, 90), rng.Uniform(90, 100)));
      MotionSegment m(static_cast<ObjectId>(300000 + i), seg);
      {
        auto guard = gate.LockExclusive();
        if (!fx.tree->Insert(m).ok()) writer_failed.store(true);
      }  // Guard release appends are synced here, still exclusive.
      std::this_thread::yield();
    }
  });

  SessionScheduler::Options copt;
  copt.num_threads = 8;
  copt.reader = &shared_pool;
  copt.gate = &gate;
  copt.pool = &shared_pool;
  const ExecutorReport concurrent =
      SessionScheduler(fx.tree.get(), copt).Run(specs);
  writer.join();
  EXPECT_FALSE(writer_failed.load());
  EXPECT_TRUE(gate.wal_status().ok()) << gate.wal_status().ToString();

  // Every acknowledged insert is durable: the log holds exactly kInserts
  // records, LSN-contiguous, all synced (nothing left buffered).
  EXPECT_EQ(wal.pending_records(), 0u);
  EXPECT_EQ(wal.synced_lsn(), static_cast<uint64_t>(kInserts));
  wal.Close();
  fx.tree->AttachWal(nullptr);
  auto scan = ScanWal(wal_path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->records.size(), static_cast<size_t>(kInserts));
  EXPECT_FALSE(scan->torn_tail);
  for (size_t i = 0; i < scan->records.size(); ++i) {
    EXPECT_EQ(scan->records[i].lsn, i + 1);
    EXPECT_EQ(scan->records[i].motion.oid,
              static_cast<ObjectId>(300000 + i));
  }
  EXPECT_GE(fx.file.stats().wal_syncs.load(),
            static_cast<uint64_t>(kInserts));

  // Readers saw a consistent tree throughout: serial replay matches.
  BufferPool serial_pool(&fx.file, 128, /*num_shards=*/8);
  SessionScheduler::Options sopt;
  sopt.num_threads = 1;
  sopt.reader = &serial_pool;
  const ExecutorReport serial =
      SessionScheduler(fx.tree.get(), sopt).Run(specs);
  ExpectSameResults(concurrent, serial);
  std::remove(wal_path.c_str());
}

TEST(ExecutorTest, WriteGuardInvalidatesDirtiedPagesInPool) {
  Fixture fx;
  BuildFixture(&fx, 13, 300);
  BufferPool pool(&fx.file, 256, /*num_shards=*/4);
  TreeGate gate(&fx.file, &pool);

  // Warm the pool over the whole file.
  for (PageId id = 0; id < fx.file.num_pages(); ++id) {
    ASSERT_TRUE(pool.Read(id).ok());
  }

  {
    auto guard = gate.LockExclusive();
    StSegment seg(Vec(50, 50), Vec(51, 51), Interval(0, 1));
    ASSERT_TRUE(fx.tree->Insert(MotionSegment(999999, seg)).ok());
  }  // Guard release: dirtied pages invalidated + sealed.

  // The dirty list was consumed by the guard...
  EXPECT_TRUE(fx.file.dirty_page_ids().empty());
  // ...and a reader sees the new motion through the pool (stale frames
  // would hide it or fail the checksum re-verification below).
  QueryStats stats;
  auto got = fx.tree->RangeSearch(
      StBox(Box::Centered(Vec(50.5, 50.5), 4.0), Interval(0, 1)), &stats,
      &pool);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  bool found = false;
  for (const auto& m : *got) found = found || m.oid == 999999;
  EXPECT_TRUE(found);
  // Every page is sealed: a full verify pass finds no corruption.
  std::vector<PageId> bad;
  EXPECT_EQ(fx.file.VerifyAllPages(&bad), 0u);
}

}  // namespace
}  // namespace dqmo
