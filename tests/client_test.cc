// Tests for the client-side ResultCache keyed on disappearance time.
#include <gtest/gtest.h>

#include "client/result_cache.h"

namespace dqmo {
namespace {

MotionSegment Obj(ObjectId oid, double t0 = 0.0, double t1 = 100.0) {
  return MotionSegment(
      oid, StSegment(Vec(0.0, 0.0), Vec(1.0, 1.0), Interval(t0, t1)));
}

TimeSet Times(std::initializer_list<Interval> ivs) {
  TimeSet s;
  for (const Interval& iv : ivs) s.Add(iv);
  return s;
}

TEST(ResultCacheTest, StartsEmpty) {
  ResultCache cache;
  EXPECT_TRUE(cache.empty());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.VisibleAt(0.0).empty());
}

TEST(ResultCacheTest, InsertAndVisibility) {
  ResultCache cache;
  cache.Insert(Obj(1), Times({{2.0, 5.0}}));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Contains(Obj(1).key()));
  EXPECT_EQ(cache.VisibleAt(3.0).size(), 1u);
  EXPECT_TRUE(cache.VisibleAt(1.0).empty());  // Not visible yet.
  EXPECT_TRUE(cache.VisibleAt(6.0).empty());  // No longer visible.
}

TEST(ResultCacheTest, IntermittentVisibilityRespected) {
  ResultCache cache;
  cache.Insert(Obj(1), Times({{2.0, 3.0}, {7.0, 8.0}}));
  EXPECT_TRUE(cache.VisibleAt(5.0).empty());  // Gap: not visible.
  EXPECT_EQ(cache.VisibleAt(2.5).size(), 1u);
  EXPECT_EQ(cache.VisibleAt(7.5).size(), 1u);
  // Still cached during the gap (disappearance is the *last* end).
  cache.AdvanceTo(5.0);
  EXPECT_TRUE(cache.Contains(Obj(1).key()));
}

TEST(ResultCacheTest, EvictionAtDisappearanceTime) {
  ResultCache cache;
  cache.Insert(Obj(1), Times({{0.0, 2.0}}));
  cache.Insert(Obj(2), Times({{0.0, 5.0}}));
  cache.Insert(Obj(3), Times({{0.0, 9.0}}));
  EXPECT_EQ(cache.AdvanceTo(3.0), 1u);  // Object 1 gone.
  EXPECT_FALSE(cache.Contains(Obj(1).key()));
  EXPECT_TRUE(cache.Contains(Obj(2).key()));
  EXPECT_EQ(cache.AdvanceTo(9.0), 1u);  // Object 2 gone; 3 at boundary.
  EXPECT_TRUE(cache.Contains(Obj(3).key()));
  EXPECT_EQ(cache.AdvanceTo(9.01), 1u);
  EXPECT_TRUE(cache.empty());
  EXPECT_EQ(cache.total_evictions(), 3u);
}

TEST(ResultCacheTest, ExpiredInsertIgnored) {
  ResultCache cache;
  cache.AdvanceTo(10.0);
  cache.Insert(Obj(1), Times({{2.0, 5.0}}));  // Already disappeared.
  EXPECT_TRUE(cache.empty());
  cache.Insert(Obj(2), TimeSet());  // Empty visibility.
  EXPECT_TRUE(cache.empty());
}

TEST(ResultCacheTest, RefreshExtendsVisibility) {
  ResultCache cache;
  cache.Insert(Obj(1), Times({{0.0, 3.0}}));
  cache.Insert(Obj(1), Times({{5.0, 8.0}}));  // Same object, re-reported.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.total_insertions(), 1u);  // Refresh, not new.
  cache.AdvanceTo(4.0);
  EXPECT_TRUE(cache.Contains(Obj(1).key()));  // Now disappears at 8.
  EXPECT_EQ(cache.VisibleAt(6.0).size(), 1u);
  cache.AdvanceTo(8.5);
  EXPECT_TRUE(cache.empty());
}

TEST(ResultCacheTest, AdvanceIsMonotone) {
  ResultCache cache;
  cache.Insert(Obj(1), Times({{0.0, 5.0}}));
  cache.AdvanceTo(6.0);
  EXPECT_TRUE(cache.empty());
  cache.AdvanceTo(2.0);  // Going backwards is a no-op.
  cache.Insert(Obj(2), Times({{0.0, 4.0}}));  // Before now=6: ignored.
  EXPECT_TRUE(cache.empty());
}

TEST(ResultCacheTest, PeakSizeTracksHighWaterMark) {
  ResultCache cache;
  for (int i = 0; i < 10; ++i) {
    cache.Insert(Obj(static_cast<ObjectId>(i)),
                 Times({{0.0, 1.0 + i * 0.1}}));
  }
  cache.AdvanceTo(50.0);
  EXPECT_TRUE(cache.empty());
  EXPECT_EQ(cache.peak_size(), 10u);
  EXPECT_EQ(cache.total_insertions(), 10u);
}

TEST(ResultCacheTest, ObjectsWithEqualDisappearanceTimesAllEvicted) {
  ResultCache cache;
  cache.Insert(Obj(1), Times({{0.0, 5.0}}));
  cache.Insert(Obj(2), Times({{1.0, 5.0}}));
  cache.Insert(Obj(3), Times({{2.0, 5.0}}));
  EXPECT_EQ(cache.AdvanceTo(5.5), 3u);
}

}  // namespace
}  // namespace dqmo
