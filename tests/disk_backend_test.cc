// Backend-equivalence differential tests: the same tree image queried
// through the in-memory PageFile, the pread DiskPageFile, and the io_uring
// DiskPageFile (degrading to the thread queue where the kernel refuses)
// must produce byte-identical results with exact IoStats accounting —
// node-level read counts equal across backends, speculative reads charged
// per the Prefetcher contract (hits counted exactly once; after Quiesce,
// issued == hits + wasted + failed), and a failed speculative read
// degrading to the synchronous path without poisoning the frame.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "query/knn.h"
#include "query/npdq.h"
#include "query/pdq.h"
#include "rtree/rtree.h"
#include "storage/async_io.h"
#include "storage/disk_file.h"
#include "storage/fault.h"
#include "storage/page_file.h"
#include "storage/prefetch.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::RandomSegments;

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;

void Fold(uint64_t* h, uint64_t v) {
  *h ^= v;
  *h *= 1099511628211ULL;
}

void FoldDouble(uint64_t* h, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  Fold(h, bits);
}

/// Scratch directory per test, removed on destruction.
struct TempDir {
  std::filesystem::path dir;
  explicit TempDir(const std::string& tag) {
    dir = std::filesystem::temp_directory_path() /
          ("dqmo_backend_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }
  ~TempDir() { std::filesystem::remove_all(dir); }
  std::string path(const std::string& name) const {
    return (dir / name).string();
  }
};

/// Builds a seeded tree in memory and checkpoints it to `image` — the one
/// set of bytes every backend then opens.
void BuildImage(uint64_t seed, int n, const std::string& image) {
  PageFile file;
  auto tree = RTree::Create(&file, RTree::Options());
  ASSERT_TRUE(tree.ok());
  Rng rng(seed);
  for (const MotionSegment& m : RandomSegments(&rng, n, 2, 100, 100)) {
    ASSERT_TRUE((*tree)->Insert(m).ok());
  }
  ASSERT_TRUE((*tree)->Flush().ok());
  ASSERT_TRUE(file.SaveTo(image).ok());
}

/// One opened backend: store + optional prefetcher + tree, with the reader
/// the query layer should use.
struct Bundle {
  PageFile mem;
  std::unique_ptr<DiskPageFile> disk;
  std::unique_ptr<Prefetcher> prefetcher;
  PageStore* store = nullptr;
  PageReader* reader = nullptr;
  std::unique_ptr<RTree> tree;
};

void OpenBundle(IoBackend backend, const std::string& image,
                const std::string& live, Bundle* b,
                FaultInjector* injector = nullptr) {
  if (backend == IoBackend::kMemory) {
    ASSERT_TRUE(b->mem.LoadFrom(image).ok());
    b->store = &b->mem;
    b->reader = &b->mem;
  } else {
    DiskPageFile::Options options;
    options.backend = backend;
    auto disk = DiskPageFile::CreateFromImage(live, image, options);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    b->disk = std::move(disk).value();
    Prefetcher::Options popt;
    popt.depth = 8;
    popt.injector = injector;
    popt.sleeper = [](uint64_t) {};  // Injected delays: don't really sleep.
    b->prefetcher = std::make_unique<Prefetcher>(b->disk.get(), popt);
    b->store = b->disk.get();
    b->reader = b->prefetcher.get();
  }
  auto tree = RTree::Open(b->store);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  b->tree = std::move(tree).value();
}

/// Everything one query run observed: the result checksum plus the logical
/// and physical counters the backends must agree on.
struct RunResult {
  uint64_t checksum = kFnvOffset;
  uint64_t node_reads = 0;
  uint64_t leaf_reads = 0;
  uint64_t objects = 0;
  IoStats io;                   // Store counters, post-Quiesce.
  uint64_t prefetch_failed = 0;
};

void FinishRun(Bundle* b, const QueryStats& stats, RunResult* out) {
  if (b->prefetcher != nullptr) {
    b->prefetcher->Quiesce();
    out->prefetch_failed = b->prefetcher->failed();
  }
  out->node_reads = stats.node_reads;
  out->leaf_reads = stats.leaf_reads;
  out->objects = stats.objects_returned;
  out->io = b->store->stats();
}

RunResult RunPdq(IoBackend backend, const std::string& image,
                 const std::string& live, FaultInjector* injector = nullptr) {
  RunResult out;
  Bundle b;
  OpenBundle(backend, image, live, &b, injector);
  if (::testing::Test::HasFatalFailure()) return out;

  std::vector<KeySnapshot> keys;
  keys.emplace_back(0.0, Box::Centered(Vec(20.0, 20.0), 25.0));
  keys.emplace_back(100.0, Box::Centered(Vec(80.0, 80.0), 25.0));
  PredictiveDynamicQuery::Options options;
  options.reader = b.reader;
  options.prefetcher = b.prefetcher.get();
  auto pdq = PredictiveDynamicQuery::Make(
      b.tree.get(), QueryTrajectory::Make(std::move(keys)).value(), options);
  EXPECT_TRUE(pdq.ok());
  if (!pdq.ok()) return out;

  for (int i = 0; i < 20; ++i) {
    auto frame = (*pdq)->Frame(i * 5.0, (i + 1) * 5.0);
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    if (!frame.ok()) return out;
    Fold(&out.checksum, static_cast<uint64_t>(i));
    for (const PdqResult& r : *frame) {
      Fold(&out.checksum, r.motion.oid);
      FoldDouble(&out.checksum, r.motion.seg.time.lo);
    }
  }
  FinishRun(&b, (*pdq)->stats(), &out);
  return out;
}

RunResult RunNpdq(IoBackend backend, const std::string& image,
                  const std::string& live, FaultInjector* injector = nullptr) {
  RunResult out;
  Bundle b;
  OpenBundle(backend, image, live, &b, injector);
  if (::testing::Test::HasFatalFailure()) return out;

  NpdqOptions options;
  options.reader = b.reader;
  options.prefetcher = b.prefetcher.get();
  NonPredictiveDynamicQuery npdq(b.tree.get(), options);

  for (int i = 0; i < 15; ++i) {
    const double t = i * (100.0 / 15.0);
    const Vec center(10.0 + 5.0 * i, 10.0 + 5.0 * i);
    const StBox q(Box::Centered(center, 30.0),
                  Interval(t, t + 100.0 / 15.0));
    auto fresh = npdq.Execute(q);
    EXPECT_TRUE(fresh.ok()) << fresh.status().ToString();
    if (!fresh.ok()) return out;
    Fold(&out.checksum, static_cast<uint64_t>(i));
    for (const MotionSegment& m : *fresh) {
      Fold(&out.checksum, m.oid);
      FoldDouble(&out.checksum, m.seg.time.lo);
    }
  }
  FinishRun(&b, npdq.stats(), &out);
  return out;
}

RunResult RunKnn(IoBackend backend, const std::string& image,
                 const std::string& live, FaultInjector* injector = nullptr) {
  RunResult out;
  Bundle b;
  OpenBundle(backend, image, live, &b, injector);
  if (::testing::Test::HasFatalFailure()) return out;

  MovingKnnQuery::Options options;
  options.reader = b.reader;
  options.prefetcher = b.prefetcher.get();
  MovingKnnQuery knn(b.tree.get(), 10, options);

  for (int i = 0; i < 15; ++i) {
    const double t = 2.0 + i * 6.0;
    const Vec point(15.0 + 4.5 * i, 85.0 - 4.5 * i);
    auto neighbors = knn.At(t, point);
    EXPECT_TRUE(neighbors.ok()) << neighbors.status().ToString();
    if (!neighbors.ok()) return out;
    Fold(&out.checksum, static_cast<uint64_t>(i));
    for (const Neighbor& n : *neighbors) {
      Fold(&out.checksum, n.motion.oid);
      FoldDouble(&out.checksum, n.distance);
    }
  }
  FinishRun(&b, knn.stats(), &out);
  return out;
}

using Runner = RunResult (*)(IoBackend, const std::string&,
                             const std::string&, FaultInjector*);

/// The equivalence contract, per kind: identical results and node counts
/// across all three backends, physical reads related exactly by
///   disk = memory + prefetch_wasted
/// (a prefetch hit charges the one read the sync path would have; a wasted
/// landing charges its real disk read on top), and the prefetch closure
/// issued == hits + wasted + failed after Quiesce.
void CheckBackends(Runner run, uint64_t seed, const std::string& kind) {
  TempDir tmp(kind + std::to_string(seed));
  const std::string image = tmp.path("index.pgf");
  BuildImage(seed, 2000, image);
  if (::testing::Test::HasFatalFailure()) return;

  const RunResult mem =
      run(IoBackend::kMemory, image, tmp.path("mem.live"), nullptr);
  const RunResult pread =
      run(IoBackend::kPread, image, tmp.path("pread.live"), nullptr);
  const RunResult uring =
      run(IoBackend::kUring, image, tmp.path("uring.live"), nullptr);

  for (const RunResult* disk : {&pread, &uring}) {
    EXPECT_EQ(disk->checksum, mem.checksum) << kind << " seed " << seed;
    EXPECT_EQ(disk->node_reads, mem.node_reads);
    EXPECT_EQ(disk->leaf_reads, mem.leaf_reads);
    EXPECT_EQ(disk->objects, mem.objects);
    EXPECT_EQ(disk->io.physical_reads,
              mem.io.physical_reads + disk->io.prefetch_wasted);
    EXPECT_EQ(disk->io.prefetch_issued,
              disk->io.prefetch_hits + disk->io.prefetch_wasted +
                  disk->prefetch_failed);
    EXPECT_EQ(disk->io.checksum_failures, 0u);
  }
  EXPECT_EQ(mem.io.prefetch_issued, 0u);
}

class BackendSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendSweep, PdqByteIdenticalAcrossBackends) {
  CheckBackends(&RunPdq, GetParam(), "pdq");
}

TEST_P(BackendSweep, NpdqByteIdenticalAcrossBackends) {
  CheckBackends(&RunNpdq, GetParam(), "npdq");
}

TEST_P(BackendSweep, KnnByteIdenticalAcrossBackends) {
  CheckBackends(&RunKnn, GetParam(), "knn");
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

/// Failed speculative reads must degrade to the synchronous path without
/// changing a single delivered byte or logical counter: the injector's
/// async stream fails every other speculation, the sync stream is never
/// armed (no FaultyPageReader in this chain), and the run must match the
/// memory backend exactly.
void CheckFailedSpeculationHarmless(Runner run, const std::string& kind) {
  TempDir tmp("specfail_" + kind);
  const std::string image = tmp.path("index.pgf");
  BuildImage(99, 2000, image);
  if (::testing::Test::HasFatalFailure()) return;

  const RunResult mem =
      run(IoBackend::kMemory, image, tmp.path("mem.live"), nullptr);

  FaultInjector::Options fopt;
  fopt.seed = 7;
  fopt.fail_every_kth = 2;
  FaultInjector injector(fopt);
  const RunResult faulty =
      run(IoBackend::kPread, image, tmp.path("faulty.live"), &injector);

  EXPECT_EQ(faulty.checksum, mem.checksum);
  EXPECT_EQ(faulty.node_reads, mem.node_reads);
  EXPECT_EQ(faulty.objects, mem.objects);
  EXPECT_GT(faulty.prefetch_failed, 0u);  // Faults really were injected.
  EXPECT_GT(injector.async_reads_seen(), 0u);
  // A failed speculation charges nothing; consumed and wasted landings
  // account for every physical read beyond the memory baseline.
  EXPECT_EQ(faulty.io.physical_reads,
            mem.io.physical_reads + faulty.io.prefetch_wasted);
  EXPECT_EQ(faulty.io.prefetch_issued,
            faulty.io.prefetch_hits + faulty.io.prefetch_wasted +
                faulty.prefetch_failed);
}

TEST(BackendFaultTest, PdqFailedSpeculationDegradesToSyncPath) {
  CheckFailedSpeculationHarmless(&RunPdq, "pdq");
}

TEST(BackendFaultTest, NpdqFailedSpeculationDegradesToSyncPath) {
  CheckFailedSpeculationHarmless(&RunNpdq, "npdq");
}

TEST(BackendFaultTest, KnnFailedSpeculationDegradesToSyncPath) {
  CheckFailedSpeculationHarmless(&RunKnn, "knn");
}

/// Slow speculative completions (the async half of a seeded slow-read
/// storm) delay but never corrupt: results stay byte-identical and the
/// injected delays are served through the injectable sleeper.
TEST(BackendFaultTest, SlowSpeculationStaysByteIdentical) {
  TempDir tmp("specslow");
  const std::string image = tmp.path("index.pgf");
  BuildImage(123, 2000, image);

  const RunResult mem =
      RunPdq(IoBackend::kMemory, image, tmp.path("mem.live"), nullptr);

  FaultInjector::Options fopt;
  fopt.seed = 11;
  fopt.slow_every_kth = 2;
  fopt.slow_read_delay_us = 250;
  FaultInjector injector(fopt);
  const RunResult slow =
      RunPdq(IoBackend::kPread, image, tmp.path("slow.live"), &injector);

  EXPECT_EQ(slow.checksum, mem.checksum);
  EXPECT_EQ(slow.node_reads, mem.node_reads);
  EXPECT_GT(injector.async_faults_injected(), 0u);
}

}  // namespace
}  // namespace dqmo
