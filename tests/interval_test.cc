// Tests for Interval (Definition 1 of the paper) and the linear-inequality
// solver underlying all overlap-time computations.
#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/interval.h"

namespace dqmo {
namespace {

TEST(IntervalTest, DefaultIsEmpty) {
  Interval iv;
  EXPECT_TRUE(iv.empty());
  EXPECT_EQ(iv.length(), 0.0);
}

TEST(IntervalTest, PointIntervalIsSingleValue) {
  const Interval p = Interval::Point(3.0);
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p.lo, 3.0);
  EXPECT_EQ(p.hi, 3.0);
  EXPECT_EQ(p.length(), 0.0);
  EXPECT_TRUE(p.Contains(3.0));
  EXPECT_FALSE(p.Contains(3.0001));
}

TEST(IntervalTest, EmptyWhenLoExceedsHi) {
  EXPECT_TRUE(Interval(2.0, 1.0).empty());
  EXPECT_FALSE(Interval(1.0, 1.0).empty());
}

TEST(IntervalTest, IntersectBasics) {
  const Interval a(0.0, 5.0);
  const Interval b(3.0, 8.0);
  EXPECT_EQ(a.Intersect(b), Interval(3.0, 5.0));
  EXPECT_EQ(b.Intersect(a), Interval(3.0, 5.0));
  EXPECT_TRUE(a.Intersect(Interval(6.0, 7.0)).empty());
  // Touching endpoints intersect in a point (closed intervals).
  EXPECT_EQ(a.Intersect(Interval(5.0, 9.0)), Interval::Point(5.0));
}

TEST(IntervalTest, CoverBasics) {
  EXPECT_EQ(Interval(0.0, 1.0).Cover(Interval(4.0, 5.0)), Interval(0.0, 5.0));
  // Coverage with empty returns the other operand (paper's ⊎ convention for
  // our implementation).
  EXPECT_EQ(Interval::Empty().Cover(Interval(1.0, 2.0)), Interval(1.0, 2.0));
  EXPECT_EQ(Interval(1.0, 2.0).Cover(Interval::Empty()), Interval(1.0, 2.0));
}

TEST(IntervalTest, OverlapsMatchesIntersectNonEmpty) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const Interval a(rng.Uniform(0, 10), rng.Uniform(0, 10));
    const Interval b(rng.Uniform(0, 10), rng.Uniform(0, 10));
    EXPECT_EQ(a.Overlaps(b), !a.Intersect(b).empty());
  }
}

TEST(IntervalTest, PrecedesSemantics) {
  EXPECT_TRUE(Interval(0.0, 1.0).Precedes(Interval(1.0, 2.0)));
  EXPECT_TRUE(Interval(0.0, 1.0).Precedes(Interval(5.0, 6.0)));
  EXPECT_FALSE(Interval(0.0, 2.0).Precedes(Interval(1.0, 3.0)));
  EXPECT_TRUE(Interval::Empty().Precedes(Interval(0.0, 1.0)));
}

TEST(IntervalTest, ContainsInterval) {
  const Interval a(0.0, 10.0);
  EXPECT_TRUE(a.Contains(Interval(2.0, 3.0)));
  EXPECT_TRUE(a.Contains(a));
  EXPECT_FALSE(a.Contains(Interval(-1.0, 3.0)));
  EXPECT_TRUE(a.Contains(Interval::Empty()));
  EXPECT_FALSE(Interval::Empty().Contains(a));
  EXPECT_TRUE(Interval::Empty().Contains(Interval::Empty()));
}

TEST(IntervalTest, InflateAndShift) {
  EXPECT_EQ(Interval(1.0, 2.0).Inflate(0.5), Interval(0.5, 2.5));
  EXPECT_EQ(Interval(1.0, 2.0).Shift(3.0), Interval(4.0, 5.0));
  EXPECT_TRUE(Interval::Empty().Inflate(1.0).empty());
  EXPECT_TRUE(Interval::Empty().Shift(1.0).empty());
}

TEST(IntervalTest, MidAndLength) {
  EXPECT_EQ(Interval(2.0, 6.0).mid(), 4.0);
  EXPECT_EQ(Interval(2.0, 6.0).length(), 4.0);
}

TEST(IntervalTest, ToStringFormats) {
  EXPECT_EQ(Interval::Empty().ToString(), "[]");
  EXPECT_EQ(Interval(1.0, 2.5).ToString(), "[1,2.5]");
}

TEST(SolveLinearTest, PositiveSlope) {
  // 2t - 4 >= 0  ->  t >= 2.
  const Interval s = SolveLinearGe(-4.0, 2.0);
  EXPECT_EQ(s.lo, 2.0);
  EXPECT_EQ(s.hi, kInf);
}

TEST(SolveLinearTest, NegativeSlope) {
  // -t + 3 >= 0  ->  t <= 3.
  const Interval s = SolveLinearGe(3.0, -1.0);
  EXPECT_EQ(s.lo, -kInf);
  EXPECT_EQ(s.hi, 3.0);
}

TEST(SolveLinearTest, ZeroSlope) {
  EXPECT_EQ(SolveLinearGe(1.0, 0.0), Interval::All());
  EXPECT_TRUE(SolveLinearGe(-1.0, 0.0).empty());
  EXPECT_EQ(SolveLinearGe(0.0, 0.0), Interval::All());
  EXPECT_EQ(SolveLinearLe(-1.0, 0.0), Interval::All());
  EXPECT_TRUE(SolveLinearLe(1.0, 0.0).empty());
}

TEST(SolveLinearTest, LeMirrorsGe) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.Uniform(-10, 10);
    const double b = rng.Uniform(-5, 5);
    const Interval ge = SolveLinearGe(a, b);
    const Interval le = SolveLinearLe(-a, -b);
    EXPECT_EQ(ge, le) << "a=" << a << " b=" << b;
  }
}

// Property: every solution interval endpoint actually satisfies (or
// boundary-satisfies) the inequality, and sampled points agree.
class SolveLinearProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolveLinearProperty, SampledPointsAgree) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 500; ++i) {
    const double a = rng.Uniform(-20, 20);
    const double b = rng.Uniform(-4, 4);
    const Interval sol = SolveLinearGe(a, b);
    for (int s = 0; s < 20; ++s) {
      const double t = rng.Uniform(-50, 50);
      const bool satisfied = a + b * t >= -1e-9;
      EXPECT_EQ(sol.Contains(t), satisfied || std::abs(a + b * t) < 1e-9)
          << "a=" << a << " b=" << b << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolveLinearProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dqmo
