// Tests for Vec, Box (Definition 2) and StBox.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geom/box.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::RandomPoint;

TEST(VecTest, ConstructorsAndAccess) {
  const Vec a(1.0, 2.0);
  EXPECT_EQ(a.dims, 2);
  EXPECT_EQ(a[0], 1.0);
  EXPECT_EQ(a[1], 2.0);
  const Vec b(1.0, 2.0, 3.0);
  EXPECT_EQ(b.dims, 3);
  EXPECT_EQ(b[2], 3.0);
}

TEST(VecTest, Arithmetic) {
  const Vec a(1.0, 2.0);
  const Vec b(3.0, 5.0);
  EXPECT_EQ(a + b, Vec(4.0, 7.0));
  EXPECT_EQ(b - a, Vec(2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec(2.0, 4.0));
  EXPECT_EQ(a.Dot(b), 13.0);
}

TEST(VecTest, NormsAndDistance) {
  const Vec a(3.0, 4.0);
  EXPECT_EQ(a.Norm(), 5.0);
  EXPECT_EQ(a.NormSquared(), 25.0);
  EXPECT_EQ(Vec(0.0, 0.0).DistanceTo(a), 5.0);
}

TEST(VecTest, LerpEndpointsAndMidpoint) {
  const Vec a(0.0, 0.0);
  const Vec b(2.0, 4.0);
  EXPECT_EQ(Lerp(a, b, 0.0), a);
  EXPECT_EQ(Lerp(a, b, 1.0), b);
  EXPECT_EQ(Lerp(a, b, 0.5), Vec(1.0, 2.0));
}

TEST(BoxTest, CenteredAndPoint) {
  const Box b = Box::Centered(Vec(5.0, 5.0), 4.0);
  EXPECT_EQ(b.extent(0), Interval(3.0, 7.0));
  EXPECT_EQ(b.extent(1), Interval(3.0, 7.0));
  const Box p = Box::Point(Vec(1.0, 2.0));
  EXPECT_EQ(p.Volume(), 0.0);
  EXPECT_FALSE(p.empty());
  EXPECT_TRUE(p.Contains(Vec(1.0, 2.0)));
}

TEST(BoxTest, FromCornersNormalizesOrder) {
  const Box b = Box::FromCorners(Vec(5.0, 1.0), Vec(2.0, 3.0));
  EXPECT_EQ(b.extent(0), Interval(2.0, 5.0));
  EXPECT_EQ(b.extent(1), Interval(1.0, 3.0));
}

TEST(BoxTest, EmptyPropagates) {
  Box b(2);
  EXPECT_TRUE(b.empty());  // Default extents are empty.
  b.extent(0) = Interval(0.0, 1.0);
  EXPECT_TRUE(b.empty());  // One empty extent still empties the box.
  b.extent(1) = Interval(0.0, 1.0);
  EXPECT_FALSE(b.empty());
}

TEST(BoxTest, VolumeIsExtentProduct) {
  const Box b(Interval(0.0, 2.0), Interval(0.0, 3.0));
  EXPECT_EQ(b.Volume(), 6.0);
  const Box c(Interval(0.0, 2.0), Interval(0.0, 3.0), Interval(0.0, 4.0));
  EXPECT_EQ(c.Volume(), 24.0);
}

TEST(BoxTest, OverlapRequiresAllDims) {
  const Box a(Interval(0.0, 2.0), Interval(0.0, 2.0));
  EXPECT_TRUE(a.Overlaps(Box(Interval(1.0, 3.0), Interval(1.0, 3.0))));
  // Overlap in x only.
  EXPECT_FALSE(a.Overlaps(Box(Interval(1.0, 3.0), Interval(5.0, 6.0))));
}

TEST(BoxTest, IntersectAndCoverRandomized) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const Box a = Box::FromCorners(RandomPoint(&rng, 2, 10),
                                   RandomPoint(&rng, 2, 10));
    const Box b = Box::FromCorners(RandomPoint(&rng, 2, 10),
                                   RandomPoint(&rng, 2, 10));
    const Box inter = a.Intersect(b);
    const Box cover = a.Cover(b);
    const Vec p = RandomPoint(&rng, 2, 10);
    EXPECT_EQ(inter.empty() ? false : inter.Contains(p),
              a.Contains(p) && b.Contains(p));
    if (a.Contains(p) || b.Contains(p)) {
      EXPECT_TRUE(cover.Contains(p));
    }
    EXPECT_TRUE(cover.Contains(a));
    EXPECT_TRUE(cover.Contains(b));
  }
}

TEST(BoxTest, ContainsIsReflexiveAndAntisymmetricOnVolume) {
  const Box a(Interval(0.0, 5.0), Interval(0.0, 5.0));
  const Box b(Interval(1.0, 2.0), Interval(1.0, 2.0));
  EXPECT_TRUE(a.Contains(a));
  EXPECT_TRUE(a.Contains(b));
  EXPECT_FALSE(b.Contains(a));
}

TEST(BoxTest, InflateGrowsAllSides) {
  const Box b = Box(Interval(1.0, 2.0), Interval(3.0, 4.0)).Inflate(0.5);
  EXPECT_EQ(b.extent(0), Interval(0.5, 2.5));
  EXPECT_EQ(b.extent(1), Interval(2.5, 4.5));
}

TEST(BoxTest, ShiftTranslates) {
  const Box b = Box(Interval(1.0, 2.0), Interval(3.0, 4.0))
                    .Shift(Vec(1.0, -1.0));
  EXPECT_EQ(b.extent(0), Interval(2.0, 3.0));
  EXPECT_EQ(b.extent(1), Interval(2.0, 3.0));
}

TEST(BoxTest, CenterIsMidpoint) {
  EXPECT_EQ(Box(Interval(0.0, 4.0), Interval(2.0, 6.0)).Center(),
            Vec(2.0, 4.0));
}

TEST(BoxTest, MinDistanceZeroInside) {
  const Box b(Interval(0.0, 4.0), Interval(0.0, 4.0));
  EXPECT_EQ(b.MinDistance(Vec(2.0, 2.0)), 0.0);
  EXPECT_EQ(b.MinDistance(Vec(4.0, 4.0)), 0.0);  // Boundary counts.
}

TEST(BoxTest, MinDistanceToFaceEdgeCorner) {
  const Box b(Interval(0.0, 4.0), Interval(0.0, 4.0));
  EXPECT_EQ(b.MinDistance(Vec(6.0, 2.0)), 2.0);               // Face.
  EXPECT_DOUBLE_EQ(b.MinDistance(Vec(7.0, 8.0)), 5.0);        // Corner 3-4-5.
}

TEST(StBoxTest, OverlapNeedsSpaceAndTime) {
  const StBox a(Box(Interval(0.0, 2.0), Interval(0.0, 2.0)),
                Interval(0.0, 1.0));
  const StBox same_space_later(a.spatial, Interval(2.0, 3.0));
  EXPECT_FALSE(a.Overlaps(same_space_later));
  const StBox overlapping(Box(Interval(1.0, 3.0), Interval(1.0, 3.0)),
                          Interval(0.5, 0.7));
  EXPECT_TRUE(a.Overlaps(overlapping));
}

TEST(StBoxTest, IntersectCoverContains) {
  const StBox a(Box(Interval(0.0, 4.0), Interval(0.0, 4.0)),
                Interval(0.0, 4.0));
  const StBox b(Box(Interval(2.0, 6.0), Interval(2.0, 6.0)),
                Interval(2.0, 6.0));
  const StBox inter = a.Intersect(b);
  EXPECT_EQ(inter.time, Interval(2.0, 4.0));
  EXPECT_EQ(inter.spatial.extent(0), Interval(2.0, 4.0));
  const StBox cover = a.Cover(b);
  EXPECT_TRUE(cover.Contains(a));
  EXPECT_TRUE(cover.Contains(b));
  EXPECT_TRUE(a.Contains(inter));
}

TEST(StBoxTest, EmptyBehaviour) {
  StBox e;
  EXPECT_TRUE(e.empty());
  const StBox a(Box(Interval(0.0, 1.0), Interval(0.0, 1.0)),
                Interval(0.0, 1.0));
  EXPECT_TRUE(a.Contains(e));
  EXPECT_EQ(a.Cover(e), a);
}

}  // namespace
}  // namespace dqmo
