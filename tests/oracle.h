// Differential oracle for the dynamic-query algorithms: brute-force
// reference implementations that answer every query by linear scan over the
// full data set, with the *same* delivery semantics as the indexed
// processors. The oracle tests (tests/oracle_test.cc) sweep seeded random
// workloads and assert exact result equality, frame by frame.
//
// Semantics mirrored here (and where they come from):
//
//  * Snapshot (Definition 3): exact segment-vs-box intersection — the
//    existing BruteForceRange.
//  * PDQ (Sect. 4.1): an object is delivered in the first frame [t0, t1]
//    whose interval meets the object's exact visible-time set
//    T = trajectory.OverlapTimes(m.seg), each object at most once. This is
//    exactly PredictiveDynamicQuery::GetNext's rule: expired items
//    (visible only before the current frame) are dropped, future items are
//    requeued — so the rule also holds across mid-session insertions.
//  * NPDQ (Sect. 4.2, default LeafSemantics::kBoundingBox +
//    SpatialPruning::kIntersectionContained): frame i delivers the
//    BB-matches of q_i that were not BB-matches of q_{i-1}. Exact for a
//    static tree; concurrent insertions may legally cause re-deliveries
//    (stamped subtrees opt out of the previous-query skip), which the
//    insert-sweep tests bound instead of equating.
//  * kNN: the k alive objects with smallest StSegment::DistanceAt — the
//    identical distance computation KnnAt uses on the identical stored
//    (float32-quantized) geometry, so distances match bit-for-bit.
#ifndef DQMO_TESTS_ORACLE_H_
#define DQMO_TESTS_ORACLE_H_

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "geom/box.h"
#include "geom/trajectory.h"
#include "motion/motion_segment.h"
#include "query/knn.h"
#include "rtree/layout.h"
#include "server/shard.h"
#include "test_util.h"

namespace dqmo::testing {

/// The flat data set every oracle scans. Feed it the *stored* form of each
/// segment (Insert quantizes for you) so expectations match the index
/// bit-for-bit.
class NaiveOracle {
 public:
  NaiveOracle() = default;
  explicit NaiveOracle(std::vector<MotionSegment> data)
      : data_(std::move(data)) {}

  /// Mirrors RTree::Insert (including float32 quantization).
  void Insert(const MotionSegment& m) {
    data_.push_back(m);
    data_.back().seg = QuantizeStored(m.seg);
  }

  const std::vector<MotionSegment>& data() const { return data_; }

  /// Snapshot query, exact leaf semantics (reference for RangeSearch).
  std::vector<MotionSegment> Snapshot(const StBox& q) const {
    return BruteForceRange(data_, q);
  }

  /// k nearest alive objects at time `t`, by increasing DistanceAt.
  /// Ties are broken by key so the oracle itself is deterministic; the
  /// indexed search may order equal distances differently, so compare
  /// distances positionally and keys only where distances are unique.
  std::vector<Neighbor> Knn(const Vec& point, double t, int k) const {
    std::vector<Neighbor> all;
    for (const MotionSegment& m : data_) {
      if (!m.seg.time.Contains(t)) continue;
      all.push_back(Neighbor{m, m.seg.DistanceAt(t, point)});
    }
    std::sort(all.begin(), all.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.motion.key() < b.motion.key();
              });
    if (static_cast<int>(all.size()) > k) all.resize(static_cast<size_t>(k));
    return all;
  }

 private:
  std::vector<MotionSegment> data_;
};

/// Stateful PDQ reference over a known query trajectory: exactly-once
/// delivery, first frame whose interval meets the visible-time set.
/// Works for SPDQ too — construct it over the *inflated* trajectory.
class PdqOracle {
 public:
  PdqOracle(const NaiveOracle* oracle, QueryTrajectory trajectory)
      : oracle_(oracle), trajectory_(std::move(trajectory)) {}

  /// Keys delivered in frame [t0, t1]. Sees insertions into the underlying
  /// oracle automatically (an object inserted between frames joins the
  /// scan from the next frame on, exactly like a tracked PDQ).
  std::set<MotionSegment::Key> Frame(double t0, double t1) {
    std::set<MotionSegment::Key> out;
    const Interval frame(t0, t1);
    for (const MotionSegment& m : oracle_->data()) {
      if (delivered_.count(m.key()) > 0) continue;
      if (trajectory_.OverlapTimes(m.seg).Overlaps(frame)) {
        out.insert(m.key());
        delivered_.insert(m.key());
      }
    }
    return out;
  }

 private:
  const NaiveOracle* oracle_;
  QueryTrajectory trajectory_;
  std::set<MotionSegment::Key> delivered_;
};

/// Stateful NPDQ reference under the default configuration: frame i
/// delivers BB-matches(q_i) minus BB-matches(q_{i-1}).
class NpdqOracle {
 public:
  explicit NpdqOracle(const NaiveOracle* oracle) : oracle_(oracle) {}

  /// True iff the stored segment's (outward-quantized) bounding box — the
  /// leaf entry geometry — intersects `q`.
  static bool Matches(const MotionSegment& m, const StBox& q) {
    return QuantizeOutward(m.Bounds()).Overlaps(q);
  }

  std::set<MotionSegment::Key> Frame(const StBox& q) {
    std::set<MotionSegment::Key> out;
    for (const MotionSegment& m : oracle_->data()) {
      if (!Matches(m, q)) continue;
      if (prev_.has_value() && Matches(m, *prev_)) continue;
      out.insert(m.key());
    }
    prev_ = q;
    return out;
  }

  const std::optional<StBox>& previous() const { return prev_; }

 private:
  const NaiveOracle* oracle_;
  std::optional<StBox> prev_;
};

/// Differential reference for the sharded engine's partitioning: routes
/// every insert through the same ShardMap the engine uses, keeps one
/// NaiveOracle per shard plus the flat union, and certifies the partition
/// invariants the router's exactness argument rests on — each segment
/// lives in exactly one shard, and merged per-shard answers equal the flat
/// oracle's. Segments are routed *before* quantization, exactly as
/// ShardedEngine::Insert routes them.
class ShardedOracle {
 public:
  explicit ShardedOracle(const ShardMap& map)
      : map_(map), shards_(static_cast<size_t>(map.num_shards())) {}

  void Insert(const MotionSegment& m) {
    flat_.Insert(m);
    shards_[static_cast<size_t>(map_.ShardOf(m))].Insert(m);
  }

  int num_shards() const { return map_.num_shards(); }
  const ShardMap& map() const { return map_; }
  const NaiveOracle& flat() const { return flat_; }
  const NaiveOracle& shard(int s) const {
    return shards_[static_cast<size_t>(s)];
  }

  /// Exactly-once routing: shard contents are pairwise key-disjoint and
  /// their union is exactly the flat data set.
  bool PartitionExact() const {
    std::set<MotionSegment::Key> seen;
    size_t total = 0;
    for (const NaiveOracle& s : shards_) {
      for (const MotionSegment& m : s.data()) {
        if (!seen.insert(m.key()).second) return false;  // Duplicate.
        ++total;
      }
    }
    if (total != flat_.data().size()) return false;
    for (const MotionSegment& m : flat_.data()) {
      if (seen.count(m.key()) == 0) return false;  // Lost.
    }
    return true;
  }

  /// Union of per-shard snapshot answers, as a key set. Equals
  /// flat().Snapshot(q)'s key set iff the partition is exact — the
  /// per-frame identity the sharded PDQ/NPDQ merges inherit.
  std::set<MotionSegment::Key> MergedSnapshot(const StBox& q) const {
    std::set<MotionSegment::Key> out;
    for (const NaiveOracle& s : shards_) {
      for (const MotionSegment& m : s.Snapshot(q)) out.insert(m.key());
    }
    return out;
  }

  /// Global top-k assembled from per-shard local top-k lists, merged by
  /// (distance, key) — the router's MergeNeighborsByDistance rule. Equals
  /// flat().Knn() because every true global neighbor is in its own shard's
  /// local top-k.
  std::vector<Neighbor> MergedKnn(const Vec& point, double t, int k) const {
    std::vector<Neighbor> all;
    for (const NaiveOracle& s : shards_) {
      const std::vector<Neighbor> local = s.Knn(point, t, k);
      all.insert(all.end(), local.begin(), local.end());
    }
    std::sort(all.begin(), all.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.motion.key() < b.motion.key();
              });
    if (static_cast<int>(all.size()) > k) all.resize(static_cast<size_t>(k));
    return all;
  }

 private:
  ShardMap map_;
  NaiveOracle flat_;
  std::vector<NaiveOracle> shards_;
};

}  // namespace dqmo::testing

#endif  // DQMO_TESTS_ORACLE_H_
