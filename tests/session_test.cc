// Tests for DynamicQuerySession: automated PDQ <-> NPDQ hand-off (the
// paper's future-work item (iv) and the three operating modes of Sect. 4).
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "query/session.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::KeysOf;
using ::dqmo::testing::RandomSegments;

struct SessionFixture {
  PageFile file;
  std::unique_ptr<RTree> tree;
  std::vector<MotionSegment> data;
};

void BuildFixture(SessionFixture* fx, uint64_t seed, int n = 4000) {
  auto tree = RTree::Create(&fx->file, RTree::Options());
  ASSERT_TRUE(tree.ok());
  fx->tree = std::move(tree).value();
  Rng rng(seed);
  fx->data = RandomSegments(&rng, n, 2, 100, 100);
  for (const auto& m : fx->data) ASSERT_TRUE(fx->tree->Insert(m).ok());
}

DynamicQuerySession::Options DefaultOptions() {
  DynamicQuerySession::Options options;
  options.window = 10.0;
  options.deviation_bound = 1.0;
  options.prediction_horizon = 4.0;
  options.stable_frames_to_predict = 4;
  return options;
}

TEST(SessionTest, RejectsNonAdvancingTime) {
  SessionFixture fx;
  BuildFixture(&fx, 1, 200);
  DynamicQuerySession session(fx.tree.get(), DefaultOptions());
  ASSERT_TRUE(session.OnFrame(5.0, Vec(50, 50), Vec(1, 0)).ok());
  EXPECT_TRUE(session.OnFrame(5.0, Vec(50, 50), Vec(1, 0))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session.OnFrame(4.0, Vec(50, 50), Vec(1, 0))
                  .status()
                  .IsInvalidArgument());
}

TEST(SessionTest, StartsNonPredictiveThenHandsOffToPdq) {
  SessionFixture fx;
  BuildFixture(&fx, 2, 500);
  DynamicQuerySession session(fx.tree.get(), DefaultOptions());
  EXPECT_EQ(session.mode(), DynamicQuerySession::Mode::kNonPredictive);
  // Straight, steady motion: after the stability streak the session must
  // switch to predictive mode and stay there.
  Vec pos(20, 50);
  const Vec vel(1.0, 0.0);
  bool saw_handoff = false;
  for (int i = 0; i < 40; ++i) {
    const double t = 10.0 + i * 0.1;
    pos[0] = 20.0 + (t - 10.0) * 1.0;
    auto frame = session.OnFrame(t, pos, vel);
    ASSERT_TRUE(frame.ok());
    saw_handoff |= frame->handoff;
  }
  EXPECT_TRUE(saw_handoff);
  EXPECT_EQ(session.mode(), DynamicQuerySession::Mode::kPredictive);
  EXPECT_EQ(session.session_stats().handoffs_to_pdq, 1u);
  EXPECT_EQ(session.session_stats().handoffs_to_npdq, 0u);
  EXPECT_GT(session.session_stats().predictive_frames, 25u);
}

TEST(SessionTest, JitterWithinBoundStaysPredictive) {
  SessionFixture fx;
  BuildFixture(&fx, 3, 500);
  auto options = DefaultOptions();
  DynamicQuerySession session(fx.tree.get(), options);
  Rng rng(33);
  Vec pos(20, 50);
  const Vec vel(1.0, 0.0);
  for (int i = 0; i < 100; ++i) {
    const double t = 10.0 + i * 0.1;
    // True position: straight line plus jitter well inside the bound.
    Vec observed = pos;
    observed[0] = 20.0 + (t - 10.0) + rng.Uniform(-0.3, 0.3);
    observed[1] = 50.0 + rng.Uniform(-0.3, 0.3);
    ASSERT_TRUE(session.OnFrame(t, observed, vel).ok());
  }
  EXPECT_EQ(session.mode(), DynamicQuerySession::Mode::kPredictive);
  EXPECT_EQ(session.session_stats().handoffs_to_npdq, 0u);
}

TEST(SessionTest, SharpTurnTriggersHandoffAndRecovery) {
  SessionFixture fx;
  BuildFixture(&fx, 4, 500);
  DynamicQuerySession session(fx.tree.get(), DefaultOptions());
  auto drive = [&](double t, const Vec& p, const Vec& v) {
    auto frame = session.OnFrame(t, p, v);
    ASSERT_TRUE(frame.ok());
  };
  double t = 10.0;
  // Leg 1: eastbound until predictive.
  for (int i = 0; i < 20; ++i, t += 0.1) {
    drive(t, Vec(20.0 + (t - 10.0), 50.0), Vec(1.0, 0.0));
  }
  ASSERT_EQ(session.mode(), DynamicQuerySession::Mode::kPredictive);
  // Sharp 90-degree turn: northbound at 3 u/t — deviates quickly.
  const Vec corner(20.0 + (t - 10.0), 50.0);
  const double turn_t = t;
  for (int i = 0; i < 30; ++i, t += 0.1) {
    drive(t, Vec(corner[0], corner[1] + 3.0 * (t - turn_t)),
          Vec(0.0, 3.0));
  }
  EXPECT_GE(session.session_stats().handoffs_to_npdq, 1u);
  // The steady northbound leg must have re-established prediction.
  EXPECT_EQ(session.mode(), DynamicQuerySession::Mode::kPredictive);
  EXPECT_GE(session.session_stats().handoffs_to_pdq, 2u);
}

TEST(SessionTest, PredictionRenewedWhenHorizonExhausted) {
  SessionFixture fx;
  BuildFixture(&fx, 5, 500);
  auto options = DefaultOptions();
  options.prediction_horizon = 2.0;
  DynamicQuerySession session(fx.tree.get(), options);
  for (int i = 0; i < 100; ++i) {
    const double t = 10.0 + i * 0.1;  // 10 time units total.
    ASSERT_TRUE(
        session.OnFrame(t, Vec(20.0 + (t - 10.0), 50.0), Vec(1.0, 0.0))
            .ok());
  }
  EXPECT_GE(session.session_stats().pdq_renewals, 3u);
  EXPECT_EQ(session.session_stats().handoffs_to_npdq, 0u);
}

// Completeness across mode switches: at every frame, the set of objects
// delivered so far must cover everything whose exact trajectory is inside
// the observer's window during that frame (the session may deliver
// supersets — SPDQ inflation, BB leaf semantics — but must never miss).
class SessionCompleteness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SessionCompleteness, NoVisibleObjectEverMissed) {
  SessionFixture fx;
  BuildFixture(&fx, GetParam());
  DynamicQuerySession session(fx.tree.get(), DefaultOptions());
  Rng rng(GetParam() * 31);

  std::set<MotionSegment::Key> delivered;
  Vec pos(30, 30);
  Vec vel(1.2, 0.4);
  double t = 5.0;
  for (int i = 0; i < 120; ++i, t += 0.1) {
    // Occasionally jerk the observer (interaction).
    if (i % 37 == 36) {
      vel = Vec(rng.Uniform(-2, 2), rng.Uniform(-2, 2));
    }
    pos = pos + vel * 0.1;
    pos[0] = std::clamp(pos[0], 6.0, 94.0);
    pos[1] = std::clamp(pos[1], 6.0, 94.0);
    auto frame = session.OnFrame(t, pos, vel);
    ASSERT_TRUE(frame.ok());
    for (const MotionSegment& m : frame->fresh) delivered.insert(m.key());

    // Ground truth: exact hits of the observer's *instantaneous* window at
    // the frame time (covered by both engines: NPDQ queries this window
    // over the frame interval; SPDQ's inflation bound covers the actual
    // observer whenever prediction holds).
    const StBox actual(Box::Centered(pos, 10.0), Interval::Point(t));
    for (const MotionSegment& m : fx.data) {
      if (m.seg.Intersects(actual)) {
        EXPECT_TRUE(delivered.contains(m.key()))
            << "frame " << i << " (mode "
            << (frame->mode == DynamicQuerySession::Mode::kPredictive
                    ? "PDQ"
                    : "NPDQ")
            << "): visible object " << m.oid << " never delivered";
      }
    }
  }
  EXPECT_GT(session.session_stats().predictive_frames, 0u);
  EXPECT_GT(session.session_stats().non_predictive_frames, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionCompleteness,
                         ::testing::Values(41, 42, 43));

TEST(SessionTest, TotalStatsAggregateBothEngines) {
  SessionFixture fx;
  BuildFixture(&fx, 6, 1000);
  DynamicQuerySession session(fx.tree.get(), DefaultOptions());
  for (int i = 0; i < 30; ++i) {
    const double t = 10.0 + i * 0.1;
    ASSERT_TRUE(
        session.OnFrame(t, Vec(40.0 + (t - 10.0), 50.0), Vec(1.0, 0.0))
            .ok());
  }
  const QueryStats total = session.TotalStats();
  EXPECT_GT(total.node_reads, 0u);
  EXPECT_GT(total.distance_computations, 0u);
}

}  // namespace
}  // namespace dqmo
