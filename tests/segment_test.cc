// Tests for StSegment: the location function (Eq. (1)) and the exact
// segment-vs-query-box intersection of Sect. 3.2, validated against dense
// time sampling.
#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/segment.h"
#include "test_util.h"

namespace dqmo {
namespace {

using ::dqmo::testing::RandomPoint;

StSegment MakeSeg(Vec a, Vec b, double t0, double t1) {
  return StSegment(a, b, Interval(t0, t1));
}

TEST(SegmentTest, VelocityAndPosition) {
  const StSegment s = MakeSeg(Vec(0.0, 0.0), Vec(2.0, 4.0), 1.0, 3.0);
  EXPECT_EQ(s.Velocity(), Vec(1.0, 2.0));
  EXPECT_EQ(s.PositionAt(1.0), Vec(0.0, 0.0));
  EXPECT_EQ(s.PositionAt(3.0), Vec(2.0, 4.0));
  EXPECT_EQ(s.PositionAt(2.0), Vec(1.0, 2.0));
}

TEST(SegmentTest, InstantaneousSegmentIsStationary) {
  const StSegment s = MakeSeg(Vec(1.0, 1.0), Vec(1.0, 1.0), 2.0, 2.0);
  EXPECT_EQ(s.Velocity(), Vec(0.0, 0.0));
  EXPECT_EQ(s.PositionAt(2.0), Vec(1.0, 1.0));
}

TEST(SegmentTest, BoundsCoverTrajectory) {
  const StSegment s = MakeSeg(Vec(3.0, 1.0), Vec(1.0, 5.0), 0.0, 2.0);
  const StBox b = s.Bounds();
  EXPECT_EQ(b.spatial.extent(0), Interval(1.0, 3.0));
  EXPECT_EQ(b.spatial.extent(1), Interval(1.0, 5.0));
  EXPECT_EQ(b.time, Interval(0.0, 2.0));
}

TEST(SegmentTest, OverlapTimeStationaryInside) {
  const StSegment s = MakeSeg(Vec(1.0, 1.0), Vec(1.0, 1.0), 0.0, 10.0);
  const StBox q(Box(Interval(0.0, 2.0), Interval(0.0, 2.0)),
                Interval(3.0, 4.0));
  EXPECT_EQ(s.OverlapTime(q), Interval(3.0, 4.0));
}

TEST(SegmentTest, OverlapTimeCrossingBox) {
  // Moves along x from 0 to 10 over t in [0, 10]; box x in [2, 4].
  const StSegment s = MakeSeg(Vec(0.0, 0.0), Vec(10.0, 0.0), 0.0, 10.0);
  const StBox q(Box(Interval(2.0, 4.0), Interval(-1.0, 1.0)),
                Interval(0.0, 10.0));
  EXPECT_EQ(s.OverlapTime(q), Interval(2.0, 4.0));
}

TEST(SegmentTest, OverlapTimeClippedByQueryTime) {
  const StSegment s = MakeSeg(Vec(0.0, 0.0), Vec(10.0, 0.0), 0.0, 10.0);
  const StBox q(Box(Interval(2.0, 8.0), Interval(-1.0, 1.0)),
                Interval(5.0, 6.0));
  EXPECT_EQ(s.OverlapTime(q), Interval(5.0, 6.0));
}

TEST(SegmentTest, BbIntersectsButSegmentMisses) {
  // Diagonal segment whose BB covers the box but whose line passes beside
  // it — the Sect. 3.2 false-admission case the exact test eliminates.
  const StSegment s = MakeSeg(Vec(0.0, 0.0), Vec(10.0, 10.0), 0.0, 10.0);
  const StBox q(Box(Interval(8.0, 10.0), Interval(0.0, 2.0)),
                Interval(0.0, 10.0));
  EXPECT_TRUE(s.Bounds().Overlaps(q));
  EXPECT_FALSE(s.Intersects(q));
}

TEST(SegmentTest, TemporalDisjointMisses) {
  const StSegment s = MakeSeg(Vec(1.0, 1.0), Vec(1.0, 1.0), 0.0, 1.0);
  const StBox q(Box(Interval(0.0, 2.0), Interval(0.0, 2.0)),
                Interval(2.0, 3.0));
  EXPECT_FALSE(s.Intersects(q));
}

TEST(SegmentTest, TouchingBoundaryCounts) {
  // Ends exactly on the box's lower-left corner at the query start time.
  const StSegment s = MakeSeg(Vec(0.0, 0.0), Vec(2.0, 2.0), 0.0, 2.0);
  const StBox q(Box(Interval(2.0, 4.0), Interval(2.0, 4.0)),
                Interval(2.0, 5.0));
  EXPECT_TRUE(s.Intersects(q));
  EXPECT_EQ(s.OverlapTime(q), Interval::Point(2.0));
}

TEST(SegmentTest, DistanceAt) {
  const StSegment s = MakeSeg(Vec(0.0, 0.0), Vec(10.0, 0.0), 0.0, 10.0);
  EXPECT_DOUBLE_EQ(s.DistanceAt(5.0, Vec(5.0, 3.0)), 3.0);
}

TEST(SegmentTest, ThreeDimensionalOverlap) {
  const StSegment s(Vec(0.0, 0.0, 0.0), Vec(10.0, 10.0, 10.0),
                    Interval(0.0, 10.0));
  const StBox q(Box(Interval(4.0, 6.0), Interval(4.0, 6.0),
                    Interval(4.0, 6.0)),
                Interval(0.0, 10.0));
  EXPECT_EQ(s.OverlapTime(q), Interval(4.0, 6.0));
}

// Property: OverlapTime agrees with dense sampling of the location
// function. Sampled instants inside the reported interval must lie in the
// box; instants clearly outside must not (allowing boundary tolerance).
class SegmentOverlapProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SegmentOverlapProperty, MatchesSampling) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    const StSegment s = MakeSeg(RandomPoint(&rng, 2, 10),
                                RandomPoint(&rng, 2, 10),
                                rng.Uniform(0, 5), rng.Uniform(5, 10));
    const StBox q = dqmo::testing::RandomQueryBox(&rng, 2, 10.0, 10.0, 5.0,
                                                  10.0);
    const Interval overlap = s.OverlapTime(q);
    for (int k = 0; k <= 50; ++k) {
      const double t =
          s.time.lo + (s.time.hi - s.time.lo) * k / 50.0;
      const bool inside =
          q.time.Contains(t) && q.spatial.Contains(s.PositionAt(t));
      if (inside) {
        // Tolerance: a point grazing the box boundary may fall a rounding
        // error outside the solver's interval.
        EXPECT_TRUE(overlap.Inflate(1e-9).Contains(t))
            << "sampled inside point not in overlap; t=" << t;
      }
      if (!overlap.empty() &&
          (t < overlap.lo - 1e-9 || t > overlap.hi + 1e-9)) {
        EXPECT_FALSE(inside) << "point outside overlap lies in box; t=" << t;
      }
      if (overlap.empty()) {
        EXPECT_FALSE(inside) << "empty overlap but sampled point inside";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentOverlapProperty,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace dqmo
