file(REMOVE_RECURSE
  "CMakeFiles/abl_update_mgmt.dir/abl_update_mgmt.cc.o"
  "CMakeFiles/abl_update_mgmt.dir/abl_update_mgmt.cc.o.d"
  "abl_update_mgmt"
  "abl_update_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_update_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
