# Empty compiler generated dependencies file for abl_update_mgmt.
# This may be replaced when dependencies are built.
