# Empty compiler generated dependencies file for abl_session.
# This may be replaced when dependencies are built.
