file(REMOVE_RECURSE
  "CMakeFiles/abl_session.dir/abl_session.cc.o"
  "CMakeFiles/abl_session.dir/abl_session.cc.o.d"
  "abl_session"
  "abl_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
