# Empty compiler generated dependencies file for fig11_npdq_cpu.
# This may be replaced when dependencies are built.
