file(REMOVE_RECURSE
  "CMakeFiles/abl_lru_naive.dir/abl_lru_naive.cc.o"
  "CMakeFiles/abl_lru_naive.dir/abl_lru_naive.cc.o.d"
  "abl_lru_naive"
  "abl_lru_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lru_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
