# Empty dependencies file for abl_lru_naive.
# This may be replaced when dependencies are built.
