file(REMOVE_RECURSE
  "CMakeFiles/abl_spdq_delta.dir/abl_spdq_delta.cc.o"
  "CMakeFiles/abl_spdq_delta.dir/abl_spdq_delta.cc.o.d"
  "abl_spdq_delta"
  "abl_spdq_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_spdq_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
