# Empty dependencies file for abl_spdq_delta.
# This may be replaced when dependencies are built.
