# Empty dependencies file for abl_psi.
# This may be replaced when dependencies are built.
