file(REMOVE_RECURSE
  "CMakeFiles/abl_psi.dir/abl_psi.cc.o"
  "CMakeFiles/abl_psi.dir/abl_psi.cc.o.d"
  "abl_psi"
  "abl_psi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_psi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
