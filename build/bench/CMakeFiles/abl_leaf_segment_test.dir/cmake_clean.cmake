file(REMOVE_RECURSE
  "CMakeFiles/abl_leaf_segment_test.dir/abl_leaf_segment_test.cc.o"
  "CMakeFiles/abl_leaf_segment_test.dir/abl_leaf_segment_test.cc.o.d"
  "abl_leaf_segment_test"
  "abl_leaf_segment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_leaf_segment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
