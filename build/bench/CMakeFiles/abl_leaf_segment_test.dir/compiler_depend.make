# Empty compiler generated dependencies file for abl_leaf_segment_test.
# This may be replaced when dependencies are built.
