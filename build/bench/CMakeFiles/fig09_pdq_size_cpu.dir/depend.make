# Empty dependencies file for fig09_pdq_size_cpu.
# This may be replaced when dependencies are built.
