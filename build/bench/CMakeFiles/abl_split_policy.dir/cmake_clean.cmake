file(REMOVE_RECURSE
  "CMakeFiles/abl_split_policy.dir/abl_split_policy.cc.o"
  "CMakeFiles/abl_split_policy.dir/abl_split_policy.cc.o.d"
  "abl_split_policy"
  "abl_split_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_split_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
