# Empty dependencies file for abl_discardability.
# This may be replaced when dependencies are built.
