file(REMOVE_RECURSE
  "CMakeFiles/abl_discardability.dir/abl_discardability.cc.o"
  "CMakeFiles/abl_discardability.dir/abl_discardability.cc.o.d"
  "abl_discardability"
  "abl_discardability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_discardability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
