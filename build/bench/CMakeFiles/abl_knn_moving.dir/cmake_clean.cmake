file(REMOVE_RECURSE
  "CMakeFiles/abl_knn_moving.dir/abl_knn_moving.cc.o"
  "CMakeFiles/abl_knn_moving.dir/abl_knn_moving.cc.o.d"
  "abl_knn_moving"
  "abl_knn_moving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_knn_moving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
