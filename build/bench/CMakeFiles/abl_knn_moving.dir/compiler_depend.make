# Empty compiler generated dependencies file for abl_knn_moving.
# This may be replaced when dependencies are built.
