# Empty dependencies file for fig12_npdq_size_io.
# This may be replaced when dependencies are built.
