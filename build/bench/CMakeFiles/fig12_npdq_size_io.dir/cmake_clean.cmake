file(REMOVE_RECURSE
  "CMakeFiles/fig12_npdq_size_io.dir/fig12_npdq_size_io.cc.o"
  "CMakeFiles/fig12_npdq_size_io.dir/fig12_npdq_size_io.cc.o.d"
  "fig12_npdq_size_io"
  "fig12_npdq_size_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_npdq_size_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
