# Empty compiler generated dependencies file for fig07_pdq_cpu.
# This may be replaced when dependencies are built.
