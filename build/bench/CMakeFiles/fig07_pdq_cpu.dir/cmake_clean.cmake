file(REMOVE_RECURSE
  "CMakeFiles/fig07_pdq_cpu.dir/fig07_pdq_cpu.cc.o"
  "CMakeFiles/fig07_pdq_cpu.dir/fig07_pdq_cpu.cc.o.d"
  "fig07_pdq_cpu"
  "fig07_pdq_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_pdq_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
