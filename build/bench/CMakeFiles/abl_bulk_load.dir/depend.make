# Empty dependencies file for abl_bulk_load.
# This may be replaced when dependencies are built.
