file(REMOVE_RECURSE
  "CMakeFiles/abl_bulk_load.dir/abl_bulk_load.cc.o"
  "CMakeFiles/abl_bulk_load.dir/abl_bulk_load.cc.o.d"
  "abl_bulk_load"
  "abl_bulk_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bulk_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
