file(REMOVE_RECURSE
  "CMakeFiles/abl_join.dir/abl_join.cc.o"
  "CMakeFiles/abl_join.dir/abl_join.cc.o.d"
  "abl_join"
  "abl_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
