file(REMOVE_RECURSE
  "CMakeFiles/fig13_npdq_size_cpu.dir/fig13_npdq_size_cpu.cc.o"
  "CMakeFiles/fig13_npdq_size_cpu.dir/fig13_npdq_size_cpu.cc.o.d"
  "fig13_npdq_size_cpu"
  "fig13_npdq_size_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_npdq_size_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
