# Empty compiler generated dependencies file for fig13_npdq_size_cpu.
# This may be replaced when dependencies are built.
