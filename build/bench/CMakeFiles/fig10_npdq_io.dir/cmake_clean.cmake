file(REMOVE_RECURSE
  "CMakeFiles/fig10_npdq_io.dir/fig10_npdq_io.cc.o"
  "CMakeFiles/fig10_npdq_io.dir/fig10_npdq_io.cc.o.d"
  "fig10_npdq_io"
  "fig10_npdq_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_npdq_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
