# Empty dependencies file for fig10_npdq_io.
# This may be replaced when dependencies are built.
