file(REMOVE_RECURSE
  "CMakeFiles/fig08_pdq_size_io.dir/fig08_pdq_size_io.cc.o"
  "CMakeFiles/fig08_pdq_size_io.dir/fig08_pdq_size_io.cc.o.d"
  "fig08_pdq_size_io"
  "fig08_pdq_size_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_pdq_size_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
