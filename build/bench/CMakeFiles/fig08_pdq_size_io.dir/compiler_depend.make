# Empty compiler generated dependencies file for fig08_pdq_size_io.
# This may be replaced when dependencies are built.
