# Empty dependencies file for fig06_pdq_io.
# This may be replaced when dependencies are built.
