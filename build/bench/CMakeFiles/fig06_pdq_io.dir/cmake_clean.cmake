file(REMOVE_RECURSE
  "CMakeFiles/fig06_pdq_io.dir/fig06_pdq_io.cc.o"
  "CMakeFiles/fig06_pdq_io.dir/fig06_pdq_io.cc.o.d"
  "fig06_pdq_io"
  "fig06_pdq_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_pdq_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
