file(REMOVE_RECURSE
  "CMakeFiles/interactive_flight.dir/interactive_flight.cc.o"
  "CMakeFiles/interactive_flight.dir/interactive_flight.cc.o.d"
  "interactive_flight"
  "interactive_flight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_flight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
