# Empty compiler generated dependencies file for interactive_flight.
# This may be replaced when dependencies are built.
