file(REMOVE_RECURSE
  "CMakeFiles/flythrough.dir/flythrough.cc.o"
  "CMakeFiles/flythrough.dir/flythrough.cc.o.d"
  "flythrough"
  "flythrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flythrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
