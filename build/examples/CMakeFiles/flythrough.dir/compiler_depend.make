# Empty compiler generated dependencies file for flythrough.
# This may be replaced when dependencies are built.
