file(REMOVE_RECURSE
  "CMakeFiles/situational_awareness.dir/situational_awareness.cc.o"
  "CMakeFiles/situational_awareness.dir/situational_awareness.cc.o.d"
  "situational_awareness"
  "situational_awareness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/situational_awareness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
