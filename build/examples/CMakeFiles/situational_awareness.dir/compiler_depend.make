# Empty compiler generated dependencies file for situational_awareness.
# This may be replaced when dependencies are built.
