file(REMOVE_RECURSE
  "CMakeFiles/dqmo_tool.dir/dqmo_tool.cc.o"
  "CMakeFiles/dqmo_tool.dir/dqmo_tool.cc.o.d"
  "dqmo_tool"
  "dqmo_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqmo_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
