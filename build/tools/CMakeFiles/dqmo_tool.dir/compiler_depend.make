# Empty compiler generated dependencies file for dqmo_tool.
# This may be replaced when dependencies are built.
