
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/dqmo_tool.cc" "tools/CMakeFiles/dqmo_tool.dir/dqmo_tool.cc.o" "gcc" "tools/CMakeFiles/dqmo_tool.dir/dqmo_tool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/psi/CMakeFiles/dqmo_psi.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/dqmo_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/dqmo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/dqmo_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dqmo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/dqmo_client.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dqmo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/motion/CMakeFiles/dqmo_motion.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dqmo_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dqmo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
