file(REMOVE_RECURSE
  "libdqmo_client.a"
)
