# Empty compiler generated dependencies file for dqmo_client.
# This may be replaced when dependencies are built.
