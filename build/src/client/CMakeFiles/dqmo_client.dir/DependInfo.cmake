
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/result_cache.cc" "src/client/CMakeFiles/dqmo_client.dir/result_cache.cc.o" "gcc" "src/client/CMakeFiles/dqmo_client.dir/result_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/dqmo_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/motion/CMakeFiles/dqmo_motion.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dqmo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
