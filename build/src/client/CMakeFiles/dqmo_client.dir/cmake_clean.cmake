file(REMOVE_RECURSE
  "CMakeFiles/dqmo_client.dir/result_cache.cc.o"
  "CMakeFiles/dqmo_client.dir/result_cache.cc.o.d"
  "libdqmo_client.a"
  "libdqmo_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqmo_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
