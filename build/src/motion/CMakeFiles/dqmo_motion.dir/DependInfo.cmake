
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/motion/motion_segment.cc" "src/motion/CMakeFiles/dqmo_motion.dir/motion_segment.cc.o" "gcc" "src/motion/CMakeFiles/dqmo_motion.dir/motion_segment.cc.o.d"
  "/root/repo/src/motion/tracker.cc" "src/motion/CMakeFiles/dqmo_motion.dir/tracker.cc.o" "gcc" "src/motion/CMakeFiles/dqmo_motion.dir/tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/dqmo_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dqmo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
