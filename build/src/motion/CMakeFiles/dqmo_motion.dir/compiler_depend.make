# Empty compiler generated dependencies file for dqmo_motion.
# This may be replaced when dependencies are built.
