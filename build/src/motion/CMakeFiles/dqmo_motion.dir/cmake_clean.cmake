file(REMOVE_RECURSE
  "CMakeFiles/dqmo_motion.dir/motion_segment.cc.o"
  "CMakeFiles/dqmo_motion.dir/motion_segment.cc.o.d"
  "CMakeFiles/dqmo_motion.dir/tracker.cc.o"
  "CMakeFiles/dqmo_motion.dir/tracker.cc.o.d"
  "libdqmo_motion.a"
  "libdqmo_motion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqmo_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
