file(REMOVE_RECURSE
  "libdqmo_motion.a"
)
