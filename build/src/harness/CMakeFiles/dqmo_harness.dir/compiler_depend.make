# Empty compiler generated dependencies file for dqmo_harness.
# This may be replaced when dependencies are built.
