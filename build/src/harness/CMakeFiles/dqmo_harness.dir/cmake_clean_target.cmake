file(REMOVE_RECURSE
  "libdqmo_harness.a"
)
