file(REMOVE_RECURSE
  "CMakeFiles/dqmo_harness.dir/experiment.cc.o"
  "CMakeFiles/dqmo_harness.dir/experiment.cc.o.d"
  "CMakeFiles/dqmo_harness.dir/table.cc.o"
  "CMakeFiles/dqmo_harness.dir/table.cc.o.d"
  "libdqmo_harness.a"
  "libdqmo_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqmo_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
