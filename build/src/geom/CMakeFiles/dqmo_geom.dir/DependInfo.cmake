
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/box.cc" "src/geom/CMakeFiles/dqmo_geom.dir/box.cc.o" "gcc" "src/geom/CMakeFiles/dqmo_geom.dir/box.cc.o.d"
  "/root/repo/src/geom/interval.cc" "src/geom/CMakeFiles/dqmo_geom.dir/interval.cc.o" "gcc" "src/geom/CMakeFiles/dqmo_geom.dir/interval.cc.o.d"
  "/root/repo/src/geom/segment.cc" "src/geom/CMakeFiles/dqmo_geom.dir/segment.cc.o" "gcc" "src/geom/CMakeFiles/dqmo_geom.dir/segment.cc.o.d"
  "/root/repo/src/geom/timeset.cc" "src/geom/CMakeFiles/dqmo_geom.dir/timeset.cc.o" "gcc" "src/geom/CMakeFiles/dqmo_geom.dir/timeset.cc.o.d"
  "/root/repo/src/geom/trajectory.cc" "src/geom/CMakeFiles/dqmo_geom.dir/trajectory.cc.o" "gcc" "src/geom/CMakeFiles/dqmo_geom.dir/trajectory.cc.o.d"
  "/root/repo/src/geom/trapezoid.cc" "src/geom/CMakeFiles/dqmo_geom.dir/trapezoid.cc.o" "gcc" "src/geom/CMakeFiles/dqmo_geom.dir/trapezoid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dqmo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
