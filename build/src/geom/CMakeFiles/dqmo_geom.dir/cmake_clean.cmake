file(REMOVE_RECURSE
  "CMakeFiles/dqmo_geom.dir/box.cc.o"
  "CMakeFiles/dqmo_geom.dir/box.cc.o.d"
  "CMakeFiles/dqmo_geom.dir/interval.cc.o"
  "CMakeFiles/dqmo_geom.dir/interval.cc.o.d"
  "CMakeFiles/dqmo_geom.dir/segment.cc.o"
  "CMakeFiles/dqmo_geom.dir/segment.cc.o.d"
  "CMakeFiles/dqmo_geom.dir/timeset.cc.o"
  "CMakeFiles/dqmo_geom.dir/timeset.cc.o.d"
  "CMakeFiles/dqmo_geom.dir/trajectory.cc.o"
  "CMakeFiles/dqmo_geom.dir/trajectory.cc.o.d"
  "CMakeFiles/dqmo_geom.dir/trapezoid.cc.o"
  "CMakeFiles/dqmo_geom.dir/trapezoid.cc.o.d"
  "libdqmo_geom.a"
  "libdqmo_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqmo_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
