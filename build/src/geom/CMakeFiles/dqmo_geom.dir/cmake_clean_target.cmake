file(REMOVE_RECURSE
  "libdqmo_geom.a"
)
