# Empty dependencies file for dqmo_geom.
# This may be replaced when dependencies are built.
