# Empty dependencies file for dqmo_common.
# This may be replaced when dependencies are built.
