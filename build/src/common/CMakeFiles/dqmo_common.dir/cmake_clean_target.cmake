file(REMOVE_RECURSE
  "libdqmo_common.a"
)
