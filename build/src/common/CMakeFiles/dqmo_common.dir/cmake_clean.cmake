file(REMOVE_RECURSE
  "CMakeFiles/dqmo_common.dir/env.cc.o"
  "CMakeFiles/dqmo_common.dir/env.cc.o.d"
  "CMakeFiles/dqmo_common.dir/logging.cc.o"
  "CMakeFiles/dqmo_common.dir/logging.cc.o.d"
  "CMakeFiles/dqmo_common.dir/random.cc.o"
  "CMakeFiles/dqmo_common.dir/random.cc.o.d"
  "CMakeFiles/dqmo_common.dir/status.cc.o"
  "CMakeFiles/dqmo_common.dir/status.cc.o.d"
  "CMakeFiles/dqmo_common.dir/string_util.cc.o"
  "CMakeFiles/dqmo_common.dir/string_util.cc.o.d"
  "libdqmo_common.a"
  "libdqmo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqmo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
