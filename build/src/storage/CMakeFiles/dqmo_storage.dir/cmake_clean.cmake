file(REMOVE_RECURSE
  "CMakeFiles/dqmo_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/dqmo_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/dqmo_storage.dir/io_stats.cc.o"
  "CMakeFiles/dqmo_storage.dir/io_stats.cc.o.d"
  "CMakeFiles/dqmo_storage.dir/page_file.cc.o"
  "CMakeFiles/dqmo_storage.dir/page_file.cc.o.d"
  "libdqmo_storage.a"
  "libdqmo_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqmo_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
