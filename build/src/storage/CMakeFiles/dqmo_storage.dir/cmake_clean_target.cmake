file(REMOVE_RECURSE
  "libdqmo_storage.a"
)
