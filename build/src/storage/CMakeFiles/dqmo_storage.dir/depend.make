# Empty dependencies file for dqmo_storage.
# This may be replaced when dependencies are built.
