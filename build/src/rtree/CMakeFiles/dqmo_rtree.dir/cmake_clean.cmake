file(REMOVE_RECURSE
  "CMakeFiles/dqmo_rtree.dir/bulk_load.cc.o"
  "CMakeFiles/dqmo_rtree.dir/bulk_load.cc.o.d"
  "CMakeFiles/dqmo_rtree.dir/layout.cc.o"
  "CMakeFiles/dqmo_rtree.dir/layout.cc.o.d"
  "CMakeFiles/dqmo_rtree.dir/node.cc.o"
  "CMakeFiles/dqmo_rtree.dir/node.cc.o.d"
  "CMakeFiles/dqmo_rtree.dir/rtree.cc.o"
  "CMakeFiles/dqmo_rtree.dir/rtree.cc.o.d"
  "CMakeFiles/dqmo_rtree.dir/split.cc.o"
  "CMakeFiles/dqmo_rtree.dir/split.cc.o.d"
  "libdqmo_rtree.a"
  "libdqmo_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqmo_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
