file(REMOVE_RECURSE
  "libdqmo_rtree.a"
)
