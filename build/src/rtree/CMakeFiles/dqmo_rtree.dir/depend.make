# Empty dependencies file for dqmo_rtree.
# This may be replaced when dependencies are built.
