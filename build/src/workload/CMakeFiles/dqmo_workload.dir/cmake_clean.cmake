file(REMOVE_RECURSE
  "CMakeFiles/dqmo_workload.dir/data_generator.cc.o"
  "CMakeFiles/dqmo_workload.dir/data_generator.cc.o.d"
  "CMakeFiles/dqmo_workload.dir/query_generator.cc.o"
  "CMakeFiles/dqmo_workload.dir/query_generator.cc.o.d"
  "libdqmo_workload.a"
  "libdqmo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqmo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
