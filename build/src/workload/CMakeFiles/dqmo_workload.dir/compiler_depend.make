# Empty compiler generated dependencies file for dqmo_workload.
# This may be replaced when dependencies are built.
