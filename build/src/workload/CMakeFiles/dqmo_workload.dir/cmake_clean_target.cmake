file(REMOVE_RECURSE
  "libdqmo_workload.a"
)
