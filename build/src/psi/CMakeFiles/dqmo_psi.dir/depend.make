# Empty dependencies file for dqmo_psi.
# This may be replaced when dependencies are built.
