file(REMOVE_RECURSE
  "CMakeFiles/dqmo_psi.dir/psi.cc.o"
  "CMakeFiles/dqmo_psi.dir/psi.cc.o.d"
  "libdqmo_psi.a"
  "libdqmo_psi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqmo_psi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
