file(REMOVE_RECURSE
  "libdqmo_psi.a"
)
