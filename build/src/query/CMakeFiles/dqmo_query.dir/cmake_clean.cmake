file(REMOVE_RECURSE
  "CMakeFiles/dqmo_query.dir/join.cc.o"
  "CMakeFiles/dqmo_query.dir/join.cc.o.d"
  "CMakeFiles/dqmo_query.dir/knn.cc.o"
  "CMakeFiles/dqmo_query.dir/knn.cc.o.d"
  "CMakeFiles/dqmo_query.dir/npdq.cc.o"
  "CMakeFiles/dqmo_query.dir/npdq.cc.o.d"
  "CMakeFiles/dqmo_query.dir/pdq.cc.o"
  "CMakeFiles/dqmo_query.dir/pdq.cc.o.d"
  "CMakeFiles/dqmo_query.dir/session.cc.o"
  "CMakeFiles/dqmo_query.dir/session.cc.o.d"
  "libdqmo_query.a"
  "libdqmo_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqmo_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
