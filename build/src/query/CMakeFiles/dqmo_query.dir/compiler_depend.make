# Empty compiler generated dependencies file for dqmo_query.
# This may be replaced when dependencies are built.
