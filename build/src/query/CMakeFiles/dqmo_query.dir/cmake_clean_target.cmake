file(REMOVE_RECURSE
  "libdqmo_query.a"
)
