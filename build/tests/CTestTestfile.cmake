# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/interval_test[1]_include.cmake")
include("/root/repo/build/tests/box_test[1]_include.cmake")
include("/root/repo/build/tests/segment_test[1]_include.cmake")
include("/root/repo/build/tests/timeset_test[1]_include.cmake")
include("/root/repo/build/tests/trapezoid_test[1]_include.cmake")
include("/root/repo/build/tests/trajectory_test[1]_include.cmake")
include("/root/repo/build/tests/motion_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/split_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/bulk_load_test[1]_include.cmake")
include("/root/repo/build/tests/pdq_test[1]_include.cmake")
include("/root/repo/build/tests/npdq_test[1]_include.cmake")
include("/root/repo/build/tests/knn_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_delete_test[1]_include.cmake")
include("/root/repo/build/tests/join_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/psi_test[1]_include.cmake")
include("/root/repo/build/tests/infinity_test[1]_include.cmake")
