file(REMOVE_RECURSE
  "CMakeFiles/rtree_delete_test.dir/rtree_delete_test.cc.o"
  "CMakeFiles/rtree_delete_test.dir/rtree_delete_test.cc.o.d"
  "rtree_delete_test"
  "rtree_delete_test.pdb"
  "rtree_delete_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtree_delete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
