file(REMOVE_RECURSE
  "CMakeFiles/timeset_test.dir/timeset_test.cc.o"
  "CMakeFiles/timeset_test.dir/timeset_test.cc.o.d"
  "timeset_test"
  "timeset_test.pdb"
  "timeset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
