# Empty dependencies file for timeset_test.
# This may be replaced when dependencies are built.
