# Empty dependencies file for pdq_test.
# This may be replaced when dependencies are built.
