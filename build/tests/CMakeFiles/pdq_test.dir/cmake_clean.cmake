file(REMOVE_RECURSE
  "CMakeFiles/pdq_test.dir/pdq_test.cc.o"
  "CMakeFiles/pdq_test.dir/pdq_test.cc.o.d"
  "pdq_test"
  "pdq_test.pdb"
  "pdq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
