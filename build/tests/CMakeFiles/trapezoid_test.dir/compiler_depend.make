# Empty compiler generated dependencies file for trapezoid_test.
# This may be replaced when dependencies are built.
