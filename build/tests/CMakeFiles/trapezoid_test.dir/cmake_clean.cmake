file(REMOVE_RECURSE
  "CMakeFiles/trapezoid_test.dir/trapezoid_test.cc.o"
  "CMakeFiles/trapezoid_test.dir/trapezoid_test.cc.o.d"
  "trapezoid_test"
  "trapezoid_test.pdb"
  "trapezoid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trapezoid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
