# Empty dependencies file for npdq_test.
# This may be replaced when dependencies are built.
