file(REMOVE_RECURSE
  "CMakeFiles/npdq_test.dir/npdq_test.cc.o"
  "CMakeFiles/npdq_test.dir/npdq_test.cc.o.d"
  "npdq_test"
  "npdq_test.pdb"
  "npdq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npdq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
