# Empty compiler generated dependencies file for motion_test.
# This may be replaced when dependencies are built.
