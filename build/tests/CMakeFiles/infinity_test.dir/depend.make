# Empty dependencies file for infinity_test.
# This may be replaced when dependencies are built.
