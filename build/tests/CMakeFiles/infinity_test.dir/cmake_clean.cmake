file(REMOVE_RECURSE
  "CMakeFiles/infinity_test.dir/infinity_test.cc.o"
  "CMakeFiles/infinity_test.dir/infinity_test.cc.o.d"
  "infinity_test"
  "infinity_test.pdb"
  "infinity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infinity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
