#!/usr/bin/env bash
# Runs the benchmark suite in JSON mode and collects the machine-readable
# results as BENCH_<name>.json in the repo root, for committing alongside
# code changes (the perf trajectory of the repo).
#
#   tools/bench.sh [build-dir]
#
# Uses ./build-bench (Release, the configuration the kernels are tuned
# for) unless a build directory is given; configures and builds it if
# needed. Scale is CI-size by default — set DQMO_FULL=1 / DQMO_OBJECTS /
# DQMO_TRAJECTORIES for bigger sweeps (bench/bench_common.h documents the
# knobs).
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build-bench}"
jobs="$(nproc)"

if [[ ! -f "${build}/CMakeCache.txt" ]]; then
  cmake -B "${build}" -S . -DCMAKE_BUILD_TYPE=Release
fi

# Every driver that emits a BENCH_<name>.json under --json. The figure
# sweeps shrink to CI size via the env below; abl_hot_path additionally
# runs its 5-configuration matrix.
json_benches=(
  fig06_pdq_io fig07_pdq_cpu fig08_pdq_size_io fig09_pdq_size_cpu
  fig10_npdq_io fig11_npdq_cpu fig12_npdq_size_io fig13_npdq_size_cpu
  abl_session abl_hot_path abl_overload abl_sharding abl_failover
  abl_disk
)
cmake --build "${build}" -j "${jobs}" -- "${json_benches[@]}"

export DQMO_CACHE_DIR="${DQMO_CACHE_DIR:-${build}/dqmo_cache}"
export DQMO_OBJECTS="${DQMO_OBJECTS:-1500}"
export DQMO_TRAJECTORIES="${DQMO_TRAJECTORIES:-8}"

for bench in "${json_benches[@]}"; do
  echo "==== ${bench} ===="
  "${build}/bench/${bench}" --json
done

echo "==== collected ===="
ls -l BENCH_*.json

# Latency-trajectory diff: every BENCH_*.json carries a MetricsSnapshot
# block; compare each histogram's p99 against the committed (HEAD) copy so
# a latency regression is visible in the run that introduces it.
# Informational — machine noise makes an automatic gate here too twitchy;
# the enforced overhead gate lives in tools/ci.sh.
echo "==== p99 vs committed (HEAD) ===="
for f in BENCH_*.json; do
  git show "HEAD:${f}" > "${f}.head" 2>/dev/null || { rm -f "${f}.head"; continue; }
  python3 - "$f" "${f}.head" <<'PYEOF'
import json, sys

def p99s(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError):
        return {}
    hists = doc.get("metrics", {}).get("histograms", {})
    return {name: h["p99"] for name, h in hists.items() if h.get("count")}

new, old = p99s(sys.argv[1]), p99s(sys.argv[2])
rows = [(n, old[n], v) for n, v in sorted(new.items())
        if n in old and old[n] > 0]
if rows:
    print(f"-- {sys.argv[1]}")
    for name, was, now in rows:
        delta = (now - was) / was * 100
        flag = "  <-- regressed >25%" if delta > 25 else ""
        print(f"  {name}: p99 {was} -> {now} ({delta:+.1f}%){flag}")
elif new:
    print(f"-- {sys.argv[1]}: no committed p99 baseline to diff against")
PYEOF
  rm -f "${f}.head"
done
