// dqmo_tool — command-line utility for DQMO index files.
//
//   dqmo_tool build <index.pgf> [--objects N] [--horizon T] [--seed S]
//                   [--bulk]
//       Generate a Sect. 5-style workload and build an index file.
//
//   dqmo_tool info <index.pgf>
//       Print tree metadata and level-by-level occupancy statistics.
//
//   dqmo_tool query <index.pgf> <x0> <x1> <y0> <y1> <t0> <t1>
//       Run a snapshot range query and print matches plus I/O cost.
//
//   dqmo_tool knn <index.pgf> <x> <y> <t> <k>
//       K nearest objects to (x, y) at time t.
//
//   dqmo_tool verify <index.pgf>
//       Run the structural invariant checker.
//
//   dqmo_tool scrub <index.pgf | shard-dir> [--repair] [--backend=B]
//       Check every page's CRC32C and report each corrupt page with its
//       file offset. Unlike a normal load (which stops at the first bad
//       page), scrub reads the whole file and lists all damage. On a
//       sharded directory a per-shard corrupt-page summary follows the
//       per-file reports. With --repair, a damaged .pgf is rebuilt from
//       its durable pair (checkpoint image + WAL replay; the image is
//       reconstructed purely from a full-history WAL when damaged beyond
//       loading) and re-verified. --backend=pread verifies page-at-a-time
//       through the streaming loader — constant memory, so images far
//       larger than RAM scrub fine; --backend=memory (the default)
//       materializes the file first, which also covers legacy v1 images
//       (their pages carry no on-disk checksums to stream-verify).
//
//   dqmo_tool walinfo <index.wal> [--backend=B]
//       Scan a write-ahead log: record count by type, LSN range, and the
//       torn-tail report (bytes dropped by a crash mid-append, if any).
//       --backend=pread streams one record at a time instead of
//       materializing the log.
//
//   dqmo_tool recover <index.pgf> <index.wal>
//       Run crash recovery: load the last checkpoint image (if any),
//       replay the WAL tail, report what was redone, and checkpoint the
//       recovered tree back to <index.pgf> (resetting the WAL).
//
//   scrub, walinfo, and recover also accept a sharded engine directory
//   (the <durable_dir>/shard-NNNN.pgf + shard-NNNN.wal layout written by
//   ShardedEngine): each shard is processed in id order and the exit code
//   is the OR of the per-shard results.
//
//   dqmo_tool stats <index.pgf> [--json] [--summary] [--watch[=SECS]]
//       Drive a short mixed workload (concurrent PDQ/NPDQ/kNN sessions
//       against a buffer pool + decoded-node cache, with a writer thread
//       inserting under the tree gate and logging to a scratch WAL) and
//       dump the process-wide metrics registry: Prometheus text by
//       default, JSON with --json, plus a quantile table with --summary.
//       --watch runs the workload in the background and renders metric
//       deltas every SECS seconds (default 2) while it runs.
//
//   dqmo_tool explain <index.pgf> [--kind=pdq|npdq|knn] [--frames N]
//                     [--seed S] [--shards N] [--k K] [--memory]
//       Run one traced query session against a sharded twin of the index
//       (durable, pread-backed, prefetching — unless --memory) and render
//       the slowest frame's merged cross-shard span tree: per-shard
//       subtrees with gate waits, redo drains, the k-way merge, and
//       worker-thread prefetch/hedge spans, followed by per-shard
//       nodes-visited / prune-effectiveness / prefetch attribution.
//
//   dqmo_tool blackbox <dump.dqbb> [--since=US] [--frame=TRACE]
//       Decode a flight-recorder blackbox dump: header, then every
//       thread's ring merged chronologically. --since=US keeps only the
//       last US microseconds before the snapshot; --frame=TRACE keeps
//       only events stamped with that trace id.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/recorder.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "harness/metrics_report.h"
#include "query/knn.h"
#include "rtree/bulk_load.h"
#include "rtree/node_cache.h"
#include "rtree/rtree.h"
#include "server/durability.h"
#include "server/executor.h"
#include "server/health.h"
#include "server/overload.h"
#include "server/router.h"
#include "server/scrubber.h"
#include "server/shard.h"
#include "storage/buffer_pool.h"
#include "storage/image_format.h"
#include "storage/page.h"
#include "storage/wal.h"
#include "workload/data_generator.h"

namespace dqmo {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Shard files `shard-*<ext>` under `dir`, in shard-id order — the layout
/// ShardedEngine's durable mode writes (`ext` includes the dot).
std::vector<std::string> ShardFilesIn(const std::string& dir,
                                      const std::string& ext) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (StartsWith(name, "shard-") && entry.path().extension() == ext) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Runs `per_file` over every shard file with the given extension under
/// `dir`, OR-ing exit codes. Fails when the directory holds no shards.
template <typename Fn>
int ForEachShardFile(const std::string& dir, const std::string& ext,
                     Fn per_file) {
  const std::vector<std::string> files = ShardFilesIn(dir, ext);
  if (files.empty()) {
    std::fprintf(stderr, "error: no shard-*%s files under %s\n",
                 ext.c_str(), dir.c_str());
    return 1;
  }
  int rc = 0;
  for (const std::string& f : files) {
    std::printf("== %s\n", f.c_str());
    rc |= per_file(f);
  }
  return rc;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dqmo_tool build <index.pgf> [--objects N] [--horizon T]"
               " [--seed S] [--bulk]\n"
               "  dqmo_tool info <index.pgf>\n"
               "  dqmo_tool query <index.pgf> x0 x1 y0 y1 t0 t1\n"
               "  dqmo_tool knn <index.pgf> x y t k\n"
               "  dqmo_tool verify <index.pgf>\n"
               "  dqmo_tool scrub <index.pgf | shard-dir> [--repair]"
               " [--backend=memory|pread]\n"
               "  dqmo_tool walinfo <index.wal | shard-dir>"
               " [--backend=memory|pread]\n"
               "  dqmo_tool recover <index.pgf> <index.wal>\n"
               "  dqmo_tool recover <shard-dir>\n"
               "  dqmo_tool stats <index.pgf> [--json] [--summary]"
               " [--watch[=secs]]\n"
               "  dqmo_tool explain <index.pgf> [--kind=pdq|npdq|knn]"
               " [--frames N] [--seed S] [--shards N] [--k K] [--memory]\n"
               "  dqmo_tool blackbox <dump.dqbb> [--since=us]"
               " [--frame=trace]\n");
  return 2;
}

Result<std::pair<std::unique_ptr<PageFile>, std::unique_ptr<RTree>>> OpenIndex(
    const std::string& path) {
  auto file = std::make_unique<PageFile>();
  DQMO_RETURN_IF_ERROR(file->LoadFrom(path));
  DQMO_ASSIGN_OR_RETURN(std::unique_ptr<RTree> tree, RTree::Open(file.get()));
  return std::make_pair(std::move(file), std::move(tree));
}

int CmdBuild(const std::string& path, int argc, char** argv) {
  DataGeneratorOptions options;
  bool bulk = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> double {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return std::atof(argv[++i]);
    };
    if (arg == "--objects") {
      options.num_objects = static_cast<int>(next_value());
    } else if (arg == "--horizon") {
      options.horizon = next_value();
    } else if (arg == "--seed") {
      options.seed = static_cast<uint64_t>(next_value());
    } else if (arg == "--bulk") {
      bulk = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  auto data = GenerateMotionData(options);
  if (!data.ok()) return Fail(data.status());
  std::printf("generated %zu motion segments (%d objects, horizon %g)\n",
              data->size(), options.num_objects, options.horizon);
  PageFile file;
  std::unique_ptr<RTree> tree;
  if (bulk) {
    BulkLoadOptions bulk_options;
    auto built = BulkLoad(&file, std::move(*data), bulk_options);
    if (!built.ok()) return Fail(built.status());
    tree = std::move(built).value();
  } else {
    auto created = RTree::Create(&file, RTree::Options());
    if (!created.ok()) return Fail(created.status());
    tree = std::move(created).value();
    for (const MotionSegment& m : *data) {
      const Status status = tree->Insert(m);
      if (!status.ok()) return Fail(status);
    }
  }
  if (Status s = tree->Flush(); !s.ok()) return Fail(s);
  if (Status s = file.SaveTo(path); !s.ok()) return Fail(s);
  std::printf("wrote %s: %llu segments, %zu nodes, height %d, %zu pages\n",
              path.c_str(),
              static_cast<unsigned long long>(tree->num_segments()),
              tree->num_nodes(), tree->height(), file.num_pages());
  return 0;
}

Status CollectLevelStats(const RTree& tree, PageId pid,
                         std::map<int, std::pair<size_t, size_t>>* levels) {
  QueryStats scratch;
  DQMO_ASSIGN_OR_RETURN(Node node, tree.LoadNode(pid, &scratch));
  auto& [count, entries] = (*levels)[node.level];
  ++count;
  entries += static_cast<size_t>(node.count());
  if (!node.is_leaf()) {
    for (const ChildEntry& e : node.children) {
      DQMO_RETURN_IF_ERROR(CollectLevelStats(tree, e.child, levels));
    }
  }
  return Status::OK();
}

int CmdInfo(const std::string& path) {
  auto opened = OpenIndex(path);
  if (!opened.ok()) return Fail(opened.status());
  auto& [file, tree] = *opened;
  std::printf("index      : %s\n", path.c_str());
  std::printf("pages      : %zu (%zu KiB)\n", file->num_pages(),
              file->num_pages() * kPageSize / 1024);
  std::printf("segments   : %llu\n",
              static_cast<unsigned long long>(tree->num_segments()));
  std::printf("nodes      : %zu\n", tree->num_nodes());
  std::printf("height     : %d\n", tree->height());
  std::printf("dims       : %d\n", tree->dims());
  std::printf("fanout     : %d internal / %d leaf\n",
              tree->internal_capacity(), tree->leaf_capacity());
  std::printf("max speed  : %.3f\n", tree->max_speed());
  std::printf("stamp      : %llu\n",
              static_cast<unsigned long long>(tree->stamp()));
  std::map<int, std::pair<size_t, size_t>> levels;
  if (Status s = CollectLevelStats(*tree, tree->root(), &levels); !s.ok()) {
    return Fail(s);
  }
  std::printf("occupancy  :\n");
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const auto& [level, stats] = *it;
    const int capacity =
        level == 0 ? tree->leaf_capacity() : tree->internal_capacity();
    std::printf("  level %d: %6zu nodes, avg fill %5.1f%%%s\n", level,
                stats.first,
                100.0 * static_cast<double>(stats.second) /
                    (static_cast<double>(stats.first) * capacity),
                level == 0 ? " (leaves)" : "");
  }
  return 0;
}

int CmdQuery(const std::string& path, char** argv) {
  auto opened = OpenIndex(path);
  if (!opened.ok()) return Fail(opened.status());
  auto& [file, tree] = *opened;
  (void)file;
  if (tree->dims() != 2) {
    std::fprintf(stderr, "query command supports 2-d indexes only\n");
    return 2;
  }
  const StBox q(
      Box(Interval(std::atof(argv[0]), std::atof(argv[1])),
          Interval(std::atof(argv[2]), std::atof(argv[3]))),
      Interval(std::atof(argv[4]), std::atof(argv[5])));
  QueryStats stats;
  auto result = tree->RangeSearch(q, &stats);
  if (!result.ok()) return Fail(result.status());
  for (const MotionSegment& m : *result) {
    std::printf("%s\n", m.ToString().c_str());
  }
  std::printf("-- %zu motions, %llu disk accesses (%llu leaf), "
              "%llu geometric tests\n",
              result->size(),
              static_cast<unsigned long long>(stats.node_reads),
              static_cast<unsigned long long>(stats.leaf_reads),
              static_cast<unsigned long long>(stats.distance_computations));
  return 0;
}

int CmdKnn(const std::string& path, char** argv) {
  auto opened = OpenIndex(path);
  if (!opened.ok()) return Fail(opened.status());
  auto& [file, tree] = *opened;
  (void)file;
  if (tree->dims() != 2) {
    std::fprintf(stderr, "knn command supports 2-d indexes only\n");
    return 2;
  }
  const Vec point(std::atof(argv[0]), std::atof(argv[1]));
  const double t = std::atof(argv[2]);
  const int k = std::atoi(argv[3]);
  QueryStats stats;
  auto result = KnnAt(*tree, point, t, k, &stats);
  if (!result.ok()) return Fail(result.status());
  for (const Neighbor& n : *result) {
    std::printf("d=%8.3f  %s\n", n.distance, n.motion.ToString().c_str());
  }
  std::printf("-- %zu neighbors, %llu disk accesses\n", result->size(),
              static_cast<unsigned long long>(stats.node_reads));
  return 0;
}

int CmdVerify(const std::string& path) {
  auto opened = OpenIndex(path);
  if (!opened.ok()) return Fail(opened.status());
  auto& [file, tree] = *opened;
  (void)file;
  const Status status = tree->CheckInvariants();
  if (!status.ok()) {
    std::printf("INVALID: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("OK: %llu segments across %zu nodes, all invariants hold\n",
              static_cast<unsigned long long>(tree->num_segments()),
              tree->num_nodes());
  return 0;
}

struct ScrubOutcome {
  size_t pages = 0;
  size_t corrupt = 0;
  bool repaired = false;
  int rc = 0;
};

ScrubOutcome ScrubOneFile(const std::string& path, bool repair) {
  ScrubOutcome out;
  // Forensic load: skip verification so damaged files still open, legacy
  // (v1) files included — their pages are sealed in memory on load, so the
  // sweep below verifies them too.
  PageFile file;
  PageFile::LoadOptions options;
  options.verify_checksums = false;
  if (Status s = file.LoadFrom(path, options); !s.ok()) {
    out.rc = Fail(s);
    return out;
  }
  std::vector<PageId> bad;
  out.corrupt = file.VerifyAllPages(&bad);
  out.pages = file.num_pages();
  for (const PageId id : bad) {
    const Status detail = file.VerifyPage(id);
    std::printf("CORRUPT page %u at file offset %llu: %s\n", id,
                static_cast<unsigned long long>(
                    24 + static_cast<uint64_t>(id) * kPageSize),
                detail.message().c_str());
  }
  std::printf("-- scrubbed %zu pages (%zu KiB%s): %zu corrupt\n",
              file.num_pages(), file.num_pages() * kPageSize / 1024,
              file.legacy_read_only() ? ", legacy v1" : "", out.corrupt);
  if (out.corrupt > 0 && repair && EndsWith(path, ".pgf")) {
    // Offline repair from the durable pair: reload the checkpoint image +
    // WAL tail (or rebuild the image from a full-history WAL) and verify
    // the healed file end to end.
    std::string wal = path;
    wal.replace(wal.size() - 4, 4, ".wal");
    auto rep = RepairDurableShard(path, wal, RTree::Options());
    if (!rep.ok()) {
      std::printf("UNREPAIRABLE: %s\n", rep.status().ToString().c_str());
      out.rc = 1;
      return out;
    }
    std::printf("-- repaired: %llu bad pages, %llu wal records replayed, "
                "%llu segments%s\n",
                static_cast<unsigned long long>(rep->pages_bad),
                static_cast<unsigned long long>(rep->replayed),
                static_cast<unsigned long long>(rep->segments),
                rep->image_rebuilt ? ", image rebuilt from wal" : "");
    PageFile healed;
    if (Status s = healed.LoadFrom(path); !s.ok()) {
      out.rc = Fail(s);
      return out;
    }
    if (healed.VerifyAllPages(nullptr) != 0) {
      std::printf("UNREPAIRABLE: damage persists after repair\n");
      out.rc = 1;
      return out;
    }
    out.repaired = true;
    return out;
  }
  out.rc = out.corrupt == 0 ? 0 : 1;
  return out;
}

/// The pread-backend scrub: pages stream through the shared image loader
/// one at a time, so the verify is O(1) memory regardless of image size —
/// exactly the loader DiskPageFile::Open runs, aimed at durable shard
/// images too large to materialize. Repair (which inherently rebuilds the
/// image in memory) falls back to the materializing path.
ScrubOutcome ScrubOneFileStreaming(const std::string& path, bool repair) {
  ScrubOutcome out;
  uint32_t version = kPgfVersion;
  StreamPgfOptions options;
  // The sink verifies each page itself so every corrupt page is reported
  // with its offset (the built-in verify would abort at the first or only
  // count them).
  options.verify_checksums = false;
  options.on_header = [&version](const PgfHeader& h) {
    version = h.version;
    return Status::OK();
  };
  auto streamed = StreamPgfPages(
      path, options, [&](uint64_t id, const uint8_t* page) {
        if (version != kPgfVersionLegacy && !PageChecksumOk(page)) {
          ++out.corrupt;
          std::printf(
              "CORRUPT page %llu at file offset %llu: checksum mismatch "
              "(stored %08x, computed %08x)\n",
              static_cast<unsigned long long>(id),
              static_cast<unsigned long long>(PgfDataOffset(version) +
                                              id * kPageSize),
              StoredPageChecksum(page), ComputePageChecksum(page));
        }
        return Status::OK();
      });
  if (!streamed.ok()) {
    out.rc = Fail(streamed.status());
    return out;
  }
  out.pages = streamed->pages_streamed;
  std::printf("-- scrubbed %zu pages (%zu KiB%s, streamed): %zu corrupt\n",
              out.pages, out.pages * kPageSize / 1024,
              version == kPgfVersionLegacy
                  ? ", legacy v1 — no on-disk checksums to verify"
                  : "",
              out.corrupt);
  if (out.corrupt > 0 && repair && EndsWith(path, ".pgf")) {
    return ScrubOneFile(path, repair);
  }
  out.rc = out.corrupt == 0 ? 0 : 1;
  return out;
}

int CmdScrub(const std::string& path, bool repair, bool stream) {
  auto scrub_one = [repair, stream](const std::string& f) {
    return stream ? ScrubOneFileStreaming(f, repair) : ScrubOneFile(f, repair);
  };
  if (!std::filesystem::is_directory(path)) {
    return scrub_one(path).rc;
  }
  // Sharded layout: scrub every shard and summarize per-shard damage.
  const std::vector<std::string> files = ShardFilesIn(path, ".pgf");
  if (files.empty()) {
    std::fprintf(stderr, "error: no shard-*.pgf files under %s\n",
                 path.c_str());
    return 1;
  }
  int rc = 0;
  std::vector<ScrubOutcome> outcomes;
  for (const std::string& f : files) {
    std::printf("== %s\n", f.c_str());
    outcomes.push_back(scrub_one(f));
    rc |= outcomes.back().rc;
  }
  std::printf("-- per-shard corrupt pages:\n");
  for (size_t i = 0; i < files.size(); ++i) {
    const ScrubOutcome& out = outcomes[i];
    std::printf("   %s: %zu/%zu%s\n",
                std::filesystem::path(files[i]).filename().string().c_str(),
                out.corrupt, out.pages,
                out.repaired ? " (repaired)"
                             : (out.corrupt > 0 ? " (damaged)" : ""));
  }
  return rc;
}

int CmdWalInfo(const std::string& path) {
  auto scan = ScanWal(path);
  if (!scan.ok()) return Fail(scan.status());
  uint64_t inserts = 0;
  uint64_t checkpoints = 0;
  uint64_t last_ckpt_lsn = 0;
  uint64_t last_ckpt_segments = 0;
  for (const WalRecord& rec : scan->records) {
    if (rec.type == WalRecordType::kInsert) {
      ++inserts;
    } else {
      ++checkpoints;
      last_ckpt_lsn = rec.checkpoint_lsn;
      last_ckpt_segments = rec.checkpoint_segments;
    }
  }
  std::printf("wal        : %s\n", path.c_str());
  std::printf("records    : %zu (%llu inserts, %llu checkpoint markers)\n",
              scan->records.size(),
              static_cast<unsigned long long>(inserts),
              static_cast<unsigned long long>(checkpoints));
  if (!scan->records.empty()) {
    std::printf("lsn range  : %llu .. %llu\n",
                static_cast<unsigned long long>(scan->records.front().lsn),
                static_cast<unsigned long long>(scan->last_lsn));
  }
  if (checkpoints > 0) {
    std::printf("last ckpt  : lsn %llu, %llu segments\n",
                static_cast<unsigned long long>(last_ckpt_lsn),
                static_cast<unsigned long long>(last_ckpt_segments));
  }
  std::printf("good bytes : %llu\n",
              static_cast<unsigned long long>(scan->good_bytes));
  if (scan->torn_tail) {
    std::printf("torn tail  : %llu trailing bytes damaged (crash "
                "mid-append; recovery truncates them)\n",
                static_cast<unsigned long long>(scan->torn_bytes));
  } else {
    std::printf("torn tail  : none\n");
  }
  return 0;
}

/// The pread-backend walinfo: same report as CmdWalInfo, but the scan
/// streams one record at a time and keeps only counters — a full-history
/// log larger than RAM stats fine.
int CmdWalInfoStreaming(const std::string& path) {
  auto stats = ScanWalStreaming(path);
  if (!stats.ok()) return Fail(stats.status());
  std::printf("wal        : %s (streamed)\n", path.c_str());
  std::printf("records    : %llu (%llu inserts, %llu checkpoint markers)\n",
              static_cast<unsigned long long>(stats->records),
              static_cast<unsigned long long>(stats->inserts),
              static_cast<unsigned long long>(stats->checkpoints));
  if (stats->records > 0) {
    std::printf("lsn range  : %llu .. %llu\n",
                static_cast<unsigned long long>(stats->first_lsn),
                static_cast<unsigned long long>(stats->last_lsn));
  }
  if (stats->checkpoints > 0) {
    std::printf("last ckpt  : lsn %llu, %llu segments\n",
                static_cast<unsigned long long>(stats->last_ckpt_lsn),
                static_cast<unsigned long long>(stats->last_ckpt_segments));
  }
  std::printf("good bytes : %llu\n",
              static_cast<unsigned long long>(stats->good_bytes));
  if (stats->torn_tail) {
    std::printf("torn tail  : %llu trailing bytes damaged (crash "
                "mid-append; recovery truncates them)\n",
                static_cast<unsigned long long>(stats->torn_bytes));
  } else {
    std::printf("torn tail  : none\n");
  }
  return 0;
}

int CmdRecover(const std::string& pgf_path, const std::string& wal_path) {
  auto index = DurableIndex::Open(pgf_path, wal_path,
                                  DurableIndex::Options());
  if (!index.ok()) return Fail(index.status());
  const RecoveryReport& report = (*index)->report();
  std::printf("checkpoint : %s\n",
              report.checkpoint_loaded
                  ? StrFormat("loaded (applied lsn %llu)",
                              static_cast<unsigned long long>(
                                  report.checkpoint_lsn))
                        .c_str()
                  : "none (fresh tree)");
  std::printf("wal        : %llu records scanned, %llu replayed, "
              "%llu skipped\n",
              static_cast<unsigned long long>(report.wal_records_scanned),
              static_cast<unsigned long long>(report.replayed),
              static_cast<unsigned long long>(report.skipped));
  if (report.torn_tail) {
    std::printf("torn tail  : %llu bytes truncated\n",
                static_cast<unsigned long long>(report.torn_bytes_dropped));
  }
  RTree* tree = (*index)->tree();
  std::printf("recovered  : %llu segments, %zu nodes, height %d, "
              "lsn %llu\n",
              static_cast<unsigned long long>(tree->num_segments()),
              tree->num_nodes(), tree->height(),
              static_cast<unsigned long long>(report.recovered_lsn));
  if (Status s = tree->CheckInvariants(); !s.ok()) {
    std::printf("INVALID recovered tree: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = (*index)->Checkpoint(); !s.ok()) return Fail(s);
  std::printf("checkpointed recovered tree to %s (wal reset)\n",
              pgf_path.c_str());
  return 0;
}

int RunStatsWorkload(const std::string& path, PageFile* file_ptr,
                     RTree* tree);

int CmdStats(const std::string& path, int argc, char** argv) {
  bool json = false;
  bool summary = false;
  bool watch = false;
  uint64_t watch_ms = 2000;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--watch" || StartsWith(arg, "--watch=")) {
      watch = true;
      if (StartsWith(arg, "--watch=")) {
        const double secs = std::atof(arg.c_str() + 8);
        if (secs > 0) watch_ms = static_cast<uint64_t>(secs * 1000.0);
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (!MetricsEnabled()) {
    std::fprintf(stderr,
                 "metrics are disabled (DQMO_METRICS=off or compiled out); "
                 "nothing to report\n");
    return 1;
  }

  PageFile file;
  if (Status s = file.LoadFrom(path); !s.ok()) return Fail(s);
  auto opened = RTree::Open(&file);
  if (!opened.ok()) return Fail(opened.status());
  std::unique_ptr<RTree> tree = std::move(opened).value();
  if (tree->dims() != 2) {
    std::fprintf(stderr, "stats command supports 2-d indexes only\n");
    return 2;
  }

  auto workload = [&]() -> int {
    return RunStatsWorkload(path, &file, tree.get());
  };
  if (!watch) {
    if (const int rc = workload(); rc != 0) return rc;
  } else {
    // The workload runs in the background; the foreground renders metric
    // deltas at each tick so an operator sees which families are moving.
    std::atomic<int> wrc{-1};
    std::thread bg([&] { wrc.store(workload(), std::memory_order_release); });
    auto counter_values = [] {
      std::map<std::string, uint64_t> v;
      for (const MetricsRegistry::Row& row : MetricsRegistry::Global().Rows())
        v[row.name] = row.count;
      return v;
    };
    std::map<std::string, uint64_t> prev = counter_values();
    uint64_t tick = 0;
    while (wrc.load(std::memory_order_acquire) < 0) {
      // Sleep in slices so a finished workload ends the watch promptly.
      for (uint64_t slept = 0;
           slept < watch_ms && wrc.load(std::memory_order_acquire) < 0;
           slept += 50) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      std::map<std::string, uint64_t> cur = counter_values();
      std::printf("-- watch tick %llu (+%llums)\n",
                  static_cast<unsigned long long>(++tick),
                  static_cast<unsigned long long>(watch_ms));
      for (const auto& [name, value] : cur) {
        const auto it = prev.find(name);
        const uint64_t before = it == prev.end() ? 0 : it->second;
        if (value == before) continue;
        std::printf("   %-48s %+lld (now %llu)\n", name.c_str(),
                    static_cast<long long>(value) -
                        static_cast<long long>(before),
                    static_cast<unsigned long long>(value));
      }
      prev = std::move(cur);
    }
    bg.join();
    if (const int rc = wrc.load(); rc != 0) return rc;
  }

  if (json) {
    std::printf("%s\n", MetricsRegistry::Global().JsonText().c_str());
  } else {
    std::printf("%s", MetricsRegistry::Global().PrometheusText().c_str());
  }
  if (summary) {
    std::printf("\n%s", MetricsSummaryTable().c_str());
  }
  return 0;
}

/// Arms the tracer (slowest-frame tracking + sampling) for one scope so
/// the trace metric families register during the stats workload, then
/// restores the previous configuration.
struct TracerArmGuard {
  Tracer::Options saved = Tracer::Global().options();
  TracerArmGuard() {
    Tracer::Options o = saved;
    o.track_slowest = true;
    if (o.sample_every == 0) o.sample_every = 4;
    Tracer::Global().Configure(o);
  }
  ~TracerArmGuard() { Tracer::Global().Configure(saved); }
};

int RunStatsWorkload(const std::string& path, PageFile* file_ptr,
                     RTree* tree) {
  PageFile& file = *file_ptr;
  TracerArmGuard trace_arm;
  FlightRecorder::Record(FlightEventKind::kMark, -1, 1);
  // The workload mirrors a small production deployment: shared pool +
  // decoded-node cache, a writer thread inserting under the gate (logging
  // to a scratch WAL so sync latency is real), and concurrent sessions of
  // all three kinds. Every instrumented layer fires.
  BufferPool pool(&file, /*capacity_pages=*/512, /*num_shards=*/8);
  DecodedNodeCache cache(/*capacity_nodes=*/256, /*num_shards=*/8);
  tree->AttachNodeCache(&cache);
  const std::string wal_path = path + ".stats-wal";
  WalWriter wal;
  if (Status s = wal.Open(wal_path, file.mutable_stats()); !s.ok()) {
    return Fail(s);
  }
  tree->AttachWal(&wal);
  TreeGate gate(&file, &pool, &wal, &cache);

  DataGeneratorOptions gen;
  gen.num_objects = 40;
  gen.horizon = 20.0;
  gen.seed = 7;
  auto fresh = GenerateMotionData(gen);
  if (!fresh.ok()) return Fail(fresh.status());

  Status writer_status;
  std::thread writer([&] {
    constexpr size_t kBatch = 16;
    for (size_t at = 0; at < fresh->size(); at += kBatch) {
      auto guard = gate.LockExclusive();
      const size_t end = std::min(at + kBatch, fresh->size());
      for (size_t i = at; i < end; ++i) {
        if (Status s = tree->Insert((*fresh)[i]); !s.ok()) {
          writer_status = s;
          return;
        }
      }
    }
  });

  std::vector<SessionSpec> specs;
  for (int i = 0; i < 10; ++i) {
    SessionSpec spec;
    spec.kind = i % 3 == 0   ? SessionKind::kSession
                : i % 3 == 1 ? SessionKind::kNpdq
                             : SessionKind::kKnn;
    spec.seed = static_cast<uint64_t>(100 + i);
    spec.frames = 40;
    spec.priority = static_cast<SessionPriority>(i % 3);
    // Four sessions share client 9 against a quota of two — two of them
    // are refused at admission, so the rejection counter is nonzero. The
    // rest get a client each and run unimpeded.
    spec.client_id = i >= 6 ? 9 : static_cast<uint64_t>(i);
    if (i < 2) {
      // A starvation-level node budget: these sessions' frames finish
      // degraded, so the budget-exhausted counter is nonzero.
      spec.frame_node_budget = 1;
    }
    specs.push_back(spec);
  }
  // The overload families (admission, governor, budget) register on first
  // use; wire the whole resilience stack in so `stats` exposes them too.
  AdmissionOptions aopt;
  aopt.per_client_quota = 2;
  AdmissionController admission(aopt);
  OverloadGovernor governor;
  SessionScheduler::Options sched;
  sched.num_threads = 4;
  sched.reader = &pool;
  sched.gate = &gate;
  sched.pool = &pool;
  sched.admission = &admission;
  sched.governor = &governor;
  SessionScheduler scheduler(tree, sched);
  ExecutorReport report = scheduler.Run(specs);
  writer.join();
  std::remove(wal_path.c_str());
  if (!writer_status.ok()) return Fail(writer_status);
  if (!report.status.ok()) return Fail(report.status);
  if (Status s = gate.wal_status(); !s.ok()) return Fail(s);
  CheckNodeAccounting();

  // Failure-domain families: run a short quarantine -> park -> scrub ->
  // reinstate episode on a small sharded twin so the breaker, redo-queue,
  // and scrubber series are live in the dump, then summarize the breaker
  // plane the way an operator would read it. The twin is durable and
  // pread-backed so the disk and prefetch families register too — `stats`
  // is the one dump tools/ci.sh validates family coverage against.
  ShardedEngineOptions eopt;
  eopt.num_shards = 2;
  eopt.failure_domains = true;
  eopt.breaker.cooldown_frames = 0;
  eopt.breaker.probe_rate = 1.0;
  eopt.breaker.probe_successes_to_close = 2;
  eopt.durable_dir = path + ".stats-shards";
  eopt.io_backend = IoBackend::kPread;
  std::filesystem::create_directories(eopt.durable_dir);
  auto sharded = ShardedEngine::Create(eopt);
  if (!sharded.ok()) return Fail(sharded.status());
  if (Status s = (*sharded)->InsertBatch(*fresh); !s.ok()) return Fail(s);
  const MotionSegment extra(
      9001, StSegment(Vec(40, 40), Vec(41, 41), Interval(2.0, 3.0)));
  const int sick = (*sharded)->map().ShardOf(extra);
  (*sharded)->breaker(sick)->ForceOpen("stats workload");
  if (Status s = (*sharded)->Insert(extra); !s.ok()) return Fail(s);
  SessionSpec qspec;
  qspec.kind = SessionKind::kNpdq;
  qspec.seed = 5;
  qspec.frames = 6;
  ShardRouter::Options sropt;
  sropt.spatial_prune = false;
  const ShardRouter srouter(sharded->get(), sropt);
  (void)srouter.RunOne(qspec);  // Quarantined frames, attributed skips.
  ShardScrubber(sharded->get(), ScrubOptions()).ScrubPass();
  (void)srouter.RunOne(qspec);  // Half-open probes close the breaker.
  std::string breaker_line;
  for (int s = 0; s < (*sharded)->num_shards(); ++s) {
    const CircuitBreaker* b = (*sharded)->breaker(s);
    breaker_line += StrFormat(
        "%sshard %d %s (opened %llux)", s == 0 ? "" : ", ", s,
        BreakerStateName(b->state()),
        static_cast<unsigned long long>(b->open_events()));
  }
  std::fprintf(stderr, "# failure domains: %s\n", breaker_line.c_str());
  (*sharded).reset();
  std::error_code ec;
  std::filesystem::remove_all(eopt.durable_dir, ec);

  std::fprintf(stderr,
               "# workload: %zu sessions, %llu objects delivered, "
               "%zu segments inserted, %.3fs\n",
               report.sessions.size(),
               static_cast<unsigned long long>(report.total_objects),
               fresh->size(), report.wall_seconds);
  return 0;
}

int CmdExplain(const std::string& path, int argc, char** argv) {
  SessionKind kind = SessionKind::kSession;
  int frames = 24;
  uint64_t seed = 7;
  int shards = 4;
  int k = 8;
  bool memory = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> double {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return std::atof(argv[++i]);
    };
    if (arg == "--kind=pdq") {
      kind = SessionKind::kSession;
    } else if (arg == "--kind=npdq") {
      kind = SessionKind::kNpdq;
    } else if (arg == "--kind=knn") {
      kind = SessionKind::kKnn;
    } else if (arg == "--frames") {
      frames = static_cast<int>(next_value());
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(next_value());
    } else if (arg == "--shards") {
      shards = static_cast<int>(next_value());
    } else if (arg == "--k") {
      k = static_cast<int>(next_value());
    } else if (arg == "--memory") {
      memory = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (!MetricsEnabled()) {
    std::fprintf(stderr,
                 "metrics are disabled (DQMO_METRICS=off or compiled out); "
                 "tracing needs them\n");
    return 1;
  }

  auto opened = OpenIndex(path);
  if (!opened.ok()) return Fail(opened.status());
  auto& [file, tree] = *opened;
  (void)file;
  if (tree->dims() != 2) {
    std::fprintf(stderr, "explain command supports 2-d indexes only\n");
    return 2;
  }
  // Pull every segment out of the index; the traced run replays them on a
  // sharded twin so the span tree shows real cross-shard structure.
  const StBox everything(
      Box(Interval(-1e30, 1e30), Interval(-1e30, 1e30)), Interval(-1e30, 1e30));
  QueryStats scan_stats;
  auto segments = tree->RangeSearch(everything, &scan_stats);
  if (!segments.ok()) return Fail(segments.status());
  if (segments->empty()) {
    std::fprintf(stderr, "index holds no segments; nothing to explain\n");
    return 1;
  }

  ShardedEngineOptions eopt = ShardedEngineOptions::FromEnv();
  eopt.num_shards = shards;
  std::string scratch_dir;
  if (!memory) {
    scratch_dir = StrFormat("%s.explain-%d", path.c_str(),
                            static_cast<int>(::getpid()));
    std::filesystem::create_directories(scratch_dir);
    eopt.durable_dir = scratch_dir;
    if (eopt.io_backend == IoBackend::kMemory) {
      eopt.io_backend = IoBackend::kPread;
    }
  }
  auto engine = ShardedEngine::Create(eopt);
  if (!engine.ok()) return Fail(engine.status());
  auto cleanup = [&] {
    (*engine).reset();
    if (!scratch_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(scratch_dir, ec);
    }
  };
  if (Status s = (*engine)->InsertBatch(*segments); !s.ok()) {
    cleanup();
    return Fail(s);
  }

  // Arm every frame and keep the slowest — the one worth explaining.
  Tracer& tracer = Tracer::Global();
  const Tracer::Options saved = tracer.options();
  Tracer::Options topt = saved;
  topt.track_slowest = true;
  tracer.Configure(topt);
  tracer.ResetSlowestFrame();

  SessionSpec spec;
  spec.kind = kind;
  spec.seed = seed;
  spec.frames = frames;
  spec.k = k;
  const ShardRouter router(engine->get(), ShardRouter::Options());
  ShardedSessionResult res = router.RunOne(spec);
  const FrameTrace slowest = tracer.SlowestFrame();
  tracer.Configure(saved);
  if (!res.result.status.ok()) {
    cleanup();
    return Fail(res.result.status);
  }

  std::printf("session  : kind=%s frames=%d seed=%llu shards=%d backend=%s\n",
              kind == SessionKind::kSession ? "pdq"
              : kind == SessionKind::kNpdq  ? "npdq"
                                            : "knn",
              frames, static_cast<unsigned long long>(seed), shards,
              memory ? "memory" : "pread");
  std::printf("checksum : %016llx (%llu objects delivered)\n",
              static_cast<unsigned long long>(res.result.checksum),
              static_cast<unsigned long long>(res.result.objects_delivered));
  if (slowest.spans.empty()) {
    std::printf("no frame was captured (session ran zero frames?)\n");
    cleanup();
    return 1;
  }
  std::printf("\nslowest frame (merged cross-shard span tree):\n%s\n",
              slowest.ToString().c_str());

  std::printf("per-shard attribution (whole session):\n");
  for (size_t s = 0; s < res.shard_stats.size(); ++s) {
    const QueryStats& st = res.shard_stats[s];
    const uint64_t considered = st.node_reads + st.nodes_discarded;
    std::printf(
        "  shard %zu: %llu nodes visited (%llu leaves), %llu pruned "
        "(%.1f%% prune), %llu geometric tests, %llu pages skipped\n",
        s, static_cast<unsigned long long>(st.node_reads),
        static_cast<unsigned long long>(st.leaf_reads),
        static_cast<unsigned long long>(st.nodes_discarded),
        considered == 0 ? 0.0
                        : 100.0 * static_cast<double>(st.nodes_discarded) /
                              static_cast<double>(considered),
        static_cast<unsigned long long>(st.distance_computations),
        static_cast<unsigned long long>(st.pages_skipped));
  }

  // Worker-thread attribution inside the slowest frame: how much of the
  // speculation landed usefully, and what the hedged reads cost.
  uint64_t prefetch_spans = 0, prefetch_ns = 0;
  uint64_t waste_spans = 0, waste_ns = 0;
  uint64_t hedge_spans = 0, hedge_ns = 0;
  for (const SpanRecord& span : slowest.spans) {
    if (span.kind == SpanKind::kPrefetchRead) {
      ++prefetch_spans;
      prefetch_ns += span.duration_ns;
    } else if (span.kind == SpanKind::kPrefetchWaste) {
      ++waste_spans;
      waste_ns += span.duration_ns;
    } else if (span.kind == SpanKind::kHedgeProbe) {
      ++hedge_spans;
      hedge_ns += span.duration_ns;
    }
  }
  std::printf(
      "prefetch attribution (slowest frame): %llu consumed (%llu us), "
      "%llu wasted (%llu us), %llu hedge probes (%llu us), "
      "%llu worker spans total\n",
      static_cast<unsigned long long>(prefetch_spans),
      static_cast<unsigned long long>(prefetch_ns / 1000),
      static_cast<unsigned long long>(waste_spans),
      static_cast<unsigned long long>(waste_ns / 1000),
      static_cast<unsigned long long>(hedge_spans),
      static_cast<unsigned long long>(hedge_ns / 1000),
      static_cast<unsigned long long>(slowest.remote_spans));
  cleanup();
  return 0;
}

int CmdBlackbox(const std::string& path, int argc, char** argv) {
  uint64_t since_us = 0;   // 0: no time filter.
  uint64_t frame_id = 0;   // 0: no trace filter.
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--since=")) {
      since_us = static_cast<uint64_t>(std::atoll(arg.c_str() + 8));
    } else if (StartsWith(arg, "--frame=")) {
      frame_id = static_cast<uint64_t>(std::atoll(arg.c_str() + 8));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  BlackboxDump dump;
  if (Status s = FlightRecorder::ReadBlackbox(path, &dump); !s.ok()) {
    return Fail(s);
  }
  char when[64] = "?";
  const time_t secs = static_cast<time_t>(dump.wall_unix_us / 1000000);
  struct tm tm_buf;
  if (gmtime_r(&secs, &tm_buf) != nullptr) {
    std::strftime(when, sizeof(when), "%Y-%m-%dT%H:%M:%SZ", &tm_buf);
  }
  std::printf("blackbox : %s\n", path.c_str());
  std::printf("version  : %u\n", dump.version);
  std::printf("reason   : %s\n", dump.reason.c_str());
  std::printf("captured : %s (unix %llu us)\n", when,
              static_cast<unsigned long long>(dump.wall_unix_us));
  std::printf("threads  : %zu\n", dump.threads.size());
  for (const BlackboxDump::ThreadSection& t : dump.threads) {
    std::printf("  thread %u: %zu buffered of %llu recorded\n",
                t.thread_index, t.events.size(),
                static_cast<unsigned long long>(t.recorded));
  }

  struct Row {
    uint32_t thread;
    FlightEvent ev;
  };
  std::vector<Row> rows;
  for (const BlackboxDump::ThreadSection& t : dump.threads) {
    for (const FlightEvent& ev : t.events) {
      if (since_us != 0 &&
          ev.ts_ns + since_us * 1000 < dump.snapshot_ns) {
        continue;
      }
      if (frame_id != 0 &&
          ev.trace_low != static_cast<uint32_t>(frame_id)) {
        continue;
      }
      rows.push_back(Row{t.thread_index, ev});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.ev.ts_ns < b.ev.ts_ns;
  });
  std::printf("events   : %zu%s\n", rows.size(),
              since_us != 0 || frame_id != 0 ? " (filtered)" : "");
  for (const Row& row : rows) {
    // Offsets are relative to the snapshot: "-512.3ms" = half a second
    // before the dump fired.
    const double offset_ms =
        (static_cast<double>(row.ev.ts_ns) -
         static_cast<double>(dump.snapshot_ns)) /
        1e6;
    std::printf("  %+12.3fms  t%-3u %-16s shard=%-3d detail=%-12llu%s\n",
                offset_ms, row.thread, FlightEventKindName(row.ev.kind),
                row.ev.shard,
                static_cast<unsigned long long>(row.ev.detail),
                row.ev.trace_low != 0
                    ? StrFormat(" trace=%u", row.ev.trace_low).c_str()
                    : "");
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const std::string path = argv[2];
  if (command == "build") return CmdBuild(path, argc - 3, argv + 3);
  if (command == "info") return CmdInfo(path);
  if (command == "query") {
    if (argc != 9) return Usage();
    return CmdQuery(path, argv + 3);
  }
  if (command == "knn") {
    if (argc != 7) return Usage();
    return CmdKnn(path, argv + 3);
  }
  if (command == "verify") return CmdVerify(path);
  if (command == "scrub") {
    bool repair = false;
    bool stream = false;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--repair") {
        repair = true;
      } else if (arg == "--backend=pread") {
        stream = true;
      } else if (arg == "--backend=memory") {
        stream = false;
      } else {
        return Usage();
      }
    }
    return CmdScrub(path, repair, stream);
  }
  if (command == "walinfo") {
    bool stream = false;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--backend=pread") {
        stream = true;
      } else if (arg == "--backend=memory") {
        stream = false;
      } else {
        return Usage();
      }
    }
    auto walinfo_one = [stream](const std::string& f) {
      return stream ? CmdWalInfoStreaming(f) : CmdWalInfo(f);
    };
    if (std::filesystem::is_directory(path)) {
      return ForEachShardFile(path, ".wal", walinfo_one);
    }
    return walinfo_one(path);
  }
  if (command == "recover") {
    if (argc == 3 && std::filesystem::is_directory(path)) {
      // Sharded layout: recover every shard-NNNN.pgf with its paired WAL.
      return ForEachShardFile(path, ".pgf", [](const std::string& pgf) {
        std::string wal = pgf;
        wal.replace(wal.size() - 4, 4, ".wal");
        return CmdRecover(pgf, wal);
      });
    }
    if (argc != 4) return Usage();
    return CmdRecover(path, argv[3]);
  }
  if (command == "stats") return CmdStats(path, argc - 3, argv + 3);
  if (command == "explain") return CmdExplain(path, argc - 3, argv + 3);
  if (command == "blackbox") return CmdBlackbox(path, argc - 3, argv + 3);
  return Usage();
}

}  // namespace
}  // namespace dqmo

int main(int argc, char** argv) { return dqmo::Run(argc, argv); }
