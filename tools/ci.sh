#!/usr/bin/env bash
# Tier-1 verification, run twice: a Release-flavored build (the exact
# configuration the benchmarks use) and an ASan/UBSan build that shakes out
# memory and UB bugs the optimizer can hide. Both must pass cleanly.
#
#   tools/ci.sh [jobs]
#
# Build trees live in build-ci/{release,sanitize}, leaving the developer's
# ./build untouched.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_pass() {
  local name="$1"
  shift
  local dir="build-ci/${name}"
  echo "==== [${name}] configure ===="
  cmake -B "${dir}" -S . -DDQMO_WERROR=ON "$@"
  echo "==== [${name}] build ===="
  cmake --build "${dir}" -j "${jobs}"
  echo "==== [${name}] test ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_pass release -DCMAKE_BUILD_TYPE=Release
run_pass sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDQMO_SANITIZE=ON

echo "==== ci.sh: both passes green ===="
