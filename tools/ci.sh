#!/usr/bin/env bash
# Tier-1 verification, run three times: a Release-flavored build (the exact
# configuration the benchmarks use), an ASan/UBSan build that shakes out
# memory and UB bugs the optimizer can hide, and a TSan build that runs the
# concurrency test layer (executor + oracle sweep) against the
# multi-session query engine — including the durable-writes executor test,
# whose WAL appends happen under the TreeGate write guard. A
# crash-recovery stage re-runs the fork-based kill tests (every registered
# CrashPoint) explicitly under the default build and once under ASan, then
# smoke-runs the CI-size durability ablation. A final hot-path stage gates
# the A15 ablation: the zero-copy query hot path must beat the legacy AoS
# path by >= 2x ns/entry at -O3, with and without SIMD. All must pass
# cleanly.
#
#   tools/ci.sh [jobs]
#
# Build trees live in build-ci/{release,sanitize,tsan}, leaving the
# developer's ./build untouched.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_pass() {
  local name="$1"
  shift
  local dir="build-ci/${name}"
  echo "==== [${name}] configure ===="
  cmake -B "${dir}" -S . -DDQMO_WERROR=ON "$@"
  echo "==== [${name}] build ===="
  cmake --build "${dir}" -j "${jobs}"
  echo "==== [${name}] test ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_pass release -DCMAKE_BUILD_TYPE=Release
run_pass sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDQMO_SANITIZE=address

# TSan pass: build everything, but run only the tests that exercise real
# concurrency plus one differential-oracle sweep seed — TSan's 5-15x
# slowdown makes the full suite impractical in this stage, and the
# single-threaded tests gain nothing from it.
tsan_dir="build-ci/tsan"
echo "==== [tsan] configure ===="
cmake -B "${tsan_dir}" -S . -DDQMO_WERROR=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDQMO_SANITIZE=thread
echo "==== [tsan] build ===="
cmake --build "${tsan_dir}" -j "${jobs}"
echo "==== [tsan] executor tests ===="
"${tsan_dir}/tests/executor_test"
"${tsan_dir}/tests/determinism_test"
echo "==== [tsan] hot-path kernels + decoded-node cache ===="
"${tsan_dir}/tests/kernels_test"
echo "==== [tsan] oracle sweep (seed 1) ===="
"${tsan_dir}/tests/oracle_test" --gtest_filter='*seed1'

# Crash-recovery stage: the fork-based kill tests kill a child at every
# registered CrashPoint and assert recovery matches the oracle on the
# durable prefix. Run explicitly (they are in ctest too, but a regression
# here must be unmissable): once against the default build, once under
# ASan — fork is safe in both, unlike TSan. Then the CI-size durability
# ablation proves the WAL/recovery path works end-to-end at bench scale.
echo "==== [crash-recovery] default-build kill tests ===="
"build-ci/release/tests/recovery_test"
"build-ci/release/tests/wal_test"
echo "==== [crash-recovery] asan kill tests ===="
"build-ci/sanitize/tests/recovery_test"
echo "==== [crash-recovery] CI-size recovery ablation ===="
DQMO_RECOVERY_INSERTS=1000 "build-ci/release/bench/abl_recovery"

# Hot-path performance gate: the A15 ablation at CI size, against the
# Release (-O3) build the kernels are tuned for. DQMO_CHECK_SPEEDUP=1 makes
# the binary exit non-zero unless the full hot path (decoded-node cache +
# SoA kernels + SIMD dispatch) beats the legacy AoS path by >= 2x ns/entry;
# the binary itself also asserts bit-identical checksums across every
# configuration. A second run with DQMO_DISABLE_SIMD=1 proves the scalar
# fallback both stays correct and still clears the gate on cache + SoA
# alone.
hot_path_env=(DQMO_OBJECTS=1500 DQMO_TRAJECTORIES=8 DQMO_HOT_PATH_FRAMES=40
              DQMO_CACHE_DIR=build-ci/dqmo_cache DQMO_CHECK_SPEEDUP=1)
echo "==== [hot-path] A15 ablation gate (auto SIMD) ===="
env "${hot_path_env[@]}" "build-ci/release/bench/abl_hot_path"
echo "==== [hot-path] A15 ablation gate (DQMO_DISABLE_SIMD=1 fallback) ===="
env "${hot_path_env[@]}" DQMO_DISABLE_SIMD=1 \
  "build-ci/release/bench/abl_hot_path"

echo "==== ci.sh: all passes green ===="
