#!/usr/bin/env bash
# Tier-1 verification, run three times: a Release-flavored build (the exact
# configuration the benchmarks use), an ASan/UBSan build that shakes out
# memory and UB bugs the optimizer can hide, and a TSan build that runs the
# concurrency test layer (executor + oracle sweep) against the
# multi-session query engine — including the durable-writes executor test,
# whose WAL appends happen under the TreeGate write guard. A
# crash-recovery stage re-runs the fork-based kill tests (every registered
# CrashPoint) explicitly under the default build and once under ASan, then
# smoke-runs the CI-size durability ablation. A final hot-path stage gates
# the A15 ablation: the zero-copy query hot path must beat the legacy AoS
# path by >= 2x ns/entry at -O3, with and without SIMD. All must pass
# cleanly.
#
#   tools/ci.sh [jobs]
#
# Build trees live in build-ci/{release,sanitize,tsan}, leaving the
# developer's ./build untouched.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_pass() {
  local name="$1"
  shift
  local dir="build-ci/${name}"
  echo "==== [${name}] configure ===="
  cmake -B "${dir}" -S . -DDQMO_WERROR=ON "$@"
  echo "==== [${name}] build ===="
  cmake --build "${dir}" -j "${jobs}"
  echo "==== [${name}] test ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_pass release -DCMAKE_BUILD_TYPE=Release
run_pass sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDQMO_SANITIZE=address

# TSan pass: build everything, but run only the tests that exercise real
# concurrency plus one differential-oracle sweep seed — TSan's 5-15x
# slowdown makes the full suite impractical in this stage, and the
# single-threaded tests gain nothing from it.
tsan_dir="build-ci/tsan"
echo "==== [tsan] configure ===="
cmake -B "${tsan_dir}" -S . -DDQMO_WERROR=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDQMO_SANITIZE=thread
echo "==== [tsan] build ===="
cmake --build "${tsan_dir}" -j "${jobs}"
echo "==== [tsan] executor tests ===="
"${tsan_dir}/tests/executor_test"
"${tsan_dir}/tests/determinism_test"
echo "==== [tsan] hot-path kernels + decoded-node cache ===="
"${tsan_dir}/tests/kernels_test"
echo "==== [tsan] metrics histogram hammer ===="
"${tsan_dir}/tests/metrics_test"
echo "==== [tsan] oracle sweep (seed 1) ===="
"${tsan_dir}/tests/oracle_test" --gtest_filter='*seed1'
echo "==== [tsan] overload: cancellation/deadline hammer + chaos sweep ===="
"${tsan_dir}/tests/overload_test"
echo "==== [tsan] tracer remote-attribution + flight-recorder ring hammer ===="
"${tsan_dir}/tests/trace_test"
"${tsan_dir}/tests/recorder_test"

# Crash-recovery stage: the fork-based kill tests kill a child at every
# registered CrashPoint and assert recovery matches the oracle on the
# durable prefix. Run explicitly (they are in ctest too, but a regression
# here must be unmissable): once against the default build, once under
# ASan — fork is safe in both, unlike TSan. Then the CI-size durability
# ablation proves the WAL/recovery path works end-to-end at bench scale.
echo "==== [crash-recovery] default-build kill tests ===="
"build-ci/release/tests/recovery_test"
"build-ci/release/tests/wal_test"
echo "==== [crash-recovery] asan kill tests ===="
"build-ci/sanitize/tests/recovery_test"
echo "==== [crash-recovery] CI-size recovery ablation ===="
DQMO_RECOVERY_INSERTS=1000 "build-ci/release/bench/abl_recovery"

# Hot-path performance gate: the A15 ablation at CI size, against the
# Release (-O3) build the kernels are tuned for. DQMO_CHECK_SPEEDUP=1 makes
# the binary exit non-zero unless the full hot path (decoded-node cache +
# SoA kernels + SIMD dispatch) beats the legacy AoS path by >= 2x ns/entry;
# the binary itself also asserts bit-identical checksums across every
# configuration. A second run with DQMO_DISABLE_SIMD=1 proves the scalar
# fallback both stays correct and still clears the gate on cache + SoA
# alone.
hot_path_env=(DQMO_OBJECTS=1500 DQMO_TRAJECTORIES=8 DQMO_HOT_PATH_FRAMES=40
              DQMO_CACHE_DIR=build-ci/dqmo_cache DQMO_CHECK_SPEEDUP=1)
echo "==== [hot-path] A15 ablation gate (auto SIMD) ===="
env "${hot_path_env[@]}" "build-ci/release/bench/abl_hot_path"
echo "==== [hot-path] A15 ablation gate (DQMO_DISABLE_SIMD=1 fallback) ===="
env "${hot_path_env[@]}" DQMO_DISABLE_SIMD=1 \
  "build-ci/release/bench/abl_hot_path"

# Overload-resilience gate: the A16 ablation with its invariants armed.
# DQMO_CHECK_OVERLOAD=1 makes the binary abort unless the resilient stack
# sheds before it falls over — at 1x load zero sheds and zero rejections;
# under the 4x burst with injected slow reads the queue depth stays at its
# bound, p99 submit-to-start wait beats the unbounded baseline, shed and
# reject counters are nonzero, and the protected-class (interactive +
# normal) goodput holds at >= 50% of the 1x yardstick.
echo "==== [overload] A16 overload-resilience gate ===="
env DQMO_OBJECTS=2000 DQMO_CACHE_DIR=build-ci/dqmo_cache \
  DQMO_CHECK_OVERLOAD=1 "build-ci/release/bench/abl_overload"

# Sharding stage: the cross-shard differential layer (merge exactness,
# per-shard fault attribution, durable shard layout) under ASan, the
# router/writer hammer under TSan, and the A17 ablation at CI scale — the
# binary itself aborts unless every shard count's merged per-session
# checksums are byte-identical, so this doubles as the N-shard vs 1-shard
# equality gate.
echo "==== [sharding] shard_test (asan) ===="
"build-ci/sanitize/tests/shard_test"
echo "==== [sharding] router + per-shard writer hammer (tsan) ===="
"build-ci/tsan/tests/shard_test" --gtest_filter='ShardConcurrencyTest.*'
echo "==== [sharding] A17 ablation merged-checksum equality gate ===="
env DQMO_OBJECTS=60000 "build-ci/release/bench/abl_sharding"

# Chaos stage: the shard failure-domain layer under its seeded chaos
# harness — shard death, corruption bursts, slow-I/O storms, and
# crash-restart mid-repair at every scrub crash point, each program run
# differentially against a clean twin (ASan); the frames/inserts/faults/
# scrubber race under TSan; then the A18 failover ablation with its gate
# armed — with 1 of 16 shards killed the healthy-shard p99 must hold
# within 20% of the healthy baseline, and after online scrub + probation
# the same sweep must be byte-identical to it.
echo "==== [chaos] chaos harness (asan) ===="
"build-ci/sanitize/tests/chaos_test"
echo "==== [chaos] scrubber/router/writer hammer (tsan) ===="
"build-ci/tsan/tests/chaos_test" --gtest_filter='ChaosHammer*'
echo "==== [chaos] A18 failover gate ===="
env DQMO_OBJECTS=60000 DQMO_CHECK_FAILOVER=1 \
  "build-ci/release/bench/abl_failover"

# Disk stage: the disk-resident page store's differential layer under ASan
# (page-level round-trips, image interop, prefetch accounting closure, and
# the 8-seed x {PDQ,NPDQ,kNN} x {memory,pread,uring} sweep that holds
# checksums and node-level read counts byte-identical across backends),
# then the A19 cold-cache ablation with its gate armed: under the modeled
# device latency, the PDQ-driven prefetch must cut frame p99 by >= 1.5x
# with all arm checksums identical. When io_uring is unavailable the kUring
# arm degrades to the thread-pool queue — still a correctness pass, but
# uring-specific coverage is skipped, with notice.
echo "==== [disk] backend-equivalence tests (asan) ===="
"build-ci/sanitize/tests/disk_file_test"
"build-ci/sanitize/tests/disk_backend_test"
echo "==== [disk] A19 cold-cache prefetch gate ===="
disk_log="build-ci/abl_disk.log"
env DQMO_OBJECTS=60000 DQMO_CHECK_SPEEDUP=1 \
  "build-ci/release/bench/abl_disk" | tee "${disk_log}"
if grep -q 'uring(->thread)' "${disk_log}"; then
  echo "NOTICE: io_uring unavailable on this host; the kUring equivalence"
  echo "arm ran on the thread-pool fallback (uring-specific coverage"
  echo "skipped — the degradation path itself is what was exercised)."
fi

# Metrics stage, part 1: the observability layer must be free when turned
# off. Build abl_hot_path once with the compile-time kill switch
# (-DDQMO_METRICS=OFF — every record site folds out) and compare its full
# hot-path ns/entry against the instrumented Release build running under
# DQMO_METRICS=off (runtime gate only). Min of 5 runs each to shed timing
# noise; the runtime-gated build must stay within 3% of the compiled-out
# baseline, or the "one predictable branch" cost model is broken.
nometrics_dir="build-ci/nometrics"
echo "==== [metrics] configure compiled-out baseline ===="
cmake -B "${nometrics_dir}" -S . -DDQMO_WERROR=ON \
  -DCMAKE_BUILD_TYPE=Release -DDQMO_METRICS=OFF
echo "==== [metrics] build abl_hot_path (metrics compiled out) ===="
cmake --build "${nometrics_dir}" -j "${jobs}" -- abl_hot_path

# The binaries write BENCH_abl_hot_path.json into their cwd under --json;
# run them in a scratch dir so the repo-root committed copy is untouched.
metrics_tmp="build-ci/metrics-tmp"
rm -rf "${metrics_tmp}"
mkdir -p "${metrics_tmp}"
hot_path_abs_env=(DQMO_OBJECTS=1500 DQMO_TRAJECTORIES=8
                  DQMO_HOT_PATH_FRAMES=40
                  DQMO_CACHE_DIR="${PWD}/build-ci/dqmo_cache")

min_ns_per_entry() {  # $1: binary, $2: extra env (NAME=val or empty)
  local binary="$1" extra="${2:-DQMO_UNUSED=0}" best="" run
  for _ in 1 2 3 4 5; do
    (cd "${metrics_tmp}" &&
     env "${hot_path_abs_env[@]}" "${extra}" "${binary}" --json >/dev/null)
    run="$(python3 -c '
import json
with open("'"${metrics_tmp}"'/BENCH_abl_hot_path.json") as f:
    rows = json.load(f)["rows"]
print(rows[-1]["ns_per_entry"])  # Last config = full hot path.
')"
    if [[ -z "${best}" ]] || python3 -c "exit(0 if ${run} < ${best} else 1)"
    then best="${run}"; fi
  done
  echo "${best}"
}

echo "==== [metrics] hot-path overhead gate (3% vs compiled-out) ===="
off_ns="$(min_ns_per_entry "${PWD}/${nometrics_dir}/bench/abl_hot_path")"
on_ns="$(min_ns_per_entry "${PWD}/build-ci/release/bench/abl_hot_path" \
                          DQMO_METRICS=off)"
echo "compiled-out: ${off_ns} ns/entry; runtime-off: ${on_ns} ns/entry"
python3 -c "
off, on = ${off_ns}, ${on_ns}
overhead = (on - off) / off * 100
print(f'runtime-gated overhead: {overhead:+.2f}%')
assert on <= off * 1.03, (
    f'FAIL: DQMO_METRICS=off hot path {on:.2f} ns/entry exceeds the '
    f'compiled-out baseline {off:.2f} by more than 3%')
"

# Recorder overhead gate: the always-on flight recorder must be nearly
# free. Same protocol as the metrics gate above (min of 5, full hot path
# ns/entry, instrumented Release build), comparing DQMO_RECORDER=off
# against the default-on configuration: recording an event is three
# relaxed stores plus a release head bump, so default-on must stay within
# 3% of off or the always-on posture is not viable.
echo "==== [recorder] flight-recorder overhead gate (3% vs off) ===="
rec_off_ns="$(min_ns_per_entry "${PWD}/build-ci/release/bench/abl_hot_path" \
                               DQMO_RECORDER=off)"
rec_on_ns="$(min_ns_per_entry "${PWD}/build-ci/release/bench/abl_hot_path")"
echo "recorder-off: ${rec_off_ns} ns/entry; recorder-on: ${rec_on_ns} ns/entry"
python3 -c "
off, on = ${rec_off_ns}, ${rec_on_ns}
overhead = (on - off) / off * 100
print(f'flight-recorder overhead: {overhead:+.2f}%')
assert on <= off * 1.03, (
    f'FAIL: default-on flight recorder hot path {on:.2f} ns/entry exceeds '
    f'the DQMO_RECORDER=off baseline {off:.2f} by more than 3%')
"

# Metrics stage, part 2: `dqmo_tool stats` must emit parseable Prometheus
# text exposition covering at least 40 distinct metric families across the
# storage / WAL / gate / cache / query layers, plus the resilience and
# observability layers added since: breaker / hedged / scrub / redo (shard
# failure domains), disk / prefetch (disk-resident store), trace / span /
# recorder (causal tracing + flight recorder).
echo "==== [metrics] dqmo_tool stats Prometheus exposition ===="
stats_pgf="${metrics_tmp}/ci-stats.pgf"
"build-ci/release/tools/dqmo_tool" build "${stats_pgf}" --objects 300
"build-ci/release/tools/dqmo_tool" stats "${stats_pgf}" \
  > "${metrics_tmp}/stats.prom"
awk '
  /^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* / { next }
  /^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$/ {
    families[$3] = 1; next
  }
  /^#/ { print "bad comment line: " $0; bad = 1; next }
  /^dqmo_[a-z0-9_]+(\{le="([0-9]+|\+Inf)"\})? -?[0-9]+(\.[0-9]+)?$/ { next }
  { print "bad sample line: " $0; bad = 1 }
  END {
    layers["storage"]; layers["wal"]; layers["gate"]
    layers["pool"]; layers["node_cache"]; layers["pdq"]
    layers["breaker"]; layers["hedged"]; layers["scrub"]; layers["redo"]
    layers["disk"]; layers["prefetch"]
    layers["trace"]; layers["span"]; layers["recorder"]
    n = 0
    for (f in families) {
      ++n
      for (l in layers) if (index(f, "dqmo_" l "_") == 1) seen[l] = 1
    }
    printf "prometheus exposition: %d metric families\n", n
    if (n < 40) { print "FAIL: fewer than 40 metric families"; bad = 1 }
    for (l in layers) if (!(l in seen)) {
      print "FAIL: no dqmo_" l "_* metric in the exposition"; bad = 1
    }
    exit bad
  }
' "${metrics_tmp}/stats.prom"

echo "==== ci.sh: all passes green ===="
