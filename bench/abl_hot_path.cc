// Ablation A15 — the zero-copy query hot path, dimension by dimension:
// decoded-node cache {off, on} x node representation {AoS legacy, SoA} x
// kernel tier {scalar, vector}. Every configuration answers the *same*
// seeded PDQ sweep and kNN probe set; the per-config checksums must be
// identical (the hot path's bit-identity contract), only the cost may move.
//
// Reported metric: node-scan CPU as ns per pruned entry — wall time of the
// query phase divided by the number of per-entry prune decisions
// (QueryStats::distance_computations, which both paths count identically) —
// plus node visits split into physical decodes and decoded-cache hits.
//
// Env knobs, on top of the bench_common ones:
//   DQMO_HOT_PATH_FRAMES=N    frames per PDQ trajectory (default 60)
//   DQMO_CHECK_SPEEDUP=1      exit non-zero unless the full hot path
//                             (cache+SoA+vector) beats legacy AoS by >= 2x
//                             ns/entry on the PDQ sweep (the CI gate)
#include <chrono>
#include <cstring>

#include "bench_common.h"
#include "common/random.h"
#include "query/kernels.h"
#include "query/knn.h"
#include "query/pdq.h"
#include "rtree/node_cache.h"

namespace {

using namespace dqmo;
using namespace dqmo::bench;

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void FoldU64(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xFF;
    *h *= kFnvPrime;
  }
}

void FoldDouble(uint64_t* h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  FoldU64(h, bits);
}

struct Config {
  const char* name;
  HotPath path;
  bool cache;
  bool vector;  // SoA only: auto-dispatch (AVX2 when available) vs scalar.
};

struct RunCost {
  double wall_seconds = 0.0;
  uint64_t entries = 0;      // Per-entry prune decisions (ns/entry basis).
  uint64_t node_reads = 0;   // Physical page decodes.
  uint64_t decoded_hits = 0; // Served from the decoded-node cache.
  uint64_t objects = 0;
  uint64_t checksum = kFnvOffset;

  double ns_per_entry() const {
    return entries == 0 ? 0.0 : 1e9 * wall_seconds / static_cast<double>(entries);
  }
};

QueryTrajectory MakeTrajectory(Rng* rng) {
  std::vector<KeySnapshot> keys;
  Vec pos(rng->Uniform(20, 80), rng->Uniform(20, 80));
  double t = rng->Uniform(5, 20);
  keys.emplace_back(t, Box::Centered(pos, 10.0));
  for (int j = 0; j < 6; ++j) {
    t += rng->Uniform(2.0, 5.0);
    pos = Vec(std::clamp(pos[0] + rng->Uniform(-8, 8), 5.0, 95.0),
              std::clamp(pos[1] + rng->Uniform(-8, 8), 5.0, 95.0));
    keys.emplace_back(t, Box::Centered(pos, 10.0));
  }
  return QueryTrajectory::Make(std::move(keys)).value();
}

/// One full pass of the workload under the active configuration. The mix
/// is node-scan dominated by design — that is the CPU this ablation
/// measures: PDQ visits each node once per trajectory (box + segment
/// kernels), the NPDQ window sweep re-scans overlapping subtrees every
/// snapshot (classification kernel + repeat decodes, where the cache
/// applies), and the kNN probes re-run full searches (distance kernels).
/// Costs accumulate into *cost when non-null (warmup passes discard them).
void RunWorkload(Workbench* bench, int trajectories, int frames,
                 HotPath hot_path, RunCost* cost) {
  QueryStats stats;
  uint64_t checksum = kFnvOffset;
  uint64_t objects = 0;
  const auto start = std::chrono::steady_clock::now();
  Rng rng(2002);
  for (int q = 0; q < trajectories; ++q) {
    const QueryTrajectory trajectory = MakeTrajectory(&rng);
    PredictiveDynamicQuery::Options opt;
    opt.hot_path = hot_path;
    auto pdq = PredictiveDynamicQuery::Make(bench->tree(), trajectory, opt);
    DQMO_CHECK(pdq.ok());
    NpdqOptions nopt;
    nopt.hot_path = hot_path;
    NonPredictiveDynamicQuery npdq(bench->tree(), nopt);
    const Interval span = trajectory.TimeSpan();
    const double dt = span.length() / frames;
    double prev = span.lo;
    for (int i = 1; i <= frames; ++i) {
      const double t = span.lo + i * dt;
      auto frame = (*pdq)->Frame(prev, t);
      DQMO_CHECK(frame.ok());
      for (const PdqResult& r : *frame) {
        FoldU64(&checksum, r.motion.oid);
        FoldDouble(&checksum, r.motion.seg.time.lo);
        ++objects;
      }
      // The same frame answered non-predictively: an NPDQ snapshot over
      // the trajectory's interpolated window.
      auto fresh = npdq.Execute(trajectory.FrameQuery(prev, t));
      DQMO_CHECK(fresh.ok());
      for (const MotionSegment& m : *fresh) {
        FoldU64(&checksum, m.oid);
        FoldDouble(&checksum, m.seg.time.lo);
      }
      prev = t;
    }
    stats += (*pdq)->stats();
    stats += npdq.stats();

    KnnOptions kopt;
    kopt.hot_path = hot_path;
    for (int p = 0; p < 10; ++p) {
      const Vec point(rng.Uniform(5, 95), rng.Uniform(5, 95));
      auto neighbors = KnnAt(*bench->tree(), point, rng.Uniform(10, 90), 10,
                             &stats, kopt);
      DQMO_CHECK(neighbors.ok());
      for (const Neighbor& n : *neighbors) {
        FoldU64(&checksum, n.motion.oid);
        FoldDouble(&checksum, n.distance);
      }
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (cost == nullptr) return;
  cost->wall_seconds = wall;
  cost->entries = stats.distance_computations.load();
  cost->node_reads = stats.node_reads.load();
  cost->decoded_hits = stats.decoded_hits.load();
  cost->objects = objects;
  cost->checksum = checksum;
}

}  // namespace

int main(int argc, char** argv) {
  dqmo::bench::InitJsonMode(argc, argv);
  auto bench = PrepareBench();
  const int trajectories = TrajectoriesFromEnv(20);
  const int frames =
      static_cast<int>(GetEnvInt("DQMO_HOT_PATH_FRAMES", 60));
  PrintPreamble("Ablation A15",
                "zero-copy hot path: decoded-node cache x SoA kernels x "
                "SIMD tier (same queries, identical checksums required)",
                trajectories);
  std::printf("# SIMD auto-dispatch level: %s "
              "(DQMO_DISABLE_SIMD=1 forces scalar)\n",
              SimdLevelName(ActiveSimdLevel()));

  const Config configs[] = {
      {"legacy AoS (pre-optimization)", HotPath::kLegacyAos, false, false},
      {"SoA kernels, scalar", HotPath::kSoa, false, false},
      {"SoA kernels, vector", HotPath::kSoa, false, true},
      {"SoA kernels, scalar + cache", HotPath::kSoa, true, false},
      {"SoA kernels, vector + cache", HotPath::kSoa, true, true},
  };

  Table table({"configuration", "ns/entry", "entries", "node visits",
               "(reads + cache hits)", "speedup vs AoS", "checksum"});
  BenchJsonWriter json("abl_hot_path");
  double baseline_ns = 0.0;
  double best_ns = 0.0;
  uint64_t baseline_checksum = 0;
  bool checksums_agree = true;
  for (const Config& config : configs) {
    ForceSimdLevel(config.path == HotPath::kSoa && !config.vector
                       ? std::optional<SimdLevel>(SimdLevel::kScalar)
                       : std::nullopt);
    DecodedNodeCache cache(4096);
    if (config.cache) bench->tree()->AttachNodeCache(&cache);
    // Warmup: populates the decoded cache and faults in the page cache so
    // the timed pass measures node-scan CPU, not first-touch costs.
    RunWorkload(bench.get(), std::min(trajectories, 3), frames, config.path,
                nullptr);
    RunCost cost;
    RunWorkload(bench.get(), trajectories, frames, config.path, &cost);
    bench->tree()->AttachNodeCache(nullptr);
    ForceSimdLevel(std::nullopt);

    if (baseline_ns == 0.0) {
      baseline_ns = cost.ns_per_entry();
      baseline_checksum = cost.checksum;
    }
    best_ns = cost.ns_per_entry();  // Last config = full hot path.
    checksums_agree = checksums_agree && cost.checksum == baseline_checksum;
    char checksum_hex[32];
    std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                  static_cast<unsigned long long>(cost.checksum));
    char visit_split[64];
    std::snprintf(visit_split, sizeof(visit_split), "(%llu + %llu)",
                  static_cast<unsigned long long>(cost.node_reads),
                  static_cast<unsigned long long>(cost.decoded_hits));
    table.AddRow(
        {config.name, Fmt(cost.ns_per_entry(), 1),
         std::to_string(cost.entries),
         std::to_string(cost.node_reads + cost.decoded_hits), visit_split,
         Fmt(baseline_ns / std::max(cost.ns_per_entry(), 1e-12), 2) + "x",
         checksum_hex});
    json.AddRow()
        .Str("config", config.name)
        .Str("path", config.path == HotPath::kSoa ? "soa" : "aos")
        .Int("cache", config.cache ? 1 : 0)
        .Str("simd", config.path != HotPath::kSoa ? "n/a"
                     : config.vector ? SimdLevelName(ActiveSimdLevel())
                                     : "scalar")
        .Num("wall_seconds", cost.wall_seconds)
        .Int("entries", cost.entries)
        .Num("ns_per_entry", cost.ns_per_entry())
        .Int("node_reads", cost.node_reads)
        .Int("decoded_hits", cost.decoded_hits)
        .Int("objects", cost.objects)
        .Str("checksum", checksum_hex);
  }
  table.Print();
  json.Write();

  DQMO_CHECK(checksums_agree);  // Bit-identity across every configuration.
  const double speedup = best_ns > 0.0 ? baseline_ns / best_ns : 0.0;
  std::printf("full hot path vs legacy AoS: %sx ns/entry\n",
              Fmt(speedup, 2).c_str());
  if (GetEnvInt("DQMO_CHECK_SPEEDUP", 0) != 0 && speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: hot-path speedup %.2fx below the 2x acceptance "
                 "threshold\n",
                 speedup);
    return 1;
  }
  return 0;
}
