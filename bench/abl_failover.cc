// Ablation A18 — failure-domain failover: frame-latency tails and
// delivery integrity with 1 of N shards killed, then repaired online.
//
// Three phases run the same mixed session sweep (PDQ handoff, NPDQ,
// moving kNN) against one failure-domain engine:
//
//   healthy   baseline: p50/p99 frame latency and per-session checksums
//   dark      one shard killed (every read fails, breaker forced open —
//             detection latency is the chaos harness's business, this
//             bench measures steady-state quarantined service): frames
//             come back kPartial around the quarantine while the healthy
//             shards hold the latency tail
//   repaired  fault cleared, online scrub + half-open probation: the
//             sweep must be byte-identical to the healthy baseline again
//
// DQMO_CHECK_FAILOVER=1 turns the two load-bearing claims into process
// exit gates (CI runs this):
//   * dark p99 <= 1.2x healthy p99 (+500us scheduler slack at the tiny
//     absolute latencies of an in-memory run)
//   * repaired checksums identical to healthy, breaker closed
//
// Scale knobs:
//   DQMO_OBJECTS=N   population size (default 120000)
//   DQMO_FULL=1      shorthand for 600000 objects
//   DQMO_SESSIONS=N  sessions in the sweep (default 12, 1/3 each kind)
//   DQMO_FRAMES=N    frames per session (default 20)
//   DQMO_SHARDS=N    shard count (default 16; 1 is killed)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/env.h"
#include "server/health.h"
#include "server/router.h"
#include "server/scrubber.h"
#include "server/shard.h"
#include "storage/fault.h"
#include "workload/data_generator.h"

namespace {

using namespace dqmo;
using namespace dqmo::bench;

std::vector<SessionSpec> MakeSpecs(int sessions, int frames,
                                   uint64_t seed_base) {
  const SessionKind kinds[] = {SessionKind::kSession, SessionKind::kNpdq,
                               SessionKind::kKnn};
  std::vector<SessionSpec> specs;
  for (int i = 0; i < sessions; ++i) {
    SessionSpec spec;
    spec.kind = kinds[i % 3];
    spec.seed = seed_base + static_cast<uint64_t>(i);
    spec.frames = frames;
    spec.t0 = 0.2 + 0.02 * i;
    spec.record_frame_latency = true;
    specs.push_back(spec);
  }
  return specs;
}

uint64_t PercentileUs(std::vector<uint64_t>* latencies, double p) {
  if (latencies->empty()) return 0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(latencies->size() - 1) / 100.0 + 0.5);
  return (*latencies)[std::min(idx, latencies->size() - 1)];
}

struct Phase {
  std::string name;
  uint64_t frame_p50_us = 0;
  uint64_t frame_p99_us = 0;
  uint64_t frames_partial = 0;
  uint64_t frames_quarantined = 0;
  uint64_t objects = 0;
  double wall_seconds = 0.0;
  std::vector<uint64_t> checksums;
  std::vector<uint64_t> shard_objects;
};

Phase RunPhase(ShardedEngine* engine, const std::vector<SessionSpec>& specs,
               const std::string& name) {
  Phase ph;
  ph.name = name;
  const ShardRouter router(engine);
  std::vector<uint64_t> latencies;
  const auto start = std::chrono::steady_clock::now();
  for (const SessionSpec& spec : specs) {
    const ShardedSessionResult r = router.RunOne(spec);
    DQMO_CHECK(r.result.status.ok());
    ph.frames_partial += r.frames_partial;
    ph.frames_quarantined += r.frames_quarantined;
    ph.objects += r.result.objects_delivered;
    ph.shard_objects.resize(r.shard_stats.size(), 0);
    for (size_t s = 0; s < r.shard_stats.size(); ++s) {
      ph.shard_objects[s] += r.shard_stats[s].objects_returned.load();
    }
    ph.checksums.push_back(r.result.checksum);
    latencies.insert(latencies.end(), r.result.frame_latencies_us.begin(),
                     r.result.frame_latencies_us.end());
  }
  ph.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ph.frame_p50_us = PercentileUs(&latencies, 50.0);
  ph.frame_p99_us = PercentileUs(&latencies, 99.0);
  return ph;
}

int Main() {
  const bool full = GetEnvInt("DQMO_FULL", 0) != 0;
  const int objects = static_cast<int>(
      GetEnvInt("DQMO_OBJECTS", full ? 600'000 : 120'000));
  const int sessions = static_cast<int>(GetEnvInt("DQMO_SESSIONS", 12));
  const int frames = static_cast<int>(GetEnvInt("DQMO_FRAMES", 20));
  const int shards = static_cast<int>(GetEnvInt("DQMO_SHARDS", 16));
  const bool gate = GetEnvInt("DQMO_CHECK_FAILOVER", 0) != 0;

  DataGeneratorOptions dopt;
  dopt.num_objects = objects;
  dopt.horizon = 2.0;
  dopt.seed = 42;
  auto data = GenerateMotionData(dopt);
  DQMO_CHECK(data.ok());
  std::printf("# population: %d objects, %zu segments, %d shards\n", objects,
              data->size(), shards);

  ShardedEngineOptions sopt;
  sopt.num_shards = shards;
  sopt.failure_domains = true;
  sopt.breaker.cooldown_frames = 0;  // Promotion only through the scrubber.
  sopt.breaker.probe_rate = 1.0;
  sopt.breaker.probe_successes_to_close = 2;
  auto engine = ShardedEngine::Create(sopt);
  DQMO_CHECK(engine.ok());
  DQMO_CHECK((*engine)->BulkLoad(*data).ok());

  const std::vector<SessionSpec> specs = MakeSpecs(sessions, frames, 8000);
  std::vector<Phase> phases;

  // Warm the pools once so the healthy baseline measures steady-state
  // tails, not cold-cache misses.
  RunPhase(engine->get(), specs, "warmup");
  phases.push_back(RunPhase(engine->get(), specs, "healthy"));

  // Kill the shard that contributed the most deliveries to the healthy
  // baseline (the worst-case single failure for this sweep): every read
  // fails at the device, and the breaker is forced open up front so the
  // phase measures steady-state quarantine.
  int dead = 0;
  uint64_t most = 0;
  for (int s = 0; s < shards; ++s) {
    const uint64_t n = phases[0].shard_objects[static_cast<size_t>(s)];
    if (n > most) {
      most = n;
      dead = s;
    }
  }
  std::printf("# killing shard %d (%llu of %llu delivered objects)\n", dead,
              static_cast<unsigned long long>(most),
              static_cast<unsigned long long>(phases[0].objects));
  FaultInjector::Options kill;
  kill.fail_every_kth = 1;
  (*engine)->ArmShardFault(dead, kill);
  (*engine)->breaker(dead)->ForceOpen("bench kill");
  phases.push_back(RunPhase(engine->get(), specs, "dark"));

  // Online repair: clear the fault, scrub the quarantined shard, then let
  // a short probation sweep close the breaker through half-open probes.
  (*engine)->ClearShardFault(dead);
  const ShardScrubber::PassReport rep =
      ShardScrubber(engine->get(), ScrubOptions()).ScrubPass();
  DQMO_CHECK(rep.shards_scrubbed == 1);
  ShardRouter(engine->get()).Run(MakeSpecs(1, 6, 9000));
  DQMO_CHECK((*engine)->breaker(dead)->state() == BreakerState::kClosed);
  phases.push_back(RunPhase(engine->get(), specs, "repaired"));

  const Phase& healthy = phases[0];
  const Phase& dark = phases[1];
  const Phase& repaired = phases[2];
  DQMO_CHECK(healthy.frames_partial == 0);
  DQMO_CHECK(dark.frames_partial > 0);  // Degraded visibly, never silently.
  const bool identical = repaired.checksums == healthy.checksums;
  std::printf("# repaired checksums %s healthy baseline (%zu sessions)\n",
              identical ? "identical to" : "DIFFER from",
              healthy.checksums.size());

  BenchJsonWriter json("abl_failover");
  Table table({"phase", "frame p50 (us)", "frame p99 (us)", "partial",
               "quarantined", "objects", "wall (s)"});
  for (const Phase& ph : phases) {
    table.AddRow({ph.name, std::to_string(ph.frame_p50_us),
                  std::to_string(ph.frame_p99_us),
                  std::to_string(ph.frames_partial),
                  std::to_string(ph.frames_quarantined),
                  std::to_string(ph.objects), Fmt(ph.wall_seconds, 2)});
    JsonObject& row = json.AddRow();
    row.Str("phase", ph.name)
        .Int("shards", static_cast<uint64_t>(shards))
        .Int("dead_shards", ph.name == "dark" ? 1 : 0)
        .Int("objects_population", static_cast<uint64_t>(objects))
        .Int("sessions", static_cast<uint64_t>(sessions))
        .Int("frame_p50_us", ph.frame_p50_us)
        .Int("frame_p99_us", ph.frame_p99_us)
        .Int("frames_partial", ph.frames_partial)
        .Int("frames_quarantined", ph.frames_quarantined)
        .Int("objects_returned", ph.objects)
        .Num("wall_seconds", ph.wall_seconds)
        .Int("recovered_identical", identical ? 1 : 0)
        .Int("checksum_fold", [&ph] {
          uint64_t fold = 1469598103934665603ULL;
          for (const uint64_t c : ph.checksums) {
            fold ^= c;
            fold *= 1099511628211ULL;
          }
          return fold;
        }());
  }
  table.Print();

  if (gate) {
    // The failover gate: quarantined service must hold the healthy tail
    // (20% + 500us scheduler slack at in-memory latencies), and repair
    // must restore byte-identical answers.
    const uint64_t budget =
        healthy.frame_p99_us + healthy.frame_p99_us / 5 + 500;
    if (dark.frame_p99_us > budget) {
      std::fprintf(stderr,
                   "FAILOVER GATE: dark p99 %llu us exceeds budget %llu us "
                   "(healthy p99 %llu us)\n",
                   static_cast<unsigned long long>(dark.frame_p99_us),
                   static_cast<unsigned long long>(budget),
                   static_cast<unsigned long long>(healthy.frame_p99_us));
      return 1;
    }
    if (!identical) {
      std::fprintf(stderr,
                   "FAILOVER GATE: repaired sweep not byte-identical to "
                   "healthy baseline\n");
      return 1;
    }
    std::printf("# failover gate: PASS (dark p99 %llu us <= %llu us, "
                "repaired byte-identical)\n",
                static_cast<unsigned long long>(dark.frame_p99_us),
                static_cast<unsigned long long>(budget));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dqmo::bench::InitJsonMode(argc, argv);
  return Main();
}
