// Ablation A3 — Semi-Predictive Dynamic Queries (Sect. 4): SPDQ runs the
// PDQ algorithm over windows inflated by the deviation bound delta, so an
// observer drifting up to delta from the predicted path still sees complete
// results. This bench measures what the allowance costs: subsequent-query
// I/O and retrieved-object volume as delta grows.
#include "bench_common.h"
#include "common/random.h"
#include "query/pdq.h"
#include "workload/query_generator.h"

int main() {
  using namespace dqmo;
  using namespace dqmo::bench;
  auto bench = PrepareBench();
  const int trajectories = TrajectoriesFromEnv(30);
  PrintPreamble("Ablation A3",
                "SPDQ cost vs deviation bound delta (window 8x8, overlap "
                "90%)",
                trajectories);

  Table table({"delta", "subs reads/query", "objects/query",
               "vs delta=0 reads", "vs delta=0 objects"});
  double base_reads = 0.0;
  double base_objects = 0.0;
  for (double delta : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    Rng rng(31415);
    double reads = 0.0;
    double objects = 0.0;
    int64_t queries = 0;
    for (int traj = 0; traj < trajectories; ++traj) {
      Rng traj_rng = rng.Fork();
      QueryWorkloadOptions qopt;
      qopt.overlap = 0.9;
      auto workload = GenerateDynamicQuery(qopt, &traj_rng);
      DQMO_CHECK(workload.ok());
      auto spdq = PredictiveDynamicQuery::Make(
          bench->tree(), workload->trajectory.Inflate(delta));
      DQMO_CHECK(spdq.ok());
      for (int i = 0; i < workload->num_frames(); ++i) {
        const QueryStats before = (*spdq)->stats();
        auto frame = (*spdq)->Frame(
            workload->frame_times[static_cast<size_t>(i)],
            workload->frame_times[static_cast<size_t>(i) + 1]);
        DQMO_CHECK(frame.ok());
        if (i > 0) {
          const QueryStats d = (*spdq)->stats() - before;
          reads += static_cast<double>(d.node_reads);
          objects += static_cast<double>(frame->size());
          ++queries;
        }
      }
    }
    reads /= static_cast<double>(queries);
    objects /= static_cast<double>(queries);
    if (delta == 0.0) {
      base_reads = reads;
      base_objects = objects;
    }
    table.AddRow({Fmt(delta), Fmt(reads, 2), Fmt(objects, 2),
                  Fmt(reads / std::max(1e-9, base_reads), 2) + "x",
                  Fmt(objects / std::max(1e-9, base_objects), 2) + "x"});
  }
  table.Print();
  return 0;
}
