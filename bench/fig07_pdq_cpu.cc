// Fig. 7 of the paper: CPU performance of PDQ: distance computations per query vs snapshot overlap.
#include "bench_common.h"

int main(int argc, char** argv) {
  dqmo::bench::InitJsonMode(argc, argv);
  return dqmo::bench::RunOverlapFigure(dqmo::bench::Method::kPdq,
                            dqmo::bench::Metric::kCpu, "fig07_pdq_cpu", "Fig. 7",
                            "CPU performance of PDQ: distance computations per query vs snapshot overlap");
}
