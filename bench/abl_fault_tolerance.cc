// Ablation A13 — storage integrity & fault tolerance.
//
// Part 1: what checksum verification costs. The same naive snapshot sweep
// is timed with verification enabled (the default; verify-once caching
// means steady-state reads pay a flag check) and disabled; the acceptance
// bar for the subsystem is < 5% wall-clock overhead. The cold cost — one
// CRC32C pass over every page, what `dqmo_tool scrub` or an untrusted load
// pays — is reported separately.
//
// Part 2: what degraded-result queries deliver. PDQ trajectories run
// against a PageFile wrapped in FaultyPageReader (seeded transient faults
// at 0.01% / 0.1% / 1% per read) + RetryingPageReader, under
// FaultPolicy::kSkipSubtree — once with the default 3 attempts (retries
// absorb transient faults) and once with retries disabled (every fault
// becomes a skipped subtree). Reports recall against the fault-free answer
// and the full counter set: retries, checksum failures, pages skipped,
// degraded (partial) trajectories.
#include <chrono>
#include <set>

#include "bench_common.h"
#include "common/random.h"
#include "query/pdq.h"
#include "storage/fault.h"
#include "workload/query_generator.h"

namespace {

using namespace dqmo;
using namespace dqmo::bench;

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Runs `rounds` full naive snapshot sweeps and returns the wall-clock
/// seconds; `sink` defeats dead-code elimination.
double TimeNaiveSweep(Workbench* bench, int rounds, uint64_t* sink) {
  Rng rng(271828);
  QueryWorkloadOptions qopt;
  qopt.overlap = 0.8;
  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    Rng traj_rng = rng.Fork();
    auto workload = GenerateDynamicQuery(qopt, &traj_rng);
    DQMO_CHECK(workload.ok());
    QueryStats stats;
    for (int i = 0; i < workload->num_frames(); ++i) {
      auto result = bench->tree()->RangeSearch(workload->Frame(i), &stats);
      DQMO_CHECK(result.ok());
      *sink += result->size();
    }
  }
  return Seconds(start, std::chrono::steady_clock::now());
}

struct FaultRow {
  double rate = 0.0;
  double recall = 1.0;       // |degraded ∩ clean| / |clean| over all runs.
  uint64_t retries = 0;
  uint64_t crc_failures = 0;
  uint64_t pages_skipped = 0;
  uint64_t exhausted = 0;
  int degraded_runs = 0;     // Trajectories answered kPartial.
  int runs = 0;
};

FaultRow RunFaultPoint(Workbench* bench, double rate, int trajectories,
                       int max_attempts) {
  FaultRow row;
  row.rate = rate;
  Rng rng(314159);
  QueryWorkloadOptions qopt;
  qopt.overlap = 0.8;
  uint64_t clean_total = 0;
  uint64_t kept_total = 0;

  const IoStats io_before = bench->file()->stats();
  for (int traj = 0; traj < trajectories; ++traj) {
    Rng traj_rng = rng.Fork();
    auto workload = GenerateDynamicQuery(qopt, &traj_rng);
    DQMO_CHECK(workload.ok());

    // Fault-free reference.
    std::set<MotionSegment::Key> clean_keys;
    {
      auto pdq = PredictiveDynamicQuery::Make(bench->tree(),
                                              workload->trajectory);
      DQMO_CHECK(pdq.ok());
      for (int i = 1; i < workload->num_frames(); ++i) {
        auto frame =
            (*pdq)->Frame(workload->frame_times[static_cast<size_t>(i - 1)],
                          workload->frame_times[static_cast<size_t>(i)]);
        DQMO_CHECK(frame.ok());
        for (const PdqResult& r : *frame) clean_keys.insert(r.motion.key());
      }
    }

    // Degraded run: faults at `rate`, absorbed where possible by retries,
    // skipped where not.
    FaultInjector::Options fopt;
    fopt.seed = 0xFA017u + static_cast<uint64_t>(traj);
    fopt.transient_fault_rate = rate;
    FaultInjector injector(fopt);
    FaultyPageReader faulty(bench->file(), &injector);
    RetryingPageReader::RetryPolicy policy;
    policy.max_attempts = max_attempts;
    RetryingPageReader retrying(&faulty, policy,
                                bench->file()->mutable_stats());
    PredictiveDynamicQuery::Options options;
    options.reader = &retrying;
    options.fault_policy = FaultPolicy::kSkipSubtree;
    auto pdq = PredictiveDynamicQuery::Make(bench->tree(),
                                            workload->trajectory, options);
    DQMO_CHECK(pdq.ok());
    std::set<MotionSegment::Key> degraded_keys;
    for (int i = 1; i < workload->num_frames(); ++i) {
      auto frame =
          (*pdq)->Frame(workload->frame_times[static_cast<size_t>(i - 1)],
                        workload->frame_times[static_cast<size_t>(i)]);
      DQMO_CHECK(frame.ok());
      for (const PdqResult& r : *frame) degraded_keys.insert(r.motion.key());
    }

    clean_total += clean_keys.size();
    for (const auto& key : degraded_keys) {
      kept_total += clean_keys.count(key);
    }
    row.pages_skipped += (*pdq)->skip_report().pages_skipped();
    row.exhausted += retrying.exhausted_reads();
    if ((*pdq)->integrity() == ResultIntegrity::kPartial) {
      ++row.degraded_runs;
    }
    ++row.runs;
  }
  const IoStats io_delta = bench->file()->stats() - io_before;
  row.retries = io_delta.retries;
  row.crc_failures = io_delta.checksum_failures;
  row.recall = clean_total == 0
                   ? 1.0
                   : static_cast<double>(kept_total) /
                         static_cast<double>(clean_total);
  return row;
}

}  // namespace

int main() {
  auto bench = PrepareBench();
  const int trajectories = TrajectoriesFromEnv(20);
  PrintPreamble("Ablation A13", "storage integrity & fault tolerance",
                trajectories);

  // Part 1: checksum verification overhead on the naive snapshot sweep.
  const int rounds = trajectories;
  uint64_t sink = 0;
  TimeNaiveSweep(bench.get(), 2, &sink);  // Warm up (page cache, branch pred).
  const double with_crc = TimeNaiveSweep(bench.get(), rounds, &sink);
  bench->file()->set_verify_on_read(false);
  const double without_crc = TimeNaiveSweep(bench.get(), rounds, &sink);
  bench->file()->set_verify_on_read(true);
  const double overhead =
      without_crc > 0.0 ? (with_crc - without_crc) / without_crc * 100.0
                        : 0.0;
  // Cold cost: a full CRC32C pass over every page (what scrub or an
  // untrusted load pays, once).
  const auto scrub_start = std::chrono::steady_clock::now();
  std::vector<PageId> bad;
  DQMO_CHECK(bench->file()->VerifyAllPages(&bad) == 0);
  const double scrub_s =
      Seconds(scrub_start, std::chrono::steady_clock::now());
  std::printf("\nchecksum verification cost:\n");
  std::printf("  sweep, verify on : %8.3f s  (steady state: verify-once "
              "caching)\n", with_crc);
  std::printf("  sweep, verify off: %8.3f s\n", without_crc);
  std::printf("  overhead         : %+7.2f %%  (acceptance bar: < 5%%)\n",
              overhead);
  std::printf("  cold scrub       : %8.3f s for %zu pages (%.2f us/page)\n",
              scrub_s, bench->file()->num_pages(),
              scrub_s * 1e6 /
                  static_cast<double>(bench->file()->num_pages()));

  // Part 2: PDQ recall under seeded transient fault rates, with and
  // without retry absorption.
  for (const int attempts : {3, 1}) {
    std::printf("\nPDQ under kSkipSubtree, transient faults, %s:\n",
                attempts > 1 ? "retrying reader (3 attempts)"
                             : "retries disabled (every fault skips)");
    Table table({"fault rate", "recall%", "retries", "crc fails",
                 "pages skipped", "exhausted", "degraded runs"});
    for (double rate : {0.0001, 0.001, 0.01}) {
      const FaultRow row =
          RunFaultPoint(bench.get(), rate, trajectories, attempts);
      table.AddRow({Fmt(rate * 100, 2) + "%", Fmt(row.recall * 100, 3),
                    StrFormat("%llu",
                              static_cast<unsigned long long>(row.retries)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          row.crc_failures)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          row.pages_skipped)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          row.exhausted)),
                    StrFormat("%d/%d", row.degraded_runs, row.runs)});
    }
    table.Print();
  }
  std::printf("# recall = fraction of the fault-free PDQ answer retained; "
              "a retry absorbs a transient fault,\n"
              "# a skip loses the subtree for the trajectory's remaining "
              "run (PDQ reads each node once).\n");
  (void)sink;
  return 0;
}
