// Ablation A1 — the NSI leaf optimization (Sect. 3.2): storing exact motion
// segments at the leaf level instead of bounding boxes eliminates false
// admissions (motions whose BB intersects the query while the motion does
// not). This bench quantifies the false-admission rate the optimization
// removes, per query window size.
#include "bench_common.h"
#include "common/random.h"
#include "workload/query_generator.h"

int main() {
  using namespace dqmo;
  using namespace dqmo::bench;
  auto bench = PrepareBench();
  const int trajectories = TrajectoriesFromEnv();
  PrintPreamble("Ablation A1",
                "exact leaf segment test vs leaf bounding boxes (Sect. 3.2)",
                trajectories);

  Table table({"window", "exact results/query", "bb results/query",
               "false admissions", "false admission %"});
  for (double window : PaperWindows()) {
    Rng rng(4242);
    double exact_results = 0.0;
    double bb_results = 0.0;
    int64_t queries = 0;
    for (int traj = 0; traj < trajectories; ++traj) {
      Rng traj_rng = rng.Fork();
      QueryWorkloadOptions qopt;
      qopt.window = window;
      qopt.overlap = 0.9;
      auto workload = GenerateDynamicQuery(qopt, &traj_rng);
      DQMO_CHECK(workload.ok());
      for (int i = 0; i < workload->num_frames(); ++i) {
        const StBox q = workload->Frame(i);
        QueryStats stats;
        auto exact = bench->tree()->RangeSearch(q, &stats);
        auto bb = bench->tree()->RangeSearchBbOnly(q, &stats);
        DQMO_CHECK(exact.ok());
        DQMO_CHECK(bb.ok());
        exact_results += static_cast<double>(exact->size());
        bb_results += static_cast<double>(bb->size());
        ++queries;
      }
    }
    exact_results /= static_cast<double>(queries);
    bb_results /= static_cast<double>(queries);
    const double false_adm = bb_results - exact_results;
    table.AddRow({Fmt(window, 0) + "x" + Fmt(window, 0),
                  Fmt(exact_results), Fmt(bb_results), Fmt(false_adm),
                  Fmt(100.0 * false_adm / std::max(1.0, bb_results)) + "%"});
  }
  table.Print();
  std::printf(
      "\nNode I/O is identical for both variants (same tree traversal);\n"
      "the optimization saves the false admissions above — objects that\n"
      "would be transmitted to and rendered by the client needlessly.\n");
  return 0;
}
