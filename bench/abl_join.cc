// Ablation A9 — spatio-temporal distance join (future-work item (ii)):
// proximity alerts ("which pairs of objects come within delta of each
// other during a window?") via synchronized R-tree traversal vs the
// quadratic nested-loop baseline.
#include <chrono>

#include "bench_common.h"
#include "common/random.h"
#include "query/join.h"
#include "workload/data_generator.h"

int main() {
  using namespace dqmo;
  using namespace dqmo::bench;
  // A reduced population keeps the nested-loop baseline measurable.
  IndexConfig config = PaperIndexConfig();
  config.data.num_objects =
      static_cast<int>(GetEnvInt("DQMO_OBJECTS", 500));
  config.data.horizon = 20.0;
  auto bench = Workbench::Prepare(config);
  DQMO_CHECK(bench.ok());
  std::printf("# index: %s\n", (*bench)->Describe().c_str());
  PrintPreamble("Ablation A9",
                "self distance-join via synchronized traversal vs nested "
                "loop (time window [5, 10])",
                1);

  auto data = GenerateMotionData(config.data);
  DQMO_CHECK(data.ok());
  for (auto& m : *data) m.seg = QuantizeStored(m.seg);

  Table table({"delta", "pairs", "join reads", "join pair-tests",
               "nested-loop pair-tests", "test reduction"});
  for (double delta : {0.25, 0.5, 1.0, 2.0}) {
    DistanceJoinOptions options;
    options.delta = delta;
    options.time_window = Interval(5.0, 10.0);
    QueryStats stats;
    auto pairs = SelfDistanceJoin(*(*bench)->tree(), options, &stats);
    DQMO_CHECK(pairs.ok());

    // Nested-loop baseline cost: all cross-object ordered pairs.
    uint64_t nested_tests = 0;
    uint64_t nested_pairs = 0;
    for (size_t i = 0; i < data->size(); ++i) {
      for (size_t j = i + 1; j < data->size(); ++j) {
        const auto& a = (*data)[i];
        const auto& b = (*data)[j];
        if (a.oid == b.oid) continue;
        ++nested_tests;
        if (!WithinDistanceTime(a.seg, b.seg, delta, options.time_window)
                 .empty()) {
          ++nested_pairs;
        }
      }
    }
    DQMO_CHECK(nested_pairs == pairs->size());

    table.AddRow(
        {Fmt(delta, 2), std::to_string(pairs->size()),
         std::to_string(stats.node_reads),
         std::to_string(stats.distance_computations),
         std::to_string(nested_tests),
         Fmt(static_cast<double>(nested_tests) /
                 static_cast<double>(std::max<uint64_t>(
                     1, stats.distance_computations))) +
             "x"});
  }
  table.Print();
  return 0;
}
