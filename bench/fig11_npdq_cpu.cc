// Fig. 11 of the paper: CPU performance of NPDQ: distance computations per query vs snapshot overlap.
#include "bench_common.h"

int main() {
  return dqmo::bench::RunOverlapFigure(dqmo::bench::Method::kNpdq,
                            dqmo::bench::Metric::kCpu, "Fig. 11",
                            "CPU performance of NPDQ: distance computations per query vs snapshot overlap");
}
