// Fig. 11 of the paper: CPU performance of NPDQ: distance computations per query vs snapshot overlap.
#include "bench_common.h"

int main(int argc, char** argv) {
  dqmo::bench::InitJsonMode(argc, argv);
  return dqmo::bench::RunOverlapFigure(dqmo::bench::Method::kNpdq,
                            dqmo::bench::Metric::kCpu, "fig11_npdq_cpu", "Fig. 11",
                            "CPU performance of NPDQ: distance computations per query vs snapshot overlap");
}
