// Ablation A16 — overload resilience: frame deadlines, admission control,
// and the overload governor under a 4x session burst with injected slow
// reads (a saturated disk), versus the unbounded pre-admission engine.
//
// Three configurations over the same paper-scale index:
//   pre        resilient stack at 1x load — the goodput yardstick; the
//              governor must stay at level 0 (no sheds, no rejections).
//   baseline   4x burst, budget disabled, unbounded queue — the fall-over
//              mode: queue depth and submit-to-start waits grow with the
//              whole burst.
//   resilient  4x burst through the bounded queue + admission controller +
//              governor + per-frame deadlines — sheds and rejects the
//              excess explicitly, keeps waits bounded and goodput within
//              2x of pre.
//
// DQMO_CHECK_OVERLOAD=1 turns the story into hard assertions (tools/ci.sh
// does); otherwise the rows are informational.
#include <thread>

#include "bench_common.h"
#include "common/random.h"
#include "server/executor.h"
#include "server/overload.h"
#include "storage/buffer_pool.h"
#include "storage/fault.h"

namespace {

using namespace dqmo;
using namespace dqmo::bench;

/// Element-wise difference of two cumulative snapshots of one histogram:
/// the distribution of exactly the samples recorded between them. (max is
/// not differentiable; the later cumulative max is kept as an upper bound.)
HistogramSnapshot Delta(const HistogramSnapshot& before,
                        const HistogramSnapshot& after) {
  HistogramSnapshot d;
  for (int b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
    d.buckets[b] = after.buckets[b] - before.buckets[b];
  }
  d.count = after.count - before.count;
  d.sum = after.sum - before.sum;
  d.max = after.max;
  return d;
}

struct Config {
  const char* name;
  int sessions;
  bool resilient;  // Deadlines + bounded queue + admission + governor.
};

struct Outcome {
  ExecutorReport report;
  uint64_t frames_completed = 0;
  double goodput_fps = 0.0;  // Completed (served) frames per wall second.
  /// Served frames of the protected classes (interactive + normal) per
  /// wall second. The resilience contract is about *this* number: batch
  /// frames are what the governor deliberately sheds under overload, so
  /// total goodput measures the sacrifice, protected goodput the service
  /// the sacrifice buys.
  double protected_fps = 0.0;
  HistogramSnapshot session_ns;
  HistogramSnapshot queue_wait_ns;
  HistogramSnapshot frame_ns;
  uint64_t slow_reads = 0;
  int governor_level_end = 0;
};

Outcome RunConfig(Workbench* bench, const Config& cfg, int threads) {
  // Slow-read chaos: every 3rd page read — wherever it lands in whatever
  // interleaving — is served only after 200us. Deterministic count-based
  // schedule, shared by all workers (FaultInjector is thread-safe).
  FaultInjector::Options fopt;
  fopt.seed = 4242;
  fopt.slow_every_kth = 3;
  fopt.slow_read_delay_us = 200;
  FaultInjector injector(fopt);

  BufferPool pool(bench->file(), 256, /*num_shards=*/16);
  FaultyPageReader slow_reader(&pool, &injector);

  // Burst shape: long bulk sessions lead (admitted while the queue is
  // still shallow), the interactive flood lands behind them. That is the
  // shape that exercises both levers: the flood's tail is refused at
  // admission, and the governor — once the queue deepens — sheds the
  // still-running bulk sessions' frames mid-flight.
  std::vector<SessionSpec> specs;
  const int third = cfg.sessions / 3;
  for (int i = 0; i < cfg.sessions; ++i) {
    SessionSpec spec;
    spec.kind = static_cast<SessionKind>(i % 3);
    spec.seed = 4200 + static_cast<uint64_t>(i);
    spec.frames = 50;
    spec.t0 = 2.0 + 0.3 * (i % 16);
    spec.client_id = static_cast<uint64_t>(i % 4);
    if (i < third) {
      spec.priority = SessionPriority::kBatch;
      spec.frames = 150;
    } else if (i < 2 * third) {
      spec.priority = SessionPriority::kNormal;
    } else {
      spec.priority = SessionPriority::kInteractive;
    }
    if (cfg.resilient) {
      spec.frame_deadline_us =
          GetEnvInt("DQMO_FRAME_DEADLINE_US", 8000);
    }
    specs.push_back(spec);
  }

  const size_t bound = static_cast<size_t>(2 * threads);
  AdmissionOptions aopt;
  aopt.max_queue_depth = bound;
  aopt.per_client_quota = static_cast<uint64_t>(2 * threads);
  AdmissionController admission(aopt);

  OverloadGovernor::Options gopt;
  gopt.window = 32;
  gopt.overload_latency_ns = 5'000'000;  // 5 ms.
  gopt.queue_high_watermark = static_cast<size_t>(threads);
  gopt.queue_low_watermark = 1;
  gopt.recovery_windows = 2;
  OverloadGovernor governor(gopt);

  SessionScheduler::Options opt;
  opt.num_threads = threads;
  opt.reader = &slow_reader;
  opt.pool = &pool;
  if (cfg.resilient) {
    opt.max_queue = bound;
    opt.admission = &admission;
    opt.governor = &governor;
  }

  MetricsRegistry& r = MetricsRegistry::Global();
  Histogram* session_h = r.GetHistogram(
      "dqmo_exec_session_ns", "Wall time of one complete query session");
  Histogram* wait_h = r.GetHistogram(
      "dqmo_exec_queue_wait_ns",
      "Submit-to-start wait in the session thread pool");
  Histogram* frame_h = r.GetHistogram(
      "dqmo_exec_frame_ns", "Wall time of one governed session frame");
  const HistogramSnapshot session_before = session_h->Snapshot();
  const HistogramSnapshot wait_before = wait_h->Snapshot();
  const HistogramSnapshot frame_before = frame_h->Snapshot();

  Outcome out;
  out.report = SessionScheduler(bench->tree(), opt).Run(specs);
  DQMO_CHECK(out.report.status.ok());

  out.session_ns = Delta(session_before, session_h->Snapshot());
  out.queue_wait_ns = Delta(wait_before, wait_h->Snapshot());
  out.frame_ns = Delta(frame_before, frame_h->Snapshot());
  uint64_t protected_frames = 0;
  for (size_t i = 0; i < out.report.sessions.size(); ++i) {
    const SessionResult& s = out.report.sessions[i];
    out.frames_completed += s.frames_completed;
    if (specs[i].priority != SessionPriority::kBatch) {
      protected_frames += s.frames_completed;
    }
  }
  const double wall = out.report.wall_seconds;
  out.goodput_fps =
      wall > 0.0 ? static_cast<double>(out.frames_completed) / wall : 0.0;
  out.protected_fps =
      wall > 0.0 ? static_cast<double>(protected_frames) / wall : 0.0;
  out.slow_reads = injector.slow_reads();
  out.governor_level_end = governor.level();
  return out;
}

double Ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

int main(int argc, char** argv) {
  dqmo::bench::InitJsonMode(argc, argv);
  auto bench = PrepareBench();
  DQMO_CHECK(bench->file()->Publish().ok());
  const int threads = static_cast<int>(GetEnvInt("DQMO_THREADS", 4));

  std::printf("==============================================================\n");
  std::printf("Ablation A16 — overload resilience: 4x session burst + slow "
              "reads\n");
  std::printf("(%d executor threads; every 3rd read delayed 200us; "
              "resilient = deadline + bounded queue + admission + "
              "governor)\n", threads);
  std::printf("==============================================================\n");

  const Config configs[] = {
      {"pre", threads, /*resilient=*/true},
      {"baseline", 4 * threads, /*resilient=*/false},
      {"resilient", 4 * threads, /*resilient=*/true},
  };

  BenchJsonWriter json("abl_overload");
  Table table({"config", "sessions", "wall (s)", "goodput (fps)",
               "p99 wait (ms)", "p99 session (ms)", "shed", "rejected",
               "degraded", "max queue"});

  Outcome outcomes[3];
  for (int c = 0; c < 3; ++c) {
    const Config& cfg = configs[c];
    outcomes[c] = RunConfig(bench.get(), cfg, threads);
    const Outcome& o = outcomes[c];
    const ExecutorReport& rep = o.report;
    table.AddRow({cfg.name, Fmt(cfg.sessions, 0),
                  Fmt(rep.wall_seconds, 3), Fmt(o.goodput_fps, 0),
                  Fmt(Ms(o.queue_wait_ns.Percentile(99)), 1),
                  Fmt(Ms(o.session_ns.Percentile(99)), 1),
                  Fmt(static_cast<double>(rep.total_frames_shed), 0),
                  Fmt(static_cast<double>(rep.sessions_rejected), 0),
                  Fmt(static_cast<double>(rep.total_frames_degraded), 0),
                  Fmt(static_cast<double>(rep.max_queue_depth), 0)});
    json.AddRow()
        .Str("config", cfg.name)
        .Int("sessions", static_cast<uint64_t>(cfg.sessions))
        .Int("threads", static_cast<uint64_t>(threads))
        .Num("wall_seconds", rep.wall_seconds)
        .Int("frames_completed", o.frames_completed)
        .Num("goodput_fps", o.goodput_fps)
        .Num("protected_goodput_fps", o.protected_fps)
        .Num("session_p50_ms", Ms(o.session_ns.Percentile(50)))
        .Num("session_p99_ms", Ms(o.session_ns.Percentile(99)))
        .Num("queue_wait_p99_ms", Ms(o.queue_wait_ns.Percentile(99)))
        .Num("frame_p99_ms", Ms(o.frame_ns.Percentile(99)))
        .Int("max_queue_depth", rep.max_queue_depth)
        .Int("sessions_rejected", rep.sessions_rejected)
        .Int("sessions_cancelled", rep.sessions_cancelled)
        .Int("frames_shed", rep.total_frames_shed)
        .Int("frames_degraded", rep.total_frames_degraded)
        .Int("slow_reads", o.slow_reads)
        .Int("governor_level_end",
             static_cast<uint64_t>(o.governor_level_end));
  }
  table.Print();

  const Outcome& pre = outcomes[0];
  const Outcome& base = outcomes[1];
  const Outcome& res = outcomes[2];
  const double goodput_ratio =
      pre.goodput_fps > 0.0 ? res.goodput_fps / pre.goodput_fps : 0.0;
  const double protected_ratio =
      pre.protected_fps > 0.0 ? res.protected_fps / pre.protected_fps : 0.0;
  std::printf("\ngoodput under 4x overload: %s of pre-overload total, %s "
              "protected (shed %llu batch frames, rejected %llu "
              "sessions)\n",
              (Fmt(100.0 * goodput_ratio, 0) + "%").c_str(),
              (Fmt(100.0 * protected_ratio, 0) + "%").c_str(),
              static_cast<unsigned long long>(
                  res.report.total_frames_shed),
              static_cast<unsigned long long>(
                  res.report.sessions_rejected));
  std::printf("p99 submit-to-start wait: baseline %sms vs resilient %sms; "
              "max queue depth %zu vs %zu\n",
              Fmt(Ms(base.queue_wait_ns.Percentile(99)), 1).c_str(),
              Fmt(Ms(res.queue_wait_ns.Percentile(99)), 1).c_str(),
              base.report.max_queue_depth, res.report.max_queue_depth);

  if (GetEnvInt("DQMO_CHECK_OVERLOAD", 0) != 0) {
    // Shed-before-fall-over, as hard assertions.
    DQMO_CHECK(pre.report.total_frames_shed == 0);
    DQMO_CHECK(pre.report.sessions_rejected == 0);
    DQMO_CHECK(res.report.max_queue_depth <=
               static_cast<size_t>(2 * threads));
    DQMO_CHECK(base.report.max_queue_depth > res.report.max_queue_depth);
    DQMO_CHECK(res.report.total_frames_shed > 0);
    DQMO_CHECK(res.report.sessions_rejected > 0);
    DQMO_CHECK(res.queue_wait_ns.Percentile(99) <
               base.queue_wait_ns.Percentile(99));
    DQMO_CHECK(protected_ratio >= 0.5);
    std::printf("DQMO_CHECK_OVERLOAD: all overload invariants hold\n");
  }
  PrintMetricsSummary();
  return 0;
}
