// Ablation A19 — the disk-resident page store, cold cache: the paper's
// fig06/fig10 I/O counts finally get milliseconds attached. One bulk-loaded
// index is checkpointed once, then the identical seeded PDQ trajectory
// sweep runs over it through every backend:
//
//   1. Equivalence: memory vs pread vs uring (prefetch on) must produce
//      byte-identical result checksums and identical node-level read
//      counts — the backends differ only in where the bytes live.
//   2. Latency: on the pread backend under a deterministic slow-device
//      model (DiskPageFile::Options::sim_read_delay_us — every pread costs
//      D extra, served where a real device would serve it: in the caller
//      for sync reads, in a queue worker for speculative ones), frame p99
//      with the PDQ-driven prefetch on vs off. The priority queue is a
//      declared future-access list; prefetch turns it into overlapped I/O,
//      and this is the number that shows how much latency it hides.
//
// Env knobs, on top of the bench_common ones:
//   DQMO_OBJECTS=N             segments in the index (default 60000;
//                              DQMO_FULL=1 sets 1000000)
//   DQMO_DISK_TRAJ=N           trajectories per arm (default 12)
//   DQMO_DISK_FRAMES=N         frames per trajectory (default 40)
//   DQMO_SIM_READ_DELAY_US=D   modeled device read latency (default 150;
//                              0 = raw OS-cache timing, no model)
//   DQMO_PREFETCH_DEPTH=K      speculative reads in flight (default 8)
//   DQMO_CHECK_SPEEDUP=1       exit non-zero unless prefetch-on p99 beats
//                              prefetch-off by >= DQMO_MIN_SPEEDUP (the CI
//                              gate; default 1.5) and checksums match
//   DQMO_MIN_SPEEDUP=R         gate threshold (default 1.5)
#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "query/pdq.h"
#include "rtree/bulk_load.h"
#include "rtree/layout.h"
#include "rtree/rtree.h"
#include "storage/async_io.h"
#include "storage/disk_file.h"
#include "storage/page_file.h"
#include "storage/prefetch.h"

namespace {

using namespace dqmo;
using namespace dqmo::bench;

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void FoldU64(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xFF;
    *h *= kFnvPrime;
  }
}

void FoldDouble(uint64_t* h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  FoldU64(h, bits);
}

MotionSegment RandomSegmentAt(Rng* rng, ObjectId oid) {
  const double t0 = rng->Uniform(0.0, 100.0);
  const double dt = rng->Uniform(0.01, 2.0);
  StSegment seg(Vec(rng->Uniform(0.0, 100.0), rng->Uniform(0.0, 100.0)),
                Vec(rng->Uniform(0.0, 100.0), rng->Uniform(0.0, 100.0)),
                Interval(t0, std::min(100.0, t0 + dt)));
  MotionSegment m(oid, seg);
  m.seg = QuantizeStored(m.seg);
  return m;
}

QueryTrajectory MakeTrajectory(Rng* rng) {
  std::vector<KeySnapshot> keys;
  Vec pos(rng->Uniform(20, 80), rng->Uniform(20, 80));
  double t = rng->Uniform(5, 20);
  keys.emplace_back(t, Box::Centered(pos, 12.0));
  for (int j = 0; j < 6; ++j) {
    t += rng->Uniform(2.0, 5.0);
    pos = Vec(std::clamp(pos[0] + rng->Uniform(-8, 8), 5.0, 95.0),
              std::clamp(pos[1] + rng->Uniform(-8, 8), 5.0, 95.0));
    keys.emplace_back(t, Box::Centered(pos, 12.0));
  }
  return QueryTrajectory::Make(std::move(keys)).value();
}

struct ArmResult {
  std::string label;
  uint64_t checksum = kFnvOffset;
  uint64_t node_reads = 0;
  uint64_t objects = 0;
  IoStats io;
  std::vector<double> frame_us;

  double Quantile(double q) const {
    if (frame_us.empty()) return 0.0;
    std::vector<double> sorted = frame_us;
    std::sort(sorted.begin(), sorted.end());
    const size_t i = static_cast<size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(i, sorted.size() - 1)];
  }
};

/// The identical seeded trajectory sweep every arm runs: per-frame wall
/// time into `out->frame_us`, result bytes folded into `out->checksum`.
void RunSweep(RTree* tree, PageReader* reader, Prefetcher* prefetcher,
              int trajectories, int frames, ArmResult* out) {
  QueryStats stats;
  Rng rng(2002);
  for (int q = 0; q < trajectories; ++q) {
    const QueryTrajectory trajectory = MakeTrajectory(&rng);
    PredictiveDynamicQuery::Options opt;
    opt.reader = reader;
    opt.prefetcher = prefetcher;
    auto pdq = PredictiveDynamicQuery::Make(tree, trajectory, opt);
    DQMO_CHECK(pdq.ok());
    const Interval span = trajectory.TimeSpan();
    const double dt = span.length() / frames;
    double prev = span.lo;
    for (int i = 1; i <= frames; ++i) {
      const double t = span.lo + i * dt;
      const auto start = std::chrono::steady_clock::now();
      auto frame = (*pdq)->Frame(prev, t);
      DQMO_CHECK(frame.ok());
      const auto end = std::chrono::steady_clock::now();
      out->frame_us.push_back(
          std::chrono::duration<double, std::micro>(end - start).count());
      FoldU64(&out->checksum, static_cast<uint64_t>(i));
      for (const PdqResult& r : *frame) {
        FoldU64(&out->checksum, r.motion.oid);
        FoldDouble(&out->checksum, r.motion.seg.time.lo);
        ++out->objects;
      }
      prev = t;
    }
    stats += (*pdq)->stats();
    // A trajectory's declared future dies with it.
    if (prefetcher != nullptr) prefetcher->CancelPending();
  }
  if (prefetcher != nullptr) prefetcher->Quiesce();
  out->node_reads = stats.node_reads + stats.leaf_reads;
}

/// One backend arm over the shared checkpoint image.
ArmResult RunDiskArm(const std::string& label, const std::string& image,
                     const std::string& live, IoBackend backend,
                     bool prefetch, uint64_t sim_delay_us, int trajectories,
                     int frames) {
  ArmResult out;
  out.label = label;
  DiskPageFile::Options options;
  options.backend = backend;
  options.sim_read_delay_us = sim_delay_us;
  auto disk = DiskPageFile::CreateFromImage(live, image, options);
  DQMO_CHECK(disk.ok());
  std::unique_ptr<Prefetcher> prefetcher;
  PageReader* reader = disk->get();
  if (prefetch) {
    Prefetcher::Options popt;
    popt.depth = PrefetchDepthFromEnv();
    prefetcher = std::make_unique<Prefetcher>(disk->get(), popt);
    reader = prefetcher.get();
  }
  auto tree = RTree::Open(disk->get());
  DQMO_CHECK(tree.ok());
  RunSweep(tree->get(), reader, prefetcher.get(), trajectories, frames,
           &out);
  out.io = (*disk)->stats();
  return out;
}

ArmResult RunMemoryArm(const std::string& image, int trajectories,
                       int frames) {
  ArmResult out;
  out.label = "memory";
  PageFile file;
  DQMO_CHECK(file.LoadFrom(image).ok());
  auto tree = RTree::Open(&file);
  DQMO_CHECK(tree.ok());
  RunSweep(tree->get(), &file, nullptr, trajectories, frames, &out);
  out.io = file.stats();
  return out;
}

int Run(int argc, char** argv) {
  InitJsonMode(argc, argv);
  bool check = GetEnvBool("DQMO_CHECK_SPEEDUP", false);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") check = true;
  }
  const bool full = GetEnvInt("DQMO_FULL", 0) != 0;
  const int segments = static_cast<int>(
      GetEnvInt("DQMO_OBJECTS", full ? 1000000 : 60000));
  const int trajectories =
      static_cast<int>(GetEnvInt("DQMO_DISK_TRAJ", 12));
  const int frames = static_cast<int>(GetEnvInt("DQMO_DISK_FRAMES", 40));
  const uint64_t sim_delay_us =
      static_cast<uint64_t>(GetEnvInt("DQMO_SIM_READ_DELAY_US", 150));
  const double min_speedup = GetEnvDouble("DQMO_MIN_SPEEDUP", 1.5);

  std::printf("==============================================================\n");
  std::printf("A19 — disk-resident store, cold-cache: prefetch-hidden read "
              "latency\n");
  std::printf("(%d segments, %d trajectories x %d frames, modeled device "
              "read latency %llu us)\n",
              segments, trajectories, frames,
              static_cast<unsigned long long>(sim_delay_us));
  std::printf("==============================================================\n");

  // One index, one checkpoint image — every arm reads the same bytes.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "dqmo_abl_disk";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string image = (dir / "index.pgf").string();
  {
    PageFile file;
    Rng rng(7);
    std::vector<MotionSegment> data;
    data.reserve(static_cast<size_t>(segments));
    for (int i = 0; i < segments; ++i) {
      data.push_back(RandomSegmentAt(&rng, static_cast<ObjectId>(i)));
    }
    auto tree = BulkLoad(&file, std::move(data), BulkLoadOptions());
    DQMO_CHECK(tree.ok());
    DQMO_CHECK(file.SaveTo(image).ok());
    std::printf("# index: %zu pages (%.1f MiB) at %s\n", file.num_pages(),
                static_cast<double>(file.num_pages()) * kPageSize /
                    (1024.0 * 1024.0),
                image.c_str());
  }

  BenchJsonWriter json("abl_disk");

  // Phase 1 — backend equivalence (no latency model; correctness only).
  const ArmResult mem = RunMemoryArm(image, trajectories, frames);
  const ArmResult pread_eq =
      RunDiskArm("pread", image, (dir / "eq_pread.live").string(),
                 IoBackend::kPread, /*prefetch=*/true, /*sim=*/0,
                 trajectories, frames);
  const ArmResult uring_eq =
      RunDiskArm(UringAvailable() ? "uring" : "uring(->thread)", image,
                 (dir / "eq_uring.live").string(), IoBackend::kUring,
                 /*prefetch=*/true, /*sim=*/0, trajectories, frames);
  bool checksums_ok = true;
  for (const ArmResult* arm : {&pread_eq, &uring_eq}) {
    const bool same = arm->checksum == mem.checksum &&
                      arm->node_reads == mem.node_reads;
    checksums_ok = checksums_ok && same;
    std::printf("# equivalence %-16s checksum %016llx node reads %-8llu %s\n",
                arm->label.c_str(),
                static_cast<unsigned long long>(arm->checksum),
                static_cast<unsigned long long>(arm->node_reads),
                same ? "== memory" : "!= memory  <-- MISMATCH");
    JsonObject& row = json.AddRow();
    row.Str("phase", "equivalence")
        .Str("backend", arm->label)
        .Str("checksum", StrFormat("%016llx", static_cast<unsigned long long>(arm->checksum)))
        .Int("node_reads", arm->node_reads)
        .Int("physical_reads", arm->io.physical_reads.load())
        .Int("prefetch_issued", arm->io.prefetch_issued.load())
        .Int("prefetch_hits", arm->io.prefetch_hits.load())
        .Int("prefetch_wasted", arm->io.prefetch_wasted.load())
        .Int("match", same ? 1 : 0);
  }

  // Phase 2 — cold-cache frame latency, prefetch off vs on (pread).
  const ArmResult off =
      RunDiskArm("pread, prefetch off", image,
                 (dir / "lat_off.live").string(), IoBackend::kPread,
                 /*prefetch=*/false, sim_delay_us, trajectories, frames);
  const ArmResult on =
      RunDiskArm("pread, prefetch on", image,
                 (dir / "lat_on.live").string(), IoBackend::kPread,
                 /*prefetch=*/true, sim_delay_us, trajectories, frames);
  const bool latency_identical =
      off.checksum == on.checksum && on.checksum == mem.checksum;
  checksums_ok = checksums_ok && latency_identical;

  Table table({"config", "frames", "p50 us", "p99 us", "reads",
               "pf issued/hit/wasted"});
  for (const ArmResult* arm : {&off, &on}) {
    table.AddRow(
        {arm->label, std::to_string(arm->frame_us.size()),
         Fmt(arm->Quantile(0.5)), Fmt(arm->Quantile(0.99)),
         std::to_string(arm->io.physical_reads.load()),
         std::to_string(arm->io.prefetch_issued.load()) + "/" +
             std::to_string(arm->io.prefetch_hits.load()) + "/" +
             std::to_string(arm->io.prefetch_wasted.load())});
    JsonObject& row = json.AddRow();
    row.Str("phase", "latency")
        .Str("config", arm->label)
        .Num("p50_us", arm->Quantile(0.5))
        .Num("p99_us", arm->Quantile(0.99))
        .Int("frames", arm->frame_us.size())
        .Int("physical_reads", arm->io.physical_reads.load())
        .Int("prefetch_issued", arm->io.prefetch_issued.load())
        .Int("prefetch_hits", arm->io.prefetch_hits.load())
        .Int("prefetch_wasted", arm->io.prefetch_wasted.load())
        .Str("checksum", StrFormat("%016llx", static_cast<unsigned long long>(arm->checksum)));
  }
  table.Print();

  const double p99_off = off.Quantile(0.99);
  const double p99_on = on.Quantile(0.99);
  const double speedup = p99_on > 0 ? p99_off / p99_on : 0.0;
  const uint64_t issued = on.io.prefetch_issued.load();
  const uint64_t hits = on.io.prefetch_hits.load();
  std::printf("# prefetch p99 speedup: %.2fx (off %.0f us -> on %.0f us), "
              "hit rate %.0f%%\n",
              speedup, p99_off, p99_on,
              issued > 0 ? 100.0 * static_cast<double>(hits) /
                               static_cast<double>(issued)
                         : 0.0);
  std::printf("# checksums across all arms: %s\n",
              checksums_ok ? "byte-identical" : "MISMATCH");
  JsonObject& summary = json.AddRow();
  summary.Str("phase", "summary")
      .Num("p99_speedup", speedup)
      .Num("sim_read_delay_us", static_cast<double>(sim_delay_us))
      .Int("checksums_identical", checksums_ok ? 1 : 0);

  std::filesystem::remove_all(dir);
  if (check) {
    if (!checksums_ok) {
      std::printf("# CHECK FAILED: backend checksums differ\n");
      return 1;
    }
    if (speedup < min_speedup) {
      std::printf("# CHECK FAILED: p99 speedup %.2fx < required %.2fx\n",
                  speedup, min_speedup);
      return 1;
    }
    std::printf("# CHECK PASSED: %.2fx >= %.2fx, checksums identical\n",
                speedup, min_speedup);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
