// Ablation A2 — can a server-side LRU buffer rescue the naive approach?
// (Sect. 4 argues no: per-session buffers shrink server capacity, and the
// client still receives the same objects again every frame.) This bench
// runs the naive per-frame evaluation through LRU pools of increasing
// capacity and compares (a) physical disk reads and (b) objects shipped to
// the client per subsequent query, against PDQ without any buffer.
#include "bench_common.h"
#include "common/random.h"
#include "query/pdq.h"
#include "storage/buffer_pool.h"
#include "workload/query_generator.h"

int main() {
  using namespace dqmo;
  using namespace dqmo::bench;
  auto bench = PrepareBench();
  const int trajectories = TrajectoriesFromEnv(30);
  PrintPreamble("Ablation A2",
                "naive + server LRU buffer vs PDQ (Sect. 4 buffering "
                "argument), overlap 90%",
                trajectories);

  const std::vector<size_t> capacities = {16, 64, 256, 1024};
  Table table({"configuration", "physical reads/query",
               "objects shipped/query", "buffer pages/session"});

  QueryWorkloadOptions qopt;
  qopt.overlap = 0.9;

  // Naive through LRU pools.
  for (size_t capacity : capacities) {
    Rng rng(777);
    double reads = 0.0;
    double shipped = 0.0;
    int64_t queries = 0;
    for (int traj = 0; traj < trajectories; ++traj) {
      Rng traj_rng = rng.Fork();
      auto workload = GenerateDynamicQuery(qopt, &traj_rng);
      DQMO_CHECK(workload.ok());
      BufferPool pool(bench->file(), capacity);  // Fresh pool per session.
      for (int i = 0; i < workload->num_frames(); ++i) {
        QueryStats stats;
        auto result =
            bench->tree()->RangeSearch(workload->Frame(i), &stats, &pool);
        DQMO_CHECK(result.ok());
        if (i > 0) {  // Subsequent queries only.
          reads += static_cast<double>(stats.node_reads);
          shipped += static_cast<double>(result->size());
          ++queries;
        }
      }
    }
    table.AddRow({"naive + LRU(" + std::to_string(capacity) + ")",
                  Fmt(reads / static_cast<double>(queries), 2),
                  Fmt(shipped / static_cast<double>(queries)),
                  std::to_string(capacity)});
  }

  // PDQ, no buffer.
  {
    Rng rng(777);
    double reads = 0.0;
    double shipped = 0.0;
    int64_t queries = 0;
    for (int traj = 0; traj < trajectories; ++traj) {
      Rng traj_rng = rng.Fork();
      auto workload = GenerateDynamicQuery(qopt, &traj_rng);
      DQMO_CHECK(workload.ok());
      auto pdq = PredictiveDynamicQuery::Make(bench->tree(),
                                              workload->trajectory);
      DQMO_CHECK(pdq.ok());
      for (int i = 0; i < workload->num_frames(); ++i) {
        const QueryStats before = (*pdq)->stats();
        auto frame = (*pdq)->Frame(
            workload->frame_times[static_cast<size_t>(i)],
            workload->frame_times[static_cast<size_t>(i) + 1]);
        DQMO_CHECK(frame.ok());
        if (i > 0) {
          const QueryStats delta = (*pdq)->stats() - before;
          reads += static_cast<double>(delta.node_reads);
          shipped += static_cast<double>(frame->size());
          ++queries;
        }
      }
    }
    table.AddRow({"PDQ (no buffer)",
                  Fmt(reads / static_cast<double>(queries), 2),
                  Fmt(shipped / static_cast<double>(queries)), "0"});
  }
  table.Print();
  std::printf(
      "\nEven when a large per-session LRU absorbs most disk reads, the\n"
      "naive server re-ships every visible object each frame; PDQ ships\n"
      "each object once with its disappearance time.\n");
  return 0;
}
