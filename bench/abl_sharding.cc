// Ablation A17 — sharded scale-out: node reads and frame-latency tails vs
// shard count over one large bulk-loaded population.
//
// For each shard count the same mixed session sweep (PDQ handoff, NPDQ,
// moving kNN) runs through the ShardRouter against a freshly bulk-loaded
// N-shard engine. Per-session merged checksums MUST be identical across
// every shard count — the bench aborts on the first mismatch, so a
// committed BENCH_abl_sharding.json is itself a differential certificate.
// The perf story: the NPDQ root-bounds prune and the smaller per-shard
// trees cut node reads and the p99 frame latency as shards are added,
// until fan-out overhead (kNN searches every shard) catches up.
//
// Scale knobs:
//   DQMO_OBJECTS=N   population size (default 200000; the committed JSON
//                    was produced with DQMO_OBJECTS=1000000)
//   DQMO_FULL=1      shorthand for 1M objects
//   DQMO_SESSIONS=N  sessions per shard count (default 12, 1/3 each kind)
//   DQMO_FRAMES=N    frames per session (default 15)
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/env.h"
#include "server/router.h"
#include "server/shard.h"
#include "workload/data_generator.h"

namespace {

using namespace dqmo;
using namespace dqmo::bench;

const int kShardCounts[] = {1, 4, 16, 64};

std::vector<SessionSpec> MakeSpecs(int sessions, int frames) {
  const SessionKind kinds[] = {SessionKind::kSession, SessionKind::kNpdq,
                               SessionKind::kKnn};
  std::vector<SessionSpec> specs;
  for (int i = 0; i < sessions; ++i) {
    SessionSpec spec;
    spec.kind = kinds[i % 3];
    spec.seed = 7000 + static_cast<uint64_t>(i);
    spec.frames = frames;
    // Stay well inside the generated horizon so every frame has live
    // segments to deliver.
    spec.t0 = 0.2 + 0.02 * i;
    spec.record_frame_latency = true;
    specs.push_back(spec);
  }
  return specs;
}

uint64_t PercentileUs(std::vector<uint64_t>* latencies, double p) {
  if (latencies->empty()) return 0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(latencies->size() - 1) / 100.0 + 0.5);
  return (*latencies)[std::min(idx, latencies->size() - 1)];
}

struct Point {
  int shards = 0;
  uint64_t node_reads = 0;
  uint64_t decoded_hits = 0;
  uint64_t objects = 0;
  uint64_t frame_p50_us = 0;
  uint64_t frame_p99_us = 0;
  double wall_seconds = 0.0;
  std::vector<uint64_t> checksums;
};

int Main() {
  const bool full = GetEnvInt("DQMO_FULL", 0) != 0;
  const int objects = static_cast<int>(
      GetEnvInt("DQMO_OBJECTS", full ? 1'000'000 : 200'000));
  const int sessions = static_cast<int>(GetEnvInt("DQMO_SESSIONS", 12));
  const int frames = static_cast<int>(GetEnvInt("DQMO_FRAMES", 15));

  DataGeneratorOptions dopt;
  dopt.num_objects = objects;
  dopt.horizon = 2.0;  // ~2 segments per object: population >= 2x objects.
  dopt.seed = 42;
  auto data = GenerateMotionData(dopt);
  DQMO_CHECK(data.ok());
  std::printf("# population: %d objects, %zu segments\n", objects,
              data->size());

  const std::vector<SessionSpec> specs = MakeSpecs(sessions, frames);
  std::vector<Point> points;

  for (const int n : kShardCounts) {
    ShardedEngineOptions sopt;
    sopt.num_shards = n;
    auto engine = ShardedEngine::Create(sopt);
    DQMO_CHECK(engine.ok());
    DQMO_CHECK((*engine)->BulkLoad(*data).ok());

    const ExecutorReport report = ShardRouter(engine->get()).Run(specs);
    DQMO_CHECK(report.status.ok());

    Point pt;
    pt.shards = n;
    pt.node_reads = report.total_stats.node_reads.load();
    pt.decoded_hits = report.total_stats.decoded_hits.load();
    pt.objects = report.total_objects;
    pt.wall_seconds = report.wall_seconds;
    std::vector<uint64_t> latencies;
    for (const SessionResult& s : report.sessions) {
      pt.checksums.push_back(s.checksum);
      latencies.insert(latencies.end(), s.frame_latencies_us.begin(),
                       s.frame_latencies_us.end());
    }
    pt.frame_p50_us = PercentileUs(&latencies, 50.0);
    pt.frame_p99_us = PercentileUs(&latencies, 99.0);
    points.push_back(std::move(pt));
  }

  // The differential gate: every shard count must deliver byte-identical
  // per-session results. A perf table over wrong answers is worthless.
  for (size_t i = 1; i < points.size(); ++i) {
    DQMO_CHECK(points[i].checksums == points[0].checksums);
  }
  std::printf("# checksums: identical across shard counts %d..%d (%zu "
              "sessions)\n",
              kShardCounts[0], points.back().shards,
              points[0].checksums.size());

  BenchJsonWriter json("abl_sharding");
  Table table({"shards", "node reads", "decoded hits", "objects",
               "frame p50 (us)", "frame p99 (us)", "wall (s)"});
  for (const Point& pt : points) {
    table.AddRow({std::to_string(pt.shards), std::to_string(pt.node_reads),
                  std::to_string(pt.decoded_hits),
                  std::to_string(pt.objects),
                  std::to_string(pt.frame_p50_us),
                  std::to_string(pt.frame_p99_us), Fmt(pt.wall_seconds, 2)});
    JsonObject& row = json.AddRow();
    row.Int("shards", static_cast<uint64_t>(pt.shards))
        .Int("objects_population", static_cast<uint64_t>(objects))
        .Int("segments", static_cast<uint64_t>(data->size()))
        .Int("sessions", static_cast<uint64_t>(sessions))
        .Int("node_reads", pt.node_reads)
        .Int("decoded_hits", pt.decoded_hits)
        .Int("objects_returned", pt.objects)
        .Int("frame_p50_us", pt.frame_p50_us)
        .Int("frame_p99_us", pt.frame_p99_us)
        .Num("wall_seconds", pt.wall_seconds)
        .Int("checksum_fold", [&pt] {
          uint64_t fold = 1469598103934665603ULL;
          for (const uint64_t c : pt.checksums) {
            fold ^= c;
            fold *= 1099511628211ULL;
          }
          return fold;
        }());
  }
  table.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dqmo::bench::InitJsonMode(argc, argv);
  return Main();
}
