// Fig. 8 of the paper: Impact of query size on I/O performance of subsequent queries (PDQ).
#include "bench_common.h"

int main() {
  return dqmo::bench::RunWindowFigure(dqmo::bench::Method::kPdq,
                            dqmo::bench::Metric::kIo, "Fig. 8",
                            "Impact of query size on I/O performance of subsequent queries (PDQ)");
}
