// Fig. 8 of the paper: Impact of query size on I/O performance of subsequent queries (PDQ).
#include "bench_common.h"

int main(int argc, char** argv) {
  dqmo::bench::InitJsonMode(argc, argv);
  return dqmo::bench::RunWindowFigure(dqmo::bench::Method::kPdq,
                            dqmo::bench::Metric::kIo, "fig08_pdq_size_io", "Fig. 8",
                            "Impact of query size on I/O performance of subsequent queries (PDQ)");
}
