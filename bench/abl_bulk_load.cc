// Ablation A6 — index construction: one-by-one insertion (as the paper
// builds its index) vs STR bulk loading. google-benchmark timings for the
// build plus a post-build query-cost counter, across dataset sizes.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "workload/data_generator.h"

namespace {

using namespace dqmo;

std::vector<MotionSegment> DataFor(int64_t objects) {
  DataGeneratorOptions options;
  options.num_objects = static_cast<int>(objects);
  options.horizon = 20.0;
  options.seed = 99;
  auto data = GenerateMotionData(options);
  return std::move(data).value();
}

/// Average reads per mid-sized snapshot query over the built tree.
double QueryCost(RTree* tree) {
  Rng rng(123);
  QueryStats stats;
  for (int i = 0; i < 50; ++i) {
    const double x = rng.Uniform(0, 90);
    const double y = rng.Uniform(0, 90);
    const double t = rng.Uniform(0, 19);
    const StBox q(Box(Interval(x, x + 10), Interval(y, y + 10)),
                  Interval(t, t + 1.0));
    auto result = tree->RangeSearch(q, &stats);
    benchmark::DoNotOptimize(result);
  }
  return static_cast<double>(stats.node_reads) / 50.0;
}

void BM_InsertionBuild(benchmark::State& state) {
  const auto data = DataFor(state.range(0));
  double query_cost = 0.0;
  size_t nodes = 0;
  for (auto _ : state) {
    PageFile file;
    auto tree = RTree::Create(&file, RTree::Options());
    for (const auto& m : data) {
      benchmark::DoNotOptimize(tree.value()->Insert(m));
    }
    query_cost = QueryCost(tree.value().get());
    nodes = tree.value()->num_nodes();
  }
  state.counters["segments"] = static_cast<double>(data.size());
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["reads_per_query"] = query_cost;
}

void BM_StrBulkLoad(benchmark::State& state) {
  const auto data = DataFor(state.range(0));
  double query_cost = 0.0;
  size_t nodes = 0;
  for (auto _ : state) {
    PageFile file;
    BulkLoadOptions options;
    auto tree = BulkLoad(&file, data, options);
    query_cost = QueryCost(tree.value().get());
    nodes = tree.value()->num_nodes();
  }
  state.counters["segments"] = static_cast<double>(data.size());
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["reads_per_query"] = query_cost;
}

}  // namespace

BENCHMARK(BM_InsertionBuild)->Arg(200)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StrBulkLoad)->Arg(200)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
