// Fig. 13 of the paper: Impact of query range on CPU performance of subsequent queries (NPDQ).
#include "bench_common.h"

int main(int argc, char** argv) {
  dqmo::bench::InitJsonMode(argc, argv);
  return dqmo::bench::RunWindowFigure(dqmo::bench::Method::kNpdq,
                            dqmo::bench::Metric::kCpu, "fig13_npdq_size_cpu", "Fig. 13",
                            "Impact of query range on CPU performance of subsequent queries (NPDQ)");
}
