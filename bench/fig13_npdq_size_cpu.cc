// Fig. 13 of the paper: Impact of query range on CPU performance of subsequent queries (NPDQ).
#include "bench_common.h"

int main() {
  return dqmo::bench::RunWindowFigure(dqmo::bench::Method::kNpdq,
                            dqmo::bench::Metric::kCpu, "Fig. 13",
                            "Impact of query range on CPU performance of subsequent queries (NPDQ)");
}
