// Ablation A11 — NSI vs PSI (Sect. 2 / 3.2): the paper uses Native Space
// Indexing because "NSI outperforms PSI, because of the loss of locality
// associated with PSI". This bench rebuilds that comparison: the same
// motion workload indexed both ways, probed with snapshot range queries of
// the paper's window sizes and several temporal extents.
//
// Layout note: PSI internal entries here carry 2d parametric dimensions in
// the shared node format (fanout 78 at d = 2 vs NSI's 113); a bespoke PSI
// layout would narrow but not close the gap — the dominant effect is that
// spatially collocated fast/slow movers land far apart in velocity space.
#include "bench_common.h"
#include "common/random.h"
#include "psi/psi.h"
#include "workload/data_generator.h"

int main() {
  using namespace dqmo;
  using namespace dqmo::bench;
  DataGeneratorOptions data_options;
  data_options.num_objects =
      static_cast<int>(GetEnvInt("DQMO_OBJECTS", 2000));
  data_options.horizon = 50.0;
  auto data = GenerateMotionData(data_options);
  DQMO_CHECK(data.ok());

  PageFile nsi_file;
  auto nsi = RTree::Create(&nsi_file, RTree::Options());
  DQMO_CHECK(nsi.ok());
  PageFile psi_file;
  auto psi = PsiIndex::Create(&psi_file, PsiIndex::Options());
  DQMO_CHECK(psi.ok());
  for (const auto& m : *data) {
    DQMO_CHECK_OK((*nsi)->Insert(m));
    DQMO_CHECK_OK((*psi)->Insert(m));
  }
  std::printf("# %zu segments; NSI: %zu nodes (fanout %d/%d), PSI: %zu "
              "nodes (fanout %d/%d)\n",
              data->size(), (*nsi)->num_nodes(),
              (*nsi)->internal_capacity(), (*nsi)->leaf_capacity(),
              (*psi)->tree().num_nodes(), (*psi)->tree().internal_capacity(),
              (*psi)->tree().leaf_capacity());
  PrintPreamble("Ablation A11",
                "NSI vs PSI: disk accesses per snapshot range query", 200);

  Table table({"window", "time extent", "NSI reads", "PSI reads",
               "PSI/NSI", "results"});
  Rng rng(2024);
  for (double window : PaperWindows()) {
    for (double dt : {0.1, 2.0, 10.0}) {
      QueryStats nsi_stats;
      QueryStats psi_stats;
      double results = 0.0;
      const int queries = 200;
      for (int q = 0; q < queries; ++q) {
        const double x = rng.Uniform(0, 100 - window);
        const double y = rng.Uniform(0, 100 - window);
        const double t = rng.Uniform(0, 50 - dt);
        const StBox query(
            Box(Interval(x, x + window), Interval(y, y + window)),
            Interval(t, t + dt));
        auto a = (*nsi)->RangeSearch(query, &nsi_stats);
        auto b = (*psi)->RangeSearch(query, &psi_stats);
        DQMO_CHECK(a.ok());
        DQMO_CHECK(b.ok());
        results += static_cast<double>(a->size());
      }
      const double nr =
          static_cast<double>(nsi_stats.node_reads) / queries;
      const double pr =
          static_cast<double>(psi_stats.node_reads) / queries;
      table.AddRow({Fmt(window, 0) + "x" + Fmt(window, 0), Fmt(dt),
                    Fmt(nr, 1), Fmt(pr, 1), Fmt(pr / nr, 2) + "x",
                    Fmt(results / queries, 1)});
    }
  }
  table.Print();
  return 0;
}
