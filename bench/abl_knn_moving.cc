// Ablation A7 — the moving-kNN fence (paper future-work item (i)): a
// moving observer repeatedly asks for its k nearest objects; the fence
// answers most instants from the cached candidate set with zero disk
// accesses. Reports reads per instant vs fresh best-first searches, by
// query speed.
#include "bench_common.h"
#include "common/random.h"
#include "query/knn.h"

int main() {
  using namespace dqmo;
  using namespace dqmo::bench;
  auto bench = PrepareBench();
  const int steps = static_cast<int>(GetEnvInt("DQMO_KNN_STEPS", 2000));
  PrintPreamble("Ablation A7",
                "moving-kNN fence vs fresh best-first searches (k=10, dt "
                "0.01)",
                steps);

  Table table({"query speed", "fence reads/step", "fresh reads/step",
               "cache answer rate", "speedup"});
  for (double speed : {0.0, 0.5, 2.0, 8.0}) {
    MovingKnnQuery::Options options;
    options.discontinuity_margin = 1e-3;  // Float32 quantization slack.
    MovingKnnQuery moving(bench->tree(), 10, options);
    QueryStats fresh;
    const double t0 = 20.0;
    const double dt = 0.01;
    for (int i = 0; i < steps; ++i) {
      const double t = t0 + i * dt;
      const Vec point(20.0 + speed * i * dt, 50.0);
      DQMO_CHECK(moving.At(t, point).ok());
      DQMO_CHECK(KnnAt(*bench->tree(), point, t, 10, &fresh).ok());
    }
    const double fence_reads =
        static_cast<double>(moving.stats().node_reads) / steps;
    const double fresh_reads =
        static_cast<double>(fresh.node_reads) / steps;
    table.AddRow(
        {Fmt(speed) + " u/t", Fmt(fence_reads, 3), Fmt(fresh_reads, 2),
         Fmt(100.0 * static_cast<double>(moving.cache_answers()) / steps) +
             "%",
         Fmt(fresh_reads / std::max(1e-9, fence_reads)) + "x"});
  }
  table.Print();
  return 0;
}
