// Ablation A12 — node split policy: Guttman's quadratic split (the paper's
// setup) vs an R*-style margin/overlap split (the paper's reference [2]).
// Compares build cost proxies (node count, build time) and query I/O on
// the same workload, for naive snapshots and PDQ.
#include <chrono>

#include "bench_common.h"
#include "common/random.h"
#include "query/pdq.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"

namespace {

using namespace dqmo;
using namespace dqmo::bench;

struct BuildResult {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<RTree> tree;
  double build_seconds = 0.0;
};

BuildResult Build(const std::vector<MotionSegment>& data,
                  SplitPolicy policy) {
  BuildResult r;
  r.file = std::make_unique<PageFile>();
  RTree::Options options;
  options.split_policy = policy;
  auto tree = RTree::Create(r.file.get(), options);
  DQMO_CHECK(tree.ok());
  r.tree = std::move(tree).value();
  const auto begin = std::chrono::steady_clock::now();
  for (const auto& m : data) DQMO_CHECK_OK(r.tree->Insert(m));
  r.build_seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - begin)
                        .count();
  return r;
}

}  // namespace

int main() {
  DataGeneratorOptions data_options;
  data_options.num_objects =
      static_cast<int>(GetEnvInt("DQMO_OBJECTS", 2000));
  data_options.horizon = 50.0;
  auto data = GenerateMotionData(data_options);
  DQMO_CHECK(data.ok());
  const int trajectories = TrajectoriesFromEnv(30);
  PrintPreamble("Ablation A12",
                "split policy: Guttman quadratic vs R*-style (same "
                "workload, window 8x8, overlap 90%)",
                trajectories);

  Table table({"policy", "build s", "nodes", "naive reads/query",
               "PDQ subs reads/query"});
  for (SplitPolicy policy :
       {SplitPolicy::kQuadratic, SplitPolicy::kRstar}) {
    BuildResult built = Build(*data, policy);
    Rng rng(606);
    QueryWorkloadOptions qopt;
    qopt.horizon = 50.0;
    qopt.overlap = 0.9;
    double naive_reads = 0.0;
    double pdq_reads = 0.0;
    int64_t naive_queries = 0;
    int64_t pdq_queries = 0;
    for (int traj = 0; traj < trajectories; ++traj) {
      Rng traj_rng = rng.Fork();
      auto workload = GenerateDynamicQuery(qopt, &traj_rng);
      DQMO_CHECK(workload.ok());
      QueryStats stats;
      for (int i = 0; i < workload->num_frames(); ++i) {
        DQMO_CHECK(
            built.tree->RangeSearch(workload->Frame(i), &stats).ok());
        ++naive_queries;
      }
      naive_reads += static_cast<double>(stats.node_reads);
      auto pdq =
          PredictiveDynamicQuery::Make(built.tree.get(),
                                       workload->trajectory);
      DQMO_CHECK(pdq.ok());
      for (int i = 0; i < workload->num_frames(); ++i) {
        DQMO_CHECK(
            (*pdq)
                ->Frame(workload->frame_times[static_cast<size_t>(i)],
                        workload->frame_times[static_cast<size_t>(i) + 1])
                .ok());
        if (i > 0) ++pdq_queries;
      }
      pdq_reads += static_cast<double>((*pdq)->stats().node_reads);
    }
    table.AddRow(
        {policy == SplitPolicy::kQuadratic ? "quadratic (paper)" : "R*",
         Fmt(built.build_seconds, 2), std::to_string(built.tree->num_nodes()),
         Fmt(naive_reads / static_cast<double>(naive_queries), 2),
         Fmt(pdq_reads / static_cast<double>(pdq_queries), 3)});
  }
  table.Print();
  return 0;
}
