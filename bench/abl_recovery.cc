// Ablation A14 — durability: WAL append overhead and recovery time.
//
// Part 1: what the write-ahead log costs at insert time. The same seeded
// insert stream is timed three ways: plain in-memory RTree::Insert (the
// pre-durability baseline), WAL attached with group commit (records buffer,
// one fsync per batch — the TreeGate handover pattern), and WAL with
// sync-each-insert (one fsync per acknowledgment, the latency floor a
// strict-durability service pays). Reported per insert with overhead
// percentages against the baseline, plus the IoStats wal_appends/wal_syncs
// counters so the A13/A14 numbers stay comparable across PRs.
//
// Part 2: what recovery costs as the WAL tail grows. A checkpoint image of
// the base index is written once; then for each tail length K, K insert
// records are appended beyond the checkpoint and DurableIndex::Open is
// timed cold — image load + scan + redo replay. Reported per tail length
// with replay throughput.
//
// CI-size by default (DQMO_RECOVERY_INSERTS=2000); DQMO_FULL=1 scales the
// stream and tails by 10x. Files live under TMPDIR (default /tmp), so on a
// tmpfs the fsync figures are an optimistic floor — the *relative* overhead
// of append vs sync is the comparable signal.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "server/durability.h"
#include "storage/wal.h"

namespace {

using namespace dqmo;
using namespace dqmo::bench;

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::string TmpPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

/// Deterministic insert stream shared by every timed mode.
std::vector<MotionSegment> MakeStream(int n) {
  Rng rng(0xA14u);
  std::vector<MotionSegment> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double t0 = rng.Uniform(0, 95);
    StSegment seg(Vec(rng.Uniform(0, 100), rng.Uniform(0, 100)),
                  Vec(rng.Uniform(0, 100), rng.Uniform(0, 100)),
                  Interval(t0, t0 + rng.Uniform(0.5, 5.0)));
    out.emplace_back(static_cast<ObjectId>(i + 1), seg);
  }
  return out;
}

struct InsertCost {
  double seconds = 0.0;
  uint64_t wal_appends = 0;
  uint64_t wal_syncs = 0;
};

/// Times the stream into a fresh in-memory tree, optionally WAL-attached.
/// `batch` <= 0 means no WAL; 1 means sync-each-insert; larger means group
/// commit with one Sync per `batch` inserts.
InsertCost TimeInserts(const std::vector<MotionSegment>& stream, int batch) {
  PageFile file;
  auto tree = RTree::Create(&file, RTree::Options());
  DQMO_CHECK(tree.ok());
  WalWriter wal;
  const std::string path = TmpPath("dqmo_abl_recovery_insert.wal");
  if (batch > 0) {
    std::remove(path.c_str());
    DQMO_CHECK(wal.Open(path, file.mutable_stats()).ok());
    (*tree)->AttachWal(&wal);
  }
  InsertCost cost;
  const auto start = std::chrono::steady_clock::now();
  int pending = 0;
  for (const MotionSegment& m : stream) {
    DQMO_CHECK((*tree)->Insert(m).ok());
    if (batch > 0 && ++pending == batch) {
      DQMO_CHECK(wal.Sync().ok());
      pending = 0;
    }
  }
  if (batch > 0 && pending > 0) DQMO_CHECK(wal.Sync().ok());
  cost.seconds = Seconds(start, std::chrono::steady_clock::now());
  cost.wal_appends = file.stats().wal_appends.load();
  cost.wal_syncs = file.stats().wal_syncs.load();
  if (batch > 0) {
    wal.Close();
    std::remove(path.c_str());
  }
  return cost;
}

}  // namespace

int main() {
  const int inserts = static_cast<int>(
      GetEnvInt("DQMO_RECOVERY_INSERTS",
                GetEnvInt("DQMO_FULL", 0) != 0 ? 20000 : 2000));
  std::printf("==============================================================\n");
  std::printf("Ablation A14 — WAL append overhead & recovery time\n");
  std::printf("(%d-insert stream; DQMO_RECOVERY_INSERTS / DQMO_FULL=1 to "
              "scale)\n", inserts);
  std::printf("==============================================================\n");

  const std::vector<MotionSegment> stream = MakeStream(inserts);

  // Part 1: insert-time overhead.
  TimeInserts(stream, /*batch=*/0);  // Warm up allocator + page cache.
  const InsertCost baseline = TimeInserts(stream, /*batch=*/0);
  const InsertCost group = TimeInserts(stream, /*batch=*/64);
  const InsertCost strict = TimeInserts(stream, /*batch=*/1);
  auto per_insert_us = [&](const InsertCost& c) {
    return c.seconds * 1e6 / inserts;
  };
  auto overhead = [&](const InsertCost& c) {
    return baseline.seconds > 0.0
               ? (c.seconds - baseline.seconds) / baseline.seconds * 100.0
               : 0.0;
  };
  std::printf("\nWAL append overhead vs in-memory insert:\n");
  Table table({"mode", "total s", "us/insert", "overhead%", "wal appends",
               "wal syncs"});
  table.AddRow({"in-memory (no WAL)", Fmt(baseline.seconds, 3),
                Fmt(per_insert_us(baseline), 2), "--", "0", "0"});
  table.AddRow({"group commit (64/sync)", Fmt(group.seconds, 3),
                Fmt(per_insert_us(group), 2), Fmt(overhead(group), 1),
                StrFormat("%llu",
                          static_cast<unsigned long long>(group.wal_appends)),
                StrFormat("%llu",
                          static_cast<unsigned long long>(group.wal_syncs))});
  table.AddRow({"sync each insert", Fmt(strict.seconds, 3),
                Fmt(per_insert_us(strict), 2), Fmt(overhead(strict), 1),
                StrFormat("%llu",
                          static_cast<unsigned long long>(strict.wal_appends)),
                StrFormat("%llu", static_cast<unsigned long long>(
                                      strict.wal_syncs))});
  table.Print();

  // Part 2: recovery time vs WAL tail length. One checkpoint image of the
  // first half of the stream; tails replay the remainder in prefix order.
  const std::string pgf = TmpPath("dqmo_abl_recovery.pgf");
  const std::string wal_path = TmpPath("dqmo_abl_recovery.wal");
  const int base = inserts / 2;
  std::vector<int> tails = {0, inserts / 20, inserts / 8, inserts / 2};
  std::printf("\nrecovery time vs WAL tail length (checkpoint: %d segments):\n",
              base);
  Table rec({"wal tail", "open s", "replayed/s", "segments after"});
  for (const int tail : tails) {
    std::remove(pgf.c_str());
    std::remove(wal_path.c_str());
    {
      DurableIndex::Options options;
      options.sync_each_insert = false;
      auto index = DurableIndex::Open(pgf, wal_path, options);
      DQMO_CHECK(index.ok());
      for (int i = 0; i < base; ++i) {
        DQMO_CHECK((*index)->Insert(stream[static_cast<size_t>(i)]).ok());
      }
      DQMO_CHECK((*index)->Sync().ok());
      DQMO_CHECK((*index)->Checkpoint().ok());
      for (int i = 0; i < tail; ++i) {
        DQMO_CHECK(
            (*index)->Insert(stream[static_cast<size_t>(base + i)]).ok());
      }
      DQMO_CHECK((*index)->Sync().ok());
    }
    const auto start = std::chrono::steady_clock::now();
    auto reopened = DurableIndex::Open(pgf, wal_path, DurableIndex::Options());
    const double open_s = Seconds(start, std::chrono::steady_clock::now());
    DQMO_CHECK(reopened.ok());
    DQMO_CHECK((*reopened)->report().replayed ==
               static_cast<uint64_t>(tail));
    rec.AddRow({StrFormat("%d", tail), Fmt(open_s, 4),
                tail > 0 && open_s > 0.0
                    ? Fmt(static_cast<double>(tail) / open_s, 0)
                    : "--",
                StrFormat("%llu", static_cast<unsigned long long>(
                                      (*reopened)->tree()->num_segments()))});
  }
  rec.Print();
  std::printf("# recovery = image load + WAL scan + redo replay; replayed/s "
              "is the redo throughput.\n");
  std::remove(pgf.c_str());
  std::remove(wal_path.c_str());
  return 0;
}
