// Ablation A5 — NPDQ discardability variants (Sect. 4.2, Fig. 5): no reuse
// at all, the paper's Lemma 1 test (sound with bounding-box leaf
// semantics), and the stricter node-contained test (sound with the exact
// leaf segment test). Reports disk reads and subtrees pruned per
// subsequent query at high overlap.
#include "bench_common.h"
#include "common/random.h"
#include "query/npdq.h"
#include "workload/query_generator.h"

namespace {

using namespace dqmo;
using namespace dqmo::bench;

struct VariantCost {
  double reads = 0.0;
  double discards = 0.0;
  double results = 0.0;
};

VariantCost RunVariant(Workbench* bench, const NpdqOptions& options,
                       int trajectories, double overlap, bool open_ended) {
  Rng rng(1618);
  VariantCost cost;
  int64_t queries = 0;
  for (int traj = 0; traj < trajectories; ++traj) {
    Rng traj_rng = rng.Fork();
    QueryWorkloadOptions qopt;
    qopt.overlap = overlap;
    auto workload = GenerateDynamicQuery(qopt, &traj_rng);
    DQMO_CHECK(workload.ok());
    NonPredictiveDynamicQuery npdq(bench->tree(), options);
    for (int i = 0; i < workload->num_frames(); ++i) {
      const QueryStats before = npdq.stats();
      StBox q = workload->Frame(i);
      if (open_ended) {
        const double t = workload->frame_times[static_cast<size_t>(i)];
        q = StBox(workload->trajectory.WindowAt(t), Interval(t, kInf));
      }
      auto result = npdq.Execute(q);
      DQMO_CHECK(result.ok());
      if (i > 0) {
        const QueryStats d = npdq.stats() - before;
        cost.reads += static_cast<double>(d.node_reads);
        cost.discards += static_cast<double>(d.nodes_discarded);
        cost.results += static_cast<double>(result->size());
        ++queries;
      }
    }
  }
  cost.reads /= static_cast<double>(queries);
  cost.discards /= static_cast<double>(queries);
  cost.results /= static_cast<double>(queries);
  return cost;
}

}  // namespace

int main() {
  auto bench = PrepareBench();
  const int trajectories = TrajectoriesFromEnv(30);
  PrintPreamble("Ablation A5",
                "NPDQ discardability variants (subsequent queries)",
                trajectories);

  Table table({"frames", "overlap%", "variant", "reads/query",
               "discards/query", "results/query"});
  for (bool open_ended : {false, true}) {
    const char* frames = open_ended ? "open-ended" : "bounded";
    for (double overlap : {0.9, 0.9999}) {
      NpdqOptions none;
      none.use_previous = false;
      NpdqOptions paper;  // Lemma 1 + bounding-box leaves (default).
      NpdqOptions strict;
      strict.leaf_semantics = LeafSemantics::kExact;
      strict.spatial_pruning = SpatialPruning::kNodeContained;
      const VariantCost a =
          RunVariant(bench.get(), none, trajectories, overlap, open_ended);
      const VariantCost b =
          RunVariant(bench.get(), paper, trajectories, overlap, open_ended);
      const VariantCost c =
          RunVariant(bench.get(), strict, trajectories, overlap, open_ended);
      const std::string ov = Fmt(overlap * 100, 2);
      table.AddRow({frames, ov, "no reuse (snapshot)", Fmt(a.reads, 2),
                    Fmt(a.discards, 2), Fmt(a.results, 2)});
      table.AddRow({frames, ov, "Lemma 1 + BB leaves (paper)",
                    Fmt(b.reads, 2), Fmt(b.discards, 2), Fmt(b.results, 2)});
      table.AddRow({frames, ov, "node-contained + exact leaves",
                    Fmt(c.reads, 2), Fmt(c.discards, 2), Fmt(c.results, 2)});
    }
  }
  table.Print();
  std::printf(
      "\nBounded frames barely prune at paper scale: a discardable subtree\n"
      "must resolve motion start times finer than one frame AND fit inside\n"
      "the previous window; open-ended snapshots (the Sect. 4.2 usage)\n"
      "make the temporal conditions vacuous and prune on space alone.\n");
  return 0;
}
