// Fig. 10 of the paper: I/O performance of NPDQ: disk accesses per query vs snapshot overlap.
#include "bench_common.h"

int main(int argc, char** argv) {
  dqmo::bench::InitJsonMode(argc, argv);
  return dqmo::bench::RunOverlapFigure(dqmo::bench::Method::kNpdq,
                            dqmo::bench::Metric::kIo, "fig10_npdq_io", "Fig. 10",
                            "I/O performance of NPDQ: disk accesses per query vs snapshot overlap");
}
