// Fig. 10 of the paper: I/O performance of NPDQ: disk accesses per query vs snapshot overlap.
#include "bench_common.h"

int main() {
  return dqmo::bench::RunOverlapFigure(dqmo::bench::Method::kNpdq,
                            dqmo::bench::Metric::kIo, "Fig. 10",
                            "I/O performance of NPDQ: disk accesses per query vs snapshot overlap");
}
