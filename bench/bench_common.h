// Shared scaffolding for the per-figure benchmark binaries.
//
// Every fig*_ binary reproduces one figure of the paper's Sect. 5:
// it prepares (or loads from cache) the paper-scale index — 5000 objects,
// 100x100 space, 100 time units, ~0.5M motion segments — runs the relevant
// sweep, and prints the rows behind the figure. Scale knobs:
//   DQMO_TRAJECTORIES=N   trajectories averaged per point (default 50;
//                         the paper used 1000)
//   DQMO_FULL=1           paper scale (1000 trajectories)
//   DQMO_OBJECTS=N        override object count (default 5000)
//   DQMO_CACHE_DIR=DIR    index cache location (default ./dqmo_cache)
//   DQMO_BULK_LOAD=1      build the index with STR instead of insertion
//   DQMO_JSON=1           additionally write BENCH_<name>.json (also
//                         enabled by a --json argv flag); tools/bench.sh
//                         collects these machine-readable results
#ifndef DQMO_BENCH_BENCH_COMMON_H_
#define DQMO_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "harness/experiment.h"
#include "harness/metrics_report.h"
#include "harness/table.h"

namespace dqmo::bench {

// ---------------------------------------------------------------------------
// Machine-readable output: BENCH_<name>.json next to the human tables, for
// committing alongside code changes (the perf trajectory of the repo).

/// Whether JSON output is on. Defaults to the DQMO_JSON env toggle; a
/// --json argv flag (InitJsonMode) also enables it.
inline bool& JsonMode() {
  static bool enabled = GetEnvInt("DQMO_JSON", 0) != 0;
  return enabled;
}

/// Arms the tracer's slowest-frame tracking (idempotent). In JSON mode
/// every bench keeps the single slowest frame it produced so the written
/// file carries its merged span tree — the diagnosis of the run's worst
/// case rides along with its numbers. Arming every frame costs span
/// recording on the hot path, which is acceptable here: the overhead
/// gates compare like against like (both legs run --json), and with
/// metrics off (runtime or compile-time) frames never arm at all.
inline void ArmSlowestFrameTracking() {
  Tracer::Options options = Tracer::Global().options();
  if (options.track_slowest) return;
  options.track_slowest = true;
  Tracer::Global().Configure(options);
  Tracer::Global().ResetSlowestFrame();
}

/// Scans argv for --json. Call first thing in main().
inline void InitJsonMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") JsonMode() = true;
  }
  if (JsonMode()) ArmSlowestFrameTracking();
}

/// Escapes a string for embedding in a JSON string literal. Handles the
/// control characters (notably newlines) that multi-line span-tree
/// renderings contain; JsonObject::Str only escapes quotes/backslashes.
inline std::string JsonEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size() + 16);
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

/// One flat JSON object (a sweep point / result row) under construction.
class JsonObject {
 public:
  JsonObject& Num(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return Raw(key, buf);
  }
  JsonObject& Int(const char* key, uint64_t v) {
    return Raw(key, std::to_string(v));
  }
  JsonObject& Str(const char* key, const std::string& v) {
    std::string quoted = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    return Raw(key, quoted);
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    return out + "}";
  }

 private:
  JsonObject& Raw(const char* key, std::string value) {
    fields_.emplace_back(key, std::move(value));
    return *this;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Accumulates rows and writes BENCH_<name>.json on Write() (or
/// destruction) when JSON mode is on; a silent no-op otherwise.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string name) : name_(std::move(name)) {
    // Normally armed by InitJsonMode already; this covers binaries that
    // construct the writer without calling it (and is free otherwise).
    if (JsonMode()) ArmSlowestFrameTracking();
  }
  ~BenchJsonWriter() { Write(); }

  JsonObject& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  void Write() {
    if (written_ || !JsonMode()) return;
    written_ = true;
    const FrameTrace slowest = Tracer::Global().SlowestFrame();
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "# json: cannot open %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"rows\": [\n", name_.c_str());
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", rows_[i].ToString().c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    // Slow-frame block: identity and merged span tree of the single slowest
    // frame the run produced (null when the bench never opened a frame —
    // e.g. raw kernel loops that bypass the session layer).
    if (slowest.duration_ns == 0) {
      std::fprintf(f, "],\n\"slow_frame\": null,\n");
    } else {
      std::fprintf(
          f,
          "],\n\"slow_frame\": {\"trace_id\": %llu, \"session_id\": %llu, "
          "\"frame_index\": %llu, \"duration_ns\": %llu, \"spans\": %zu, "
          "\"remote_spans\": %llu, \"tree\": \"%s\"},\n",
          static_cast<unsigned long long>(slowest.trace_id),
          static_cast<unsigned long long>(slowest.session_id),
          static_cast<unsigned long long>(slowest.frame_index),
          static_cast<unsigned long long>(slowest.duration_ns),
          slowest.spans.size(),
          static_cast<unsigned long long>(slowest.remote_spans),
          JsonEscape(slowest.ToString()).c_str());
    }
    // MetricsSnapshot block: the run's process-wide metrics (latency
    // quantiles included), so committed BENCH_*.json carry the perf
    // trajectory and tools/bench.sh can diff p99s between runs.
    std::fprintf(f, "\"metrics\": %s}\n",
                 MetricsRegistry::Global().JsonText().c_str());
    std::fclose(f);
    std::printf("# json: wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  std::string name_;
  std::vector<JsonObject> rows_;
  bool written_ = false;
};

/// Serializes a MethodCost into `row` under `prefix`_-qualified keys.
inline void AddCostFields(JsonObject* row, const char* prefix,
                          const MethodCost& cost) {
  const std::string p(prefix);
  row->Num((p + "_io_total").c_str(), cost.io_total);
  row->Num((p + "_io_leaf").c_str(), cost.io_leaf);
  row->Num((p + "_cpu").c_str(), cost.cpu);
  row->Num((p + "_results").c_str(), cost.results);
}

/// The paper's overlap sweep (Figs. 6, 7, 10, 11).
inline std::vector<double> PaperOverlaps() {
  return {0.0, 0.25, 0.5, 0.8, 0.9, 0.9999};
}

/// The paper's window sizes: small / medium / big (Figs. 8, 9, 12, 13).
inline std::vector<double> PaperWindows() { return {8.0, 14.0, 20.0}; }

/// Prepares the shared paper-scale workbench, honoring env overrides.
inline std::unique_ptr<Workbench> PrepareBench() {
  IndexConfig config = PaperIndexConfig();
  config.data.num_objects =
      static_cast<int>(GetEnvInt("DQMO_OBJECTS", config.data.num_objects));
  auto bench = Workbench::Prepare(config);
  DQMO_CHECK(bench.ok());
  std::printf("# index: %s\n", (*bench)->Describe().c_str());
  return std::move(bench).value();
}

inline std::string Fmt(double v, int digits = 1) {
  return FormatDouble(v, digits);
}

/// Header block common to every figure binary.
inline void PrintPreamble(const char* figure, const char* caption,
                          int trajectories) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("(averaged over %d query trajectories; paper used 1000 — set "
              "DQMO_FULL=1)\n", trajectories);
  std::printf("==============================================================\n");
}

enum class Method { kPdq, kNpdq };
enum class Metric { kIo, kCpu };

inline Result<SweepRow> RunPoint(Workbench* bench, Method method,
                                 const SweepOptions& options) {
  if (method == Method::kPdq) return RunPdqPoint(bench, options);
  return RunNpdqPoint(bench, options);
}

/// Figs. 6 / 7 / 10 / 11: first- and subsequent-query cost of the naive
/// method vs the dynamic-query method across the overlap sweep. `slug`
/// names the BENCH_<slug>.json written under --json / DQMO_JSON=1.
inline int RunOverlapFigure(Method method, Metric metric, const char* slug,
                            const char* figure, const char* caption) {
  auto bench = PrepareBench();
  const int trajectories = TrajectoriesFromEnv();
  PrintPreamble(figure, caption, trajectories);
  const char* dq = method == Method::kPdq ? "PDQ" : "NPDQ";
  BenchJsonWriter json(slug);

  Table table =
      metric == Metric::kIo
          ? Table({"overlap%", "naive first (leaf/total)",
                   std::string(dq) + " first (leaf/total)",
                   "naive subs (leaf/total)",
                   std::string(dq) + " subs (leaf/total)", "subs speedup"})
          : Table({"overlap%", "naive first", std::string(dq) + " first",
                   "naive subs", std::string(dq) + " subs",
                   "subs speedup"});
  if (method == Method::kNpdq) {
    std::printf("# NPDQ snapshots are open-ended future queries "
                "(Sect. 4.2 / Fig. 5): window x [t, +inf)\n");
  }
  for (double overlap : PaperOverlaps()) {
    SweepOptions options;
    options.query.overlap = overlap;
    options.num_trajectories = trajectories;
    options.open_ended_frames = method == Method::kNpdq;
    auto row = RunPoint(bench.get(), method, options);
    DQMO_CHECK(row.ok());
    JsonObject& jrow = json.AddRow();
    jrow.Str("method", dq).Num("overlap", overlap);
    AddCostFields(&jrow, "naive_first", row->naive_first);
    AddCostFields(&jrow, "naive_subsequent", row->naive_subsequent);
    AddCostFields(&jrow, "dq_first", row->dq_first);
    AddCostFields(&jrow, "dq_subsequent", row->dq_subsequent);
    auto cell = [&](const MethodCost& cost) {
      if (metric == Metric::kIo) {
        return Fmt(cost.io_leaf) + "/" + Fmt(cost.io_total);
      }
      return Fmt(cost.cpu, 0);
    };
    const double naive_subs = metric == Metric::kIo
                                  ? row->naive_subsequent.io_total
                                  : row->naive_subsequent.cpu;
    const double dq_subs = metric == Metric::kIo ? row->dq_subsequent.io_total
                                                 : row->dq_subsequent.cpu;
    table.AddRow({Fmt(overlap * 100, 2), cell(row->naive_first),
                  cell(row->dq_first), cell(row->naive_subsequent),
                  cell(row->dq_subsequent),
                  dq_subs > 0 ? Fmt(naive_subs / dq_subs) + "x" : "inf"});
  }
  table.Print();
  PrintMetricsSummary();
  return 0;
}

/// Figs. 8 / 9 / 12 / 13: subsequent-query cost by window size.
inline int RunWindowFigure(Method method, Metric metric, const char* slug,
                           const char* figure, const char* caption) {
  auto bench = PrepareBench();
  const int trajectories = TrajectoriesFromEnv();
  PrintPreamble(figure, caption, trajectories);
  const char* dq = method == Method::kPdq ? "PDQ" : "NPDQ";
  BenchJsonWriter json(slug);
  const std::vector<double> overlaps = {0.0, 0.5, 0.9, 0.9999};

  std::vector<std::string> headers = {"window"};
  for (double overlap : overlaps) {
    headers.push_back(std::string(dq) + " subs @" + Fmt(overlap * 100, 2) +
                      "%");
  }
  headers.push_back("naive subs");
  Table table(std::move(headers));
  for (double window : PaperWindows()) {
    std::vector<std::string> cells = {Fmt(window, 0) + "x" +
                                      Fmt(window, 0)};
    double naive = 0.0;
    for (double overlap : overlaps) {
      SweepOptions options;
      options.query.window = window;
      options.query.overlap = overlap;
      options.num_trajectories = trajectories;
      options.open_ended_frames = method == Method::kNpdq;
      auto row = RunPoint(bench.get(), method, options);
      DQMO_CHECK(row.ok());
      JsonObject& jrow = json.AddRow();
      jrow.Str("method", dq).Num("window", window).Num("overlap", overlap);
      AddCostFields(&jrow, "naive_subsequent", row->naive_subsequent);
      AddCostFields(&jrow, "dq_subsequent", row->dq_subsequent);
      cells.push_back(Fmt(metric == Metric::kIo
                              ? row->dq_subsequent.io_total
                              : row->dq_subsequent.cpu,
                          metric == Metric::kIo ? 1 : 0));
      naive = metric == Metric::kIo ? row->naive_subsequent.io_total
                                    : row->naive_subsequent.cpu;
    }
    cells.push_back(Fmt(naive, metric == Metric::kIo ? 1 : 0));
    table.AddRow(std::move(cells));
  }
  table.Print();
  PrintMetricsSummary();
  return 0;
}

}  // namespace dqmo::bench

#endif  // DQMO_BENCH_BENCH_COMMON_H_
