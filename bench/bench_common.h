// Shared scaffolding for the per-figure benchmark binaries.
//
// Every fig*_ binary reproduces one figure of the paper's Sect. 5:
// it prepares (or loads from cache) the paper-scale index — 5000 objects,
// 100x100 space, 100 time units, ~0.5M motion segments — runs the relevant
// sweep, and prints the rows behind the figure. Scale knobs:
//   DQMO_TRAJECTORIES=N   trajectories averaged per point (default 50;
//                         the paper used 1000)
//   DQMO_FULL=1           paper scale (1000 trajectories)
//   DQMO_OBJECTS=N        override object count (default 5000)
//   DQMO_CACHE_DIR=DIR    index cache location (default ./dqmo_cache)
//   DQMO_BULK_LOAD=1      build the index with STR instead of insertion
#ifndef DQMO_BENCH_BENCH_COMMON_H_
#define DQMO_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "common/string_util.h"
#include "harness/experiment.h"
#include "harness/table.h"

namespace dqmo::bench {

/// The paper's overlap sweep (Figs. 6, 7, 10, 11).
inline std::vector<double> PaperOverlaps() {
  return {0.0, 0.25, 0.5, 0.8, 0.9, 0.9999};
}

/// The paper's window sizes: small / medium / big (Figs. 8, 9, 12, 13).
inline std::vector<double> PaperWindows() { return {8.0, 14.0, 20.0}; }

/// Prepares the shared paper-scale workbench, honoring env overrides.
inline std::unique_ptr<Workbench> PrepareBench() {
  IndexConfig config = PaperIndexConfig();
  config.data.num_objects =
      static_cast<int>(GetEnvInt("DQMO_OBJECTS", config.data.num_objects));
  auto bench = Workbench::Prepare(config);
  DQMO_CHECK(bench.ok());
  std::printf("# index: %s\n", (*bench)->Describe().c_str());
  return std::move(bench).value();
}

inline std::string Fmt(double v, int digits = 1) {
  return FormatDouble(v, digits);
}

/// Header block common to every figure binary.
inline void PrintPreamble(const char* figure, const char* caption,
                          int trajectories) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("(averaged over %d query trajectories; paper used 1000 — set "
              "DQMO_FULL=1)\n", trajectories);
  std::printf("==============================================================\n");
}

enum class Method { kPdq, kNpdq };
enum class Metric { kIo, kCpu };

inline Result<SweepRow> RunPoint(Workbench* bench, Method method,
                                 const SweepOptions& options) {
  if (method == Method::kPdq) return RunPdqPoint(bench, options);
  return RunNpdqPoint(bench, options);
}

/// Figs. 6 / 7 / 10 / 11: first- and subsequent-query cost of the naive
/// method vs the dynamic-query method across the overlap sweep.
inline int RunOverlapFigure(Method method, Metric metric, const char* figure,
                            const char* caption) {
  auto bench = PrepareBench();
  const int trajectories = TrajectoriesFromEnv();
  PrintPreamble(figure, caption, trajectories);
  const char* dq = method == Method::kPdq ? "PDQ" : "NPDQ";

  Table table =
      metric == Metric::kIo
          ? Table({"overlap%", "naive first (leaf/total)",
                   std::string(dq) + " first (leaf/total)",
                   "naive subs (leaf/total)",
                   std::string(dq) + " subs (leaf/total)", "subs speedup"})
          : Table({"overlap%", "naive first", std::string(dq) + " first",
                   "naive subs", std::string(dq) + " subs",
                   "subs speedup"});
  if (method == Method::kNpdq) {
    std::printf("# NPDQ snapshots are open-ended future queries "
                "(Sect. 4.2 / Fig. 5): window x [t, +inf)\n");
  }
  for (double overlap : PaperOverlaps()) {
    SweepOptions options;
    options.query.overlap = overlap;
    options.num_trajectories = trajectories;
    options.open_ended_frames = method == Method::kNpdq;
    auto row = RunPoint(bench.get(), method, options);
    DQMO_CHECK(row.ok());
    auto cell = [&](const MethodCost& cost) {
      if (metric == Metric::kIo) {
        return Fmt(cost.io_leaf) + "/" + Fmt(cost.io_total);
      }
      return Fmt(cost.cpu, 0);
    };
    const double naive_subs = metric == Metric::kIo
                                  ? row->naive_subsequent.io_total
                                  : row->naive_subsequent.cpu;
    const double dq_subs = metric == Metric::kIo ? row->dq_subsequent.io_total
                                                 : row->dq_subsequent.cpu;
    table.AddRow({Fmt(overlap * 100, 2), cell(row->naive_first),
                  cell(row->dq_first), cell(row->naive_subsequent),
                  cell(row->dq_subsequent),
                  dq_subs > 0 ? Fmt(naive_subs / dq_subs) + "x" : "inf"});
  }
  table.Print();
  return 0;
}

/// Figs. 8 / 9 / 12 / 13: subsequent-query cost by window size.
inline int RunWindowFigure(Method method, Metric metric, const char* figure,
                           const char* caption) {
  auto bench = PrepareBench();
  const int trajectories = TrajectoriesFromEnv();
  PrintPreamble(figure, caption, trajectories);
  const char* dq = method == Method::kPdq ? "PDQ" : "NPDQ";
  const std::vector<double> overlaps = {0.0, 0.5, 0.9, 0.9999};

  std::vector<std::string> headers = {"window"};
  for (double overlap : overlaps) {
    headers.push_back(std::string(dq) + " subs @" + Fmt(overlap * 100, 2) +
                      "%");
  }
  headers.push_back("naive subs");
  Table table(std::move(headers));
  for (double window : PaperWindows()) {
    std::vector<std::string> cells = {Fmt(window, 0) + "x" +
                                      Fmt(window, 0)};
    double naive = 0.0;
    for (double overlap : overlaps) {
      SweepOptions options;
      options.query.window = window;
      options.query.overlap = overlap;
      options.num_trajectories = trajectories;
      options.open_ended_frames = method == Method::kNpdq;
      auto row = RunPoint(bench.get(), method, options);
      DQMO_CHECK(row.ok());
      cells.push_back(Fmt(metric == Metric::kIo
                              ? row->dq_subsequent.io_total
                              : row->dq_subsequent.cpu,
                          metric == Metric::kIo ? 1 : 0));
      naive = metric == Metric::kIo ? row->naive_subsequent.io_total
                                    : row->naive_subsequent.cpu;
    }
    cells.push_back(Fmt(naive, metric == Metric::kIo ? 1 : 0));
    table.AddRow(std::move(cells));
  }
  table.Print();
  return 0;
}

}  // namespace dqmo::bench

#endif  // DQMO_BENCH_BENCH_COMMON_H_
