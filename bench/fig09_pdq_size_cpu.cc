// Fig. 9 of the paper: Impact of query size on CPU performance of subsequent queries (PDQ).
#include "bench_common.h"

int main(int argc, char** argv) {
  dqmo::bench::InitJsonMode(argc, argv);
  return dqmo::bench::RunWindowFigure(dqmo::bench::Method::kPdq,
                            dqmo::bench::Metric::kCpu, "fig09_pdq_size_cpu", "Fig. 9",
                            "Impact of query size on CPU performance of subsequent queries (PDQ)");
}
