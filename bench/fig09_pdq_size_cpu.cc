// Fig. 9 of the paper: Impact of query size on CPU performance of subsequent queries (PDQ).
#include "bench_common.h"

int main() {
  return dqmo::bench::RunWindowFigure(dqmo::bench::Method::kPdq,
                            dqmo::bench::Metric::kCpu, "Fig. 9",
                            "Impact of query size on CPU performance of subsequent queries (PDQ)");
}
