// Fig. 6 of the paper: I/O performance of PDQ: disk accesses per query vs snapshot overlap.
#include "bench_common.h"

int main(int argc, char** argv) {
  dqmo::bench::InitJsonMode(argc, argv);
  return dqmo::bench::RunOverlapFigure(dqmo::bench::Method::kPdq,
                            dqmo::bench::Metric::kIo, "fig06_pdq_io", "Fig. 6",
                            "I/O performance of PDQ: disk accesses per query vs snapshot overlap");
}
