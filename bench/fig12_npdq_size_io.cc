// Fig. 12 of the paper: Impact of query size on I/O performance of subsequent queries (NPDQ).
#include "bench_common.h"

int main(int argc, char** argv) {
  dqmo::bench::InitJsonMode(argc, argv);
  return dqmo::bench::RunWindowFigure(dqmo::bench::Method::kNpdq,
                            dqmo::bench::Metric::kIo, "fig12_npdq_size_io", "Fig. 12",
                            "Impact of query size on I/O performance of subsequent queries (NPDQ)");
}
