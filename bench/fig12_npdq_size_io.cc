// Fig. 12 of the paper: Impact of query size on I/O performance of subsequent queries (NPDQ).
#include "bench_common.h"

int main() {
  return dqmo::bench::RunWindowFigure(dqmo::bench::Method::kNpdq,
                            dqmo::bench::Metric::kIo, "Fig. 12",
                            "Impact of query size on I/O performance of subsequent queries (NPDQ)");
}
