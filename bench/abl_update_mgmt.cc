// Ablation A4 — PDQ update management (Sect. 4.1): concurrent insertions
// reach running queries either by pushing the lowest-common-ancestor of the
// newly created nodes into the priority queue (duplicates eliminated at pop
// time) or by rebuilding the queue from the root. This bench measures both
// policies under an insertion stream, against the no-updates baseline.
#include "bench_common.h"
#include "common/random.h"
#include "query/pdq.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"

namespace {

using namespace dqmo;
using namespace dqmo::bench;

struct PolicyCost {
  double reads_per_query = 0.0;
  double dup_skips_per_query = 0.0;
  double pushes_per_query = 0.0;
};

/// Runs one PDQ per trajectory while inserting `inserts_per_frame` random
/// motions between frames. A fresh tree copy per run keeps policies
/// comparable.
PolicyCost RunPolicy(const IndexConfig& config,
                     PredictiveDynamicQuery::Options pdq_options,
                     int inserts_per_frame, int trajectories) {
  auto bench = Workbench::Prepare(config);
  DQMO_CHECK(bench.ok());
  Rng rng(2718);
  PolicyCost cost;
  int64_t queries = 0;
  ObjectId next_oid = 10000000;
  for (int traj = 0; traj < trajectories; ++traj) {
    Rng traj_rng = rng.Fork();
    QueryWorkloadOptions qopt;
    qopt.overlap = 0.9;
    auto workload = GenerateDynamicQuery(qopt, &traj_rng);
    DQMO_CHECK(workload.ok());
    pdq_options.track_updates = true;
    auto pdq = PredictiveDynamicQuery::Make(
        (*bench)->tree(), workload->trajectory, pdq_options);
    DQMO_CHECK(pdq.ok());
    for (int i = 0; i < workload->num_frames(); ++i) {
      for (int j = 0; j < inserts_per_frame; ++j) {
        MotionSegment m(next_oid++,
                        StSegment(Vec(traj_rng.Uniform(0, 100),
                                      traj_rng.Uniform(0, 100)),
                                  Vec(traj_rng.Uniform(0, 100),
                                      traj_rng.Uniform(0, 100)),
                                  Interval(workload->frame_times.back(),
                                           workload->frame_times.back() +
                                               1.0)));
        DQMO_CHECK_OK((*bench)->tree()->Insert(m));
      }
      const QueryStats before = (*pdq)->stats();
      auto frame = (*pdq)->Frame(
          workload->frame_times[static_cast<size_t>(i)],
          workload->frame_times[static_cast<size_t>(i) + 1]);
      DQMO_CHECK(frame.ok());
      const QueryStats d = (*pdq)->stats() - before;
      cost.reads_per_query += static_cast<double>(d.node_reads);
      cost.dup_skips_per_query += static_cast<double>(d.duplicates_skipped);
      cost.pushes_per_query += static_cast<double>(d.queue_pushes);
      ++queries;
    }
  }
  cost.reads_per_query /= static_cast<double>(queries);
  cost.dup_skips_per_query /= static_cast<double>(queries);
  cost.pushes_per_query /= static_cast<double>(queries);
  return cost;
}

}  // namespace

int main() {
  auto trajectories = TrajectoriesFromEnv(10);
  // A reduced index keeps the per-policy rebuild affordable; the policies
  // are compared against each other on identical configurations.
  IndexConfig config = PaperIndexConfig();
  config.data.num_objects =
      static_cast<int>(GetEnvInt("DQMO_OBJECTS", 1000));
  PrintPreamble("Ablation A4",
                "PDQ update management: LCA queue insertion vs queue "
                "rebuild (overlap 90%)",
                trajectories);

  Table table({"policy", "inserts/frame", "reads/query", "dup-skips/query",
               "pushes/query"});
  for (int inserts : {0, 5, 20}) {
    PredictiveDynamicQuery::Options lca;
    lca.update_policy = PredictiveDynamicQuery::UpdatePolicy::kLcaInsert;
    const PolicyCost a = RunPolicy(config, lca, inserts, trajectories);
    table.AddRow({"LCA insert", std::to_string(inserts),
                  Fmt(a.reads_per_query, 2), Fmt(a.dup_skips_per_query, 2),
                  Fmt(a.pushes_per_query, 1)});
    if (inserts > 0) {
      PredictiveDynamicQuery::Options rebuild;
      rebuild.update_policy =
          PredictiveDynamicQuery::UpdatePolicy::kRebuild;
      const PolicyCost b = RunPolicy(config, rebuild, inserts, trajectories);
      table.AddRow({"rebuild", std::to_string(inserts),
                    Fmt(b.reads_per_query, 2), Fmt(b.dup_skips_per_query, 2),
                    Fmt(b.pushes_per_query, 1)});
    }
  }
  table.Print();
  return 0;
}
