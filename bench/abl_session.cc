// Ablation A10 — the automated PDQ <-> NPDQ hand-off (future-work item
// (iv)): an interactively maneuvering observer is served by the
// DynamicQuerySession (predictive while motion is stable, non-predictive
// around direction changes) and compared against always-NPDQ and
// always-naive evaluation, across interaction rates.
#include <thread>

#include "bench_common.h"
#include "common/random.h"
#include "query/session.h"
#include "server/executor.h"
#include "storage/buffer_pool.h"
#include "workload/query_generator.h"

namespace {

using namespace dqmo;
using namespace dqmo::bench;

/// Simulated pilot: straight flight with direction changes arriving as a
/// Poisson-ish process (one change per `mean_leg` time units on average).
struct Pilot {
  Vec pos;
  Vec vel;
  double next_turn;
  double mean_leg;

  void Advance(Rng* rng, double t, double dt) {
    if (t >= next_turn) {
      const double angle = rng->Uniform(0, 2 * M_PI);
      const double speed = rng->Uniform(0.5, 2.0);
      vel = Vec(speed * std::cos(angle), speed * std::sin(angle));
      next_turn = t + rng->Uniform(0.5 * mean_leg, 1.5 * mean_leg);
    }
    for (int d = 0; d < 2; ++d) {
      pos[d] += vel[d] * dt;
      if (pos[d] < 6.0 || pos[d] > 94.0) {
        vel[d] = -vel[d];
        pos[d] = std::clamp(pos[d], 6.0, 94.0);
      }
    }
  }
};

/// Multi-threaded engine mode: the same seeded session batch is run once
/// serially and once on `threads` executor threads over a shared sharded
/// BufferPool, and the per-session checksums are diffed. The sessions are
/// deterministic, so any mismatch is a concurrency bug ("oracle mismatches
/// vs serial replay" below must be 0). On multi-core hardware the wall-time
/// ratio approaches the thread count; on a single core it hovers near 1x,
/// so the ratio is reported, not asserted.
void RunConcurrentEngineMode(Workbench* bench) {
  const int threads = static_cast<int>(GetEnvInt("DQMO_THREADS", 8));
  std::printf("\n==============================================================\n");
  std::printf("Concurrent multi-session engine — %d executor threads, "
              "shared sharded buffer pool\n", threads);
#if defined(__SANITIZE_THREAD__)
  std::printf("ThreadSanitizer: ENABLED (this run is race-checked)\n");
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  std::printf("ThreadSanitizer: ENABLED (this run is race-checked)\n");
#else
  std::printf("ThreadSanitizer: disabled (build with -DDQMO_SANITIZE=thread; "
              "tools/ci.sh runs the race-checked configuration)\n");
#endif
#else
  std::printf("ThreadSanitizer: disabled (build with -DDQMO_SANITIZE=thread; "
              "tools/ci.sh runs the race-checked configuration)\n");
#endif
  std::printf("==============================================================\n");

  // Steady state for concurrent readers: every page sealed + pre-verified.
  DQMO_CHECK(bench->file()->Publish().ok());

  std::vector<SessionSpec> specs;
  for (int i = 0; i < 2 * threads; ++i) {
    SessionSpec spec;
    spec.kind = static_cast<SessionKind>(i % 3);
    spec.seed = 900 + static_cast<uint64_t>(i);
    spec.frames = 100;
    spec.t0 = 2.0 + 0.4 * i;
    specs.push_back(spec);
  }

  BufferPool serial_pool(bench->file(), 256, /*num_shards=*/16);
  SessionScheduler::Options sopt;
  sopt.num_threads = 1;
  sopt.reader = &serial_pool;
  sopt.pool = &serial_pool;
  const ExecutorReport serial =
      SessionScheduler(bench->tree(), sopt).Run(specs);
  DQMO_CHECK(serial.status.ok());

  BufferPool shared_pool(bench->file(), 256, /*num_shards=*/16);
  SessionScheduler::Options copt;
  copt.num_threads = threads;
  copt.reader = &shared_pool;
  copt.pool = &shared_pool;
  const ExecutorReport concurrent =
      SessionScheduler(bench->tree(), copt).Run(specs);
  DQMO_CHECK(concurrent.status.ok());

  size_t mismatches = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (concurrent.sessions[i].checksum != serial.sessions[i].checksum ||
        concurrent.sessions[i].objects_delivered !=
            serial.sessions[i].objects_delivered) {
      ++mismatches;
    }
  }

  const double hit_rate =
      concurrent.pool_hits + concurrent.pool_misses == 0
          ? 0.0
          : 100.0 * static_cast<double>(concurrent.pool_hits) /
                static_cast<double>(concurrent.pool_hits +
                                    concurrent.pool_misses);
  BenchJsonWriter json("abl_session_engine");
  for (size_t i = 0; i < specs.size(); ++i) {
    json.AddRow()
        .Int("session", static_cast<uint64_t>(i))
        .Int("seed", specs[i].seed)
        .Int("checksum_serial", serial.sessions[i].checksum)
        .Int("checksum_threaded", concurrent.sessions[i].checksum)
        .Int("objects_delivered", concurrent.sessions[i].objects_delivered);
  }
  json.AddRow()
      .Str("session", "total")
      .Int("threads", static_cast<uint64_t>(threads))
      .Int("objects_delivered", concurrent.total_objects)
      .Int("mismatches", static_cast<uint64_t>(mismatches))
      .Num("serial_wall_seconds", serial.wall_seconds)
      .Num("threaded_wall_seconds", concurrent.wall_seconds)
      .Num("sessions_per_second",
           concurrent.wall_seconds > 0.0
               ? static_cast<double>(specs.size()) / concurrent.wall_seconds
               : 0.0)
      .Int("node_reads", concurrent.total_stats.node_reads.load())
      .Int("decoded_hits", concurrent.total_stats.decoded_hits.load());
  json.Write();
  std::printf("sessions: %zu (%d frames each), objects delivered: %llu\n",
              specs.size(), specs.empty() ? 0 : specs.front().frames,
              static_cast<unsigned long long>(concurrent.total_objects));
  std::printf("oracle mismatches vs serial replay: %zu\n", mismatches);
  std::printf("serial wall: %ss   %d-thread wall: %ss   throughput ratio: "
              "%sx (hardware threads: %u)\n",
              Fmt(serial.wall_seconds, 3).c_str(), threads,
              Fmt(concurrent.wall_seconds, 3).c_str(),
              Fmt(concurrent.wall_seconds > 0.0
                      ? serial.wall_seconds / concurrent.wall_seconds
                      : 0.0, 2).c_str(),
              std::thread::hardware_concurrency());
  std::printf("shared pool: %s%% hit rate (%llu hits / %llu misses)\n",
              Fmt(hit_rate).c_str(),
              static_cast<unsigned long long>(concurrent.pool_hits),
              static_cast<unsigned long long>(concurrent.pool_misses));
  DQMO_CHECK(mismatches == 0);
}

}  // namespace

int main(int argc, char** argv) {
  dqmo::bench::InitJsonMode(argc, argv);
  auto bench = PrepareBench();
  const int flights = TrajectoriesFromEnv(10);
  PrintPreamble("Ablation A10",
                "automated PDQ/NPDQ hand-off vs fixed strategies "
                "(10 t.u. flights, 10 fps, window 8x8)",
                flights);

  Table table({"mean leg (t.u.)", "strategy", "reads/frame",
               "PDQ frame share", "handoffs/flight"});
  for (double mean_leg : {0.5, 2.0, 8.0}) {
    double session_reads = 0.0;
    double npdq_reads = 0.0;
    double naive_reads = 0.0;
    double pdq_share = 0.0;
    double handoffs = 0.0;
    int64_t frames = 0;
    Rng rng(515);
    for (int flight = 0; flight < flights; ++flight) {
      Rng frng = rng.Fork();
      Pilot pilot{Vec(frng.Uniform(10, 90), frng.Uniform(10, 90)),
                  Vec(1.0, 0.0), 0.0, mean_leg};
      Pilot mirror = pilot;  // Identical path for every strategy.
      Pilot mirror2 = pilot;
      Rng path_rng = frng.Fork();
      Rng path_rng2 = path_rng;  // Copy: same turn decisions.
      Rng path_rng3 = path_rng;

      DynamicQuerySession::Options sopt;
      sopt.window = 8.0;
      DynamicQuerySession session(bench->tree(), sopt);
      NonPredictiveDynamicQuery npdq(bench->tree());
      QueryStats naive_stats;

      const double t0 = frng.Uniform(1.0, 85.0);
      double prev_t = t0;
      for (int i = 1; i <= 100; ++i) {
        const double t = t0 + i * 0.1;
        pilot.Advance(&path_rng, t, 0.1);
        mirror.Advance(&path_rng2, t, 0.1);
        mirror2.Advance(&path_rng3, t, 0.1);
        DQMO_CHECK(session.OnFrame(t, pilot.pos, pilot.vel).ok());
        const StBox q(Box::Centered(mirror.pos, 8.0), Interval(prev_t, t));
        DQMO_CHECK(npdq.Execute(q).ok());
        const StBox q2(Box::Centered(mirror2.pos, 8.0),
                       Interval(prev_t, t));
        DQMO_CHECK(bench->tree()->RangeSearch(q2, &naive_stats).ok());
        prev_t = t;
        ++frames;
      }
      session_reads += static_cast<double>(session.TotalStats().node_reads);
      npdq_reads += static_cast<double>(npdq.stats().node_reads);
      naive_reads += static_cast<double>(naive_stats.node_reads);
      pdq_share +=
          static_cast<double>(session.session_stats().predictive_frames);
      handoffs +=
          static_cast<double>(session.session_stats().handoffs_to_npdq +
                              session.session_stats().handoffs_to_pdq);
    }
    const auto leg = Fmt(mean_leg);
    table.AddRow({leg, "session (auto hand-off)",
                  Fmt(session_reads / static_cast<double>(frames), 2),
                  Fmt(100.0 * pdq_share / static_cast<double>(frames)) + "%",
                  Fmt(handoffs / flights)});
    table.AddRow({leg, "always NPDQ",
                  Fmt(npdq_reads / static_cast<double>(frames), 2), "-",
                  "-"});
    table.AddRow({leg, "always naive",
                  Fmt(naive_reads / static_cast<double>(frames), 2), "-",
                  "-"});
  }
  table.Print();
  RunConcurrentEngineMode(bench.get());
  return 0;
}
