// Microbenchmarks (google-benchmark) for the geometric and storage kernels
// on the query hot path: exact segment tests, trapezoid overlap times,
// TimeSet maintenance, quadratic splits, node (de)serialization, the SoA
// decode + batch-prune kernels (scalar vs AVX2), and the PDQ heap-pop
// move-vs-copy regression guard.
#include <benchmark/benchmark.h>

#include <queue>

#include "common/metrics.h"
#include "common/random.h"
#include "geom/timeset.h"
#include "geom/trajectory.h"
#include "query/kernels.h"
#include "rtree/node.h"
#include "rtree/node_soa.h"
#include "rtree/split.h"

namespace {

using namespace dqmo;

StSegment RandomSeg(Rng* rng) {
  return StSegment(Vec(rng->Uniform(0, 100), rng->Uniform(0, 100)),
                   Vec(rng->Uniform(0, 100), rng->Uniform(0, 100)),
                   Interval(rng->Uniform(0, 50), rng->Uniform(50, 100)));
}

StBox RandomBox(Rng* rng) {
  const double x = rng->Uniform(0, 90);
  const double y = rng->Uniform(0, 90);
  const double t = rng->Uniform(0, 90);
  return StBox(Box(Interval(x, x + 10), Interval(y, y + 10)),
               Interval(t, t + 5));
}

QueryTrajectory RandomTrajectory(Rng* rng, int keys) {
  std::vector<KeySnapshot> ks;
  double t = 0.0;
  for (int i = 0; i < keys; ++i) {
    ks.emplace_back(t, Box::Centered(Vec(rng->Uniform(10, 90),
                                         rng->Uniform(10, 90)),
                                     8.0));
    t += rng->Uniform(0.5, 2.0);
  }
  return QueryTrajectory::Make(std::move(ks)).value();
}

void BM_SegmentExactIntersect(benchmark::State& state) {
  Rng rng(1);
  std::vector<StSegment> segs;
  std::vector<StBox> boxes;
  for (int i = 0; i < 1024; ++i) {
    segs.push_back(RandomSeg(&rng));
    boxes.push_back(RandomBox(&rng));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(segs[i & 1023].Intersects(boxes[i & 1023]));
    ++i;
  }
}

void BM_TrapezoidOverlapBox(benchmark::State& state) {
  Rng rng(2);
  const QueryTrajectory traj =
      RandomTrajectory(&rng, static_cast<int>(state.range(0)));
  std::vector<StBox> boxes;
  for (int i = 0; i < 1024; ++i) boxes.push_back(RandomBox(&rng));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(traj.OverlapTimes(boxes[i & 1023]));
    ++i;
  }
}

void BM_TrapezoidOverlapMotion(benchmark::State& state) {
  Rng rng(3);
  const QueryTrajectory traj =
      RandomTrajectory(&rng, static_cast<int>(state.range(0)));
  std::vector<StSegment> segs;
  for (int i = 0; i < 1024; ++i) segs.push_back(RandomSeg(&rng));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(traj.OverlapTimes(segs[i & 1023]));
    ++i;
  }
}

void BM_TimeSetAdd(benchmark::State& state) {
  Rng rng(4);
  std::vector<Interval> ivs;
  for (int i = 0; i < 4096; ++i) {
    const double lo = rng.Uniform(0, 100);
    ivs.emplace_back(lo, lo + rng.Uniform(0, 2));
  }
  for (auto _ : state) {
    TimeSet set;
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      set.Add(ivs[static_cast<size_t>(i) & 4095]);
    }
    benchmark::DoNotOptimize(set);
  }
}

void BM_QuadraticSplit(benchmark::State& state) {
  Rng rng(5);
  std::vector<StBox> boxes;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    boxes.push_back(QuantizeOutward(RandomSeg(&rng).Bounds()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(QuadraticSplit(boxes, n / 2, 0));
  }
}

void BM_NodeSerializeLeaf(benchmark::State& state) {
  Rng rng(6);
  Node node;
  node.self = 1;
  node.level = 0;
  node.dims = 2;
  for (int i = 0; i < LeafCapacity(2); ++i) {
    MotionSegment m(static_cast<ObjectId>(i), RandomSeg(&rng));
    m.seg = QuantizeStored(m.seg);
    node.segments.push_back(std::move(m));
  }
  uint8_t page[kPageSize];
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.SerializeTo(PageView(page, kPageSize)));
  }
}

void BM_NodeDeserializeLeaf(benchmark::State& state) {
  Rng rng(7);
  Node node;
  node.self = 1;
  node.level = 0;
  node.dims = 2;
  for (int i = 0; i < LeafCapacity(2); ++i) {
    MotionSegment m(static_cast<ObjectId>(i), RandomSeg(&rng));
    m.seg = QuantizeStored(m.seg);
    node.segments.push_back(std::move(m));
  }
  uint8_t page[kPageSize];
  benchmark::DoNotOptimize(node.SerializeTo(PageView(page, kPageSize)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Node::DeserializeFrom(page, 1));
  }
}

Node RandomLeafNode(Rng* rng) {
  Node node;
  node.self = 1;
  node.level = 0;
  node.dims = 2;
  for (int i = 0; i < LeafCapacity(2); ++i) {
    MotionSegment m(static_cast<ObjectId>(i), RandomSeg(rng));
    m.seg = QuantizeStored(m.seg);
    node.segments.push_back(std::move(m));
  }
  return node;
}

Node RandomInternalNode(Rng* rng) {
  Node node;
  node.self = 2;
  node.level = 1;
  node.dims = 2;
  for (int i = 0; i < InternalCapacity(2); ++i) {
    node.children.push_back(ChildEntry::ForBox(
        QuantizeOutward(RandomSeg(rng).Bounds()),
        static_cast<PageId>(i + 10)));
  }
  return node;
}

SoaNode DecodeSoa(const Node& node) {
  uint8_t page[kPageSize];
  benchmark::DoNotOptimize(node.SerializeTo(PageView(page, kPageSize)));
  SoaNode soa;
  benchmark::DoNotOptimize(soa.DecodeFrom(page, node.self));
  return soa;
}

/// Pins the benchmarked tier; skips when the CPU lacks it. range(0): 0 =
/// scalar, 1 = AVX2 (mirrors the kernels' runtime dispatch).
bool PinSimdTier(benchmark::State& state) {
  if (state.range(0) == 0) {
    ForceSimdLevel(SimdLevel::kScalar);
    return true;
  }
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) {
    ForceSimdLevel(SimdLevel::kAvx2);
    return true;
  }
#endif
  state.SkipWithError("CPU lacks AVX2");
  return false;
}

/// Decode of a full leaf page into reused SoA columns — the per-visit cost
/// the decoded-node cache amortizes (compare BM_NodeDeserializeLeaf, the
/// AoS decode the legacy path pays instead).
void BM_SoaDecodeLeaf(benchmark::State& state) {
  Rng rng(8);
  const Node node = RandomLeafNode(&rng);
  uint8_t page[kPageSize];
  benchmark::DoNotOptimize(node.SerializeTo(PageView(page, kPageSize)));
  SoaNode soa;
  for (auto _ : state) {
    benchmark::DoNotOptimize(soa.DecodeFrom(page, 1));
  }
}

/// PDQ internal-node candidacy over a full node, per dispatch tier.
void BM_PdqOverlapBoxBatch(benchmark::State& state) {
  if (!PinSimdTier(state)) return;
  Rng rng(9);
  const QueryTrajectory traj = RandomTrajectory(&rng, 8);
  const TrajectoryCoeffs coeffs = TrajectoryCoeffs::Build(traj);
  const SoaNode soa = DecodeSoa(RandomInternalNode(&rng));
  std::vector<TimeSet> out;
  for (auto _ : state) {
    PdqOverlapBoxBatch(coeffs, soa, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * soa.count);
  ForceSimdLevel(std::nullopt);
}

/// NPDQ leaf emission over a full leaf, per dispatch tier (bounding-box
/// semantics with a usable previous snapshot — the paper configuration).
void BM_NpdqLeafMatchBatch(benchmark::State& state) {
  if (!PinSimdTier(state)) return;
  Rng rng(10);
  const SoaNode soa = DecodeSoa(RandomLeafNode(&rng));
  const StBox p = RandomBox(&rng);
  StBox q = p;
  q.time = Interval(p.time.lo + 0.5, p.time.hi + 0.5);
  std::vector<uint8_t> out;
  for (auto _ : state) {
    NpdqLeafMatchBatch(&p, q, /*exact=*/false, soa, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * soa.count);
  ForceSimdLevel(std::nullopt);
}

/// PDQ heap pop, move vs copy. GetNext moves the top item out of the heap
/// slot (pdq.cc); range(0) == 0 measures that, range(0) == 1 the
/// pre-optimization copy of the TimeSet + MotionSegment payload, so the
/// spread is the per-pop win this guard protects.
void BM_PdqQueuePops(benchmark::State& state) {
  struct Item {
    double priority = 0.0;
    MotionSegment motion;
    TimeSet times;
  };
  struct ItemCompare {
    bool operator()(const Item& a, const Item& b) const {
      return a.priority > b.priority;
    }
  };
  Rng rng(11);
  std::priority_queue<Item, std::vector<Item>, ItemCompare> queue;
  for (int i = 0; i < 256; ++i) {
    Item item;
    item.priority = rng.Uniform(0, 100);
    item.motion = MotionSegment(static_cast<ObjectId>(i), RandomSeg(&rng));
    for (int j = 0; j < 6; ++j) {
      const double lo = rng.Uniform(0, 100);
      item.times.Add(Interval(lo, lo + rng.Uniform(0, 3)));
    }
    queue.push(std::move(item));
  }
  const bool copy = state.range(0) != 0;
  for (auto _ : state) {
    // Steady state: pop one, requeue it at a later priority.
    Item item = copy ? queue.top()
                     : std::move(const_cast<Item&>(queue.top()));
    queue.pop();
    item.priority += rng.Uniform(0, 10);
    if (item.priority > 100.0) item.priority -= 100.0;
    queue.push(std::move(item));
  }
}

// ---------------------------------------------------------------------------
// Metrics overhead: the per-record cost the instrumentation adds to hot
// paths. range(0): 1 = metrics on (one relaxed fetch_add per record),
// 0 = DQMO_METRICS=off (the record path reduces to one branch; the timer
// variant must not touch the clock). These quantify the cost model stated
// in common/metrics.h; tools/ci.sh enforces the end-to-end consequence on
// abl_hot_path.

void BM_MetricsCounterAdd(benchmark::State& state) {
  const bool was_enabled = MetricsEnabled();
  SetMetricsEnabled(state.range(0) != 0);
  Counter counter;
  for (auto _ : state) {
    counter.Add();
    benchmark::DoNotOptimize(&counter);
  }
  SetMetricsEnabled(was_enabled);
}

void BM_MetricsHistogramRecord(benchmark::State& state) {
  const bool was_enabled = MetricsEnabled();
  SetMetricsEnabled(state.range(0) != 0);
  Histogram histogram;
  uint64_t v = 1;
  for (auto _ : state) {
    histogram.Record(v);
    v = (v * 2862933555777941757ull + 3037000493ull) >> 40;  // Vary buckets.
    benchmark::DoNotOptimize(&histogram);
  }
  SetMetricsEnabled(was_enabled);
}

void BM_MetricsScopedTimer(benchmark::State& state) {
  const bool was_enabled = MetricsEnabled();
  SetMetricsEnabled(state.range(0) != 0);
  Histogram histogram;
  for (auto _ : state) {
    ScopedLatencyTimer timer(&histogram);
    benchmark::DoNotOptimize(&histogram);
  }
  SetMetricsEnabled(was_enabled);
}

}  // namespace

BENCHMARK(BM_SegmentExactIntersect);
BENCHMARK(BM_TrapezoidOverlapBox)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_TrapezoidOverlapMotion)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_TimeSetAdd)->Arg(16)->Arg(256);
BENCHMARK(BM_QuadraticSplit)->Arg(64)->Arg(114)->Arg(128);
BENCHMARK(BM_NodeSerializeLeaf);
BENCHMARK(BM_NodeDeserializeLeaf);
BENCHMARK(BM_SoaDecodeLeaf);
BENCHMARK(BM_PdqOverlapBoxBatch)->Arg(0)->Arg(1);
BENCHMARK(BM_NpdqLeafMatchBatch)->Arg(0)->Arg(1);
BENCHMARK(BM_PdqQueuePops)->Arg(0)->Arg(1);
BENCHMARK(BM_MetricsCounterAdd)->Arg(0)->Arg(1);
BENCHMARK(BM_MetricsHistogramRecord)->Arg(0)->Arg(1);
BENCHMARK(BM_MetricsScopedTimer)->Arg(0)->Arg(1);

BENCHMARK_MAIN();
