// Microbenchmarks (google-benchmark) for the geometric and storage kernels
// on the query hot path: exact segment tests, trapezoid overlap times,
// TimeSet maintenance, quadratic splits and node (de)serialization.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "geom/timeset.h"
#include "geom/trajectory.h"
#include "rtree/node.h"
#include "rtree/split.h"

namespace {

using namespace dqmo;

StSegment RandomSeg(Rng* rng) {
  return StSegment(Vec(rng->Uniform(0, 100), rng->Uniform(0, 100)),
                   Vec(rng->Uniform(0, 100), rng->Uniform(0, 100)),
                   Interval(rng->Uniform(0, 50), rng->Uniform(50, 100)));
}

StBox RandomBox(Rng* rng) {
  const double x = rng->Uniform(0, 90);
  const double y = rng->Uniform(0, 90);
  const double t = rng->Uniform(0, 90);
  return StBox(Box(Interval(x, x + 10), Interval(y, y + 10)),
               Interval(t, t + 5));
}

QueryTrajectory RandomTrajectory(Rng* rng, int keys) {
  std::vector<KeySnapshot> ks;
  double t = 0.0;
  for (int i = 0; i < keys; ++i) {
    ks.emplace_back(t, Box::Centered(Vec(rng->Uniform(10, 90),
                                         rng->Uniform(10, 90)),
                                     8.0));
    t += rng->Uniform(0.5, 2.0);
  }
  return QueryTrajectory::Make(std::move(ks)).value();
}

void BM_SegmentExactIntersect(benchmark::State& state) {
  Rng rng(1);
  std::vector<StSegment> segs;
  std::vector<StBox> boxes;
  for (int i = 0; i < 1024; ++i) {
    segs.push_back(RandomSeg(&rng));
    boxes.push_back(RandomBox(&rng));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(segs[i & 1023].Intersects(boxes[i & 1023]));
    ++i;
  }
}

void BM_TrapezoidOverlapBox(benchmark::State& state) {
  Rng rng(2);
  const QueryTrajectory traj =
      RandomTrajectory(&rng, static_cast<int>(state.range(0)));
  std::vector<StBox> boxes;
  for (int i = 0; i < 1024; ++i) boxes.push_back(RandomBox(&rng));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(traj.OverlapTimes(boxes[i & 1023]));
    ++i;
  }
}

void BM_TrapezoidOverlapMotion(benchmark::State& state) {
  Rng rng(3);
  const QueryTrajectory traj =
      RandomTrajectory(&rng, static_cast<int>(state.range(0)));
  std::vector<StSegment> segs;
  for (int i = 0; i < 1024; ++i) segs.push_back(RandomSeg(&rng));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(traj.OverlapTimes(segs[i & 1023]));
    ++i;
  }
}

void BM_TimeSetAdd(benchmark::State& state) {
  Rng rng(4);
  std::vector<Interval> ivs;
  for (int i = 0; i < 4096; ++i) {
    const double lo = rng.Uniform(0, 100);
    ivs.emplace_back(lo, lo + rng.Uniform(0, 2));
  }
  for (auto _ : state) {
    TimeSet set;
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      set.Add(ivs[static_cast<size_t>(i) & 4095]);
    }
    benchmark::DoNotOptimize(set);
  }
}

void BM_QuadraticSplit(benchmark::State& state) {
  Rng rng(5);
  std::vector<StBox> boxes;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    boxes.push_back(QuantizeOutward(RandomSeg(&rng).Bounds()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(QuadraticSplit(boxes, n / 2, 0));
  }
}

void BM_NodeSerializeLeaf(benchmark::State& state) {
  Rng rng(6);
  Node node;
  node.self = 1;
  node.level = 0;
  node.dims = 2;
  for (int i = 0; i < LeafCapacity(2); ++i) {
    MotionSegment m(static_cast<ObjectId>(i), RandomSeg(&rng));
    m.seg = QuantizeStored(m.seg);
    node.segments.push_back(std::move(m));
  }
  uint8_t page[kPageSize];
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.SerializeTo(PageView(page, kPageSize)));
  }
}

void BM_NodeDeserializeLeaf(benchmark::State& state) {
  Rng rng(7);
  Node node;
  node.self = 1;
  node.level = 0;
  node.dims = 2;
  for (int i = 0; i < LeafCapacity(2); ++i) {
    MotionSegment m(static_cast<ObjectId>(i), RandomSeg(&rng));
    m.seg = QuantizeStored(m.seg);
    node.segments.push_back(std::move(m));
  }
  uint8_t page[kPageSize];
  benchmark::DoNotOptimize(node.SerializeTo(PageView(page, kPageSize)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Node::DeserializeFrom(page, 1));
  }
}

}  // namespace

BENCHMARK(BM_SegmentExactIntersect);
BENCHMARK(BM_TrapezoidOverlapBox)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_TrapezoidOverlapMotion)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_TimeSetAdd)->Arg(16)->Arg(256);
BENCHMARK(BM_QuadraticSplit)->Arg(64)->Arg(114)->Arg(128);
BENCHMARK(BM_NodeSerializeLeaf);
BENCHMARK(BM_NodeDeserializeLeaf);

BENCHMARK_MAIN();
