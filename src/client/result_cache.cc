#include "client/result_cache.h"

#include <algorithm>

namespace dqmo {

void ResultCache::Insert(const MotionSegment& motion,
                         const TimeSet& visible_times) {
  if (visible_times.empty() || visible_times.End() < now_) return;
  const MotionSegment::Key key = motion.key();
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    // Refresh: extend visibility (e.g. the same segment re-reported by an
    // NPDQ frame after intermittent visibility).
    TimeSet merged = it->second.visible;
    merged.AddAll(visible_times);
    // Drop the old eviction index entry.
    auto range = by_disappearance_.equal_range(it->second.disappearance);
    for (auto e = range.first; e != range.second; ++e) {
      if (e->second == key) {
        by_disappearance_.erase(e);
        break;
      }
    }
    it->second.visible = std::move(merged);
    it->second.disappearance = it->second.visible.End();
    by_disappearance_.emplace(it->second.disappearance, key);
    return;
  }
  Entry entry{motion, visible_times, visible_times.End()};
  by_disappearance_.emplace(entry.disappearance, key);
  by_key_.emplace(key, std::move(entry));
  ++total_insertions_;
  peak_size_ = std::max(peak_size_, by_key_.size());
}

size_t ResultCache::AdvanceTo(double now) {
  now_ = std::max(now_, now);
  size_t evicted = 0;
  while (!by_disappearance_.empty() &&
         by_disappearance_.begin()->first < now_) {
    by_key_.erase(by_disappearance_.begin()->second);
    by_disappearance_.erase(by_disappearance_.begin());
    ++evicted;
  }
  total_evictions_ += evicted;
  return evicted;
}

std::vector<MotionSegment> ResultCache::VisibleAt(double t) const {
  std::vector<MotionSegment> out;
  for (const auto& [key, entry] : by_key_) {
    if (entry.visible.Contains(t)) out.push_back(entry.motion);
  }
  return out;
}

bool ResultCache::Contains(const MotionSegment::Key& key) const {
  return by_key_.contains(key);
}

}  // namespace dqmo
