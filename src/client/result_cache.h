// Client-side result cache keyed on object disappearance time.
//
// The paper (Sect. 4.1): "Along with each object returned, the database
// will inform the application about how long that object will stay in the
// view ... it is easy (at the client) to maintain objects keyed on their
// 'disappearance time', discarding them from the cache at that time." This
// is that cache: the rendering client inserts each PDQ/NPDQ result with its
// visibility times and, each frame, asks for the currently visible set;
// expired entries are evicted as time advances.
#ifndef DQMO_CLIENT_RESULT_CACHE_H_
#define DQMO_CLIENT_RESULT_CACHE_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "geom/timeset.h"
#include "motion/motion_segment.h"

namespace dqmo {

/// Cache of currently (or soon-to-be) visible motion segments.
class ResultCache {
 public:
  ResultCache() = default;

  /// Inserts (or refreshes) a retrieved object with the time set during
  /// which it is visible. Entries whose visibility already ended are
  /// ignored.
  void Insert(const MotionSegment& motion, const TimeSet& visible_times);

  /// Advances the clock, evicting every entry whose disappearance time
  /// (end of visibility) is before `now`. Returns the number evicted.
  size_t AdvanceTo(double now);

  /// The objects visible at instant `t` (t must be >= the last AdvanceTo
  /// time). An object with intermittent visibility is reported only while
  /// one of its visibility intervals covers `t`.
  std::vector<MotionSegment> VisibleAt(double t) const;

  /// True iff the segment is cached (visible now or scheduled to be).
  bool Contains(const MotionSegment::Key& key) const;

  size_t size() const { return by_key_.size(); }
  bool empty() const { return by_key_.empty(); }

  uint64_t total_insertions() const { return total_insertions_; }
  uint64_t total_evictions() const { return total_evictions_; }

  /// Peak number of simultaneously cached entries — the client buffer size
  /// the paper's "late retrieval" argument is about.
  size_t peak_size() const { return peak_size_; }

 private:
  struct Entry {
    MotionSegment motion;
    TimeSet visible;
    double disappearance;  // visible.End().
  };

  std::unordered_map<MotionSegment::Key, Entry, MotionKeyHash> by_key_;
  // Eviction index: disappearance time -> keys (multimap: ties allowed).
  std::multimap<double, MotionSegment::Key> by_disappearance_;
  double now_ = -kInf;
  uint64_t total_insertions_ = 0;
  uint64_t total_evictions_ = 0;
  size_t peak_size_ = 0;
};

}  // namespace dqmo

#endif  // DQMO_CLIENT_RESULT_CACHE_H_
