#include "common/recorder.h"

#include <sys/time.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/crc32c.h"
#include "common/env.h"
#include "common/string_util.h"

namespace dqmo {

#ifndef DQMO_METRICS_DISABLED
namespace internal {
namespace {
bool RecorderEnabledFromEnv() {
  const std::string v = GetEnvString("DQMO_RECORDER", "on");
  return !(v == "off" || v == "0" || v == "false" || v == "no");
}
}  // namespace

std::atomic<bool>& RecorderEnabledFlag() {
  static std::atomic<bool> flag{RecorderEnabledFromEnv()};
  return flag;
}
}  // namespace internal
#endif  // DQMO_METRICS_DISABLED

namespace {

// Blackbox wire format v1. All integers little-endian (the only targets).
//
//   u32 magic "DQBB"   u32 version
//   u64 snapshot_ns    u64 wall_unix_us
//   u32 reason_len     u32 thread_count    <reason bytes>
//   per thread: u32 thread_index, u32 event_count, u64 recorded,
//               event_count * 3 u64 words
//   u32 crc32c over everything above
constexpr uint32_t kBlackboxMagic = 0x42425144;  // "DQBB" little-endian.
constexpr uint32_t kBlackboxVersion = 1;

// kind (8) | shard as u16 (16) | trace_low (32) packed into word 2.
uint64_t PackMeta(FlightEventKind kind, int16_t shard, uint32_t trace_low) {
  return static_cast<uint64_t>(static_cast<uint8_t>(kind)) |
         (static_cast<uint64_t>(static_cast<uint16_t>(shard)) << 8) |
         (static_cast<uint64_t>(trace_low) << 24);
}

void UnpackMeta(uint64_t meta, FlightEvent* e) {
  e->kind = static_cast<FlightEventKind>(meta & 0xff);
  e->shard = static_cast<int16_t>(static_cast<uint16_t>((meta >> 8) & 0xffff));
  e->trace_low = static_cast<uint32_t>(meta >> 24);
}

struct RecorderMetrics {
  Counter* events;
  Counter* dumps;
  static RecorderMetrics& Get() {
    static RecorderMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return RecorderMetrics{
          r.GetCounter("dqmo_recorder_events_total",
                       "Flight-recorder events appended to thread rings"),
          r.GetCounter("dqmo_recorder_dumps_total",
                       "Blackbox files written (manual + auto-trigger)"),
      };
    }();
    return m;
  }
};

size_t RingCapacityFromEnv() {
  int64_t n = GetEnvInt("DQMO_RECORDER_EVENTS", 4096);
  if (n < 64) n = 64;
  if (n > 65536) n = 65536;
  // Round down to a power of two so the write index wraps with a mask.
  size_t cap = 1;
  while (cap * 2 <= static_cast<size_t>(n)) cap *= 2;
  return cap;
}

// One thread's ring: single writer (the owning thread), any-thread
// snapshot. Three relaxed atomic words per event keep TSan clean without
// fences; head is released so a snapshot that observes head >= n also
// observes the slots of events 0..n-1 (modulo the one event being written
// concurrently, which may tear — acceptable for diagnostics).
struct ThreadRing {
  explicit ThreadRing(size_t capacity)
      : cap(capacity), words(new std::atomic<uint64_t>[capacity * 3]) {
    for (size_t i = 0; i < capacity * 3; ++i) {
      words[i].store(0, std::memory_order_relaxed);
    }
  }

  void Append(uint64_t ts_ns, uint64_t detail, uint64_t meta) {
    const uint64_t pos = head.load(std::memory_order_relaxed);
    const size_t slot = (pos & (cap - 1)) * 3;
    words[slot].store(ts_ns, std::memory_order_relaxed);
    words[slot + 1].store(detail, std::memory_order_relaxed);
    words[slot + 2].store(meta, std::memory_order_relaxed);
    head.store(pos + 1, std::memory_order_release);
  }

  const size_t cap;
  std::unique_ptr<std::atomic<uint64_t>[]> words;
  std::atomic<uint64_t> head{0};
};

uint64_t WallUnixMicros() {
  struct timeval tv;
  gettimeofday(&tv, nullptr);
  return static_cast<uint64_t>(tv.tv_sec) * 1000000u +
         static_cast<uint64_t>(tv.tv_usec);
}

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(const std::string& in, size_t* off, uint32_t* v) {
  if (*off + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *off, sizeof(*v));
  *off += sizeof(*v);
  return true;
}
bool ReadU64(const std::string& in, size_t* off, uint64_t* v) {
  if (*off + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *off, sizeof(*v));
  *off += sizeof(*v);
  return true;
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kMark:
      return "mark";
    case FlightEventKind::kBreakerOpen:
      return "breaker_open";
    case FlightEventKind::kBreakerHalfOpen:
      return "breaker_half_open";
    case FlightEventKind::kBreakerClose:
      return "breaker_close";
    case FlightEventKind::kFrameShed:
      return "frame_shed";
    case FlightEventKind::kFrameSlow:
      return "frame_slow";
    case FlightEventKind::kGovernorLevel:
      return "governor_level";
    case FlightEventKind::kAdmissionReject:
      return "admission_reject";
    case FlightEventKind::kWalSync:
      return "wal_sync";
    case FlightEventKind::kSlowRead:
      return "slow_read";
    case FlightEventKind::kRedoPark:
      return "redo_park";
    case FlightEventKind::kRedoDrain:
      return "redo_drain";
    case FlightEventKind::kScrubRepair:
      return "scrub_repair";
    case FlightEventKind::kPrefetchCancel:
      return "prefetch_cancel";
    case FlightEventKind::kQuarantine:
      return "quarantine";
    case FlightEventKind::kNumKinds:
      break;
  }
  return "unknown";
}

struct FlightRecorder::Impl {
  const size_t capacity = RingCapacityFromEnv();

  // Ring registry: rings are created on a thread's first record and never
  // destroyed (a post-mortem dump must include exited threads).
  mutable std::mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;  // Guarded by mu.
  std::string blackbox_dir;                        // Guarded by mu.
  bool blackbox_dir_loaded = false;                // Guarded by mu.

  // Auto-dump throttle: monotone ns of the last dump + total dumps.
  std::atomic<uint64_t> last_dump_ns{0};
  std::atomic<uint32_t> auto_dumps{0};
  std::atomic<uint32_t> dump_seq{0};

  ThreadRing* RegisterRing() {
    auto ring = std::make_unique<ThreadRing>(capacity);
    ThreadRing* raw = ring.get();
    std::lock_guard<std::mutex> lock(mu);
    rings.push_back(std::move(ring));
    return raw;
  }
};

FlightRecorder::Impl& FlightRecorder::impl() const {
  static Impl* impl = new Impl();  // Leaked: recorder outlives everything.
  return *impl;
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Record(FlightEventKind kind, int shard, uint64_t detail) {
  if (!RecorderEnabled()) return;
  // One ring pointer per thread, registered on first use.
  thread_local ThreadRing* ring = Global().impl().RegisterRing();
  ring->Append(NowNs(), detail,
               PackMeta(kind, static_cast<int16_t>(shard),
                        static_cast<uint32_t>(ActiveTraceId())));
  RecorderMetrics::Get().events->Add();
}

std::vector<BlackboxDump::ThreadSection> FlightRecorder::Snapshot() const {
  Impl& im = impl();
  std::vector<BlackboxDump::ThreadSection> sections;
  std::lock_guard<std::mutex> lock(im.mu);
  sections.reserve(im.rings.size());
  for (size_t t = 0; t < im.rings.size(); ++t) {
    const ThreadRing& ring = *im.rings[t];
    BlackboxDump::ThreadSection section;
    section.thread_index = static_cast<uint32_t>(t);
    const uint64_t head = ring.head.load(std::memory_order_acquire);
    section.recorded = head;
    const uint64_t n = head < ring.cap ? head : ring.cap;
    section.events.reserve(n);
    for (uint64_t i = head - n; i < head; ++i) {
      const size_t slot = (i & (ring.cap - 1)) * 3;
      FlightEvent e;
      e.ts_ns = ring.words[slot].load(std::memory_order_relaxed);
      e.detail = ring.words[slot + 1].load(std::memory_order_relaxed);
      UnpackMeta(ring.words[slot + 2].load(std::memory_order_relaxed), &e);
      section.events.push_back(e);
    }
    sections.push_back(std::move(section));
  }
  return sections;
}

Status FlightRecorder::WriteBlackbox(const std::string& path,
                                     const std::string& reason) {
  const std::vector<BlackboxDump::ThreadSection> sections = Snapshot();
  std::string out;
  AppendU32(&out, kBlackboxMagic);
  AppendU32(&out, kBlackboxVersion);
  AppendU64(&out, NowNs());
  AppendU64(&out, WallUnixMicros());
  const std::string trimmed = reason.substr(0, 256);
  AppendU32(&out, static_cast<uint32_t>(trimmed.size()));
  AppendU32(&out, static_cast<uint32_t>(sections.size()));
  out += trimmed;
  for (const BlackboxDump::ThreadSection& section : sections) {
    AppendU32(&out, section.thread_index);
    AppendU32(&out, static_cast<uint32_t>(section.events.size()));
    AppendU64(&out, section.recorded);
    for (const FlightEvent& e : section.events) {
      AppendU64(&out, e.ts_ns);
      AppendU64(&out, e.detail);
      AppendU64(&out, PackMeta(e.kind, e.shard, e.trace_low));
    }
  }
  AppendU32(&out, Crc32c(out.data(), out.size()));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create blackbox file " + path);
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool ok = written == out.size() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) return Status::IOError("short write to blackbox file " + path);
  RecorderMetrics::Get().dumps->Add();
  return Status::OK();
}

Status FlightRecorder::ReadBlackbox(const std::string& path,
                                    BlackboxDump* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string data;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);

  if (data.size() < 12) return Status::Corruption("blackbox too short");
  const uint32_t stored_crc = [&] {
    uint32_t v;
    std::memcpy(&v, data.data() + data.size() - 4, 4);
    return v;
  }();
  if (Crc32c(data.data(), data.size() - 4) != stored_crc) {
    return Status::Corruption("blackbox CRC mismatch in " + path);
  }

  size_t off = 0;
  uint32_t magic = 0, version = 0, reason_len = 0, thread_count = 0;
  uint64_t snapshot_ns = 0, wall_us = 0;
  if (!ReadU32(data, &off, &magic) || magic != kBlackboxMagic) {
    return Status::Corruption("not a blackbox file: " + path);
  }
  if (!ReadU32(data, &off, &version) || version == 0 ||
      version > kBlackboxVersion) {
    return Status::NotSupported(
        StrFormat("blackbox version %u not supported", version));
  }
  if (!ReadU64(data, &off, &snapshot_ns) || !ReadU64(data, &off, &wall_us) ||
      !ReadU32(data, &off, &reason_len) ||
      !ReadU32(data, &off, &thread_count) ||
      off + reason_len > data.size()) {
    return Status::Corruption("truncated blackbox header");
  }
  out->version = version;
  out->snapshot_ns = snapshot_ns;
  out->wall_unix_us = wall_us;
  out->reason = data.substr(off, reason_len);
  off += reason_len;
  out->threads.clear();
  for (uint32_t t = 0; t < thread_count; ++t) {
    BlackboxDump::ThreadSection section;
    uint32_t event_count = 0;
    if (!ReadU32(data, &off, &section.thread_index) ||
        !ReadU32(data, &off, &event_count) ||
        !ReadU64(data, &off, &section.recorded)) {
      return Status::Corruption("truncated blackbox thread header");
    }
    section.events.reserve(event_count);
    for (uint32_t i = 0; i < event_count; ++i) {
      uint64_t ts = 0, detail = 0, meta = 0;
      if (!ReadU64(data, &off, &ts) || !ReadU64(data, &off, &detail) ||
          !ReadU64(data, &off, &meta)) {
        return Status::Corruption("truncated blackbox event");
      }
      FlightEvent e;
      e.ts_ns = ts;
      e.detail = detail;
      UnpackMeta(meta, &e);
      section.events.push_back(e);
    }
    out->threads.push_back(std::move(section));
  }
  return Status::OK();
}

bool FlightRecorder::MaybeAutoDump(const std::string& reason) {
  if (!RecorderEnabled()) return false;
  const std::string dir = blackbox_dir();
  if (dir.empty()) return false;
  Impl& im = impl();
  // Rate limit: one dump per second, 64 per process. CAS on the last-dump
  // tick keeps concurrent triggers from stacking dumps.
  if (im.auto_dumps.load(std::memory_order_relaxed) >= 64) return false;
  const uint64_t now = NowNs();
  uint64_t last = im.last_dump_ns.load(std::memory_order_relaxed);
  if (last != 0 && now - last < 1000000000ull) return false;
  if (!im.last_dump_ns.compare_exchange_strong(last, now,
                                               std::memory_order_relaxed)) {
    return false;
  }
  im.auto_dumps.fetch_add(1, std::memory_order_relaxed);
  const uint32_t seq = im.dump_seq.fetch_add(1, std::memory_order_relaxed);
  const std::string path = StrFormat("%s/blackbox-%04u.dqbb", dir.c_str(), seq);
  return WriteBlackbox(path, reason).ok();
}

void FlightRecorder::SetBlackboxDir(const std::string& dir) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.blackbox_dir = dir;
  im.blackbox_dir_loaded = true;
}

std::string FlightRecorder::blackbox_dir() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (!im.blackbox_dir_loaded) {
    im.blackbox_dir = GetEnvString("DQMO_BLACKBOX_DIR", "");
    im.blackbox_dir_loaded = true;
  }
  return im.blackbox_dir;
}

size_t FlightRecorder::ring_capacity() const { return impl().capacity; }

void FlightRecorder::ClearForTest() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (std::unique_ptr<ThreadRing>& ring : im.rings) {
    // Writers may be appending concurrently; dropping buffered events via
    // head reset is test-only and called from quiescent states.
    ring->head.store(0, std::memory_order_relaxed);
  }
  im.last_dump_ns.store(0, std::memory_order_relaxed);
  im.auto_dumps.store(0, std::memory_order_relaxed);
}

}  // namespace dqmo
