// Process-wide metrics: named counters, gauges, and log-bucketed latency
// histograms behind one registry, with Prometheus-style text and JSON
// exposition.
//
// The paper's evaluation is an exercise in counting where time and I/O go
// (leaf vs non-leaf accesses, Figs. 6-13); a production moving-object
// service is operated through the same numbers, continuously. This module
// is the one place those numbers live: storage, WAL, gate, cache, and
// query layers all publish here, `dqmo_tool stats` and the bench JSON
// expose the result, and tests assert cross-layer invariants (e.g. the
// exact node-accounting rule from the zero-copy hot path) against it.
//
// Cost model (the hot-path contract, enforced by tools/ci.sh):
//  * Counters/gauges are single relaxed atomics; recording is one enabled
//    check plus one fetch_add.
//  * Histograms are arrays of relaxed atomic buckets — lock-free, safe to
//    hammer from any number of threads, mergeable by element-wise addition.
//  * Everything is gated on MetricsEnabled(): with DQMO_METRICS=off the
//    record paths reduce to one predictable branch and the timing helpers
//    never touch the clock.
//  * Compile-time kill switch: building with -DDQMO_METRICS_DISABLED (the
//    CMake option DQMO_METRICS=OFF) folds the enabled check to constant
//    false, compiling every record site out entirely.
#ifndef DQMO_COMMON_METRICS_H_
#define DQMO_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace dqmo {

// ---------------------------------------------------------------------------
// Enablement.

#ifdef DQMO_METRICS_DISABLED
constexpr bool MetricsEnabled() { return false; }
inline void SetMetricsEnabled(bool) {}
#else
namespace internal {
std::atomic<bool>& MetricsEnabledFlag();
}  // namespace internal

/// True unless the process was started with DQMO_METRICS=off/0/false/no or
/// SetMetricsEnabled(false) was called. Checked (relaxed) on every record.
inline bool MetricsEnabled() {
  return internal::MetricsEnabledFlag().load(std::memory_order_relaxed);
}

/// Overrides the DQMO_METRICS environment toggle (tests, A/B overhead
/// measurements). Not synchronized with in-flight recorders beyond the
/// atomic flag itself; flip while instrumented code is quiescent when a
/// cross-counter-consistent cutover matters.
inline void SetMetricsEnabled(bool enabled) {
  internal::MetricsEnabledFlag().store(enabled, std::memory_order_relaxed);
}
#endif  // DQMO_METRICS_DISABLED

namespace internal {
/// Trace id of the calling thread's current armed frame (0: none). Owned
/// here rather than in trace.h so histogram exemplars and flight-recorder
/// events can stamp the id without a layering cycle; the tracer writes it
/// when an armed frame opens/closes. Inline thread_local for the same
/// no-TLS-wrapper reason as tls_frame_armed (see trace.h); defined
/// unconditionally so writers compile when metrics are compiled out.
inline thread_local uint64_t tls_active_trace_id = 0;
}  // namespace internal

/// Trace id of the calling thread's current armed frame, 0 when none (or
/// when metrics are compiled out). Set by the tracer; read by histogram
/// exemplars and the flight recorder.
inline uint64_t ActiveTraceId() {
#ifdef DQMO_METRICS_DISABLED
  return 0;
#else
  return internal::tls_active_trace_id;
#endif
}

/// Monotonic nanoseconds (steady_clock). Not gated — call through TickNs()
/// on record paths so disabled builds never touch the clock.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Start-of-interval tick: the current time when metrics are on, 0 when
/// off. Pair with Histogram::RecordSince(tick).
inline uint64_t TickNs() { return MetricsEnabled() ? NowNs() : 0; }

// ---------------------------------------------------------------------------
// Metric kinds.

/// Monotonically increasing event count. Relaxed atomic: a statistic,
/// never a synchronization mechanism (the IoStats rule).
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (MetricsEnabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(int64_t v) {
    if (MetricsEnabled()) value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t n) {
    if (MetricsEnabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Monotone high-watermark update: keeps the largest value ever set
  /// (peak queue depth, deepest recursion). Lock-free CAS loop.
  void SetMax(int64_t v) {
    if (!MetricsEnabled()) return;
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Snapshot of a Histogram: plain integers, mergeable, with quantile
/// estimates. Taking a snapshot while recorders run yields a slightly torn
/// but monotone-safe view (each bucket is read atomically); quiesce when an
/// exact cross-bucket view matters, as with IoStats.
struct HistogramSnapshot {
  /// Bucket b holds values v with BucketIndex(v) == b: bucket 0 is {0},
  /// bucket b >= 1 covers [2^(b-1), 2^b - 1].
  static constexpr int kNumBuckets = 65;

  uint64_t buckets[kNumBuckets] = {};
  /// Exemplar per bucket: the trace id of the most recent sample recorded
  /// into that bucket from inside an armed frame (0: none). Joins a p99
  /// bucket back to the captured trace that landed there.
  uint64_t exemplars[kNumBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  /// Merge is commutative and associative: element-wise sums, max of maxes;
  /// a non-zero exemplar from `other` wins (it is the more recent view).
  HistogramSnapshot& Merge(const HistogramSnapshot& other);

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper-bound quantile estimate: the smallest bucket upper bound whose
  /// cumulative count reaches p% of all samples (clamped to max). The
  /// estimate never undershoots the true quantile's bucket. p in [0, 100].
  uint64_t Percentile(double p) const;

  /// Trace-id exemplar nearest the p-th percentile bucket: that bucket's
  /// exemplar if set, else the nearest non-empty-exemplar bucket above it,
  /// else below. 0 when no exemplar was ever recorded.
  uint64_t ExemplarNear(double p) const;
};

/// Log-bucketed distribution (latencies in ns, depths, sizes). Lock-free:
/// one relaxed fetch_add on the bucket, sum, and a CAS-free running max.
class Histogram {
 public:
  static constexpr int kNumBuckets = HistogramSnapshot::kNumBuckets;

  /// Bucket index of `v`: 0 for 0, else bit_width(v) (1..64).
  static int BucketIndex(uint64_t v);
  /// Smallest value mapping to bucket `b` (0, then 2^(b-1)).
  static uint64_t BucketLowerBound(int b);
  /// Largest value mapping to bucket `b` (0, then 2^b - 1; b = 64 saturates
  /// at UINT64_MAX).
  static uint64_t BucketUpperBound(int b);

  void Record(uint64_t v);

  /// Records NowNs() - tick when `tick` came from TickNs() while metrics
  /// were on; no-op (and no clock read) for tick == 0.
  void RecordSince(uint64_t tick) {
    if (tick != 0) Record(NowNs() - tick);
  }

  HistogramSnapshot Snapshot() const;
  uint64_t count() const;
  void ResetForTest();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  // Last trace id to land in each bucket (0: none). Plain relaxed store on
  // record — an exemplar is a hint, not an invariant.
  std::atomic<uint64_t> exemplars_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Times one scope into a histogram. Skips the clock entirely when metrics
/// are off.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* h) : h_(h), tick_(TickNs()) {}
  ~ScopedLatencyTimer() { h_->RecordSince(tick_); }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* h_;
  uint64_t tick_;
};

// ---------------------------------------------------------------------------
// Registry.

/// Process-wide directory of metrics, keyed by Prometheus-style names
/// (`dqmo_<layer>_<what>[_total|_ns]`; DESIGN.md "Observability" documents
/// the scheme). Get* registers on first use and returns a stable pointer —
/// instrumented sites cache it in a function-local static, so the mutex is
/// paid once per site, not per record. Metrics are never unregistered.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Create-or-fetch. A metric name must keep one kind for the process
  /// lifetime (checked; kind mismatch aborts — it is a programming error).
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  /// Prometheus text exposition: HELP/TYPE comments, `_total` counters,
  /// cumulative `_bucket{le="..."}` rows plus `_sum`/`_count` for
  /// histograms. Bucket rows stop at the highest non-empty bucket (a legal
  /// subset of the le-series) to keep the output proportionate.
  std::string PrometheusText() const;

  /// JSON dump: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, mean, max, p50, p95, p99}}}. Consumed by the
  /// BENCH_*.json MetricsSnapshot block and `dqmo_tool stats --json`.
  std::string JsonText() const;

  /// One row per metric for the end-of-run summary table (sorted by name).
  struct Row {
    std::string name;
    std::string kind;  // "counter" | "gauge" | "histogram"
    uint64_t count = 0;      // counter/gauge value; histogram sample count.
    HistogramSnapshot hist;  // Meaningful for histograms only.
  };
  std::vector<Row> Rows() const;

  /// Number of registered metrics.
  size_t size() const;

  /// Zeroes every registered metric (names stay registered). Tests only —
  /// requires quiescence, like every cross-metric snapshot.
  void ResetAllForTest();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace dqmo

#endif  // DQMO_COMMON_METRICS_H_
