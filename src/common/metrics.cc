#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "common/env.h"
#include "common/string_util.h"

namespace dqmo {

#ifndef DQMO_METRICS_DISABLED
namespace internal {

namespace {
bool EnabledFromEnv() {
  const std::string v = GetEnvString("DQMO_METRICS", "on");
  return !(v == "off" || v == "0" || v == "false" || v == "no");
}
}  // namespace

std::atomic<bool>& MetricsEnabledFlag() {
  static std::atomic<bool> flag{EnabledFromEnv()};
  return flag;
}

}  // namespace internal
#endif  // DQMO_METRICS_DISABLED

// ---------------------------------------------------------------------------
// Histogram.

int Histogram::BucketIndex(uint64_t v) {
  return v == 0 ? 0 : std::bit_width(v);
}

uint64_t Histogram::BucketLowerBound(int b) {
  return b <= 0 ? 0 : uint64_t{1} << (b - 1);
}

uint64_t Histogram::BucketUpperBound(int b) {
  if (b <= 0) return 0;
  if (b >= 64) return UINT64_MAX;
  return (uint64_t{1} << b) - 1;
}

void Histogram::Record(uint64_t v) {
  if (!MetricsEnabled()) return;
  const int b = BucketIndex(v);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  // Exemplar: stamp the bucket with the recording thread's trace id so a
  // tail bucket can be joined back to a captured trace. One inline TLS
  // load; the store only happens inside an armed frame.
  const uint64_t trace_id = ActiveTraceId();
  if (trace_id != 0) exemplars_[b].store(trace_id, std::memory_order_relaxed);
  // Running max via CAS: contended only while the maximum actually moves.
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (int b = 0; b < kNumBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    snap.exemplars[b] = exemplars_[b].load(std::memory_order_relaxed);
    snap.count += snap.buckets[b];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    total += buckets_[b].load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::ResetForTest() {
  for (int b = 0; b < kNumBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
    exemplars_[b].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot& HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (int b = 0; b < kNumBuckets; ++b) {
    buckets[b] += other.buckets[b];
    if (other.exemplars[b] != 0) exemplars[b] = other.exemplars[b];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  return *this;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based, ceiling — p=100 is the last sample.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::min<double>(static_cast<double>(count),
                              clamped / 100.0 * static_cast<double>(count) +
                                  0.9999999)));
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      return std::min(Histogram::BucketUpperBound(b), max);
    }
  }
  return max;
}

uint64_t HistogramSnapshot::ExemplarNear(double p) const {
  if (count == 0) return 0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::min<double>(static_cast<double>(count),
                              clamped / 100.0 * static_cast<double>(count) +
                                  0.9999999)));
  int target = kNumBuckets - 1;
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      target = b;
      break;
    }
  }
  // The target bucket's exemplar may have been recorded before tracing
  // armed; fall back to the nearest stamped bucket, preferring the tail
  // (slower samples explain a tail percentile better than faster ones).
  for (int b = target; b < kNumBuckets; ++b) {
    if (exemplars[b] != 0) return exemplars[b];
  }
  for (int b = target - 1; b >= 0; --b) {
    if (exemplars[b] != 0) return exemplars[b];
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Registry.

struct MetricsRegistry::Impl {
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu;
  // Ordered by name: the exposition formats are deterministic.
  std::map<std::string, Entry> entries;

  Entry& GetOrCreate(const std::string& name, const std::string& help,
                     Kind kind) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(name);
    if (it == entries.end()) {
      Entry entry;
      entry.kind = kind;
      entry.help = help;
      switch (kind) {
        case Kind::kCounter:
          entry.counter = std::make_unique<Counter>();
          break;
        case Kind::kGauge:
          entry.gauge = std::make_unique<Gauge>();
          break;
        case Kind::kHistogram:
          entry.histogram = std::make_unique<Histogram>();
          break;
      }
      it = entries.emplace(name, std::move(entry)).first;
    } else if (it->second.kind != kind) {
      std::fprintf(stderr,
                   "metrics: %s re-registered with a different kind\n",
                   name.c_str());
      std::abort();  // Programming error, like a failed DQMO_CHECK.
    } else if (it->second.help.empty() && !help.empty()) {
      it->second.help = help;
    }
    return it->second;
  }
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();  // Leaked: registry outlives everything.
  return *impl;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return impl().GetOrCreate(name, help, Impl::Kind::kCounter).counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return impl().GetOrCreate(name, help, Impl::Kind::kGauge).gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  return impl()
      .GetOrCreate(name, help, Impl::Kind::kHistogram)
      .histogram.get();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(impl().mu);
  return impl().entries.size();
}

void MetricsRegistry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(impl().mu);
  for (auto& [name, entry] : impl().entries) {
    switch (entry.kind) {
      case Impl::Kind::kCounter:
        entry.counter->ResetForTest();
        break;
      case Impl::Kind::kGauge:
        entry.gauge->ResetForTest();
        break;
      case Impl::Kind::kHistogram:
        entry.histogram->ResetForTest();
        break;
    }
  }
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(impl().mu);
  std::string out;
  for (const auto& [name, entry] : impl().entries) {
    if (!entry.help.empty()) {
      out += "# HELP " + name + " " + entry.help + "\n";
    }
    switch (entry.kind) {
      case Impl::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += StrFormat("%s %" PRIu64 "\n", name.c_str(),
                         entry.counter->value());
        break;
      case Impl::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += StrFormat("%s %" PRId64 "\n", name.c_str(),
                         entry.gauge->value());
        break;
      case Impl::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        const HistogramSnapshot snap = entry.histogram->Snapshot();
        int highest = 0;
        for (int b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
          if (snap.buckets[b] != 0) highest = b;
        }
        uint64_t cumulative = 0;
        for (int b = 0; b <= highest; ++b) {
          cumulative += snap.buckets[b];
          out += StrFormat("%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                           name.c_str(), Histogram::BucketUpperBound(b),
                           cumulative);
        }
        out += StrFormat("%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
                         snap.count);
        out += StrFormat("%s_sum %" PRIu64 "\n", name.c_str(), snap.sum);
        out += StrFormat("%s_count %" PRIu64 "\n", name.c_str(), snap.count);
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::JsonText() const {
  std::lock_guard<std::mutex> lock(impl().mu);
  std::string counters, gauges, histograms;
  for (const auto& [name, entry] : impl().entries) {
    switch (entry.kind) {
      case Impl::Kind::kCounter:
        if (!counters.empty()) counters += ", ";
        counters += StrFormat("\"%s\": %" PRIu64, name.c_str(),
                              entry.counter->value());
        break;
      case Impl::Kind::kGauge:
        if (!gauges.empty()) gauges += ", ";
        gauges += StrFormat("\"%s\": %" PRId64, name.c_str(),
                            entry.gauge->value());
        break;
      case Impl::Kind::kHistogram: {
        const HistogramSnapshot snap = entry.histogram->Snapshot();
        if (!histograms.empty()) histograms += ", ";
        histograms += StrFormat(
            "\"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
            ", \"mean\": %.1f, \"max\": %" PRIu64 ", \"p50\": %" PRIu64
            ", \"p95\": %" PRIu64 ", \"p99\": %" PRIu64
            ", \"p99_exemplar\": %" PRIu64 "}",
            name.c_str(), snap.count, snap.sum, snap.mean(), snap.max,
            snap.Percentile(50), snap.Percentile(95), snap.Percentile(99),
            snap.ExemplarNear(99));
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

std::vector<MetricsRegistry::Row> MetricsRegistry::Rows() const {
  std::lock_guard<std::mutex> lock(impl().mu);
  std::vector<Row> rows;
  rows.reserve(impl().entries.size());
  for (const auto& [name, entry] : impl().entries) {
    Row row;
    row.name = name;
    switch (entry.kind) {
      case Impl::Kind::kCounter:
        row.kind = "counter";
        row.count = entry.counter->value();
        break;
      case Impl::Kind::kGauge:
        row.kind = "gauge";
        row.count = static_cast<uint64_t>(entry.gauge->value());
        break;
      case Impl::Kind::kHistogram:
        row.kind = "histogram";
        row.hist = entry.histogram->Snapshot();
        row.count = row.hist.count;
        break;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace dqmo
