// Small string formatting helpers used by logging, stats and the harness.
#ifndef DQMO_COMMON_STRING_UTIL_H_
#define DQMO_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace dqmo {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("1.5", "0.001", "12").
std::string FormatDouble(double v, int digits = 3);

/// Returns true if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Returns true if `s` ends with `suffix`.
bool EndsWith(const std::string& s, const std::string& suffix);

}  // namespace dqmo

#endif  // DQMO_COMMON_STRING_UTIL_H_
