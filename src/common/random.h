// Deterministic pseudo-random number generation.
//
// All workload generation and query sampling in this repository flows through
// Rng so that experiments are exactly reproducible from a seed, independent
// of platform or standard-library version (std::normal_distribution is not
// specified bit-exactly; we implement our own transforms).
#ifndef DQMO_COMMON_RANDOM_H_
#define DQMO_COMMON_RANDOM_H_

#include <cstdint>

namespace dqmo {

/// xoshiro256++ generator seeded via splitmix64.
///
/// Fast, high-quality, and trivially copyable; distinct streams are obtained
/// by seeding with distinct values (splitmix64 decorrelates nearby seeds).
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64 random bits.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi). Requires lo <= hi; returns lo when they are equal.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformU64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Standard normal via Box–Muller (deterministic given the seed).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Derives an independent child generator; used to give each object /
  /// trajectory its own stream so that changing one does not shift others.
  Rng Fork();

 private:
  uint64_t s_[4];
  // Box–Muller produces pairs; cache the second value.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dqmo

#endif  // DQMO_COMMON_RANDOM_H_
