// Low-overhead sampling tracer for per-query / per-frame spans, plus the
// slow-frame log.
//
// A dynamic query is served frame by frame; when one frame is slow the
// interesting question is *where inside that frame* the time went — node
// fetches, SoA decodes, kernel prunes, heap maintenance, WAL syncs, or
// waiting on the TreeGate. This module records such spans into a
// thread-local buffer while a frame is open, and:
//
//  * feeds per-kind latency histograms in the MetricsRegistry for sampled
//    frames (every Nth frame per thread, DQMO_TRACE_SAMPLE; 0 disables),
//  * captures the frame's full span tree into a global ring buffer — the
//    slow-frame log — whenever the frame overruns the configured deadline
//    (DQMO_SLOW_FRAME_US; 0 disables), so "which session/frame was slow
//    and why" is answerable after the fact.
//
// Cost model: a frame is *armed* only when sampling or the slow-frame
// deadline is active (and metrics are enabled). Unarmed, FrameScope costs
// two thread-local writes and SpanScope a single thread-local read;
// neither touches the clock. Armed, each span is two clock reads and one
// push into a reused vector. The slow path (logging a slow frame) takes a
// mutex — it is, by definition, rare.
//
// Frames never nest and spans belong to the thread's current frame; the
// engines are single-threaded per session, matching this model exactly.
#ifndef DQMO_COMMON_TRACE_H_
#define DQMO_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dqmo {

namespace internal {
#ifndef DQMO_METRICS_DISABLED
/// Mirror of the calling thread's frame-armed state, hoisted out of the
/// (larger) frame struct so SpanScope's fast path is a single inline
/// thread-local load — span sites sit inside per-node loops, where an
/// out-of-line call per span is measurable on the A15 gate. An inline
/// variable (not extern + out-of-line definition): with the
/// constant-initialized definition visible in every TU, no TLS wrapper
/// function is emitted — the access stays a direct TLS load, and GCC's
/// UBSan does not trip its spurious null-pointer check on the wrapper
/// (fatal under -fno-sanitize-recover in the sanitize CI pass).
inline thread_local bool tls_frame_armed = false;
#endif
inline bool ThreadFrameArmed() {
#ifdef DQMO_METRICS_DISABLED
  return false;
#else
  return tls_frame_armed;
#endif
}
}  // namespace internal

/// What a span measures. Kinds are fixed (an enum, not strings) so that
/// recording is allocation-free and per-kind histograms are cheap.
enum class SpanKind : uint8_t {
  kFrame = 0,     // One whole query frame (implicit root span).
  kGateWait,      // Waiting to acquire the TreeGate (reader side).
  kNodeFetch,     // One R-tree node load (page read included).
  kSoaDecode,     // SoA decode of freshly read page bytes.
  kKernelPrune,   // One batch-prune kernel invocation.
  kHeapOp,        // PDQ priority-queue maintenance for one pop cycle.
  kWalSync,       // WalWriter::Sync (group commit + fsync).
  kQueueWait,     // Scheduler queue wait before the session ran.
  kOther,
};
constexpr int kNumSpanKinds = static_cast<int>(SpanKind::kOther) + 1;

const char* SpanKindName(SpanKind kind);

/// One recorded span. `depth` restores the tree shape: a span is the child
/// of the nearest preceding record with smaller depth.
struct SpanRecord {
  SpanKind kind = SpanKind::kOther;
  uint16_t depth = 0;
  uint64_t start_ns = 0;     // Relative to the frame start.
  uint64_t duration_ns = 0;
  uint64_t detail = 0;       // Kind-specific (page id, batch size, ...).
};

/// A captured slow frame: identity, total duration, and the span tree.
struct FrameTrace {
  uint64_t session_id = 0;
  uint64_t frame_index = 0;
  uint64_t duration_ns = 0;
  uint64_t deadline_ns = 0;
  std::vector<SpanRecord> spans;

  /// Indented multi-line rendering of the span tree, e.g.
  ///   frame session=7 index=42 2143us (deadline 1000us)
  ///     gate_wait 3us
  ///     node_fetch 812us [page 19]
  ///       soa_decode 790us
  std::string ToString() const;
};

/// Process-wide tracer. All configuration is loaded from the environment on
/// first use and may be overridden programmatically (tests, tools).
class Tracer {
 public:
  struct Options {
    /// Capture the span tree of any frame slower than this (0: off).
    /// Env: DQMO_SLOW_FRAME_US (microseconds).
    uint64_t slow_frame_ns = 0;
    /// Record spans for every Nth frame per thread and feed the per-kind
    /// span histograms (0: off, 1: every frame). Env: DQMO_TRACE_SAMPLE.
    uint32_t sample_every = 0;
    /// Slow-frame ring capacity; oldest entries are dropped.
    size_t slow_log_capacity = 64;
  };

  static Tracer& Global();

  /// Replaces the configuration. Takes the slow-log mutex; call while no
  /// frame is being captured.
  void Configure(const Options& options);
  Options options() const;

  /// Opens a frame on the calling thread for the scope's lifetime. Always
  /// measures the frame's wall time into dqmo_query_frame_ns (when metrics
  /// are on); arms span recording when sampled or deadline-armed.
  class FrameScope {
   public:
    FrameScope(uint64_t session_id, uint64_t frame_index);
    ~FrameScope();
    FrameScope(const FrameScope&) = delete;
    FrameScope& operator=(const FrameScope&) = delete;

   private:
    uint64_t tick_;
    bool opened_ = false;
  };

  /// Records one span inside the thread's current armed frame; inert (one
  /// thread-local read) otherwise.
  class SpanScope {
   public:
    explicit SpanScope(SpanKind kind, uint64_t detail = 0) {
      if (internal::ThreadFrameArmed()) Open(kind, detail);
    }
    ~SpanScope() {
      if (index_ != SIZE_MAX) Close();
    }
    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

   private:
    // Out-of-line slow paths, entered only inside an armed frame.
    void Open(SpanKind kind, uint64_t detail);
    void Close();

    size_t index_ = SIZE_MAX;  // SIZE_MAX: not recording.
    uint64_t start_ = 0;
  };

  /// True when the calling thread has an armed frame open (spans would be
  /// recorded). For tests.
  static bool FrameArmed();

  /// Copy of the slow-frame ring, oldest first.
  std::vector<FrameTrace> SlowFrames() const;
  /// Total slow frames ever captured (monotonic; the ring may have evicted
  /// older ones).
  uint64_t slow_frames_captured() const;
  void ClearSlowFrames();

 private:
  Tracer() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace dqmo

#endif  // DQMO_COMMON_TRACE_H_
