// Low-overhead causal tracer for per-query / per-frame spans, plus the
// slow-frame log.
//
// A dynamic query is served frame by frame; when one frame is slow the
// interesting question is *where inside that frame* the time went — node
// fetches, SoA decodes, kernel prunes, heap maintenance, WAL syncs, or
// waiting on the TreeGate. Since the engine sharded (PR 7) and storage
// went async (PR 9), one client frame also fans out across N per-shard
// sessions, speculative prefetch completions on worker threads, and
// hedged-read races — so a frame's causal story spans threads. This
// module records spans into a thread-local buffer while a frame is open,
// merges in worker-thread spans attributed via a shared per-frame sink,
// and:
//
//  * feeds per-kind latency histograms in the MetricsRegistry for sampled
//    frames (every Nth frame per thread, DQMO_TRACE_SAMPLE; 0 disables),
//  * captures the frame's full merged span tree into a global ring buffer
//    — the slow-frame log — whenever the frame overruns the configured
//    deadline (DQMO_SLOW_FRAME_US; 0 disables), so "which session/frame
//    was slow and why" is answerable after the fact,
//  * optionally tracks the single slowest frame seen (track_slowest) so
//    benches can emit their own diagnosis into BENCH_*.json.
//
// Causality: an armed frame mints a TraceContext (process-unique trace id
// + frame sequence + current shard) and publishes a refcounted remote-span
// sink. Worker threads (prefetcher, hedged reads) capture the sink handle
// at submit time on the frame's own thread and later attribute their spans
// to it from any thread; spans arriving after the frame closed are counted
// in dqmo_trace_orphan_spans_total instead of being silently dropped.
// Frame-thread spans carry the shard id set by the innermost ShardTag, so
// the captured tree splits into per-shard subtrees.
//
// Cost model (unchanged from PR 5): a frame is *armed* only when sampling
// or the slow-frame deadline is active (and metrics are enabled). Unarmed,
// FrameScope costs two thread-local writes and SpanScope a single inline
// thread-local load; neither touches the clock, and no sink is allocated.
// Armed, each span is two clock reads and one push into a reused vector;
// remote attribution adds one shared_ptr copy per speculative submit and a
// short mutex hold per worker span. The slow path (logging a slow frame)
// takes a mutex — it is, by definition, rare.
#ifndef DQMO_COMMON_TRACE_H_
#define DQMO_COMMON_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dqmo {

namespace internal {
/// Mirror of the calling thread's frame-armed state, hoisted out of the
/// (larger) frame struct so SpanScope's fast path is a single inline
/// thread-local load — span sites sit inside per-node loops, where an
/// out-of-line call per span is measurable on the A15 gate. An inline
/// variable (not extern + out-of-line definition): with the
/// constant-initialized definition visible in every TU, no TLS wrapper
/// function is emitted — the access stays a direct TLS load, and GCC's
/// UBSan does not trip its spurious null-pointer check on the wrapper
/// (fatal under -fno-sanitize-recover in the sanitize CI pass). Defined
/// unconditionally so writers compile in DQMO_METRICS_DISABLED builds; the
/// gated accessors below fold reads to constants there.
inline thread_local bool tls_frame_armed = false;
/// Shard the calling thread is currently evaluating (-1: none). Written
/// by ShardTag/ShardScope, stamped into every span the thread records.
inline thread_local int16_t tls_current_shard = -1;
inline bool ThreadFrameArmed() {
#ifdef DQMO_METRICS_DISABLED
  return false;
#else
  return tls_frame_armed;
#endif
}
inline int16_t ThreadCurrentShard() {
#ifdef DQMO_METRICS_DISABLED
  return -1;
#else
  return tls_current_shard;
#endif
}
}  // namespace internal

/// What a span measures. Kinds are fixed (an enum, not strings) so that
/// recording is allocation-free and per-kind histograms are cheap.
enum class SpanKind : uint8_t {
  kFrame = 0,     // One whole query frame (implicit root span).
  kGateWait,      // Waiting to acquire the TreeGate (reader side).
  kNodeFetch,     // One R-tree node load (page read included).
  kSoaDecode,     // SoA decode of freshly read page bytes.
  kKernelPrune,   // One batch-prune kernel invocation.
  kHeapOp,        // PDQ priority-queue maintenance for one pop cycle.
  kWalSync,       // WalWriter::Sync (group commit + fsync).
  kQueueWait,     // Scheduler queue wait before the session ran.
  kShardEval,     // One shard's lockstep evaluation inside a routed frame.
  kMerge,         // Cross-shard k-way merge of per-shard streams.
  kRedoDrain,     // Draining parked redo writes before a frame.
  kPrefetchRead,  // Speculative read: submit->consume (worker thread).
  kPrefetchWaste, // Speculative read discarded unconsumed (worker thread).
  kHedgeProbe,    // One leg of a hedged-read race.
  kOther,
};
constexpr int kNumSpanKinds = static_cast<int>(SpanKind::kOther) + 1;

const char* SpanKindName(SpanKind kind);

/// Which thread produced a span, relative to the owning frame.
enum class SpanOrigin : uint8_t {
  kFrameThread = 0,  // The thread that opened the frame.
  kPrefetchWorker,   // Async-I/O / prefetch completion.
  kHedgeWorker,      // Hedged-read primary worker.
  kBackground,       // Any other background thread.
};

const char* SpanOriginName(SpanOrigin origin);

/// Causal identity of the frame a thread is serving: a process-unique
/// trace id minted when an armed frame opens, the client frame sequence,
/// and the shard currently under evaluation (-1 outside any shard).
/// trace_id == 0 means "no armed frame" — the zero context is inert and
/// safe to propagate anywhere.
struct TraceContext {
  uint64_t trace_id = 0;
  uint32_t frame_seq = 0;
  int32_t shard_id = -1;
};

/// One recorded span. `depth` restores the tree shape for frame-thread
/// spans: a span is the child of the nearest preceding record with smaller
/// depth. Worker-thread spans (origin != kFrameThread) are merged in by
/// start time under the shard subtree they belong to.
struct SpanRecord {
  SpanKind kind = SpanKind::kOther;
  SpanOrigin origin = SpanOrigin::kFrameThread;
  int16_t shard = -1;        // Shard attribution (-1: not shard-specific).
  uint16_t depth = 0;
  uint64_t start_ns = 0;     // Relative to the frame start.
  uint64_t duration_ns = 0;
  uint64_t detail = 0;       // Kind-specific (page id, batch size, ...).
};

/// A captured slow frame: identity, total duration, and the merged
/// cross-shard / cross-thread span tree.
struct FrameTrace {
  uint64_t trace_id = 0;
  uint64_t session_id = 0;
  uint64_t frame_index = 0;
  uint64_t duration_ns = 0;
  uint64_t deadline_ns = 0;
  uint64_t remote_spans = 0;  // Spans contributed by worker threads.
  std::vector<SpanRecord> spans;

  /// Indented multi-line rendering of the merged span tree, e.g.
  ///   frame trace=17 session=7 index=42 2143us (deadline 1000us)
  ///     shard_eval 812us [shard 3]
  ///       node_fetch 512us [19]
  ///       ~prefetch prefetch_read 97us [21]
  /// Worker spans (prefixed `~origin`) are nested under the shard-eval
  /// span whose window contains their start.
  std::string ToString() const;
};

/// Process-wide tracer. All configuration is loaded from the environment on
/// first use and may be overridden programmatically (tests, tools).
class Tracer {
 public:
  struct Options {
    /// Capture the span tree of any frame slower than this (0: off).
    /// Env: DQMO_SLOW_FRAME_US (microseconds).
    uint64_t slow_frame_ns = 0;
    /// Record spans for every Nth frame per thread and feed the per-kind
    /// span histograms (0: off, 1: every frame). Env: DQMO_TRACE_SAMPLE.
    uint32_t sample_every = 0;
    /// Slow-frame ring capacity; oldest entries are dropped.
    size_t slow_log_capacity = 64;
    /// Arm every frame and keep the single slowest FrameTrace seen (bench
    /// JSON diagnosis). Independent of the slow-frame deadline.
    bool track_slowest = false;
  };

  /// Shared per-frame sink for worker-thread spans. Created only when an
  /// armed frame opens; workers hold it via shared_ptr so attribution
  /// stays safe after the frame closes (the sink is then marked closed and
  /// late spans count as orphans).
  struct RemoteSink {
    std::mutex mu;
    bool open = true;            // Guarded by mu.
    uint64_t frame_start_ns = 0; // Immutable after publication.
    std::vector<SpanRecord> spans;  // Guarded by mu.
  };
  using FrameHandle = std::shared_ptr<RemoteSink>;

  static Tracer& Global();

  /// Replaces the configuration. Takes the slow-log mutex; call while no
  /// frame is being captured.
  void Configure(const Options& options);
  Options options() const;

  /// Opens a frame on the calling thread for the scope's lifetime. Always
  /// measures the frame's wall time into dqmo_query_frame_ns (when metrics
  /// are on); arms span recording when sampled or deadline-armed. Armed
  /// frames mint a TraceContext and publish a RemoteSink.
  class FrameScope {
   public:
    FrameScope(uint64_t session_id, uint64_t frame_index);
    ~FrameScope();
    FrameScope(const FrameScope&) = delete;
    FrameScope& operator=(const FrameScope&) = delete;

   private:
    uint64_t tick_;
    bool opened_ = false;
  };

  /// Records one span inside the thread's current armed frame; inert (one
  /// thread-local read) otherwise.
  class SpanScope {
   public:
    explicit SpanScope(SpanKind kind, uint64_t detail = 0) {
      if (internal::ThreadFrameArmed()) Open(kind, detail);
    }
    ~SpanScope() {
      if (index_ != SIZE_MAX) Close();
    }
    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

   private:
    // Out-of-line slow paths, entered only inside an armed frame.
    void Open(SpanKind kind, uint64_t detail);
    void Close();

    size_t index_ = SIZE_MAX;  // SIZE_MAX: not recording.
    uint64_t start_ = 0;
  };

  /// Tags every span the calling thread records for the scope's lifetime
  /// with a shard id. Pure thread-local write; safe unarmed.
  class ShardTag {
   public:
    explicit ShardTag(int shard) : prev_(internal::tls_current_shard) {
      internal::tls_current_shard = static_cast<int16_t>(shard);
    }
    ~ShardTag() { internal::tls_current_shard = prev_; }
    ShardTag(const ShardTag&) = delete;
    ShardTag& operator=(const ShardTag&) = delete;

   private:
    int16_t prev_;
  };

  /// ShardTag + a span of the given kind (default kShardEval): the routed
  /// frame wraps each shard's evaluation in one of these so the captured
  /// tree has per-shard subtree roots. Member order matters: the tag is
  /// constructed first (so the span itself carries the shard) and
  /// destroyed last (after the span closed).
  class ShardScope {
   public:
    explicit ShardScope(int shard, SpanKind kind = SpanKind::kShardEval,
                        uint64_t detail = 0)
        : tag_(shard), span_(kind, detail) {}

   private:
    ShardTag tag_;
    SpanScope span_;
  };

  /// Causal identity of the calling thread's current armed frame (zero
  /// context when none). Cheap but out-of-line; capture once per submit,
  /// not per loop iteration.
  static TraceContext CurrentContext();

  /// Handle to the calling thread's current armed frame's remote sink, or
  /// null when no armed frame is open. Workers capture this on the frame
  /// thread at submit time and attribute spans to it later.
  static FrameHandle ActiveFrame();

  /// Attributes a worker-thread span to a frame via its sink handle.
  /// `start_ns` is absolute (NowNs-based); it is rebased onto the frame
  /// clock internally. A null handle or an already-closed frame counts the
  /// span in dqmo_trace_orphan_spans_total instead. Thread-safe.
  static void RecordRemote(const FrameHandle& frame, SpanKind kind,
                           SpanOrigin origin, int shard, uint64_t start_ns,
                           uint64_t duration_ns, uint64_t detail);

  /// True when the calling thread has an armed frame open (spans would be
  /// recorded). For tests.
  static bool FrameArmed();

  /// Copy of the slow-frame ring, oldest first.
  std::vector<FrameTrace> SlowFrames() const;
  /// Total slow frames ever captured (monotonic; the ring may have evicted
  /// older ones).
  uint64_t slow_frames_captured() const;
  void ClearSlowFrames();

  /// Slowest frame seen while options().track_slowest was set (empty
  /// duration when none). Reset clears it.
  FrameTrace SlowestFrame() const;
  void ResetSlowestFrame();

 private:
  Tracer() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace dqmo

#endif  // DQMO_COMMON_TRACE_H_
