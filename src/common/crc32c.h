// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// Software slice-by-8 implementation: processes 8 input bytes per step
// through eight 256-entry tables, endian-independent. Used as the per-page
// integrity checksum of the storage layer (storage/page.h); CRC32C is the
// same polynomial RocksDB / LevelDB / iSCSI use, chosen for its error
// detection strength on 4 KiB blocks.
#ifndef DQMO_COMMON_CRC32C_H_
#define DQMO_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace dqmo {

/// CRC32C of `n` bytes at `data` in one shot.
uint32_t Crc32c(const void* data, size_t n);

/// Extends a running CRC32C with `n` more bytes; `Crc32cExtend(0, d, n)`
/// equals `Crc32c(d, n)`. Allows checksumming split buffers.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

}  // namespace dqmo

#endif  // DQMO_COMMON_CRC32C_H_
