#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace dqmo {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double v, int digits) {
  std::string s = StrFormat("%.*f", digits, v);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') last--;
    s.erase(last + 1);
  }
  return s;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace dqmo
