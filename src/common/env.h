// Environment-variable helpers used by benches to pick reduced vs
// paper-scale configurations (e.g. DQMO_FULL=1, DQMO_TRAJECTORIES=200).
#ifndef DQMO_COMMON_ENV_H_
#define DQMO_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace dqmo {

/// Returns the environment variable value or `fallback` when unset/empty.
std::string GetEnvString(const char* name, const std::string& fallback);

/// Parses the environment variable as int64; `fallback` on unset/garbage.
int64_t GetEnvInt(const char* name, int64_t fallback);

/// Parses the environment variable as double; `fallback` on unset/garbage.
double GetEnvDouble(const char* name, double fallback);

/// True when the variable is set to a truthy value ("1", "true", "yes").
bool GetEnvBool(const char* name, bool fallback);

}  // namespace dqmo

#endif  // DQMO_COMMON_ENV_H_
