#include "common/trace.h"

#include <cinttypes>
#include <deque>
#include <mutex>

#include "common/env.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace dqmo {
namespace {

// ---------------------------------------------------------------------------
// Thread-local frame capture state. One frame at a time per thread; the
// record vector is reused across frames so steady-state capture allocates
// nothing.

struct FrameState {
  bool open = false;
  bool armed = false;      // Spans are being recorded.
  bool sampled = false;    // Feed per-kind histograms at frame close.
  uint64_t start_ns = 0;
  uint64_t session_id = 0;
  uint64_t frame_index = 0;
  uint64_t deadline_ns = 0;
  uint16_t depth = 0;
  uint64_t frame_counter = 0;  // Per-thread, drives sampling.
  std::vector<SpanRecord> spans;
};

FrameState& Tls() {
  thread_local FrameState state;
  return state;
}

Histogram* FrameHistogram() {
  static Histogram* h = MetricsRegistry::Global().GetHistogram(
      "dqmo_query_frame_ns", "Wall time of one dynamic-query frame");
  return h;
}

Counter* SlowFrameCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dqmo_query_slow_frames_total",
      "Frames that overran the DQMO_SLOW_FRAME_US deadline");
  return c;
}

Histogram* SpanHistogram(SpanKind kind) {
  static Histogram* histograms[kNumSpanKinds] = {};
  const int i = static_cast<int>(kind);
  if (histograms[i] == nullptr) {
    histograms[i] = MetricsRegistry::Global().GetHistogram(
        std::string("dqmo_span_") + SpanKindName(kind) + "_ns",
        std::string("Sampled duration of ") + SpanKindName(kind) + " spans");
  }
  return histograms[i];
}

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kFrame:
      return "frame";
    case SpanKind::kGateWait:
      return "gate_wait";
    case SpanKind::kNodeFetch:
      return "node_fetch";
    case SpanKind::kSoaDecode:
      return "soa_decode";
    case SpanKind::kKernelPrune:
      return "kernel_prune";
    case SpanKind::kHeapOp:
      return "heap_op";
    case SpanKind::kWalSync:
      return "wal_sync";
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kOther:
      break;
  }
  return "other";
}

std::string FrameTrace::ToString() const {
  std::string out = StrFormat(
      "frame session=%" PRIu64 " index=%" PRIu64 " %" PRIu64
      "us (deadline %" PRIu64 "us)\n",
      session_id, frame_index, duration_ns / 1000, deadline_ns / 1000);
  for (const SpanRecord& span : spans) {
    out.append(2 * (static_cast<size_t>(span.depth) + 1), ' ');
    out += StrFormat("%s %" PRIu64 "us", SpanKindName(span.kind),
                     span.duration_ns / 1000);
    if (span.detail != 0) {
      out += StrFormat(" [%" PRIu64 "]", span.detail);
    }
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tracer.

struct Tracer::Impl {
  mutable std::mutex mu;
  Options options;
  std::deque<FrameTrace> slow_frames;  // Guarded by mu.
  uint64_t slow_frames_captured = 0;   // Guarded by mu.

  Impl() {
    options.slow_frame_ns = static_cast<uint64_t>(
        GetEnvInt("DQMO_SLOW_FRAME_US", 0) * 1000);
    options.sample_every =
        static_cast<uint32_t>(GetEnvInt("DQMO_TRACE_SAMPLE", 0));
  }
};

Tracer::Impl& Tracer::impl() const {
  static Impl* impl = new Impl();  // Leaked: tracer outlives everything.
  return *impl;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(impl().mu);
  impl().options = options;
}

Tracer::Options Tracer::options() const {
  std::lock_guard<std::mutex> lock(impl().mu);
  return impl().options;
}

std::vector<FrameTrace> Tracer::SlowFrames() const {
  std::lock_guard<std::mutex> lock(impl().mu);
  return std::vector<FrameTrace>(impl().slow_frames.begin(),
                                 impl().slow_frames.end());
}

uint64_t Tracer::slow_frames_captured() const {
  std::lock_guard<std::mutex> lock(impl().mu);
  return impl().slow_frames_captured;
}

void Tracer::ClearSlowFrames() {
  std::lock_guard<std::mutex> lock(impl().mu);
  impl().slow_frames.clear();
  impl().slow_frames_captured = 0;
}

bool Tracer::FrameArmed() {
  const FrameState& state = Tls();
  return state.open && state.armed;
}

Tracer::FrameScope::FrameScope(uint64_t session_id, uint64_t frame_index)
    : tick_(TickNs()) {
  if (tick_ == 0) return;  // Metrics off: frames cost one branch.
  FrameState& state = Tls();
  if (state.open) return;  // Nested frames: outer frame keeps ownership.
  const Options options = Tracer::Global().options();
  ++state.frame_counter;
  const bool sampled = options.sample_every != 0 &&
                       state.frame_counter % options.sample_every == 0;
  state.open = true;
  state.sampled = sampled;
  state.armed = sampled || options.slow_frame_ns != 0;
  state.start_ns = tick_;
  state.session_id = session_id;
  state.frame_index = frame_index;
  state.deadline_ns = options.slow_frame_ns;
  state.depth = 0;
  state.spans.clear();
  internal::tls_frame_armed = state.armed;
  opened_ = true;
}

Tracer::FrameScope::~FrameScope() {
  if (tick_ == 0) return;
  const uint64_t duration = NowNs() - tick_;
  FrameHistogram()->Record(duration);
  if (!opened_) return;
  FrameState& state = Tls();
  state.open = false;
  if (state.sampled) {
    for (const SpanRecord& span : state.spans) {
      SpanHistogram(span.kind)->Record(span.duration_ns);
    }
  }
  if (state.deadline_ns != 0 && duration > state.deadline_ns) {
    SlowFrameCounter()->Add();
    FrameTrace trace;
    trace.session_id = state.session_id;
    trace.frame_index = state.frame_index;
    trace.duration_ns = duration;
    trace.deadline_ns = state.deadline_ns;
    trace.spans = state.spans;  // Copy: tls buffer is reused.
    Impl& impl = Tracer::Global().impl();
    std::lock_guard<std::mutex> lock(impl.mu);
    ++impl.slow_frames_captured;
    impl.slow_frames.push_back(std::move(trace));
    while (impl.slow_frames.size() > impl.options.slow_log_capacity) {
      impl.slow_frames.pop_front();
    }
  }
  state.armed = false;
  state.sampled = false;
  internal::tls_frame_armed = false;
}

void Tracer::SpanScope::Open(SpanKind kind, uint64_t detail) {
  FrameState& state = Tls();
  if (!state.open || !state.armed) return;
  start_ = NowNs();
  index_ = state.spans.size();
  SpanRecord record;
  record.kind = kind;
  record.depth = state.depth;
  record.start_ns = start_ - state.start_ns;
  record.detail = detail;
  state.spans.push_back(record);
  ++state.depth;
}

void Tracer::SpanScope::Close() {
  FrameState& state = Tls();
  // The frame that owned this span may have closed already (a span held
  // across the frame boundary is a bug, but must not corrupt memory).
  if (index_ >= state.spans.size()) return;
  state.spans[index_].duration_ns = NowNs() - start_;
  if (state.depth > 0) --state.depth;
}

}  // namespace dqmo
