#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <deque>
#include <mutex>

#include "common/env.h"
#include "common/metrics.h"
#include "common/recorder.h"
#include "common/string_util.h"

namespace dqmo {
namespace {

// ---------------------------------------------------------------------------
// Thread-local frame capture state. One frame at a time per thread; the
// record vector is reused across frames so steady-state capture allocates
// nothing.

struct FrameState {
  bool open = false;
  bool armed = false;      // Spans are being recorded.
  bool sampled = false;    // Feed per-kind histograms at frame close.
  bool track_slowest = false;  // Feed the slowest-frame slot at close.
  uint64_t start_ns = 0;
  uint64_t trace_id = 0;
  uint64_t session_id = 0;
  uint64_t frame_index = 0;
  uint64_t deadline_ns = 0;
  uint16_t depth = 0;
  uint64_t frame_counter = 0;  // Per-thread, drives sampling.
  std::vector<SpanRecord> spans;
  Tracer::FrameHandle sink;  // Remote-span sink; set only while armed.
};

FrameState& Tls() {
  thread_local FrameState state;
  return state;
}

Histogram* FrameHistogram() {
  static Histogram* h = MetricsRegistry::Global().GetHistogram(
      "dqmo_query_frame_ns", "Wall time of one dynamic-query frame");
  return h;
}

Counter* SlowFrameCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dqmo_query_slow_frames_total",
      "Frames that overran the DQMO_SLOW_FRAME_US deadline");
  return c;
}

Histogram* SpanHistogram(SpanKind kind) {
  // Frames close concurrently, so the lazy slot must publish with a
  // release store: a relaxed pointer hand-off would let another thread
  // use the Histogram before its construction is visible. GetHistogram
  // is idempotent per name, so a lost race just re-looks-up the same
  // registered instance.
  static std::atomic<Histogram*> histograms[kNumSpanKinds] = {};
  const int i = static_cast<int>(kind);
  Histogram* h = histograms[i].load(std::memory_order_acquire);
  if (h == nullptr) {
    h = MetricsRegistry::Global().GetHistogram(
        std::string("dqmo_span_") + SpanKindName(kind) + "_ns",
        std::string("Sampled duration of ") + SpanKindName(kind) + " spans");
    histograms[i].store(h, std::memory_order_release);
  }
  return h;
}

// Trace-propagation health. Registered on the first armed frame so the
// families appear in exposition whenever tracing is in use.
struct TraceMetrics {
  Counter* frames_armed;
  Counter* remote_spans;
  Counter* orphan_spans;
  static TraceMetrics& Get() {
    static TraceMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return TraceMetrics{
          r.GetCounter("dqmo_trace_frames_armed_total",
                       "Frames opened with span recording armed"),
          r.GetCounter("dqmo_trace_remote_spans_total",
                       "Worker-thread spans attributed to an owning frame"),
          r.GetCounter(
              "dqmo_trace_orphan_spans_total",
              "Worker-thread spans whose owning frame had already closed"),
      };
    }();
    return m;
  }
};

// Process-unique armed-frame ids; id 0 is reserved for "no trace".
std::atomic<uint64_t>& TraceIdCounter() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kFrame:
      return "frame";
    case SpanKind::kGateWait:
      return "gate_wait";
    case SpanKind::kNodeFetch:
      return "node_fetch";
    case SpanKind::kSoaDecode:
      return "soa_decode";
    case SpanKind::kKernelPrune:
      return "kernel_prune";
    case SpanKind::kHeapOp:
      return "heap_op";
    case SpanKind::kWalSync:
      return "wal_sync";
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kShardEval:
      return "shard_eval";
    case SpanKind::kMerge:
      return "merge";
    case SpanKind::kRedoDrain:
      return "redo_drain";
    case SpanKind::kPrefetchRead:
      return "prefetch_read";
    case SpanKind::kPrefetchWaste:
      return "prefetch_waste";
    case SpanKind::kHedgeProbe:
      return "hedge_probe";
    case SpanKind::kOther:
      break;
  }
  return "other";
}

const char* SpanOriginName(SpanOrigin origin) {
  switch (origin) {
    case SpanOrigin::kFrameThread:
      return "frame";
    case SpanOrigin::kPrefetchWorker:
      return "prefetch";
    case SpanOrigin::kHedgeWorker:
      return "hedge";
    case SpanOrigin::kBackground:
      break;
  }
  return "background";
}

std::string FrameTrace::ToString() const {
  std::string out = StrFormat(
      "frame trace=%" PRIu64 " session=%" PRIu64 " index=%" PRIu64 " %" PRIu64
      "us (deadline %" PRIu64 "us)\n",
      trace_id, session_id, frame_index, duration_ns / 1000,
      deadline_ns / 1000);

  // Split the merged record list back into the frame thread's tree and the
  // worker spans, then attach each worker span under the shard-eval span
  // whose window contains its start (falling back to an unattributed tail).
  std::vector<size_t> main_order;
  std::vector<size_t> remote_order;
  for (size_t i = 0; i < spans.size(); ++i) {
    (spans[i].origin == SpanOrigin::kFrameThread ? main_order : remote_order)
        .push_back(i);
  }
  std::sort(remote_order.begin(), remote_order.end(),
            [&](size_t a, size_t b) { return spans[a].start_ns < spans[b].start_ns; });

  std::vector<std::vector<size_t>> children(main_order.size());
  std::vector<size_t> unattributed;
  for (size_t r : remote_order) {
    const SpanRecord& span = spans[r];
    size_t owner = SIZE_MAX;
    for (size_t m = 0; m < main_order.size(); ++m) {
      const SpanRecord& host = spans[main_order[m]];
      if (host.kind != SpanKind::kShardEval) continue;
      if (span.shard >= 0 && host.shard != span.shard) continue;
      if (span.start_ns >= host.start_ns &&
          span.start_ns <= host.start_ns + host.duration_ns) {
        owner = m;  // Last matching window wins (latest shard pass).
      }
    }
    if (owner == SIZE_MAX) {
      unattributed.push_back(r);
    } else {
      children[owner].push_back(r);
    }
  }

  auto append_span = [&](const SpanRecord& span, size_t indent) {
    out.append(2 * (indent + 1), ' ');
    if (span.origin != SpanOrigin::kFrameThread) {
      out += StrFormat("~%s ", SpanOriginName(span.origin));
    }
    out += StrFormat("%s %" PRIu64 "us", SpanKindName(span.kind),
                     span.duration_ns / 1000);
    if (span.shard >= 0) {
      out += StrFormat(" [shard %d]", static_cast<int>(span.shard));
    }
    if (span.detail != 0) {
      out += StrFormat(" [%" PRIu64 "]", span.detail);
    }
    out += "\n";
  };

  for (size_t m = 0; m < main_order.size(); ++m) {
    const SpanRecord& span = spans[main_order[m]];
    append_span(span, span.depth);
    for (size_t r : children[m]) {
      append_span(spans[r], static_cast<size_t>(span.depth) + 1);
    }
  }
  for (size_t r : unattributed) {
    append_span(spans[r], 0);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tracer.

struct Tracer::Impl {
  mutable std::mutex mu;
  Options options;
  std::deque<FrameTrace> slow_frames;  // Guarded by mu.
  uint64_t slow_frames_captured = 0;   // Guarded by mu.
  FrameTrace slowest;                  // Guarded by mu; duration 0 = none.

  Impl() {
    options.slow_frame_ns = static_cast<uint64_t>(
        GetEnvInt("DQMO_SLOW_FRAME_US", 0) * 1000);
    options.sample_every =
        static_cast<uint32_t>(GetEnvInt("DQMO_TRACE_SAMPLE", 0));
  }
};

Tracer::Impl& Tracer::impl() const {
  static Impl* impl = new Impl();  // Leaked: tracer outlives everything.
  return *impl;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(impl().mu);
  impl().options = options;
}

Tracer::Options Tracer::options() const {
  std::lock_guard<std::mutex> lock(impl().mu);
  return impl().options;
}

std::vector<FrameTrace> Tracer::SlowFrames() const {
  std::lock_guard<std::mutex> lock(impl().mu);
  return std::vector<FrameTrace>(impl().slow_frames.begin(),
                                 impl().slow_frames.end());
}

uint64_t Tracer::slow_frames_captured() const {
  std::lock_guard<std::mutex> lock(impl().mu);
  return impl().slow_frames_captured;
}

void Tracer::ClearSlowFrames() {
  std::lock_guard<std::mutex> lock(impl().mu);
  impl().slow_frames.clear();
  impl().slow_frames_captured = 0;
}

FrameTrace Tracer::SlowestFrame() const {
  std::lock_guard<std::mutex> lock(impl().mu);
  return impl().slowest;
}

void Tracer::ResetSlowestFrame() {
  std::lock_guard<std::mutex> lock(impl().mu);
  impl().slowest = FrameTrace();
}

bool Tracer::FrameArmed() {
  const FrameState& state = Tls();
  return state.open && state.armed;
}

TraceContext Tracer::CurrentContext() {
  const FrameState& state = Tls();
  TraceContext ctx;
  if (state.open && state.armed) {
    ctx.trace_id = state.trace_id;
    ctx.frame_seq = static_cast<uint32_t>(state.frame_index);
  }
  ctx.shard_id = internal::ThreadCurrentShard();
  return ctx;
}

Tracer::FrameHandle Tracer::ActiveFrame() {
  const FrameState& state = Tls();
  if (!state.open || !state.armed) return nullptr;
  return state.sink;
}

void Tracer::RecordRemote(const FrameHandle& frame, SpanKind kind,
                          SpanOrigin origin, int shard, uint64_t start_ns,
                          uint64_t duration_ns, uint64_t detail) {
  if (frame == nullptr) {
    TraceMetrics::Get().orphan_spans->Add();
    return;
  }
  SpanRecord record;
  record.kind = kind;
  record.origin = origin;
  record.shard = static_cast<int16_t>(shard);
  record.duration_ns = duration_ns;
  record.detail = detail;
  {
    std::lock_guard<std::mutex> lock(frame->mu);
    if (!frame->open) {
      // The owning frame closed before this span landed (e.g. a prefetch
      // consumed by a later frame, or a completion after shed). Count it:
      // silent loss here is exactly what PR 5's model allowed.
      TraceMetrics::Get().orphan_spans->Add();
      return;
    }
    record.start_ns = start_ns > frame->frame_start_ns
                          ? start_ns - frame->frame_start_ns
                          : 0;
    frame->spans.push_back(record);
  }
  TraceMetrics::Get().remote_spans->Add();
}

Tracer::FrameScope::FrameScope(uint64_t session_id, uint64_t frame_index)
    : tick_(TickNs()) {
  if (tick_ == 0) return;  // Metrics off: frames cost one branch.
  FrameState& state = Tls();
  if (state.open) return;  // Nested frames: outer frame keeps ownership.
  const Options options = Tracer::Global().options();
  ++state.frame_counter;
  const bool sampled = options.sample_every != 0 &&
                       state.frame_counter % options.sample_every == 0;
  state.open = true;
  state.sampled = sampled;
  state.track_slowest = options.track_slowest;
  state.armed =
      sampled || options.slow_frame_ns != 0 || options.track_slowest;
  state.start_ns = tick_;
  state.session_id = session_id;
  state.frame_index = frame_index;
  state.deadline_ns = options.slow_frame_ns;
  state.depth = 0;
  state.spans.clear();
  internal::tls_frame_armed = state.armed;
  if (state.armed) {
    TraceMetrics::Get().frames_armed->Add();
    state.trace_id =
        TraceIdCounter().fetch_add(1, std::memory_order_relaxed) + 1;
    internal::tls_active_trace_id = state.trace_id;
    state.sink = std::make_shared<RemoteSink>();
    state.sink->frame_start_ns = tick_;
  }
  opened_ = true;
}

Tracer::FrameScope::~FrameScope() {
  if (tick_ == 0) return;
  const uint64_t duration = NowNs() - tick_;
  FrameHistogram()->Record(duration);
  if (!opened_) return;
  FrameState& state = Tls();
  state.open = false;
  // Seal the remote sink and merge worker spans into the frame's record
  // list. Workers still holding the handle will count as orphans from here.
  uint64_t remote_spans = 0;
  if (state.sink != nullptr) {
    std::lock_guard<std::mutex> lock(state.sink->mu);
    state.sink->open = false;
    remote_spans = state.sink->spans.size();
    state.spans.insert(state.spans.end(), state.sink->spans.begin(),
                       state.sink->spans.end());
  }
  if (state.sampled) {
    for (const SpanRecord& span : state.spans) {
      SpanHistogram(span.kind)->Record(span.duration_ns);
    }
  }
  const bool over_deadline =
      state.deadline_ns != 0 && duration > state.deadline_ns;
  bool slow_captured = false;
  if (over_deadline || state.track_slowest) {
    FrameTrace trace;
    trace.trace_id = state.trace_id;
    trace.session_id = state.session_id;
    trace.frame_index = state.frame_index;
    trace.duration_ns = duration;
    trace.deadline_ns = state.deadline_ns;
    trace.remote_spans = remote_spans;
    trace.spans = state.spans;  // Copy: tls buffer is reused.
    Impl& impl = Tracer::Global().impl();
    std::lock_guard<std::mutex> lock(impl.mu);
    if (over_deadline) {
      SlowFrameCounter()->Add();
      ++impl.slow_frames_captured;
      impl.slow_frames.push_back(trace);
      while (impl.slow_frames.size() > impl.options.slow_log_capacity) {
        impl.slow_frames.pop_front();
      }
      slow_captured = true;
    }
    if (state.track_slowest && duration > impl.slowest.duration_ns) {
      impl.slowest = std::move(trace);
    }
  }
  if (slow_captured) {
    // Outside the ring mutex: the recorder takes its own locks to dump.
    FlightRecorder::Record(FlightEventKind::kFrameSlow, -1, duration / 1000);
    FlightRecorder::Global().MaybeAutoDump(
        StrFormat("slow frame: session=%" PRIu64 " index=%" PRIu64
                  " %" PRIu64 "us",
                  state.session_id, state.frame_index, duration / 1000));
  }
  state.armed = false;
  state.sampled = false;
  state.track_slowest = false;
  state.trace_id = 0;
  state.sink = nullptr;
  internal::tls_frame_armed = false;
  internal::tls_active_trace_id = 0;
}

void Tracer::SpanScope::Open(SpanKind kind, uint64_t detail) {
  FrameState& state = Tls();
  if (!state.open || !state.armed) return;
  start_ = NowNs();
  index_ = state.spans.size();
  SpanRecord record;
  record.kind = kind;
  record.shard = internal::ThreadCurrentShard();
  record.depth = state.depth;
  record.start_ns = start_ - state.start_ns;
  record.detail = detail;
  state.spans.push_back(record);
  ++state.depth;
}

void Tracer::SpanScope::Close() {
  FrameState& state = Tls();
  // The frame that owned this span may have closed already (a span held
  // across the frame boundary is a bug, but must not corrupt memory).
  if (index_ >= state.spans.size()) return;
  state.spans[index_].duration_ns = NowNs() - start_;
  if (state.depth > 0) --state.depth;
}

}  // namespace dqmo
