// Result<T>: a value-or-Status, the return type of fallible producers.
#ifndef DQMO_COMMON_RESULT_H_
#define DQMO_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dqmo {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
///
/// Typical usage:
///
///   Result<PageId> r = file.Allocate();
///   if (!r.ok()) return r.status();
///   PageId id = r.value();
///
/// or with the DQMO_ASSIGN_OR_RETURN macro below.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicitly, so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `status.ok()` must be false.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  /// The error (or OK if a value is present).
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

}  // namespace dqmo

/// Evaluates `rexpr` (a Result<T> expression); if it holds an error, returns
/// that Status from the enclosing function, otherwise assigns the value into
/// `lhs` (which may include a declaration, e.g. `auto x`).
#define DQMO_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  DQMO_ASSIGN_OR_RETURN_IMPL_(                                      \
      DQMO_RESULT_CONCAT_(_dqmo_result, __LINE__), lhs, rexpr)

#define DQMO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define DQMO_RESULT_CONCAT_INNER_(a, b) a##b
#define DQMO_RESULT_CONCAT_(a, b) DQMO_RESULT_CONCAT_INNER_(a, b)

#endif  // DQMO_COMMON_RESULT_H_
