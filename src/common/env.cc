#include "common/env.h"

#include <cstdlib>

namespace dqmo {

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return v;
}

int64_t GetEnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

double GetEnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

bool GetEnvBool(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  const std::string s(v);
  if (s == "1" || s == "true" || s == "TRUE" || s == "yes" || s == "YES") {
    return true;
  }
  if (s == "0" || s == "false" || s == "FALSE" || s == "no" || s == "NO") {
    return false;
  }
  return fallback;
}

}  // namespace dqmo
