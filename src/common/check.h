// Internal invariant checks. These guard programmer errors, not user input:
// user input errors surface as Status, invariant violations abort.
#ifndef DQMO_COMMON_CHECK_H_
#define DQMO_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message if `cond` is false. Enabled in all build types —
/// the costs guarded here are O(1) checks on cold paths.
#define DQMO_CHECK(cond)                                                 \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "DQMO_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#define DQMO_CHECK_OK(status_expr)                                        \
  do {                                                                    \
    const ::dqmo::Status _dqmo_chk = (status_expr);                       \
    if (!_dqmo_chk.ok()) {                                                \
      std::fprintf(stderr, "DQMO_CHECK_OK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, _dqmo_chk.ToString().c_str());     \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

/// Debug-only check for hot paths (compiled out in NDEBUG builds).
#ifdef NDEBUG
#define DQMO_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define DQMO_DCHECK(cond) DQMO_CHECK(cond)
#endif

#endif  // DQMO_COMMON_CHECK_H_
