// Core scalar type aliases shared across the library.
#ifndef DQMO_COMMON_TYPES_H_
#define DQMO_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace dqmo {

/// Identifier of a mobile object. Objects produce many motion segments over
/// their lifetime; all segments of one object share its ObjectId.
using ObjectId = uint32_t;

/// Identifier of a 4 KiB page in a PageFile. Pages hold one R-tree node each.
using PageId = uint32_t;

/// Sentinel for "no page" (e.g. the parent of the root node).
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Continuous simulation time. The paper's experiments run over a horizon of
/// 100 "time units"; we keep time dimensionless the same way.
using Time = double;

/// Logical update timestamp used by NPDQ update management (Sect. 4.2 of the
/// paper): a monotonically increasing counter bumped on every index mutation.
using UpdateStamp = uint64_t;

/// Dimensionality bound for vectors/boxes/index keys. The paper's
/// motivating applications use d = 2 or 3 native spatial dimensions;
/// Parametric Space Indexing (src/psi) doubles that (position + velocity
/// coordinates), so the cap is 6.
inline constexpr int kMaxSpatialDims = 6;

}  // namespace dqmo

#endif  // DQMO_COMMON_TYPES_H_
