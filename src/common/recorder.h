// Always-on flight recorder: per-thread lock-free event rings plus a
// versioned binary "blackbox" dump.
//
// Metrics aggregate and traces sample; neither answers "what was the
// engine doing in the seconds *before* this breaker opened?" after the
// fact. The flight recorder does: every thread that emits an operational
// event (breaker transition, frame shed, governor level change, WAL sync,
// slow read, redo park/drain, scrub repair, ...) appends a compact 24-byte
// record to its own fixed-size ring. Nothing is written anywhere until an
// anomaly fires — a slow frame over DQMO_SLOW_FRAME_US, a breaker opening,
// the governor reaching L2+ — at which point the rings are snapshotted
// into a versioned blackbox file that `dqmo_tool blackbox` decodes.
//
// Cost model (the always-on contract, gated in CI like DQMO_METRICS=off):
// recording is one relaxed enabled-load, one TLS load, three relaxed
// atomic stores into a preallocated ring, and one relaxed counter bump —
// no locks, no clock beyond the caller-supplied timestamp, no allocation
// after a thread's first event. Events fire at operational edges, not in
// per-node loops, so the hot path never sees the recorder at all; the CI
// gate proves the residual cost is within 3% of a recorder-off run.
//
// Threading: each ring has exactly one writer (its thread). Slots are
// relaxed atomics so a concurrent snapshot reads cleanly under TSan; a
// snapshot taken mid-write may carry one half-written event, which is
// acceptable for a diagnostic artifact. Rings are leaked into the global
// registry so a dump can include threads that have already exited.
#ifndef DQMO_COMMON_RECORDER_H_
#define DQMO_COMMON_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace dqmo {

/// What happened. Values are stable across builds (they are written into
/// blackbox files); append only.
enum class FlightEventKind : uint8_t {
  kMark = 0,          // Manual mark (tests, tools). detail: caller-defined.
  kBreakerOpen,       // detail: open-event ordinal for the shard.
  kBreakerHalfOpen,   // detail: open-event ordinal.
  kBreakerClose,      // detail: open-event ordinal.
  kFrameShed,         // detail: session priority.
  kFrameSlow,         // detail: frame duration in microseconds.
  kGovernorLevel,     // detail: new level (0-3).
  kAdmissionReject,   // detail: session priority.
  kWalSync,           // detail: frames in the synced batch.
  kSlowRead,          // detail: read latency in microseconds.
  kRedoPark,          // detail: parked-write LSN.
  kRedoDrain,         // detail: writes applied.
  kScrubRepair,       // detail: pages rebuilt.
  kPrefetchCancel,    // detail: in-flight reads canceled.
  kQuarantine,        // detail: frames served partial so far.
  kNumKinds,
};

const char* FlightEventKindName(FlightEventKind kind);

/// One decoded event. On the wire this is three little-endian u64 words
/// (24 bytes): ts_ns, detail, then kind/shard/trace packed.
struct FlightEvent {
  uint64_t ts_ns = 0;     // NowNs() at record time (steady clock).
  uint64_t detail = 0;    // Kind-specific payload.
  uint32_t trace_low = 0; // Low 32 bits of the active trace id (0: none).
  int16_t shard = -1;     // Shard attribution (-1: engine-wide).
  FlightEventKind kind = FlightEventKind::kMark;
};

/// A decoded blackbox file.
struct BlackboxDump {
  uint32_t version = 0;
  uint64_t snapshot_ns = 0;   // Monotonic clock at dump time.
  uint64_t wall_unix_us = 0;  // Wall clock at dump time (for humans).
  std::string reason;         // What triggered the dump.
  struct ThreadSection {
    uint32_t thread_index = 0;  // Registration order, stable per process.
    uint64_t recorded = 0;      // Events ever recorded by this thread.
    std::vector<FlightEvent> events;  // Oldest first; at most ring size.
  };
  std::vector<ThreadSection> threads;
};

/// True unless the recorder is compiled out (DQMO_METRICS_DISABLED) or was
/// disabled with DQMO_RECORDER=off / SetRecorderEnabled(false). Checked
/// (relaxed) on every record; the recorder is otherwise always on.
#ifdef DQMO_METRICS_DISABLED
constexpr bool RecorderEnabled() { return false; }
inline void SetRecorderEnabled(bool) {}
#else
namespace internal {
std::atomic<bool>& RecorderEnabledFlag();
}  // namespace internal
inline bool RecorderEnabled() {
  return internal::RecorderEnabledFlag().load(std::memory_order_relaxed);
}
inline void SetRecorderEnabled(bool enabled) {
  internal::RecorderEnabledFlag().store(enabled, std::memory_order_relaxed);
}
#endif

class FlightRecorder {
 public:
  static FlightRecorder& Global();

  /// Appends one event to the calling thread's ring. The active trace id
  /// is stamped automatically. Lock-free after the thread's first call.
  static void Record(FlightEventKind kind, int shard, uint64_t detail);

  /// Copies every thread's ring, oldest events first per thread.
  std::vector<BlackboxDump::ThreadSection> Snapshot() const;

  /// Writes a versioned blackbox file (all rings + header + CRC32C).
  Status WriteBlackbox(const std::string& path, const std::string& reason);

  /// Decodes a blackbox file written by WriteBlackbox (any version).
  static Status ReadBlackbox(const std::string& path, BlackboxDump* out);

  /// Anomaly hook: when a blackbox directory is configured
  /// (DQMO_BLACKBOX_DIR or SetBlackboxDir), writes
  /// `<dir>/blackbox-NNNN.dqbb`, rate-limited to one dump per second and
  /// 64 dumps per process so a flapping trigger cannot fill the disk.
  /// Returns true when a dump was written.
  bool MaybeAutoDump(const std::string& reason);

  /// Overrides DQMO_BLACKBOX_DIR ("" disables auto-dumps). Tests/tools.
  void SetBlackboxDir(const std::string& dir);
  std::string blackbox_dir() const;

  /// Events per thread ring (DQMO_RECORDER_EVENTS rounded to a power of
  /// two, default 4096).
  size_t ring_capacity() const;

  /// Drops all buffered events (rings stay registered). Tests only.
  void ClearForTest();

 private:
  FlightRecorder() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace dqmo

#endif  // DQMO_COMMON_RECORDER_H_
