// Status: error-handling vocabulary for the public API.
//
// The library does not throw exceptions across API boundaries; fallible
// operations return Status (or Result<T>, see result.h), in the style of
// RocksDB / Arrow.
#ifndef DQMO_COMMON_STATUS_H_
#define DQMO_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace dqmo {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kCorruption = 3,
  kOutOfRange = 4,
  kAlreadyExists = 5,
  kFailedPrecondition = 6,
  kResourceExhausted = 7,
  kInternal = 8,
  kNotSupported = 9,
  kIOError = 10,
};

/// Returns a stable human-readable name ("InvalidArgument", ...) for a code.
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// Cheap to move; the OK status carries no allocation. Use the static
/// factories (Status::OK(), Status::InvalidArgument(...)) to construct.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace dqmo

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define DQMO_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::dqmo::Status _dqmo_status = (expr);            \
    if (!_dqmo_status.ok()) return _dqmo_status;     \
  } while (false)

#endif  // DQMO_COMMON_STATUS_H_
