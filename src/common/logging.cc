#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dqmo {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::mutex& SinkMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to keep lines short.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace dqmo
