#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace dqmo {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  DQMO_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::UniformU64(uint64_t n) {
  DQMO_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int Rng::UniformInt(int lo, int hi) {
  DQMO_DCHECK(lo <= hi);
  return lo + static_cast<int>(
                  UniformU64(static_cast<uint64_t>(hi) - lo + 1));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to keep log() finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace dqmo
