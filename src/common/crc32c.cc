#include "common/crc32c.h"

namespace dqmo {
namespace {

constexpr uint32_t kPolyReflected = 0x82F63B78u;

/// Eight 256-entry tables: t[0] is the classic byte-at-a-time table,
/// t[s][b] advances byte b through s additional zero bytes, so eight
/// lookups consume eight input bytes at once.
struct Crc32cTables {
  uint32_t t[8][256];
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables = [] {
    Crc32cTables tb{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPolyReflected : 0u);
      }
      tb.t[0][i] = crc;
    }
    for (int s = 1; s < 8; ++s) {
      for (uint32_t i = 0; i < 256; ++i) {
        tb.t[s][i] = (tb.t[s - 1][i] >> 8) ^ tb.t[0][tb.t[s - 1][i] & 0xFFu];
      }
    }
    return tb;
  }();
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Crc32cTables& tb = Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 8) {
    // Fold the running CRC into the first four bytes, then advance all
    // eight through the tables. Bytes are combined explicitly so the code
    // is byte-order independent.
    const uint32_t c = crc ^ (static_cast<uint32_t>(p[0]) |
                              (static_cast<uint32_t>(p[1]) << 8) |
                              (static_cast<uint32_t>(p[2]) << 16) |
                              (static_cast<uint32_t>(p[3]) << 24));
    crc = tb.t[7][c & 0xFFu] ^ tb.t[6][(c >> 8) & 0xFFu] ^
          tb.t[5][(c >> 16) & 0xFFu] ^ tb.t[4][(c >> 24) & 0xFFu] ^
          tb.t[3][p[4]] ^ tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace dqmo
