// Minimal leveled logger. Benchmarks and the experiment harness use it to
// narrate progress; the library itself logs only at kWarn and above.
#ifndef DQMO_COMMON_LOGGING_H_
#define DQMO_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dqmo {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Use via the DQMO_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it (for suppressed levels).
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace dqmo

#define DQMO_LOG(level)                                             \
  if (::dqmo::LogLevel::level < ::dqmo::GetLogLevel())              \
    ;                                                               \
  else                                                              \
    ::dqmo::internal::LogMessage(::dqmo::LogLevel::level, __FILE__, \
                                 __LINE__)                          \
        .stream()

#endif  // DQMO_COMMON_LOGGING_H_
