#include "query/session.h"

#include "common/check.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace dqmo {
namespace {

/// Hand-off session health: how often sessions fall back to NPDQ and how
/// often frames are served degraded (partial answers under faults).
struct SessionMetrics {
  Counter* handoffs_to_npdq;
  Counter* handoffs_to_pdq;
  Counter* degraded_frames;

  static SessionMetrics& Get() {
    static SessionMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return SessionMetrics{
          r.GetCounter("dqmo_session_handoffs_to_npdq_total",
                       "PDQ -> NPDQ hand-offs (deviation or degradation)"),
          r.GetCounter("dqmo_session_handoffs_to_pdq_total",
                       "NPDQ -> PDQ hand-offs (stable streak reached)"),
          r.GetCounter("dqmo_session_degraded_frames_total",
                       "Frames answered partial under storage faults"),
      };
    }();
    return m;
  }
};

NpdqOptions WithSessionOverrides(NpdqOptions npdq, FaultPolicy policy,
                                 HotPath hot_path, QueryBudget* budget,
                                 Prefetcher* prefetcher) {
  npdq.fault_policy = policy;
  npdq.hot_path = hot_path;
  npdq.budget = budget;
  npdq.prefetcher = prefetcher;
  return npdq;
}

}  // namespace

DynamicQuerySession::DynamicQuerySession(RTree* tree, const Options& options)
    : tree_(tree),
      options_(options),
      npdq_(tree, WithSessionOverrides(options.npdq, options.fault_policy,
                                       options.hot_path, options.budget,
                                       options.prefetcher)),
      last_velocity_(tree->dims()) {
  DQMO_CHECK(tree != nullptr);
  DQMO_CHECK(options.window > 0.0);
  DQMO_CHECK(options.deviation_bound > 0.0);
  DQMO_CHECK(options.prediction_horizon > 0.0);
  DQMO_CHECK(options.stable_frames_to_predict >= 1);
  prediction_origin_ = Vec(tree->dims());
  prediction_velocity_ = Vec(tree->dims());
}

Vec DynamicQuerySession::PredictedAt(double t) const {
  return prediction_origin_ + prediction_velocity_ * (t - prediction_t0_);
}

Status DynamicQuerySession::StartPredictive(double t, const Vec& position,
                                            const Vec& velocity) {
  if (spdq_ != nullptr) {
    retired_pdq_stats_ += spdq_->stats();
    skip_report_.MergeTail(spdq_->skip_report(), spdq_skips_merged_);
  }
  spdq_skips_merged_ = 0;
  prediction_t0_ = t;
  prediction_origin_ = position;
  prediction_velocity_ = velocity;
  prediction_end_ = t + options_.prediction_horizon;
  // SPDQ trajectory: the predicted straight-line path with windows inflated
  // by the deviation bound, so the true observer is covered while within
  // bound of the prediction.
  const double side = options_.window + 2.0 * options_.deviation_bound;
  std::vector<KeySnapshot> keys;
  keys.emplace_back(t, Box::Centered(position, side));
  keys.emplace_back(
      prediction_end_,
      Box::Centered(position + velocity * options_.prediction_horizon,
                    side));
  DQMO_ASSIGN_OR_RETURN(QueryTrajectory trajectory,
                        QueryTrajectory::Make(std::move(keys)));
  PredictiveDynamicQuery::Options pdq_options;
  pdq_options.reader = options_.reader;
  pdq_options.track_updates = true;  // Stay correct under live insertions.
  pdq_options.fault_policy = options_.fault_policy;
  pdq_options.hot_path = options_.hot_path;
  pdq_options.budget = options_.budget;
  pdq_options.prefetcher = options_.prefetcher;
  DQMO_ASSIGN_OR_RETURN(
      spdq_, PredictiveDynamicQuery::Make(tree_, std::move(trajectory),
                                          pdq_options));
  return Status::OK();
}

Result<std::vector<MotionSegment>> DynamicQuerySession::NpdqFrame(
    double t0, double t1, const Vec& position) {
  const StBox q(Box::Centered(position, options_.window),
                Interval(t0, t1));
  return npdq_.Execute(q);
}

Result<DynamicQuerySession::FrameResult> DynamicQuerySession::OnFrame(
    double t, const Vec& position, const Vec& velocity) {
  if (position.dims != tree_->dims() || velocity.dims != tree_->dims()) {
    return Status::InvalidArgument("observer state dims mismatch");
  }
  if (t <= last_t_) {
    return Status::InvalidArgument("frames must advance strictly in time");
  }
  const double t0 = last_t_ == -kInf ? t : last_t_;
  last_t_ = t;

  FrameResult result;

  if (mode_ == Mode::kPredictive) {
    const double deviation = position.DistanceTo(PredictedAt(t));
    if (deviation <= options_.deviation_bound) {
      if (t > prediction_end_) {
        // Prediction horizon exhausted while still on course: refit and
        // continue predictively.
        DQMO_RETURN_IF_ERROR(StartPredictive(t, position, velocity));
        ++session_stats_.pdq_renewals;
      }
      DQMO_ASSIGN_OR_RETURN(std::vector<PdqResult> frame,
                            spdq_->Frame(t0, t));
      result.fresh.reserve(frame.size());
      for (PdqResult& r : frame) result.fresh.push_back(std::move(r.motion));
      result.mode = Mode::kPredictive;
      ++session_stats_.predictive_frames;
      const size_t spdq_skips = spdq_->skip_report().skipped_pages().size();
      if (spdq_skips == spdq_skips_merged_) return result;

      // Degraded traversal: deliver what was found, flagged partial, and
      // fall back to NPDQ. The PDQ reads each node once, so a subtree it
      // skipped would stay lost for its whole remaining run; NPDQ re-reads
      // every snapshot and recovers the moment the fault clears.
      skip_report_.MergeTail(spdq_->skip_report(), spdq_skips_merged_);
      spdq_skips_merged_ = spdq_skips;
      result.integrity = ResultIntegrity::kPartial;
      ++session_stats_.degraded_frames;
      SessionMetrics::Get().degraded_frames->Add();
      mode_ = Mode::kNonPredictive;
      npdq_.ResetHistory();
      stable_streak_ = 0;
      streak_anchor_.reset();
      ++session_stats_.handoffs_to_npdq;
      SessionMetrics::Get().handoffs_to_npdq->Add();
      ++session_stats_.degraded_fallbacks;
      result.handoff = true;
      return result;
    }
    // Deviated beyond the bound: hand off to NPDQ. The previous NPDQ
    // history (if any) predates the PDQ run, so it must be forgotten.
    mode_ = Mode::kNonPredictive;
    npdq_.ResetHistory();
    stable_streak_ = 0;
    streak_anchor_.reset();
    ++session_stats_.handoffs_to_npdq;
    SessionMetrics::Get().handoffs_to_npdq->Add();
    result.handoff = true;
  }

  // Non-predictive service.
  DQMO_ASSIGN_OR_RETURN(result.fresh, NpdqFrame(t0, t, position));
  result.mode = Mode::kNonPredictive;
  ++session_stats_.non_predictive_frames;
  if (npdq_.skip_report().pages_skipped() > 0) {
    skip_report_.Merge(npdq_.skip_report());
    result.integrity = ResultIntegrity::kPartial;
    ++session_stats_.degraded_frames;
    SessionMetrics::Get().degraded_frames->Add();
    // A degraded snapshot must not become future frames' "previous": NPDQ
    // sequence semantics would mask everything the incomplete snapshot
    // *should* have retrieved ("anything lost stays lost", npdq.h). Forget
    // it, so the next frame is a fresh snapshot and recovers every visible
    // object the moment the fault (or the budget squeeze) clears. The cost
    // is re-delivery of cached objects, which the client cache absorbs —
    // the same contract as a hand-off.
    npdq_.ResetHistory();
  }

  // Stability watch: hand back to PDQ after enough frames consistent with
  // a constant-velocity extrapolation from the streak anchor.
  bool consistent = false;
  if (streak_anchor_.has_value()) {
    const Vec extrapolated =
        streak_anchor_->second +
        last_velocity_ * (t - streak_anchor_->first);
    consistent =
        position.DistanceTo(extrapolated) <= options_.deviation_bound;
  }
  if (consistent) {
    ++stable_streak_;
  } else {
    streak_anchor_ = std::make_pair(t, position);
    last_velocity_ = velocity;
    stable_streak_ = 0;
  }
  if (stable_streak_ >= options_.stable_frames_to_predict) {
    DQMO_RETURN_IF_ERROR(StartPredictive(t, position, velocity));
    mode_ = Mode::kPredictive;
    stable_streak_ = 0;
    streak_anchor_.reset();
    ++session_stats_.handoffs_to_pdq;
    SessionMetrics::Get().handoffs_to_pdq->Add();
    result.handoff = true;
  }
  return result;
}

void DynamicQuerySession::set_prediction_horizon(double horizon) {
  DQMO_CHECK(horizon > 0.0);
  options_.prediction_horizon = horizon;
}

QueryStats DynamicQuerySession::TotalStats() const {
  QueryStats total = retired_pdq_stats_;
  if (spdq_ != nullptr) total += spdq_->stats();
  total += npdq_.stats();
  return total;
}

}  // namespace dqmo
