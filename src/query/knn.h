// Nearest-neighbor search over mobile objects — the paper's future-work
// item (i) ("generalizing the concept of dynamic queries to nearest
// neighbor searches, similar to the moving-query point of [24]").
//
// KnnAt() is a best-first (Hjaltason–Samet style, the paper's refs [17,7])
// search for the k objects nearest to a query point at one time instant.
// MovingKnnQuery evaluates a *sequence* of such instants along an observer
// trajectory, priming each search with an upper bound derived from the
// previous answer set so that most of the tree is pruned when the query
// point moves smoothly — the dynamic-query idea applied to kNN.
#ifndef DQMO_QUERY_KNN_H_
#define DQMO_QUERY_KNN_H_

#include <vector>

#include "common/result.h"
#include "geom/vec.h"
#include "motion/motion_segment.h"
#include "query/budget.h"
#include "rtree/node_soa.h"
#include "rtree/rtree.h"
#include "rtree/stats.h"

namespace dqmo {

class Prefetcher;

/// One nearest-neighbor answer: the motion segment alive at the query time
/// and its distance from the query point at that time.
struct Neighbor {
  MotionSegment motion;
  double distance = 0.0;
};

/// Options for KnnAt.
struct KnnOptions {
  PageReader* reader = nullptr;  // nullptr: read from the tree's file.
  /// Discard anything farther than this (kInf = no bound).
  double prune_bound = kInf;
  /// Reaction to unreadable nodes (rtree/fault_policy.h). Degraded-kNN
  /// contract: under kSkipSubtree every returned distance is still correct
  /// and the list is still sorted, but true neighbors inside a skipped
  /// subtree are missing — the k-th returned object may be farther than the
  /// true k-th. (Unlike range queries the result is NOT a subset of the
  /// fault-free answer: the search backfills with farther objects.)
  FaultPolicy fault_policy = FaultPolicy::kFailFast;
  /// Receives the skipped subtrees under kSkipSubtree (may be null).
  SkipReport* skip_report = nullptr;
  /// kSoa scans nodes through the decoded-node cache and the batch distance
  /// kernels (query/kernels.h); kLegacyAos keeps the original per-entry
  /// path. Results and counters are bit-identical either way.
  HotPath hot_path = HotPath::kSoa;
  /// Per-frame work budget + cancellation (query/budget.h); not owned, may
  /// be null (unbudgeted — the bit-identical default). One charge per node
  /// pop; a failed charge skips the node (recorded in skip_report) and the
  /// search finishes from what is already enqueued — the degraded-kNN
  /// contract above applies.
  QueryBudget* budget = nullptr;
  /// Speculative read driver (storage/prefetch.h); not owned, may be null
  /// (no speculation — the bit-identical default). The best-first heap's
  /// front region is peeked after each node pop and its node pages hinted,
  /// so their disk reads land while the popped node is scanned. Results and
  /// node-level counters are unchanged; only prefetch_* IoStats move.
  Prefetcher* prefetcher = nullptr;
};

/// Returns the (up to) k motion segments alive at time `t` whose positions
/// at `t` are nearest to `point`, ordered by increasing distance.
/// `prune_bound`: discard anything farther than this (kInf = no bound).
Result<std::vector<Neighbor>> KnnAt(const RTree& tree, const Vec& point,
                                    double t, int k, QueryStats* stats,
                                    PageReader* reader = nullptr,
                                    double prune_bound = kInf);

/// KnnAt with full traversal options (degraded-result support).
Result<std::vector<Neighbor>> KnnAt(const RTree& tree, const Vec& point,
                                    double t, int k, QueryStats* stats,
                                    const KnnOptions& options);

/// Incremental kNN along a moving query point — the dynamic-query idea
/// applied to nearest-neighbor search (in the spirit of the paper's
/// reference [24], Song & Roussopoulos).
///
/// Each full index search fetches k + m candidates and remembers the
/// (k+m)-th distance as a *fence*. For a later instant t1 with query point
/// q1, every object outside the cached candidate set was at distance
/// >= fence from q0 at time t0, so its distance at t1 is at least
///   fence - |q1 - q0| - max_speed * (t1 - t0) - margin,
/// where max_speed is the tree's maximum stored motion speed. While the
/// k-th candidate distance stays below that bound, the answer is computed
/// entirely from the cache — zero disk accesses.
///
/// Soundness assumptions (documented, matching the paper's motion model):
/// objects alive at t1 were alive at t0 with spatially continuous
/// trajectories (consecutive motion segments join); concurrent insertions
/// invalidate the cache automatically via the tree's update stamp. If the
/// update policy allows small discontinuities between consecutive segments
/// (e.g. a dead-reckoning threshold, Sect. 3.1), pass that bound as
/// `Options::discontinuity_margin`.
class MovingKnnQuery {
 public:
  struct Options {
    /// Extra candidates fetched per full search (m above). Larger values
    /// widen the fence (fewer full searches) at higher per-search cost.
    int extra_candidates = -1;  // -1: use k (fetch 2k).
    /// Slack subtracted from the fence for per-update trajectory jumps.
    double discontinuity_margin = 0.0;
    PageReader* reader = nullptr;
    /// Reaction to unreadable nodes; see KnnOptions::fault_policy for the
    /// degraded-kNN contract. A degraded full search additionally does NOT
    /// install the fence cache: a fence built from an incomplete candidate
    /// set would let later frames silently compound the miss.
    FaultPolicy fault_policy = FaultPolicy::kFailFast;
    /// Hot-path selector forwarded to each full search (KnnOptions).
    HotPath hot_path = HotPath::kSoa;
    /// Per-frame work budget forwarded to each full search (KnnOptions). A
    /// budget-stopped search counts as degraded: answered, but no fence
    /// installed.
    QueryBudget* budget = nullptr;
    /// Speculative read driver forwarded to each full search (KnnOptions).
    Prefetcher* prefetcher = nullptr;
  };

  /// `tree` must outlive the query. k >= 1.
  MovingKnnQuery(const RTree* tree, int k, const Options& options);
  MovingKnnQuery(const RTree* tree, int k);

  /// Nearest k objects at time `t` (monotonically non-decreasing across
  /// calls) from `point`.
  Result<std::vector<Neighbor>> At(double t, const Vec& point);

  const QueryStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Number of At() calls answered purely from the cache (no disk access).
  uint64_t cache_answers() const { return cache_answers_; }
  /// Number of At() calls that ran a full index search.
  uint64_t full_searches() const { return full_searches_; }

  /// Subtrees skipped by the most recent At() (reset at each call; cache
  /// answers trivially report kComplete — they read nothing).
  const SkipReport& skip_report() const { return skip_report_; }
  /// Integrity of the most recent At()'s answer.
  ResultIntegrity integrity() const { return skip_report_.integrity(); }

 private:
  int fetch_count() const {
    return k_ + (options_.extra_candidates < 0 ? k_
                                               : options_.extra_candidates);
  }

  const RTree* tree_;
  int k_;
  Options options_;
  // Cache state from the last full search.
  bool has_cache_ = false;
  std::vector<Neighbor> cached_;
  double fence_ = kInf;      // (k+m)-th distance; +inf if fewer returned.
  double cache_t_ = 0.0;     // Instant of the last full search.
  Vec cache_point_;          // Query point of the last full search.
  UpdateStamp cache_stamp_ = 0;
  double previous_t_ = -kInf;
  uint64_t cache_answers_ = 0;
  uint64_t full_searches_ = 0;
  QueryStats stats_;
  SkipReport skip_report_;
};

}  // namespace dqmo

#endif  // DQMO_QUERY_KNN_H_
