// Spatio-temporal distance joins over mobile objects — the paper's
// future-work item (ii) ("generalizing dynamic queries to include more
// complex queries involving simple or distance-joins and aggregation"),
// following the synchronized-traversal style of its reference [6]
// (Hjaltason & Samet, incremental distance joins).
//
// Semantics: a pair (a, b) of motion segments joins iff there is an
// instant t inside the query's time window — and inside both segments'
// valid times — at which the two moving points are within Euclidean
// distance `delta`. The exact within-range time interval is closed-form
// (quadratic in t; geom/segment.h's WithinDistanceTime) and is reported
// with each pair.
#ifndef DQMO_QUERY_JOIN_H_
#define DQMO_QUERY_JOIN_H_

#include <vector>

#include "common/result.h"
#include "motion/motion_segment.h"
#include "rtree/rtree.h"
#include "rtree/stats.h"

namespace dqmo {

/// One join result: the two motions and the exact time interval during
/// which they are within range of each other.
struct JoinPair {
  MotionSegment left;
  MotionSegment right;
  Interval close_time;
};

struct DistanceJoinOptions {
  /// Maximum inter-object distance.
  double delta = 1.0;
  /// Temporal window of interest.
  Interval time_window = Interval::All();
  /// Page sources (nullptr: each tree's backing file).
  PageReader* left_reader = nullptr;
  PageReader* right_reader = nullptr;
};

/// Computes all joining pairs between motions of `left` and `right` via
/// synchronized R-tree traversal: a node pair is expanded only if the
/// boxes' time extents overlap the window and their spatial gap is at most
/// delta. Nodes are read once each (memoized for the duration of the
/// join); `stats` counts those reads plus pair tests as distance
/// computations.
Result<std::vector<JoinPair>> DistanceJoin(const RTree& left,
                                           const RTree& right,
                                           const DistanceJoinOptions& options,
                                           QueryStats* stats);

/// Self-join: all unordered pairs of distinct motions of `tree` within
/// range (each pair reported once, left.key() < right.key(); the trivial
/// pair of a motion with itself is excluded, as are pairs of segments of
/// the same object).
Result<std::vector<JoinPair>> SelfDistanceJoin(
    const RTree& tree, const DistanceJoinOptions& options,
    QueryStats* stats);

}  // namespace dqmo

#endif  // DQMO_QUERY_JOIN_H_
