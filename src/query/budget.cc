#include "query/budget.h"

#include "common/metrics.h"
#include "common/string_util.h"

namespace dqmo {
namespace {

struct BudgetMetrics {
  Counter* exhausted;

  static BudgetMetrics& Get() {
    static BudgetMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return BudgetMetrics{
          r.GetCounter("dqmo_budget_exhausted_total",
                       "Frames stopped early by deadline, node budget, or "
                       "cancellation"),
      };
    }();
    return m;
  }
};

}  // namespace

const char* BudgetStopName(BudgetStop stop) {
  switch (stop) {
    case BudgetStop::kNone:
      return "none";
    case BudgetStop::kDeadline:
      return "deadline";
    case BudgetStop::kNodes:
      return "nodes";
    case BudgetStop::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

QueryBudget::QueryBudget() : QueryBudget(Clock()) {}

QueryBudget::QueryBudget(Clock clock) : clock_(std::move(clock)) {
  if (!clock_) clock_ = [] { return NowNs(); };
}

void QueryBudget::ArmFrame(const Limits& limits) {
  armed_ = true;
  node_budget_ = limits.node_budget;
  deadline_ns_ =
      limits.frame_deadline_ns == 0 ? 0 : clock_() + limits.frame_deadline_ns;
  nodes_charged_ = 0;
  prefetch_budget_ = limits.prefetch_budget;
  prefetches_charged_ = 0;
  stop_ = BudgetStop::kNone;
}

void QueryBudget::Disarm() {
  armed_ = false;
  node_budget_ = 0;
  deadline_ns_ = 0;
  nodes_charged_ = 0;
  prefetch_budget_ = 0;
  prefetches_charged_ = 0;
  stop_ = BudgetStop::kNone;
  cancel_.store(false, std::memory_order_release);
}

void QueryBudget::LatchStop(BudgetStop stop) {
  stop_ = stop;
  BudgetMetrics::Get().exhausted->Add();
}

bool QueryBudget::TryChargeNode() {
  // Cancellation outranks everything and works even unarmed — it is the
  // executor's kill switch for a whole session, not a per-frame limit.
  if (cancel_.load(std::memory_order_acquire)) {
    if (stop_ != BudgetStop::kCancelled) LatchStop(BudgetStop::kCancelled);
    return false;
  }
  if (!armed_) return true;
  if (stop_ != BudgetStop::kNone) return false;  // Already out this frame.
  ++nodes_charged_;
  if (node_budget_ != 0 && nodes_charged_ > node_budget_) {
    LatchStop(BudgetStop::kNodes);
    return false;
  }
  if (deadline_ns_ != 0 && clock_() >= deadline_ns_) {
    LatchStop(BudgetStop::kDeadline);
    return false;
  }
  return true;
}

bool QueryBudget::TryChargePrefetch() {
  // Speculation is pure optimization: a refusal here skips the prefetch
  // and nothing else, so no stop is latched and no metric fires — the
  // traversal's own accounting is untouched.
  if (cancel_.load(std::memory_order_acquire)) return false;
  if (!armed_) return true;
  if (stop_ != BudgetStop::kNone) return false;
  if (prefetch_budget_ != 0 && prefetches_charged_ >= prefetch_budget_) {
    return false;
  }
  ++prefetches_charged_;
  return true;
}

Status QueryBudget::StopStatus() const {
  if (stop_ == BudgetStop::kNone) return Status::OK();
  return Status::ResourceExhausted(
      StrFormat("query budget exhausted (%s)", BudgetStopName(stop_)));
}

}  // namespace dqmo
