#include "query/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DQMO_SIMD_X86 1
#include <immintrin.h>
#endif

namespace dqmo {
namespace {

// 0 = auto-detect, 1 = forced scalar, 2 = forced AVX2. Relaxed atomics:
// tests set this before launching query threads; it is never a
// synchronization point.
std::atomic<int> g_forced_level{0};

SimdLevel DetectSimdLevel() {
#if DQMO_SIMD_X86
  const char* env = std::getenv("DQMO_DISABLE_SIMD");
  const bool disabled = env != nullptr && env[0] != '\0' && env[0] != '0';
  if (!disabled && __builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

// ---------------------------------------------------------------------------
// Scalar building blocks. These fold Interval::Intersect with the
// SolveLinearGe/Le results (interval.cc) into in-place [lo, hi] updates:
//   Ge: b>0 -> lo = max(lo, -a/b); b<0 -> hi = min(hi, -a/b);
//       b==0 -> a>=0 keeps sol (∩ All), else sol becomes empty.
//   Le mirrors. Intersecting with the canonical empty interval sets
//   lo=+inf / hi=-inf, which max/min then keep forever (empty is
//   absorbing: lo only grows, hi only shrinks) — this is why dropping the
//   legacy loop's early exit cannot change which intervals end up
//   non-empty, and TimeSet::Add ignores the empty ones.

inline void IntersectGe(double a, double b, double* lo, double* hi) {
  if (b > 0.0) {
    *lo = std::max(*lo, -a / b);
  } else if (b < 0.0) {
    *hi = std::min(*hi, -a / b);
  } else if (!(a >= 0.0)) {
    *lo = kInf;
    *hi = -kInf;
  }
}

inline void IntersectLe(double a, double b, double* lo, double* hi) {
  if (b > 0.0) {
    *hi = std::min(*hi, -a / b);
  } else if (b < 0.0) {
    *lo = std::max(*lo, -a / b);
  } else if (!(a <= 0.0)) {
    *lo = kInf;
    *hi = -kInf;
  }
}

/// Entry k's box is empty (time extent or any spatial extent inverted) —
/// the StBox::empty() guard at the top of Trajectory::OverlapTimes.
inline bool InternalEntryEmpty(const SoaNode& node, int dims, int k) {
  if (node.start_lo[k] > node.end_hi[k]) return true;
  for (int i = 0; i < dims; ++i) {
    if (node.sp_lo[i][k] > node.sp_hi[i][k]) return true;
  }
  return false;
}

/// trajectory.OverlapTimes(entry k's bounds) into `times`, scalar.
void OverlapBoxOne(const TrajectoryCoeffs& tc, const SoaNode& node, int k,
                   TimeSet* times) {
  times->Clear();
  if (InternalEntryEmpty(node, tc.dims, k)) return;
  const double rt_lo = node.start_lo[k];
  const double rt_hi = node.end_hi[k];
  for (const TrajectoryCoeffs::Seg& s : tc.segs) {
    // sol = s.time ∩ r.time (a temporally disjoint segment yields an empty
    // sol here, so the legacy Overlaps pre-check needs no replica).
    double lo = std::max(s.time.lo, rt_lo);
    double hi = std::min(s.time.hi, rt_hi);
    for (int i = 0; i < tc.dims; ++i) {
      // U_i(t) >= r.lo_i  and  L_i(t) <= r.hi_i (trapezoid.cc).
      IntersectGe(s.upper[i].a - node.sp_lo[i][k], s.upper[i].b, &lo, &hi);
      IntersectLe(s.lower[i].a - node.sp_hi[i][k], s.lower[i].b, &lo, &hi);
    }
    times->Add(Interval(lo, hi));
  }
}

/// QuantizeOutward(segment k's Bounds()).Overlaps(b) for a leaf segment,
/// sans the quantize step (the identity on float-widened leaf columns; see
/// the header note on NpdqLeafMatchBatch).
inline bool LeafBoundsOverlap(const SoaNode& node, int k, const StBox& b) {
  const double t_lo = node.t_lo[k];
  const double t_hi = node.t_hi[k];
  bool overlaps = !(t_lo > t_hi) && !b.time.empty() && t_lo <= b.time.hi &&
                  b.time.lo <= t_hi;
  for (int i = 0; i < node.dims && overlaps; ++i) {
    const Interval& bi = b.spatial.extent(i);
    // Box::FromCorners: the extent is [min(p0, p1), max(p0, p1)].
    const double s_lo = std::min(node.p0[i][k], node.p1[i][k]);
    const double s_hi = std::max(node.p0[i][k], node.p1[i][k]);
    overlaps = !(s_lo > s_hi) && !bi.empty() && s_lo <= bi.hi &&
               bi.lo <= s_hi;
  }
  return overlaps;
}

/// !segment k's OverlapTime(b).empty() (segment.cc), with the segment's
/// velocity `v` and border base `xa` (x_i(t) = xa_i + v_i * t) hoisted by
/// the caller so the q and p tests share them.
inline bool LeafExactIntersects(const SoaNode& node, int k, const StBox& b,
                                const double* v, const double* xa) {
  double lo = std::max(node.t_lo[k], b.time.lo);
  double hi = std::min(node.t_hi[k], b.time.hi);
  for (int i = 0; i < node.dims; ++i) {
    // x_i(t) >= b.lo_i  and  x_i(t) <= b.hi_i.
    IntersectGe(xa[i] - b.spatial.extent(i).lo, v[i], &lo, &hi);
    IntersectLe(xa[i] - b.spatial.extent(i).hi, v[i], &lo, &hi);
  }
  return !(lo > hi);
}

void NpdqLeafMatchBatchExact(const StBox* p, const StBox& q,
                             const SoaNode& node,
                             std::vector<uint8_t>* out) {
  for (int k = 0; k < node.count; ++k) {
    const double m_lo = node.t_lo[k];
    const double m_hi = node.t_hi[k];
    // StSegment::Velocity(): zero when the valid time is degenerate.
    const double seg_dt = m_lo > m_hi ? 0.0 : m_hi - m_lo;
    double v[kMaxSpatialDims];
    double xa[kMaxSpatialDims];
    for (int i = 0; i < node.dims; ++i) {
      v[i] = seg_dt <= 0.0
                 ? 0.0
                 : (node.p1[i][k] - node.p0[i][k]) / seg_dt;
      xa[i] = node.p0[i][k] - v[i] * m_lo;
    }
    bool emit = LeafExactIntersects(node, k, q, v, xa);
    if (emit && p != nullptr) {
      emit = !LeafExactIntersects(node, k, *p, v, xa);
    }
    (*out)[static_cast<size_t>(k)] = static_cast<uint8_t>(emit);
  }
}

void NpdqLeafMatchBatchBoxScalar(const StBox* p, const StBox& q,
                                 const SoaNode& node,
                                 std::vector<uint8_t>* out) {
  for (int k = 0; k < node.count; ++k) {
    const bool emit = LeafBoundsOverlap(node, k, q) &&
                      (p == nullptr || !LeafBoundsOverlap(node, k, *p));
    (*out)[static_cast<size_t>(k)] = static_cast<uint8_t>(emit);
  }
}

void PdqOverlapBoxBatchScalar(const TrajectoryCoeffs& tc,
                              const SoaNode& node,
                              std::vector<TimeSet>* out) {
  for (int k = 0; k < node.count; ++k) {
    OverlapBoxOne(tc, node, k, &(*out)[static_cast<size_t>(k)]);
  }
}

#if DQMO_SIMD_X86

// std::max(a, b) is (a < b) ? b : a and std::min(a, b) is (b < a) ? b : a.
// _mm256_max_pd/_mm256_min_pd implement neither (they differ on signed
// zeros), so emulate with an ordered-quiet compare + blend, which matches
// the std:: semantics lane-exactly (including NaN passthrough of the first
// operand).
__attribute__((target("avx2"))) inline __m256d VecMax(__m256d a, __m256d b) {
  return _mm256_blendv_pd(a, b, _mm256_cmp_pd(a, b, _CMP_LT_OQ));
}

__attribute__((target("avx2"))) inline __m256d VecMin(__m256d a, __m256d b) {
  return _mm256_blendv_pd(a, b, _mm256_cmp_pd(b, a, _CMP_LT_OQ));
}

__attribute__((target("avx2"))) inline __m256d VecNeg(__m256d a) {
  return _mm256_xor_pd(a, _mm256_set1_pd(-0.0));
}

__attribute__((target("avx2"))) void PdqOverlapBoxBatchAvx2(
    const TrajectoryCoeffs& tc, const SoaNode& node,
    std::vector<TimeSet>* out) {
  const int n = node.count;
  int k0 = 0;
  for (; k0 + 4 <= n; k0 += 4) {
    bool entry_empty[4];
    for (int l = 0; l < 4; ++l) {
      entry_empty[l] = InternalEntryEmpty(node, tc.dims, k0 + l);
      (*out)[static_cast<size_t>(k0 + l)].Clear();
    }
    const __m256d rt_lo = _mm256_loadu_pd(&node.start_lo[k0]);
    const __m256d rt_hi = _mm256_loadu_pd(&node.end_hi[k0]);
    for (const TrajectoryCoeffs::Seg& s : tc.segs) {
      __m256d lo = VecMax(_mm256_set1_pd(s.time.lo), rt_lo);
      __m256d hi = VecMin(_mm256_set1_pd(s.time.hi), rt_hi);
      for (int i = 0; i < tc.dims; ++i) {
        // The border slope b is lane-uniform (one trajectory segment across
        // four entries), so each SolveLinear branch resolves once per
        // segment instead of per entry.
        {
          const double b = s.upper[i].b;
          const __m256d a =
              _mm256_sub_pd(_mm256_set1_pd(s.upper[i].a),
                            _mm256_loadu_pd(&node.sp_lo[i][k0]));
          if (b > 0.0) {
            lo = VecMax(lo, _mm256_div_pd(VecNeg(a), _mm256_set1_pd(b)));
          } else if (b < 0.0) {
            hi = VecMin(hi, _mm256_div_pd(VecNeg(a), _mm256_set1_pd(b)));
          } else {
            const __m256d keep =
                _mm256_cmp_pd(a, _mm256_setzero_pd(), _CMP_GE_OQ);
            lo = _mm256_blendv_pd(_mm256_set1_pd(kInf), lo, keep);
            hi = _mm256_blendv_pd(_mm256_set1_pd(-kInf), hi, keep);
          }
        }
        {
          const double b = s.lower[i].b;
          const __m256d a =
              _mm256_sub_pd(_mm256_set1_pd(s.lower[i].a),
                            _mm256_loadu_pd(&node.sp_hi[i][k0]));
          if (b > 0.0) {
            hi = VecMin(hi, _mm256_div_pd(VecNeg(a), _mm256_set1_pd(b)));
          } else if (b < 0.0) {
            lo = VecMax(lo, _mm256_div_pd(VecNeg(a), _mm256_set1_pd(b)));
          } else {
            const __m256d keep =
                _mm256_cmp_pd(a, _mm256_setzero_pd(), _CMP_LE_OQ);
            lo = _mm256_blendv_pd(_mm256_set1_pd(kInf), lo, keep);
            hi = _mm256_blendv_pd(_mm256_set1_pd(-kInf), hi, keep);
          }
        }
      }
      double buf_lo[4], buf_hi[4];
      _mm256_storeu_pd(buf_lo, lo);
      _mm256_storeu_pd(buf_hi, hi);
      for (int l = 0; l < 4; ++l) {
        if (entry_empty[l]) continue;
        (*out)[static_cast<size_t>(k0 + l)].Add(
            Interval(buf_lo[l], buf_hi[l]));
      }
    }
  }
  for (; k0 < n; ++k0) {
    OverlapBoxOne(tc, node, k0, &(*out)[static_cast<size_t>(k0)]);
  }
}

/// An empty time or spatial extent makes Overlaps false for every segment
/// (Interval::Overlaps rejects empty operands); hoisted out of the lanes.
inline bool SnapshotDegenerate(const StBox& b, int dims) {
  if (b.time.empty()) return true;
  for (int i = 0; i < dims; ++i) {
    if (b.spatial.extent(i).empty()) return true;
  }
  return false;
}

/// Four-lane LeafBoundsOverlap against box `b` for lanes [k0, k0+4).
__attribute__((target("avx2"))) inline __m256d LeafBoundsOverlapVec(
    const SoaNode& node, int k0, const StBox& b, __m256d t_lo, __m256d t_hi,
    __m256d t_valid) {
  __m256d in = _mm256_and_pd(
      t_valid,
      _mm256_and_pd(
          _mm256_cmp_pd(t_lo, _mm256_set1_pd(b.time.hi), _CMP_LE_OQ),
          _mm256_cmp_pd(_mm256_set1_pd(b.time.lo), t_hi, _CMP_LE_OQ)));
  for (int i = 0; i < node.dims; ++i) {
    const __m256d c0 = _mm256_loadu_pd(&node.p0[i][k0]);
    const __m256d c1 = _mm256_loadu_pd(&node.p1[i][k0]);
    const __m256d s_lo = VecMin(c0, c1);
    const __m256d s_hi = VecMax(c0, c1);
    const Interval& bi = b.spatial.extent(i);
    in = _mm256_and_pd(
        in,
        _mm256_and_pd(
            _mm256_cmp_pd(s_lo, _mm256_set1_pd(bi.hi), _CMP_LE_OQ),
            _mm256_cmp_pd(_mm256_set1_pd(bi.lo), s_hi, _CMP_LE_OQ)));
  }
  return in;
}

__attribute__((target("avx2"))) void NpdqLeafMatchBatchBoxAvx2(
    const StBox* p, const StBox& q, const SoaNode& node,
    std::vector<uint8_t>* out) {
  const int n = node.count;
  if (SnapshotDegenerate(q, node.dims)) {
    std::fill(out->begin(), out->end(), uint8_t{0});
    return;
  }
  // A degenerate previous snapshot overlaps nothing, so it never suppresses
  // an emission — same as no previous at all.
  if (p != nullptr && SnapshotDegenerate(*p, node.dims)) p = nullptr;
  int k0 = 0;
  for (; k0 + 4 <= n; k0 += 4) {
    const __m256d t_lo = _mm256_loadu_pd(&node.t_lo[k0]);
    const __m256d t_hi = _mm256_loadu_pd(&node.t_hi[k0]);
    const __m256d t_valid = _mm256_cmp_pd(t_lo, t_hi, _CMP_LE_OQ);
    __m256d emit = LeafBoundsOverlapVec(node, k0, q, t_lo, t_hi, t_valid);
    if (p != nullptr) {
      emit = _mm256_andnot_pd(
          LeafBoundsOverlapVec(node, k0, *p, t_lo, t_hi, t_valid), emit);
    }
    const int mask = _mm256_movemask_pd(emit);
    for (int l = 0; l < 4; ++l) {
      (*out)[static_cast<size_t>(k0 + l)] =
          static_cast<uint8_t>((mask >> l) & 1);
    }
  }
  for (; k0 < n; ++k0) {
    const bool emit = LeafBoundsOverlap(node, k0, q) &&
                      (p == nullptr || !LeafBoundsOverlap(node, k0, *p));
    (*out)[static_cast<size_t>(k0)] = static_cast<uint8_t>(emit);
  }
}

__attribute__((target("avx2"))) void KnnEntryDistanceBatchAvx2(
    const SoaNode& node, double t, const Vec& point,
    std::vector<double>* dist, std::vector<uint8_t>* alive) {
  const int n = node.count;
  const __m256d tv = _mm256_set1_pd(t);
  const __m256d zero = _mm256_setzero_pd();
  int k0 = 0;
  for (; k0 + 4 <= n; k0 += 4) {
    const __m256d t_lo = _mm256_loadu_pd(&node.start_lo[k0]);
    const __m256d t_hi = _mm256_loadu_pd(&node.end_hi[k0]);
    const __m256d in_time =
        _mm256_and_pd(_mm256_cmp_pd(t_lo, tv, _CMP_LE_OQ),
                      _mm256_cmp_pd(tv, t_hi, _CMP_LE_OQ));
    __m256d sum = zero;
    for (int i = 0; i < node.dims; ++i) {
      const __m256d p = _mm256_set1_pd(point[i]);
      const __m256d lo = _mm256_loadu_pd(&node.sp_lo[i][k0]);
      const __m256d hi = _mm256_loadu_pd(&node.sp_hi[i][k0]);
      const __m256d below = _mm256_cmp_pd(p, lo, _CMP_LT_OQ);
      const __m256d above = _mm256_cmp_pd(p, hi, _CMP_GT_OQ);
      const __m256d d = _mm256_blendv_pd(
          _mm256_blendv_pd(zero, _mm256_sub_pd(p, hi), above),
          _mm256_sub_pd(lo, p), below);
      sum = _mm256_add_pd(sum, _mm256_mul_pd(d, d));
    }
    _mm256_storeu_pd(&(*dist)[static_cast<size_t>(k0)],
                     _mm256_sqrt_pd(sum));
    const int mask = _mm256_movemask_pd(in_time);
    for (int l = 0; l < 4; ++l) {
      (*alive)[static_cast<size_t>(k0 + l)] =
          static_cast<uint8_t>((mask >> l) & 1);
    }
  }
  for (; k0 < n; ++k0) {
    (*alive)[static_cast<size_t>(k0)] = static_cast<uint8_t>(
        node.start_lo[k0] <= t && t <= node.end_hi[k0]);
    double sum = 0.0;
    for (int i = 0; i < node.dims; ++i) {
      double d = 0.0;
      if (point[i] < node.sp_lo[i][k0]) {
        d = node.sp_lo[i][k0] - point[i];
      } else if (point[i] > node.sp_hi[i][k0]) {
        d = point[i] - node.sp_hi[i][k0];
      }
      sum += d * d;
    }
    (*dist)[static_cast<size_t>(k0)] = std::sqrt(sum);
  }
}

__attribute__((target("avx2"))) void KnnLeafDistanceBatchAvx2(
    const SoaNode& node, double t, const Vec& point,
    std::vector<double>* dist, std::vector<uint8_t>* alive) {
  const int n = node.count;
  const __m256d tv = _mm256_set1_pd(t);
  const __m256d zero = _mm256_setzero_pd();
  int k0 = 0;
  for (; k0 + 4 <= n; k0 += 4) {
    const __m256d t_lo = _mm256_loadu_pd(&node.t_lo[k0]);
    const __m256d t_hi = _mm256_loadu_pd(&node.t_hi[k0]);
    const __m256d in_time =
        _mm256_and_pd(_mm256_cmp_pd(t_lo, tv, _CMP_LE_OQ),
                      _mm256_cmp_pd(tv, t_hi, _CMP_LE_OQ));
    // Interval::length(): 0 when inverted, else hi - lo; PositionAt uses
    // p0 when dt <= 0 and lerps otherwise.
    const __m256d inverted = _mm256_cmp_pd(t_lo, t_hi, _CMP_GT_OQ);
    const __m256d dt =
        _mm256_blendv_pd(_mm256_sub_pd(t_hi, t_lo), zero, inverted);
    const __m256d degenerate = _mm256_cmp_pd(dt, zero, _CMP_LE_OQ);
    const __m256d alpha = _mm256_div_pd(_mm256_sub_pd(tv, t_lo), dt);
    __m256d sum = zero;
    for (int i = 0; i < node.dims; ++i) {
      const __m256d p0 = _mm256_loadu_pd(&node.p0[i][k0]);
      const __m256d p1 = _mm256_loadu_pd(&node.p1[i][k0]);
      // Lerp: p0 + (p1 - p0) * alpha, exactly vec.h's op order.
      const __m256d lerp = _mm256_add_pd(
          p0, _mm256_mul_pd(_mm256_sub_pd(p1, p0), alpha));
      const __m256d pos = _mm256_blendv_pd(lerp, p0, degenerate);
      const __m256d d = _mm256_sub_pd(pos, _mm256_set1_pd(point[i]));
      sum = _mm256_add_pd(sum, _mm256_mul_pd(d, d));
    }
    _mm256_storeu_pd(&(*dist)[static_cast<size_t>(k0)],
                     _mm256_sqrt_pd(sum));
    const int mask = _mm256_movemask_pd(in_time);
    for (int l = 0; l < 4; ++l) {
      (*alive)[static_cast<size_t>(k0 + l)] =
          static_cast<uint8_t>((mask >> l) & 1);
    }
  }
  for (; k0 < n; ++k0) {
    (*alive)[static_cast<size_t>(k0)] =
        static_cast<uint8_t>(node.t_lo[k0] <= t && t <= node.t_hi[k0]);
    const double lo = node.t_lo[k0];
    const double hi = node.t_hi[k0];
    const double seg_dt = lo > hi ? 0.0 : hi - lo;
    double sum = 0.0;
    for (int i = 0; i < node.dims; ++i) {
      double pos;
      if (seg_dt <= 0.0) {
        pos = node.p0[i][k0];
      } else {
        const double alpha = (t - lo) / seg_dt;
        pos = node.p0[i][k0] + (node.p1[i][k0] - node.p0[i][k0]) * alpha;
      }
      const double d = pos - point[i];
      sum += d * d;
    }
    (*dist)[static_cast<size_t>(k0)] = std::sqrt(sum);
  }
}

#endif  // DQMO_SIMD_X86

void KnnEntryDistanceBatchScalar(const SoaNode& node, double t,
                                 const Vec& point, std::vector<double>* dist,
                                 std::vector<uint8_t>* alive) {
  for (int k = 0; k < node.count; ++k) {
    // entry.bounds.time.Contains(t) with bounds.time = [start_lo, end_hi].
    (*alive)[static_cast<size_t>(k)] =
        static_cast<uint8_t>(node.start_lo[k] <= t && t <= node.end_hi[k]);
    // Box::MinDistance(point), op-for-op (box.cc).
    double sum = 0.0;
    for (int i = 0; i < node.dims; ++i) {
      double d = 0.0;
      if (point[i] < node.sp_lo[i][k]) {
        d = node.sp_lo[i][k] - point[i];
      } else if (point[i] > node.sp_hi[i][k]) {
        d = point[i] - node.sp_hi[i][k];
      }
      sum += d * d;
    }
    (*dist)[static_cast<size_t>(k)] = std::sqrt(sum);
  }
}

void KnnLeafDistanceBatchScalar(const SoaNode& node, double t,
                                const Vec& point, std::vector<double>* dist,
                                std::vector<uint8_t>* alive) {
  for (int k = 0; k < node.count; ++k) {
    (*alive)[static_cast<size_t>(k)] =
        static_cast<uint8_t>(node.t_lo[k] <= t && t <= node.t_hi[k]);
    // StSegment::DistanceAt(t, point) = PositionAt(t).DistanceTo(point),
    // op-for-op (segment.cc / vec.h).
    const double lo = node.t_lo[k];
    const double hi = node.t_hi[k];
    const double seg_dt = lo > hi ? 0.0 : hi - lo;  // Interval::length().
    double sum = 0.0;
    for (int i = 0; i < node.dims; ++i) {
      double pos;
      if (seg_dt <= 0.0) {
        pos = node.p0[i][k];
      } else {
        const double alpha = (t - lo) / seg_dt;
        pos = node.p0[i][k] + (node.p1[i][k] - node.p0[i][k]) * alpha;
      }
      const double d = pos - point[i];
      sum += d * d;
    }
    (*dist)[static_cast<size_t>(k)] = std::sqrt(sum);
  }
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel ActiveSimdLevel() {
  const int forced = g_forced_level.load(std::memory_order_relaxed);
  if (forced == 1) return SimdLevel::kScalar;
  if (forced == 2) return SimdLevel::kAvx2;
  static const SimdLevel detected = DetectSimdLevel();
  return detected;
}

void ForceSimdLevel(std::optional<SimdLevel> level) {
  int v = 0;
  if (level.has_value()) {
    v = *level == SimdLevel::kScalar ? 1 : 2;
  }
  g_forced_level.store(v, std::memory_order_relaxed);
}

TrajectoryCoeffs TrajectoryCoeffs::Build(const QueryTrajectory& trajectory) {
  TrajectoryCoeffs tc;
  tc.dims = trajectory.dims();
  tc.segs.resize(static_cast<size_t>(trajectory.num_segments()));
  for (int j = 0; j < trajectory.num_segments(); ++j) {
    const TrajectorySegment s = trajectory.Segment(j);
    Seg& seg = tc.segs[static_cast<size_t>(j)];
    seg.time = s.time;
    // Linear::Through (trapezoid.cc), replicated exactly: a degenerate
    // segment (dt <= 0) becomes the constant function at the first window.
    const double dt = s.time.hi - s.time.lo;
    for (int i = 0; i < tc.dims; ++i) {
      const double u0 = s.window0.extent(i).hi;
      const double u1 = s.window1.extent(i).hi;
      const double l0 = s.window0.extent(i).lo;
      const double l1 = s.window1.extent(i).lo;
      if (dt <= 0.0) {
        seg.upper[i] = Border{u0, 0.0};
        seg.lower[i] = Border{l0, 0.0};
      } else {
        const double ub = (u1 - u0) / dt;
        const double lb = (l1 - l0) / dt;
        seg.upper[i] = Border{u0 - ub * s.time.lo, ub};
        seg.lower[i] = Border{l0 - lb * s.time.lo, lb};
      }
    }
  }
  return tc;
}

void PdqOverlapBoxBatch(const TrajectoryCoeffs& coeffs, const SoaNode& node,
                        std::vector<TimeSet>* out) {
  if (out->size() < static_cast<size_t>(node.count)) {
    out->resize(static_cast<size_t>(node.count));
  }
#if DQMO_SIMD_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    PdqOverlapBoxBatchAvx2(coeffs, node, out);
    return;
  }
#endif
  PdqOverlapBoxBatchScalar(coeffs, node, out);
}

void PdqOverlapSegmentsBatch(const TrajectoryCoeffs& coeffs,
                             const SoaNode& node,
                             std::vector<TimeSet>* out) {
  if (out->size() < static_cast<size_t>(node.count)) {
    out->resize(static_cast<size_t>(node.count));
  }
  for (int k = 0; k < node.count; ++k) {
    TimeSet& times = (*out)[static_cast<size_t>(k)];
    times.Clear();
    const double m_lo = node.t_lo[k];
    const double m_hi = node.t_hi[k];
    // StSegment::Velocity(): zero when the valid time is degenerate.
    const double seg_dt = m_lo > m_hi ? 0.0 : m_hi - m_lo;
    double v[kMaxSpatialDims];
    double xa[kMaxSpatialDims];
    for (int i = 0; i < coeffs.dims; ++i) {
      v[i] = seg_dt <= 0.0
                 ? 0.0
                 : (node.p1[i][k] - node.p0[i][k]) / seg_dt;
      // Motion coordinate as a + b*t: a = p0_i - v_i * time.lo.
      xa[i] = node.p0[i][k] - v[i] * m_lo;
    }
    for (const TrajectoryCoeffs::Seg& s : coeffs.segs) {
      double lo = std::max(s.time.lo, m_lo);
      double hi = std::min(s.time.hi, m_hi);
      for (int i = 0; i < coeffs.dims; ++i) {
        // x_i(t) <= U_i(t)  and  x_i(t) >= L_i(t) (trapezoid.cc).
        IntersectLe(xa[i] - s.upper[i].a, v[i] - s.upper[i].b, &lo, &hi);
        IntersectGe(xa[i] - s.lower[i].a, v[i] - s.lower[i].b, &lo, &hi);
      }
      times.Add(Interval(lo, hi));
    }
  }
}

void NpdqClassifyBatch(const StBox* p, const StBox& q,
                       bool intersection_contained, const SoaNode& node,
                       std::vector<uint8_t>* out) {
  out->resize(static_cast<size_t>(node.count));
  const int dims = node.dims;
  for (int k = 0; k < node.count; ++k) {
    uint8_t cls = kNpdqVisit;
    // entry.bounds.Overlaps(q): time overlap (bounds.time = [start_lo,
    // end_hi]) then per-dimension spatial overlap (box.h).
    const double bt_lo = node.start_lo[k];
    const double bt_hi = node.end_hi[k];
    bool overlaps = !(bt_lo > bt_hi) && !q.time.empty() &&
                    bt_lo <= q.time.hi && q.time.lo <= bt_hi;
    for (int i = 0; i < dims && overlaps; ++i) {
      const Interval& qi = q.spatial.extent(i);
      const double r_lo = node.sp_lo[i][k];
      const double r_hi = node.sp_hi[i][k];
      overlaps = !(r_lo > r_hi) && !qi.empty() && r_lo <= qi.hi &&
                 qi.lo <= r_hi;
    }
    if (!overlaps) {
      (*out)[static_cast<size_t>(k)] = kNpdqSkip;
      continue;
    }
    if (p != nullptr) {
      // Discardable(p, q, entry) from npdq.cc, op-for-op over the SoA
      // temporal-axis columns.
      const double i_ts_lo = std::max(node.start_lo[k], -kInf);
      const double i_ts_hi = std::min(node.start_hi[k], q.time.hi);
      const double i_te_lo = std::max(node.end_lo[k], q.time.lo);
      const double i_te_hi = std::min(node.end_hi[k], kInf);
      if (i_ts_lo > i_ts_hi || i_te_lo > i_te_hi) {
        cls = kNpdqDiscard;  // No Q-relevant motion below R at all.
      } else if (i_ts_hi > p->time.hi || i_te_lo < p->time.lo) {
        cls = kNpdqVisit;  // Motions started after / ended before P.
      } else {
        cls = kNpdqDiscard;
        for (int i = 0; i < dims; ++i) {
          const double r_lo = node.sp_lo[i][k];
          const double r_hi = node.sp_hi[i][k];
          double region_lo = r_lo;
          double region_hi = r_hi;
          if (intersection_contained) {
            region_lo = std::max(r_lo, q.spatial.extent(i).lo);
            region_hi = std::min(r_hi, q.spatial.extent(i).hi);
          }
          if (region_lo > region_hi) break;  // Spatially disjoint from Q.
          const Interval& pi = p->spatial.extent(i);
          if (pi.empty() ||
              !(pi.lo <= region_lo && region_hi <= pi.hi)) {
            cls = kNpdqVisit;
            break;
          }
        }
      }
    }
    (*out)[static_cast<size_t>(k)] = cls;
  }
}

void NpdqLeafMatchBatch(const StBox* p, const StBox& q, bool exact,
                        const SoaNode& node, std::vector<uint8_t>* out) {
  out->resize(static_cast<size_t>(node.count));
  if (exact) {
    NpdqLeafMatchBatchExact(p, q, node, out);
    return;
  }
#if DQMO_SIMD_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    NpdqLeafMatchBatchBoxAvx2(p, q, node, out);
    return;
  }
#endif
  NpdqLeafMatchBatchBoxScalar(p, q, node, out);
}

void KnnEntryDistanceBatch(const SoaNode& node, double t, const Vec& point,
                           std::vector<double>* dist,
                           std::vector<uint8_t>* alive) {
  dist->resize(static_cast<size_t>(node.count));
  alive->resize(static_cast<size_t>(node.count));
#if DQMO_SIMD_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    KnnEntryDistanceBatchAvx2(node, t, point, dist, alive);
    return;
  }
#endif
  KnnEntryDistanceBatchScalar(node, t, point, dist, alive);
}

void KnnLeafDistanceBatch(const SoaNode& node, double t, const Vec& point,
                          std::vector<double>* dist,
                          std::vector<uint8_t>* alive) {
  dist->resize(static_cast<size_t>(node.count));
  alive->resize(static_cast<size_t>(node.count));
#if DQMO_SIMD_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    KnnLeafDistanceBatchAvx2(node, t, point, dist, alive);
    return;
  }
#endif
  KnnLeafDistanceBatchScalar(node, t, point, dist, alive);
}

}  // namespace dqmo
