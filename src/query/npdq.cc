#include "query/npdq.h"

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "query/kernels.h"
#include "storage/prefetch.h"

namespace dqmo {
namespace {

/// Per-query traversal shape of the NPDQ hot path. The discard rate is the
/// fraction of candidate subtrees pruned by the paper's discardability
/// test — the quantity Figs. 8/10 trade against window size.
struct NpdqMetrics {
  Histogram* nodes_per_query;
  Histogram* discarded_per_query;
  Histogram* discard_rate_pct;

  static NpdqMetrics& Get() {
    static NpdqMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return NpdqMetrics{
          r.GetHistogram("dqmo_npdq_nodes_per_query",
                         "Node loads (physical + decoded) per NPDQ snapshot"),
          r.GetHistogram("dqmo_npdq_discarded_per_query",
                         "Subtrees pruned as discardable per NPDQ snapshot"),
          r.GetHistogram("dqmo_npdq_discard_rate_pct",
                         "Discarded / (discarded + visited) per snapshot, %"),
      };
    }();
    return m;
  }
};

}  // namespace

bool Discardable(const StBox& p, const StBox& q, const ChildEntry& r,
                 SpatialPruning pruning) {
  // Double-temporal-axes test. A motion (ts, te) is Q-relevant iff
  // ts <= q.time.hi and te >= q.time.lo; the subtree's Q-relevant motions
  // have ts in i_ts and te in i_te below. All of them were temporally
  // P-relevant iff every such ts <= p.time.hi and every such te >=
  // p.time.lo.
  const Interval i_ts =
      r.start_times.Intersect(Interval(-kInf, q.time.hi));
  const Interval i_te = r.end_times.Intersect(Interval(q.time.lo, kInf));
  if (i_ts.empty() || i_te.empty()) {
    return true;  // No Q-relevant motion below R at all.
  }
  if (i_ts.hi > p.time.hi) return false;  // Some motion started after P.
  if (i_te.lo < p.time.lo) return false;  // Some motion ended before P.

  // Spatial containment.
  for (int i = 0; i < r.bounds.spatial.dims; ++i) {
    const Interval ri = r.bounds.spatial.extent(i);
    const Interval region =
        pruning == SpatialPruning::kIntersectionContained
            ? ri.Intersect(q.spatial.extent(i))
            : ri;
    if (region.empty()) return true;  // Spatially disjoint from Q.
    if (!p.spatial.extent(i).Contains(region)) return false;
  }
  return true;
}

NonPredictiveDynamicQuery::NonPredictiveDynamicQuery(
    RTree* tree, const NpdqOptions& options)
    : tree_(tree), options_(options) {
  DQMO_CHECK(tree != nullptr);
}

void NonPredictiveDynamicQuery::ResetHistory() {
  prev_.reset();
  prev_stamp_ = 0;
}

void NonPredictiveDynamicQuery::NoteSkippedSnapshot(const StBox& q) {
  // Exactly the prev-installation Execute performs, minus the traversal:
  // the caller certified the answer set is empty.
  prev_ = q;
  prev_stamp_ = tree_->stamp();
}

void NonPredictiveDynamicQuery::HintCollected() {
  if (hint_scratch_.empty()) return;
  QueryBudget* budget = options_.budget;
  options_.prefetcher->Hint(
      hint_scratch_.data(), hint_scratch_.size(),
      budget == nullptr
          ? Prefetcher::ChargeFn()
          : Prefetcher::ChargeFn(
                [budget] { return budget->TryChargePrefetch(); }));
}

Status NonPredictiveDynamicQuery::Visit(PageId pid, const StBox& entry_bounds,
                                        const StBox& q, int depth,
                                        std::vector<MotionSegment>* out) {
  if (options_.hot_path == HotPath::kLegacyAos) {
    return VisitLegacy(pid, entry_bounds, q, depth, out);
  }
  if (options_.budget != nullptr && !options_.budget->TryChargeNode()) {
    skip_report_.RecordSkip(pid, entry_bounds, options_.budget->StopStatus());
    stats_.pages_skipped.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();  // Out of budget: prune, finish degraded.
  }
  DQMO_ASSIGN_OR_RETURN(
      std::shared_ptr<const SoaNode> node,
      tree_->LoadNodeSoaOrSkip(pid, entry_bounds, options_.fault_policy,
                               &skip_report_, &stats_, options_.reader));
  if (node == nullptr) return Status::OK();  // Subtree skipped.
  // A node stamped after the previous query ran may contain motions
  // inserted since then; neither discardability nor the returned-by-P skip
  // may use P beneath it (Sect. 4.2, Update Management).
  const bool p_usable = prev_.has_value() && options_.use_previous &&
                        node->stamp <= prev_stamp_;
  // The legacy loops charge one distance computation per entry up front.
  stats_.distance_computations.fetch_add(static_cast<uint64_t>(node->count),
                                         std::memory_order_relaxed);
  if (node->is_leaf()) {
    // The batch kernel answers "in Q and not already retrieved by P" for
    // the whole leaf; only the emitted segments are ever materialized.
    {
      Tracer::SpanScope prune_span(SpanKind::kKernelPrune,
                                   static_cast<uint64_t>(node->count));
      NpdqLeafMatchBatch(p_usable ? &*prev_ : nullptr, q,
                         options_.leaf_semantics == LeafSemantics::kExact,
                         *node, &leaf_match_);
    }
    for (int k = 0; k < node->count; ++k) {
      if (!leaf_match_[static_cast<size_t>(k)]) continue;
      out->push_back(node->SegmentAt(k));
      stats_.objects_returned.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::OK();
  }
  if (static_cast<size_t>(depth) >= cls_pool_.size()) {
    cls_pool_.resize(static_cast<size_t>(depth) + 1);
  }
  {
    Tracer::SpanScope prune_span(SpanKind::kKernelPrune,
                                 static_cast<uint64_t>(node->count));
    NpdqClassifyBatch(
        p_usable ? &*prev_ : nullptr, q,
        options_.spatial_pruning == SpatialPruning::kIntersectionContained,
        *node, &cls_pool_[static_cast<size_t>(depth)]);
  }
  if (options_.prefetcher != nullptr) {
    // The surviving siblings beyond the first ARE the traversal's declared
    // future: the first is read synchronously right away, the rest while
    // its subtree is walked. Issued before recursing, so the recursion may
    // reuse hint_scratch_.
    hint_scratch_.clear();
    bool first = true;
    for (int k = 0; k < node->count; ++k) {
      if (cls_pool_[static_cast<size_t>(depth)][static_cast<size_t>(k)] !=
          kNpdqVisit) {
        continue;
      }
      if (first) {
        first = false;
        continue;
      }
      hint_scratch_.push_back(node->child[static_cast<size_t>(k)]);
    }
    HintCollected();
  }
  for (int k = 0; k < node->count; ++k) {
    // Re-index the pool each iteration: the recursive Visit below may grow
    // it, which moves (but preserves) the per-depth buffers.
    const uint8_t cls = cls_pool_[static_cast<size_t>(depth)]
                                 [static_cast<size_t>(k)];
    if (cls == kNpdqSkip) continue;
    if (cls == kNpdqDiscard) {
      stats_.nodes_discarded.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    DQMO_RETURN_IF_ERROR(Visit(node->child[static_cast<size_t>(k)],
                               node->EntryBoundsAt(k), q, depth + 1, out));
  }
  return Status::OK();
}

Status NonPredictiveDynamicQuery::VisitLegacy(
    PageId pid, const StBox& entry_bounds, const StBox& q, int depth,
    std::vector<MotionSegment>* out) {
  if (options_.budget != nullptr && !options_.budget->TryChargeNode()) {
    skip_report_.RecordSkip(pid, entry_bounds, options_.budget->StopStatus());
    stats_.pages_skipped.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();  // Out of budget: prune, finish degraded.
  }
  DQMO_ASSIGN_OR_RETURN(
      std::optional<Node> maybe_node,
      tree_->LoadNodeOrSkip(pid, entry_bounds, options_.fault_policy,
                            &skip_report_, &stats_, options_.reader));
  if (!maybe_node.has_value()) return Status::OK();  // Subtree skipped.
  const Node& node = *maybe_node;
  // A node stamped after the previous query ran may contain motions
  // inserted since then; neither discardability nor the returned-by-P skip
  // may use P beneath it (Sect. 4.2, Update Management).
  const bool p_usable = prev_.has_value() && options_.use_previous &&
                        node.stamp <= prev_stamp_;
  if (node.is_leaf()) {
    const bool exact = options_.leaf_semantics == LeafSemantics::kExact;
    for (const MotionSegment& m : node.segments) {
      ++stats_.distance_computations;
      const bool in_q = exact
                            ? m.seg.Intersects(q)
                            : QuantizeOutward(m.Bounds()).Overlaps(q);
      if (!in_q) continue;
      if (p_usable) {
        const bool in_p = exact
                              ? m.seg.Intersects(*prev_)
                              : QuantizeOutward(m.Bounds()).Overlaps(*prev_);
        if (in_p) continue;  // Already retrieved by the previous snapshot.
      }
      out->push_back(m);
      ++stats_.objects_returned;
    }
    return Status::OK();
  }
  if (options_.prefetcher != nullptr) {
    // Pre-pass mirror of the loop below, stats-free: collect the surviving
    // siblings beyond the first and hint them before any recursion. The
    // duplicate Overlaps/Discardable work only runs with a prefetcher
    // attached, keeping the bare legacy path untouched.
    hint_scratch_.clear();
    bool first = true;
    for (const ChildEntry& e : node.children) {
      if (!e.bounds.Overlaps(q)) continue;
      if (p_usable && Discardable(*prev_, q, e, options_.spatial_pruning)) {
        continue;
      }
      if (first) {
        first = false;
        continue;
      }
      hint_scratch_.push_back(e.child);
    }
    HintCollected();
  }
  for (const ChildEntry& e : node.children) {
    ++stats_.distance_computations;
    if (!e.bounds.Overlaps(q)) continue;
    if (p_usable && Discardable(*prev_, q, e, options_.spatial_pruning)) {
      ++stats_.nodes_discarded;
      continue;
    }
    DQMO_RETURN_IF_ERROR(VisitLegacy(e.child, e.bounds, q, depth + 1, out));
  }
  return Status::OK();
}

Result<std::vector<MotionSegment>> NonPredictiveDynamicQuery::Execute(
    const StBox& q) {
  if (q.spatial.dims != tree_->dims()) {
    return Status::InvalidArgument("query dims mismatch");
  }
  if (q.empty()) return Status::InvalidArgument("empty query box");
  if (prev_.has_value() && q.time.lo < prev_->time.lo) {
    return Status::InvalidArgument(
        "NPDQ snapshots must advance monotonically in time");
  }
  const uint64_t loads0 = stats_.node_reads.load(std::memory_order_relaxed) +
                          stats_.decoded_hits.load(std::memory_order_relaxed);
  const uint64_t discarded0 =
      stats_.nodes_discarded.load(std::memory_order_relaxed);
  std::vector<MotionSegment> out;
  skip_report_.Reset();
  DQMO_RETURN_IF_ERROR(Visit(tree_->root(), StBox(), q, 0, &out));
  prev_ = q;
  prev_stamp_ = tree_->stamp();
  if (MetricsEnabled()) {
    const uint64_t loads =
        stats_.node_reads.load(std::memory_order_relaxed) +
        stats_.decoded_hits.load(std::memory_order_relaxed) - loads0;
    const uint64_t discarded =
        stats_.nodes_discarded.load(std::memory_order_relaxed) - discarded0;
    NpdqMetrics& nm = NpdqMetrics::Get();
    nm.nodes_per_query->Record(loads);
    nm.discarded_per_query->Record(discarded);
    if (loads + discarded > 0) {
      nm.discard_rate_pct->Record(100 * discarded / (loads + discarded));
    }
  }
  return out;
}

}  // namespace dqmo
