// Non-Predictive Dynamic Query processing (Sect. 4.2 of the paper).
//
// The trajectory is unknown; each snapshot query Q is evaluated against the
// index, but the processor remembers the previous snapshot P and skips
// ("discards") any subtree R whose Q-relevant contents were already
// retrieved by P — Lemma 1: R is discardable iff (Q ∩ R) ⊆ P, evaluated
// under double temporal axes (motion start- and end-times as independent
// dimensions, Fig. 5(b)) so that temporally-disjoint consecutive snapshots
// still prune. Only objects not retrieved by P are returned.
//
// Update management uses per-node timestamps: every insertion stamps the
// nodes along its path, and a node whose stamp is newer than P's execution
// disables discardability (and the returned-by-P skip) beneath it.
#ifndef DQMO_QUERY_NPDQ_H_
#define DQMO_QUERY_NPDQ_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "geom/box.h"
#include "motion/motion_segment.h"
#include "query/budget.h"
#include "rtree/node_soa.h"
#include "rtree/rtree.h"
#include "rtree/stats.h"

namespace dqmo {

class Prefetcher;

/// How a motion segment is tested against a query box at the leaf level.
///
/// The two semantics pair with the two spatial pruning rules below; see the
/// soundness note on NpdqOptions.
enum class LeafSemantics {
  /// A segment matches iff its bounding box overlaps the query (the
  /// pre-optimization NSI semantics). May admit segments whose exact
  /// trajectory misses the query.
  kBoundingBox,
  /// A segment matches iff its exact space-time line intersects the query
  /// (the Sect. 3.2 optimization).
  kExact,
};

/// Spatial part of the discardability test for a subtree R.
enum class SpatialPruning {
  /// Paper's Lemma 1: (Q ∩ R).spatial ⊆ P.spatial.
  kIntersectionContained,
  /// Stricter: R.spatial ⊆ P.spatial.
  kNodeContained,
};

/// Options for NPDQ evaluation.
///
/// Soundness: Lemma 1 guarantees "everything in Q ∩ R was retrieved by P"
/// under *bounding-box* leaf semantics. Under exact-segment semantics a
/// discarded subtree can contain a fast mover that only enters P's spatial
/// window after P's time window closed — its BB intersects P but its exact
/// trajectory does not, so an exact P never returned it. The sound pairings
/// are therefore (kBoundingBox, kIntersectionContained) — the paper's
/// configuration, our default — and (kExact, kNodeContained). The tests
/// verify completeness of both; abl_discardability measures the unsound
/// pairing's miss rate alongside the pruning rates.
struct NpdqOptions {
  PageReader* reader = nullptr;  // nullptr: read from the tree's file.
  LeafSemantics leaf_semantics = LeafSemantics::kBoundingBox;
  SpatialPruning spatial_pruning = SpatialPruning::kIntersectionContained;
  /// Disables all use of the previous query (the processor degenerates to
  /// independent snapshot evaluation; used for baseline comparisons).
  bool use_previous = true;
  /// Reaction to unreadable nodes (rtree/fault_policy.h). Under
  /// kSkipSubtree each Execute completes over the readable tree and reports
  /// the skips through skip_report(). Note that a skip degrades the whole
  /// *sequence*: the snapshot becomes this-and-future queries' "previous"
  /// despite missing objects, so anything lost stays lost.
  FaultPolicy fault_policy = FaultPolicy::kFailFast;
  /// kSoa visits nodes through the decoded-node cache and classifies
  /// internal entries with the batch kernel (query/kernels.h); kLegacyAos
  /// keeps the original per-entry path. Results and counters are
  /// bit-identical either way.
  HotPath hot_path = HotPath::kSoa;
  /// Per-frame work budget + cancellation (query/budget.h); not owned, may
  /// be null (unbudgeted — the bit-identical default). One charge per node
  /// visit; a failed charge prunes the subtree, records it in
  /// skip_report(), and the Execute finishes degraded (kPartial). Callers
  /// pairing a budget with a sequence should ResetHistory() after a
  /// degraded Execute so nothing stays masked by an incomplete "previous"
  /// (DynamicQuerySession does).
  QueryBudget* budget = nullptr;
  /// Speculative read driver (storage/prefetch.h); not owned, may be null
  /// (no speculation — the bit-identical default). NPDQ's declared future
  /// is its recursion frontier: after classifying a node's children, the
  /// surviving siblings beyond the first are hinted before recursing into
  /// the first, so their disk reads land while its subtree is walked.
  /// Results and node-level counters are unchanged; only prefetch_* IoStats
  /// move.
  Prefetcher* prefetcher = nullptr;
};

/// True iff subtree entry `r` is discardable for current query `q` given
/// previous query `p` (Lemma 1 under double temporal axes). Exposed for
/// tests and the discardability ablation.
bool Discardable(const StBox& p, const StBox& q, const ChildEntry& r,
                 SpatialPruning pruning);

/// Sequential evaluator for non-predictive dynamic queries. Not
/// thread-safe; one instance per running dynamic query.
class NonPredictiveDynamicQuery {
 public:
  /// `tree` must outlive the query processor.
  NonPredictiveDynamicQuery(RTree* tree, const NpdqOptions& options = {});

  /// Evaluates the next snapshot of the dynamic query: returns all motion
  /// segments that satisfy `q` and were *not* retrieved by the previous
  /// snapshot (the first call behaves as a plain snapshot query). Queries
  /// must advance in time: q.time.lo must be >= the previous q.time.lo.
  Result<std::vector<MotionSegment>> Execute(const StBox& q);

  /// Forgets the previous snapshot (e.g. after the observer teleports);
  /// the next Execute behaves as a first query.
  void ResetHistory();

  /// Records `q` as the previous snapshot *without* evaluating it — for a
  /// caller that proved q matches nothing in this tree (the sharded router
  /// skips shards whose root bounds miss q). Sound exactly under that
  /// proof: an empty answer set makes "retrieved by P" trivially empty, so
  /// installing q as P (with the current tree stamp, as Execute would)
  /// leaves every later delta identical to having executed q. Without the
  /// prev update a skipped snapshot would be silently wrong: a segment
  /// matching q_{i-1} and q_{i+1} but not q_i must still be suppressed in
  /// frame i+1.
  void NoteSkippedSnapshot(const StBox& q);

  const QueryStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Subtrees skipped by the most recent Execute (reset at each call).
  const SkipReport& skip_report() const { return skip_report_; }
  /// Integrity of the most recent Execute's answer.
  ResultIntegrity integrity() const { return skip_report_.integrity(); }

  /// The previous snapshot box, if any (for tests).
  const std::optional<StBox>& previous() const { return prev_; }

 private:
  Status Visit(PageId pid, const StBox& entry_bounds, const StBox& q,
               int depth, std::vector<MotionSegment>* out);
  Status VisitLegacy(PageId pid, const StBox& entry_bounds, const StBox& q,
                     int depth, std::vector<MotionSegment>* out);
  /// Issues the hint_scratch_ pages to the prefetcher (budget-charged).
  /// Must be called before any recursion reuses hint_scratch_.
  void HintCollected();

  RTree* tree_;
  NpdqOptions options_;
  std::optional<StBox> prev_;
  // One classification buffer per recursion depth, reused across Execute
  // calls so the hot path performs no per-node allocation once warm.
  std::vector<std::vector<uint8_t>> cls_pool_;
  // Leaf emission flags, reused across leaves (leaf visits never recurse,
  // so unlike cls_pool_ one buffer serves every depth).
  std::vector<uint8_t> leaf_match_;
  // Frontier pages collected for HintCollected; safe to share across
  // recursion depths because the hint is issued before recursing.
  std::vector<PageId> hint_scratch_;
  UpdateStamp prev_stamp_ = 0;  // Tree stamp when prev_ was executed.
  QueryStats stats_;
  SkipReport skip_report_;
};

}  // namespace dqmo

#endif  // DQMO_QUERY_NPDQ_H_
