#include "query/pdq.h"

#include <algorithm>

#include "common/check.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "storage/prefetch.h"

namespace dqmo {
namespace {

/// Per-frame traversal shape of the PDQ hot path.
struct PdqMetrics {
  Histogram* queue_depth;
  Histogram* nodes_per_frame;
  Histogram* results_per_frame;

  static PdqMetrics& Get() {
    static PdqMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return PdqMetrics{
          r.GetHistogram("dqmo_pdq_queue_depth",
                         "PDQ priority-queue size at end of frame"),
          r.GetHistogram("dqmo_pdq_nodes_per_frame",
                         "Node loads (physical + decoded) per PDQ frame"),
          r.GetHistogram("dqmo_pdq_results_per_frame",
                         "Fresh objects delivered per PDQ frame"),
      };
    }();
    return m;
  }
};

}  // namespace

Result<std::unique_ptr<PredictiveDynamicQuery>> PredictiveDynamicQuery::Make(
    RTree* tree, QueryTrajectory trajectory) {
  return Make(tree, std::move(trajectory), Options());
}

Result<std::unique_ptr<PredictiveDynamicQuery>> PredictiveDynamicQuery::Make(
    RTree* tree, QueryTrajectory trajectory, const Options& options) {
  if (tree == nullptr) return Status::InvalidArgument("null tree");
  if (trajectory.dims() != tree->dims()) {
    return Status::InvalidArgument(
        StrFormat("trajectory dims %d != tree dims %d", trajectory.dims(),
                  tree->dims()));
  }
  auto pdq = std::unique_ptr<PredictiveDynamicQuery>(
      new PredictiveDynamicQuery(tree, std::move(trajectory), options));
  if (options.track_updates) {
    tree->AddListener(pdq.get());
    pdq->attached_ = true;
  }
  return pdq;
}

PredictiveDynamicQuery::PredictiveDynamicQuery(RTree* tree,
                                               QueryTrajectory trajectory,
                                               const Options& options)
    : tree_(tree),
      trajectory_(std::move(trajectory)),
      options_(options),
      coeffs_(TrajectoryCoeffs::Build(trajectory_)),
      last_t_start_(-kInf) {
  // Seed the queue with the root. Its exact overlap times are computed when
  // it is popped and explored (one disk access), matching the paper's "each
  // node read at most once" accounting; until then the full trajectory span
  // is a safe over-approximation.
  PushNodeItem(tree_->root(), StBox(), TimeSet(trajectory_.TimeSpan()),
               -kInf);
}

PredictiveDynamicQuery::~PredictiveDynamicQuery() {
  if (attached_) tree_->RemoveListener(this);
}

void PredictiveDynamicQuery::PushNodeItem(PageId page, const StBox& bounds,
                                          TimeSet times, double not_before) {
  const double start = times.FirstInstantAtOrAfter(not_before);
  if (start == kInf) return;  // Entirely in the past: never relevant again.
  Item item;
  item.priority = start;
  item.is_object = false;
  item.page = page;
  item.bounds = bounds;
  item.times = std::move(times);
  queue_.push(std::move(item));
  stats_.queue_pushes.fetch_add(1, std::memory_order_relaxed);
}

void PredictiveDynamicQuery::PushObjectItem(const MotionSegment& m,
                                            TimeSet times,
                                            double not_before) {
  const double start = times.FirstInstantAtOrAfter(not_before);
  if (start == kInf) return;
  Item item;
  item.priority = start;
  item.is_object = true;
  item.motion = m;
  item.times = std::move(times);
  queue_.push(std::move(item));
  stats_.queue_pushes.fetch_add(1, std::memory_order_relaxed);
}

void PredictiveDynamicQuery::HintPrefetch() {
  Prefetcher* pf = options_.prefetcher;
  if (pf == nullptr || pf->depth() == 0 || queue_.empty()) return;
  // The heap array's prefix is not sorted, but the heap property keeps the
  // most-imminent items clustered at the front (every slot's priority is
  // >= its parent's), so scanning ~2*depth slots covers the next pops with
  // high probability at O(depth) cost — no heap mutation, no full sort.
  const std::vector<Item>& raw = queue_.raw();
  const size_t window = std::min(raw.size(), 2 * pf->depth() + 4);
  hint_scratch_.clear();
  for (size_t i = 0; i < window; ++i) {
    if (raw[i].is_object) continue;
    hint_scratch_.push_back(raw[i].page);
    if (hint_scratch_.size() >= pf->depth()) break;
  }
  if (hint_scratch_.empty()) return;
  QueryBudget* budget = options_.budget;
  pf->Hint(hint_scratch_.data(), hint_scratch_.size(),
           budget == nullptr
               ? Prefetcher::ChargeFn()
               : Prefetcher::ChargeFn(
                     [budget] { return budget->TryChargePrefetch(); }));
}

bool PredictiveDynamicQuery::IsDuplicate(const Item& item) {
  // Duplicates introduced by update management carry the same priority
  // (their overlap times are computed from identical geometry), so a window
  // of identities at the current priority value suffices — the paper's
  // "check a few objects with the same priority".
  if (item.priority != dedup_priority_) {
    dedup_priority_ = item.priority;
    dedup_window_.clear();
  }
  for (const DedupKey& seen : dedup_window_) {
    if (seen.Matches(item)) return true;
  }
  return false;
}

Status PredictiveDynamicQuery::Explore(const Item& node_item,
                                       double t_start) {
  if (options_.hot_path == HotPath::kLegacyAos) {
    return ExploreLegacy(node_item, t_start);
  }
  DQMO_ASSIGN_OR_RETURN(
      std::shared_ptr<const SoaNode> node,
      tree_->LoadNodeSoaOrSkip(node_item.page, node_item.bounds,
                               options_.fault_policy, &skip_report_, &stats_,
                               options_.reader));
  if (node == nullptr) return Status::OK();  // Subtree skipped.
  Tracer::SpanScope prune_span(SpanKind::kKernelPrune,
                               static_cast<uint64_t>(node->count));
  // The legacy loop charges one distance computation per entry before the
  // empty-times filter; the batch kernels evaluate exactly those entries.
  stats_.distance_computations.fetch_add(static_cast<uint64_t>(node->count),
                                         std::memory_order_relaxed);
  if (node->is_leaf()) {
    PdqOverlapSegmentsBatch(coeffs_, *node, &overlap_scratch_);
    for (int k = 0; k < node->count; ++k) {
      TimeSet& times = overlap_scratch_[static_cast<size_t>(k)];
      if (times.empty()) continue;
      PushObjectItem(node->SegmentAt(k), std::move(times), t_start);
    }
  } else {
    PdqOverlapBoxBatch(coeffs_, *node, &overlap_scratch_);
    for (int k = 0; k < node->count; ++k) {
      TimeSet& times = overlap_scratch_[static_cast<size_t>(k)];
      if (times.empty()) continue;
      PushNodeItem(node->child[static_cast<size_t>(k)],
                   node->EntryBoundsAt(k), std::move(times), t_start);
    }
  }
  return Status::OK();
}

Status PredictiveDynamicQuery::ExploreLegacy(const Item& node_item,
                                             double t_start) {
  DQMO_ASSIGN_OR_RETURN(
      std::optional<Node> maybe_node,
      tree_->LoadNodeOrSkip(node_item.page, node_item.bounds,
                            options_.fault_policy, &skip_report_, &stats_,
                            options_.reader));
  if (!maybe_node.has_value()) return Status::OK();  // Subtree skipped.
  const Node& node = *maybe_node;
  if (node.is_leaf()) {
    for (const MotionSegment& m : node.segments) {
      ++stats_.distance_computations;
      TimeSet times = trajectory_.OverlapTimes(m.seg);
      if (times.empty()) continue;
      PushObjectItem(m, std::move(times), t_start);
    }
  } else {
    for (const ChildEntry& e : node.children) {
      ++stats_.distance_computations;
      TimeSet times = trajectory_.OverlapTimes(e.bounds);
      if (times.empty()) continue;
      PushNodeItem(e.child, e.bounds, std::move(times), t_start);
    }
  }
  return Status::OK();
}

Result<std::optional<PdqResult>> PredictiveDynamicQuery::GetNext(
    double t_start, double t_end) {
  if (t_start > t_end) {
    return Status::InvalidArgument("t_start must be <= t_end");
  }
  if (t_start < last_t_start_) {
    return Status::InvalidArgument(
        "PDQ frames must advance monotonically in time");
  }
  last_t_start_ = t_start;
  const Interval frame(t_start, t_end);

  // Already out of budget this frame (a previous GetNext stopped): answer
  // "no more results" until the budget is re-armed for the next frame.
  if (options_.budget != nullptr && options_.budget->stopped()) {
    return std::optional<PdqResult>{};
  }

  while (!queue_.empty()) {
    if (queue_.top().priority > t_end) return std::optional<PdqResult>{};
    // Move the item out of the heap slot instead of copying its TimeSet and
    // MotionSegment payload; pop() only needs the slot to be destructible,
    // and ItemCompare reads nothing but the double priority.
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    stats_.queue_pops.fetch_add(1, std::memory_order_relaxed);
    if (!item.is_object && options_.budget != nullptr &&
        !options_.budget->TryChargeNode()) {
      // Out of budget: record the unexplored subtree (the frame becomes
      // kPartial) and push the node back for a later frame. The charge
      // happens before the dedup window sees the item, so the retry pop is
      // not mistaken for an update-management duplicate.
      skip_report_.RecordSkip(item.page, item.bounds,
                              options_.budget->StopStatus());
      stats_.pages_skipped.fetch_add(1, std::memory_order_relaxed);
      queue_.push(std::move(item));
      stats_.queue_pushes.fetch_add(1, std::memory_order_relaxed);
      return std::optional<PdqResult>{};
    }
    if (IsDuplicate(item)) {
      stats_.duplicates_skipped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    dedup_window_.push_back(DedupKey{item.is_object, item.page,
                                     item.is_object ? item.motion.key()
                                                    : MotionSegment::Key{
                                                          0, 0.0}});

    if (!item.times.Overlaps(frame)) {
      // In view neither now nor earlier this frame. If it re-enters the
      // view later, requeue it for that time; otherwise it has expired.
      const double next = item.times.FirstInstantAtOrAfter(t_start);
      if (next == kInf) continue;
      item.priority = next;
      queue_.push(std::move(item));
      stats_.queue_pushes.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    if (item.is_object) {
      if (!returned_.insert(item.motion.key()).second) {
        stats_.duplicates_skipped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      stats_.objects_returned.fetch_add(1, std::memory_order_relaxed);
      return std::optional<PdqResult>(
          PdqResult{item.motion, std::move(item.times)});
    }
    // Declare the heap's most-imminent node pages before the (synchronous)
    // exploration of this one: the speculative reads land while this
    // node's entries are decoded and filtered.
    HintPrefetch();
    DQMO_RETURN_IF_ERROR(Explore(item, t_start));
  }
  return std::optional<PdqResult>{};
}

Result<std::vector<PdqResult>> PredictiveDynamicQuery::Frame(double t_start,
                                                             double t_end) {
  const uint64_t loads0 =
      stats_.node_reads.load(std::memory_order_relaxed) +
      stats_.decoded_hits.load(std::memory_order_relaxed);
  std::vector<PdqResult> out;
  {
    Tracer::SpanScope heap_span(SpanKind::kHeapOp);
    for (;;) {
      DQMO_ASSIGN_OR_RETURN(std::optional<PdqResult> next,
                            GetNext(t_start, t_end));
      if (!next.has_value()) break;
      out.push_back(std::move(*next));
    }
  }
  PdqMetrics& pm = PdqMetrics::Get();
  pm.queue_depth->Record(queue_.size());
  pm.nodes_per_frame->Record(
      stats_.node_reads.load(std::memory_order_relaxed) +
      stats_.decoded_hits.load(std::memory_order_relaxed) - loads0);
  pm.results_per_frame->Record(out.size());
  return out;
}

void PredictiveDynamicQuery::RebuildFromRoot() {
  queue_ = {};
  dedup_window_.clear();
  dedup_priority_ = -kInf;
  PushNodeItem(tree_->root(), StBox(), TimeSet(trajectory_.TimeSpan()),
               last_t_start_);
}

void PredictiveDynamicQuery::OnObjectInserted(const MotionSegment& m) {
  TimeSet times = trajectory_.OverlapTimes(m.seg);
  if (times.empty()) return;
  PushObjectItem(m, std::move(times), last_t_start_);
}

void PredictiveDynamicQuery::OnSubtreeCreated(const ChildEntry& subtree,
                                              int level) {
  if (options_.update_policy == UpdatePolicy::kRebuild ||
      level >= options_.rebuild_level_threshold) {
    RebuildFromRoot();
    return;
  }
  TimeSet times = trajectory_.OverlapTimes(subtree.bounds);
  if (times.empty()) return;
  PushNodeItem(subtree.child, subtree.bounds, std::move(times),
               last_t_start_);
}

void PredictiveDynamicQuery::OnRootSplit(PageId /*new_root*/) {
  RebuildFromRoot();
}

}  // namespace dqmo
